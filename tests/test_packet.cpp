// Tests for the packet substrate: buffers, pool, headers, parsing,
// building, NAT-style rewriting.
#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

#include "packet/flow.hpp"
#include "packet/headers.hpp"
#include "packet/packet.hpp"
#include "packet/packet_io.hpp"
#include "packet/packet_pool.hpp"

namespace sfc::pkt {
namespace {

FlowKey test_flow() {
  return FlowKey{0x0a000001, 0x08080808, 12345, 80, Ipv4Header::kProtoUdp};
}

TEST(Packet, FreshPacketHasHeadroomAndTailroom) {
  Packet p;
  EXPECT_EQ(p.size(), 0u);
  EXPECT_EQ(p.headroom(), Packet::kDefaultHeadroom);
  EXPECT_EQ(p.tailroom(), Packet::kCapacity - Packet::kDefaultHeadroom);
}

TEST(Packet, PushPullFrontBack) {
  Packet p;
  const std::uint8_t payload[] = {1, 2, 3, 4};
  p.assign(payload);
  EXPECT_EQ(p.size(), 4u);

  auto* front = p.push_front(2);
  front[0] = 9;
  front[1] = 8;
  EXPECT_EQ(p.size(), 6u);
  EXPECT_EQ(p.data()[0], 9);
  EXPECT_EQ(p.data()[2], 1);

  p.pull_front(2);
  EXPECT_EQ(p.size(), 4u);
  EXPECT_EQ(p.data()[0], 1);

  auto* tail = p.push_back(2);
  tail[0] = 7;
  EXPECT_EQ(p.size(), 6u);
  EXPECT_EQ(p.data()[4], 7);
  p.trim_back(2);
  EXPECT_EQ(p.size(), 4u);
}

TEST(Packet, CloneCopiesDataAndAnnotations) {
  Packet a, b;
  const std::uint8_t payload[] = {5, 6, 7};
  a.assign(payload);
  a.anno().packet_id = 99;
  a.anno().ingress_ns = 123;
  a.clone_into(b);
  EXPECT_EQ(b.size(), 3u);
  EXPECT_EQ(b.data()[1], 6);
  EXPECT_EQ(b.anno().packet_id, 99u);
  EXPECT_EQ(b.anno().ingress_ns, 123u);
}

TEST(PacketPool, AllocFreeCycle) {
  PacketPool pool(4);
  EXPECT_EQ(pool.available_approx(), 4u);
  std::vector<Packet*> held;
  for (int i = 0; i < 4; ++i) {
    Packet* p = pool.alloc_raw();
    ASSERT_NE(p, nullptr);
    EXPECT_TRUE(pool.owns(p));
    held.push_back(p);
  }
  EXPECT_EQ(pool.alloc_raw(), nullptr);  // Exhausted -> back-pressure.
  pool.free_raw(held.back());
  held.pop_back();
  EXPECT_NE(pool.alloc_raw(), nullptr);
  for (auto* p : held) pool.free_raw(p);
}

TEST(PacketPool, ReusedPacketIsReset) {
  PacketPool pool(1);
  Packet* p = pool.alloc_raw();
  p->push_back(100);
  p->anno().packet_id = 7;
  pool.free_raw(p);
  Packet* q = pool.alloc_raw();
  EXPECT_EQ(q, p);
  EXPECT_EQ(q->size(), 0u);
  EXPECT_EQ(q->anno().packet_id, 0u);
  pool.free_raw(q);
}

TEST(PacketPool, RaiiPtrReturnsToPool) {
  PacketPool pool(2);
  {
    PacketPtr p = pool.alloc();
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(pool.available_approx(), 1u);
  }
  EXPECT_EQ(pool.available_approx(), 2u);
}

TEST(Headers, ByteOrderHelpers) {
  EXPECT_EQ(hton16(0x1234), 0x3412);
  EXPECT_EQ(ntoh16(hton16(0xabcd)), 0xabcd);
  EXPECT_EQ(hton32(0x12345678u), 0x78563412u);
  EXPECT_EQ(ntoh32(hton32(0xdeadbeefu)), 0xdeadbeefu);
}

TEST(Headers, InternetChecksumKnownVector) {
  // Classic RFC 1071 example bytes.
  const std::uint8_t data[] = {0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
  const std::uint16_t sum = internet_checksum(data, sizeof(data));
  // Verify by checking that including the checksum yields zero.
  std::uint8_t with_sum[10];
  std::memcpy(with_sum, data, 8);
  std::memcpy(with_sum + 8, &sum, 2);
  EXPECT_EQ(internet_checksum(with_sum, 10), 0);
}

TEST(Headers, ChecksumOddLength) {
  const std::uint8_t data[] = {0xab, 0xcd, 0xef};
  const std::uint16_t sum = internet_checksum(data, 3);
  std::uint8_t padded[4] = {0xab, 0xcd, 0xef, 0x00};
  std::uint16_t expect = internet_checksum(padded, 4);
  EXPECT_EQ(sum, expect);
}

TEST(Headers, FormatIpv4) {
  char buf[16];
  format_ipv4(0x0a000001, buf);
  EXPECT_STREQ(buf, "10.0.0.1");
  format_ipv4(0xffffffff, buf);
  EXPECT_STREQ(buf, "255.255.255.255");
}

TEST(Flow, EqualityAndReversal) {
  const FlowKey f = test_flow();
  EXPECT_EQ(f, f);
  const FlowKey r = f.reversed();
  EXPECT_EQ(r.src_ip, f.dst_ip);
  EXPECT_EQ(r.dst_port, f.src_port);
  EXPECT_EQ(r.reversed(), f);
  EXPECT_NE(f.hash(), r.hash());  // Direction-sensitive.
}

TEST(Flow, HashSpreads) {
  std::vector<std::uint64_t> hashes;
  for (std::uint16_t port = 1000; port < 2000; ++port) {
    FlowKey f = test_flow();
    f.src_port = port;
    hashes.push_back(f.hash());
  }
  std::sort(hashes.begin(), hashes.end());
  EXPECT_EQ(std::unique(hashes.begin(), hashes.end()), hashes.end());
}

TEST(PacketIo, BuildAndParseUdp) {
  Packet p;
  PacketBuilder(p).udp(test_flow(), 256);
  EXPECT_EQ(p.size(), 256u);

  auto parsed = parse_packet(p);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->flow, test_flow());
  ASSERT_NE(parsed->udp, nullptr);
  EXPECT_EQ(parsed->tcp, nullptr);
  EXPECT_TRUE(verify_ipv4_checksum(*parsed->ip));
  EXPECT_EQ(parsed->ip->total_length(), 256 - EthernetHeader::kSize);
  EXPECT_EQ(p.anno().l3_offset, EthernetHeader::kSize);
  EXPECT_EQ(p.anno().l4_offset, EthernetHeader::kSize + Ipv4Header::kSize);
}

TEST(PacketIo, BuildAndParseTcp) {
  Packet p;
  FlowKey f = test_flow();
  f.protocol = Ipv4Header::kProtoTcp;
  PacketBuilder(p).tcp(f, 128, TcpHeader::kFlagSyn);
  auto parsed = parse_packet(p);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_NE(parsed->tcp, nullptr);
  EXPECT_EQ(parsed->tcp->flags, TcpHeader::kFlagSyn);
  EXPECT_EQ(parsed->flow, f);
}

TEST(PacketIo, ParseRejectsTruncated) {
  Packet p;
  p.push_back(10);
  EXPECT_FALSE(parse_packet(p).has_value());
}

TEST(PacketIo, ParseRejectsNonIpv4) {
  Packet p;
  PacketBuilder(p).udp(test_flow(), 100);
  reinterpret_cast<EthernetHeader*>(p.data())->set_ether_type(0x0806);  // ARP.
  EXPECT_FALSE(parse_packet(p).has_value());
}

TEST(PacketIo, WireLenHidesTrailer) {
  Packet p;
  PacketBuilder(p).udp(test_flow(), 128);
  // Simulate an appended piggyback message. Trailer bytes beyond the IP
  // total length are ignored (like Ethernet padding), whether we parse the
  // whole buffer or restrict to the wire length.
  auto* tail = p.push_back(64);
  std::memset(tail, 0xee, 64);
  for (auto parsed : {parse_packet(p), parse_packet(p, 128)}) {
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->flow, test_flow());
    EXPECT_EQ(parsed->payload_len, 128u - EthernetHeader::kSize -
                                       Ipv4Header::kSize - UdpHeader::kSize);
  }
}

TEST(PacketIo, RewriteFlowUpdatesChecksumAndPorts) {
  Packet p;
  PacketBuilder(p).udp(test_flow(), 200);
  auto parsed = parse_packet(p);
  ASSERT_TRUE(parsed.has_value());

  FlowKey ext{0xc0a80001, 0x08080808, 40000, 80, Ipv4Header::kProtoUdp};
  rewrite_flow(*parsed, ext);
  EXPECT_TRUE(verify_ipv4_checksum(*parsed->ip));

  auto reparsed = parse_packet(p);
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_EQ(reparsed->flow, ext);
}

TEST(PacketIo, PayloadLengthMatchesBuild) {
  Packet p;
  PacketBuilder(p).udp(test_flow(), 256);
  auto parsed = parse_packet(p);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->payload_len, 256u - EthernetHeader::kSize -
                                     Ipv4Header::kSize - UdpHeader::kSize);
}

// Sweep frame sizes the paper uses (128/256/512) plus the minimum.
class PacketSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PacketSizeSweep, BuildParseRoundTrip) {
  Packet p;
  PacketBuilder(p).udp(test_flow(), GetParam());
  auto parsed = parse_packet(p);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->flow, test_flow());
  EXPECT_TRUE(verify_ipv4_checksum(*parsed->ip));
}

INSTANTIATE_TEST_SUITE_P(FrameSizes, PacketSizeSweep,
                         ::testing::Values(64, 128, 256, 512, 1024, 1500));

TEST(PacketPool, ConcurrentAllocFree) {
  PacketPool pool(256);
  constexpr int kThreads = 4;
  constexpr int kRounds = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&pool] {
      for (int i = 0; i < kRounds; ++i) {
        Packet* p = pool.alloc_raw();
        if (p != nullptr) pool.free_raw(p);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(pool.available_approx(), 256u);
}

}  // namespace
}  // namespace sfc::pkt
