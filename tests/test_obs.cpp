// Tests for the observability layer: metrics registry (identity, hot-path
// counters, snapshots, callback metrics), bounded event traces, and the
// JSON/CSV/Report exporters.
#include <gtest/gtest.h>

#include <thread>

#include "obs/export.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "runtime/clock.hpp"

namespace sfc::obs {
namespace {

TEST(Registry, SameNameAndLabelsReturnsSameMetric) {
  Registry registry;
  Counter& a = registry.counter("pkts", {{"node", "1"}});
  Counter& b = registry.counter("pkts", {{"node", "1"}});
  EXPECT_EQ(&a, &b);
  // Label order must not matter for identity.
  Counter& c = registry.counter("pkts", {{"node", "1"}, {"pos", "0"}});
  Counter& d = registry.counter("pkts", {{"pos", "0"}, {"node", "1"}});
  EXPECT_EQ(&c, &d);
  EXPECT_NE(&a, &c);
  // Different kinds under the same name are distinct metrics.
  registry.gauge("pkts", {{"node", "1"}});
  EXPECT_EQ(registry.metric_count(), 3u);
}

TEST(Registry, CounterSurvivesConcurrentIncrements) {
  Registry registry;
  Counter& counter = registry.counter("hits");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kPerThread; ++i) counter.inc();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(Registry, SnapshotReportsAllKinds) {
  Registry registry;
  registry.counter("c", {{"id", "1"}}).add(7);
  registry.gauge("g").set(-3);
  registry.timer("t").record(1000);
  registry.gauge_fn("fn_g", {{"id", "2"}}, [] { return 42.0; });
  registry.histogram_fn("fn_h", {}, [] {
    rt::Histogram h;
    h.record(5);
    return h;
  });

  const auto samples = registry.snapshot();
  ASSERT_EQ(samples.size(), 5u);
  bool saw_counter = false, saw_gauge = false, saw_timer = false,
       saw_fn_gauge = false, saw_fn_hist = false;
  for (const auto& s : samples) {
    if (s.name == "c") {
      saw_counter = true;
      EXPECT_EQ(s.kind, Sample::Kind::kCounter);
      EXPECT_DOUBLE_EQ(s.value, 7.0);
      ASSERT_EQ(s.labels.size(), 1u);
      EXPECT_EQ(s.labels[0].first, "id");
    } else if (s.name == "g") {
      saw_gauge = true;
      EXPECT_EQ(s.kind, Sample::Kind::kGauge);
      EXPECT_DOUBLE_EQ(s.value, -3.0);
    } else if (s.name == "t") {
      saw_timer = true;
      EXPECT_EQ(s.kind, Sample::Kind::kHistogram);
      EXPECT_EQ(s.hist.count(), 1u);
    } else if (s.name == "fn_g") {
      saw_fn_gauge = true;
      EXPECT_DOUBLE_EQ(s.value, 42.0);
    } else if (s.name == "fn_h") {
      saw_fn_hist = true;
      EXPECT_EQ(s.hist.count(), 1u);
    }
  }
  EXPECT_TRUE(saw_counter && saw_gauge && saw_timer && saw_fn_gauge &&
              saw_fn_hist);
}

TEST(Registry, RemoveMatchingDropsCallbacksButKeepsValues) {
  Registry registry;
  registry.counter("c", {{"node", "9"}}).inc();
  int calls = 0;
  registry.gauge_fn("depth", {{"node", "9"}}, [&calls] {
    ++calls;
    return 1.0;
  });
  registry.gauge_fn("depth", {{"node", "8"}}, [] { return 2.0; });

  registry.remove_matching("node", "9");
  const auto samples = registry.snapshot();
  // The node-9 callback is gone (would dangle after its owner died), the
  // node-8 callback and the plain counter remain.
  EXPECT_EQ(calls, 0);
  std::size_t fn_gauges = 0;
  bool counter_still_there = false;
  for (const auto& s : samples) {
    if (s.name == "depth") ++fn_gauges;
    if (s.name == "c") counter_still_there = true;
  }
  EXPECT_EQ(fn_gauges, 1u);
  EXPECT_TRUE(counter_still_there);
}

TEST(EventTrace, RingWrapsAndKeepsNewest) {
  EventTrace trace(4);
  for (std::uint64_t i = 0; i < 10; ++i) {
    trace.emit(Event::kPacketParked, i);
  }
  EXPECT_EQ(trace.total_emitted(), 10u);
  EXPECT_EQ(trace.dropped(), 6u);
  const auto events = trace.snapshot();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-first snapshot of the newest four events.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].a, 6 + i);
  }
}

TEST(EventTrace, ContainsSequenceMatchesSubsequences) {
  EventTrace trace;
  trace.emit(Event::kPacketParked);
  trace.emit(Event::kCommitAttach);
  trace.emit(Event::kNackSent);
  trace.emit(Event::kPacketUnparked);
  EXPECT_TRUE(trace.contains_sequence(
      {Event::kPacketParked, Event::kNackSent, Event::kPacketUnparked}));
  EXPECT_TRUE(trace.contains_sequence({Event::kCommitAttach}));
  // Order matters.
  EXPECT_FALSE(trace.contains_sequence(
      {Event::kPacketUnparked, Event::kPacketParked}));
  EXPECT_FALSE(trace.contains_sequence({Event::kFailure}));
  trace.clear();
  EXPECT_TRUE(trace.snapshot().empty());
  EXPECT_FALSE(trace.contains_sequence({Event::kCommitAttach}));
}

TEST(Export, JsonContainsMetricsAndTraces) {
  Registry registry;
  registry.counter("pkts", {{"link", "seg\"0"}}).add(3);  // Needs escaping.
  registry.trace("events", {{"node", "1"}}).emit(Event::kNackSent, 2, 3);

  const std::string no_traces = to_json(registry);
  EXPECT_NE(no_traces.find("\"pkts\""), std::string::npos);
  EXPECT_NE(no_traces.find("seg\\\"0"), std::string::npos);
  EXPECT_EQ(no_traces.find("nack_sent"), std::string::npos);

  const std::string with_traces = to_json(registry, /*include_traces=*/true);
  EXPECT_NE(with_traces.find("nack_sent"), std::string::npos);

  const std::string csv = to_csv(registry);
  EXPECT_NE(csv.find("pkts"), std::string::npos);
  const std::string text = to_text(registry);
  EXPECT_NE(text.find("pkts"), std::string::npos);
}

TEST(Export, ReportWritesBenchJson) {
  ASSERT_EQ(setenv("FTC_BENCH_JSON_DIR", testing::TempDir().c_str(), 1), 0);
  Report report("obs_selftest");
  report.meta("mode", "ftc").meta("points", 4).meta("rate", 1.5);
  report.metric("tput_mpps", 3.25, {{"system", "ftc"}});
  rt::Histogram h;
  h.record(100);
  h.record(200);
  report.metric_hist("latency_ns", h);
  report.shape_check(true);

  const std::string path = report.write();
  ASSERT_FALSE(path.empty());
  EXPECT_NE(path.find("BENCH_obs_selftest.json"), std::string::npos);

  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string content(1 << 16, '\0');
  content.resize(std::fread(content.data(), 1, content.size(), f));
  std::fclose(f);
  unsetenv("FTC_BENCH_JSON_DIR");

  EXPECT_NE(content.find("\"bench\":\"obs_selftest\""), std::string::npos);
  EXPECT_NE(content.find("\"mode\":\"ftc\""), std::string::npos);
  EXPECT_NE(content.find("\"shape_check\":true"), std::string::npos);
  EXPECT_NE(content.find("\"tput_mpps\""), std::string::npos);
  EXPECT_NE(content.find("\"p99\""), std::string::npos);
}

TEST(Registry, ResetCountersClearsCountersAndTimers) {
  Registry registry;
  registry.counter("pkts").add(10);
  registry.gauge("depth").set(5);
  registry.timer("lat_ns").record(1234);

  registry.reset_counters();

  const auto samples = registry.snapshot();
  for (const auto& s : samples) {
    if (s.name == "pkts") {
      EXPECT_EQ(s.value, 0.0);
    } else if (s.name == "depth") {
      EXPECT_EQ(s.value, 5.0);  // Gauges keep state.
    } else if (s.name == "lat_ns") {
      EXPECT_EQ(s.hist.count(), 0u);
    }
  }
  // Metrics stay registered (same addresses) after a reset.
  registry.counter("pkts").inc();
  EXPECT_EQ(registry.counter("pkts").value(), 1u);
}

TEST(Export, TextIncludesTimerQuantiles) {
  Registry registry;
  auto& t = registry.timer("lat_ns");
  for (int i = 1; i <= 1000; ++i) t.record(i * 1000);
  const std::string text = to_text(registry);
  EXPECT_NE(text.find("p50="), std::string::npos);
  EXPECT_NE(text.find("p90="), std::string::npos);
  EXPECT_NE(text.find("p99="), std::string::npos);
  EXPECT_NE(text.find("p999="), std::string::npos);
}

TEST(Export, ExporterDumpsPeriodically) {
  Registry registry;
  registry.counter("ticks").inc();
  const std::string path = testing::TempDir() + "/obs_exporter_test.json";
  {
    Exporter exporter(registry, path, /*interval_ns=*/5'000'000);
    const auto deadline = rt::now_ns() + 2'000'000'000ull;
    while (exporter.dumps() == 0 && rt::now_ns() < deadline) {
      std::this_thread::yield();
    }
    EXPECT_GT(exporter.dumps(), 0u);
  }  // Destructor stops the worker and performs a final dump.
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string content(1 << 12, '\0');
  content.resize(std::fread(content.data(), 1, content.size(), f));
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_NE(content.find("\"ticks\""), std::string::npos);
}

}  // namespace
}  // namespace sfc::obs
