// Failure detection and recovery tests (paper §5.2, §7.5): heartbeat
// detection, single and simultaneous failures, state integrity across
// failover, WAN recovery timing.
#include <gtest/gtest.h>

#include <thread>

#include "core/chain.hpp"
#include "mbox/monitor.hpp"
#include "mbox/nat.hpp"
#include "orch/orchestrator.hpp"
#include "tgen/traffic.hpp"

namespace sfc::orch {
namespace {

using ftc::ChainMode;
using ftc::ChainRuntime;
using ftc::FtcNode;
using ftc::InOrderApplier;

ChainRuntime::Spec monitor_chain(std::size_t len, std::uint32_t f = 1) {
  ChainRuntime::Spec spec;
  spec.mode = ChainMode::kFtc;
  spec.cfg.f = f;
  spec.cfg.threads_per_node = 1;
  spec.cfg.pool_packets = 2048;
  spec.cfg.propagate_interval_ns = 100'000;
  for (std::size_t i = 0; i < len; ++i) {
    spec.mbox_factories.push_back([]() -> std::unique_ptr<mbox::Middlebox> {
      return std::make_unique<mbox::Monitor>(1);
    });
  }
  return spec;
}

std::uint64_t monitor_count(FtcNode* node) {
  auto* monitor = dynamic_cast<mbox::Monitor*>(node->middlebox());
  const auto v = node->head()->store().get(monitor->counter_key(0));
  return v ? v->as<std::uint64_t>() : 0;
}

// Replication-convergence barrier: recovery rebuilds a head store from a
// replica's applier, so count comparisons against the pre-failure head are
// only exact once nothing is in flight. A fixed sleep is not enough on a
// slow host (e.g. under TSan, where draining the chain takes far longer
// than 50 ms).
void quiesce(ChainRuntime& chain) {
  const auto deadline = rt::now_ns() + 15'000'000'000ull;
  while (!chain.quiescent() && rt::now_ns() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(chain.quiescent());
}

void pump(ChainRuntime& chain, tgen::TrafficSource& src, tgen::TrafficSink& sink,
          std::uint64_t target) {
  const auto deadline = rt::now_ns() + 20'000'000'000ull;
  while (sink.packets_received() < target && rt::now_ns() < deadline) {
    std::this_thread::yield();
  }
  ASSERT_GE(sink.packets_received(), target);
  (void)chain;
  (void)src;
}

void run_manual_failure_case(std::size_t burst_size) {
  auto spec = monitor_chain(3);
  spec.cfg.burst_size = burst_size;
  ChainRuntime chain(spec);
  chain.start();
  Orchestrator orch(chain);

  tgen::Workload w;
  tgen::TrafficSource source(chain.pool(), chain.ingress(), w, 30'000.0);
  tgen::TrafficSink sink(chain.pool(), chain.egress());
  sink.start();
  source.start();
  pump(chain, source, sink, 1000);

  // Remember the pre-failure state of middlebox 1 as seen by its replica.
  source.stop();
  quiesce(chain);
  const std::uint64_t pre_failure_count = monitor_count(chain.ftc_node(1));
  EXPECT_GT(pre_failure_count, 0u);

  // Kill node 1 (middlebox + its head). Its state must be rebuilt from the
  // successor's applier.
  chain.fail_position(1);
  auto reports = orch.recover({1});
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_TRUE(reports[0].success);
  EXPECT_GT(reports[0].state_recovery_ns, 0u);

  FtcNode* new_node = chain.ftc_node(1);
  EXPECT_NE(new_node->id(), reports[0].failed_node);
  // The recovered head store carries the full pre-failure count.
  EXPECT_EQ(monitor_count(new_node), pre_failure_count);

  // And the chain keeps working: more traffic flows end-to-end through the
  // replacement.
  const std::uint64_t before = sink.packets_received();
  tgen::TrafficSource source2(chain.pool(), chain.ingress(), w, 30'000.0);
  source2.start();
  const auto deadline = rt::now_ns() + 10'000'000'000ull;
  while (sink.packets_received() < before + 500 && rt::now_ns() < deadline) {
    std::this_thread::yield();
  }
  source2.stop();
  EXPECT_GE(sink.packets_received(), before + 500);

  // Converge before reading: shard-affine get() supports quiesced stores
  // only (straggler packets past the received-count check would otherwise
  // still be committing while we read).
  quiesce(chain);
  // The new head continues counting from the restored value.
  EXPECT_GT(monitor_count(new_node), pre_failure_count);

  sink.stop();
  chain.stop();
}

TEST(Recovery, ManualSingleFailureRestoresState) {
  run_manual_failure_case(32);
}

TEST(Recovery, ManualSingleFailureRestoresStateBurst1) {
  // Failure -> recovery must be burst-invariant (burst 1 = the
  // pre-batching per-packet data path).
  run_manual_failure_case(1);
}

TEST(Recovery, HeartbeatMonitorDetectsAndRecovers) {
  ChainRuntime chain(monitor_chain(3));
  chain.start();
  // Generous timings: the test suite runs many-threads-on-few-cores, so a
  // healthy node's pong can easily be delayed tens of milliseconds.
  OrchestratorConfig cfg;
  cfg.heartbeat_interval_ns = 10'000'000;
  cfg.failure_timeout_ns = 100'000'000;
  Orchestrator orch(chain, cfg);
  orch.start();

  tgen::Workload w;
  tgen::TrafficSource source(chain.pool(), chain.ingress(), w, 20'000.0);
  tgen::TrafficSink sink(chain.pool(), chain.egress());
  sink.start();
  source.start();
  pump(chain, source, sink, 500);

  const auto old_id = chain.ftc_node(2)->id();
  chain.fail_position(2);

  // The monitor must detect the silence and complete recovery on its own.
  const auto deadline = rt::now_ns() + 15'000'000'000ull;
  while (rt::now_ns() < deadline) {
    // The monitor swaps the replacement in before appending its report —
    // wait for both, or the assertions below race with the tail of the
    // monitor's recovery pass.
    if (chain.ftc_node(2)->id() != old_id && !chain.ftc_node(2)->has_failed() &&
        !orch.reports().empty()) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_NE(chain.ftc_node(2)->id(), old_id);
  EXPECT_GE(orch.failures_detected(), 1u);
  ASSERT_FALSE(orch.reports().empty());
  EXPECT_TRUE(orch.reports().back().success);

  // Traffic still flows.
  const std::uint64_t before = sink.packets_received();
  const auto deadline2 = rt::now_ns() + 10'000'000'000ull;
  while (sink.packets_received() < before + 300 && rt::now_ns() < deadline2) {
    std::this_thread::yield();
  }
  EXPECT_GE(sink.packets_received(), before + 300);

  source.stop();
  sink.stop();
  orch.stop();
  chain.stop();
}

TEST(Recovery, SimultaneousNonAdjacentFailures) {
  // f=1 tolerates one failure per replication group; failing positions 0
  // and 2 of a 4-chain touches disjoint groups and must recover.
  ChainRuntime chain(monitor_chain(4));
  chain.start();
  Orchestrator orch(chain);

  tgen::Workload w;
  tgen::TrafficSource source(chain.pool(), chain.ingress(), w, 30'000.0);
  tgen::TrafficSink sink(chain.pool(), chain.egress());
  sink.start();
  source.start();
  pump(chain, source, sink, 800);
  source.stop();
  quiesce(chain);

  const std::uint64_t count0 = monitor_count(chain.ftc_node(0));
  const std::uint64_t count2 = monitor_count(chain.ftc_node(2));

  chain.fail_position(0);
  chain.fail_position(2);
  auto reports = orch.recover({0, 2});
  ASSERT_EQ(reports.size(), 2u);
  EXPECT_TRUE(reports[0].success);
  EXPECT_TRUE(reports[1].success);

  EXPECT_EQ(monitor_count(chain.ftc_node(0)), count0);
  EXPECT_EQ(monitor_count(chain.ftc_node(2)), count2);

  sink.stop();
  chain.stop();
}

TEST(Recovery, FailoverWithHigherReplicationFactor) {
  // f=2: killing TWO adjacent nodes still leaves one copy of every store.
  ChainRuntime chain(monitor_chain(4, /*f=*/2));
  chain.start();
  Orchestrator orch(chain);

  tgen::Workload w;
  tgen::TrafficSource source(chain.pool(), chain.ingress(), w, 30'000.0);
  tgen::TrafficSink sink(chain.pool(), chain.egress());
  sink.start();
  source.start();
  pump(chain, source, sink, 800);
  source.stop();
  quiesce(chain);

  const std::uint64_t count1 = monitor_count(chain.ftc_node(1));
  const std::uint64_t count2 = monitor_count(chain.ftc_node(2));

  chain.fail_position(1);
  chain.fail_position(2);
  // One batch: the fetch plans must route around BOTH dead nodes to the
  // surviving group members, and routing updates only after both recover.
  auto reports = orch.recover({1, 2});
  ASSERT_EQ(reports.size(), 2u);
  ASSERT_TRUE(reports[0].success);
  ASSERT_TRUE(reports[1].success);

  EXPECT_EQ(monitor_count(chain.ftc_node(1)), count1);
  EXPECT_EQ(monitor_count(chain.ftc_node(2)), count2);

  sink.stop();
  chain.stop();
}

TEST(Recovery, NatStateSurvivesFailover) {
  // The full NAT flow table (bidirectional mappings + port counter) must
  // survive a head failure so existing connections keep their mappings.
  ChainRuntime::Spec spec;
  spec.mode = ChainMode::kFtc;
  spec.cfg.f = 1;
  spec.cfg.threads_per_node = 1;
  spec.cfg.pool_packets = 2048;
  spec.cfg.propagate_interval_ns = 100'000;
  spec.mbox_factories = {
      []() -> std::unique_ptr<mbox::Middlebox> {
        return std::make_unique<mbox::Monitor>(1);
      },
      []() -> std::unique_ptr<mbox::Middlebox> {
        return std::make_unique<mbox::MazuNat>();
      },
  };
  ChainRuntime chain(spec);
  chain.start();
  Orchestrator orch(chain);

  tgen::Workload w;
  w.num_flows = 24;
  tgen::TrafficSource source(chain.pool(), chain.ingress(), w, 30'000.0);
  tgen::TrafficSink sink(chain.pool(), chain.egress());
  sink.start();
  source.start();
  pump(chain, source, sink, 600);
  source.stop();
  // Converge before reading the mappings: stragglers past the pump target
  // are still creating NAT entries, and shard-affine get() supports
  // quiesced stores only.
  quiesce(chain);

  std::vector<state::Bytes> mappings;
  for (std::size_t i = 0; i < w.num_flows; ++i) {
    auto entry = chain.ftc_node(1)->head()->store().get(w.flow(i).hash());
    ASSERT_TRUE(entry.has_value());
    mappings.push_back(*entry);
  }

  chain.fail_position(1);
  auto reports = orch.recover({1});
  ASSERT_TRUE(reports[0].success);
  quiesce(chain);

  for (std::size_t i = 0; i < w.num_flows; ++i) {
    auto entry = chain.ftc_node(1)->head()->store().get(w.flow(i).hash());
    ASSERT_TRUE(entry.has_value()) << "flow " << i << " mapping lost";
    EXPECT_TRUE(*entry == mappings[i]) << "flow " << i << " mapping changed";
  }

  sink.stop();
  chain.stop();
}

TEST(Recovery, WanDelaysDominateRecoveryTime) {
  // Figure 13 setup: every server in its own cloud region, 10 ms one-way
  // inter-region delay. Initialization is bounded below by the
  // orchestrator<->replica RTT and state recovery by the replica<->source
  // RTT — WAN latency dominates, as the paper observes.
  constexpr std::uint64_t kOneWayNs = 10'000'000;
  ChainRuntime chain(monitor_chain(3));
  auto& ctrl = chain.control();
  ctrl.set_inter_region_delay(kOneWayNs);
  ctrl.set_region(net::kOrchestratorNode, 0);
  for (std::uint32_t pos = 0; pos < chain.ring_size(); ++pos) {
    chain.set_position_region(pos, pos + 1);  // One region per server.
  }
  chain.start();
  Orchestrator orch(chain);

  tgen::Workload w;
  tgen::TrafficSource source(chain.pool(), chain.ingress(), w, 20'000.0);
  tgen::TrafficSink sink(chain.pool(), chain.egress());
  sink.start();
  source.start();
  pump(chain, source, sink, 300);
  source.stop();
  // Drain in-flight packets so the pre-failure count is stable.
  const auto drain_deadline = rt::now_ns() + 10'000'000'000ull;
  while (!chain.quiescent() && rt::now_ns() < drain_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  const std::uint64_t count1 = monitor_count(chain.ftc_node(1));
  chain.fail_position(1);
  auto reports = orch.recover({1});
  ASSERT_TRUE(reports[0].success);

  // Initialization >= kInit + kInitAck across the WAN.
  EXPECT_GE(reports[0].initialization_ns, 2 * kOneWayNs);
  // State fetch >= request + response across the WAN (sources are in the
  // neighbor regions).
  EXPECT_GE(reports[0].state_recovery_ns, 2 * kOneWayNs);
  // Initialization (measured at the orchestrator, ends when the ack
  // arrives) and state recovery (measured at the replica) OVERLAP by one
  // one-way ack flight, so total is not their sum; it must still dominate
  // each component.
  EXPECT_GE(reports[0].total_ns, reports[0].initialization_ns);
  EXPECT_GE(reports[0].total_ns, reports[0].state_recovery_ns);
  // Rerouting is negligible compared to the WAN components (paper §7.5).
  // Compare against initialization rather than an absolute bound: on a
  // loaded single-core host even local work can take milliseconds of
  // wall-clock.
  EXPECT_LT(reports[0].rerouting_ns, reports[0].initialization_ns);
  // And the state survived the WAN trip intact.
  EXPECT_EQ(monitor_count(chain.ftc_node(1)), count1);

  sink.stop();
  chain.stop();
}

TEST(Recovery, TraceCapturesParkNackUnparkSequence) {
  // Lossy links make replicas park packets on missing log dependencies,
  // NACK the holder after the retransmit timeout, and unpark once the
  // response fills the gap. The protocol event trace must capture that
  // sequence in order on at least one node.
  auto spec = monitor_chain(3);
  spec.cfg.link.loss = 0.02;
  spec.cfg.link.delay_ns = 1000;  // Force the timed (lossy) path.
  spec.cfg.retransmit_timeout_ns = 2'000'000;
  spec.cfg.nack_min_gap_ns = 500'000;
  ChainRuntime chain(spec);
  chain.start();

  tgen::Workload w;
  tgen::TrafficSource source(chain.pool(), chain.ingress(), w, 50'000.0);
  tgen::TrafficSink sink(chain.pool(), chain.egress());
  sink.start();
  source.start();

  bool found = false;
  const auto deadline = rt::now_ns() + 15'000'000'000ull;
  while (!found && rt::now_ns() < deadline) {
    for (std::uint32_t pos = 0; pos < chain.ring_size() && !found; ++pos) {
      found = chain.ftc_node(pos)->trace().contains_sequence(
          {obs::Event::kPacketParked, obs::Event::kNackSent,
           obs::Event::kPacketUnparked});
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(found) << "no node traced park -> nack_sent -> unpark";

  source.stop();
  sink.stop();
  chain.stop();
}

TEST(Recovery, TraceAndMetricsCaptureRecoveryPhases) {
  ChainRuntime chain(monitor_chain(3));
  chain.start();
  Orchestrator orch(chain);

  tgen::Workload w;
  tgen::TrafficSource source(chain.pool(), chain.ingress(), w, 30'000.0);
  tgen::TrafficSink sink(chain.pool(), chain.egress());
  sink.start();
  source.start();
  pump(chain, source, sink, 500);
  source.stop();

  FtcNode* old_node = chain.ftc_node(1);
  chain.fail_position(1);
  EXPECT_TRUE(old_node->trace().contains_sequence({obs::Event::kFailure}));

  auto reports = orch.recover({1});
  ASSERT_EQ(reports.size(), 1u);
  ASSERT_TRUE(reports[0].success);

  // The replacement traced its recovery phases in protocol order.
  FtcNode* new_node = chain.ftc_node(1);
  EXPECT_TRUE(new_node->trace().contains_sequence(
      {obs::Event::kRecoveryInit, obs::Event::kRecoveryFetchStart,
       obs::Event::kRecoveryFetchDone, obs::Event::kRecoveryDone}));

  // The orchestrator's trace and metrics agree.
  auto& registry = chain.registry();
  EXPECT_TRUE(registry.trace("orch.events", {{"node", "orch"}})
                  .contains_sequence({obs::Event::kRecoverySpawn,
                                      obs::Event::kRecoveryInitAck,
                                      obs::Event::kRecoveryRerouted}));
  EXPECT_GE(registry.counter("orch.recoveries", {{"node", "orch"}}).value(),
            1u);
  EXPECT_GE(registry.timer("orch.recovery_total_ns").snapshot().count(), 1u);

  sink.stop();
  chain.stop();
}

}  // namespace
}  // namespace sfc::orch
