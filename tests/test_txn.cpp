// Tests for transactional packet processing: 2PL semantics, wound-wait,
// abort/re-execute, dependency-vector sequence assignment.
#include <gtest/gtest.h>

#include <atomic>
#include <barrier>
#include <thread>
#include <vector>

#include "state/txn.hpp"

namespace sfc::state {
namespace {

TEST(Txn, ReadMissingReturnsNullopt) {
  StateStore store(8);
  TxnContext ctx(store);
  auto rec = run_transaction(ctx, [](Txn& t) {
    EXPECT_FALSE(t.read(1).has_value());
    EXPECT_FALSE(t.contains(1));
  });
  EXPECT_TRUE(rec.read_only());
  EXPECT_NE(rec.touched_mask, 0u);
}

TEST(Txn, WriteThenReadInSameTxn) {
  StateStore store(8);
  TxnContext ctx(store);
  run_transaction(ctx, [](Txn& t) {
    t.write(5, Bytes::of<std::uint64_t>(99));
    auto v = t.read(5);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(v->as<std::uint64_t>(), 99u);
  });
  EXPECT_EQ(store.get(5)->as<std::uint64_t>(), 99u);
}

TEST(Txn, EraseVisibleInTxnAndAfterCommit) {
  StateStore store(8);
  TxnContext ctx(store);
  run_transaction(ctx, [](Txn& t) { t.write(5, Bytes::of<int>(1)); });
  run_transaction(ctx, [](Txn& t) {
    EXPECT_TRUE(t.contains(5));
    t.erase(5);
    EXPECT_FALSE(t.contains(5));
    EXPECT_FALSE(t.read(5).has_value());
  });
  EXPECT_FALSE(store.get(5).has_value());
}

TEST(Txn, UncommittedWritesAreInvisible) {
  StateStore store(8);
  TxnContext ctx(store);
  {
    Txn t(ctx, ctx.next_timestamp());
    t.write(7, Bytes::of<int>(1));
    t.rollback();
  }
  EXPECT_FALSE(store.get(7).has_value());
}

TEST(Txn, DestructorWithoutCommitRollsBack) {
  StateStore store(8);
  TxnContext ctx(store);
  {
    Txn t(ctx, ctx.next_timestamp());
    t.write(7, Bytes::of<int>(1));
    // No commit: destructor must release locks and discard writes.
  }
  EXPECT_FALSE(store.get(7).has_value());
  // Locks must be free: another transaction can proceed.
  run_transaction(ctx, [](Txn& t) { t.write(7, Bytes::of<int>(2)); });
  EXPECT_EQ(store.get(7)->as<int>(), 2);
}

TEST(Txn, FetchAddCountsFromZero) {
  StateStore store(8);
  TxnContext ctx(store);
  run_transaction(ctx, [](Txn& t) { EXPECT_EQ(t.fetch_add(3, 5), 5u); });
  run_transaction(ctx, [](Txn& t) { EXPECT_EQ(t.fetch_add(3, 5), 10u); });
  EXPECT_EQ(store.get(3)->as<std::uint64_t>(), 10u);
}

TEST(Txn, WriteSetDeduplicatesPerKey) {
  StateStore store(8);
  TxnContext ctx(store);
  auto rec = run_transaction(ctx, [](Txn& t) {
    t.write(1, Bytes::of<int>(1));
    t.write(1, Bytes::of<int>(2));
    t.write(1, Bytes::of<int>(3));
  });
  ASSERT_EQ(rec.writes.size(), 1u);
  EXPECT_EQ(rec.writes[0].value.as<int>(), 3);
  EXPECT_EQ(store.get(1)->as<int>(), 3);
}

TEST(Txn, ReadOnlyTxnDoesNotBumpSequences) {
  StateStore store(8);
  TxnContext ctx(store);
  run_transaction(ctx, [](Txn& t) { t.write(1, Bytes::of<int>(1)); });
  const auto before = ctx.sequence_snapshot();
  run_transaction(ctx, [](Txn& t) { (void)t.read(1); });
  EXPECT_EQ(ctx.sequence_snapshot(), before);
}

TEST(Txn, WritingTxnBumpsEveryTouchedPartition) {
  StateStore store(8);
  TxnContext ctx(store);
  // Find two keys in distinct partitions.
  Key a = 0, b = 1;
  while (store.partition_of(a) == store.partition_of(b)) ++b;

  auto rec = run_transaction(ctx, [&](Txn& t) {
    (void)t.read(a);                  // Read-only access to a's partition.
    t.write(b, Bytes::of<int>(1));    // Write access to b's partition.
  });
  const auto pa = store.partition_of(a);
  const auto pb = store.partition_of(b);
  EXPECT_TRUE(rec.touched_mask & (1ULL << pa));
  EXPECT_TRUE(rec.touched_mask & (1ULL << pb));
  EXPECT_EQ(rec.seqs[pa], 1u);  // Reads in a writing txn ARE sequenced.
  EXPECT_EQ(rec.seqs[pb], 1u);
  const auto seqs = ctx.sequence_snapshot();
  EXPECT_EQ(seqs[pa], 1u);
  EXPECT_EQ(seqs[pb], 1u);
}

TEST(Txn, SequencesAreMonotonicPerPartition) {
  StateStore store(4);
  TxnContext ctx(store);
  const Key k = 9;
  const auto p = store.partition_of(k);
  for (std::uint64_t i = 1; i <= 10; ++i) {
    auto rec = run_transaction(ctx, [&](Txn& t) { t.fetch_add(k, 1); });
    EXPECT_EQ(rec.seqs[p], i);
  }
}

TEST(Txn, RestoreSequencesAfterFailover) {
  StateStore store(8);
  TxnContext ctx(store);
  std::array<std::uint64_t, kMaxPartitions> seqs{};
  seqs.fill(42);
  ctx.restore_sequences(seqs);
  const Key k = 1;
  auto rec = run_transaction(ctx, [&](Txn& t) { t.write(k, Bytes::of<int>(1)); });
  EXPECT_EQ(rec.seqs[store.partition_of(k)], 43u);
}

TEST(Txn, ConcurrentCountersAreExact) {
  StateStore store(16);
  TxnContext ctx(store);
  constexpr int kThreads = 8;
  constexpr int kIncrements = 20000;
  const Key shared = key_of_name("shared-counter");

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i) {
        run_transaction(ctx, [&](Txn& txn) { txn.fetch_add(shared, 1); });
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(store.get(shared)->as<std::uint64_t>(),
            static_cast<std::uint64_t>(kThreads) * kIncrements);
}

TEST(Txn, WoundWaitResolvesCrossLockContention) {
  // Two keys in different partitions, accessed in opposite order by two
  // thread groups: a classic deadlock shape that wound-wait must resolve.
  StateStore store(16);
  TxnContext ctx(store);
  Key a = 0, b = 1;
  while (store.partition_of(a) == store.partition_of(b)) ++b;

  constexpr int kRounds = 5000;
  std::barrier sync(2);
  std::thread t1([&] {
    sync.arrive_and_wait();
    for (int i = 0; i < kRounds; ++i) {
      run_transaction(ctx, [&](Txn& t) {
        t.fetch_add(a, 1);
        t.fetch_add(b, 1);
      });
    }
  });
  std::thread t2([&] {
    sync.arrive_and_wait();
    for (int i = 0; i < kRounds; ++i) {
      run_transaction(ctx, [&](Txn& t) {
        t.fetch_add(b, 1);
        t.fetch_add(a, 1);
      });
    }
  });
  t1.join();
  t2.join();
  EXPECT_EQ(store.get(a)->as<std::uint64_t>(), 2u * kRounds);
  EXPECT_EQ(store.get(b)->as<std::uint64_t>(), 2u * kRounds);
}

TEST(Txn, AllPartitionTransactionsStayExactUnderRotatedOrders) {
  // Every transaction touches all 8 keys (8 distinct partitions) in a
  // rotated order — the worst case for deadlock avoidance. Counts must be
  // exact and the run must terminate (no livelock).
  StateStore store(16);
  TxnContext ctx(store);
  std::vector<Key> keys;
  for (Key k = 0; keys.size() < 8; ++k) {
    bool dup = false;
    for (Key e : keys) dup |= store.partition_of(e) == store.partition_of(k);
    if (!dup) keys.push_back(k);
  }

  constexpr int kThreads = 8;
  constexpr int kRounds = 1500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kRounds; ++i) {
        run_transaction(ctx, [&](Txn& txn) {
          // Each thread touches all keys in a rotated order.
          for (std::size_t j = 0; j < keys.size(); ++j) {
            txn.fetch_add(keys[(j + static_cast<std::size_t>(t)) % keys.size()], 1);
          }
        });
      }
    });
  }
  for (auto& t : threads) t.join();
  for (Key k : keys) {
    EXPECT_EQ(store.get(k)->as<std::uint64_t>(),
              static_cast<std::uint64_t>(kThreads) * kRounds);
  }
}

TEST(Txn, OlderTransactionWoundsYoungerLockHolder) {
  // Deterministic wound-wait exercise: a younger transaction holds a
  // partition lock; an older transaction requests it. The younger must
  // observe the wound at its next state access and abort; the older must
  // then acquire the lock and commit.
  StateStore store(8);
  TxnContext ctx(store);
  const Key k = 21;

  const std::uint64_t older_ts = ctx.next_timestamp();
  const std::uint64_t younger_ts = ctx.next_timestamp();
  ASSERT_LT(older_ts, younger_ts);

  std::atomic<bool> younger_holds{false};
  std::atomic<bool> younger_aborted{false};

  std::thread younger([&] {
    Txn txn(ctx, younger_ts);
    (void)txn.read(k);  // Acquires the partition lock.
    younger_holds.store(true);
    try {
      // Poll state accesses until the wound lands.
      for (int i = 0; i < 1000000 && !younger_aborted.load(); ++i) {
        (void)txn.read(k);
        std::this_thread::yield();
      }
    } catch (const TxnAborted&) {
      younger_aborted.store(true);
      txn.rollback();
    }
  });

  while (!younger_holds.load()) std::this_thread::yield();

  Txn older(ctx, older_ts);
  older.write(k, Bytes::of<int>(7));  // Blocks until the younger aborts.
  auto rec = older.commit();
  EXPECT_EQ(rec.writes.size(), 1u);

  younger.join();
  EXPECT_TRUE(younger_aborted.load());
  EXPECT_GE(ctx.aborts(), 1u);
  EXPECT_EQ(store.get(k)->as<int>(), 7);
}

TEST(Txn, YoungerWaitsForOlderWithoutWounding) {
  // Inverse case: the older transaction holds the lock; the younger must
  // wait (not wound). We verify the older is never aborted.
  StateStore store(8);
  TxnContext ctx(store);
  const Key k = 33;

  const std::uint64_t older_ts = ctx.next_timestamp();
  const std::uint64_t younger_ts = ctx.next_timestamp();

  Txn older(ctx, older_ts);
  older.write(k, Bytes::of<int>(1));  // Holds the lock.

  std::atomic<bool> younger_done{false};
  std::thread younger([&] {
    run_transaction(ctx, [&](Txn& t) { t.write(k, Bytes::of<int>(2)); },
                    younger_ts);
    younger_done.store(true);
  });

  // Give the younger ample time to (incorrectly) wound us.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(younger_done.load());
  auto rec = older.commit();  // Must succeed: we were never wounded.
  EXPECT_EQ(rec.writes.size(), 1u);

  younger.join();
  EXPECT_EQ(store.get(k)->as<int>(), 2);  // Younger committed after.
}

TEST(Txn, SerializabilityOfReadModifyWritePairs) {
  // Invariant: two keys start equal and every transaction adds the same
  // delta to both; serializability implies they remain equal after any
  // concurrent execution.
  StateStore store(16);
  TxnContext ctx(store);
  Key a = 10, b = 11;
  while (store.partition_of(a) == store.partition_of(b)) ++b;

  constexpr int kThreads = 6;
  constexpr int kRounds = 4000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kRounds; ++i) {
        run_transaction(ctx, [&](Txn& txn) {
          if (t % 2 == 0) {
            const auto va = txn.read(a);
            txn.write(a, Bytes::of(va ? va->as<std::uint64_t>() + 1 : 1ull));
            const auto vb = txn.read(b);
            txn.write(b, Bytes::of(vb ? vb->as<std::uint64_t>() + 1 : 1ull));
          } else {
            const auto vb = txn.read(b);
            txn.write(b, Bytes::of(vb ? vb->as<std::uint64_t>() + 1 : 1ull));
            const auto va = txn.read(a);
            txn.write(a, Bytes::of(va ? va->as<std::uint64_t>() + 1 : 1ull));
          }
        });
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(store.get(a)->as<std::uint64_t>(), store.get(b)->as<std::uint64_t>());
  EXPECT_EQ(store.get(a)->as<std::uint64_t>(),
            static_cast<std::uint64_t>(kThreads) * kRounds);
}

// Parameterized sweep: the exact-counter invariant must hold across
// partition counts and thread counts.
struct TxnSweepParam {
  std::size_t partitions;
  int threads;
};

class TxnSweep : public ::testing::TestWithParam<TxnSweepParam> {};

TEST_P(TxnSweep, ExactCountsUnderContention) {
  const auto param = GetParam();
  StateStore store(param.partitions);
  TxnContext ctx(store);
  constexpr int kIncrements = 5000;
  const Key k = 77;

  std::vector<std::thread> threads;
  for (int t = 0; t < param.threads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i) {
        run_transaction(ctx, [&](Txn& txn) { txn.fetch_add(k, 1); });
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(store.get(k)->as<std::uint64_t>(),
            static_cast<std::uint64_t>(param.threads) * kIncrements);
}

INSTANTIATE_TEST_SUITE_P(
    PartitionAndThreadSweep, TxnSweep,
    ::testing::Values(TxnSweepParam{1, 2}, TxnSweepParam{1, 8},
                      TxnSweepParam{4, 4}, TxnSweepParam{16, 8},
                      TxnSweepParam{16, 2}, TxnSweepParam{8, 8}),
    [](const ::testing::TestParamInfo<TxnSweepParam>& info) {
      return "p" + std::to_string(info.param.partitions) + "_t" +
             std::to_string(info.param.threads);
    });

}  // namespace
}  // namespace sfc::state
