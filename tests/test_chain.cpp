// End-to-end chain integration tests: NF / FTC / FTMB pipelines carrying
// real traffic, state replication invariants, loss and reordering.
#include <gtest/gtest.h>

#include <thread>

#include "core/chain.hpp"
#include "mbox/firewall.hpp"
#include "mbox/gen.hpp"
#include "mbox/monitor.hpp"
#include "mbox/nat.hpp"
#include "tgen/traffic.hpp"

namespace sfc::ftc {
namespace {

using mbox::Middlebox;

FtcNode::MboxFactory monitor_factory(std::uint32_t sharing = 1) {
  return [sharing]() -> std::unique_ptr<Middlebox> {
    return std::make_unique<mbox::Monitor>(sharing);
  };
}

FtcNode::MboxFactory nat_factory() {
  return []() -> std::unique_ptr<Middlebox> {
    return std::make_unique<mbox::MazuNat>();
  };
}

ChainRuntime::Spec spec_for(ChainMode mode, std::size_t chain_len,
                            std::uint32_t f = 1, std::size_t threads = 1) {
  ChainRuntime::Spec spec;
  spec.mode = mode;
  spec.cfg.f = f;
  spec.cfg.threads_per_node = threads;
  spec.cfg.pool_packets = 2048;
  spec.cfg.propagate_interval_ns = 100'000;  // Aggressive idle propagation.
  for (std::size_t i = 0; i < chain_len; ++i) {
    spec.mbox_factories.push_back(monitor_factory());
  }
  return spec;
}

void pump_and_wait(ChainRuntime& chain, std::uint64_t packets,
                   const tgen::Workload& workload) {
  tgen::TrafficSource source(chain.pool(), chain.ingress(), workload);
  tgen::TrafficSink sink(chain.pool(), chain.egress());
  sink.start();
  source.start();
  const auto deadline = rt::now_ns() + 20'000'000'000ull;
  while (source.packets_sent() < packets && rt::now_ns() < deadline) {
    std::this_thread::yield();
  }
  source.stop();
  while (sink.packets_received() < packets && rt::now_ns() < deadline) {
    std::this_thread::yield();
  }
  // Drain stragglers before stopping the sink: the source can overshoot
  // `packets` between our observation and stop() taking effect, and
  // stopping the sink with packets still in flight wedges them behind the
  // egress link — per-mode bookkeeping (e.g. FTMB PAL counters) would then
  // never settle. Wait until the received count is stable for a beat.
  std::uint64_t last_received = sink.packets_received();
  std::uint64_t stable_since = rt::now_ns();
  while (rt::now_ns() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    const std::uint64_t now_received = sink.packets_received();
    if (now_received != last_received) {
      last_received = now_received;
      stable_since = rt::now_ns();
    } else if (rt::now_ns() - stable_since > 50'000'000ull) {
      break;
    }
  }
  sink.stop();
  ASSERT_GE(sink.packets_received(), packets) << "chain did not deliver";
}

/// Waits until the idle-propagation machinery has flushed all replication
/// state: every buffer hold released and appliers converged.
void wait_for_convergence(ChainRuntime& chain, std::uint64_t timeout_ns) {
  const auto deadline = rt::now_ns() + timeout_ns;
  while (rt::now_ns() < deadline) {
    if (chain.quiescent()) {
      // Re-check after a beat: a packet can be between poll() and emit()
      // (in no queue) when we sample.
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      if (chain.quiescent()) return;
      continue;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ADD_FAILURE() << "chain did not quiesce within timeout";
}

TEST(NfChain, DeliversAllPackets) {
  ChainRuntime chain(spec_for(ChainMode::kNf, 3));
  chain.start();
  tgen::Workload w;
  constexpr std::uint64_t kPackets = 2000;
  pump_and_wait(chain, kPackets, w);

  // Every Monitor in the chain counted every packet.
  for (std::uint32_t i = 0; i < 3; ++i) {
    auto* node = chain.nf_node(i);
    ASSERT_NE(node, nullptr);
    auto* monitor = dynamic_cast<mbox::Monitor*>(node->middlebox());
    const auto count = node->store().get(monitor->counter_key(0));
    ASSERT_TRUE(count.has_value());
    EXPECT_GE(count->as<std::uint64_t>(), kPackets);
  }
  chain.stop();
}

TEST(FtcChain, DeliversAllPacketsAndReplicates) {
  ChainRuntime chain(spec_for(ChainMode::kFtc, 3));
  chain.start();
  tgen::Workload w;
  constexpr std::uint64_t kPackets = 2000;
  pump_and_wait(chain, kPackets, w);
  wait_for_convergence(chain, 5'000'000'000ull);

  // Invariant: for each middlebox m, the replica store at m's successor
  // converges to the head store contents once the chain drains.
  for (std::uint32_t m = 0; m < 3; ++m) {
    auto* head_node = chain.ftc_node(m);
    auto* replica_node = chain.ftc_node((m + 1) % chain.ring_size());
    ASSERT_NE(head_node, nullptr);
    ASSERT_NE(replica_node, nullptr);
    auto* monitor = dynamic_cast<mbox::Monitor*>(head_node->middlebox());
    const state::Key key = monitor->counter_key(0);

    const auto head_count = head_node->head()->store().get(key);
    ASSERT_TRUE(head_count.has_value());
    EXPECT_GE(head_count->as<std::uint64_t>(), kPackets);

    InOrderApplier* applier = replica_node->applier(m);
    ASSERT_NE(applier, nullptr);
    const auto replica_count = applier->store().get(key);
    ASSERT_TRUE(replica_count.has_value()) << "mbox " << m;
    EXPECT_EQ(replica_count->as<std::uint64_t>(),
              head_count->as<std::uint64_t>())
        << "mbox " << m << " replica lag";
  }
  EXPECT_EQ(chain.buffer()->held_count(), 0u);
  chain.stop();
}

TEST(FtcChain, SingleMiddleboxChainExtendsRing) {
  // Chain of 1 middlebox with f=1 must extend to a ring of 2 (paper §5.1).
  ChainRuntime chain(spec_for(ChainMode::kFtc, 1));
  EXPECT_EQ(chain.ring_size(), 2u);
  chain.start();
  tgen::Workload w;
  constexpr std::uint64_t kPackets = 1000;
  pump_and_wait(chain, kPackets, w);
  wait_for_convergence(chain, 5'000'000'000ull);

  auto* head_node = chain.ftc_node(0);
  auto* replica_node = chain.ftc_node(1);
  EXPECT_TRUE(head_node->has_mbox());
  EXPECT_FALSE(replica_node->has_mbox());  // Pure replica extension.
  auto* monitor = dynamic_cast<mbox::Monitor*>(head_node->middlebox());
  const auto key = monitor->counter_key(0);
  const auto head_count = head_node->head()->store().get(key);
  const auto replica = replica_node->applier(0);
  ASSERT_NE(replica, nullptr);
  ASSERT_TRUE(head_count.has_value());
  ASSERT_TRUE(replica->store().get(key).has_value());
  EXPECT_EQ(replica->store().get(key)->as<std::uint64_t>(),
            head_count->as<std::uint64_t>());
  chain.stop();
}

TEST(FtcChain, NatChainRewritesAndReplicatesFlowTable) {
  ChainRuntime::Spec spec;
  spec.mode = ChainMode::kFtc;
  spec.cfg.f = 1;
  spec.cfg.threads_per_node = 1;
  spec.cfg.pool_packets = 2048;
  spec.cfg.propagate_interval_ns = 100'000;
  spec.mbox_factories = {monitor_factory(), nat_factory()};
  ChainRuntime chain(spec);
  chain.start();

  tgen::Workload w;
  w.num_flows = 16;
  constexpr std::uint64_t kPackets = 1000;
  pump_and_wait(chain, kPackets, w);
  wait_for_convergence(chain, 5'000'000'000ull);

  // The NAT (position 1) created one forward + one reverse mapping per
  // flow plus the port counter; its replica (ring position 0) must agree.
  auto* nat_node = chain.ftc_node(1);
  auto* replica_node = chain.ftc_node(0);
  InOrderApplier* applier = replica_node->applier(1);
  ASSERT_NE(applier, nullptr);
  EXPECT_EQ(nat_node->head()->store().total_entries(), 2 * w.num_flows + 1);
  EXPECT_EQ(applier->store().total_entries(), 2 * w.num_flows + 1);

  for (std::size_t i = 0; i < w.num_flows; ++i) {
    const auto key = w.flow(i).hash();
    const auto head_entry = nat_node->head()->store().get(key);
    const auto replica_entry = applier->store().get(key);
    ASSERT_TRUE(head_entry.has_value());
    ASSERT_TRUE(replica_entry.has_value());
    EXPECT_TRUE(*head_entry == *replica_entry);
  }
  chain.stop();
}

void run_lossy_retransmission_case(std::size_t burst_size) {
  auto spec = spec_for(ChainMode::kFtc, 3);
  spec.cfg.link.loss = 0.01;           // 1% loss on every hop.
  spec.cfg.link.delay_ns = 1000;       // Force the timed (lossy) path.
  spec.cfg.retransmit_timeout_ns = 2'000'000;
  spec.cfg.nack_min_gap_ns = 500'000;
  spec.cfg.burst_size = burst_size;
  ChainRuntime chain(spec);
  chain.start();

  tgen::Workload w;
  tgen::TrafficSource source(chain.pool(), chain.ingress(), w, 50'000.0);
  tgen::TrafficSink sink(chain.pool(), chain.egress());
  sink.start();
  source.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  source.stop();
  std::this_thread::sleep_for(std::chrono::milliseconds(600));

  // Some packets were lost (that is expected); state must stay consistent:
  // after convergence each replica matches its head exactly.
  wait_for_convergence(chain, 10'000'000'000ull);
  std::this_thread::sleep_for(std::chrono::milliseconds(200));

  for (std::uint32_t m = 0; m < 3; ++m) {
    auto* head_node = chain.ftc_node(m);
    auto* replica_node = chain.ftc_node((m + 1) % chain.ring_size());
    auto* monitor = dynamic_cast<mbox::Monitor*>(head_node->middlebox());
    const auto key = monitor->counter_key(0);
    const auto head_count = head_node->head()->store().get(key);
    ASSERT_TRUE(head_count.has_value());
    InOrderApplier* applier = replica_node->applier(m);
    const auto replica_count = applier->store().get(key);
    ASSERT_TRUE(replica_count.has_value());
    EXPECT_EQ(replica_count->as<std::uint64_t>(),
              head_count->as<std::uint64_t>())
        << "replica of mbox " << m << " diverged under loss";
  }
  sink.stop();
  chain.stop();
}

TEST(FtcChain, SurvivesLossyLinksWithRetransmission) {
  run_lossy_retransmission_case(32);
}

TEST(FtcChain, SurvivesLossyLinksWithRetransmissionBurst1) {
  // Burst 1 = the pre-batching per-packet data path; loss -> NACK ->
  // retransmission must behave identically.
  run_lossy_retransmission_case(1);
}

void run_reordering_case(std::size_t burst_size) {
  auto spec = spec_for(ChainMode::kFtc, 2, /*f=*/1, /*threads=*/2);
  spec.cfg.link.delay_ns = 2000;
  spec.cfg.link.reorder = 0.05;
  spec.cfg.link.reorder_extra_ns = 50'000;
  spec.cfg.burst_size = burst_size;
  ChainRuntime chain(spec);
  chain.start();

  tgen::Workload w;
  constexpr std::uint64_t kPackets = 1500;
  pump_and_wait(chain, kPackets, w);
  wait_for_convergence(chain, 10'000'000'000ull);

  auto* head_node = chain.ftc_node(0);
  auto* replica_node = chain.ftc_node(1);
  auto* monitor = dynamic_cast<mbox::Monitor*>(head_node->middlebox());
  // With 2 threads at sharing level 1 there are two counters.
  for (std::uint32_t t = 0; t < 2; ++t) {
    const auto key = monitor->counter_key(t);
    const auto head_count = head_node->head()->store().get(key);
    if (!head_count) continue;  // Thread may not have processed anything.
    const auto replica_count = replica_node->applier(0)->store().get(key);
    ASSERT_TRUE(replica_count.has_value());
    EXPECT_EQ(replica_count->as<std::uint64_t>(),
              head_count->as<std::uint64_t>());
  }
  chain.stop();
}

TEST(FtcChain, ToleratesReorderingViaDependencyVectors) {
  run_reordering_case(32);
}

TEST(FtcChain, ToleratesReorderingViaDependencyVectorsBurst1) {
  run_reordering_case(1);
}

TEST(FtcChain, FilteringMiddleboxEmitsPropagatingPackets) {
  // Firewall drops half the traffic; the Monitor behind it must still
  // replicate correctly (drop-generated propagating packets carry state).
  ChainRuntime::Spec spec;
  spec.mode = ChainMode::kFtc;
  spec.cfg.f = 1;
  spec.cfg.threads_per_node = 1;
  spec.cfg.pool_packets = 2048;
  spec.cfg.propagate_interval_ns = 100'000;
  spec.mbox_factories = {
      monitor_factory(),
      []() -> std::unique_ptr<Middlebox> {
        // Deny all traffic to odd destination ports.
        std::vector<mbox::FirewallRule> rules;
        rules.push_back(mbox::FirewallRule{
            0, 0, 0, 0, /*dst_port=*/443, /*protocol=*/0, /*allow=*/false});
        return std::make_unique<mbox::Firewall>(std::move(rules), true);
      },
      monitor_factory(),
  };
  ChainRuntime chain(spec);
  chain.start();

  // Half the flows hit port 443 (denied), half port 80 (allowed).
  tgen::Workload denied;
  denied.dst_port = 443;
  denied.num_flows = 8;
  tgen::Workload allowed;
  allowed.dst_port = 80;
  allowed.num_flows = 8;

  tgen::TrafficSink sink(chain.pool(), chain.egress());
  sink.start();
  tgen::TrafficSource src_denied(chain.pool(), chain.ingress(), denied, 20'000);
  tgen::TrafficSource src_allowed(chain.pool(), chain.ingress(), allowed, 20'000);
  src_denied.start();
  src_allowed.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  src_denied.stop();
  src_allowed.stop();
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  wait_for_convergence(chain, 5'000'000'000ull);

  // Monitor 0 (before the firewall) counted everything and must be fully
  // replicated at node 1 even though half its packets died at the firewall.
  auto* m0 = chain.ftc_node(0);
  auto* monitor = dynamic_cast<mbox::Monitor*>(m0->middlebox());
  const auto key = monitor->counter_key(0);
  const auto head_count = m0->head()->store().get(key);
  ASSERT_TRUE(head_count.has_value());
  const auto replica_count = chain.ftc_node(1)->applier(0)->store().get(key);
  ASSERT_TRUE(replica_count.has_value());
  EXPECT_EQ(replica_count->as<std::uint64_t>(), head_count->as<std::uint64_t>());
  EXPECT_GT(chain.ftc_node(1)->stats().drops_filtered, 0u);

  sink.stop();
  chain.stop();
}

TEST(FtmbChain, DeliversAndEmitsPals) {
  ChainRuntime chain(spec_for(ChainMode::kFtmb, 2));
  chain.start();
  tgen::Workload w;
  constexpr std::uint64_t kPackets = 1000;
  pump_and_wait(chain, kPackets, w);

  for (std::uint32_t i = 0; i < 2; ++i) {
    auto* master = chain.ftmb_master(i);
    auto* logger = chain.ftmb_logger(i);
    ASSERT_NE(master, nullptr);
    ASSERT_NE(logger, nullptr);
    // Monitor does one fetch_add = two accesses (read+write) per packet.
    EXPECT_GE(master->pals_sent(), kPackets);
    EXPECT_EQ(logger->pals_received(), master->pals_sent());
    EXPECT_GE(logger->inputs_logged(), kPackets);
  }
  chain.stop();
}

TEST(FtmbChain, SnapshotModeStalls) {
  auto spec = spec_for(ChainMode::kFtmbSnapshot, 2);
  spec.cfg.snapshot_interval_ns = 20'000'000;  // 20 ms for test speed.
  spec.cfg.snapshot_stall_ns = 2'000'000;
  ChainRuntime chain(spec);
  chain.start();
  tgen::Workload w;
  tgen::TrafficSource source(chain.pool(), chain.ingress(), w, 10'000);
  tgen::TrafficSink sink(chain.pool(), chain.egress());
  sink.start();
  source.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  source.stop();
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  sink.stop();
  EXPECT_GT(chain.ftmb_master(0)->snapshot_stalls(), 5u);
  chain.stop();
}

TEST(FtcChain, ReplicationFactorTwoGroupsSpanTwoSuccessors) {
  // f=2 on a 4-chain: each middlebox's state must appear on BOTH
  // successors.
  auto spec = spec_for(ChainMode::kFtc, 4, /*f=*/2);
  ChainRuntime chain(spec);
  chain.start();
  tgen::Workload w;
  constexpr std::uint64_t kPackets = 1500;
  pump_and_wait(chain, kPackets, w);
  wait_for_convergence(chain, 10'000'000'000ull);

  for (std::uint32_t m = 0; m < 4; ++m) {
    auto* head_node = chain.ftc_node(m);
    auto* monitor = dynamic_cast<mbox::Monitor*>(head_node->middlebox());
    const auto key = monitor->counter_key(0);
    const auto head_count = head_node->head()->store().get(key);
    ASSERT_TRUE(head_count.has_value());
    for (std::uint32_t k = 1; k <= 2; ++k) {
      auto* replica_node = chain.ftc_node((m + k) % chain.ring_size());
      InOrderApplier* applier = replica_node->applier(m);
      ASSERT_NE(applier, nullptr) << "mbox " << m << " succ " << k;
      const auto count = applier->store().get(key);
      ASSERT_TRUE(count.has_value()) << "mbox " << m << " succ " << k;
      EXPECT_EQ(count->as<std::uint64_t>(), head_count->as<std::uint64_t>())
          << "mbox " << m << " succ " << k;
    }
  }
  chain.stop();
}

}  // namespace
}  // namespace sfc::ftc
