// Differential tests for the zero-copy piggyback view against the
// materializing serializer (which stays as the out-of-band path and serves
// as the oracle here), plus malformed-input rejection. Randomized cases
// use a fixed seed so failures reproduce.
#include <gtest/gtest.h>

#include <array>
#include <bit>
#include <random>
#include <vector>

#include "core/config.hpp"
#include "core/piggyback.hpp"
#include "core/stores.hpp"
#include "packet/packet_io.hpp"

namespace sfc::ftc {
namespace {

constexpr std::size_t kParts = 8;  // Non-max width exercises zero-fill.

pkt::Packet make_wire_packet(std::size_t payload = 256) {
  pkt::Packet p;
  const pkt::FlowKey flow{0x0a000001, 0x08080808, 1234, 80,
                          pkt::Ipv4Header::kProtoUdp};
  pkt::PacketBuilder(p).udp(flow, payload);
  return p;
}

// Value bytes must outlive the logs (state::Bytes in a StateUpdate owns
// its bytes? No — Bytes copies; see state_store). Bytes owns a copy, so a
// temporary vector is fine.
PiggybackLog random_log(std::mt19937_64& rng) {
  PiggybackLog log;
  log.mbox = static_cast<MboxId>(rng() % 4);
  const std::size_t n_parts = 1 + rng() % 3;
  for (std::size_t i = 0; i < n_parts; ++i) {
    const std::size_t part = rng() % state::kMaxPartitions;
    log.dep.mask |= 1ULL << part;
    log.dep.seq[part] = rng() % 1000 + 1;
  }
  const std::size_t n_writes = rng() % 5;
  for (std::size_t i = 0; i < n_writes; ++i) {
    const std::uint64_t key = rng() % 512;
    const bool erase = rng() % 4 == 0;
    if (erase) {
      log.writes.push_back({key, state::Bytes{}, true});
    } else {
      std::vector<std::uint8_t> bytes(rng() % 300);
      for (auto& b : bytes) b = static_cast<std::uint8_t>(rng());
      log.writes.push_back(
          {key, state::Bytes(bytes.data(), bytes.size()), false});
    }
  }
  return log;
}

std::size_t log_wire_size(const PiggybackLog& log) {
  std::size_t n = 4 + 8 + 2 + 8 * static_cast<std::size_t>(
                                      std::popcount(log.dep.mask));
  for (const auto& w : log.writes) n += 10 + w.value.size();
  return n;
}

PiggybackMessage random_message(std::mt19937_64& rng, std::size_t max_logs) {
  PiggybackMessage msg;
  const std::size_t n_logs = rng() % (max_logs + 1);
  for (std::size_t i = 0; i < n_logs; ++i) msg.logs.push_back(random_log(rng));
  const std::size_t n_commits = rng() % 3;
  for (std::size_t i = 0; i < n_commits; ++i) {
    MaxVector max;
    for (std::size_t part = 0; part < kParts; ++part) max.seq[part] = rng();
    msg.set_commit(static_cast<MboxId>(i), max);
  }
  return msg;
}

std::vector<std::uint8_t> packet_bytes(const pkt::Packet& p) {
  return {p.data(), p.data() + p.size()};
}

MaxVector random_max(std::mt19937_64& rng) {
  MaxVector max;
  for (std::size_t part = 0; part < kParts; ++part) max.seq[part] = rng();
  return max;
}

TEST(PiggybackView, WalkMatchesExtract) {
  std::mt19937_64 rng(0xf7c1);
  for (int round = 0; round < 200; ++round) {
    pkt::Packet p = make_wire_packet();
    const PiggybackMessage msg = random_message(rng, 6);
    if (serialized_size(msg, kParts) > p.tailroom()) continue;
    ASSERT_TRUE(append_message(p, msg, kParts));

    PiggybackView v = PiggybackView::open(p);
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(v.wire_size() + v.tail_size(), p.size());
    EXPECT_EQ(wire_size_hint(p), v.wire_size());
    ASSERT_EQ(v.log_count(), msg.logs.size());
    for (std::size_t i = 0; i < msg.logs.size(); ++i) {
      EXPECT_EQ(materialize_log(v.log(i)), msg.logs[i]);
      EXPECT_TRUE(v.has_logs_of(msg.logs[i].mbox));
    }
    ASSERT_EQ(v.commit_count(), msg.commits.size());
    for (std::size_t i = 0; i < msg.commits.size(); ++i) {
      MaxVector max;
      EXPECT_EQ(v.commit(i, max), msg.commits[i].mbox);
      EXPECT_EQ(max.seq, msg.commits[i].max.seq);
    }

    // The view only reads: the oracle must still parse the same message.
    auto extracted = extract_message(p);
    ASSERT_TRUE(extracted.has_value());
    EXPECT_EQ(*extracted, msg);
  }
}

// The tentpole property: the in-place mutators must produce byte-identical
// packets to the strip-modify-reattach round trip they replace.
TEST(PiggybackView, MutationsMatchMaterializingRoundTrip) {
  std::mt19937_64 rng(0xf7c2);
  for (int round = 0; round < 200; ++round) {
    pkt::Packet legacy = make_wire_packet();
    pkt::Packet inplace = make_wire_packet();
    PiggybackMessage msg = random_message(rng, 5);
    if (serialized_size(msg, kParts) > legacy.tailroom()) continue;
    ASSERT_TRUE(append_message(legacy, msg, kParts));
    ASSERT_TRUE(append_message(inplace, msg, kParts));
    PiggybackView v = PiggybackView::open(inplace);
    ASSERT_TRUE(v.ok());

    for (int op = 0; op < 6; ++op) {
      switch (rng() % 3) {
        case 0: {  // Tail duty: strip one middlebox's logs.
          const auto mbox = static_cast<MboxId>(rng() % 4);
          msg.strip_logs_of(mbox);
          v.strip_logs_of(mbox);
          break;
        }
        case 1: {  // Tail duty: attach/update a commit vector.
          const auto mbox = static_cast<MboxId>(rng() % 3);
          if (msg.find_commit(mbox) == nullptr &&
              4 + 8 * kParts > inplace.tailroom()) {
            break;  // A new entry would not fit; nothing to compare.
          }
          const MaxVector max = random_max(rng);
          msg.set_commit(mbox, max);
          ASSERT_TRUE(v.set_commit(mbox, max));
          break;
        }
        case 2: {  // Head duty: append this node's new log.
          const PiggybackLog log = random_log(rng);
          if (log_wire_size(log) > inplace.tailroom()) break;
          msg.logs.push_back(log);
          ASSERT_TRUE(v.append_log(log));
          break;
        }
      }
      // Legacy path re-serializes from scratch each time.
      ASSERT_TRUE(extract_message(legacy).has_value());
      ASSERT_TRUE(append_message(legacy, msg, kParts));
      ASSERT_EQ(packet_bytes(inplace), packet_bytes(legacy));
    }
  }
}

TEST(PiggybackView, CreateOnBarePacketAndStripTail) {
  pkt::Packet p = make_wire_packet();
  const std::size_t wire = p.size();
  EXPECT_FALSE(PiggybackView::open(p).ok());

  PiggybackView v = PiggybackView::create(p, kParts);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.log_count(), 0u);
  EXPECT_EQ(v.commit_count(), 0u);
  EXPECT_EQ(v.wire_size(), wire);

  MaxVector max;
  max.seq[2] = 7;
  ASSERT_TRUE(v.set_commit(3, max));
  ASSERT_TRUE(v.set_commit(3, max));  // Overwrite keeps one entry.
  EXPECT_EQ(v.commit_count(), 1u);

  v.strip_tail();
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(p.size(), wire);
  EXPECT_FALSE(has_message(p));
}

TEST(PiggybackView, SetCommitAndAppendRejectedWhenTailroomExhausted) {
  pkt::Packet p = make_wire_packet();
  PiggybackMessage big;
  PiggybackLog log;
  log.mbox = 1;
  log.dep.mask = 1;
  log.dep.seq[0] = 1;
  // Leave 40 free bytes after the append (48 bytes of header/log/footer
  // overhead ride along): too little for another log or a 4+8*kParts
  // commit entry.
  std::vector<std::uint8_t> bytes(p.tailroom() - 88, 0xcd);
  log.writes.push_back({1, state::Bytes(bytes.data(), bytes.size()), false});
  big.logs.push_back(log);
  ASSERT_TRUE(append_message(p, big, kParts));

  PiggybackView v = PiggybackView::open(p);
  ASSERT_TRUE(v.ok());
  const auto before = packet_bytes(p);
  EXPECT_FALSE(v.append_log(log));
  EXPECT_FALSE(v.set_commit(2, MaxVector{}));  // New entry needs room.
  EXPECT_EQ(packet_bytes(p), before);  // Rejected mutations leave no trace.
  ASSERT_TRUE(v.ok());
  ASSERT_EQ(v.log_count(), 1u);
  EXPECT_EQ(materialize_log(v.log(0)), log);
}

// Replica apply differential: the burst wire path must leave the store,
// the MAX vector and the applied count exactly as per-log offers do.
TEST(PiggybackView, OfferBurstMatchesOffer) {
  ChainConfig cfg;
  std::mt19937_64 rng(0xf7c3);
  InOrderApplier legacy(0, cfg);
  InOrderApplier wire(0, cfg);

  std::array<std::uint64_t, state::kMaxPartitions> next{};
  std::vector<PiggybackLog> logs;
  for (int i = 0; i < 64; ++i) {
    PiggybackLog log;
    log.mbox = 0;
    const std::uint64_t key = rng() % 128;
    const std::size_t part = legacy.store().partition_of(key);
    log.dep.mask = 1ULL << part;
    log.dep.seq[part] = ++next[part];
    if (rng() % 5 == 0) {
      log.writes.push_back({key, state::Bytes{}, true});
    } else {
      std::vector<std::uint8_t> bytes(1 + rng() % 64);
      for (auto& b : bytes) b = static_cast<std::uint8_t>(rng());
      log.writes.push_back(
          {key, state::Bytes(bytes.data(), bytes.size()), false});
    }
    logs.push_back(std::move(log));
  }

  for (const auto& log : logs) {
    EXPECT_EQ(legacy.offer(log), InOrderApplier::Offer::kApplied);
  }

  // Wire side: ship the same logs in packet-sized groups of four.
  for (std::size_t base = 0; base < logs.size(); base += 4) {
    pkt::Packet p = make_wire_packet();
    PiggybackMessage msg;
    for (std::size_t i = base; i < base + 4; ++i) msg.logs.push_back(logs[i]);
    ASSERT_TRUE(append_message(p, msg, cfg.num_partitions));
    PiggybackView v = PiggybackView::open(p);
    ASSERT_TRUE(v.ok());
    std::vector<WireLog> wire_logs;
    for (std::size_t i = 0; i < v.log_count(); ++i) {
      wire_logs.push_back(v.log(i));
    }
    std::vector<InOrderApplier::Offer> results(wire_logs.size(),
                                               InOrderApplier::Offer::kHeld);
    wire.offer_burst({wire_logs.data(), wire_logs.size()}, results.data());
    for (const auto r : results) {
      EXPECT_EQ(r, InOrderApplier::Offer::kApplied);
    }
    // Re-offering the same packet's logs must classify as duplicates and
    // change nothing (parked packets re-enter this way).
    wire.offer_burst({wire_logs.data(), wire_logs.size()}, results.data());
    for (const auto r : results) {
      EXPECT_EQ(r, InOrderApplier::Offer::kDuplicate);
    }
  }

  EXPECT_EQ(legacy.applied_count(), wire.applied_count());
  EXPECT_EQ(legacy.max().seq, wire.max().seq);
  std::vector<std::uint8_t> blob_legacy, blob_wire;
  legacy.serialize(blob_legacy);
  wire.serialize(blob_wire);
  EXPECT_EQ(blob_legacy, blob_wire);
}

TEST(PiggybackView, OfferBurstHoldsFutureLogs) {
  ChainConfig cfg;
  InOrderApplier a(0, cfg);
  const std::uint64_t key = 9;
  const std::size_t part = a.store().partition_of(key);

  auto make = [&](std::uint64_t seq) {
    PiggybackLog log;
    log.mbox = 0;
    log.dep.mask = 1ULL << part;
    log.dep.seq[part] = seq;
    log.writes.push_back({key, state::Bytes::of<std::uint64_t>(seq), false});
    return log;
  };
  pkt::Packet p = make_wire_packet();
  PiggybackMessage msg;
  msg.logs.push_back(make(1));
  msg.logs.push_back(make(3));  // Gap: seq 2 is missing.
  msg.logs.push_back(make(2));  // Arrives later in the same burst.
  ASSERT_TRUE(append_message(p, msg, cfg.num_partitions));
  PiggybackView v = PiggybackView::open(p);
  ASSERT_TRUE(v.ok());
  WireLog wire_logs[3] = {v.log(0), v.log(1), v.log(2)};
  InOrderApplier::Offer results[3];
  a.offer_burst({wire_logs, 3}, results);
  EXPECT_EQ(results[0], InOrderApplier::Offer::kApplied);
  EXPECT_EQ(results[1], InOrderApplier::Offer::kHeld);
  EXPECT_EQ(results[2], InOrderApplier::Offer::kApplied);
  // The held log becomes applicable now that seq 2 landed.
  EXPECT_EQ(a.offer_wire(wire_logs[1]), InOrderApplier::Offer::kApplied);
  EXPECT_EQ(a.applied_count(), 3u);
}

// --- Malformed tails: open() must reject without touching the packet. ---

void expect_rejected(pkt::Packet& p) {
  const auto before = packet_bytes(p);
  EXPECT_FALSE(PiggybackView::open(p).ok());
  EXPECT_EQ(packet_bytes(p), before);
}

TEST(PiggybackViewMalformed, TruncatedTail) {
  std::mt19937_64 rng(0xf7c4);
  pkt::Packet p = make_wire_packet();
  ASSERT_TRUE(append_message(p, random_message(rng, 3), kParts));
  p.trim_back(1);
  expect_rejected(p);
  EXPECT_FALSE(extract_message(p).has_value());
}

TEST(PiggybackViewMalformed, CorruptFooterMagic) {
  std::mt19937_64 rng(0xf7c5);
  pkt::Packet p = make_wire_packet();
  ASSERT_TRUE(append_message(p, random_message(rng, 3), kParts));
  p.data()[p.size() - 1] ^= 0xff;
  expect_rejected(p);
}

TEST(PiggybackViewMalformed, BodyLenLargerThanPacket) {
  pkt::Packet p = make_wire_packet();
  ASSERT_TRUE(append_message(p, PiggybackMessage{}, kParts));
  // Footer layout: u32 body_len, u32 magic.
  const std::uint32_t huge = 0x7fffffff;
  std::memcpy(p.data() + p.size() - kFooterSize, &huge, 4);
  expect_rejected(p);
  EXPECT_FALSE(extract_message(p).has_value());
  EXPECT_EQ(wire_size_hint(p), p.size());  // Implausible tail: full frame.
}

TEST(PiggybackViewMalformed, OversizedLogCount) {
  pkt::Packet p = make_wire_packet();
  ASSERT_TRUE(append_message(p, PiggybackMessage{}, kParts));
  // Body header starts at size - footer - body_len (body_len == 8 here).
  const std::uint16_t count = 1000;
  std::memcpy(p.data() + p.size() - kFooterSize - kWireHeaderSize, &count, 2);
  expect_rejected(p);
}

TEST(PiggybackViewMalformed, PartitionCountBeyondMax) {
  pkt::Packet p = make_wire_packet();
  ASSERT_TRUE(append_message(p, PiggybackMessage{}, kParts));
  const auto parts = static_cast<std::uint16_t>(state::kMaxPartitions + 1);
  std::memcpy(p.data() + p.size() - kFooterSize - kWireHeaderSize + 4, &parts,
              2);
  expect_rejected(p);
}

TEST(PiggybackViewMalformed, DepMaskBeyondMaxPartitions) {
  pkt::Packet p = make_wire_packet();
  PiggybackMessage msg;
  PiggybackLog log;
  log.mbox = 1;
  log.dep.mask = 1;
  log.dep.seq[0] = 1;
  msg.logs.push_back(log);
  const std::size_t wire = p.size();
  ASSERT_TRUE(append_message(p, msg, kParts));
  // Log record begins right after the body header: u32 mbox, u64 mask.
  const std::uint64_t bad_mask = 1ULL << (state::kMaxPartitions + 3);
  std::memcpy(p.data() + wire + kWireHeaderSize + 4, &bad_mask, 8);
  expect_rejected(p);
}

TEST(PiggybackViewMalformed, WriteLengthOverrunsBody) {
  pkt::Packet p = make_wire_packet();
  PiggybackMessage msg;
  PiggybackLog log;
  log.mbox = 1;
  log.dep.mask = 1;
  log.dep.seq[0] = 1;
  std::vector<std::uint8_t> bytes(16, 0xee);
  log.writes.push_back({5, state::Bytes(bytes.data(), bytes.size()), false});
  msg.logs.push_back(log);
  const std::size_t before_size = p.size();
  ASSERT_TRUE(append_message(p, msg, kParts));
  // Write record: u64 key, u16 len|flags, bytes. It is the last thing
  // before the footer; inflate its length beyond the body.
  const std::size_t len_off = before_size + kWireHeaderSize + 4 + 8 + 8 + 2 + 8;
  const std::uint16_t bad_len = 0x7000;
  std::memcpy(p.data() + len_off, &bad_len, 2);
  expect_rejected(p);
  EXPECT_FALSE(extract_message(p).has_value());
}

}  // namespace
}  // namespace sfc::ftc
