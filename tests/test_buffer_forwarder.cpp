// Unit tests for the egress buffer and forwarder (paper §5): hold/release
// semantics, commit absorption, feedback, propagating packets.
#include <gtest/gtest.h>

#include "core/buffer.hpp"
#include "core/forwarder.hpp"
#include "packet/packet_io.hpp"

namespace sfc::ftc {
namespace {

struct Rig {
  pkt::PacketPool pool{64};
  net::Link egress{pool, net::LinkConfig{}};
  FeedbackChannel feedback;
  EgressBuffer buffer{pool, egress, feedback};

  pkt::Packet* data_packet(std::uint64_t id) {
    pkt::Packet* p = pool.alloc_raw();
    pkt::PacketBuilder(*p).udp(
        pkt::FlowKey{1, 2, 3, 4, pkt::Ipv4Header::kProtoUdp}, 128);
    p->anno().packet_id = id;
    p->anno().ingress_ns = 1;
    return p;
  }

  PiggybackLog log_for(MboxId mbox, std::size_t partition, std::uint64_t seq) {
    PiggybackLog log;
    log.mbox = mbox;
    log.dep.mask = 1ULL << partition;
    log.dep.seq[partition] = seq;
    return log;
  }
};

TEST(EgressBuffer, EmptyMessageReleasesImmediately) {
  Rig rig;
  rig.buffer.submit(rig.data_packet(1), PiggybackMessage{});
  EXPECT_EQ(rig.buffer.held_count(), 0u);
  pkt::Packet* out = rig.egress.poll();
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->anno().packet_id, 1u);
  rig.pool.free_raw(out);
  EXPECT_EQ(rig.buffer.stats().released_immediately, 1u);
}

TEST(EgressBuffer, HoldsUntilCommitCovers) {
  Rig rig;
  PiggybackMessage msg;
  msg.logs.push_back(rig.log_for(2, 0, 5));
  rig.buffer.submit(rig.data_packet(1), std::move(msg));
  EXPECT_EQ(rig.buffer.held_count(), 1u);
  EXPECT_EQ(rig.egress.poll(), nullptr);

  // A later packet carries the commit for mbox 2 covering seq 5.
  PiggybackMessage commit_msg;
  MaxVector commit;
  commit.seq[0] = 5;
  commit_msg.set_commit(2, commit);
  rig.buffer.submit(rig.data_packet(2), std::move(commit_msg));

  // Both packets released (the second had no pending logs).
  EXPECT_EQ(rig.buffer.held_count(), 0u);
  int released = 0;
  while (pkt::Packet* p = rig.egress.poll()) {
    ++released;
    rig.pool.free_raw(p);
  }
  EXPECT_EQ(released, 2);
}

TEST(EgressBuffer, InsufficientCommitKeepsHolding) {
  Rig rig;
  PiggybackMessage msg;
  msg.logs.push_back(rig.log_for(2, 0, 5));
  rig.buffer.submit(rig.data_packet(1), std::move(msg));

  PiggybackMessage commit_msg;
  MaxVector commit;
  commit.seq[0] = 4;  // One short.
  commit_msg.set_commit(2, commit);
  rig.buffer.submit(rig.data_packet(2), std::move(commit_msg));
  EXPECT_EQ(rig.buffer.held_count(), 1u);
}

TEST(EgressBuffer, ControlPacketsDeliverCommitsAndDie) {
  Rig rig;
  PiggybackMessage msg;
  msg.logs.push_back(rig.log_for(1, 3, 2));
  rig.buffer.submit(rig.data_packet(1), std::move(msg));
  EXPECT_EQ(rig.buffer.held_count(), 1u);

  pkt::Packet* prop = Forwarder::make_propagating_packet(rig.pool);
  PiggybackMessage commit_msg;
  MaxVector commit;
  commit.seq[3] = 2;
  commit_msg.set_commit(1, commit);
  rig.buffer.submit(prop, std::move(commit_msg));

  EXPECT_EQ(rig.buffer.held_count(), 0u);
  // Only the data packet leaves the chain; the propagating packet is
  // consumed.
  pkt::Packet* out = rig.egress.poll();
  ASSERT_NE(out, nullptr);
  EXPECT_FALSE(out->anno().is_control);
  rig.pool.free_raw(out);
  EXPECT_EQ(rig.egress.poll(), nullptr);
  EXPECT_EQ(rig.buffer.stats().control_consumed, 1u);
}

TEST(EgressBuffer, FeedsLogsBackWithoutCommits) {
  Rig rig;
  PiggybackMessage msg;
  msg.logs.push_back(rig.log_for(2, 0, 1));
  MaxVector commit;
  commit.seq[1] = 9;
  msg.set_commit(0, commit);
  rig.buffer.submit(rig.data_packet(1), std::move(msg));

  auto fed_back = rig.feedback.pop();
  ASSERT_TRUE(fed_back.has_value());
  EXPECT_EQ(fed_back->logs.size(), 1u);   // Wrap logs keep traveling.
  EXPECT_TRUE(fed_back->commits.empty()); // Commits end at the buffer.
}

TEST(EgressBuffer, AbsorbWithoutSubmit) {
  Rig rig;
  PiggybackMessage msg;
  msg.logs.push_back(rig.log_for(2, 0, 1));
  rig.buffer.submit(rig.data_packet(1), std::move(msg));
  EXPECT_EQ(rig.buffer.held_count(), 1u);

  MaxVector commit;
  commit.seq[0] = 1;
  CommitVector cv{2, commit};
  rig.buffer.absorb({&cv, 1});
  rig.buffer.release_eligible();
  EXPECT_EQ(rig.buffer.held_count(), 0u);
}

TEST(Forwarder, CollectMergesPendingMessages) {
  ChainConfig cfg;
  FeedbackChannel feedback;
  Forwarder fwd(feedback, cfg);

  for (std::uint64_t seq = 1; seq <= 3; ++seq) {
    PiggybackMessage m;
    PiggybackLog log;
    log.mbox = 7;
    log.dep.mask = 1;
    log.dep.seq[0] = seq;
    m.logs.push_back(log);
    feedback.push(std::move(m));
  }
  auto merged = fwd.collect();
  EXPECT_EQ(merged.logs.size(), 3u);
  EXPECT_EQ(merged.logs[0].dep.seq[0], 1u);  // Order preserved.
  EXPECT_EQ(merged.logs[2].dep.seq[0], 3u);
}

TEST(Forwarder, MergeLimitBoundsPerPacketWork) {
  ChainConfig cfg;
  cfg.forwarder_merge_limit = 2;
  FeedbackChannel feedback;
  Forwarder fwd(feedback, cfg);
  for (int i = 0; i < 5; ++i) feedback.push(PiggybackMessage{});
  (void)fwd.collect();
  EXPECT_EQ(feedback.pending_approx(), 3u);
}

TEST(Forwarder, PropagationDueOnlyWhenIdleAndPending) {
  ChainConfig cfg;
  cfg.propagate_interval_ns = 1'000'000;  // 1 ms.
  FeedbackChannel feedback;
  Forwarder fwd(feedback, cfg);
  EXPECT_FALSE(fwd.propagation_due());  // Nothing pending.
  feedback.push(PiggybackMessage{});
  EXPECT_FALSE(fwd.propagation_due());  // Pending but not idle yet.
  std::this_thread::sleep_for(std::chrono::milliseconds(3));
  EXPECT_TRUE(fwd.propagation_due());
  fwd.note_activity();
  EXPECT_FALSE(fwd.propagation_due());
}

TEST(Forwarder, PropagatingPacketIsControlAndParseable) {
  pkt::PacketPool pool(4);
  pkt::Packet* p = Forwarder::make_propagating_packet(pool);
  ASSERT_NE(p, nullptr);
  EXPECT_TRUE(p->anno().is_control);
  EXPECT_TRUE(pkt::parse_packet(*p).has_value());
  pool.free_raw(p);
}

}  // namespace
}  // namespace sfc::ftc
