// Unit tests for the state substrate: Bytes, StateStore, serialization.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "state/bytes.hpp"
#include "state/state_store.hpp"

namespace sfc::state {
namespace {

TEST(Bytes, DefaultIsEmpty) {
  Bytes b;
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.size(), 0u);
}

TEST(Bytes, InlineRoundTrip) {
  const std::uint8_t data[] = {1, 2, 3, 4, 5};
  Bytes b(data, sizeof(data));
  EXPECT_EQ(b.size(), 5u);
  EXPECT_EQ(std::memcmp(b.data(), data, 5), 0);
}

TEST(Bytes, HeapRoundTrip) {
  std::vector<std::uint8_t> big(1000);
  for (std::size_t i = 0; i < big.size(); ++i) big[i] = static_cast<std::uint8_t>(i);
  Bytes b(big.data(), big.size());
  EXPECT_EQ(b.size(), 1000u);
  EXPECT_EQ(std::memcmp(b.data(), big.data(), big.size()), 0);
}

TEST(Bytes, AssignEmptySpanWithNullData) {
  // An empty std::span carries a null data() pointer; assign() must not
  // feed it to memcpy (UBSan: null passed to a nonnull argument).
  Bytes b(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>("xyz"), 3));
  b.assign(std::span<const std::uint8_t>{});
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b, Bytes());
}

TEST(Bytes, CopySemantics) {
  Bytes a(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>("hello"), 5));
  Bytes b = a;
  EXPECT_EQ(a, b);
  const std::uint8_t other[] = {9};
  b.assign({other, 1});
  EXPECT_NE(a, b);
  EXPECT_EQ(a.size(), 5u);
}

TEST(Bytes, MoveSemantics) {
  std::vector<std::uint8_t> big(500, 0xab);
  Bytes a(big.data(), big.size());
  const auto* heap = a.data();
  Bytes b = std::move(a);
  EXPECT_EQ(b.size(), 500u);
  EXPECT_EQ(b.data(), heap);  // Heap buffer stolen, not copied.
}

TEST(Bytes, MoveInlinePreservesContent) {
  const std::uint8_t data[] = {7, 8, 9};
  Bytes a(data, 3);
  Bytes b = std::move(a);
  EXPECT_EQ(b.size(), 3u);
  EXPECT_EQ(b.data()[2], 9);
}

TEST(Bytes, TypedAccess) {
  const std::uint64_t v = 0xdeadbeefcafef00dULL;
  Bytes b = Bytes::of(v);
  EXPECT_EQ(b.size(), 8u);
  EXPECT_EQ(b.as<std::uint64_t>(), v);
  EXPECT_EQ(b.as<std::uint32_t>(), 0u);  // Size mismatch yields default.
}

TEST(Bytes, ReassignShrinkGrow) {
  Bytes b;
  std::vector<std::uint8_t> big(200, 1);
  b.assign({big.data(), big.size()});
  EXPECT_EQ(b.size(), 200u);
  const std::uint8_t small[] = {2};
  b.assign({small, 1});
  EXPECT_EQ(b.size(), 1u);
  b.assign({big.data(), big.size()});
  EXPECT_EQ(b.size(), 200u);
  EXPECT_EQ(b.data()[199], 1);
}

TEST(StateStore, PartitionOfIsStableAndInRange) {
  StateStore a(16), b(16);
  for (Key k = 0; k < 1000; ++k) {
    EXPECT_EQ(a.partition_of(k), b.partition_of(k));
    EXPECT_LT(a.partition_of(k), 16u);
  }
}

TEST(StateStore, PartitioningSpreadsKeys) {
  StateStore s(16);
  std::vector<int> counts(16, 0);
  for (Key k = 0; k < 16000; ++k) ++counts[s.partition_of(k)];
  for (int c : counts) {
    EXPECT_GT(c, 500);
    EXPECT_LT(c, 1500);
  }
}

TEST(StateStore, GetPutEraseLocked) {
  StateStore s(4);
  const Key k = 42;
  auto& lock = s.partition_lock(s.partition_of(k));
  auto& slot = this_thread_slot();

  lock.lock_apply(&slot);
  EXPECT_EQ(s.get_locked(k), nullptr);
  s.put_locked(k, Bytes::of<std::uint64_t>(7));
  ASSERT_NE(s.get_locked(k), nullptr);
  EXPECT_EQ(s.get_locked(k)->as<std::uint64_t>(), 7u);
  EXPECT_TRUE(s.erase_locked(k));
  EXPECT_FALSE(s.erase_locked(k));
  EXPECT_EQ(s.get_locked(k), nullptr);
  lock.unlock();
}

TEST(StateStore, ApplyBatch) {
  StateStore s(8);
  std::vector<StateUpdate> updates;
  for (Key k = 0; k < 100; ++k) {
    updates.push_back({k, Bytes::of(k * 10), false});
  }
  s.apply(updates);
  EXPECT_EQ(s.total_entries(), 100u);
  EXPECT_EQ(s.get(50)->as<Key>(), 500u);

  // Later updates overwrite, erases remove.
  std::vector<StateUpdate> second{{50, Bytes::of<Key>(1), false},
                                  {51, Bytes{}, true}};
  s.apply(second);
  EXPECT_EQ(s.get(50)->as<Key>(), 1u);
  EXPECT_FALSE(s.get(51).has_value());
  EXPECT_EQ(s.total_entries(), 99u);
}

TEST(StateStore, ApplyIsAtomicAgainstConcurrentAppliers) {
  StateStore s(4);
  constexpr int kThreads = 4;
  constexpr int kRounds = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&s, t] {
      for (int i = 0; i < kRounds; ++i) {
        // All threads write the same pair of keys; each thread writes its
        // own tag into both. Atomicity means a reader never sees a torn
        // pair.
        std::vector<StateUpdate> u{
            {1, Bytes::of<std::uint64_t>(static_cast<std::uint64_t>(t)), false},
            {2, Bytes::of<std::uint64_t>(static_cast<std::uint64_t>(t)), false}};
        s.apply(u);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(s.get(1)->as<std::uint64_t>(), s.get(2)->as<std::uint64_t>());
}

TEST(StateStore, SerializeDeserializeRoundTrip) {
  StateStore a(16), b(16);
  std::vector<StateUpdate> updates;
  for (Key k = 0; k < 500; ++k) {
    std::vector<std::uint8_t> value(1 + (k % 90), static_cast<std::uint8_t>(k));
    updates.push_back({k * 7919, Bytes(value.data(), value.size()), false});
  }
  a.apply(updates);

  std::vector<std::uint8_t> blob;
  a.serialize(blob);
  ASSERT_TRUE(b.deserialize(blob));
  EXPECT_EQ(b.total_entries(), 500u);
  for (const auto& u : updates) {
    auto v = b.get(u.key);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, u.value);
  }
}

TEST(StateStore, DeserializeRejectsGarbage) {
  StateStore s(8);
  std::vector<std::uint8_t> garbage(13, 0xff);
  EXPECT_FALSE(s.deserialize(garbage));
  EXPECT_EQ(s.total_entries(), 0u);
}

TEST(StateStore, DeserializeRejectsWrongPartitionCount) {
  StateStore a(8), b(16);
  a.apply(std::vector<StateUpdate>{{1, Bytes::of<int>(1), false}});
  std::vector<std::uint8_t> blob;
  a.serialize(blob);
  EXPECT_FALSE(b.deserialize(blob));
}

TEST(StateStore, DeserializeRejectsTruncated) {
  StateStore a(8), b(8);
  a.apply(std::vector<StateUpdate>{{1, Bytes::of<std::uint64_t>(5), false}});
  std::vector<std::uint8_t> blob;
  a.serialize(blob);
  blob.resize(blob.size() - 3);
  EXPECT_FALSE(b.deserialize(blob));
}

TEST(StateStore, KeyOfNameIsStable) {
  constexpr Key k1 = key_of_name("port-count");
  constexpr Key k2 = key_of_name("port-count");
  constexpr Key k3 = key_of_name("port-counts");
  static_assert(k1 == k2);
  EXPECT_EQ(k1, k2);
  EXPECT_NE(k1, k3);
}

TEST(StateStore, ClearEmptiesEverything) {
  StateStore s(4);
  s.apply(std::vector<StateUpdate>{{1, Bytes::of<int>(1), false},
                                   {2, Bytes::of<int>(2), false}});
  EXPECT_EQ(s.total_entries(), 2u);
  s.clear();
  EXPECT_EQ(s.total_entries(), 0u);
  EXPECT_FALSE(s.get(1).has_value());
}

}  // namespace
}  // namespace sfc::state
