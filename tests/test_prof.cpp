// Tests for the hot-path budget profiler (obs/prof): slot registration
// and report math, the single-branch disabled path, quiet-mode assertions
// (clean runs stay quiet; injected allocation failures and contended
// partition locks fire), stage-sum/wall-clock reconciliation on a live
// chain at burst 1 and 32, the registry export, and the per-worker span
// ring health gauges.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "core/chain.hpp"
#include "mbox/monitor.hpp"
#include "obs/export.hpp"
#include "obs/prof.hpp"
#include "obs/span.hpp"
#include "packet/packet_pool.hpp"
#include "runtime/clock.hpp"
#include "state/partition_lock.hpp"
#include "tgen/traffic.hpp"

namespace sfc::obs {
namespace {

// --- Naming and classification. -----------------------------------------

TEST(ProfNames, StagesAndCountersNamed) {
  for (std::size_t s = 0; s < kProfStageCount; ++s) {
    const char* name = prof_stage_name(static_cast<ProfStage>(s));
    ASSERT_NE(name, nullptr);
    EXPECT_NE(std::string_view(name), "");
  }
  for (std::size_t c = 0; c < kProfCounterCount; ++c) {
    const char* name = prof_counter_name(static_cast<ProfCounter>(c));
    ASSERT_NE(name, nullptr);
    EXPECT_NE(std::string_view(name), "");
  }
  // Primary stages lead the enum; aux stages follow.
  EXPECT_TRUE(prof_stage_primary(ProfStage::kPoll));
  EXPECT_TRUE(prof_stage_primary(ProfStage::kParkDrain));
  EXPECT_TRUE(prof_stage_primary(ProfStage::kHandoffDrain));
  EXPECT_FALSE(prof_stage_primary(ProfStage::kLinkSend));
  EXPECT_FALSE(prof_stage_primary(ProfStage::kPoolFree));
  // Plain acquisitions are bookkeeping; everything else trips quiet mode.
  EXPECT_FALSE(prof_counter_is_violation(ProfCounter::kPartitionLockAcquire));
  EXPECT_FALSE(prof_counter_is_violation(ProfCounter::kApplierMutexAcquire));
  EXPECT_TRUE(prof_counter_is_violation(ProfCounter::kPartitionLockContended));
  EXPECT_TRUE(prof_counter_is_violation(ProfCounter::kApplierMutexContended));
  EXPECT_TRUE(prof_counter_is_violation(ProfCounter::kPoolAllocFailure));
  EXPECT_TRUE(prof_counter_is_violation(ProfCounter::kPoolFreeRetry));
  EXPECT_TRUE(prof_counter_is_violation(ProfCounter::kSendRetry));
}

// --- Slot registration and report math. ---------------------------------

TEST(ProfReport, SlotAccumulatesAndReconciles) {
  HotProfiler prof;  // Not installed: exercised directly.
  ProfSlot* slot = prof.thread_slot("unit-worker");
  ASSERT_NE(slot, nullptr);
  // Idempotent per thread.
  EXPECT_EQ(prof.thread_slot("unit-worker"), slot);
  EXPECT_EQ(prof.maybe_slot(), slot);

  // 100 packets in 10 bursts: 600 cycles of process, 200 of poll, 100 in
  // the nested store-apply drill-down, 1000 cycles of busy wall.
  slot->add(ProfStage::kPoll, 200, 100);
  slot->add(ProfStage::kProcess, 600, 100);
  slot->add(ProfStage::kStoreApply, 100, 50);
  slot->packets.store(100);
  slot->bursts.store(10);
  slot->wall_cycles.store(1000);

  const BudgetReport report = prof.report();
  ASSERT_EQ(report.workers.size(), 1u);
  const BudgetWorker& w = report.workers[0];
  EXPECT_EQ(w.worker, "unit-worker");
  EXPECT_EQ(w.packets, 100u);
  EXPECT_EQ(w.bursts, 10u);
  ASSERT_EQ(w.stages.size(), kProfStageCount);
  // Primary stages divide by the worker's packet count...
  EXPECT_DOUBLE_EQ(
      w.stages[static_cast<std::size_t>(ProfStage::kProcess)].cycles_per_packet,
      6.0);
  EXPECT_DOUBLE_EQ(
      w.stages[static_cast<std::size_t>(ProfStage::kPoll)].cycles_per_packet,
      2.0);
  // ...aux stages divide by their own op count.
  EXPECT_DOUBLE_EQ(w.stages[static_cast<std::size_t>(ProfStage::kStoreApply)]
                       .cycles_per_packet,
                   2.0);
  // Reconciliation counts primary stages only: (200 + 600) / 1000.
  EXPECT_NEAR(w.reconciliation, 0.8, 1e-9);
  EXPECT_GT(report.tsc_hz, 0.0);

  // The text table names the worker and the stages.
  const std::string text = budget_to_text(report);
  EXPECT_NE(text.find("unit-worker"), std::string::npos);
  EXPECT_NE(text.find("process"), std::string::npos);
  EXPECT_NE(text.find("aggregate"), std::string::npos);

  // reset() zeroes accumulators but keeps the slot registered.
  prof.reset();
  EXPECT_EQ(prof.maybe_slot(), slot);
  EXPECT_EQ(prof.report().workers[0].packets, 0u);
}

TEST(ProfReport, AggregateSpansWorkers) {
  HotProfiler prof;
  ProfSlot* a = prof.thread_slot("a");
  a->add(ProfStage::kProcess, 300, 10);
  a->packets.store(10);
  a->wall_cycles.store(400);
  std::thread other([&prof] {
    ProfSlot* b = prof.thread_slot("b");
    b->add(ProfStage::kProcess, 100, 10);
    b->packets.store(10);
    b->wall_cycles.store(100);
  });
  other.join();

  const BudgetReport report = prof.report();
  ASSERT_EQ(report.workers.size(), 2u);
  EXPECT_EQ(report.total.packets, 20u);
  EXPECT_EQ(report.total.wall_cycles, 500u);
  EXPECT_DOUBLE_EQ(
      report.total.stages[static_cast<std::size_t>(ProfStage::kProcess)]
          .cycles_per_packet,
      20.0);
  EXPECT_NEAR(report.total.reconciliation, 0.8, 1e-9);
}

// --- Global installation gate. ------------------------------------------

TEST(ProfInstall, ExclusiveInstallAndUninstall) {
  ASSERT_EQ(hot_profiler(), nullptr);
  HotProfiler a, b;
  EXPECT_TRUE(install_hot_profiler(&a));
  EXPECT_EQ(hot_profiler(), &a);
  EXPECT_FALSE(install_hot_profiler(&b));  // Slot taken.
  EXPECT_EQ(hot_profiler(), &a);
  uninstall_hot_profiler(&b);  // Not the owner: no-op.
  EXPECT_EQ(hot_profiler(), &a);
  uninstall_hot_profiler(&a);
  EXPECT_EQ(hot_profiler(), nullptr);
  EXPECT_TRUE(install_hot_profiler(&b));
  uninstall_hot_profiler(&b);
  EXPECT_EQ(hot_profiler(), nullptr);
}

// --- Disabled path: one load + branch. ----------------------------------

TEST(ProfDisabled, GateIsCheapAndInertWhenUninstalled) {
  ASSERT_EQ(hot_profiler(), nullptr);
  EXPECT_EQ(prof_slot(), nullptr);

  // Differential cycle check: the disabled instrumentation gate (acquire
  // load + predicted branch) must stay within noise of an empty loop. The
  // bound is deliberately loose — sanitizer builds instrument the atomic
  // load — but catches a regression to the expensive path (slot
  // registration, string building: thousands of cycles per op).
  constexpr int kIters = 200'000;
  for (int i = 0; i < 1'000; ++i) prof_count(ProfCounter::kSendRetry);
  const std::uint64_t t0 = rt::rdtsc();
  for (int i = 0; i < kIters; ++i) prof_count(ProfCounter::kSendRetry);
  const std::uint64_t gate = rt::rdtsc() - t0;
  const double per_op = static_cast<double>(gate) / kIters;
  EXPECT_LT(per_op, 1'000.0) << "disabled gate costs " << per_op
                             << " cycles/op";

  // A null-slot stage timer is a no-op, not a crash.
  { ProfStageTimer timer(nullptr, ProfStage::kProcess); }
  ASSERT_EQ(hot_profiler(), nullptr);
}

// --- Quiet mode. --------------------------------------------------------

TEST(ProfQuiet, InjectedViolationFiresOnlyWhenArmed) {
  HotProfiler prof;
  ASSERT_TRUE(install_hot_profiler(&prof));
  prof.thread_slot("quiet-worker");

  // Violations before arming are counted but do not trip quiet mode.
  prof_count(ProfCounter::kPoolAllocFailure);
  EXPECT_EQ(prof.quiet_violation_count(), 0u);
  EXPECT_FALSE(prof.quiet_ok());  // Never armed yet.

  prof.arm_quiet();
  EXPECT_TRUE(prof.quiet_armed());
  // Plain acquisitions stay quiet...
  prof_count(ProfCounter::kPartitionLockAcquire);
  prof_count(ProfCounter::kApplierMutexAcquire);
  EXPECT_EQ(prof.quiet_violation_count(), 0u);
  EXPECT_TRUE(prof.quiet_ok());
  // ...an injected data-path allocation failure does not.
  prof_count(ProfCounter::kPoolAllocFailure);
  EXPECT_EQ(prof.quiet_violation_count(), 1u);
  EXPECT_FALSE(prof.quiet_ok());
  const auto violations = prof.violations();
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].kind, ProfCounter::kPoolAllocFailure);
  EXPECT_EQ(violations[0].worker, "quiet-worker");
  EXPECT_GT(violations[0].ts_ns, 0u);

  prof.disarm_quiet();
  prof_count(ProfCounter::kSendRetry);  // After the window: not a violation.
  EXPECT_EQ(prof.quiet_violation_count(), 1u);

  // reset() clears the armed/violation state for the next window.
  prof.reset();
  EXPECT_FALSE(prof.quiet_ok());
  prof.arm_quiet();
  EXPECT_TRUE(prof.quiet_ok());
  prof.disarm_quiet();
  uninstall_hot_profiler(&prof);
}

TEST(ProfQuiet, PoolExhaustionRaisesAllocFailure) {
  HotProfiler prof;
  ASSERT_TRUE(install_hot_profiler(&prof));
  prof.thread_slot("pool-worker");
  prof.arm_quiet();

  pkt::PacketPool pool(8);
  EXPECT_EQ(pool.alloc_failures(), 0u);
  std::vector<pkt::Packet*> held;
  // Drain the pool dry, then one more: the failed alloc is the violation.
  for (int i = 0; i < 64; ++i) {
    pkt::Packet* p = pool.alloc_raw();
    if (p == nullptr) break;
    held.push_back(p);
  }
  EXPECT_EQ(pool.alloc_raw(), nullptr);
  EXPECT_GT(pool.alloc_failures(), 0u);
  EXPECT_FALSE(prof.quiet_ok());
  bool saw_alloc_failure = false;
  for (const auto& v : prof.violations()) {
    saw_alloc_failure |= v.kind == ProfCounter::kPoolAllocFailure;
  }
  EXPECT_TRUE(saw_alloc_failure);
  for (pkt::Packet* p : held) pool.free_raw(p);

  prof.disarm_quiet();
  uninstall_hot_profiler(&prof);
}

TEST(ProfQuiet, ContendedPartitionLockViolates) {
  HotProfiler prof;
  ASSERT_TRUE(install_hot_profiler(&prof));
  ProfSlot* slot = prof.thread_slot("lock-worker");
  prof.arm_quiet();

  state::PartitionLock lock;
  std::atomic<bool> held{false};
  std::thread owner([&] {
    state::TxnSlot other;
    ASSERT_TRUE(lock.lock(&other));
    held.store(true, std::memory_order_release);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    lock.unlock();
  });
  while (!held.load(std::memory_order_acquire)) std::this_thread::yield();
  // Applier-style acquisition against a live owner: succeeds after the
  // owner releases, and counts as contended.
  state::TxnSlot self;
  lock.lock_apply(&self);
  lock.unlock();
  owner.join();

  const auto acquire =
      static_cast<std::size_t>(ProfCounter::kPartitionLockAcquire);
  const auto contended =
      static_cast<std::size_t>(ProfCounter::kPartitionLockContended);
  EXPECT_GE(slot->counters[acquire].load(), 1u);
  EXPECT_GE(slot->counters[contended].load(), 1u);
  EXPECT_FALSE(prof.quiet_ok());
  bool saw_contended = false;
  for (const auto& v : prof.violations()) {
    saw_contended |= v.kind == ProfCounter::kPartitionLockContended;
  }
  EXPECT_TRUE(saw_contended);

  prof.disarm_quiet();
  uninstall_hot_profiler(&prof);
}

TEST(ProfQuiet, UncontendedPartitionLockStaysQuiet) {
  HotProfiler prof;
  ASSERT_TRUE(install_hot_profiler(&prof));
  ProfSlot* slot = prof.thread_slot("solo-lock-worker");
  prof.arm_quiet();

  state::PartitionLock lock;
  state::TxnSlot self;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(lock.lock(&self));
    lock.unlock();
  }
  const auto acquire =
      static_cast<std::size_t>(ProfCounter::kPartitionLockAcquire);
  EXPECT_EQ(slot->counters[acquire].load(), 100u);
  EXPECT_TRUE(prof.quiet_ok());

  prof.disarm_quiet();
  uninstall_hot_profiler(&prof);
}

// --- Live chain: reconciliation and clean quiet runs. -------------------

// Paced, sustainable load through a 2-hop FTC chain with the budget
// profiler on and quiet mode armed at the warmup boundary. A clean steady
// run must (a) attribute most of the workers' busy wall time to primary
// stages and (b) raise no quiet violations — at burst 32 and at burst 1.
void run_budget_chain(std::size_t burst) {
  ftc::ChainRuntime::Spec spec;
  spec.mode = ftc::ChainMode::kFtc;
  spec.cfg.f = 1;
  spec.cfg.burst_size = burst;
  spec.cfg.profile = true;
  spec.cfg.quiet_assert = true;
  for (int i = 0; i < 2; ++i) {
    spec.mbox_factories.push_back(
        [] { return std::unique_ptr<mbox::Middlebox>(new mbox::Monitor(1)); });
  }
  ftc::ChainRuntime chain(spec);
  HotProfiler* prof = chain.profiler();
  ASSERT_NE(prof, nullptr);
  ASSERT_EQ(hot_profiler(), prof);

  chain.start();
  tgen::Workload w;
  w.num_flows = 32;
  w.burst = burst;
  const auto result = tgen::run_load(
      chain.pool(), chain.ingress(), chain.egress(), w,
      /*rate_pps=*/10'000.0, /*duration_s=*/0.4, /*warmup_s=*/0.1, nullptr,
      [prof] {
        prof->reset();
        prof->arm_quiet();
      });
  prof->disarm_quiet();
  chain.stop();
  ASSERT_GT(result.received, 0u);

  const BudgetReport report = prof->report();
  EXPECT_GT(report.total.packets, 0u);
  EXPECT_GT(report.total.wall_cycles, 0u);

  // Stage sums reconcile against busy wall time. The chained stage marks
  // tile the burst loop, so the bound holds with margin on a quiet
  // machine; the floor here is loose because tier-1 runs share cores with
  // parallel test binaries (and sanitizers dilate untimed glue).
  EXPECT_GE(report.total.reconciliation, 0.5);
  EXPECT_LE(report.total.reconciliation, 1.25);

  // Every ftc worker produced a labeled row with per-stage ns/packet.
  bool saw_node_worker = false;
  for (const auto& worker : report.workers) {
    if (worker.worker.rfind("ftc-node-", 0) != 0) continue;
    saw_node_worker = true;
    EXPECT_GT(worker.packets, 0u);
    double primary_ns = 0;
    for (const auto& row : worker.stages) {
      if (prof_stage_primary(row.stage)) primary_ns += row.ns_per_packet;
    }
    EXPECT_GT(primary_ns, 0.0) << worker.worker;
  }
  EXPECT_TRUE(saw_node_worker);

  // A paced steady-state run is quiet: no allocation failures, contended
  // locks, free retries, or send retries after warmup.
  EXPECT_TRUE(prof->quiet_ok())
      << "violations=" << prof->quiet_violation_count()
      << " burst=" << burst;
}

TEST(ProfChain, ReconciliationAndQuietAtBurst32) { run_budget_chain(32); }

TEST(ProfChain, ReconciliationAndQuietAtBurst1) { run_budget_chain(1); }

TEST(ProfChain, BudgetExportedThroughRegistry) {
  ftc::ChainRuntime::Spec spec;
  spec.mode = ftc::ChainMode::kFtc;
  spec.cfg.f = 1;
  spec.cfg.profile = true;
  spec.mbox_factories.push_back(
      [] { return std::unique_ptr<mbox::Middlebox>(new mbox::Monitor(1)); });
  ftc::ChainRuntime chain(spec);
  chain.start();
  tgen::Workload w;
  w.num_flows = 16;
  (void)tgen::run_load(chain.pool(), chain.ingress(), chain.egress(), w,
                       /*rate_pps=*/10'000.0, /*duration_s=*/0.2,
                       /*warmup_s=*/0.05);
  chain.stop();

  const std::string text = to_text(chain.registry());
  EXPECT_NE(text.find("budget.ns_per_packet"), std::string::npos);
  EXPECT_NE(text.find("budget.cycles_per_packet"), std::string::npos);
  EXPECT_NE(text.find("budget.reconciliation"), std::string::npos);
  EXPECT_NE(text.find("budget.tsc_hz"), std::string::npos);
  EXPECT_NE(text.find("ftc-node-0-t0"), std::string::npos);
}

// --- Span ring health gauges (per-worker drop/high-water). --------------

TEST(SpanRingHealth, DropsAndHighWaterLabeledByWorker) {
  Registry registry;
  SpanCollectorConfig cfg;
  cfg.thread_buffer_capacity = 4;  // Tiny ring: force overflow.
  SpanCollector collector(&registry, cfg);

  // Flood far past the ring capacity faster than the drainer can empty it.
  for (int i = 0; i < 100'000; ++i) {
    collector.record(SpanRecord{1, rt::now_ns(),
                                static_cast<std::uint64_t>(i),
                                span_site_node(0), SpanKind::kProcess});
  }
  EXPECT_GT(collector.dropped(), 0u);

  // The ring's gauges carry the owning worker's label (non-worker threads
  // fall back to "main").
  const std::string text = to_text(registry);
  EXPECT_NE(text.find("span.ring_dropped"), std::string::npos);
  EXPECT_NE(text.find("span.ring_high_water"), std::string::npos);
  EXPECT_NE(text.find("main"), std::string::npos);

  // clear() resets the per-ring health counters with the records.
  collector.clear();
  EXPECT_EQ(collector.dropped(), 0u);
}

}  // namespace
}  // namespace sfc::obs
