// Property sweep across the chain configuration space: every mode x
// length x fault-tolerance combination must deliver traffic end-to-end,
// and FTC must additionally replicate every middlebox's state f+1 times
// and quiesce cleanly.
#include <gtest/gtest.h>

#include <thread>

#include "core/chain.hpp"
#include "mbox/monitor.hpp"
#include "tgen/traffic.hpp"

namespace sfc::ftc {
namespace {

struct SweepParam {
  ChainMode mode;
  std::size_t length;
  std::uint32_t f;
  std::size_t threads;
  std::size_t burst{32};  ///< Data-path burst size (1 = per-packet).
};

std::string param_name(const ::testing::TestParamInfo<SweepParam>& info) {
  std::string mode;
  switch (info.param.mode) {
    case ChainMode::kNf: mode = "Nf"; break;
    case ChainMode::kFtc: mode = "Ftc"; break;
    case ChainMode::kFtmb: mode = "Ftmb"; break;
    case ChainMode::kFtmbSnapshot: mode = "FtmbSnap"; break;
  }
  return mode + "_len" + std::to_string(info.param.length) + "_f" +
         std::to_string(info.param.f) + "_t" +
         std::to_string(info.param.threads) + "_b" +
         std::to_string(info.param.burst);
}

class ChainSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(ChainSweep, DeliversAndReplicates) {
  const auto param = GetParam();
  ChainRuntime::Spec spec;
  spec.mode = param.mode;
  spec.cfg.f = param.f;
  spec.cfg.threads_per_node = param.threads;
  spec.cfg.pool_packets = 2048;
  spec.cfg.propagate_interval_ns = 100'000;
  spec.cfg.burst_size = param.burst;
  for (std::size_t i = 0; i < param.length; ++i) {
    spec.mbox_factories.push_back([]() -> std::unique_ptr<mbox::Middlebox> {
      return std::make_unique<mbox::Monitor>(1);
    });
  }
  ChainRuntime chain(spec);
  chain.start();

  tgen::Workload w;
  w.burst = param.burst;
  tgen::TrafficSource source(chain.pool(), chain.ingress(), w, 40'000.0);
  tgen::TrafficSink sink(chain.pool(), chain.egress());
  sink.start();
  source.start();

  constexpr std::uint64_t kPackets = 500;
  const auto deadline = rt::now_ns() + 20'000'000'000ull;
  while (sink.packets_received() < kPackets && rt::now_ns() < deadline) {
    std::this_thread::yield();
  }
  source.stop();
  ASSERT_GE(sink.packets_received(), kPackets)
      << "no end-to-end delivery for this configuration";

  if (param.mode == ChainMode::kFtc) {
    // Quiesce, then check the replication-factor invariant: each
    // middlebox's counters present and equal on ALL f successors.
    const auto quiesce_deadline = rt::now_ns() + 10'000'000'000ull;
    while (!chain.quiescent() && rt::now_ns() < quiesce_deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ASSERT_TRUE(chain.quiescent()) << "chain failed to quiesce";

    for (std::uint32_t m = 0; m < param.length; ++m) {
      auto* head_node = chain.ftc_node(m);
      auto* monitor = dynamic_cast<mbox::Monitor*>(head_node->middlebox());
      std::uint64_t head_total = 0;
      for (std::uint32_t t = 0; t < param.threads; ++t) {
        if (auto v = head_node->head()->store().get(monitor->counter_key(t))) {
          head_total += v->as<std::uint64_t>();
        }
      }
      EXPECT_GE(head_total, kPackets) << "mbox " << m;

      for (std::uint32_t k = 1; k <= param.f; ++k) {
        auto* replica_node =
            chain.ftc_node((m + k) % chain.ring_size());
        InOrderApplier* applier = replica_node->applier(m);
        ASSERT_NE(applier, nullptr) << "mbox " << m << " successor " << k;
        std::uint64_t replica_total = 0;
        for (std::uint32_t t = 0; t < param.threads; ++t) {
          if (auto v = applier->store().get(monitor->counter_key(t))) {
            replica_total += v->as<std::uint64_t>();
          }
        }
        EXPECT_EQ(replica_total, head_total)
            << "mbox " << m << " lagging at successor " << k;
      }
    }
  }

  sink.stop();
  chain.stop();
}

INSTANTIATE_TEST_SUITE_P(
    Configurations, ChainSweep,
    ::testing::Values(
        // Baselines across lengths.
        SweepParam{ChainMode::kNf, 1, 0, 1}, SweepParam{ChainMode::kNf, 5, 0, 2},
        SweepParam{ChainMode::kFtmb, 1, 0, 1},
        SweepParam{ChainMode::kFtmb, 4, 0, 1},
        SweepParam{ChainMode::kFtmbSnapshot, 2, 0, 1},
        // FTC: length x f x threads coverage, including ring extension
        // (length < f+1) and the maximum f for each length.
        SweepParam{ChainMode::kFtc, 1, 1, 1}, SweepParam{ChainMode::kFtc, 1, 2, 1},
        SweepParam{ChainMode::kFtc, 2, 1, 1}, SweepParam{ChainMode::kFtc, 2, 1, 2},
        SweepParam{ChainMode::kFtc, 3, 2, 1}, SweepParam{ChainMode::kFtc, 4, 1, 1},
        SweepParam{ChainMode::kFtc, 4, 3, 1}, SweepParam{ChainMode::kFtc, 5, 1, 2},
        SweepParam{ChainMode::kFtc, 5, 4, 1},
        // Burst-size coverage: burst 1 must behave exactly like the
        // pre-batching per-packet path (the default above is 32).
        SweepParam{ChainMode::kNf, 3, 0, 1, 1},
        SweepParam{ChainMode::kFtc, 3, 1, 1, 1},
        SweepParam{ChainMode::kFtc, 2, 1, 2, 1},
        SweepParam{ChainMode::kFtc, 3, 2, 1, 128}),
    param_name);

}  // namespace
}  // namespace sfc::ftc
