// Tests for the inline-storage SmallVector used on the piggyback path.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "runtime/small_vector.hpp"

namespace sfc::rt {
namespace {

TEST(SmallVector, StartsEmptyInline) {
  SmallVector<int, 4> v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.size(), 0u);
  EXPECT_EQ(v.capacity(), 4u);
}

TEST(SmallVector, PushWithinInlineCapacity) {
  SmallVector<int, 4> v;
  for (int i = 0; i < 4; ++i) v.push_back(i);
  EXPECT_EQ(v.size(), 4u);
  EXPECT_EQ(v.capacity(), 4u);  // No heap spill yet.
  for (int i = 0; i < 4; ++i) EXPECT_EQ(v[i], i);
}

TEST(SmallVector, SpillsToHeapAndKeepsContents) {
  SmallVector<int, 2> v;
  for (int i = 0; i < 100; ++i) v.push_back(i);
  EXPECT_EQ(v.size(), 100u);
  EXPECT_GT(v.capacity(), 2u);
  for (int i = 0; i < 100; ++i) ASSERT_EQ(v[i], i);
}

TEST(SmallVector, NonTrivialElements) {
  SmallVector<std::string, 2> v;
  v.push_back("alpha");
  v.push_back(std::string(100, 'x'));  // Heap-allocated string.
  v.push_back("gamma");                // Forces the spill.
  EXPECT_EQ(v[0], "alpha");
  EXPECT_EQ(v[1], std::string(100, 'x'));
  EXPECT_EQ(v[2], "gamma");
}

TEST(SmallVector, CopyIsDeep) {
  SmallVector<std::string, 2> a;
  a.push_back("one");
  a.push_back("two");
  auto b = a;
  b[0] = "changed";
  EXPECT_EQ(a[0], "one");
  EXPECT_EQ(b.size(), 2u);
}

TEST(SmallVector, MoveStealsHeapBuffer) {
  SmallVector<int, 2> a;
  for (int i = 0; i < 50; ++i) a.push_back(i);
  const int* data = a.data();
  auto b = std::move(a);
  EXPECT_EQ(b.data(), data);  // Heap buffer moved, not copied.
  EXPECT_EQ(b.size(), 50u);
  EXPECT_TRUE(a.empty());
}

TEST(SmallVector, MoveInlineMovesElements) {
  SmallVector<std::string, 4> a;
  a.push_back("hello");
  auto b = std::move(a);
  EXPECT_EQ(b.size(), 1u);
  EXPECT_EQ(b[0], "hello");
  EXPECT_TRUE(a.empty());
}

TEST(SmallVector, RemoveIfPreservesOrder) {
  SmallVector<int, 4> v;
  for (int i = 0; i < 10; ++i) v.push_back(i);
  const auto removed = v.remove_if([](int x) { return x % 2 == 0; });
  EXPECT_EQ(removed, 5u);
  ASSERT_EQ(v.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(v[i], static_cast<int>(2 * i + 1));
}

TEST(SmallVector, RemoveIfNothingMatches) {
  SmallVector<int, 4> v{1, 3, 5};
  EXPECT_EQ(v.remove_if([](int x) { return x > 100; }), 0u);
  EXPECT_EQ(v.size(), 3u);
}

TEST(SmallVector, AppendMove) {
  SmallVector<std::string, 2> a, b;
  a.push_back("a1");
  b.push_back("b1");
  b.push_back("b2");
  b.push_back("b3");  // b spills to heap.
  a.append_move(std::move(b));
  ASSERT_EQ(a.size(), 4u);
  EXPECT_EQ(a[0], "a1");
  EXPECT_EQ(a[3], "b3");
  EXPECT_TRUE(b.empty());
}

TEST(SmallVector, EqualityElementwise) {
  SmallVector<int, 2> a{1, 2, 3};
  SmallVector<int, 2> b{1, 2, 3};
  SmallVector<int, 2> c{1, 2, 4};
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
}

TEST(SmallVector, ClearRunsDestructors) {
  auto counter = std::make_shared<int>(0);
  struct Probe {
    std::shared_ptr<int> c;
    ~Probe() {
      if (c) ++*c;
    }
  };
  SmallVector<Probe, 2> v;
  v.emplace_back(Probe{counter});
  v.emplace_back(Probe{counter});
  const int before = *counter;
  v.clear();
  EXPECT_EQ(*counter - before, 2);
  EXPECT_TRUE(v.empty());
}

TEST(SmallVector, PopBack) {
  SmallVector<int, 4> v{1, 2, 3};
  v.pop_back();
  EXPECT_EQ(v.size(), 2u);
  EXPECT_EQ(v.back(), 2);
}

TEST(SmallVector, SelfAssignmentSafe) {
  SmallVector<int, 2> v{1, 2, 3};
  auto& alias = v;
  v = alias;
  EXPECT_EQ(v.size(), 3u);
  EXPECT_EQ(v[2], 3);
}

}  // namespace
}  // namespace sfc::rt
