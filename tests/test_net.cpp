// Tests for the network simulation substrate: links (delay, loss,
// reordering, backpressure) and the control plane (ordering, delays,
// regions, bandwidth).
#include <gtest/gtest.h>

#include <thread>

#include "net/control.hpp"
#include "runtime/clock.hpp"
#include "net/link.hpp"
#include "packet/packet_io.hpp"

namespace sfc::net {
namespace {

pkt::Packet* make_packet(pkt::PacketPool& pool, std::uint64_t id) {
  pkt::Packet* p = pool.alloc_raw();
  if (p != nullptr) {
    pkt::PacketBuilder(*p).udp(
        pkt::FlowKey{1, 2, 3, 4, pkt::Ipv4Header::kProtoUdp}, 64);
    p->anno().packet_id = id;
  }
  return p;
}

TEST(Link, FastPathDeliversInOrder) {
  pkt::PacketPool pool(64);
  Link link(pool, LinkConfig{});
  for (std::uint64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(link.send(make_packet(pool, i)));
  }
  for (std::uint64_t i = 0; i < 10; ++i) {
    pkt::Packet* p = link.poll();
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(p->anno().packet_id, i);
    pool.free_raw(p);
  }
  EXPECT_EQ(link.poll(), nullptr);
  EXPECT_TRUE(link.drained());
}

TEST(Link, BackpressureWhenFull) {
  pkt::PacketPool pool(64);
  LinkConfig cfg;
  cfg.capacity = 4;
  Link link(pool, cfg);
  std::size_t accepted = 0;
  while (true) {
    pkt::Packet* p = make_packet(pool, accepted);
    if (!link.send(p)) {
      pool.free_raw(p);
      break;
    }
    ++accepted;
  }
  EXPECT_GE(accepted, 4u);
  EXPECT_GT(link.stats().dropped_full, 0u);
  pool.free_raw(link.poll());
  EXPECT_TRUE(link.send(make_packet(pool, 99)));
}

TEST(Link, DelayHoldsPacketsUntilDue) {
  pkt::PacketPool pool(8);
  LinkConfig cfg;
  cfg.delay_ns = 20'000'000;  // 20 ms.
  Link link(pool, cfg);
  ASSERT_TRUE(link.send(make_packet(pool, 1)));
  EXPECT_EQ(link.poll(), nullptr);  // Not yet deliverable.
  std::this_thread::sleep_for(std::chrono::milliseconds(25));
  pkt::Packet* p = link.poll();
  ASSERT_NE(p, nullptr);
  pool.free_raw(p);
}

TEST(Link, LossDropsRoughlyAtConfiguredRate) {
  pkt::PacketPool pool(64);
  LinkConfig cfg;
  cfg.loss = 0.3;
  cfg.delay_ns = 1;  // Force the timed path.
  Link link(pool, cfg);
  constexpr int kPackets = 4000;
  for (int i = 0; i < kPackets; ++i) {
    pkt::Packet* p = make_packet(pool, i);
    ASSERT_NE(p, nullptr);
    ASSERT_TRUE(link.send(p));
    std::this_thread::sleep_for(std::chrono::microseconds(1));
    if (pkt::Packet* out = link.poll()) pool.free_raw(out);
  }
  const auto stats = link.stats();
  const double loss_rate =
      static_cast<double>(stats.dropped_loss) / kPackets;
  EXPECT_NEAR(loss_rate, 0.3, 0.05);
  // Lost packets were returned to the pool, not leaked: drain and count.
  while (pkt::Packet* p = link.poll()) pool.free_raw(p);
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  while (pkt::Packet* p = link.poll()) pool.free_raw(p);
  EXPECT_EQ(pool.available_approx(), 64u);
}

TEST(Link, ReorderingDeliversAllPackets) {
  pkt::PacketPool pool(256);
  LinkConfig cfg;
  cfg.delay_ns = 1000;
  cfg.reorder = 0.3;
  cfg.reorder_extra_ns = 100'000;
  Link link(pool, cfg);
  constexpr std::uint64_t kPackets = 200;
  for (std::uint64_t i = 0; i < kPackets; ++i) {
    ASSERT_TRUE(link.send(make_packet(pool, i)));
  }
  std::vector<std::uint64_t> order;
  const auto deadline = rt::now_ns() + 2'000'000'000ull;
  while (order.size() < kPackets && rt::now_ns() < deadline) {
    if (pkt::Packet* p = link.poll()) {
      order.push_back(p->anno().packet_id);
      pool.free_raw(p);
    }
  }
  ASSERT_EQ(order.size(), kPackets);
  // With 30% reordering, delivery must NOT be fully in order.
  bool out_of_order = false;
  for (std::size_t i = 1; i < order.size(); ++i) {
    out_of_order |= order[i] < order[i - 1];
  }
  EXPECT_TRUE(out_of_order);
}

TEST(Link, SendBlockingTimesOut) {
  pkt::PacketPool pool(16);
  LinkConfig cfg;
  cfg.capacity = 2;
  Link link(pool, cfg);
  ASSERT_TRUE(link.send(make_packet(pool, 0)));
  ASSERT_TRUE(link.send(make_packet(pool, 1)));
  pkt::Packet* p = make_packet(pool, 2);
  EXPECT_FALSE(link.send_blocking(p, 5'000'000));  // 5 ms timeout.
  pool.free_raw(p);
}

TEST(ControlPlane, DeliversInOrderPerSender) {
  ControlPlane cp;
  cp.register_node(1);
  for (std::uint32_t i = 0; i < 10; ++i) {
    Message m;
    m.type = 100 + i;
    m.from = 2;
    m.to = 1;
    cp.send(std::move(m));
  }
  for (std::uint32_t i = 0; i < 10; ++i) {
    auto msg = cp.poll(1);
    ASSERT_TRUE(msg.has_value());
    EXPECT_EQ(msg->type, 100 + i);
  }
  EXPECT_FALSE(cp.poll(1).has_value());
}

TEST(ControlPlane, UnknownDestinationDropped) {
  ControlPlane cp;
  Message m;
  m.to = 42;
  cp.send(std::move(m));  // Must not crash or queue anywhere.
}

TEST(ControlPlane, PairDelayHoldsDelivery) {
  ControlPlane cp;
  cp.register_node(1);
  cp.set_delay(1, 2, 30'000'000);  // 30 ms one way.
  Message m;
  m.from = 2;
  m.to = 1;
  m.type = 7;
  const auto t0 = rt::now_ns();
  cp.send(std::move(m));
  EXPECT_FALSE(cp.poll(1).has_value());
  auto got = cp.wait_for(1, 7, 1'000'000'000);
  ASSERT_TRUE(got.has_value());
  EXPECT_GE(rt::now_ns() - t0, 30'000'000u);
}

TEST(ControlPlane, RegionDelaysAndOverrides) {
  ControlPlane cp;
  cp.set_region(1, 0);
  cp.set_region(2, 1);
  cp.set_region(3, 1);
  cp.set_inter_region_delay(10'000'000);
  cp.set_region_delay(0, 1, 25'000'000);
  EXPECT_EQ(cp.delay_between(1, 2), 25'000'000u);  // Pair override.
  EXPECT_EQ(cp.delay_between(2, 3), 0u);           // Same region.
  cp.set_region(4, 2);
  EXPECT_EQ(cp.delay_between(1, 4), 10'000'000u);  // Default inter-region.
}

TEST(ControlPlane, BandwidthDelaysLargePayloads) {
  ControlPlane cp;
  cp.register_node(1);
  cp.set_bandwidth_gbps(1.0);  // 8 ns per byte.
  Message m;
  m.from = 2;
  m.to = 1;
  m.type = 9;
  m.payload.resize(1'000'000);  // ~8 ms at 1 Gbps.
  const auto t0 = rt::now_ns();
  cp.send(std::move(m));
  auto got = cp.wait_for(1, 9, 1'000'000'000);
  ASSERT_TRUE(got.has_value());
  EXPECT_GE(rt::now_ns() - t0, 7'000'000u);
}

TEST(ControlPlane, WaitForFiltersByTypeAndTag) {
  ControlPlane cp;
  cp.register_node(1);
  Message noise;
  noise.to = 1;
  noise.type = 1;
  cp.send(std::move(noise));
  Message wrong_tag;
  wrong_tag.to = 1;
  wrong_tag.type = 2;
  wrong_tag.tag = 5;
  cp.send(std::move(wrong_tag));
  Message target;
  target.to = 1;
  target.type = 2;
  target.tag = 9;
  cp.send(std::move(target));

  auto got = cp.wait_for(1, 2, 100'000'000, /*tag=*/9);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->tag, 9u);
  // The other messages were requeued, not lost.
  int remaining = 0;
  while (cp.poll(1)) ++remaining;
  EXPECT_EQ(remaining, 2);
}

}  // namespace
}  // namespace sfc::net
