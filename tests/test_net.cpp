// Tests for the network simulation substrate: links (delay, loss,
// reordering, backpressure) and the control plane (ordering, delays,
// regions, bandwidth).
#include <gtest/gtest.h>

#include <thread>

#include "net/control.hpp"
#include "runtime/clock.hpp"
#include "net/link.hpp"
#include "packet/packet_io.hpp"

namespace sfc::net {
namespace {

pkt::Packet* make_packet(pkt::PacketPool& pool, std::uint64_t id) {
  pkt::Packet* p = pool.alloc_raw();
  if (p != nullptr) {
    pkt::PacketBuilder(*p).udp(
        pkt::FlowKey{1, 2, 3, 4, pkt::Ipv4Header::kProtoUdp}, 64);
    p->anno().packet_id = id;
  }
  return p;
}

TEST(Link, FastPathDeliversInOrder) {
  pkt::PacketPool pool(64);
  Link link(pool, LinkConfig{});
  for (std::uint64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(link.send(make_packet(pool, i)));
  }
  for (std::uint64_t i = 0; i < 10; ++i) {
    pkt::Packet* p = link.poll();
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(p->anno().packet_id, i);
    pool.free_raw(p);
  }
  EXPECT_EQ(link.poll(), nullptr);
  EXPECT_TRUE(link.drained());
}

TEST(Link, BackpressureWhenFull) {
  pkt::PacketPool pool(64);
  LinkConfig cfg;
  cfg.capacity = 4;
  Link link(pool, cfg);
  std::size_t accepted = 0;
  while (true) {
    pkt::Packet* p = make_packet(pool, accepted);
    if (!link.send(p)) {
      pool.free_raw(p);
      break;
    }
    ++accepted;
  }
  EXPECT_GE(accepted, 4u);
  EXPECT_GT(link.stats().dropped_full, 0u);
  pool.free_raw(link.poll());
  EXPECT_TRUE(link.send(make_packet(pool, 99)));
}

TEST(Link, DelayHoldsPacketsUntilDue) {
  pkt::PacketPool pool(8);
  LinkConfig cfg;
  cfg.delay_ns = 20'000'000;  // 20 ms.
  Link link(pool, cfg);
  ASSERT_TRUE(link.send(make_packet(pool, 1)));
  EXPECT_EQ(link.poll(), nullptr);  // Not yet deliverable.
  std::this_thread::sleep_for(std::chrono::milliseconds(25));
  pkt::Packet* p = link.poll();
  ASSERT_NE(p, nullptr);
  pool.free_raw(p);
}

TEST(Link, LossDropsRoughlyAtConfiguredRate) {
  pkt::PacketPool pool(64);
  LinkConfig cfg;
  cfg.loss = 0.3;
  cfg.delay_ns = 1;  // Force the timed path.
  Link link(pool, cfg);
  constexpr int kPackets = 4000;
  for (int i = 0; i < kPackets; ++i) {
    pkt::Packet* p = make_packet(pool, i);
    ASSERT_NE(p, nullptr);
    ASSERT_TRUE(link.send(p));
    std::this_thread::sleep_for(std::chrono::microseconds(1));
    if (pkt::Packet* out = link.poll()) pool.free_raw(out);
  }
  const auto stats = link.stats();
  const double loss_rate =
      static_cast<double>(stats.dropped_loss) / kPackets;
  EXPECT_NEAR(loss_rate, 0.3, 0.05);
  // Lost packets were returned to the pool, not leaked: drain and count.
  while (pkt::Packet* p = link.poll()) pool.free_raw(p);
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  while (pkt::Packet* p = link.poll()) pool.free_raw(p);
  EXPECT_EQ(pool.available_approx(), 64u);
}

TEST(Link, ReorderingDeliversAllPackets) {
  pkt::PacketPool pool(256);
  LinkConfig cfg;
  cfg.delay_ns = 1000;
  cfg.reorder = 0.3;
  // The extra delay must comfortably exceed the duration of the send loop
  // below, or all packets become deliverable before polling starts and
  // arrive in order (seen under TSan, whose instrumentation slows the 200
  // sends past a 100 us window).
  cfg.reorder_extra_ns = 20'000'000;
  Link link(pool, cfg);
  constexpr std::uint64_t kPackets = 200;
  for (std::uint64_t i = 0; i < kPackets; ++i) {
    ASSERT_TRUE(link.send(make_packet(pool, i)));
  }
  std::vector<std::uint64_t> order;
  const auto deadline = rt::now_ns() + 2'000'000'000ull;
  while (order.size() < kPackets && rt::now_ns() < deadline) {
    if (pkt::Packet* p = link.poll()) {
      order.push_back(p->anno().packet_id);
      pool.free_raw(p);
    }
  }
  ASSERT_EQ(order.size(), kPackets);
  // With 30% reordering, delivery must NOT be fully in order.
  bool out_of_order = false;
  for (std::size_t i = 1; i < order.size(); ++i) {
    out_of_order |= order[i] < order[i - 1];
  }
  EXPECT_TRUE(out_of_order);
}

TEST(Link, ReorderLetsLaterPacketPassDelayedHead) {
  // Deterministic reorder: with loss == 0 the k-th send's reorder draw
  // hashes exactly (k ^ ~seed). Pick a seed where packet 0 is reordered
  // (delayed by reorder_extra_ns) and packet 1 is not, then check poll()
  // delivers packet 1 past the still-delayed head.
  LinkConfig cfg;
  cfg.delay_ns = 1'000'000;           // 1 ms base delay.
  cfg.reorder = 0.5;
  cfg.reorder_extra_ns = 60'000'000'000ull;  // Far beyond the test horizon.
  const auto reordered = [&](std::uint64_t counter, std::uint64_t seed) {
    const std::uint64_t draw = rt::splitmix64(counter ^ ~seed);
    return static_cast<double>(draw >> 11) * 0x1.0p-53 < cfg.reorder;
  };
  std::uint64_t seed = 0;
  while (!(reordered(0, seed) && !reordered(1, seed))) ++seed;
  cfg.seed = seed;

  pkt::PacketPool pool(8);
  Link link(pool, cfg);
  ASSERT_TRUE(link.send(make_packet(pool, 0)));  // Reordered: held back.
  ASSERT_TRUE(link.send(make_packet(pool, 1)));  // On time.

  pkt::Packet* p = nullptr;
  const auto deadline = rt::now_ns() + 1'000'000'000ull;
  while (p == nullptr && rt::now_ns() < deadline) p = link.poll();
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->anno().packet_id, 1u);  // Passed the delayed head.
  pool.free_raw(p);
  EXPECT_EQ(link.poll(), nullptr);  // Packet 0 still held back.
  EXPECT_FALSE(link.drained());
}

TEST(Link, BurstFastPathDeliversInOrderAndCounts) {
  pkt::PacketPool pool(64);
  Link link(pool, LinkConfig{});
  pkt::Packet* tx[16];
  for (std::uint64_t i = 0; i < 16; ++i) tx[i] = make_packet(pool, i);
  EXPECT_EQ(link.send_burst({tx, 16}), 16u);
  EXPECT_EQ(link.stats().sent, 16u);
  pkt::Packet* rx[16];
  // Mixed drain: singleton poll interleaves with bursts, order preserved.
  pkt::Packet* first = link.poll();
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->anno().packet_id, 0u);
  pool.free_raw(first);
  EXPECT_EQ(link.poll_burst(rx, 7), 7u);
  for (std::uint64_t i = 0; i < 7; ++i) {
    EXPECT_EQ(rx[i]->anno().packet_id, 1 + i);
    pool.free_raw(rx[i]);
  }
  EXPECT_EQ(link.poll_burst(rx, 16), 8u);
  for (std::uint64_t i = 0; i < 8; ++i) {
    EXPECT_EQ(rx[i]->anno().packet_id, 8 + i);
    pool.free_raw(rx[i]);
  }
  EXPECT_EQ(link.poll_burst(rx, 16), 0u);
  EXPECT_EQ(link.stats().delivered, 16u);
  EXPECT_TRUE(link.drained());
}

TEST(Link, BurstFastPathAcceptsPrefixWhenNearlyFull) {
  pkt::PacketPool pool(64);
  LinkConfig cfg;
  cfg.capacity = 8;
  Link link(pool, cfg);
  pkt::Packet* tx[12];
  for (std::uint64_t i = 0; i < 12; ++i) tx[i] = make_packet(pool, i);
  const std::size_t accepted = link.send_burst({tx, 12});
  EXPECT_EQ(accepted, 8u);  // The queue's capacity.
  for (std::size_t i = accepted; i < 12; ++i) pool.free_raw(tx[i]);
  EXPECT_EQ(link.send_burst({tx, 0}), 0u);
  pkt::Packet* rx[12];
  EXPECT_EQ(link.poll_burst(rx, 12), 8u);
  for (std::uint64_t i = 0; i < 8; ++i) {
    EXPECT_EQ(rx[i]->anno().packet_id, i);
    pool.free_raw(rx[i]);
  }
}

TEST(Link, BurstTimedPathKeepsPerPacketLossSemantics) {
  // send_burst on a lossy link must take the same per-packet loss draws as
  // N send() calls: with the deterministic counter-hash RNG, the set of
  // surviving packet ids is identical.
  constexpr std::uint64_t kPackets = 512;
  LinkConfig cfg;
  cfg.loss = 0.3;
  cfg.delay_ns = 1;  // Force the timed path.
  std::vector<std::uint64_t> singleton_survivors;
  {
    pkt::PacketPool pool(1024);
    Link link(pool, cfg);
    for (std::uint64_t i = 0; i < kPackets; ++i) {
      ASSERT_TRUE(link.send(make_packet(pool, i)));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    pkt::Packet* rx[64];
    std::size_t got;
    while ((got = link.poll_burst(rx, 64)) != 0) {
      for (std::size_t i = 0; i < got; ++i) {
        singleton_survivors.push_back(rx[i]->anno().packet_id);
        pool.free_raw(rx[i]);
      }
    }
  }
  std::vector<std::uint64_t> burst_survivors;
  {
    pkt::PacketPool pool(1024);
    Link link(pool, cfg);
    pkt::Packet* tx[64];
    for (std::uint64_t base = 0; base < kPackets; base += 64) {
      for (std::uint64_t i = 0; i < 64; ++i) tx[i] = make_packet(pool, base + i);
      ASSERT_EQ(link.send_burst({tx, 64}), 64u);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    while (pkt::Packet* p = link.poll()) {
      burst_survivors.push_back(p->anno().packet_id);
      pool.free_raw(p);
    }
  }
  EXPECT_FALSE(singleton_survivors.empty());
  EXPECT_LT(singleton_survivors.size(), kPackets);
  EXPECT_EQ(burst_survivors, singleton_survivors);
}

TEST(Link, BurstPollWithReorderMatchesSingletonSemantics) {
  // poll_burst on a reordering link must deliver exactly the packets N
  // poll() calls would: ready head packets in order, with held-back
  // (reordered) packets skipped until their extra delay elapses.
  LinkConfig cfg;
  cfg.delay_ns = 1'000'000;                  // 1 ms base delay.
  cfg.reorder = 0.5;
  cfg.reorder_extra_ns = 60'000'000'000ull;  // Beyond the test horizon.
  // Deterministic draws (see ReorderLetsLaterPacketPassDelayedHead): pick a
  // seed where some of the first 8 packets are held and some pass.
  const auto reordered = [&](std::uint64_t counter, std::uint64_t seed) {
    const std::uint64_t draw = rt::splitmix64(counter ^ ~seed);
    return static_cast<double>(draw >> 11) * 0x1.0p-53 < cfg.reorder;
  };
  std::uint64_t seed = 0;
  const auto mask_of = [&](std::uint64_t s) {
    std::uint64_t m = 0;
    for (std::uint64_t i = 0; i < 8; ++i) m |= std::uint64_t{reordered(i, s)} << i;
    return m;
  };
  while (mask_of(seed) == 0 || mask_of(seed) == 0xff) ++seed;
  cfg.seed = seed;

  std::vector<std::uint64_t> expected;
  for (std::uint64_t i = 0; i < 8; ++i) {
    if (!reordered(i, seed)) expected.push_back(i);
  }

  pkt::PacketPool pool(16);
  Link link(pool, cfg);
  pkt::Packet* tx[8];
  for (std::uint64_t i = 0; i < 8; ++i) tx[i] = make_packet(pool, i);
  ASSERT_EQ(link.send_burst({tx, 8}), 8u);

  // One burst drain (after the base delay) must surface exactly the
  // on-time packets, in order, skipping the held ones.
  pkt::Packet* rx[8];
  std::vector<std::uint64_t> got_ids;
  const auto deadline = rt::now_ns() + 2'000'000'000ull;
  while (got_ids.size() < expected.size() && rt::now_ns() < deadline) {
    const std::size_t got = link.poll_burst(rx, 8);
    for (std::size_t i = 0; i < got; ++i) {
      got_ids.push_back(rx[i]->anno().packet_id);
      pool.free_raw(rx[i]);
    }
  }
  EXPECT_EQ(got_ids, expected);
  EXPECT_EQ(link.poll_burst(rx, 8), 0u);  // Held packets still held.
  EXPECT_FALSE(link.drained());
}

TEST(Link, SendBlockingCountsRetries) {
  obs::Registry registry;
  pkt::PacketPool pool(16);
  LinkConfig cfg;
  cfg.capacity = 2;
  Link link(pool, cfg, &registry, "retry-link");
  ASSERT_TRUE(link.send(make_packet(pool, 0)));
  ASSERT_TRUE(link.send(make_packet(pool, 1)));
  pkt::Packet* p = make_packet(pool, 2);
  EXPECT_FALSE(link.send_blocking(p, 2'000'000));  // 2 ms timeout.
  pool.free_raw(p);
  const obs::Labels labels{{"link", "retry-link"}};
  EXPECT_GT(registry.counter("link.send_retries", labels).value(), 0u);

  // A successful blocking send after drain adds no further retries once
  // the queue has room.
  const auto retries_before =
      registry.counter("link.send_retries", labels).value();
  pool.free_raw(link.poll());
  EXPECT_TRUE(link.send_blocking(make_packet(pool, 3)));
  EXPECT_EQ(registry.counter("link.send_retries", labels).value(),
            retries_before);
}

TEST(Link, SendBlockingTimesOut) {
  pkt::PacketPool pool(16);
  LinkConfig cfg;
  cfg.capacity = 2;
  Link link(pool, cfg);
  ASSERT_TRUE(link.send(make_packet(pool, 0)));
  ASSERT_TRUE(link.send(make_packet(pool, 1)));
  pkt::Packet* p = make_packet(pool, 2);
  EXPECT_FALSE(link.send_blocking(p, 5'000'000));  // 5 ms timeout.
  pool.free_raw(p);
}

TEST(ControlPlane, DeliversInOrderPerSender) {
  ControlPlane cp;
  cp.register_node(1);
  for (std::uint32_t i = 0; i < 10; ++i) {
    Message m;
    m.type = 100 + i;
    m.from = 2;
    m.to = 1;
    cp.send(std::move(m));
  }
  for (std::uint32_t i = 0; i < 10; ++i) {
    auto msg = cp.poll(1);
    ASSERT_TRUE(msg.has_value());
    EXPECT_EQ(msg->type, 100 + i);
  }
  EXPECT_FALSE(cp.poll(1).has_value());
}

TEST(ControlPlane, UnknownDestinationDropped) {
  ControlPlane cp;
  Message m;
  m.to = 42;
  cp.send(std::move(m));  // Must not crash or queue anywhere.
}

TEST(ControlPlane, PairDelayHoldsDelivery) {
  ControlPlane cp;
  cp.register_node(1);
  cp.set_delay(1, 2, 30'000'000);  // 30 ms one way.
  Message m;
  m.from = 2;
  m.to = 1;
  m.type = 7;
  const auto t0 = rt::now_ns();
  cp.send(std::move(m));
  EXPECT_FALSE(cp.poll(1).has_value());
  auto got = cp.wait_for(1, 7, 1'000'000'000);
  ASSERT_TRUE(got.has_value());
  EXPECT_GE(rt::now_ns() - t0, 30'000'000u);
}

TEST(ControlPlane, RegionDelaysAndOverrides) {
  ControlPlane cp;
  cp.set_region(1, 0);
  cp.set_region(2, 1);
  cp.set_region(3, 1);
  cp.set_inter_region_delay(10'000'000);
  cp.set_region_delay(0, 1, 25'000'000);
  EXPECT_EQ(cp.delay_between(1, 2), 25'000'000u);  // Pair override.
  EXPECT_EQ(cp.delay_between(2, 3), 0u);           // Same region.
  cp.set_region(4, 2);
  EXPECT_EQ(cp.delay_between(1, 4), 10'000'000u);  // Default inter-region.
}

TEST(ControlPlane, BandwidthDelaysLargePayloads) {
  ControlPlane cp;
  cp.register_node(1);
  cp.set_bandwidth_gbps(1.0);  // 8 ns per byte.
  Message m;
  m.from = 2;
  m.to = 1;
  m.type = 9;
  m.payload.resize(1'000'000);  // ~8 ms at 1 Gbps.
  const auto t0 = rt::now_ns();
  cp.send(std::move(m));
  auto got = cp.wait_for(1, 9, 1'000'000'000);
  ASSERT_TRUE(got.has_value());
  EXPECT_GE(rt::now_ns() - t0, 7'000'000u);
}

TEST(ControlPlane, WaitForFiltersByTypeAndTag) {
  ControlPlane cp;
  cp.register_node(1);
  Message noise;
  noise.to = 1;
  noise.type = 1;
  cp.send(std::move(noise));
  Message wrong_tag;
  wrong_tag.to = 1;
  wrong_tag.type = 2;
  wrong_tag.tag = 5;
  cp.send(std::move(wrong_tag));
  Message target;
  target.to = 1;
  target.type = 2;
  target.tag = 9;
  cp.send(std::move(target));

  auto got = cp.wait_for(1, 2, 100'000'000, /*tag=*/9);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->tag, 9u);
  // The other messages were requeued, not lost.
  int remaining = 0;
  while (cp.poll(1)) ++remaining;
  EXPECT_EQ(remaining, 2);
}

TEST(ControlPlane, WaitForPreservesOrderOfSkippedMessages) {
  // Regression: wait_for used to pull non-matching messages out of the
  // inbox and re-queue them stamped with the CURRENT time, which moved
  // them behind messages sent later. They must keep their slot.
  ControlPlane cp;
  cp.register_node(1);
  Message a;
  a.to = 1;
  a.type = 1;
  a.tag = 100;
  cp.send(std::move(a));
  Message b;
  b.to = 1;
  b.type = 2;
  cp.send(std::move(b));
  Message c;
  c.to = 1;
  c.type = 1;
  c.tag = 101;
  cp.send(std::move(c));

  auto got = cp.wait_for(1, 2, 100'000'000);
  ASSERT_TRUE(got.has_value());

  // The two skipped type-1 messages still arrive in send order.
  auto first = cp.poll(1);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->tag, 100u);
  auto second = cp.poll(1);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->tag, 101u);
  EXPECT_FALSE(cp.poll(1).has_value());
}

TEST(ControlPlane, WaitForDoesNotHideMessagesFromConcurrentConsumers) {
  // Regression: wait_for used to pull every deliverable non-matching
  // message into a private stash and only re-queue the stash when IT
  // finished — a concurrent consumer of those messages starved for the
  // full duration of the first consumer's wait.
  ControlPlane cp;
  cp.register_node(1);
  Message m;
  m.to = 1;
  m.type = 1;
  cp.send(std::move(m));

  // Consumer 1 waits for a type that never arrives, scanning past the
  // type-1 message for 600 ms.
  std::thread blocked([&cp] {
    EXPECT_FALSE(cp.wait_for(1, 2, 600'000'000).has_value());
  });
  // Give it time to have scanned the inbox at least once.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  // Consumer 2 must still see the type-1 message while consumer 1 waits.
  auto got = cp.wait_for(1, 1, 200'000'000);
  EXPECT_TRUE(got.has_value());
  blocked.join();
}

TEST(ControlPlane, WaitForInterleavedWithDelayedSends) {
  // A wait_for spinning on a delayed target must leave an immediately
  // deliverable non-matching message in the inbox, untouched.
  ControlPlane cp;
  cp.register_node(1);
  cp.set_delay(5, 1, 30'000'000);  // 30 ms from sender 5.
  Message noise;
  noise.from = 2;
  noise.to = 1;
  noise.type = 3;
  cp.send(std::move(noise));
  Message target;
  target.from = 5;
  target.to = 1;
  target.type = 4;
  const auto t0 = rt::now_ns();
  cp.send(std::move(target));

  auto got = cp.wait_for(1, 4, 1'000'000'000);
  ASSERT_TRUE(got.has_value());
  EXPECT_GE(rt::now_ns() - t0, 30'000'000u);
  auto leftover = cp.poll(1);
  ASSERT_TRUE(leftover.has_value());
  EXPECT_EQ(leftover->type, 3u);
}

TEST(ControlPlane, MixedPairDelaysDeliverByArrivalTime) {
  // Per-pair delays differ per sender: a message sent LATER over a fast
  // pair overtakes one sent earlier over a slow pair, and both arrive no
  // earlier than their own delay.
  ControlPlane cp;
  cp.register_node(1);
  cp.set_delay(2, 1, 60'000'000);  // Slow pair: 60 ms.
  cp.set_delay(3, 1, 5'000'000);   // Fast pair: 5 ms.
  Message slow;
  slow.from = 2;
  slow.to = 1;
  slow.type = 7;
  Message fast;
  fast.from = 3;
  fast.to = 1;
  fast.type = 8;
  const auto t0 = rt::now_ns();
  cp.send(std::move(slow));
  cp.send(std::move(fast));

  // Generic wait (any type arriving first) must surface the fast-pair
  // message even though it was enqueued second.
  std::optional<Message> first;
  while (!first.has_value() && rt::now_ns() - t0 < 1'000'000'000ull) {
    first = cp.poll(1);
  }
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->type, 8u);
  EXPECT_GE(rt::now_ns() - t0, 5'000'000u);

  auto second = cp.wait_for(1, 7, 1'000'000'000);
  ASSERT_TRUE(second.has_value());
  EXPECT_GE(rt::now_ns() - t0, 60'000'000u);
}

TEST(ControlPlane, CountsRegistryMetrics) {
  obs::Registry registry;
  ControlPlane cp(&registry);
  cp.register_node(1);
  Message m;
  m.to = 1;
  m.type = 5;
  cp.send(std::move(m));
  Message dropped;
  dropped.to = 99;
  cp.send(std::move(dropped));
  ASSERT_TRUE(cp.wait_for(1, 5, 100'000'000).has_value());
  EXPECT_FALSE(cp.wait_for(1, 6, 1'000).has_value());

  EXPECT_EQ(registry.counter("ctrl.msgs_sent").value(), 2u);
  EXPECT_EQ(registry.counter("ctrl.msgs_delivered").value(), 1u);
  EXPECT_EQ(registry.counter("ctrl.msgs_dropped_unknown_dest").value(), 1u);
  EXPECT_EQ(registry.counter("ctrl.wait_for_timeouts").value(), 1u);
}

TEST(Link, CounterInvariantHoldsOnLossyPath) {
  // Accounting convention: `sent` counts every packet the link ACCEPTED,
  // including ones the loss model consumed on the wire. After a full
  // drain, sent == delivered + dropped_loss on every path (the regression
  // was a wire drop returning true without counting as sent).
  pkt::PacketPool pool(1024);
  LinkConfig cfg;
  cfg.loss = 0.3;
  cfg.delay_ns = 1000;
  Link link(pool, cfg);
  constexpr std::uint64_t kSingles = 300;
  for (std::uint64_t i = 0; i < kSingles; ++i) {
    ASSERT_TRUE(link.send(make_packet(pool, i)));
  }
  // Burst sends share the same convention.
  pkt::Packet* burst[32];
  std::uint64_t accepted = kSingles;
  for (int round = 0; round < 8; ++round) {
    for (std::uint64_t i = 0; i < 32; ++i) {
      burst[i] = make_packet(pool, 1000 + i);
      ASSERT_NE(burst[i], nullptr);
    }
    accepted += link.send_burst({burst, 32});
  }
  std::this_thread::sleep_for(std::chrono::microseconds(100));
  pkt::Packet* rx[64];
  while (std::size_t n = link.poll_burst(rx, 64)) {
    for (std::size_t i = 0; i < n; ++i) pool.free_raw(rx[i]);
  }
  ASSERT_TRUE(link.drained());
  const LinkStats s = link.stats();
  EXPECT_EQ(s.sent, accepted);
  EXPECT_EQ(s.sent, s.delivered + s.dropped_loss);
  EXPECT_GT(s.dropped_loss, 0u);
  // Nothing leaked: every accepted packet is back in the pool.
  EXPECT_EQ(pool.available_approx(), 1024u);
}

TEST(Link, ReorderStreamIndependentOfLossRate) {
  // Loss and reorder draws come from separate deterministic streams: the
  // j-th SURVIVING packet must take the same reorder decision regardless
  // of the loss rate. (With the old shared counter, every loss draw
  // advanced the reorder stream, correlating the two.) Held packets are
  // identified positionally: reorder_extra is far beyond the test
  // horizon, so polled = not held, deterministically.
  constexpr std::uint64_t kPackets = 400;
  constexpr std::uint64_t kSeed = 12345;
  const auto held_ranks = [&](double loss) {
    pkt::PacketPool pool(kPackets + 8);
    LinkConfig cfg;
    cfg.delay_ns = 1000;
    cfg.loss = loss;
    cfg.reorder = 0.3;
    cfg.reorder_extra_ns = 3'600'000'000'000ull;  // 1 h: never delivered.
    cfg.seed = kSeed;
    Link link(pool, cfg);
    for (std::uint64_t i = 0; i < kPackets; ++i) {
      EXPECT_TRUE(link.send(make_packet(pool, i)));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    std::vector<bool> delivered(kPackets, false);
    while (pkt::Packet* p = link.poll()) {
      delivered[p->anno().packet_id] = true;
      pool.free_raw(p);
    }
    // Survivor rank -> held? (survivors = delivered + held-in-queue; the
    // lost ones took no reorder draw at all).
    const std::uint64_t survivors = link.stats().sent -
                                    link.stats().dropped_loss;
    std::vector<bool> held;
    std::uint64_t seen = 0;
    for (std::uint64_t i = 0; i < kPackets && seen < survivors; ++i) {
      // A packet is a survivor iff it was delivered or still queued; the
      // queued (held) ones are exactly the survivors not delivered.
      // Identify survivors by replaying the loss stream.
      const std::uint64_t draw = rt::splitmix64(i ^ kSeed);
      const bool lost =
          loss > 0.0 &&
          static_cast<double>(draw >> 11) * 0x1.0p-53 < loss;
      if (lost) continue;
      ++seen;
      held.push_back(!delivered[i]);
    }
    return held;
  };

  const std::vector<bool> base = held_ranks(0.0);
  const std::vector<bool> lossy = held_ranks(0.4);
  ASSERT_GT(lossy.size(), 100u);
  ASSERT_GE(base.size(), lossy.size());
  std::size_t held_count = 0;
  for (std::size_t j = 0; j < lossy.size(); ++j) {
    EXPECT_EQ(base[j], lossy[j]) << "survivor rank " << j;
    held_count += lossy[j];
  }
  // And the reorder rate itself stays near the configured probability.
  EXPECT_NEAR(static_cast<double>(held_count) / lossy.size(), 0.3, 0.08);
}

}  // namespace
}  // namespace sfc::net
