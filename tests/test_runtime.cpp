// Unit tests for the runtime substrate: queues, RNG, clocks, histogram,
// rate limiter, worker loops.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <thread>
#include <vector>

#include "runtime/clock.hpp"
#include "runtime/histogram.hpp"
#include "runtime/meter.hpp"
#include "runtime/mpmc_queue.hpp"
#include "runtime/rate_limiter.hpp"
#include "runtime/rng.hpp"
#include "runtime/spsc_queue.hpp"
#include "runtime/worker.hpp"

namespace sfc::rt {
namespace {

TEST(Pow2, NextPow2) {
  EXPECT_EQ(next_pow2(0), 1u);
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(1023), 1024u);
  EXPECT_EQ(next_pow2(1024), 1024u);
  EXPECT_EQ(next_pow2(1025), 2048u);
}

TEST(Pow2, IsPow2) {
  EXPECT_FALSE(is_pow2(0));
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(64));
  EXPECT_FALSE(is_pow2(65));
}

TEST(SpscQueue, PushPopOrdered) {
  SpscQueue<int> q(8);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(q.try_push(i));
  for (int i = 0; i < 8; ++i) {
    auto v = q.try_pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(SpscQueue, RespectsCapacity) {
  SpscQueue<int> q(4);
  std::size_t pushed = 0;
  while (q.try_push(1)) ++pushed;
  EXPECT_GE(pushed, 4u);
  EXPECT_FALSE(q.try_push(1));
  ASSERT_TRUE(q.try_pop().has_value());
  EXPECT_TRUE(q.try_push(2));
}

TEST(SpscQueue, CrossThreadTransfersEverything) {
  SpscQueue<std::uint64_t> q(1024);
  constexpr std::uint64_t kCount = 200000;
  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kCount;) {
      if (q.try_push(std::uint64_t{i})) ++i;
    }
  });
  std::uint64_t expected = 0, sum = 0;
  while (expected < kCount) {
    if (auto v = q.try_pop()) {
      EXPECT_EQ(*v, expected);
      sum += *v;
      ++expected;
    }
  }
  producer.join();
  EXPECT_EQ(sum, kCount * (kCount - 1) / 2);
}

TEST(MpmcQueue, PushPopSingleThread) {
  MpmcQueue<int> q(16);
  for (int i = 0; i < 16; ++i) EXPECT_TRUE(q.try_push(i));
  EXPECT_FALSE(q.try_push(99));
  for (int i = 0; i < 16; ++i) {
    auto v = q.try_pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(MpmcQueue, ManyProducersManyConsumers) {
  MpmcQueue<std::uint64_t> q(256);
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr std::uint64_t kPerProducer = 50000;

  std::atomic<std::uint64_t> consumed{0};
  std::atomic<std::uint64_t> sum{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&q, p] {
      for (std::uint64_t i = 0; i < kPerProducer;) {
        if (q.try_push(static_cast<std::uint64_t>(p) * kPerProducer + i)) ++i;
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      while (consumed.load() < kProducers * kPerProducer) {
        if (auto v = q.try_pop()) {
          sum.fetch_add(*v);
          consumed.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  const std::uint64_t n = kProducers * kPerProducer;
  EXPECT_EQ(consumed.load(), n);
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

TEST(MpmcQueue, BulkPushPopSingleThread) {
  MpmcQueue<int> q(16);
  std::vector<int> in(20);
  std::iota(in.begin(), in.end(), 0);
  // Bulk push accepts only what fits (16 of 20).
  EXPECT_EQ(q.try_push_n({in.data(), in.size()}), 16u);
  EXPECT_EQ(q.try_push_n({in.data(), in.size()}), 0u);  // Full.
  int out[32];
  // Bulk pop returns what is available, in FIFO order.
  EXPECT_EQ(q.try_pop_n(out, 8), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(out[i], i);
  EXPECT_EQ(q.try_pop_n(out, 32), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(out[i], 8 + i);
  EXPECT_EQ(q.try_pop_n(out, 32), 0u);  // Empty.
  // Recycled slots keep working.
  EXPECT_EQ(q.try_push_n({in.data(), 4}), 4u);
  EXPECT_EQ(q.try_pop_n(out, 32), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(out[i], i);
}

TEST(MpmcQueue, BulkMpmcStressNoLossNoDupFifoPerProducer) {
  // MPMC stress for the bulk ops: every pushed value arrives exactly once,
  // and each consumer observes every producer's values in push order
  // (bulk reservations must not interleave a producer's runs).
  MpmcQueue<std::uint64_t> q(256);
  constexpr std::uint64_t kProducers = 4;
  constexpr std::uint64_t kConsumers = 4;
  constexpr std::uint64_t kPerProducer = 10000;

  std::atomic<std::uint64_t> consumed{0};
  std::atomic<std::uint64_t> sum{0};
  std::atomic<bool> fifo_ok{true};
  std::vector<std::thread> threads;
  for (std::uint64_t p = 0; p < kProducers; ++p) {
    threads.emplace_back([&q, p] {
      std::uint64_t batch[64];
      Pcg32 rng(17, p);
      for (std::uint64_t i = 0; i < kPerProducer;) {
        const std::uint64_t want =
            std::min<std::uint64_t>(1 + rng.bounded(64), kPerProducer - i);
        for (std::uint64_t k = 0; k < want; ++k) {
          batch[k] = (p << 32) | (i + k);
        }
        i += q.try_push_n({batch, want});
      }
    });
  }
  for (std::uint64_t c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      std::uint64_t batch[64];
      std::uint64_t last_seq[kProducers];
      for (auto& s : last_seq) s = ~0ULL;
      while (consumed.load() < kProducers * kPerProducer) {
        const std::size_t got = q.try_pop_n(batch, 64);
        for (std::size_t k = 0; k < got; ++k) {
          const std::uint64_t p = batch[k] >> 32;
          const std::uint64_t seq = batch[k] & 0xffffffff;
          // Each consumer pops at increasing queue positions, so per
          // producer its observed sequence must be strictly increasing.
          if (last_seq[p] != ~0ULL && seq <= last_seq[p]) fifo_ok = false;
          last_seq[p] = seq;
          sum.fetch_add(seq);
        }
        if (got != 0) consumed.fetch_add(got);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_TRUE(fifo_ok.load());
  EXPECT_EQ(consumed.load(), kProducers * kPerProducer);
  // Sum of sequence numbers: producers contribute identical 0..n-1 ranges.
  EXPECT_EQ(sum.load(), kProducers * (kPerProducer * (kPerProducer - 1) / 2));
}

TEST(MpmcQueue, BurstAndSingletonOpsInterleave) {
  // Mixed bulk/singleton producers and consumers share one queue without
  // losing FIFO: one producer alternates try_push / try_push_n, one
  // consumer alternates try_pop / try_pop_n, and the full sequence comes
  // out in order.
  MpmcQueue<std::uint64_t> q(64);
  constexpr std::uint64_t kCount = 30000;
  std::thread producer([&q] {
    std::uint64_t batch[32];
    Pcg32 rng(5);
    for (std::uint64_t i = 0; i < kCount;) {
      if (rng.bounded(2) == 0) {
        if (q.try_push(std::uint64_t{i})) ++i;
      } else {
        const std::uint64_t want =
            std::min<std::uint64_t>(1 + rng.bounded(32), kCount - i);
        for (std::uint64_t k = 0; k < want; ++k) batch[k] = i + k;
        i += q.try_push_n({batch, want});
      }
    }
  });
  std::uint64_t batch[32];
  std::uint64_t expected = 0;
  Pcg32 rng(6);
  while (expected < kCount) {
    if (rng.bounded(2) == 0) {
      if (auto v = q.try_pop()) {
        ASSERT_EQ(*v, expected);
        ++expected;
      }
    } else {
      const std::size_t got = q.try_pop_n(batch, 1 + rng.bounded(32));
      for (std::size_t k = 0; k < got; ++k) {
        ASSERT_EQ(batch[k], expected);
        ++expected;
      }
    }
  }
  producer.join();
  EXPECT_EQ(q.try_pop_n(batch, 32), 0u);
}

TEST(Pcg32, DeterministicForSameSeed) {
  Pcg32 a(42, 7), b(42, 7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Pcg32, DifferentStreamsDiffer) {
  Pcg32 a(42, 1), b(42, 2);
  int same = 0;
  for (int i = 0; i < 1000; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 10);
}

TEST(Pcg32, BoundedStaysInBounds) {
  Pcg32 rng(123);
  for (std::uint32_t bound : {1u, 2u, 3u, 10u, 1000u}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.bounded(bound), bound);
  }
}

TEST(Pcg32, BoundedRoughlyUniform) {
  Pcg32 rng(9);
  constexpr std::uint32_t kBound = 10;
  std::vector<int> counts(kBound, 0);
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++counts[rng.bounded(kBound)];
  for (auto c : counts) {
    EXPECT_GT(c, kDraws / kBound * 0.9);
    EXPECT_LT(c, kDraws / kBound * 1.1);
  }
}

TEST(Pcg32, UniformInUnitInterval) {
  Pcg32 rng(5);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Clock, MonotonicAndAdvances) {
  const auto a = now_ns();
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  const auto b = now_ns();
  EXPECT_GT(b, a);
  EXPECT_GE(b - a, 1'000'000u);
}

TEST(Clock, TscCalibrationSane) {
  const double hz = tsc_hz();
  // Any machine this runs on clocks between 100 MHz and 10 GHz.
  EXPECT_GT(hz, 1e8);
  EXPECT_LT(hz, 1e10);
  const auto c0 = rdtsc();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const auto c1 = rdtsc();
  const double ns = tsc_to_ns(c1 - c0);
  EXPECT_GT(ns, 2e6);
  EXPECT_LT(ns, 1e9);
}

TEST(Clock, SpinUntilReachesDeadline) {
  const auto deadline = now_ns() + 200'000;
  spin_until_ns(deadline);
  EXPECT_GE(now_ns(), deadline);
}

TEST(Histogram, ExactSmallValues) {
  Histogram h;
  for (std::uint64_t v = 0; v < 64; ++v) h.record(v);
  EXPECT_EQ(h.count(), 64u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 63u);
  EXPECT_NEAR(h.mean(), 31.5, 1e-9);
}

TEST(Histogram, QuantilesOrderedAndBounded) {
  Histogram h;
  Pcg32 rng(77);
  for (int i = 0; i < 100000; ++i) h.record(rng.bounded(1'000'000));
  EXPECT_LE(h.p50(), h.p90());
  EXPECT_LE(h.p90(), h.p99());
  EXPECT_LE(h.p99(), h.max());
  // Uniform distribution: p50 should be around 500k within bucket error.
  EXPECT_NEAR(static_cast<double>(h.p50()), 500000.0, 500000.0 * 0.05);
}

TEST(Histogram, RelativePrecisionWithinFivePercent) {
  Histogram h;
  for (std::uint64_t v : {100ull, 10'000ull, 1'000'000ull, 123'456'789ull}) {
    h.reset();
    h.record(v);
    const auto q = h.quantile(1.0);
    EXPECT_GE(q, v);
    EXPECT_LE(static_cast<double>(q), static_cast<double>(v) * 1.05);
  }
}

TEST(Histogram, MergeCombinesCounts) {
  Histogram a, b;
  a.record(10);
  a.record(20);
  b.record(1000);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.min(), 10u);
  EXPECT_EQ(a.max(), 1000u);
}

TEST(Histogram, CdfIsMonotone) {
  Histogram h;
  Pcg32 rng(3);
  for (int i = 0; i < 10000; ++i) h.record(rng.bounded(100000));
  const auto cdf = h.cdf();
  ASSERT_FALSE(cdf.empty());
  double prev = 0.0;
  std::uint64_t prev_v = 0;
  for (const auto& [v, f] : cdf) {
    EXPECT_GE(v, prev_v);
    EXPECT_GE(f, prev);
    prev = f;
    prev_v = v;
  }
  EXPECT_NEAR(cdf.back().second, 1.0, 1e-12);
}

TEST(RateLimiter, NeverExceedsConfiguredRateAndPacesDown) {
  // The limiter's hard guarantee is an upper bound on rate; the lower
  // bound depends on scheduler noise (this suite runs on a shared, often
  // single-core host), so only sanity-check it loosely.
  RateLimiter rl(200000.0);  // 200 kpps -> 5 us gap.
  const auto t0 = now_ns();
  constexpr int kPackets = 2000;
  for (int i = 0; i < kPackets; ++i) rl.wait();
  const double dt = static_cast<double>(now_ns() - t0) * 1e-9;
  const double rate = kPackets / dt;
  EXPECT_LT(rate, 250000.0);
}

TEST(RateLimiter, UnlimitedDoesNotBlock) {
  RateLimiter rl(0.0);
  const auto t0 = now_ns();
  for (int i = 0; i < 100000; ++i) rl.wait();
  EXPECT_LT(now_ns() - t0, 100'000'000u);  // Far less than 1 ms/packet.
}

TEST(Meter, CountsAndRates) {
  Meter m;
  MeterSampler sampler(m);
  m.add(100, 6400);
  EXPECT_EQ(m.packets(), 100u);
  EXPECT_EQ(m.bytes(), 6400u);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_GT(sampler.pps(), 0.0);
  EXPECT_GT(sampler.gbps(), 0.0);
}

TEST(Worker, RunsAndStops) {
  std::atomic<int> iterations{0};
  Worker w("test", [&] {
    iterations.fetch_add(1);
    return true;
  });
  while (iterations.load() < 100) std::this_thread::yield();
  w.stop();
  const int at_stop = iterations.load();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_EQ(iterations.load(), at_stop);
}

TEST(Worker, IdleBackoffStillPolls) {
  std::atomic<int> polls{0};
  Worker w("idle", [&] {
    polls.fetch_add(1);
    return false;  // Always idle.
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  w.stop();
  EXPECT_GT(polls.load(), 10);
}

}  // namespace
}  // namespace sfc::rt
