// Shard-affine state tests: handoff-ring mesh semantics, seqlock
// occupancy readers, cross-partition bursts across real threads (the
// TSan/ASan target), a differential check pinning the lock-free shard
// apply byte-identical to the locked-oracle path over randomized log
// sequences, the shard-affine transaction fast path, and packet-pool
// magazine conservation.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "core/stores.hpp"
#include "packet/packet_pool.hpp"
#include "runtime/rng.hpp"
#include "runtime/worker.hpp"
#include "state/handoff_ring.hpp"
#include "state/shard_map.hpp"

namespace sfc::ftc {
namespace {

ChainConfig test_cfg() {
  ChainConfig cfg;
  cfg.num_partitions = 16;
  cfg.history_capacity = 4096;
  return cfg;
}

/// A key in partition @p p of @p store (small keys scan quickly).
state::Key key_in_partition(const state::StateStore& store, std::size_t p,
                            std::size_t nth = 0) {
  std::size_t seen = 0;
  for (state::Key k = 0; k < 100'000; ++k) {
    if (store.partition_of(k) == p && seen++ == nth) return k;
  }
  ADD_FAILURE() << "no key found for partition " << p;
  return 0;
}

// --- HandoffMesh ----------------------------------------------------------

TEST(HandoffMesh, FifoPerCellAndCapacityReject) {
  // Rings round the requested capacity up to a power-of-two minus one, so
  // probe the effective capacity via can_push instead of hard-coding it.
  state::HandoffMesh<int> mesh(/*producers=*/2, /*owners=*/1, /*capacity=*/4);
  int admitted = 0;
  while (mesh.can_push(0, 0)) {
    ASSERT_TRUE(mesh.push(0, 0, int{admitted}));
    ASSERT_LT(++admitted, 1024);  // capacity must be bounded
  }
  EXPECT_GE(admitted, 4);  // at least the requested capacity
  EXPECT_FALSE(mesh.push(0, 0, 9999));
  EXPECT_EQ(mesh.full_rejects(), 1u);
  // The other producer's ring is independent of the full one.
  EXPECT_TRUE(mesh.can_push(1, 0));
  EXPECT_TRUE(mesh.push(1, 0, -1));
  EXPECT_EQ(mesh.pushes(), static_cast<std::uint64_t>(admitted) + 1);
  EXPECT_GE(mesh.depth_high_water(), static_cast<std::uint64_t>(admitted));
  EXPECT_TRUE(mesh.pending(0));

  std::vector<int> order;
  const std::size_t n = mesh.drain(0, [&](int& v) { order.push_back(v); });
  EXPECT_EQ(n, static_cast<std::size_t>(admitted) + 1);
  // FIFO within each producer's ring.
  for (int i = 0; i < admitted; ++i) EXPECT_EQ(order[i], i);
  EXPECT_TRUE(mesh.empty());
  EXPECT_FALSE(mesh.pending(0));
  // The rejected entry frees up after the drain.
  EXPECT_TRUE(mesh.can_push(0, 0));
}

// --- Seqlock occupancy readers -------------------------------------------

TEST(ShardStore, OccupancyReaderNeverBlocksUnderOwnerChurn) {
  state::StateStore store(16);
  store.enable_shard_affine();
  const state::Key k0 = key_in_partition(store, 0, 0);
  const state::Key k1 = key_in_partition(store, 0, 1);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> reads{0};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const auto snap = store.occupancy(0);
      // Snapshot consistency: the high-water can never trail the count.
      EXPECT_LE(snap.keys, snap.keys_hw);
      reads.fetch_add(1, std::memory_order_relaxed);
    }
  });

  // Owner thread: insert/erase churn inside seqlock write sections. The
  // occasional yield gives the reader even-version windows to land in.
  for (int i = 0; i < 20'000; ++i) {
    store.owner_write_begin(1);
    store.put_owner(k0, state::Bytes::of<std::uint64_t>(i));
    if ((i & 1) != 0) {
      store.put_owner(k1, state::Bytes::of<std::uint64_t>(i));
      store.erase_owner(k1);
    }
    store.owner_write_end(1);
    if ((i & 255) == 0) std::this_thread::yield();
  }
  stop.store(true, std::memory_order_release);
  reader.join();
  // The reader completed snapshots while the writer churned — it can spin
  // across a write section but never wedges.
  EXPECT_GE(reads.load(), 1u);
  const auto snap = store.occupancy(0);
  EXPECT_EQ(snap.keys, 1u);
  EXPECT_EQ(snap.keys_hw, 2u);
  EXPECT_EQ(store.keys_high_water(), 2u);
}

// --- Cross-partition bursts across real threads (TSan target) -------------

/// Owner-side drain helper: pops the mesh and resolves deferred entries
/// (the same loop FtcNode::drain_handoff runs at burst boundaries).
std::size_t drain_owner(StateHandoffMesh& mesh, std::size_t owner,
                        std::vector<StateHandoff>& deferred) {
  mesh.drain(owner, [&](StateHandoff& h) { deferred.push_back(std::move(h)); });
  std::size_t resolved = 0;
  bool progress = true;
  while (progress && !deferred.empty()) {
    progress = false;
    std::size_t kept = 0;
    for (std::size_t i = 0; i < deferred.size(); ++i) {
      if (deferred[i].applier->apply_handoff(deferred[i])) {
        ++resolved;
        progress = true;
      } else {
        deferred[kept++] = std::move(deferred[i]);
      }
    }
    deferred.resize(kept);
  }
  return resolved;
}

TEST(ShardApplier, CrossPartitionBurstsAcrossThreads) {
  const auto cfg = test_cfg();
  InOrderApplier a(0, cfg);
  state::ShardMap map(16, 2);
  StateHandoffMesh mesh(/*producers=*/3, /*owners=*/2, /*capacity=*/512);
  a.enable_shard_affine(&map, &mesh);

  // Each of 2 threads offers logs over BOTH workers' partitions: every log
  // spans one owned and one foreign partition, so every offer exercises
  // the handoff path while the opposite thread drains concurrently.
  constexpr int kLogs = 2'000;
  std::atomic<std::uint64_t> held{0};
  auto worker = [&](std::uint32_t self) {
    rt::set_current_shard(self);
    std::vector<StateHandoff> deferred;
    // Thread `self` is the sequencer for partitions {self, self+2}: it
    // alone assigns their seqs, so per-partition order holds by
    // construction while the two threads interleave freely.
    const std::size_t mine = self;          // owned by self
    const std::size_t theirs = self + 2;    // owned by the other worker
    const state::Key km = key_in_partition(a.store(), mine);
    const state::Key kt = key_in_partition(a.store(), theirs);
    for (int i = 1; i <= kLogs;) {
      PiggybackLog log;
      log.mbox = 0;
      log.dep.mask = (1ULL << mine) | (1ULL << theirs);
      log.dep.seq[mine] = static_cast<std::uint64_t>(i);
      log.dep.seq[theirs] = static_cast<std::uint64_t>(i);
      log.writes.push_back({km, state::Bytes::of<std::uint64_t>(i), false});
      log.writes.push_back({kt, state::Bytes::of<std::uint64_t>(i), false});
      const auto r = a.offer(log);
      if (r == InOrderApplier::Offer::kApplied) {
        ++i;
      } else {
        // Ring transiently full: drain our own side and retry.
        held.fetch_add(1, std::memory_order_relaxed);
      }
      drain_owner(mesh, self, deferred);
    }
    // Drain until the opposite thread's traffic stops arriving.
    for (int spin = 0; spin < 10'000; ++spin) {
      drain_owner(mesh, self, deferred);
      if (mesh.empty() && deferred.empty()) break;
      std::this_thread::yield();
    }
  };
  std::thread t0(worker, 0);
  std::thread t1(worker, 1);
  t0.join();
  t1.join();
  // Everything admitted must have landed.
  std::vector<StateHandoff> leftovers;
  drain_owner(mesh, 0, leftovers);
  drain_owner(mesh, 1, leftovers);
  EXPECT_TRUE(mesh.empty());
  EXPECT_TRUE(leftovers.empty());
  const auto max = a.max();
  for (std::size_t p = 0; p < 4; ++p) {
    EXPECT_EQ(max.seq[p], static_cast<std::uint64_t>(kLogs)) << "p=" << p;
  }
  for (std::size_t p = 0; p < 4; ++p) {
    const auto v = a.store().get(key_in_partition(a.store(), p));
    ASSERT_TRUE(v.has_value()) << "p=" << p;
    EXPECT_EQ(v->as<std::uint64_t>(), static_cast<std::uint64_t>(kLogs));
  }
}

// --- Differential: shard apply == locked oracle ---------------------------

TEST(ShardApplier, DifferentialMatchesLockedOracle) {
  const auto cfg = test_cfg();
  InOrderApplier oracle(0, cfg);  // Locked MAX-mutex path.
  InOrderApplier shard(0, cfg);
  state::ShardMap map(16, 2);
  StateHandoffMesh mesh(3, 2, 512);
  shard.enable_shard_affine(&map, &mesh);

  rt::Pcg32 rng(0xd1ffe7);
  std::array<std::uint64_t, 16> next_seq{};
  std::vector<state::Key> keys;
  for (std::size_t p = 0; p < 16; ++p) {
    keys.push_back(key_in_partition(shard.store(), p));
  }

  // Randomized valid log stream: each log touches 1-3 random partitions
  // (advancing their seqs), writes or erases a key per touched partition.
  std::vector<PiggybackLog> logs;
  for (int i = 0; i < 1'500; ++i) {
    PiggybackLog log;
    log.mbox = 0;
    const int touches = 1 + static_cast<int>(rng.bounded(3));
    for (int t = 0; t < touches; ++t) {
      const std::size_t p = rng.bounded(16);
      if (log.dep.touches(p)) continue;
      log.dep.mask |= 1ULL << p;
      log.dep.seq[p] = ++next_seq[p];
      const bool erase = rng.bounded(8) == 0;
      log.writes.push_back(
          {keys[p], state::Bytes::of<std::uint64_t>(rng.next64()), erase});
    }
    logs.push_back(std::move(log));
  }

  // Feed both sides the same stream with light local reordering plus
  // duplicate re-offers; the shard side alternates the offering "worker"
  // and drains both owners as it goes.
  std::vector<StateHandoff> d0;
  std::vector<StateHandoff> d1;
  std::vector<const PiggybackLog*> window;
  auto feed = [&](const PiggybackLog& log) {
    // Oracle: retry held logs immediately in order.
    const auto ro = oracle.offer(log);
    // Shard: offered from an alternating shard identity (and sometimes
    // from "control", the no-shard identity).
    const std::uint32_t who = rng.bounded(3);
    rt::set_current_shard(who == 2 ? rt::kNoShard : who);
    auto rs = shard.offer(log);
    if (rs == InOrderApplier::Offer::kHeld) {
      // Ring full or gap: drain and retry until admitted.
      for (int spin = 0; spin < 1'000; ++spin) {
        drain_owner(mesh, 0, d0);
        drain_owner(mesh, 1, d1);
        rs = shard.offer(log);
        if (rs != InOrderApplier::Offer::kHeld) break;
      }
    }
    EXPECT_NE(rs, InOrderApplier::Offer::kHeld);
    EXPECT_EQ(ro, InOrderApplier::Offer::kApplied);
    if (rng.bounded(4) == 0) {
      drain_owner(mesh, 0, d0);
      drain_owner(mesh, 1, d1);
    }
    if (rng.bounded(8) == 0) {
      // Duplicate re-offer must be recognized by both sides.
      EXPECT_EQ(oracle.offer(log), InOrderApplier::Offer::kDuplicate);
      EXPECT_EQ(shard.offer(log), InOrderApplier::Offer::kDuplicate);
    }
  };
  for (auto& log : logs) {
    window.push_back(&log);
    if (window.size() < 2 || rng.bounded(2) == 0) continue;
    // Swapping adjacent logs is always valid when their masks are
    // disjoint (the paper's partial order); otherwise keep order.
    if ((window[0]->dep.mask & window[1]->dep.mask) == 0 &&
        rng.bounded(2) == 0) {
      std::swap(window[0], window[1]);
    }
    for (const auto* l : window) feed(*l);
    window.clear();
  }
  for (const auto* l : window) feed(*l);
  drain_owner(mesh, 0, d0);
  drain_owner(mesh, 1, d1);
  ASSERT_TRUE(mesh.empty());
  ASSERT_TRUE(d0.empty() && d1.empty());
  rt::set_current_shard(rt::kNoShard);

  // Byte-identical stores and identical MAX vectors.
  const auto mo = oracle.max();
  const auto ms = shard.max();
  for (std::size_t p = 0; p < 16; ++p) {
    EXPECT_EQ(mo.seq[p], ms.seq[p]) << "p=" << p;
    const auto vo = oracle.store().get(keys[p]);
    const auto vs = shard.store().get(keys[p]);
    ASSERT_EQ(vo.has_value(), vs.has_value()) << "p=" << p;
    if (vo.has_value()) {
      ASSERT_EQ(vo->size(), vs->size()) << "p=" << p;
      EXPECT_EQ(0, std::memcmp(vo->data(), vs->data(), vo->size()))
          << "p=" << p;
    }
  }
  EXPECT_EQ(oracle.store().total_entries(), shard.store().total_entries());
  EXPECT_EQ(oracle.applied_count(), shard.applied_count());
}

// --- Txn fast path --------------------------------------------------------

TEST(ShardTxn, FastPathMatchesLockedAndCountsOwnerMisses) {
  state::StateStore locked_store(16);
  state::TxnContext locked_ctx(locked_store);
  state::StateStore shard_store(16);
  state::TxnContext shard_ctx(shard_store);
  shard_store.enable_shard_affine();
  shard_ctx.enable_shard_affine();
  shard_ctx.reset_owner();

  for (std::uint64_t i = 1; i <= 100; ++i) {
    const state::Key k = i % 7;
    auto rl = state::run_transaction(
        locked_ctx, [&](state::Txn& t) { t.fetch_add(k, i); });
    auto rs = state::run_transaction(
        shard_ctx, [&](state::Txn& t) { t.fetch_add(k, i); });
    EXPECT_EQ(rl.touched_mask, rs.touched_mask);
    for (std::size_t p = 0; p < 16; ++p) {
      EXPECT_EQ(rl.seqs[p], rs.seqs[p]) << "i=" << i << " p=" << p;
    }
  }
  for (state::Key k = 0; k < 7; ++k) {
    const auto vl = locked_store.get(k);
    const auto vs = shard_store.get(k);
    ASSERT_EQ(vl.has_value(), vs.has_value());
    if (vl) {
      EXPECT_EQ(vl->as<std::uint64_t>(), vs->as<std::uint64_t>());
    }
  }
  EXPECT_EQ(shard_ctx.owner_misses(), 0u);

  // A transaction from a foreign thread is correct but counted as a miss.
  std::thread other([&] {
    state::run_transaction(shard_ctx,
                           [](state::Txn& t) { t.fetch_add(3, 1); });
  });
  other.join();
  EXPECT_GE(shard_ctx.owner_misses(), 1u);
}

// --- Packet pool magazines ------------------------------------------------

TEST(PacketPoolMagazines, ConservesCapacityAcrossThreads) {
  constexpr std::size_t kCap = 256;
  pkt::PacketPool pool(kCap);

  // Multi-threaded alloc/free churn: frees land in per-thread magazines.
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&pool, t] {
      rt::Pcg32 rng(0xbeef + t);
      std::vector<pkt::Packet*> held;
      for (int i = 0; i < 20'000; ++i) {
        if (!held.empty() && rng.bounded(2) == 0) {
          pool.free_raw(held.back());
          held.pop_back();
        } else if (pkt::Packet* p = pool.alloc_raw()) {
          EXPECT_TRUE(pool.owns(p));
          held.push_back(p);
        }
      }
      for (pkt::Packet* p : held) pool.free_raw(p);
    });
  }
  for (auto& t : threads) t.join();
  // Quiescent: every packet is back (global list + magazines).
  EXPECT_EQ(pool.available_approx(), kCap);

  // The cold sweep finds packets stranded in other threads' magazines:
  // allocating everything from THIS thread must yield the full capacity.
  std::vector<pkt::Packet*> all;
  while (pkt::Packet* p = pool.alloc_raw()) all.push_back(p);
  EXPECT_EQ(all.size(), kCap);
  EXPECT_GT(pool.alloc_failures(), 0u);  // The final probe hit exhaustion.
  for (pkt::Packet* p : all) pool.free_raw(p);
  EXPECT_EQ(pool.available_approx(), kCap);
}

}  // namespace
}  // namespace sfc::ftc
