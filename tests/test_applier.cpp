// Tests for HeadStore / InOrderApplier / LogHistory: in-order application,
// holds, duplicates, pruning, retransmission bodies, failover transfer.
#include <gtest/gtest.h>

#include <thread>

#include "core/stores.hpp"

namespace sfc::ftc {
namespace {

ChainConfig test_cfg() {
  ChainConfig cfg;
  cfg.num_partitions = 16;
  cfg.history_capacity = 128;
  return cfg;
}

PiggybackLog log_for(state::StateStore& store, state::Key key,
                     std::uint64_t seq, std::uint64_t value) {
  PiggybackLog log;
  log.mbox = 0;
  const auto p = store.partition_of(key);
  log.dep.mask = 1ULL << p;
  log.dep.seq[p] = seq;
  log.writes.push_back({key, state::Bytes::of(value), false});
  return log;
}

TEST(InOrderApplier, AppliesInOrder) {
  const auto cfg = test_cfg();
  InOrderApplier a(0, cfg);
  const state::Key k = 7;
  EXPECT_EQ(a.offer(log_for(a.store(), k, 1, 10)), InOrderApplier::Offer::kApplied);
  EXPECT_EQ(a.offer(log_for(a.store(), k, 2, 20)), InOrderApplier::Offer::kApplied);
  EXPECT_EQ(a.store().get(k)->as<std::uint64_t>(), 20u);
  EXPECT_EQ(a.applied_count(), 2u);
}

TEST(InOrderApplier, HoldsFutureAppliesAfterGapFilled) {
  const auto cfg = test_cfg();
  InOrderApplier a(0, cfg);
  const state::Key k = 7;
  const auto second = log_for(a.store(), k, 2, 20);
  const auto first = log_for(a.store(), k, 1, 10);
  EXPECT_EQ(a.offer(second), InOrderApplier::Offer::kHeld);
  EXPECT_FALSE(a.store().get(k).has_value());
  EXPECT_EQ(a.offer(first), InOrderApplier::Offer::kApplied);
  EXPECT_EQ(a.offer(second), InOrderApplier::Offer::kApplied);
  EXPECT_EQ(a.store().get(k)->as<std::uint64_t>(), 20u);
}

TEST(InOrderApplier, DuplicateDetected) {
  const auto cfg = test_cfg();
  InOrderApplier a(0, cfg);
  const state::Key k = 7;
  const auto first = log_for(a.store(), k, 1, 10);
  EXPECT_EQ(a.offer(first), InOrderApplier::Offer::kApplied);
  EXPECT_EQ(a.offer(first), InOrderApplier::Offer::kDuplicate);
  EXPECT_EQ(a.applied_count(), 1u);
}

TEST(InOrderApplier, DisjointPartitionsApplyInAnyOrder) {
  const auto cfg = test_cfg();
  InOrderApplier a(0, cfg);
  state::Key k1 = 0, k2 = 1;
  while (a.store().partition_of(k1) == a.store().partition_of(k2)) ++k2;
  const auto la = log_for(a.store(), k1, 1, 111);
  const auto lb = log_for(a.store(), k2, 1, 222);
  EXPECT_EQ(a.offer(lb), InOrderApplier::Offer::kApplied);
  EXPECT_EQ(a.offer(la), InOrderApplier::Offer::kApplied);
  EXPECT_EQ(a.store().get(k1)->as<std::uint64_t>(), 111u);
  EXPECT_EQ(a.store().get(k2)->as<std::uint64_t>(), 222u);
}

TEST(InOrderApplier, MaxTracksAppliedLogs) {
  const auto cfg = test_cfg();
  InOrderApplier a(0, cfg);
  const state::Key k = 3;
  const auto p = a.store().partition_of(k);
  a.offer(log_for(a.store(), k, 1, 1));
  a.offer(log_for(a.store(), k, 2, 2));
  EXPECT_EQ(a.max().seq[p], 2u);
}

TEST(InOrderApplier, ConcurrentDisjointAppliesAllLand) {
  const auto cfg = test_cfg();
  InOrderApplier a(0, cfg);
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 2000;

  // Pick one key per thread, all in distinct partitions.
  std::vector<state::Key> keys;
  for (state::Key k = 0; keys.size() < kThreads; ++k) {
    bool dup = false;
    for (auto e : keys) dup |= a.store().partition_of(e) == a.store().partition_of(k);
    if (!dup) keys.push_back(k);
  }

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::uint64_t s = 1; s <= kPerThread; ++s) {
        ASSERT_EQ(a.offer(log_for(a.store(), keys[t], s, s)),
                  InOrderApplier::Offer::kApplied);
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(a.store().get(keys[t])->as<std::uint64_t>(), kPerThread);
  }
  EXPECT_EQ(a.applied_count(), kThreads * kPerThread);
}

TEST(InOrderApplier, EraseLogsApply) {
  const auto cfg = test_cfg();
  InOrderApplier a(0, cfg);
  const state::Key k = 5;
  a.offer(log_for(a.store(), k, 1, 10));
  PiggybackLog erase_log;
  erase_log.mbox = 0;
  const auto p = a.store().partition_of(k);
  erase_log.dep.mask = 1ULL << p;
  erase_log.dep.seq[p] = 2;
  erase_log.writes.push_back({k, state::Bytes{}, true});
  EXPECT_EQ(a.offer(erase_log), InOrderApplier::Offer::kApplied);
  EXPECT_FALSE(a.store().get(k).has_value());
}

TEST(LogHistory, RecordsAndServesRetransmissions) {
  LogHistory h(10);
  state::StateStore probe(16);
  for (std::uint64_t s = 1; s <= 5; ++s) h.record(log_for(probe, 7, s, s));
  EXPECT_EQ(h.size(), 5u);

  MaxVector have;
  have.seq[probe.partition_of(7)] = 3;
  const auto missing = h.logs_after(have);
  ASSERT_EQ(missing.size(), 2u);
  EXPECT_EQ(missing[0].dep.seq[probe.partition_of(7)], 4u);
  EXPECT_EQ(missing[1].dep.seq[probe.partition_of(7)], 5u);
}

TEST(LogHistory, PruneDropsCoveredPrefix) {
  LogHistory h(10);
  state::StateStore probe(16);
  for (std::uint64_t s = 1; s <= 5; ++s) h.record(log_for(probe, 7, s, s));
  MaxVector commit;
  commit.seq[probe.partition_of(7)] = 3;
  h.prune(commit);
  EXPECT_EQ(h.size(), 2u);
}

TEST(LogHistory, CapacityBounded) {
  LogHistory h(4);
  state::StateStore probe(16);
  for (std::uint64_t s = 1; s <= 100; ++s) h.record(log_for(probe, 7, s, s));
  EXPECT_EQ(h.size(), 4u);
}

TEST(ApplierTransfer, SerializeDeserializeRestoresStoreAndMax) {
  const auto cfg = test_cfg();
  InOrderApplier src(0, cfg);
  // Five keys in distinct partitions, each with its own sequence run.
  std::vector<state::Key> keys;
  for (state::Key k = 0; keys.size() < 5; ++k) {
    bool dup = false;
    for (auto e : keys) {
      dup |= src.store().partition_of(e) == src.store().partition_of(k);
    }
    if (!dup) keys.push_back(k);
  }
  for (std::uint64_t s = 1; s <= 10; ++s) {
    for (state::Key k : keys) {
      ASSERT_EQ(src.offer(log_for(src.store(), k, s, s * 10 + k)),
                InOrderApplier::Offer::kApplied);
    }
  }
  std::vector<std::uint8_t> blob;
  src.serialize(blob);

  InOrderApplier dst(0, cfg);
  ASSERT_TRUE(dst.deserialize(blob));
  EXPECT_EQ(dst.max(), src.max());
  for (state::Key k : keys) {
    ASSERT_TRUE(dst.store().get(k).has_value());
    EXPECT_EQ(dst.store().get(k)->as<std::uint64_t>(), 100 + k);
  }
}

TEST(HeadTransfer, HeadRestoresFromApplierBlob) {
  // Paper §5.2: a failed head is restored FROM its successor's applier:
  // store, MAX (as the new dependency vector), and the log history.
  const auto cfg = test_cfg();
  InOrderApplier successor(0, cfg);
  const state::Key k = 9;
  const auto p = successor.store().partition_of(k);
  for (std::uint64_t s = 1; s <= 3; ++s) {
    successor.offer(log_for(successor.store(), k, s, s * 100));
  }
  std::vector<std::uint8_t> blob;
  successor.serialize(blob);

  HeadStore head(0, cfg);
  ASSERT_TRUE(head.deserialize(blob));
  EXPECT_EQ(head.store().get(k)->as<std::uint64_t>(), 300u);

  // The restored dependency vector continues the sequence: the next
  // transaction touching partition p must get seq 4.
  auto record = state::run_transaction(head.txn_ctx(), [&](state::Txn& t) {
    t.write(k, state::Bytes::of<std::uint64_t>(400));
  });
  EXPECT_EQ(record.seqs[p], 4u);
}

TEST(HeadStore, MakeLogRecordsHistory) {
  const auto cfg = test_cfg();
  HeadStore head(3, cfg);
  auto record = state::run_transaction(head.txn_ctx(), [&](state::Txn& t) {
    t.write(1, state::Bytes::of<int>(5));
  });
  auto log = head.make_log(std::move(record));
  EXPECT_EQ(log.mbox, 3u);
  EXPECT_EQ(log.writes.size(), 1u);
  EXPECT_EQ(head.history().size(), 1u);

  // Commit covering the log prunes it.
  MaxVector commit;
  commit.advance(log.dep);
  head.prune(commit);
  EXPECT_EQ(head.history().size(), 0u);
}

TEST(HeadStore, ReadOnlyTxnProducesNoLog) {
  const auto cfg = test_cfg();
  HeadStore head(0, cfg);
  auto record = state::run_transaction(head.txn_ctx(), [&](state::Txn& t) {
    (void)t.read(1);
  });
  EXPECT_TRUE(record.read_only());
}

}  // namespace
}  // namespace sfc::ftc
