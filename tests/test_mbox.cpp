// Unit tests for the middleboxes of Table 1 (plus the LoadBalancer
// extension), run directly against the transactional state API.
#include <gtest/gtest.h>

#include "mbox/firewall.hpp"
#include "mbox/gen.hpp"
#include "mbox/load_balancer.hpp"
#include "mbox/monitor.hpp"
#include "mbox/nat.hpp"
#include "packet/packet_io.hpp"

namespace sfc::mbox {
namespace {

struct Harness {
  state::StateStore store{16};
  state::TxnContext ctx{store};
  pkt::Packet packet;

  /// Runs one packet through @p mbox; returns verdict and applies any
  /// deferred rewrite like the chain runtime does.
  Verdict run(Middlebox& mbox, const pkt::FlowKey& flow,
              std::uint32_t thread_id = 0, std::size_t frame = 128) {
    if (flow.protocol == pkt::Ipv4Header::kProtoTcp) {
      pkt::PacketBuilder(packet).tcp(flow, frame);
    } else {
      pkt::PacketBuilder(packet).udp(flow, frame);
    }
    auto parsed = pkt::parse_packet(packet);
    Verdict verdict = Verdict::kForward;
    ProcessContext pctx;
    pctx.thread_id = thread_id;
    pctx.num_threads = 8;
    if (mbox.stateless()) {
      verdict = mbox.process_stateless(packet, *parsed, pctx);
    } else {
      state::run_transaction(ctx, [&](state::Txn& txn) {
        pctx.deferred_rewrite.reset();
        verdict = mbox.process(txn, packet, *parsed, pctx);
      });
    }
    if (pctx.deferred_rewrite) pkt::rewrite_flow(*parsed, *pctx.deferred_rewrite);
    return verdict;
  }

  pkt::FlowKey parsed_flow() {
    auto parsed = pkt::parse_packet(packet);
    return parsed->flow;
  }
};

pkt::FlowKey internal_flow(std::uint16_t port = 5555) {
  return pkt::FlowKey{0x0a000001, 0x08080808, port, 443,
                      pkt::Ipv4Header::kProtoUdp};
}

TEST(MonitorMbox, CountsPerThreadGroup) {
  Harness h;
  Monitor monitor(2);  // Threads {0,1} share, {2,3} share, ...
  h.run(monitor, internal_flow(), /*thread_id=*/0);
  h.run(monitor, internal_flow(), /*thread_id=*/1);
  h.run(monitor, internal_flow(), /*thread_id=*/2);
  EXPECT_EQ(h.store.get(monitor.counter_key(0))->as<std::uint64_t>(), 2u);
  EXPECT_EQ(h.store.get(monitor.counter_key(2))->as<std::uint64_t>(), 1u);
  EXPECT_EQ(monitor.counter_key(0), monitor.counter_key(1));
  EXPECT_NE(monitor.counter_key(0), monitor.counter_key(2));
}

TEST(MonitorMbox, PerFlowMode) {
  Harness h;
  Monitor monitor(1, Monitor::Mode::kPerFlow);
  const auto f1 = internal_flow(1000);
  const auto f2 = internal_flow(2000);
  h.run(monitor, f1);
  h.run(monitor, f1);
  h.run(monitor, f2);
  EXPECT_EQ(h.store.get(f1.hash())->as<std::uint64_t>(), 2u);
  EXPECT_EQ(h.store.get(f2.hash())->as<std::uint64_t>(), 1u);
}

TEST(GenMbox, WritesConfiguredStateSize) {
  Harness h;
  Gen gen(128);
  h.run(gen, internal_flow(), /*thread_id=*/3);
  const auto v = h.store.get(state::key_of_name("gen-state") + 3);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->size(), 128u);
}

TEST(MazuNatMbox, OutboundCreatesBidirectionalMapping) {
  Harness h;
  MazuNat nat;
  const auto flow = internal_flow();
  EXPECT_EQ(h.run(nat, flow), Verdict::kForward);

  // Source rewritten to the external IP.
  const auto rewritten = h.parsed_flow();
  EXPECT_EQ(rewritten.src_ip, nat.config().external_ip);
  EXPECT_EQ(rewritten.dst_ip, flow.dst_ip);

  // The return direction maps back to the internal endpoint.
  const auto reverse = rewritten.reversed();
  const auto entry = h.store.get(reverse.hash());
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->as<NatEntry>().rewritten.dst_ip, flow.src_ip);
}

TEST(MazuNatMbox, MappingIsStableAcrossPackets) {
  Harness h;
  MazuNat nat;
  const auto flow = internal_flow();
  h.run(nat, flow);
  const auto first = h.parsed_flow();
  h.run(nat, flow);
  EXPECT_EQ(h.parsed_flow(), first);  // Connection persistence.
  // Only one port consumed.
  EXPECT_EQ(h.store.get(MazuNat::port_counter_key())->as<std::uint64_t>(), 1u);
}

TEST(MazuNatMbox, DistinctFlowsGetDistinctPorts) {
  Harness h;
  MazuNat nat;
  h.run(nat, internal_flow(1000));
  const auto p1 = h.parsed_flow().src_port;
  h.run(nat, internal_flow(2000));
  const auto p2 = h.parsed_flow().src_port;
  EXPECT_NE(p1, p2);
}

TEST(MazuNatMbox, UnsolicitedInboundDropped) {
  Harness h;
  MazuNat nat;
  pkt::FlowKey inbound{0x08080808, nat.config().external_ip, 443, 12345,
                       pkt::Ipv4Header::kProtoUdp};
  EXPECT_EQ(h.run(nat, inbound), Verdict::kDrop);
}

TEST(SimpleNatMbox, RewritesAndRemembers) {
  Harness h;
  SimpleNat nat;
  const auto flow = internal_flow();
  EXPECT_EQ(h.run(nat, flow), Verdict::kForward);
  const auto first = h.parsed_flow();
  EXPECT_NE(first.src_ip, flow.src_ip);
  h.run(nat, flow);
  EXPECT_EQ(h.parsed_flow(), first);
}

TEST(FirewallMbox, FirstMatchWins) {
  std::vector<FirewallRule> rules;
  // Deny 10.0.0.0/8 to port 443; allow everything else from 10/8.
  rules.push_back(FirewallRule{0x0a000000, 0xff000000, 0, 0, 443, 0, false});
  rules.push_back(FirewallRule{0x0a000000, 0xff000000, 0, 0, 0, 0, true});
  Firewall fw(std::move(rules), /*default_allow=*/false);
  EXPECT_TRUE(fw.stateless());

  Harness h;
  EXPECT_EQ(h.run(fw, internal_flow()), Verdict::kDrop);  // dst 443.
  auto ok = internal_flow();
  ok.dst_port = 80;
  EXPECT_EQ(h.run(fw, ok), Verdict::kForward);
  pkt::FlowKey other{0x0b000001, 0x08080808, 1, 80, pkt::Ipv4Header::kProtoUdp};
  EXPECT_EQ(h.run(fw, other), Verdict::kDrop);  // Default deny.
}

TEST(FirewallMbox, ProtocolWildcard) {
  std::vector<FirewallRule> rules;
  rules.push_back(FirewallRule{0, 0, 0, 0, 0, pkt::Ipv4Header::kProtoTcp,
                               /*allow=*/false});
  Firewall fw(std::move(rules), true);
  Harness h;
  auto tcp = internal_flow();
  tcp.protocol = pkt::Ipv4Header::kProtoTcp;
  EXPECT_EQ(h.run(fw, tcp), Verdict::kDrop);
  EXPECT_EQ(h.run(fw, internal_flow()), Verdict::kForward);  // UDP passes.
}

TEST(LoadBalancerMbox, RoundRobinWithPersistence) {
  Harness h;
  LoadBalancer lb({0xC0A80001, 0xC0A80002, 0xC0A80003});
  std::vector<std::uint32_t> backends;
  for (std::uint16_t i = 0; i < 3; ++i) {
    h.run(lb, internal_flow(1000 + i));
    backends.push_back(h.parsed_flow().dst_ip);
  }
  // Three flows spread across three distinct backends.
  std::sort(backends.begin(), backends.end());
  EXPECT_EQ(std::unique(backends.begin(), backends.end()), backends.end());

  // Existing flow keeps its backend.
  h.run(lb, internal_flow(1000));
  const auto again = h.parsed_flow().dst_ip;
  h.run(lb, internal_flow(1000));
  EXPECT_EQ(h.parsed_flow().dst_ip, again);
}

TEST(LoadBalancerMbox, NoBackendsDrops) {
  Harness h;
  LoadBalancer lb({});
  EXPECT_EQ(h.run(lb, internal_flow()), Verdict::kDrop);
}

}  // namespace
}  // namespace sfc::mbox
