// Tests for the windowed reliable transport (net::ReliableChannel):
// lossless in-order delivery under loss/reorder at burst granularity,
// adaptive RTO (Jacobson/Karels convergence, Karn's rule, no spurious
// retransmits), sequence wraparound, and the chain-level integration
// (FTC over reliable segments loses nothing end to end).
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "core/chain.hpp"
#include "mbox/monitor.hpp"
#include "net/reliable.hpp"
#include "packet/packet_io.hpp"
#include "runtime/clock.hpp"
#include "tgen/traffic.hpp"

namespace sfc::net {
namespace {

pkt::Packet* make_packet(pkt::PacketPool& pool, std::uint64_t id) {
  pkt::Packet* p = pool.alloc_raw();
  if (p != nullptr) {
    pkt::PacketBuilder(*p).udp(
        pkt::FlowKey{1, 2, 3, 4, pkt::Ipv4Header::kProtoUdp}, 64);
    p->anno().packet_id = id;
  }
  return p;
}

/// Single-threaded echo pump: pushes @p total packets through the channel
/// in bursts of @p burst, draining and verifying in-order delivery as it
/// goes. Returns the ids received, in delivery order.
std::vector<std::uint64_t> pump_through(ReliableChannel& ch,
                                        pkt::PacketPool& pool,
                                        std::uint64_t total,
                                        std::size_t burst,
                                        std::uint64_t budget_ns =
                                            20'000'000'000ull) {
  std::vector<std::uint64_t> got;
  got.reserve(total);
  std::uint64_t next_id = 0;
  pkt::Packet* tx[256];
  pkt::Packet* rx[256];
  const std::uint64_t deadline = rt::now_ns() + budget_ns;
  while (got.size() < total && rt::now_ns() < deadline) {
    std::size_t n = 0;
    while (n < burst && next_id < total) {
      pkt::Packet* p = make_packet(pool, next_id);
      if (p == nullptr) break;
      tx[n++] = p;
      ++next_id;
    }
    if (n != 0) {
      const std::size_t accepted = ch.send_burst({tx, n});
      // Window or wire full: hand the tail back and retry next round.
      for (std::size_t i = accepted; i < n; ++i) pool.free_raw(tx[i]);
      next_id -= n - accepted;
    }
    const std::size_t r = ch.poll_burst(rx, 256);
    for (std::size_t i = 0; i < r; ++i) {
      got.push_back(rx[i]->anno().packet_id);
      pool.free_raw(rx[i]);
    }
  }
  return got;
}

/// Pumps the channel until every ack has landed and the window is empty
/// (the final acks are still on the modeled reverse wire when the last
/// data packet is delivered).
bool pump_until_drained(ReliableChannel& ch, pkt::PacketPool& pool,
                        std::uint64_t budget_ns = 5'000'000'000ull) {
  pkt::Packet* rx[64];
  const std::uint64_t deadline = rt::now_ns() + budget_ns;
  while (!ch.drained() && rt::now_ns() < deadline) {
    const std::size_t n = ch.poll_burst(rx, 64);
    for (std::size_t i = 0; i < n; ++i) pool.free_raw(rx[i]);
    std::this_thread::sleep_for(std::chrono::microseconds(20));
  }
  return ch.drained();
}

LinkConfig lossy_wan() {
  LinkConfig cfg;
  cfg.delay_ns = 30'000;
  cfg.loss = 0.05;
  cfg.reorder = 0.1;
  cfg.reorder_extra_ns = 60'000;
  return cfg;
}

TEST(ReliableChannel, LosslessInOrderDeliveryUnderLossAndReorder) {
  pkt::PacketPool pool(512);
  ReliableConfig rcfg;
  rcfg.rto_min_ns = 100'000;
  ReliableChannel ch(pool, lossy_wan(), rcfg);
  constexpr std::uint64_t kPackets = 2000;
  const auto got = pump_through(ch, pool, kPackets, 1);
  ASSERT_EQ(got.size(), kPackets) << "transport lost packets";
  for (std::uint64_t i = 0; i < kPackets; ++i) {
    ASSERT_EQ(got[i], i) << "out-of-order or duplicated delivery at " << i;
  }
  EXPECT_TRUE(pump_until_drained(ch, pool));
  // 5% wire loss over 2000 packets must have exercised retransmission.
  EXPECT_GT(ch.retransmits(), 0u);
  const LinkStats s = ch.stats();
  EXPECT_EQ(s.sent, kPackets);
  EXPECT_EQ(s.delivered, kPackets);
  EXPECT_EQ(s.dropped_loss, 0u);
  EXPECT_GT(ch.wire().stats().dropped_loss, 0u);
}

TEST(ReliableChannel, BurstWindowStressMatchesSingletonSemantics) {
  // Burst 1 and burst 32 must both deliver everything exactly once, in
  // order, at loss=0.05 / reorder=0.1 — and differ from a raw link with
  // the same wire config, which visibly loses packets.
  for (const std::size_t burst : {std::size_t{1}, std::size_t{32}}) {
    pkt::PacketPool pool(512);
    ReliableConfig rcfg;
    rcfg.rto_min_ns = 100'000;
    ReliableChannel ch(pool, lossy_wan(), rcfg);
    constexpr std::uint64_t kPackets = 3000;
    const auto got = pump_through(ch, pool, kPackets, burst);
    ASSERT_EQ(got.size(), kPackets) << "burst=" << burst;
    for (std::uint64_t i = 0; i < kPackets; ++i) {
      ASSERT_EQ(got[i], i) << "burst=" << burst << " index " << i;
    }
  }
  // Raw-link differential: same wire, no transport -> loss is end-to-end.
  pkt::PacketPool pool(512);
  Link raw(pool, lossy_wan());
  std::uint64_t sent = 0;
  std::uint64_t received = 0;
  pkt::Packet* rx[64];
  for (std::uint64_t i = 0; i < 3000; ++i) {
    pkt::Packet* p = make_packet(pool, i);
    if (p == nullptr || !raw.send(p)) {
      if (p != nullptr) pool.free_raw(p);
      continue;
    }
    ++sent;
    while (std::size_t n = raw.poll_burst(rx, 64)) {
      received += n;
      for (std::size_t j = 0; j < n; ++j) pool.free_raw(rx[j]);
    }
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  while (std::size_t n = raw.poll_burst(rx, 64)) {
    received += n;
    for (std::size_t j = 0; j < n; ++j) pool.free_raw(rx[j]);
  }
  EXPECT_LT(received, sent);  // P(zero drops in 3000 at 5%) ~ 10^-67.
}

TEST(ReliableChannel, SequenceWraparoundDeliversInOrder) {
  pkt::PacketPool pool(512);
  ReliableConfig rcfg;
  rcfg.rto_min_ns = 100'000;
  rcfg.initial_seq = 0xFFFFFF9Cu;  // 2^32 - 100: wraps mid-run.
  ReliableChannel ch(pool, lossy_wan(), rcfg);
  constexpr std::uint64_t kPackets = 1500;
  const auto got = pump_through(ch, pool, kPackets, 32);
  ASSERT_EQ(got.size(), kPackets);
  for (std::uint64_t i = 0; i < kPackets; ++i) {
    ASSERT_EQ(got[i], i) << "around-the-wrap delivery broke at " << i;
  }
  EXPECT_TRUE(pump_until_drained(ch, pool));
}

TEST(ReliableChannel, SrttConvergesAfterDelayStepWithoutSpuriousRetransmits) {
  pkt::PacketPool pool(256);
  LinkConfig wire;
  wire.delay_ns = 500'000;  // 0.5 ms one-way -> RTT ~1 ms.
  ReliableConfig rcfg;
  // Floor above any RTT in this test: a 4x delay step must adapt the
  // estimator WITHOUT a single timeout or retransmission firing.
  rcfg.rto_min_ns = 50'000'000;
  ReliableChannel ch(pool, wire, rcfg);

  const auto exchange = [&](std::uint64_t packets) {
    std::uint64_t done = 0;
    std::uint64_t id = 0;
    pkt::Packet* rx[64];
    const std::uint64_t deadline = rt::now_ns() + 30'000'000'000ull;
    while (done < packets && rt::now_ns() < deadline) {
      if (pkt::Packet* p = make_packet(pool, id)) {
        if (ch.send(p)) {
          ++id;
        } else {
          pool.free_raw(p);
        }
      }
      const std::size_t n = ch.poll_burst(rx, 64);
      for (std::size_t i = 0; i < n; ++i) pool.free_raw(rx[i]);
      done += n;
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
    return done;
  };

  ASSERT_GE(exchange(200), 200u);
  const std::uint64_t srtt_before = ch.srtt_ns();
  // SRTT tracks ~RTT = 2 * delay (+ polling slop bounded by the 50 us
  // pacing above plus scheduler noise).
  EXPECT_GE(srtt_before, 1'000'000u);
  EXPECT_LE(srtt_before, 3'000'000u);

  ch.set_delay_ns(2'000'000);  // Step 0.5 ms -> 2 ms one-way (RTT ~4 ms).
  ASSERT_GE(exchange(200), 200u);
  const std::uint64_t srtt_after = ch.srtt_ns();
  EXPECT_GE(srtt_after, 3'500'000u);
  EXPECT_LE(srtt_after, 7'000'000u);
  // Adaptive RTO covers the new RTT.
  EXPECT_GE(ch.rto_ns(), srtt_after);

  // Lossless wire + RTO floor above RTT: any retransmit here is spurious.
  EXPECT_EQ(ch.retransmits(), 0u);
  EXPECT_EQ(ch.timeouts(), 0u);
  EXPECT_EQ(ch.fast_retransmits(), 0u);
}

TEST(ReliableChannel, AdaptiveRtoTracksLinkDelay) {
  // RTO = SRTT + 4*RTTVAR must land within [RTT, 4*RTT] for a steady
  // link — the fig13 acceptance bound, checked at two delays.
  for (const std::uint64_t delay : {200'000ull, 1'000'000ull}) {
    pkt::PacketPool pool(256);
    LinkConfig wire;
    wire.delay_ns = delay;
    ReliableConfig rcfg;
    rcfg.rto_min_ns = 100'000;
    ReliableChannel ch(pool, wire, rcfg);
    const auto got = pump_through(ch, pool, 400, 8);
    ASSERT_EQ(got.size(), 400u);
    const std::uint64_t rtt = 2 * delay;
    EXPECT_GE(ch.rto_ns(), rtt) << "delay=" << delay;
    // The absolute slack absorbs host scheduling noise (sanitizer builds
    // inflate drain latency well past the wire delay at these scales).
    EXPECT_LE(ch.rto_ns(), 4 * rtt + 10'000'000) << "delay=" << delay;
  }
}

TEST(ReliableChannel, ExponentialBackoffOnRepeatedTimeouts) {
  // A wire that eats everything: the head segment times out repeatedly,
  // and each timeout doubles the effective RTO (Karn's rule keeps the
  // retransmitted samples out of the estimator).
  pkt::PacketPool pool(64);
  LinkConfig wire;
  wire.delay_ns = 1000;
  wire.loss = 1.0;
  ReliableConfig rcfg;
  rcfg.rto_min_ns = 200'000;
  rcfg.rto_initial_ns = 200'000;
  ReliableChannel ch(pool, wire, rcfg);
  ASSERT_TRUE(ch.send(make_packet(pool, 0)));
  pkt::Packet* rx[4];
  const std::uint64_t t0 = rt::now_ns();
  std::uint64_t timeouts_seen = 0;
  while (timeouts_seen < 4 && rt::now_ns() < t0 + 10'000'000'000ull) {
    ch.poll_burst(rx, 4);  // Pumps the RTO machinery.
    timeouts_seen = ch.timeouts();
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  ASSERT_GE(timeouts_seen, 4u);
  // 4 timeouts with doubling: 200us + 400us + 800us + 1.6ms >= 3ms total.
  EXPECT_GE(rt::now_ns() - t0, 3'000'000u);
  EXPECT_GE(ch.retransmits(), 4u);
  // The estimator never saw a sample (every segment was retransmitted).
  EXPECT_EQ(ch.srtt_ns(), 0u);
  EXPECT_FALSE(ch.drained());
}

TEST(ReliableChannel, CongestionAvoidanceStillDeliversEverything) {
  pkt::PacketPool pool(512);
  ReliableConfig rcfg;
  rcfg.rto_min_ns = 100'000;
  rcfg.congestion_avoidance = true;
  ReliableChannel ch(pool, lossy_wan(), rcfg);
  constexpr std::uint64_t kPackets = 2000;
  const auto got = pump_through(ch, pool, kPackets, 32);
  ASSERT_EQ(got.size(), kPackets);
  for (std::uint64_t i = 0; i < kPackets; ++i) ASSERT_EQ(got[i], i);
  EXPECT_TRUE(pump_until_drained(ch, pool));
}

TEST(ReliableChannel, ConcurrentSenderReceiverThreads) {
  // The deployment shape: one thread sends bursts, another polls. TSan
  // coverage for the window/estimator locking.
  pkt::PacketPool pool(512);
  LinkConfig wire;
  wire.delay_ns = 10'000;
  wire.loss = 0.02;
  ReliableConfig rcfg;
  rcfg.rto_min_ns = 100'000;
  ReliableChannel ch(pool, wire, rcfg);
  constexpr std::uint64_t kPackets = 4000;

  std::thread sender([&] {
    std::uint64_t id = 0;
    pkt::Packet* tx[32];
    const std::uint64_t deadline = rt::now_ns() + 20'000'000'000ull;
    while (id < kPackets && rt::now_ns() < deadline) {
      std::size_t n = 0;
      while (n < 32 && id < kPackets) {
        pkt::Packet* p = make_packet(pool, id);
        if (p == nullptr) break;
        tx[n++] = p;
        ++id;
      }
      const std::size_t accepted = ch.send_burst({tx, n});
      for (std::size_t i = accepted; i < n; ++i) pool.free_raw(tx[i]);
      id -= n - accepted;
      if (accepted == 0) std::this_thread::yield();
    }
  });

  std::vector<std::uint64_t> got;
  got.reserve(kPackets);
  pkt::Packet* rx[64];
  const std::uint64_t deadline = rt::now_ns() + 20'000'000'000ull;
  while (got.size() < kPackets && rt::now_ns() < deadline) {
    const std::size_t n = ch.poll_burst(rx, 64);
    if (n == 0) {
      std::this_thread::yield();
      continue;
    }
    for (std::size_t i = 0; i < n; ++i) {
      got.push_back(rx[i]->anno().packet_id);
      pool.free_raw(rx[i]);
    }
  }
  sender.join();
  ASSERT_EQ(got.size(), kPackets);
  for (std::uint64_t i = 0; i < kPackets; ++i) ASSERT_EQ(got[i], i);
}

TEST(ReliableChannel, WindowHotLayoutIsCacheLinePadded) {
  using Hot = ReliableChannel::WindowHot;
  static_assert(offsetof(Hot, snd_nxt) == 0);
  static_assert(offsetof(Hot, srtt_ns) == rt::kCacheLineSize);
  static_assert(offsetof(Hot, rcv_nxt) == 2 * rt::kCacheLineSize);
  static_assert(sizeof(Hot) == 3 * rt::kCacheLineSize);
  SUCCEED();
}

}  // namespace
}  // namespace sfc::net

namespace sfc::ftc {
namespace {

ChainRuntime::Spec reliable_chain(std::uint32_t n_mboxes,
                                  net::LinkConfig wire) {
  ChainRuntime::Spec spec;
  spec.mode = ChainMode::kFtc;
  spec.cfg.f = 1;
  spec.cfg.link = wire;
  spec.cfg.transport = TransportMode::kReliable;
  spec.cfg.reliable.rto_min_ns = 100'000;
  for (std::uint32_t i = 0; i < n_mboxes; ++i) {
    spec.mbox_factories.push_back([]() -> std::unique_ptr<mbox::Middlebox> {
      return std::make_unique<mbox::Monitor>(1);
    });
  }
  return spec;
}

TEST(ReliableChain, FtcOverLossyReliableSegmentsLosesNothing) {
  // End-to-end composition: FTC piggyback replication rides reliable
  // segments over a lossy wire. Every generated packet must reach the
  // sink — the transport hides wire loss from the chain entirely.
  net::LinkConfig wire;
  wire.delay_ns = 20'000;
  wire.loss = 0.02;
  ChainRuntime chain(reliable_chain(2, wire));
  chain.start();

  tgen::Workload w;
  tgen::TrafficSource source(chain.pool(), chain.ingress(), w, 20'000.0);
  tgen::TrafficSink sink(chain.pool(), chain.egress());
  sink.start();
  source.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(600));
  source.stop();

  const std::uint64_t deadline = rt::now_ns() + 15'000'000'000ull;
  while (!chain.quiescent() && rt::now_ns() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(chain.quiescent());
  // Let the sink drain the egress queue.
  const std::uint64_t sent = source.packets_sent();
  const std::uint64_t sink_deadline = rt::now_ns() + 5'000'000'000ull;
  while (sink.packets_received() < sent && rt::now_ns() < sink_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  sink.stop();

  ASSERT_GT(sent, 500u);
  EXPECT_EQ(sink.packets_received(), sent);
  // The wire really was lossy; the channels really did repair it.
  std::uint64_t wire_drops = 0;
  for (const auto& sample : chain.registry().snapshot()) {
    if (sample.name == "link.dropped_loss") {
      wire_drops += static_cast<std::uint64_t>(sample.value);
    }
  }
  EXPECT_GT(wire_drops, 0u);
  // Segment channels report a live RTO estimate to the nodes.
  EXPECT_GT(chain.segment(0).rto_ns(), 0u);
  chain.stop();
}

TEST(ReliableChain, SetRingPredClearsNackThrottle) {
  // Regression: last_nack_ns_ entries survived rerouting, so the
  // nack_min_gap gate could swallow the first NACK aimed at a freshly
  // wired replacement. Drive a lossy raw chain until a node has NACKed
  // (throttle state exists), then reroute its predecessor and verify the
  // throttle state is gone.
  ChainRuntime::Spec spec;
  spec.mode = ChainMode::kFtc;
  spec.cfg.f = 1;
  spec.cfg.link.loss = 0.03;
  spec.cfg.link.delay_ns = 1000;
  spec.cfg.retransmit_timeout_ns = 1'000'000;
  spec.cfg.nack_min_gap_ns = 500'000;
  for (int i = 0; i < 3; ++i) {
    spec.mbox_factories.push_back([]() -> std::unique_ptr<mbox::Middlebox> {
      return std::make_unique<mbox::Monitor>(1);
    });
  }
  ChainRuntime chain(spec);
  chain.start();

  tgen::Workload w;
  tgen::TrafficSource source(chain.pool(), chain.ingress(), w, 50'000.0);
  tgen::TrafficSink sink(chain.pool(), chain.egress());
  sink.start();
  source.start();

  FtcNode* nacked = nullptr;
  const std::uint64_t deadline = rt::now_ns() + 15'000'000'000ull;
  while (nacked == nullptr && rt::now_ns() < deadline) {
    for (std::uint32_t pos = 0; pos < chain.ring_size(); ++pos) {
      FtcNode* node = chain.ftc_node(pos);
      if (node != nullptr && node->nack_throttle_entries() != 0) {
        nacked = node;
        break;
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  source.stop();
  ASSERT_NE(nacked, nullptr) << "lossy run produced no NACK throttle state";

  // Reroute: same-pred updates must keep the state...
  const std::size_t before = nacked->nack_throttle_entries();
  ASSERT_GT(before, 0u);
  // (set_ring_pred with an unchanged id is a no-op; simulate an actual
  // predecessor change as wire_replacement does.)
  nacked->set_ring_pred(9999);
  EXPECT_EQ(nacked->nack_throttle_entries(), 0u)
      << "reroute must clear per-store NACK throttle state";

  sink.stop();
  chain.stop();
}

}  // namespace
}  // namespace sfc::ftc
