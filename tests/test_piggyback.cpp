// Tests for dependency vectors and the piggyback wire format.
#include <gtest/gtest.h>

#include "core/dep_vector.hpp"
#include "core/piggyback.hpp"
#include "packet/packet_io.hpp"

namespace sfc::ftc {
namespace {

DepVector make_dep(std::initializer_list<std::pair<std::size_t, std::uint64_t>>
                       entries) {
  DepVector d;
  for (const auto& [p, s] : entries) {
    d.mask |= 1ULL << p;
    d.seq[p] = s;
  }
  return d;
}

TEST(DepVector, TouchesAndEquality) {
  const auto d = make_dep({{0, 1}, {3, 7}});
  EXPECT_TRUE(d.touches(0));
  EXPECT_TRUE(d.touches(3));
  EXPECT_FALSE(d.touches(1));
  auto e = d;
  e.seq[1] = 99;  // Untouched partition: ignored by equality.
  EXPECT_EQ(d, e);
  e.seq[3] = 8;
  EXPECT_NE(d, e);
}

TEST(MaxVector, AdvanceOnlyTouched) {
  MaxVector max;
  max.advance(make_dep({{1, 5}, {2, 3}}));
  EXPECT_EQ(max.seq[1], 5u);
  EXPECT_EQ(max.seq[2], 3u);
  EXPECT_EQ(max.seq[0], 0u);
}

TEST(MaxVector, CoversSemantics) {
  MaxVector max;
  max.seq[1] = 5;
  max.seq[2] = 3;
  EXPECT_TRUE(max.covers(make_dep({{1, 5}})));
  EXPECT_TRUE(max.covers(make_dep({{1, 4}, {2, 3}})));
  EXPECT_FALSE(max.covers(make_dep({{1, 6}})));
  EXPECT_FALSE(max.covers(make_dep({{1, 5}, {3, 1}})));
  EXPECT_TRUE(max.covers(DepVector{}));  // Empty log is always covered.
}

TEST(MaxVector, MergeIsComponentwiseMax) {
  MaxVector a, b;
  a.seq[0] = 5;
  a.seq[1] = 2;
  b.seq[0] = 3;
  b.seq[1] = 7;
  a.merge(b);
  EXPECT_EQ(a.seq[0], 5u);
  EXPECT_EQ(a.seq[1], 7u);
}

TEST(Classify, PaperFigure3Scenario) {
  // The head performs W(1) then R(1),W(3); the replica receives the second
  // log first and must hold it (paper Fig. 3).
  MaxVector max;
  max.seq[0] = 0;  // Partition "1" in the figure, 0-indexed here.
  max.seq[2] = 4;  // Partition "3" — pre-populated like the figure's 4.

  const auto first = make_dep({{0, 1}});           // W(1) -> [1, x, x].
  const auto second = make_dep({{0, 2}, {2, 5}});  // R(1),W(3) -> [2, x, 5].

  EXPECT_EQ(classify(max, second), LogFit::kFuture);   // Held.
  EXPECT_EQ(classify(max, first), LogFit::kApplicable);
  max.advance(first);
  EXPECT_EQ(classify(max, second), LogFit::kApplicable);
  max.advance(second);
  EXPECT_EQ(classify(max, first), LogFit::kDuplicate);
  EXPECT_EQ(classify(max, second), LogFit::kDuplicate);
}

TEST(Classify, DisjointPartitionsOrderIndependent) {
  MaxVector max;
  const auto a = make_dep({{0, 1}});
  const auto b = make_dep({{1, 1}});
  EXPECT_EQ(classify(max, a), LogFit::kApplicable);
  EXPECT_EQ(classify(max, b), LogFit::kApplicable);
  max.advance(b);  // Apply in the "other" order.
  EXPECT_EQ(classify(max, a), LogFit::kApplicable);
}

PiggybackMessage sample_message() {
  PiggybackMessage msg;
  PiggybackLog log1;
  log1.mbox = 2;
  log1.dep = make_dep({{0, 4}, {5, 9}});
  log1.writes.push_back({0x1111, state::Bytes::of<std::uint64_t>(42), false});
  log1.writes.push_back({0x2222, state::Bytes{}, true});
  msg.logs.push_back(log1);

  PiggybackLog log2;
  log2.mbox = 0;
  log2.dep = make_dep({{3, 1}});
  std::vector<std::uint8_t> big(200, 0xcd);
  log2.writes.push_back({0x3333, state::Bytes(big.data(), big.size()), false});
  msg.logs.push_back(log2);

  CommitVector c;
  c.mbox = 1;
  c.max.seq[0] = 17;
  c.max.seq[7] = 3;
  msg.commits.push_back(c);
  return msg;
}

TEST(PiggybackWire, AppendExtractRoundTrip) {
  pkt::Packet p;
  pkt::PacketBuilder(p).udp(
      pkt::FlowKey{1, 2, 3, 4, pkt::Ipv4Header::kProtoUdp}, 256);
  const std::size_t wire = p.size();

  const auto msg = sample_message();
  ASSERT_TRUE(append_message(p, msg, 16));
  EXPECT_GT(p.size(), wire);
  EXPECT_TRUE(has_message(p));

  auto extracted = extract_message(p);
  ASSERT_TRUE(extracted.has_value());
  EXPECT_EQ(p.size(), wire);  // In-place strip restores the wire bytes.
  EXPECT_EQ(extracted->logs, msg.logs);
  ASSERT_EQ(extracted->commits.size(), 1u);
  EXPECT_EQ(extracted->commits[0].mbox, 1u);
  // Commit vectors serialize only num_partitions entries.
  EXPECT_EQ(extracted->commits[0].max.seq[0], 17u);
  EXPECT_EQ(extracted->commits[0].max.seq[7], 3u);
}

TEST(PiggybackWire, EmptyMessageRoundTrip) {
  pkt::Packet p;
  pkt::PacketBuilder(p).udp(
      pkt::FlowKey{1, 2, 3, 4, pkt::Ipv4Header::kProtoUdp}, 128);
  ASSERT_TRUE(append_message(p, PiggybackMessage{}, 16));
  auto extracted = extract_message(p);
  ASSERT_TRUE(extracted.has_value());
  EXPECT_TRUE(extracted->empty());
}

TEST(PiggybackWire, NoMessageDetected) {
  pkt::Packet p;
  pkt::PacketBuilder(p).udp(
      pkt::FlowKey{1, 2, 3, 4, pkt::Ipv4Header::kProtoUdp}, 128);
  EXPECT_FALSE(has_message(p));
  EXPECT_FALSE(extract_message(p).has_value());
  EXPECT_EQ(p.size(), 128u);
}

TEST(PiggybackWire, RejectsWhenTailroomExhausted) {
  pkt::Packet p;
  p.push_back(pkt::Packet::kCapacity - p.headroom() - 50);
  const auto msg = sample_message();
  const std::size_t before = p.size();
  EXPECT_FALSE(append_message(p, msg, 16));
  EXPECT_EQ(p.size(), before);  // Untouched on failure.
}

TEST(PiggybackWire, SerializedSizeMatchesAppend) {
  pkt::Packet p;
  pkt::PacketBuilder(p).udp(
      pkt::FlowKey{1, 2, 3, 4, pkt::Ipv4Header::kProtoUdp}, 128);
  const auto msg = sample_message();
  const std::size_t predicted = serialized_size(msg, 16);
  const std::size_t before = p.size();
  ASSERT_TRUE(append_message(p, msg, 16));
  EXPECT_EQ(p.size() - before, predicted);
}

TEST(PiggybackMessage, SetCommitOverwrites) {
  PiggybackMessage msg;
  MaxVector a, b;
  a.seq[0] = 1;
  b.seq[0] = 9;
  msg.set_commit(4, a);
  msg.set_commit(4, b);
  ASSERT_EQ(msg.commits.size(), 1u);
  EXPECT_EQ(msg.find_commit(4)->seq[0], 9u);
  EXPECT_EQ(msg.find_commit(5), nullptr);
}

TEST(PiggybackMessage, StripLogsAndCommits) {
  auto msg = sample_message();
  msg.strip_logs_of(2);
  ASSERT_EQ(msg.logs.size(), 1u);
  EXPECT_EQ(msg.logs[0].mbox, 0u);
  msg.strip_commit_of(1);
  EXPECT_TRUE(msg.commits.empty());
}

TEST(PiggybackMessage, MergeConcatenatesLogsAndMergesCommits) {
  auto a = sample_message();
  PiggybackMessage b;
  PiggybackLog log;
  log.mbox = 9;
  log.dep = make_dep({{0, 1}});
  b.logs.push_back(log);
  CommitVector c;
  c.mbox = 1;
  c.max.seq[0] = 40;  // Higher than a's 17.
  c.max.seq[7] = 1;   // Lower than a's 3.
  b.commits.push_back(c);

  a.merge(std::move(b));
  EXPECT_EQ(a.logs.size(), 3u);
  EXPECT_EQ(a.logs.back().mbox, 9u);
  ASSERT_EQ(a.commits.size(), 1u);
  EXPECT_EQ(a.commits[0].max.seq[0], 40u);
  EXPECT_EQ(a.commits[0].max.seq[7], 3u);
}

TEST(PiggybackWire, OutOfBandLogsRoundTrip) {
  const auto msg = sample_message();
  std::vector<std::uint8_t> blob;
  serialize_logs({msg.logs.data(), msg.logs.size()}, blob);
  std::span<const std::uint8_t> in(blob);
  std::vector<PiggybackLog> out;
  ASSERT_TRUE(deserialize_logs(in, out));
  EXPECT_TRUE(in.empty());
  ASSERT_EQ(out.size(), msg.logs.size());
  EXPECT_TRUE(std::equal(out.begin(), out.end(), msg.logs.begin()));
}

TEST(PiggybackWire, DeserializeLogsRejectsTruncation) {
  const auto msg = sample_message();
  std::vector<std::uint8_t> blob;
  serialize_logs({msg.logs.data(), msg.logs.size()}, blob);
  blob.resize(blob.size() / 2);
  std::span<const std::uint8_t> in(blob);
  std::vector<PiggybackLog> out;
  EXPECT_FALSE(deserialize_logs(in, out));
}

// Sweep: messages of growing size must round-trip as long as they fit.
class PiggybackSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PiggybackSizeSweep, RoundTripWithStateSize) {
  pkt::Packet p;
  pkt::PacketBuilder(p).udp(
      pkt::FlowKey{1, 2, 3, 4, pkt::Ipv4Header::kProtoUdp}, 512);
  PiggybackMessage msg;
  PiggybackLog log;
  log.mbox = 1;
  log.dep = make_dep({{0, 1}});
  std::vector<std::uint8_t> value(GetParam(), 0x5a);
  log.writes.push_back({7, state::Bytes(value.data(), value.size()), false});
  msg.logs.push_back(log);

  ASSERT_TRUE(append_message(p, msg, 16));
  auto extracted = extract_message(p);
  ASSERT_TRUE(extracted.has_value());
  EXPECT_EQ(extracted->logs, msg.logs);
}

INSTANTIATE_TEST_SUITE_P(StateSizes, PiggybackSizeSweep,
                         ::testing::Values(16, 32, 64, 128, 256, 1024));

}  // namespace
}  // namespace sfc::ftc
