// Tests for the pcap writer (debugging tap).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <vector>

#include "packet/packet_io.hpp"
#include "packet/pcap.hpp"

namespace sfc::pkt {
namespace {

std::vector<std::uint8_t> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<std::uint8_t>((std::istreambuf_iterator<char>(in)),
                                   std::istreambuf_iterator<char>());
}

TEST(Pcap, WritesValidFile) {
  const std::string path = "/tmp/ftc_pcap_test.pcap";
  std::remove(path.c_str());
  {
    PcapWriter w;
    ASSERT_TRUE(w.open(path));
    EXPECT_TRUE(w.is_open());
    Packet p;
    PacketBuilder(p).udp(FlowKey{1, 2, 3, 4, Ipv4Header::kProtoUdp}, 128);
    p.anno().ingress_ns = 1'234'567'890'123ull;
    EXPECT_TRUE(w.write(p));
    EXPECT_TRUE(w.write(p, 2'000'000'000ull));
    EXPECT_EQ(w.packets_written(), 2u);
  }
  const auto bytes = slurp(path);
  // Global header (24) + 2 x (record header 16 + 128 bytes).
  ASSERT_EQ(bytes.size(), 24u + 2 * (16 + 128));
  // Magic + ethernet linktype.
  std::uint32_t magic = 0;
  std::memcpy(&magic, bytes.data(), 4);
  EXPECT_EQ(magic, 0xa1b2c3d4u);
  std::uint32_t linktype = 0;
  std::memcpy(&linktype, bytes.data() + 20, 4);
  EXPECT_EQ(linktype, 1u);
  // First record: timestamp from the ingress annotation.
  std::uint32_t ts_sec = 0, incl = 0;
  std::memcpy(&ts_sec, bytes.data() + 24, 4);
  std::memcpy(&incl, bytes.data() + 24 + 8, 4);
  EXPECT_EQ(ts_sec, 1234u);
  EXPECT_EQ(incl, 128u);
  std::remove(path.c_str());
}

TEST(Pcap, OpenFailsOnBadPath) {
  PcapWriter w;
  EXPECT_FALSE(w.open("/nonexistent-dir/x.pcap"));
  EXPECT_FALSE(w.is_open());
  Packet p;
  EXPECT_FALSE(w.write(p));  // No-op when closed.
}

TEST(Pcap, DoubleOpenRejected) {
  const std::string path = "/tmp/ftc_pcap_test2.pcap";
  PcapWriter w;
  ASSERT_TRUE(w.open(path));
  EXPECT_FALSE(w.open(path));
  w.close();
  std::remove(path.c_str());
}

}  // namespace
}  // namespace sfc::pkt
