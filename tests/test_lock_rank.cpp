// Lock-rank deadlock detector (base/lock_rank.hpp) tier-1 tests.
//
// The detector is compiled in for non-Release builds (SFC_LOCK_RANK_CHECKS)
// and aborts the process on a rank inversion, naming both locks. Death
// tests run the offending acquisition in a forked child so the abort is
// observable; when the checks are compiled out the suite skips.

#include <gtest/gtest.h>

#include <thread>

#include "base/lock_rank.hpp"
#include "base/mutex.hpp"
#include "state/partition_lock.hpp"

namespace sfc {
namespace {

bool checks_enabled() { return lockrank::enabled(); }

class LockRankDeathTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!checks_enabled()) {
      GTEST_SKIP() << "lock-rank checks compiled out (Release build)";
    }
    // Forked death tests inherit the parent's held-lock TLS; keep the
    // parent clean by never acquiring in the parent in these tests.
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  }
};

TEST_F(LockRankDeathTest, RankInversionAbortsNamingBothLocks) {
  Mutex outer{ranks::kControl, "test.outer"};
  Mutex inner{ranks::kLeaf, "test.inner"};
  // Correct order first, to show the pair itself is fine.
  {
    LockGuard a(outer);
    LockGuard b(inner);
  }
  // Inverted order: acquiring the higher rank while holding the lower one
  // must abort and print both names.
  EXPECT_DEATH(
      {
        LockGuard b(inner);
        LockGuard a(outer);
      },
      "rank inversion.*test\\.outer.*test\\.inner");
}

TEST_F(LockRankDeathTest, EqualRankWithoutWoundWaitAborts) {
  Mutex a{ranks::kLeaf, "test.peer_a"};
  Mutex b{ranks::kLeaf, "test.peer_b"};
  EXPECT_DEATH(
      {
        LockGuard la(a);
        LockGuard lb(b);
      },
      "rank inversion.*test\\.peer_b.*test\\.peer_a");
}

TEST_F(LockRankDeathTest, RecursiveAcquisitionAborts) {
  Mutex m{ranks::kLeaf, "test.recursive"};
  EXPECT_DEATH(
      {
        lockrank::check_acquire(&m, ranks::kLeaf, "test.recursive",
                                SameRank::kForbid);
        lockrank::note_held(&m, ranks::kLeaf, "test.recursive",
                            SameRank::kForbid);
        lockrank::check_acquire(&m, ranks::kLeaf, "test.recursive",
                                SameRank::kForbid);
      },
      "recursive acquisition.*test\\.recursive");
}

TEST(LockRankTest, CorrectOrderStaysSilent) {
  if (!checks_enabled()) GTEST_SKIP();
  // The full decreasing chain across layer ranks, as the data path nests
  // them: obs > node > control > transport > link > applier > partition.
  Mutex obs{ranks::kObs, "test.obs"};
  Mutex node{ranks::kNode, "test.node"};
  Mutex ctrl{ranks::kControl, "test.ctrl"};
  Mutex link{ranks::kLink, "test.link"};
  Mutex applier{ranks::kApplier, "test.applier"};
  {
    LockGuard l1(obs);
    LockGuard l2(node);
    LockGuard l3(ctrl);
    LockGuard l4(link);
    LockGuard l5(applier);
    EXPECT_GE(lockrank::held_depth(), 5u);
  }
  EXPECT_EQ(lockrank::held_depth(), 0u);
}

TEST(LockRankTest, WoundWaitSameRankMultiHoldAllowed) {
  if (!checks_enabled()) GTEST_SKIP();
  // StateStore::apply takes several partition locks at the same rank in
  // index order; the wound-wait policy sanctions that.
  state::PartitionLock locks[4];
  state::TxnSlot slot;
  for (auto& l : locks) l.lock_apply(&slot);
  EXPECT_EQ(lockrank::held_depth(), 4u);
  for (auto& l : locks) l.unlock();
  EXPECT_EQ(lockrank::held_depth(), 0u);
}

TEST(LockRankTest, NonLifoReleaseTolerated) {
  if (!checks_enabled()) GTEST_SKIP();
  // StateStore releases partitions in index order, not reverse-acquisition
  // order; the detector's release path must handle that.
  state::PartitionLock a, b;
  state::TxnSlot slot;
  a.lock_apply(&slot);
  b.lock_apply(&slot);
  a.unlock();  // Released first although acquired first.
  b.unlock();
  EXPECT_EQ(lockrank::held_depth(), 0u);
}

TEST(LockRankTest, TryLockRecordsOnlyOnSuccess) {
  if (!checks_enabled()) GTEST_SKIP();
  Mutex m{ranks::kLeaf, "test.trylock"};
  // Contended try_lock fails without touching the held stack.
  LockGuard hold(m);
  std::thread([&] {
    UniqueLock lock(m, std::defer_lock);
    EXPECT_FALSE(lock.try_lock());
    EXPECT_EQ(lockrank::held_depth(), 0u);
  }).join();
}

TEST(LockRankTest, HeldDepthTracksGuardScopes) {
  if (!checks_enabled()) GTEST_SKIP();
  Mutex outer{ranks::kControl, "test.depth_outer"};
  Mutex inner{ranks::kLeaf, "test.depth_inner"};
  EXPECT_EQ(lockrank::held_depth(), 0u);
  {
    LockGuard a(outer);
    EXPECT_EQ(lockrank::held_depth(), 1u);
    {
      UniqueLock b(inner);
      EXPECT_EQ(lockrank::held_depth(), 2u);
      b.unlock();
      EXPECT_EQ(lockrank::held_depth(), 1u);
      b.lock();
      EXPECT_EQ(lockrank::held_depth(), 2u);
    }
    EXPECT_EQ(lockrank::held_depth(), 1u);
  }
  EXPECT_EQ(lockrank::held_depth(), 0u);
}

}  // namespace
}  // namespace sfc
