// Tests for the span tracing layer: deterministic sampling, the
// lock-free collector, span ordering across a real lossy FTC chain, the
// recovery timeline derived from a monitor-driven recovery, and the
// Chrome trace-event JSON exporter (validated with a minimal JSON
// parser — Perfetto only accepts well-formed documents).
#include <gtest/gtest.h>

#include <cctype>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/chain.hpp"
#include "mbox/monitor.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/span.hpp"
#include "orch/orchestrator.hpp"
#include "runtime/clock.hpp"
#include "tgen/traffic.hpp"

namespace sfc::obs {
namespace {

// --- Minimal JSON validator (objects/arrays/strings/numbers/bools). ----

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  /// Parses one complete JSON value; fails on trailing garbage.
  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '\\') {
        pos_ += 2;
        continue;
      }
      if (c == '"') { ++pos_; return true; }
      if (static_cast<unsigned char>(c) < 0x20) return false;  // Raw control.
      ++pos_;
    }
    return false;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool literal(const char* lit) {
    const std::size_t n = std::string_view(lit).size();
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& s_;
  std::size_t pos_{0};
};

// --- Sampler. -----------------------------------------------------------

TEST(SpanSampler, DeterministicAcrossInstances) {
  const SpanSampler a(8, 42), b(8, 42), other_seed(8, 43);
  int same = 0, hits_a = 0, hits_other = 0;
  for (std::uint64_t id = 1; id <= 4096; ++id) {
    EXPECT_EQ(a.sampled(id), b.sampled(id));
    same += a.sampled(id) == other_seed.sampled(id);
    hits_a += a.sampled(id);
    hits_other += other_seed.sampled(id);
  }
  // ~1 in 8 sampled, and a different seed picks a different set.
  EXPECT_GT(hits_a, 4096 / 8 / 2);
  EXPECT_LT(hits_a, 4096 / 8 * 2);
  EXPECT_LT(same, 4096);
  EXPECT_GT(hits_other, 0);
}

TEST(SpanSampler, ZeroDisablesOneSamplesAll) {
  const SpanSampler off(0, 1), all(1, 1);
  EXPECT_FALSE(off.enabled());
  for (std::uint64_t id = 1; id <= 64; ++id) {
    EXPECT_FALSE(off.sampled(id));
    EXPECT_TRUE(all.sampled(id));
  }
}

// --- Collector. ---------------------------------------------------------

TEST(SpanCollector, CollectsFromManyThreadsWithoutLoss) {
  Registry registry;
  SpanCollector collector(&registry);
  ASSERT_EQ(registry.span_sink(), &collector);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 2000;  // Below the per-thread ring capacity.
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&collector, t] {
      for (int i = 0; i < kPerThread; ++i) {
        collector.record(SpanRecord{static_cast<std::uint64_t>(t + 1),
                                    rt::now_ns(),
                                    static_cast<std::uint64_t>(i),
                                    span_site_node(0), SpanKind::kProcess});
      }
    });
  }
  for (auto& t : threads) t.join();

  const auto records = collector.snapshot();
  ASSERT_EQ(records.size(),
            static_cast<std::size_t>(kThreads) * kPerThread);
  EXPECT_EQ(collector.dropped(), 0u);
  for (std::size_t i = 1; i < records.size(); ++i) {
    EXPECT_LE(records[i - 1].ts_ns, records[i].ts_ns);  // Sorted snapshot.
  }

  collector.clear();
  EXPECT_TRUE(collector.snapshot().empty());
  EXPECT_EQ(collector.collected(), 0u);
}

TEST(SpanCollector, UnregistersFromRegistryOnDestruction) {
  Registry registry;
  {
    SpanCollector collector(&registry);
    EXPECT_EQ(registry.span_sink(), &collector);
  }
  EXPECT_EQ(registry.span_sink(), nullptr);
  // A second collector on the same registry takes over cleanly (the
  // thread-local queue cache from the first one must not be reused).
  SpanCollector second(&registry);
  second.record(SpanRecord{1, rt::now_ns(), 0, kSpanSiteGen,
                           SpanKind::kGenEmit});
  EXPECT_EQ(second.snapshot().size(), 1u);
}

TEST(SpanCollector, FirstRecordUnderComponentLockSafeAgainstSnapshot) {
  // Regression: local_ring() used to register its health gauges inline on
  // the record path, taking the registry mutex (rank obs.registry) while
  // holding span.register — a lock-order inversion against
  // Registry::snapshot() driving component callbacks. Registration is now
  // deferred to the drain side; with lock-rank checks on, reintroducing
  // the inline registration aborts this test.
  Registry registry;
  SpanCollector collector(&registry);
  Mutex component_lock{ranks::kNode, "test.component"};
  std::thread recorder([&] {
    // First record from this thread while holding a component-level lock,
    // as the egress-flush instrumentation does: creates the ring.
    LockGuard hold(component_lock);
    collector.record(SpanRecord{7, rt::now_ns(), 0, span_site_node(1),
                                SpanKind::kBufferRelease});
  });
  // Meanwhile, snapshot the registry (invokes gauge callbacks under the
  // registry mutex) — the historical deadlock's other half.
  for (int i = 0; i < 50; ++i) (void)registry.snapshot();
  recorder.join();

  // After an explicit drain the deferred ring gauges are registered.
  collector.drain();
  bool dropped_gauge = false;
  bool high_water_gauge = false;
  for (const auto& s : registry.snapshot()) {
    dropped_gauge |= s.name == "span.ring_dropped";
    high_water_gauge |= s.name == "span.ring_high_water";
  }
  EXPECT_TRUE(dropped_gauge);
  EXPECT_TRUE(high_water_gauge);
}

// --- End-to-end ordering across a lossy, reordering chain. --------------

TEST(SpanChain, SpansOrderedAcrossLossyChain) {
  ftc::ChainRuntime::Spec spec;
  spec.mode = ftc::ChainMode::kFtc;
  spec.cfg.f = 1;
  spec.cfg.link.loss = 0.05;
  spec.cfg.link.reorder = 0.2;
  spec.cfg.link.delay_ns = 50'000;
  for (int i = 0; i < 3; ++i) {
    spec.mbox_factories.push_back(
        [] { return std::unique_ptr<mbox::Middlebox>(new mbox::Monitor(1)); });
  }
  ftc::ChainRuntime chain(spec);
  chain.start();
  SpanCollector spans(&chain.registry());

  tgen::Workload w;
  w.num_flows = 32;
  w.trace_sample = 4;
  const auto result =
      tgen::run_load(chain.pool(), chain.ingress(), chain.egress(), w,
                     /*rate_pps=*/20'000.0, /*duration_s=*/0.4,
                     /*warmup_s=*/0.05, &spans);
  chain.stop();
  ASSERT_GT(result.received, 0u);

  const auto records = spans.snapshot();
  ASSERT_FALSE(records.empty());

  // Group per trace (snapshot is time-sorted, so per-trace order is
  // arrival order).
  std::map<std::uint64_t, std::vector<SpanRecord>> traces;
  for (const auto& r : records) traces[r.trace_id].push_back(r);

  std::size_t complete_traces = 0;
  for (const auto& [trace_id, trace] : traces) {
    ASSERT_NE(trace_id, 0u);
    bool has_sink = false;
    for (const auto& r : trace) {
      has_sink |= r.kind == SpanKind::kSinkRecv;
    }
    if (!has_sink) continue;  // Dropped by a lossy link: partial trace.
    ++complete_traces;

    // Generator first, sink last, node positions non-decreasing between.
    EXPECT_EQ(trace.front().kind, SpanKind::kGenEmit);
    EXPECT_EQ(trace.back().kind, SpanKind::kSinkRecv);
    std::uint64_t last_pos = 0;
    std::set<std::uint64_t> positions;
    for (const auto& r : trace) {
      if (r.kind != SpanKind::kNodeIngress) continue;
      EXPECT_GE(r.a, last_pos);  // Chain order despite link reordering.
      last_pos = r.a;
      positions.insert(r.a);
    }
    // A delivered packet crossed every hop.
    EXPECT_EQ(positions.size(), 3u);
  }
  EXPECT_GT(complete_traces, 0u);

  // Per-hop breakdown covers every chain position with real samples.
  const auto hops = per_hop_breakdown(records);
  std::set<std::uint32_t> hop_positions;
  for (const auto& hop : hops) {
    hop_positions.insert(hop.position);
    EXPECT_GT(hop.hop_ns.count(), 0u);
  }
  for (std::uint32_t pos = 0; pos < 3; ++pos) {
    EXPECT_TRUE(hop_positions.count(pos)) << "no breakdown for pos " << pos;
  }
}

// --- Recovery timeline. -------------------------------------------------

TEST(SpanRecovery, TimelineCompleteAndMonotonicAfterFailStop) {
  ftc::ChainRuntime::Spec spec;
  spec.mode = ftc::ChainMode::kFtc;
  spec.cfg.f = 1;
  for (int i = 0; i < 3; ++i) {
    spec.mbox_factories.push_back(
        [] { return std::unique_ptr<mbox::Middlebox>(new mbox::Monitor(1)); });
  }
  ftc::ChainRuntime chain(spec);
  chain.start();
  SpanCollector spans(&chain.registry());

  // Generous timeout: this may run on a single oversubscribed core where
  // a healthy node's control worker can be starved for tens of ms — a
  // short timeout would false-positive on nodes we never failed.
  orch::OrchestratorConfig ocfg;
  ocfg.heartbeat_interval_ns = 10'000'000;
  ocfg.failure_timeout_ns = 500'000'000;
  ocfg.spawn_delay_ns = 100'000;
  orch::Orchestrator orchestrator(chain, ocfg);
  orchestrator.start();

  // Build state, then crash position 1 and let the monitor find it.
  tgen::Workload w;
  w.num_flows = 32;
  tgen::TrafficSource source(chain.pool(), chain.ingress(), w, 20'000.0);
  tgen::TrafficSink sink(chain.pool(), chain.egress());
  sink.start();
  source.start();
  const auto warm_deadline = rt::now_ns() + 10'000'000'000ull;
  while (sink.packets_received() < 200 && rt::now_ns() < warm_deadline) {
    std::this_thread::yield();
  }
  // Quiesce the traffic before crashing: the detection window must not
  // race parallel test binaries AND 20 kpps of load for CPU time, or a
  // healthy node's silence gets misattributed.
  source.stop();
  chain.fail_position(1);
  const auto deadline = rt::now_ns() + 20'000'000'000ull;
  std::vector<orch::RecoveryReport> reports;
  const auto pos1_report = [&]() -> const orch::RecoveryReport* {
    reports = orchestrator.reports();
    for (const auto& r : reports) {
      if (r.position == 1) return &r;
    }
    return nullptr;
  };
  while (!pos1_report() && rt::now_ns() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  sink.stop();
  orchestrator.stop();
  chain.stop();

  const auto* report = pos1_report();
  ASSERT_NE(report, nullptr);
  ASSERT_TRUE(report->success);

  const auto timelines = recovery_timelines(spans.snapshot());
  ASSERT_GE(timelines.size(), 1u);
  const RecoveryTimeline* found = nullptr;
  for (const auto& t : timelines) {
    if (t.position == 1) found = &t;
  }
  ASSERT_NE(found, nullptr);
  const auto& tl = *found;
  EXPECT_TRUE(tl.complete());
  // Monotonic through every phase the timeline exposes.
  EXPECT_LE(tl.fail_ns, tl.detect_ns);
  EXPECT_LE(tl.detect_ns, tl.spawn_ns);
  EXPECT_LE(tl.spawn_ns, tl.init_ack_ns);
  EXPECT_LE(tl.fetch_start_ns, tl.fetch_done_ns);
  EXPECT_LE(tl.fetch_done_ns, tl.reroute_ns);
  EXPECT_GT(tl.total_ns(), 0u);
  // Detection needed a real silence window to elapse (monitor-driven, not
  // instantaneous).
  EXPECT_GE(tl.time_to_detect_ns(), ocfg.failure_timeout_ns / 4);
}

// --- Chrome trace JSON. -------------------------------------------------

TEST(ChromeTrace, EmitsValidJsonWithSlicesAndMetadata) {
  // Synthetic trace: one packet through gen -> node0 -> link -> node1 ->
  // buffer -> sink, plus one recovery trace.
  std::vector<SpanRecord> records;
  const std::uint64_t t0 = 1'000'000;
  const std::uint64_t trace = 7;
  auto add = [&records](std::uint64_t id, std::uint64_t ts, std::uint64_t a,
                        std::uint32_t site, SpanKind kind) {
    records.push_back(SpanRecord{id, ts, a, site, kind});
  };
  add(trace, t0, 99, kSpanSiteGen, SpanKind::kGenEmit);
  add(trace, t0 + 100, 0, span_site_node(0), SpanKind::kNodeIngress);
  add(trace, t0 + 180, 50, span_site_node(0), SpanKind::kProcess);
  add(trace, t0 + 200, 0, span_site_node(0), SpanKind::kNodeEgress);
  add(trace, t0 + 210, 0, span_site_link(0), SpanKind::kLinkEnter);
  add(trace, t0 + 300, 0, span_site_link(0), SpanKind::kLinkExit);
  add(trace, t0 + 310, 1, span_site_node(1), SpanKind::kNodeIngress);
  add(trace, t0 + 400, 0, span_site_node(1), SpanKind::kNodeEgress);
  add(trace, t0 + 410, 0, kSpanSiteBuffer, SpanKind::kBufferHold);
  add(trace, t0 + 500, 0, kSpanSiteBuffer, SpanKind::kBufferRelease);
  add(trace, t0 + 600, 500, kSpanSiteSink, SpanKind::kSinkRecv);
  const std::uint64_t rec = recovery_trace_id(1);
  add(rec, t0 + 50, 1, span_site_node(1), SpanKind::kFail);
  add(rec, t0 + 700, 5, kSpanSiteOrch, SpanKind::kDetect);
  add(rec, t0 + 800, 9, kSpanSiteOrch, SpanKind::kSpawn);
  add(rec, t0 + 900, 0, span_site_node(9), SpanKind::kFetchStart);
  add(rec, t0 + 950, 0, span_site_node(9), SpanKind::kFetchDone);
  add(rec, t0 + 990, 1, kSpanSiteOrch, SpanKind::kReroute);

  const std::string json =
      to_chrome_trace(records, {{kSpanSiteGen, "traffic-gen"}});
  JsonParser parser(json);
  EXPECT_TRUE(parser.valid()) << json;

  // Structural spot checks the parser alone can't make.
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);  // Slices.
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);  // Instants.
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);  // Metadata.
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("traffic-gen"), std::string::npos);
  EXPECT_NE(json.find("\"hop\""), std::string::npos);
  EXPECT_NE(json.find("\"transit\""), std::string::npos);
  EXPECT_NE(json.find("\"buffered\""), std::string::npos);
  EXPECT_NE(json.find("\"recovery\""), std::string::npos);
  EXPECT_EQ(json.find("\"dur\":-"), std::string::npos);  // No negatives.
}

TEST(ChromeTrace, EmptyRecordsStillValid) {
  const std::string json = to_chrome_trace({});
  JsonParser parser(json);
  EXPECT_TRUE(parser.valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
}

}  // namespace
}  // namespace sfc::obs
