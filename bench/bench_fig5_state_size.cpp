// Figure 5: FTC throughput of the Gen middlebox vs generated state size
// (16/64/128/256 B) for packet sizes 128/256/512 B, plus the §7.2 latency
// micro-benchmark (state size impact on latency is negligible), plus a
// large-state sweep that grows the store to a million per-flow entries and
// measures throughput + hot-path budget under flow churn.
//
// Paper shape: piggyback size only matters when it is large relative to
// the packet — 128 B packets lose ~9% with states <= 128 B; 512 B packets
// lose <1% with states up to 256 B; latency deltas < 2 us.
//
// Environment knobs for the large-state sweep:
//   FTC_FIG5_MFLOW_ONLY=1   run only the million-flow sweep (CI smoke)
//   FTC_FIG5_FLOWS=N        flow count (default 1048576; CI uses ~20000)
//   FTC_FIG5_OWNERSHIP=     "shard" (default) or "locked" apply path
#include <cstdlib>
#include <cstring>
#include <thread>

#include "common.hpp"

using namespace sfc;
using namespace sfc::bench;

namespace {

std::size_t mflow_flows() {
  if (const char* env = std::getenv("FTC_FIG5_FLOWS")) {
    const long long v = std::atoll(env);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return 1'048'576;
}

ftc::Ownership mflow_ownership() {
  if (const char* env = std::getenv("FTC_FIG5_OWNERSHIP")) {
    if (std::strcmp(env, "locked") == 0) return ftc::Ownership::kLocked;
  }
  return ftc::Ownership::kShardAffine;
}

/// Million-flow state sweep: fill the Gen store with one 64 B entry per
/// flow, then measure saturated throughput and a paced quiet-mode budget
/// probe while the workload churns (fresh flows keep inserting keys).
/// The shard-affine path must stay quiet with zero partition-lock
/// contention: the single data worker owns every partition.
bool run_mflow_sweep(obs::Report& report) {
  const std::size_t flows = mflow_flows();
  const ftc::Ownership own = mflow_ownership();
  const std::uint32_t state_size = 64;
  const obs::Labels point{{"probe", "mflow"},
                          {"ownership", ftc::to_string(own)},
                          {"flows", std::to_string(flows)}};

  std::printf("\nlarge-state sweep: %zu flows x %uB entries, ownership=%s\n",
              flows, state_size, ftc::to_string(own));

  auto spec = base_spec(ChainMode::kFtc, {gen(state_size, /*per_flow=*/true)});
  spec.cfg.ownership = own;
  spec.cfg.profile = true;
  spec.cfg.quiet_assert = true;
  ChainRuntime chain(spec);
  chain.start();

  // Phase 1: fill. One pass of the round-robin workload inserts one key
  // per flow; a 32-bit flow-hash key space makes a few collisions
  // inevitable at 2^20 flows, so the target leaves 1% slack.
  tgen::Workload w;
  w.num_flows = flows;
  w.frame_len = 128;
  auto& head_store = chain.ftc_node(0)->head()->store();
  const std::size_t target = flows - flows / 100;
  {
    tgen::TrafficSource source(chain.pool(), chain.ingress(), w);
    tgen::TrafficSink sink(chain.pool(), chain.egress());
    sink.start();
    source.start();
    const auto deadline = rt::now_ns() + 180'000'000'000ull;
    while (head_store.total_entries() < target && rt::now_ns() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    source.stop();
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    sink.stop();
  }
  const std::size_t entries = head_store.total_entries();
  const bool filled = entries >= target;
  report.metric("mflow_entries", static_cast<double>(entries), point);
  std::printf("  fill: %zu entries (target %zu) %s\n", entries, target,
              filled ? "ok" : "TIMEOUT");

  // Phase 2: saturated throughput under churn — expired flows are reborn
  // as never-seen 5-tuples, so the measured window keeps inserting fresh
  // keys into the full store instead of rewriting a warm working set.
  tgen::Workload churn = w;
  churn.churn_mean_packets = 256;
  churn.churn_alpha = 1.5;
  const auto r = measure_tput(chain, churn);
  report.metric("mflow_throughput_mpps", r.delivered_mpps, point);
  report.metric("mflow_ns_per_packet", mpps_to_ns(r.delivered_mpps), point);
  std::printf("  churn throughput: %.3f Mpps (%.0f ns/pkt)\n",
              r.delivered_mpps, mpps_to_ns(r.delivered_mpps));

  // Phase 3: paced quiet-mode budget probe. Steady state on the full
  // store must hold the hot-path contract: no partition-lock contention
  // (shard mode: the owner commits lock-free), no owner misses, no
  // steady-state allocation or blocking-send slow paths.
  obs::HotProfiler* prof = chain.profiler();
  (void)tgen::run_load(chain.pool(), chain.ingress(), chain.egress(), churn,
                       100'000.0, point_seconds(), warmup_seconds(), nullptr,
                       [&chain, prof] {
                         chain.registry().reset_counters();
                         prof->reset();
                         prof->arm_quiet();
                       });
  prof->disarm_quiet();
  const auto budget = prof->report();
  const bool quiet_ok = prof->quiet_ok();
  const auto contended = budget.total.counters[static_cast<std::size_t>(
      obs::ProfCounter::kPartitionLockContended)];
  const auto owner_miss = budget.total.counters[static_cast<std::size_t>(
      obs::ProfCounter::kOwnerMiss)];
  report.metric("mflow_budget_quiet_ok", quiet_ok ? 1.0 : 0.0, point);
  report.metric("mflow_partition_lock_contended",
                static_cast<double>(contended), point);
  report.metric("mflow_owner_miss", static_cast<double>(owner_miss), point);
  report.add_snapshot(chain.registry(),
                      obs::Labels{{"source", "registry"}, {"probe", "mflow"}});
  std::printf("  budget probe: quiet=%s partition_lock_contended=%llu "
              "owner_miss=%llu\n",
              quiet_ok ? "ok" : "VIOLATED",
              static_cast<unsigned long long>(contended),
              static_cast<unsigned long long>(owner_miss));
  chain.stop();

  bool ok = filled && r.delivered_mpps > 0;
  if (own == ftc::Ownership::kShardAffine) {
    ok = ok && quiet_ok && contended == 0 && owner_miss == 0;
  }
  return ok;
}

}  // namespace

int main() {
  const bool mflow_only = std::getenv("FTC_FIG5_MFLOW_ONLY") != nullptr;
  print_header("Figure 5 — throughput vs state size (Gen, 1 thread)",
               "<=9%% drop @128B pkts & <=128B state; <1%% drop @512B pkts");

  const std::size_t packet_sizes[] = {128, 256, 512};
  const std::uint32_t state_sizes[] = {16, 64, 128, 256};
  auto report = make_report("fig5_state_size");
  report.meta("middlebox", "gen").meta("threads", 1);

  bool shape_ok = true;
  if (!mflow_only) {
    std::printf("%-12s", "pkt \\ state");
    for (auto s : state_sizes) std::printf("  %6uB", s);
    std::printf("   (Mpps; rel. to 16B state)\n");

    for (const auto pkt_size : packet_sizes) {
      std::printf("%9zuB  ", pkt_size);
      double base_mpps = 0;
      std::vector<double> rel;
      for (const auto state_size : state_sizes) {
        auto spec = base_spec(ChainMode::kFtc, {gen(state_size)});
        ChainRuntime chain(spec);
        chain.start();
        tgen::Workload w;
        w.frame_len = pkt_size;
        const auto r = measure_tput(chain, w);
        chain.stop();
        if (base_mpps == 0) base_mpps = r.delivered_mpps;
        rel.push_back(base_mpps > 0 ? r.delivered_mpps / base_mpps : 0);
        const obs::Labels point{{"pkt_bytes", std::to_string(pkt_size)},
                                {"state_bytes", std::to_string(state_size)}};
        report.metric("throughput_mpps", r.delivered_mpps, point);
        report.metric("ns_per_packet", mpps_to_ns(r.delivered_mpps), point);
        std::printf("  %6.3f", r.delivered_mpps);
      }
      std::printf("   rel:");
      for (double r : rel) std::printf(" %4.2f", r);
      std::printf("\n");
      // Shape reproducible here: throughput declines smoothly and modestly
      // with state size (the per-byte piggyback handling cost). The paper's
      // packet-size interaction (128 B packets hurt more than 512 B) comes
      // from NIC wire-share, which in-memory links do not model.
      if (pkt_size == 512 && rel.back() < 0.6) shape_ok = false;
    }

    // §7.2 latency micro: Gen and Ch-Gen latency vs state size.
    std::printf("\nlatency vs state size (Ch-Gen: Gen->Gen, fixed moderate "
                "load; paper: delta < 2 us)\n");
    double base_lat = 0;
    for (const auto state_size : state_sizes) {
      auto spec =
          base_spec(ChainMode::kFtc, {gen(state_size), gen(state_size)});
      ChainRuntime chain(spec);
      chain.start();
      tgen::Workload w;
      w.frame_len = 512;
      const auto r = measure_latency(chain, w, 20'000.0);
      chain.stop();
      if (base_lat == 0) base_lat = r.mean_latency_us();
      report.metric("mean_latency_us", r.mean_latency_us(),
                    {{"state_bytes", std::to_string(state_size)}});
      report.metric("p99_latency_us", r.p99_latency_us(),
                    {{"state_bytes", std::to_string(state_size)}});
      std::printf("  state %4uB: mean %7.1f us (p99 %7.1f us) delta %+6.1f us\n",
                  state_size, r.mean_latency_us(), r.p99_latency_us(),
                  r.mean_latency_us() - base_lat);
    }
  }

  const bool mflow_ok = run_mflow_sweep(report);
  if (!mflow_only) {
    std::printf("shape check (smooth, modest decline with state size; <=40%% "
                "at 256B): %s\n",
                shape_ok ? "yes" : "NO");
  }
  std::printf("mflow check (fill + churn throughput + quiet budget): %s\n",
              mflow_ok ? "yes" : "NO");
  report.shape_check(shape_ok && mflow_ok);
  finish_report(report);
  return (shape_ok && mflow_ok) ? 0 : 1;
}
