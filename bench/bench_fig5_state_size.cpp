// Figure 5: FTC throughput of the Gen middlebox vs generated state size
// (16/64/128/256 B) for packet sizes 128/256/512 B, plus the §7.2 latency
// micro-benchmark (state size impact on latency is negligible).
//
// Paper shape: piggyback size only matters when it is large relative to
// the packet — 128 B packets lose ~9% with states <= 128 B; 512 B packets
// lose <1% with states up to 256 B; latency deltas < 2 us.
#include "common.hpp"

using namespace sfc;
using namespace sfc::bench;

int main() {
  print_header("Figure 5 — throughput vs state size (Gen, 1 thread)",
               "<=9%% drop @128B pkts & <=128B state; <1%% drop @512B pkts");

  const std::size_t packet_sizes[] = {128, 256, 512};
  const std::uint32_t state_sizes[] = {16, 64, 128, 256};
  auto report = make_report("fig5_state_size");
  report.meta("middlebox", "gen").meta("threads", 1);

  std::printf("%-12s", "pkt \\ state");
  for (auto s : state_sizes) std::printf("  %6uB", s);
  std::printf("   (Mpps; rel. to 16B state)\n");

  bool shape_ok = true;
  for (const auto pkt_size : packet_sizes) {
    std::printf("%9zuB  ", pkt_size);
    double base_mpps = 0;
    std::vector<double> rel;
    for (const auto state_size : state_sizes) {
      auto spec = base_spec(ChainMode::kFtc, {gen(state_size)});
      ChainRuntime chain(spec);
      chain.start();
      tgen::Workload w;
      w.frame_len = pkt_size;
      const auto r = measure_tput(chain, w);
      chain.stop();
      if (base_mpps == 0) base_mpps = r.delivered_mpps;
      rel.push_back(base_mpps > 0 ? r.delivered_mpps / base_mpps : 0);
      const obs::Labels point{{"pkt_bytes", std::to_string(pkt_size)},
                              {"state_bytes", std::to_string(state_size)}};
      report.metric("throughput_mpps", r.delivered_mpps, point);
      report.metric("ns_per_packet", mpps_to_ns(r.delivered_mpps), point);
      std::printf("  %6.3f", r.delivered_mpps);
    }
    std::printf("   rel:");
    for (double r : rel) std::printf(" %4.2f", r);
    std::printf("\n");
    // Shape reproducible here: throughput declines smoothly and modestly
    // with state size (the per-byte piggyback handling cost). The paper's
    // packet-size interaction (128 B packets hurt more than 512 B) comes
    // from NIC wire-share, which in-memory links do not model.
    if (pkt_size == 512 && rel.back() < 0.6) shape_ok = false;
  }

  // §7.2 latency micro: Gen and Ch-Gen latency vs state size.
  std::printf("\nlatency vs state size (Ch-Gen: Gen->Gen, fixed moderate "
              "load; paper: delta < 2 us)\n");
  double base_lat = 0;
  for (const auto state_size : state_sizes) {
    auto spec =
        base_spec(ChainMode::kFtc, {gen(state_size), gen(state_size)});
    ChainRuntime chain(spec);
    chain.start();
    tgen::Workload w;
    w.frame_len = 512;
    const auto r = measure_latency(chain, w, 20'000.0);
    chain.stop();
    if (base_lat == 0) base_lat = r.mean_latency_us();
    report.metric("mean_latency_us", r.mean_latency_us(),
                  {{"state_bytes", std::to_string(state_size)}});
    report.metric("p99_latency_us", r.p99_latency_us(),
                  {{"state_bytes", std::to_string(state_size)}});
    std::printf("  state %4uB: mean %7.1f us (p99 %7.1f us) delta %+6.1f us\n",
                state_size, r.mean_latency_us(), r.p99_latency_us(),
                r.mean_latency_us() - base_lat);
  }

  std::printf("shape check (smooth, modest decline with state size; <=40%% "
              "at 256B): %s\n",
              shape_ok ? "yes" : "NO");
  report.shape_check(shape_ok);
  finish_report(report);
  return shape_ok ? 0 : 1;
}
