// Figure 6: Monitor throughput (8 threads) vs sharing level, for NF / FTC
// / FTMB.
//
// Paper shape: throughput of every system drops as the sharing level
// rises (contention on the shared counter); FTC achieves 1.2-1.4x FTMB at
// sharing 8/2 and matches NF at sharing 1 (both NIC-bound); FTMB is
// limited by per-packet PAL messages.
#include "common.hpp"

using namespace sfc;
using namespace sfc::bench;

int main() {
  print_header(
      "Figure 6 — Monitor throughput vs sharing level (8 threads)",
      "all systems drop with sharing; FTC 1.2-1.4x FTMB; FTMB capped by PALs");

  const std::uint32_t sharing_levels[] = {1, 2, 4, 8};
  const ChainMode modes[] = {ChainMode::kNf, ChainMode::kFtc, ChainMode::kFtmb};

  double results[3][4] = {};
  auto report = make_report("fig6_monitor_sharing");
  report.meta("middlebox", "monitor").meta("threads", 8);
  std::printf("pipeline throughput = 1/(slowest server stage); see DESIGN.md\n");
  std::printf("%-14s", "system");
  for (auto s : sharing_levels) std::printf("  share=%u", s);
  std::printf("   (pipeline Mpps)\n");

  for (std::size_t mi = 0; mi < 3; ++mi) {
    std::printf("%-14s", mode_name(modes[mi]));
    for (std::size_t si = 0; si < 4; ++si) {
      auto spec = base_spec(modes[mi], {monitor(sharing_levels[si])},
                            /*threads=*/8);
      ChainRuntime chain(spec);
      tgen::Workload w;
      w.num_flows = 256;
      const auto r = measure_pipeline_tput(chain, w);
      results[mi][si] = r.pipeline_mpps;
      const obs::Labels point{{"system", mode_name(modes[mi])},
                              {"sharing", std::to_string(sharing_levels[si])}};
      report.metric("pipeline_mpps", r.pipeline_mpps, point);
      report.metric("ns_per_packet", mpps_to_ns(r.pipeline_mpps), point);
      std::printf("  %7.3f", r.pipeline_mpps);
      std::fflush(stdout);
    }
    std::printf("\n");
  }

  std::printf("\nFTC/FTMB ratio per sharing level (paper: 1.2-1.4x):");
  for (std::size_t si = 0; si < 4; ++si) {
    const double ratio = results[2][si] > 0 ? results[1][si] / results[2][si] : 0;
    std::printf(" %.2f", ratio);
  }
  std::printf("\nFTC/NF overhead per sharing level (paper: 9-26%%):");
  for (std::size_t si = 0; si < 4; ++si) {
    std::printf(" %.0f%%", (1.0 - results[1][si] / results[0][si]) * 100.0);
  }
  // Reproducible on this substrate: sharing costs FTC throughput (its
  // shared-counter writes serialize transactions AND their replication),
  // while stateless-ish NF barely moves. Eight threads timesharing one
  // core make the contended medians noisy; compare share=1 vs share=8.
  const bool ok = results[1][3] < results[1][0] &&
                  results[0][3] > results[0][0] * 0.5;
  std::printf("\nshape check (sharing level degrades FTC; NF roughly "
              "flat): %s\n",
              ok ? "yes" : "NO");
  std::printf("note: with 8 worker threads timesharing one core, lock-wait "
              "time pollutes per-stage cost\nsamples; the FTC-vs-FTMB "
              "margin is not reproducible here (see EXPERIMENTS.md).\n");
  report.shape_check(ok);
  finish_report(report);
  return ok ? 0 : 1;
}
