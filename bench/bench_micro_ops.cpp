// Micro-benchmarks of the primitives on FTC's per-packet path, using
// google-benchmark. Not a paper figure; supports Table 2's interpretation
// by costing each building block in isolation.
#include <benchmark/benchmark.h>

#include <cstring>
#include <numeric>

#include "core/config.hpp"
#include "core/piggyback.hpp"
#include "obs/export.hpp"
#include "core/stores.hpp"
#include "net/link.hpp"
#include "packet/packet_io.hpp"
#include "packet/packet_pool.hpp"
#include "runtime/mpmc_queue.hpp"
#include "runtime/spsc_queue.hpp"
#include "state/txn.hpp"

namespace {

using namespace sfc;

// Data-path burst size for the link send/poll benchmark; set by --burst
// (the CI bench-smoke job runs --burst 1 vs --burst 32 and compares).
std::size_t g_burst = 32;

void BM_SpscQueuePushPop(benchmark::State& state) {
  rt::SpscQueue<std::uint64_t> q(1024);
  std::uint64_t v = 0;
  for (auto _ : state) {
    q.try_push(v++);
    benchmark::DoNotOptimize(q.try_pop());
  }
}
BENCHMARK(BM_SpscQueuePushPop);

void BM_MpmcQueuePushPop(benchmark::State& state) {
  rt::MpmcQueue<std::uint64_t> q(1024);
  std::uint64_t v = 0;
  for (auto _ : state) {
    q.try_push(v++);
    benchmark::DoNotOptimize(q.try_pop());
  }
}
BENCHMARK(BM_MpmcQueuePushPop);

void BM_MpmcQueueBulkPushPop(benchmark::State& state) {
  // Per-burst cost of the bulk queue ops (one CAS per burst): the sweep
  // over 1/8/32/128 shows the amortization the data path relies on.
  const auto burst = static_cast<std::size_t>(state.range(0));
  rt::MpmcQueue<std::uint64_t> q(1024);
  std::vector<std::uint64_t> in(burst), out(burst);
  std::iota(in.begin(), in.end(), 0);
  for (auto _ : state) {
    q.try_push_n({in.data(), burst});
    benchmark::DoNotOptimize(q.try_pop_n(out.data(), burst));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(burst));
}
BENCHMARK(BM_MpmcQueueBulkPushPop)->Arg(1)->Arg(8)->Arg(32)->Arg(128);

void BM_LinkBurstSendPoll(benchmark::State& state) {
  // Fast-path link traversal cost per burst (queue reservation + counter
  // updates). Registered with the --burst flag's value so CI can compare
  // runs at different burst sizes by name.
  const auto burst = static_cast<std::size_t>(state.range(0));
  pkt::PacketPool pool(1024);
  net::Link link(pool, net::LinkConfig{});
  const pkt::FlowKey flow{0x0a000001, 0x08080808, 1234, 80,
                          pkt::Ipv4Header::kProtoUdp};
  std::vector<pkt::Packet*> pkts(burst);
  for (auto& p : pkts) {
    p = pool.alloc_raw();
    pkt::PacketBuilder(*p).udp(flow, 256);
  }
  for (auto _ : state) {
    link.send_burst({pkts.data(), burst});
    // The pop returns the same pointers in order; reuse them next round.
    benchmark::DoNotOptimize(link.poll_burst(pkts.data(), burst));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(burst));
  for (auto* p : pkts) pool.free_raw(p);
}

void BM_PacketBuildParse(benchmark::State& state) {
  pkt::Packet p;
  const pkt::FlowKey flow{0x0a000001, 0x08080808, 1234, 80,
                          pkt::Ipv4Header::kProtoUdp};
  for (auto _ : state) {
    pkt::PacketBuilder(p).udp(flow, 256);
    benchmark::DoNotOptimize(pkt::parse_packet(p));
  }
}
BENCHMARK(BM_PacketBuildParse);

void BM_TxnReadOnly(benchmark::State& state) {
  state::StateStore store(16);
  state::TxnContext ctx(store);
  state::run_transaction(ctx, [](state::Txn& t) {
    t.write(7, state::Bytes::of<std::uint64_t>(1));
  });
  for (auto _ : state) {
    auto rec = state::run_transaction(ctx, [](state::Txn& t) {
      benchmark::DoNotOptimize(t.read(7));
    });
    benchmark::DoNotOptimize(rec);
  }
}
BENCHMARK(BM_TxnReadOnly);

void BM_TxnCounterIncrement(benchmark::State& state) {
  state::StateStore store(16);
  state::TxnContext ctx(store);
  for (auto _ : state) {
    auto rec = state::run_transaction(
        ctx, [](state::Txn& t) { t.fetch_add(7, 1); });
    benchmark::DoNotOptimize(rec);
  }
}
BENCHMARK(BM_TxnCounterIncrement);

void BM_PiggybackAppendExtract(benchmark::State& state) {
  const auto value_size = static_cast<std::size_t>(state.range(0));
  pkt::Packet p;
  const pkt::FlowKey flow{0x0a000001, 0x08080808, 1234, 80,
                          pkt::Ipv4Header::kProtoUdp};
  pkt::PacketBuilder(p).udp(flow, 256);

  ftc::PiggybackMessage msg;
  ftc::PiggybackLog log;
  log.mbox = 1;
  log.dep.mask = 1;
  log.dep.seq[0] = 42;
  std::vector<std::uint8_t> value(value_size, 0xab);
  log.writes.push_back({7, state::Bytes(value.data(), value.size()), false});
  msg.logs.push_back(log);

  for (auto _ : state) {
    ftc::append_message(p, msg, 16);
    benchmark::DoNotOptimize(ftc::extract_message(p));
  }
}
BENCHMARK(BM_PiggybackAppendExtract)->Arg(32)->Arg(128)->Arg(256);

// A representative per-node piggyback workload: n_logs single-write logs
// (value_size bytes each) plus one commit vector, riding a 256 B UDP
// packet. Used by the materialize-vs-view pair below.
ftc::PiggybackMessage make_bench_message(std::size_t n_logs,
                                         std::size_t value_size,
                                         std::vector<std::uint8_t>& value) {
  value.assign(value_size, 0xab);
  ftc::PiggybackMessage msg;
  for (std::size_t i = 0; i < n_logs; ++i) {
    ftc::PiggybackLog log;
    log.mbox = static_cast<ftc::MboxId>(i);
    log.dep.mask = 1;
    log.dep.seq[0] = i + 1;
    log.writes.push_back(
        {7 + i, state::Bytes(value.data(), value.size()), false});
    msg.logs.push_back(std::move(log));
  }
  ftc::MaxVector max;
  max.seq[0] = 41;
  msg.set_commit(0, max);
  return msg;
}

void BM_PiggybackMaterialize(benchmark::State& state) {
  // Legacy per-node tail handling: deserialize the whole message into
  // owning structures, touch it (commit update), serialize it back.
  const auto n_logs = static_cast<std::size_t>(state.range(0));
  const auto value_size = static_cast<std::size_t>(state.range(1));
  pkt::Packet p;
  const pkt::FlowKey flow{0x0a000001, 0x08080808, 1234, 80,
                          pkt::Ipv4Header::kProtoUdp};
  pkt::PacketBuilder(p).udp(flow, 256);
  std::vector<std::uint8_t> value;
  ftc::append_message(p, make_bench_message(n_logs, value_size, value), 16);
  ftc::MaxVector max;
  max.seq[0] = 99;
  for (auto _ : state) {
    auto msg = ftc::extract_message(p);
    msg->set_commit(0, max);
    ftc::append_message(p, *msg, 16);
    benchmark::DoNotOptimize(msg);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PiggybackMaterialize)
    ->ArgsProduct({{1, 2, 4, 8}, {8, 64, 256}});

void BM_PiggybackViewWalk(benchmark::State& state) {
  // Zero-copy equivalent of BM_PiggybackMaterialize: walk every log and
  // write where they lie in the tailroom, update the commit vector in
  // place; forwarded bytes are never copied.
  const auto n_logs = static_cast<std::size_t>(state.range(0));
  const auto value_size = static_cast<std::size_t>(state.range(1));
  pkt::Packet p;
  const pkt::FlowKey flow{0x0a000001, 0x08080808, 1234, 80,
                          pkt::Ipv4Header::kProtoUdp};
  pkt::PacketBuilder(p).udp(flow, 256);
  std::vector<std::uint8_t> value;
  ftc::append_message(p, make_bench_message(n_logs, value_size, value), 16);
  ftc::MaxVector max;
  max.seq[0] = 99;
  for (auto _ : state) {
    ftc::PiggybackView v = ftc::PiggybackView::open(p);
    std::uint64_t acc = 0;
    const std::size_t count = v.log_count();
    for (std::size_t i = 0; i < count; ++i) {
      const ftc::WireLog log = v.log(i);
      acc += log.dep.seq[0];
      ftc::for_each_wire_write(log, [&](const state::WireUpdate& u) {
        acc += u.key + (u.value.empty() ? 0 : u.value.front());
      });
    }
    v.set_commit(0, max);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PiggybackViewWalk)->ArgsProduct({{1, 2, 4, 8}, {8, 64, 256}});

void BM_ApplierOffer(benchmark::State& state) {
  ftc::ChainConfig cfg;
  ftc::InOrderApplier applier(0, cfg);
  std::uint64_t seq = 0;
  ftc::PiggybackLog log;
  log.mbox = 0;
  log.dep.mask = 1ULL << applier.store().partition_of(7);
  log.writes.push_back({7, state::Bytes::of<std::uint64_t>(1), false});
  const auto p = applier.store().partition_of(7);
  for (auto _ : state) {
    log.dep.seq[p] = ++seq;
    benchmark::DoNotOptimize(applier.offer(log));
  }
}
BENCHMARK(BM_ApplierOffer);

void BM_PoolAllocFree(benchmark::State& state) {
  pkt::PacketPool pool(256);
  for (auto _ : state) {
    pkt::Packet* p = pool.alloc_raw();
    benchmark::DoNotOptimize(p);
    pool.free_raw(p);
  }
}
BENCHMARK(BM_PoolAllocFree);

// Console reporter that also captures per-benchmark timings so the run
// can be written out as BENCH_micro_ops.json.
class CapturingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const auto& run : runs) {
      if (run.error_occurred) continue;
      captured_.emplace_back(run.benchmark_name(), run.GetAdjustedRealTime());
    }
    benchmark::ConsoleReporter::ReportRuns(runs);
  }

  const std::vector<std::pair<std::string, double>>& captured() const {
    return captured_;
  }

 private:
  std::vector<std::pair<std::string, double>> captured_;
};

}  // namespace

// Expanded BENCHMARK_MAIN() with a capturing reporter + JSON report.
int main(int argc, char** argv) {
  // Parse and strip our own --burst flag before google-benchmark sees the
  // argument vector (it rejects flags it does not recognize).
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--burst" && i + 1 < argc) {
      g_burst = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (arg.rfind("--burst=", 0) == 0) {
      g_burst = static_cast<std::size_t>(
          std::strtoull(arg.c_str() + std::strlen("--burst="), nullptr, 10));
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  if (g_burst < 1) g_burst = 1;
  if (g_burst > ftc::kMaxBurst) g_burst = ftc::kMaxBurst;
  benchmark::RegisterBenchmark("BM_LinkBurstSendPoll", BM_LinkBurstSendPoll)
      ->Arg(static_cast<long>(g_burst));

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  CapturingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);

  obs::Report report("micro_ops");
  report.meta("schema_version", std::uint64_t{2});  // = bench::kBenchSchemaVersion
  report.meta("harness", "google-benchmark");
  report.meta("burst", std::to_string(g_burst));
  for (const auto& [name, real_time_ns] : reporter.captured()) {
    report.metric("real_time_ns", real_time_ns, {{"benchmark", name}});
    // Schema v2: every micro-benchmark iteration is one op.
    report.metric("ns_per_op", real_time_ns, {{"benchmark", name}});
    // Per-packet view of the burst benchmark so runs at different burst
    // sizes are directly comparable (CI enforces burst-32 <= burst-1).
    if (name.rfind("BM_LinkBurstSendPoll", 0) == 0) {
      report.metric("ns_per_packet",
                    real_time_ns / static_cast<double>(g_burst),
                    {{"benchmark", "BM_LinkBurstSendPoll"},
                     {"burst", std::to_string(g_burst)}});
    }
    // One iteration handles one packet tail: real time IS ns/packet. CI
    // pairs these by the "/logs/value_size" suffix and enforces that the
    // view walk undercuts materialization.
    if (name.rfind("BM_PiggybackMaterialize", 0) == 0 ||
        name.rfind("BM_PiggybackViewWalk", 0) == 0) {
      report.metric("ns_per_packet", real_time_ns, {{"benchmark", name}});
    }
  }
  const std::string path = report.write();
  if (!path.empty()) std::printf("results: %s\n", path.c_str());
  benchmark::Shutdown();
  return 0;
}
