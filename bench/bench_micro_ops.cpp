// Micro-benchmarks of the primitives on FTC's per-packet path, using
// google-benchmark. Not a paper figure; supports Table 2's interpretation
// by costing each building block in isolation.
#include <benchmark/benchmark.h>

#include "core/piggyback.hpp"
#include "obs/export.hpp"
#include "core/stores.hpp"
#include "packet/packet_io.hpp"
#include "packet/packet_pool.hpp"
#include "runtime/mpmc_queue.hpp"
#include "runtime/spsc_queue.hpp"
#include "state/txn.hpp"

namespace {

using namespace sfc;

void BM_SpscQueuePushPop(benchmark::State& state) {
  rt::SpscQueue<std::uint64_t> q(1024);
  std::uint64_t v = 0;
  for (auto _ : state) {
    q.try_push(v++);
    benchmark::DoNotOptimize(q.try_pop());
  }
}
BENCHMARK(BM_SpscQueuePushPop);

void BM_MpmcQueuePushPop(benchmark::State& state) {
  rt::MpmcQueue<std::uint64_t> q(1024);
  std::uint64_t v = 0;
  for (auto _ : state) {
    q.try_push(v++);
    benchmark::DoNotOptimize(q.try_pop());
  }
}
BENCHMARK(BM_MpmcQueuePushPop);

void BM_PacketBuildParse(benchmark::State& state) {
  pkt::Packet p;
  const pkt::FlowKey flow{0x0a000001, 0x08080808, 1234, 80,
                          pkt::Ipv4Header::kProtoUdp};
  for (auto _ : state) {
    pkt::PacketBuilder(p).udp(flow, 256);
    benchmark::DoNotOptimize(pkt::parse_packet(p));
  }
}
BENCHMARK(BM_PacketBuildParse);

void BM_TxnReadOnly(benchmark::State& state) {
  state::StateStore store(16);
  state::TxnContext ctx(store);
  state::run_transaction(ctx, [](state::Txn& t) {
    t.write(7, state::Bytes::of<std::uint64_t>(1));
  });
  for (auto _ : state) {
    auto rec = state::run_transaction(ctx, [](state::Txn& t) {
      benchmark::DoNotOptimize(t.read(7));
    });
    benchmark::DoNotOptimize(rec);
  }
}
BENCHMARK(BM_TxnReadOnly);

void BM_TxnCounterIncrement(benchmark::State& state) {
  state::StateStore store(16);
  state::TxnContext ctx(store);
  for (auto _ : state) {
    auto rec = state::run_transaction(
        ctx, [](state::Txn& t) { t.fetch_add(7, 1); });
    benchmark::DoNotOptimize(rec);
  }
}
BENCHMARK(BM_TxnCounterIncrement);

void BM_PiggybackAppendExtract(benchmark::State& state) {
  const auto value_size = static_cast<std::size_t>(state.range(0));
  pkt::Packet p;
  const pkt::FlowKey flow{0x0a000001, 0x08080808, 1234, 80,
                          pkt::Ipv4Header::kProtoUdp};
  pkt::PacketBuilder(p).udp(flow, 256);

  ftc::PiggybackMessage msg;
  ftc::PiggybackLog log;
  log.mbox = 1;
  log.dep.mask = 1;
  log.dep.seq[0] = 42;
  std::vector<std::uint8_t> value(value_size, 0xab);
  log.writes.push_back({7, state::Bytes(value.data(), value.size()), false});
  msg.logs.push_back(log);

  for (auto _ : state) {
    ftc::append_message(p, msg, 16);
    benchmark::DoNotOptimize(ftc::extract_message(p));
  }
}
BENCHMARK(BM_PiggybackAppendExtract)->Arg(32)->Arg(128)->Arg(256);

void BM_ApplierOffer(benchmark::State& state) {
  ftc::ChainConfig cfg;
  ftc::InOrderApplier applier(0, cfg);
  std::uint64_t seq = 0;
  ftc::PiggybackLog log;
  log.mbox = 0;
  log.dep.mask = 1ULL << applier.store().partition_of(7);
  log.writes.push_back({7, state::Bytes::of<std::uint64_t>(1), false});
  const auto p = applier.store().partition_of(7);
  for (auto _ : state) {
    log.dep.seq[p] = ++seq;
    benchmark::DoNotOptimize(applier.offer(log));
  }
}
BENCHMARK(BM_ApplierOffer);

void BM_PoolAllocFree(benchmark::State& state) {
  pkt::PacketPool pool(256);
  for (auto _ : state) {
    pkt::Packet* p = pool.alloc_raw();
    benchmark::DoNotOptimize(p);
    pool.free_raw(p);
  }
}
BENCHMARK(BM_PoolAllocFree);

// Console reporter that also captures per-benchmark timings so the run
// can be written out as BENCH_micro_ops.json.
class CapturingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const auto& run : runs) {
      if (run.error_occurred) continue;
      captured_.emplace_back(run.benchmark_name(), run.GetAdjustedRealTime());
    }
    benchmark::ConsoleReporter::ReportRuns(runs);
  }

  const std::vector<std::pair<std::string, double>>& captured() const {
    return captured_;
  }

 private:
  std::vector<std::pair<std::string, double>> captured_;
};

}  // namespace

// Expanded BENCHMARK_MAIN() with a capturing reporter + JSON report.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  CapturingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);

  obs::Report report("micro_ops");
  report.meta("harness", "google-benchmark");
  for (const auto& [name, real_time_ns] : reporter.captured()) {
    report.metric("real_time_ns", real_time_ns, {{"benchmark", name}});
  }
  const std::string path = report.write();
  if (!path.empty()) std::printf("results: %s\n", path.c_str());
  benchmark::Shutdown();
  return 0;
}
