// Figure 8: per-packet latency vs offered load for (a) Monitor with
// sharing level 8 (8 threads), (b) MazuNAT 1 thread, (c) MazuNAT 8
// threads — NF / FTC / FTMB.
//
// Paper shape: latency stays flat (sub-ms) until each system's saturation
// point, then spikes; FTC adds 14-25 us over NF for the write-heavy
// Monitor (FTMB 22-31 us) and nearly matches NF for the read-heavy
// MazuNAT.
#include "common.hpp"

using namespace sfc;
using namespace sfc::bench;

namespace {

struct Subfigure {
  const char* name;
  const char* key;  ///< Short label for the JSON report ("a"/"b"/"c").
  FtcNode::MboxFactory mbox;
  std::size_t threads;
};

void run_subfigure(const Subfigure& sub, obs::Report& report) {
  std::printf("\n--- %s ---\n", sub.name);
  // Probe each system's max rate first, then sweep fractions of it.
  const ChainMode modes[] = {ChainMode::kNf, ChainMode::kFtc, ChainMode::kFtmb};
  const double fractions[] = {0.2, 0.4, 0.6, 0.8, 0.95};

  std::printf("%-14s %9s", "system", "max-Mpps");
  for (double f : fractions) std::printf("  @%3.0f%%", f * 100);
  std::printf("   (mean latency, us)\n");

  for (const auto mode : modes) {
    auto probe_spec = base_spec(mode, {sub.mbox}, sub.threads);
    double max_pps = 0;
    {
      ChainRuntime chain(probe_spec);
      chain.start();
      tgen::Workload w;
      w.num_flows = 256;
      max_pps = measure_tput(chain, w).delivered_mpps * 1e6;
      chain.stop();
    }
    std::printf("%-14s %9.3f", mode_name(mode), max_pps * 1e-6);
    const obs::Labels mode_point{{"subfigure", sub.key},
                                 {"system", mode_name(mode)}};
    report.metric("max_mpps", max_pps * 1e-6, mode_point);
    report.metric("ns_per_packet", mpps_to_ns(max_pps * 1e-6), mode_point);
    for (const double frac : fractions) {
      auto spec = base_spec(mode, {sub.mbox}, sub.threads);
      ChainRuntime chain(spec);
      chain.start();
      tgen::Workload w;
      w.num_flows = 256;
      const auto r = measure_latency(chain, w, max_pps * frac);
      chain.stop();
      report.metric("mean_latency_us", r.mean_latency_us(),
                    {{"subfigure", sub.key},
                     {"system", mode_name(mode)},
                     {"load_pct", std::to_string(static_cast<int>(frac * 100))}});
      std::printf("  %6.0f", r.mean_latency_us());
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  print_header("Figure 8 — latency vs offered load",
               "flat sub-ms latency until saturation, then spikes; FTC "
               "close to NF, below FTMB");

  auto report = make_report("fig8_latency_load");
  run_subfigure(
      {"(a) Monitor, sharing level 8, 8 threads", "a", monitor(8), 8}, report);
  run_subfigure({"(b) MazuNAT, 1 thread", "b", mazu_nat(), 1}, report);
  run_subfigure({"(c) MazuNAT, 8 threads", "c", mazu_nat(), 8}, report);

  std::printf("\n(read each row left-to-right: latency should stay in the "
              "same order of magnitude until the load nears max)\n");
  finish_report(report);
  return 0;
}
