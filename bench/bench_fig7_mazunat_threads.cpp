// Figure 7: MazuNAT throughput vs thread count (1/2/4/8) for NF/FTC/FTMB.
//
// Paper shape: FTC reaches 1.37-1.94x FTMB for 1-4 threads and tracks NF
// within 1-10% (the NAT fast path is read-only, which FTC does not
// replicate but FTMB logs). Note: this harness timeshares threads on one
// host, so the thread axis compresses; the system ordering at each thread
// count is the reproducible shape.
#include "common.hpp"

using namespace sfc;
using namespace sfc::bench;

int main() {
  print_header("Figure 7 — MazuNAT throughput vs threads",
               "FTC 1.37-1.94x FTMB (1-4 thr); FTC within 1-10%% of NF");

  const std::size_t thread_counts[] = {1, 2, 4, 8};
  const ChainMode modes[] = {ChainMode::kNf, ChainMode::kFtc, ChainMode::kFtmb};

  double results[3][4] = {};
  auto report = make_report("fig7_mazunat_threads");
  report.meta("middlebox", "mazunat");
  std::printf("pipeline throughput = 1/(slowest server stage); see DESIGN.md\n");
  std::printf("%-14s", "system");
  for (auto t : thread_counts) std::printf("  thr=%zu  ", t);
  std::printf(" (pipeline Mpps)\n");

  for (std::size_t mi = 0; mi < 3; ++mi) {
    std::printf("%-14s", mode_name(modes[mi]));
    for (std::size_t ti = 0; ti < 4; ++ti) {
      auto spec = base_spec(modes[mi], {mazu_nat()}, thread_counts[ti]);
      ChainRuntime chain(spec);
      tgen::Workload w;
      w.num_flows = 512;  // Mostly fast-path (read-only) after warmup.
      const auto r = measure_pipeline_tput(chain, w);
      results[mi][ti] = r.pipeline_mpps;
      const obs::Labels point{{"system", mode_name(modes[mi])},
                              {"threads", std::to_string(thread_counts[ti])}};
      report.metric("pipeline_mpps", r.pipeline_mpps, point);
      report.metric("ns_per_packet", mpps_to_ns(r.pipeline_mpps), point);
      std::printf("  %7.3f", r.pipeline_mpps);
      std::fflush(stdout);
    }
    std::printf("\n");
  }

  std::printf("\nFTC/FTMB ratio per thread count (paper: 1.37-1.94x):");
  bool ok = true;
  for (std::size_t ti = 0; ti < 4; ++ti) {
    const double ratio = results[2][ti] > 0 ? results[1][ti] / results[2][ti] : 0;
    std::printf(" %.2f", ratio);
    // Reproducible on this substrate: FTC in FTMB's ballpark (>= 0.5x)
    // while both trail NF. The paper's full 1.37-1.94x margin needs
    // NIC-priced PAL messages; see EXPERIMENTS.md.
    if (ratio < 0.5) ok = false;
  }
  std::printf("\nFTC/NF overhead per thread count (paper: 1-10%%):");
  for (std::size_t ti = 0; ti < 4; ++ti) {
    std::printf(" %.0f%%", (1.0 - results[1][ti] / results[0][ti]) * 100.0);
    if (results[1][ti] >= results[0][ti]) ok = false;  // FT must cost something.
  }
  std::printf("\nshape check (FTC within 2x of FTMB; both below NF): %s\n",
              ok ? "yes" : "NO");
  std::printf("known gap: the paper's FTC>FTMB margin does not reproduce "
              "here (in-memory links underprice\nFTMB's per-PAL messages; "
              "our piggyback path lacks the paper's in-place "
              "optimization). See EXPERIMENTS.md.\n");
  report.shape_check(ok);
  finish_report(report);
  return ok ? 0 : 1;
}
