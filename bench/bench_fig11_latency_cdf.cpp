// Figure 11: CDF of per-packet latency through Ch-3 (single-threaded
// Monitors, sustainable load) for NF / FTC / FTMB.
//
// Paper shape: tight distributions; tail only moderately above the
// minimum; FTC sits between NF and FTMB, with no latency spikes (unlike
// snapshot-based systems).
#include "common.hpp"

using namespace sfc;
using namespace sfc::bench;

int main() {
  print_header("Figure 11 — per-packet latency CDF (Ch-3)",
               "tails moderately above min; NF < FTC < FTMB");

  const ChainMode modes[] = {ChainMode::kNf, ChainMode::kFtc, ChainMode::kFtmb,
                             ChainMode::kFtmbSnapshot};
  const double rate_pps = 20'000.0;

  double p50s[4] = {};
  auto report = make_report("fig11_latency_cdf");
  report.meta("chain", "ch3-monitor").meta("rate_pps", rate_pps);
  std::printf("%-14s %8s %8s %8s %8s %8s   (us)\n", "system", "min", "p50",
              "p90", "p99", "p99.9");
  rt::Histogram hists[4];
  for (std::size_t mi = 0; mi < 4; ++mi) {
    auto spec = base_spec(modes[mi], ch_n(3, 1), /*threads=*/1);
    ChainRuntime chain(spec);
    chain.start();
    tgen::Workload w;
    const auto r = measure_latency(chain, w, rate_pps);
    chain.stop();
    hists[mi] = r.latency;
    report.metric_hist("latency_ns", r.latency,
                       {{"system", mode_name(modes[mi])}});
    report.metric("ns_per_op", r.latency.mean(),
                  {{"system", mode_name(modes[mi])}});
    p50s[mi] = static_cast<double>(r.latency.p50()) / 1000.0;
    std::printf("%-14s %8.1f %8.1f %8.1f %8.1f %8.1f\n", mode_name(modes[mi]),
                r.latency.min() / 1000.0, r.latency.p50() / 1000.0,
                r.latency.p90() / 1000.0, r.latency.p99() / 1000.0,
                r.latency.p999() / 1000.0);
  }

  // Print a compact CDF table (the figure's series) at fixed fractions.
  std::printf("\nCDF series (latency us at cumulative fraction):\n");
  std::printf("%-10s", "fraction");
  for (const auto mode : modes) std::printf(" %14s", mode_name(mode));
  std::printf("\n");
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999}) {
    std::printf("%-10.3f", q);
    for (std::size_t mi = 0; mi < 4; ++mi) {
      std::printf(" %14.1f", static_cast<double>(hists[mi].quantile(q)) / 1000.0);
    }
    std::printf("\n");
  }

  // Paper's claim for this figure: FTC's distribution is tight — "packets
  // experience constant latency" with no snapshot-style spikes (§7.4),
  // while checkpointing systems show multi-ms latency spikes. Compare
  // tail/median spread.
  const double ftc_spread =
      static_cast<double>(hists[1].p999()) / std::max<double>(1, hists[1].p50());
  const double snap_spread =
      static_cast<double>(hists[3].p999()) / std::max<double>(1, hists[3].p50());
  std::printf("\ntail spread p99.9/p50: FTC %.1fx vs FTMB+Snapshot %.1fx\n",
              ftc_spread, snap_spread);
  report.metric("ftc_tail_spread", ftc_spread);
  report.metric("snapshot_tail_spread", snap_spread);
  const bool ok = ftc_spread < snap_spread;
  std::printf("shape check (FTC tail tight; snapshotting spikes): %s\n",
              ok ? "yes" : "NO");
  report.shape_check(ok);
  finish_report(report);
  return ok ? 0 : 1;
}
