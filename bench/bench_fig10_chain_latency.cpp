// Figure 10: chain latency vs chain length (Ch-2..Ch-5, single-threaded
// Monitors, fixed sustainable load) for NF / FTC / FTMB.
//
// Paper shape: latency grows linearly with chain length for every system;
// FTC adds ~20 us per middlebox over NF (39-104 us total), FTMB ~35 us
// per middlebox (64-171 us total).
#include "common.hpp"
#include "obs/span.hpp"

using namespace sfc;
using namespace sfc::bench;

int main() {
  print_header("Figure 10 — latency vs chain length",
               "linear growth; FTC ~20 us/middlebox over NF, FTMB ~35 us");

  const std::size_t lengths[] = {2, 3, 4, 5};
  const ChainMode modes[] = {ChainMode::kNf, ChainMode::kFtc, ChainMode::kFtmb};
  const double rate_pps = 20'000.0;  // Sustainable by all systems here.

  double mean_us[3][4] = {};
  auto report = make_report("fig10_chain_latency");
  report.meta("middlebox", "monitor").meta("rate_pps", rate_pps);
  std::printf("%-14s", "system");
  for (auto n : lengths) std::printf("    Ch-%zu", n);
  std::printf("   (mean latency, us @ %.0f kpps)\n", rate_pps / 1000);

  for (std::size_t mi = 0; mi < 3; ++mi) {
    std::printf("%-14s", mode_name(modes[mi]));
    for (std::size_t li = 0; li < 4; ++li) {
      auto spec = base_spec(modes[mi], ch_n(lengths[li], 1), /*threads=*/1);
      ChainRuntime chain(spec);
      chain.start();
      // Sampled spans break the end-to-end number down per hop (FTMB
      // nodes are uninstrumented; NF/FTC chains report breakdowns).
      obs::SpanCollector spans(&chain.registry());
      tgen::Workload w;
      w.trace_sample = 16;
      const auto r = measure_latency(chain, w, rate_pps, &spans);
      const auto hops = obs::per_hop_breakdown(spans.snapshot());
      chain.stop();
      mean_us[mi][li] = r.mean_latency_us();
      const obs::Labels point{{"system", mode_name(modes[mi])},
                              {"chain_len", std::to_string(lengths[li])}};
      report.metric("mean_latency_us", r.mean_latency_us(), point);
      report.metric("ns_per_op", r.mean_latency_us() * 1e3, point);
      for (const auto& hop : hops) {
        obs::Labels labels = point;
        labels.emplace_back("pos", std::to_string(hop.position));
        report.metric_hist("hop_latency_ns", hop.hop_ns, labels);
        if (hop.process_ns.count() > 0) {
          report.metric_hist("hop_process_ns", hop.process_ns, labels);
        }
        if (hop.transit_ns.count() > 0) {
          report.metric_hist("hop_transit_ns", hop.transit_ns, labels);
        }
      }
      std::printf("  %6.1f", r.mean_latency_us());
    }
    std::printf("\n");
  }

  std::printf("\nFTC-NF overhead per length:");
  for (std::size_t li = 0; li < 4; ++li) {
    std::printf(" %+.1fus", mean_us[1][li] - mean_us[0][li]);
  }
  std::printf("  (paper: 39-104 us over Ch-2..Ch-5)\n");
  std::printf("FTMB-NF overhead per length:");
  for (std::size_t li = 0; li < 4; ++li) {
    std::printf(" %+.1fus", mean_us[2][li] - mean_us[0][li]);
  }
  std::printf("  (paper: 64-171 us)\n");

  // Shape reproducible here: latency grows with chain length for every
  // system, and FTC's overhead stays bounded by roughly one extra chain
  // transit (the egress buffer holds a packet until a successor packet
  // carries its wrap-around commits — tens of us at the paper's line
  // rate, a scheduler-scale transit here).
  bool ok = true;
  for (std::size_t mi = 0; mi < 3; ++mi) {
    if (mean_us[mi][3] < mean_us[mi][0]) ok = false;  // Grows with length.
  }
  if (mean_us[1][3] > 4.0 * mean_us[0][3]) ok = false;  // Bounded overhead.
  std::printf("shape check (latency grows with length for all systems; FTC "
              "overhead bounded by ~one transit): %s\n",
              ok ? "yes" : "NO");
  std::printf("note: absolute per-hop latency here is scheduler-dominated "
              "(~ms); the paper's us-scale\nFTC-vs-FTMB ordering is not "
              "observable at this granularity (see EXPERIMENTS.md).\n");
  report.shape_check(ok);
  finish_report(report);
  return ok ? 0 : 1;
}
