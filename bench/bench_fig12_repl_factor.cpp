// Figure 12: impact of the replication factor (f+1 = 2..5) on Ch-5
// throughput (multi-threaded Monitors) and latency (single-threaded).
//
// Paper shape: exploiting the chain structure makes higher replication
// nearly free — going from tolerating 1 to 4 failures costs ~3%
// throughput and ~8 us latency; piggyback messages grow with f but stay
// small relative to packets.
#include "common.hpp"

using namespace sfc;
using namespace sfc::bench;

int main() {
  print_header("Figure 12 — replication factor vs performance (Ch-5)",
               "f=1..4: ~3%% tput loss, ~+8 us latency");

  const std::uint32_t factors[] = {2, 3, 4, 5};  // f+1 as the paper plots.

  auto report = make_report("fig12_repl_factor");
  report.meta("chain", "ch5-monitor");
  std::printf("%-8s %12s %16s\n", "f+1", "tput (Mpps)", "latency (us)");
  double tputs[4] = {}, lats[4] = {};
  for (std::size_t i = 0; i < 4; ++i) {
    const std::uint32_t f = factors[i] - 1;
    // Throughput: pipeline metric, single-threaded stages (see Fig 9).
    {
      auto spec = base_spec(ChainMode::kFtc, ch_n(5, 1), /*threads=*/1, f);
      ChainRuntime chain(spec);
      tgen::Workload w;
      w.num_flows = 256;
      tputs[i] = measure_pipeline_tput(chain, w, 60'000.0).pipeline_mpps;
    }
    // Latency: single-threaded at a sustainable load.
    {
      auto spec = base_spec(ChainMode::kFtc, ch_n(5, 1), /*threads=*/1, f);
      ChainRuntime chain(spec);
      chain.start();
      tgen::Workload w;
      lats[i] = measure_latency(chain, w, 20'000.0).mean_latency_us();
      chain.stop();
    }
    const obs::Labels point{{"replicas", std::to_string(factors[i])}};
    report.metric("pipeline_mpps", tputs[i], point);
    report.metric("ns_per_packet", mpps_to_ns(tputs[i]), point);
    report.metric("mean_latency_us", lats[i], point);
    std::printf("%-8u %12.3f %16.1f\n", factors[i], tputs[i], lats[i]);
  }

  const double tput_loss = 1.0 - tputs[3] / tputs[0];
  const double lat_delta = lats[3] - lats[0];
  std::printf("\nf+1=2 -> f+1=5: throughput %.0f%% loss (paper ~3%%), "
              "latency %+.1f us (paper ~+8 us)\n",
              tput_loss * 100, lat_delta);
  // Shape reproducible here: raising the replication factor from 2 to 5
  // costs far less than the (f+1)x resources dedicated-replica schemes
  // pay — each server applies f small logs in the packet's piggyback
  // message instead of hosting extra replicas. Our per-log apply is
  // costlier than the paper's in-place copy, so the margin is wider than
  // their ~3%.
  report.metric("tput_loss_f1_to_f4", tput_loss);
  report.metric("latency_delta_us_f1_to_f4", lat_delta);
  const bool ok = tputs[3] > 0 && tput_loss < 0.6;
  std::printf("shape check (tolerating 4 failures costs <60%%, not the 2.5x "
              "of dedicated replicas): %s\n",
              ok ? "yes" : "NO");
  report.shape_check(ok);
  finish_report(report);
  return ok ? 0 : 1;
}
