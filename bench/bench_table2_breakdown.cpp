// Table 2: per-packet CPU-cycle breakdown for an FTC-enabled MazuNAT in a
// chain of length two.
//
// Paper values (cycles/packet): packet processing 355±12, locking 152±11,
// copying piggybacked state 58±6, forwarder 8±2, buffer 100±4. Like the
// paper ("the results only show the computational overhead and exclude
// device and network IO"), each component is costed in isolation on one
// core, so scheduler noise from the simulated cluster does not pollute
// the attribution. Shape to reproduce: transaction execution
// (processing + locking) dominates; piggyback copying, forwarder, and
// buffer are small constants.
#include <benchmark/benchmark.h>

#include "common.hpp"
#include "runtime/clock.hpp"

using namespace sfc;
using namespace sfc::bench;

namespace {

constexpr int kWarmupIters = 5'000;
constexpr int kIters = 200'000;

template <typename Fn>
double cycles_per_iter(Fn&& fn) {
  for (int i = 0; i < kWarmupIters; ++i) fn(i);
  const std::uint64_t c0 = rt::rdtsc();
  for (int i = 0; i < kIters; ++i) fn(i);
  return static_cast<double>(rt::rdtsc() - c0) / kIters;
}

}  // namespace

int main() {
  print_header("Table 2 — performance breakdown (MazuNAT, chain of 2)",
               "process 355 / locking 152 / piggyback copy 58 / fwd 8 / "
               "buffer 100 cycles per packet");

  // --- Packet transaction: MazuNAT fast path (established flow). ---
  mbox::MazuNat nat;
  state::StateStore store(16);
  state::TxnContext ctx(store);
  pkt::Packet packet;
  const tgen::Workload workload;
  pkt::PacketBuilder(packet).udp(workload.flow(0), 256);
  {
    // Install the mapping so the loop measures the read fast path.
    auto parsed = pkt::parse_packet(packet);
    mbox::ProcessContext pctx;
    state::run_transaction(ctx, [&](state::Txn& t) {
      pctx.deferred_rewrite.reset();
      nat.process(t, packet, *parsed, pctx);
    });
  }
  const double txn_cycles = cycles_per_iter([&](int) {
    auto parsed = pkt::parse_packet(packet);
    mbox::ProcessContext pctx;
    state::run_transaction(ctx, [&](state::Txn& t) {
      pctx.deferred_rewrite.reset();
      nat.process(t, packet, *parsed, pctx);
    });
  });

  // --- Locking share: the same transaction skeleton without the NAT. ---
  const state::Key key = workload.flow(0).hash();
  const double locking_cycles = cycles_per_iter([&](int) {
    state::run_transaction(ctx, [&](state::Txn& t) { (void)t.contains(key); });
  });
  const double processing_cycles = txn_cycles - locking_cycles;

  // --- Copying piggybacked state: append+extract of a NAT-sized log. ---
  ftc::PiggybackMessage msg;
  ftc::PiggybackLog log;
  log.mbox = 0;
  log.dep.mask = 1ULL << store.partition_of(key);
  log.dep.seq[store.partition_of(key)] = 1;
  mbox::NatEntry entry{};
  log.writes.push_back({key, state::Bytes::of(entry), false});
  msg.logs.push_back(std::move(log));
  const double piggyback_cycles = cycles_per_iter([&](int) {
    ftc::append_message(packet, msg, 16);
    auto extracted = ftc::extract_message(packet);
    benchmark::DoNotOptimize(extracted);
  });

  // --- Forwarder: merge one pending feedback message onto a packet. ---
  ftc::ChainConfig cfg;
  ftc::FeedbackChannel feedback;
  ftc::Forwarder forwarder(feedback, cfg);
  const double forwarder_cycles = cycles_per_iter([&](int) {
    feedback.push(ftc::PiggybackMessage{});
    auto merged = forwarder.collect();
    benchmark::DoNotOptimize(merged);
  });

  // --- Buffer: submit with covered logs (immediate release) + feedback. ---
  pkt::PacketPool pool(64);
  net::Link egress(pool, net::LinkConfig{});
  ftc::FeedbackChannel buf_feedback;
  ftc::EgressBuffer buffer(pool, egress, buf_feedback);
  const double buffer_cycles = cycles_per_iter([&](int) {
    pkt::Packet* p = pool.alloc_raw();
    ftc::PiggybackMessage m;
    m.set_commit(0, ftc::MaxVector{});
    buffer.submit(p, std::move(m));
    pool.free_raw(egress.poll());
  });

  std::printf("%-38s %10s %10s\n", "component (cycles/packet)", "measured",
              "paper");
  std::printf("%-38s %10.0f %10s\n", "packet processing (NAT fast path)",
              processing_cycles, "355");
  std::printf("%-38s %10.0f %10s\n", "locking (txn skeleton)", locking_cycles,
              "152");
  std::printf("%-38s %10.0f %10s\n", "copying piggybacked state",
              piggyback_cycles, "58");
  std::printf("%-38s %10.0f %10s\n", "forwarder", forwarder_cycles, "8");
  std::printf("%-38s %10.0f %10s\n", "buffer", buffer_cycles, "100");

  // Reproducible shape: locking tracks the paper closely and every FTC
  // component stays within the same order of magnitude as transaction
  // execution — no component is a 10x outlier. (Our forwarder/buffer use
  // general-purpose queues+mutexes where the paper's Click elements pass
  // pointers, and our piggyback handling is serialize-based rather than
  // in-place, so those constants sit above the paper's; see
  // EXPERIMENTS.md.)
  const bool locking_ok = locking_cycles > 152 / 3.0 && locking_cycles < 152 * 3.0;
  const bool same_order = piggyback_cycles < 10 * txn_cycles &&
                          forwarder_cycles < 10 * txn_cycles &&
                          buffer_cycles < 10 * txn_cycles;
  std::printf("\nshape check (locking within 3x of paper\x27s 152 cycles; FTC components "
              "within one order of transaction cost): %s\n",
              locking_ok && same_order ? "yes" : "NO");

  auto report = make_report("table2_breakdown");
  report.meta("middlebox", "mazunat").meta("iters", kIters);
  report.metric("processing_cycles", processing_cycles);
  report.metric("locking_cycles", locking_cycles);
  report.metric("piggyback_cycles", piggyback_cycles);
  report.metric("forwarder_cycles", forwarder_cycles);
  report.metric("buffer_cycles", buffer_cycles);
  const double total_cycles = processing_cycles + locking_cycles +
                              piggyback_cycles + forwarder_cycles +
                              buffer_cycles;
  report.metric("ns_per_packet",
                total_cycles * 1e9 / static_cast<double>(rt::tsc_hz()));
  report.shape_check(locking_ok && same_order);
  finish_report(report);
  return locking_ok && same_order ? 0 : 1;
}
