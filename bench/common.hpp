// Shared helpers for the paper-reproduction benchmarks.
//
// Each bench_* binary regenerates one table or figure of the FTC paper
// (SIGCOMM'20): it builds the chains of Table 1, drives them with the
// tgen workloads, and prints the same rows/series the paper reports,
// alongside the paper's published values. Absolute numbers differ (the
// paper ran on a 12-server 40 GbE DPDK cluster; this harness runs a
// simulated cluster on one host) — the comparison targets the *shape*:
// system ordering, ratios, and trends.
#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/chain.hpp"
#include "mbox/firewall.hpp"
#include "obs/export.hpp"
#include "mbox/gen.hpp"
#include "mbox/monitor.hpp"
#include "mbox/nat.hpp"
#include "orch/orchestrator.hpp"
#include "tgen/traffic.hpp"

namespace sfc::bench {

using ftc::ChainMode;
using ftc::ChainRuntime;
using ftc::FtcNode;

/// Version of the BENCH_*.json layout. Bump when metric names or meta
/// keys change shape; CI validators key on it. v2 added schema_version
/// itself, ns_per_packet/ns_per_op companions, and the budget.* rows.
inline constexpr std::uint64_t kBenchSchemaVersion = 2;

/// ns/packet companion of a rate in Mpps (0 when the rate is 0).
inline double mpps_to_ns(double mpps) { return mpps > 0 ? 1e3 / mpps : 0.0; }

/// Measurement window per data point. Override with FTC_BENCH_SECONDS.
inline double point_seconds() {
  if (const char* env = std::getenv("FTC_BENCH_SECONDS")) {
    const double v = std::atof(env);
    if (v > 0) return v;
  }
  return 0.6;
}

inline double warmup_seconds() { return 0.25; }

// --- Middlebox factories (Table 1). ---

inline FtcNode::MboxFactory monitor(std::uint32_t sharing_level) {
  return [sharing_level]() -> std::unique_ptr<mbox::Middlebox> {
    return std::make_unique<mbox::Monitor>(sharing_level);
  };
}

inline FtcNode::MboxFactory mazu_nat() {
  return []() -> std::unique_ptr<mbox::Middlebox> {
    return std::make_unique<mbox::MazuNat>();
  };
}

inline FtcNode::MboxFactory simple_nat() {
  return []() -> std::unique_ptr<mbox::Middlebox> {
    return std::make_unique<mbox::SimpleNat>();
  };
}

inline FtcNode::MboxFactory gen(std::uint32_t state_size,
                                bool per_flow = false) {
  return [state_size, per_flow]() -> std::unique_ptr<mbox::Middlebox> {
    return std::make_unique<mbox::Gen>(state_size, per_flow);
  };
}

inline FtcNode::MboxFactory firewall() {
  return []() -> std::unique_ptr<mbox::Middlebox> {
    return std::make_unique<mbox::Firewall>();
  };
}

/// Chain spec with the defaults used throughout the evaluation: f=1,
/// 16 state partitions, 256 B packets (overridden per experiment).
inline ChainRuntime::Spec base_spec(ChainMode mode,
                                    std::vector<FtcNode::MboxFactory> mboxes,
                                    std::size_t threads = 1,
                                    std::uint32_t f = 1) {
  ChainRuntime::Spec spec;
  spec.mode = mode;
  spec.cfg.f = f;
  spec.cfg.threads_per_node = threads;
  spec.cfg.num_partitions = 16;
  spec.cfg.pool_packets = 4096;
  spec.cfg.propagate_interval_ns = 100'000;
  spec.mbox_factories = std::move(mboxes);
  return spec;
}

/// Ch-n of the paper's Table 1: Monitor_1 -> ... -> Monitor_n.
inline std::vector<FtcNode::MboxFactory> ch_n(std::size_t n,
                                              std::uint32_t sharing = 1) {
  std::vector<FtcNode::MboxFactory> mboxes;
  for (std::size_t i = 0; i < n; ++i) mboxes.push_back(monitor(sharing));
  return mboxes;
}

/// Ch-Rec: Firewall -> Monitor -> SimpleNAT.
inline std::vector<FtcNode::MboxFactory> ch_rec() {
  return {firewall(), monitor(1), simple_nat()};
}

/// Warmup/measurement boundary: drop warmup samples so the registry
/// snapshot in the report covers the measured window only.
inline std::function<void()> reset_at_measure(ChainRuntime& chain,
                                              obs::SpanCollector* spans =
                                                  nullptr) {
  return [&chain, spans] {
    chain.registry().reset_counters();
    if (spans != nullptr) spans->clear();
  };
}

/// Maximum-throughput measurement (paper: max sustained rate).
inline tgen::RunResult measure_tput(ChainRuntime& chain,
                                    const tgen::Workload& workload,
                                    obs::SpanCollector* spans = nullptr) {
  return tgen::run_load(chain.pool(), chain.ingress(), chain.egress(),
                        workload, /*rate_pps=*/0.0, point_seconds(),
                        warmup_seconds(), spans,
                        reset_at_measure(chain, spans));
}

/// Latency at a fixed offered load.
inline tgen::RunResult measure_latency(ChainRuntime& chain,
                                       const tgen::Workload& workload,
                                       double rate_pps,
                                       obs::SpanCollector* spans = nullptr) {
  return tgen::run_load(chain.pool(), chain.ingress(), chain.egress(),
                        workload, rate_pps, point_seconds(), warmup_seconds(),
                        spans, reset_at_measure(chain, spans));
}

inline const char* mode_name(ChainMode m) { return ftc::to_string(m); }

/// Enables per-stage busy-cycle accounting on every server of the chain.
inline void enable_accounting(ChainRuntime& chain) {
  for (std::uint32_t pos = 0; pos < chain.ring_size(); ++pos) {
    if (auto* n = chain.ftc_node(pos)) n->enable_cycle_accounting(true);
    if (auto* n = chain.nf_node(pos)) n->enable_cycle_accounting(true);
    if (auto* n = chain.ftmb_master(pos)) n->enable_cycle_accounting(true);
    if (auto* n = chain.ftmb_logger(pos)) n->enable_cycle_accounting(true);
  }
}

/// Pipeline throughput (Mpps): the rate a real one-server-per-stage
/// deployment of this chain would sustain, i.e. 1 / (busy time of the
/// slowest stage). This is the faithful throughput metric on a host that
/// timeshares all simulated servers on few cores: wall-clock Mpps there
/// measures the SUM of all stages' work, which no real chain deployment
/// pays on one machine (each middlebox has its own server in the paper's
/// testbed).
inline double pipeline_mpps(ChainRuntime& chain) {
  double max_cycles = 0;
  for (std::uint32_t pos = 0; pos < chain.ring_size(); ++pos) {
    if (auto* n = chain.ftc_node(pos)) {
      max_cycles = std::max(max_cycles, n->busy_cycles_per_packet());
    }
    if (auto* n = chain.nf_node(pos)) {
      max_cycles = std::max(max_cycles, n->busy_cycles_per_packet());
    }
    if (auto* n = chain.ftmb_master(pos)) {
      max_cycles = std::max(max_cycles, n->busy_cycles_per_packet());
    }
    if (auto* n = chain.ftmb_logger(pos)) {
      max_cycles = std::max(max_cycles, n->busy_cycles_per_packet());
    }
  }
  if (max_cycles <= 0) return 0;
  const double ns_per_packet = max_cycles / (rt::tsc_hz() * 1e-9);
  return 1e3 / ns_per_packet;  // 1e9 / ns * 1e-6.
}

/// Runs a chain at a moderate fixed rate to collect clean per-stage busy
/// costs (saturation would pollute cycle samples with preemption), then
/// reports pipeline throughput alongside the timeshared delivered rate.
struct TputResult {
  double pipeline_mpps{0};
  double timeshared_mpps{0};
};

inline TputResult measure_pipeline_tput(ChainRuntime& chain,
                                        const tgen::Workload& workload,
                                        double probe_rate_pps = 100'000.0) {
  enable_accounting(chain);
  chain.start();
  TputResult out;
  const std::uint64_t t0 = rt::now_ns();
  std::uint64_t stall0 = 0;
  for (std::uint32_t pos = 0; pos < chain.ring_size(); ++pos) {
    if (auto* m = chain.ftmb_master(pos)) stall0 += m->stall_ns_total();
  }
  const auto probe = tgen::run_load(chain.pool(), chain.ingress(),
                                    chain.egress(), workload, probe_rate_pps,
                                    point_seconds(), warmup_seconds());
  (void)probe;
  out.pipeline_mpps = pipeline_mpps(chain);
  // Snapshot stalls halt the whole pipeline while any master checkpoints
  // (paper §7.4: per-middlebox snapshots pipeline-stall the chain, and
  // more snapshots are taken in a longer chain).
  std::uint64_t stall1 = 0;
  for (std::uint32_t pos = 0; pos < chain.ring_size(); ++pos) {
    if (auto* m = chain.ftmb_master(pos)) stall1 += m->stall_ns_total();
  }
  const double elapsed = static_cast<double>(rt::now_ns() - t0);
  const double availability =
      std::max(0.05, 1.0 - static_cast<double>(stall1 - stall0) / elapsed);
  out.pipeline_mpps *= availability;
  out.timeshared_mpps =
      measure_tput(chain, workload).delivered_mpps;  // Saturated run.
  chain.stop();
  return out;
}

/// Paced budget-attribution probe. The chain must have been built with
/// cfg.profile (and usually cfg.quiet_assert) set. Runs a NON-saturating
/// load — quiet mode asserts the absence of steady-state slow paths, and
/// deliberate over-injection makes pool exhaustion ordinary backpressure,
/// not a bug — arming quiet and zeroing the accumulators at the
/// warmup/measure boundary so the budget covers the steady window only.
/// Quiet stays armed through the measured window; read the verdict via
/// chain.profiler()->quiet_ok() and the table via ->report().
inline tgen::RunResult measure_budget(ChainRuntime& chain,
                                      const tgen::Workload& workload,
                                      double rate_pps) {
  chain.start();
  obs::HotProfiler* prof = chain.profiler();
  const bool arm = chain.spec().cfg.quiet_assert;
  const auto r = tgen::run_load(
      chain.pool(), chain.ingress(), chain.egress(), workload, rate_pps,
      point_seconds(), warmup_seconds(), nullptr, [&chain, prof, arm] {
        chain.registry().reset_counters();
        if (prof != nullptr) {
          prof->reset();
          if (arm) prof->arm_quiet();
        }
      });
  if (prof != nullptr) prof->disarm_quiet();
  chain.stop();
  return r;
}

/// Machine-readable result file seeded with the run parameters every
/// bench shares. Callers add their headline metrics + shape check, then
/// call finish_report().
inline obs::Report make_report(const char* name) {
  obs::Report report(name);
  report.meta("schema_version", kBenchSchemaVersion);
  report.meta("point_seconds", point_seconds());
  report.meta("warmup_seconds", warmup_seconds());
  return report;
}

/// Writes the report (BENCH_<name>.json, honoring $FTC_BENCH_JSON_DIR)
/// and tells the user where it went. Passing the chain's registry flushes
/// its full metric snapshot (counters, gauges, timer quantiles) into the
/// report under the "registry" label so runs carry their raw telemetry.
inline void finish_report(obs::Report& report,
                          const obs::Registry* registry = nullptr) {
  if (registry != nullptr) {
    report.add_snapshot(*registry, obs::Labels{{"source", "registry"}});
  }
  const std::string path = report.write();
  if (path.empty()) {
    std::fprintf(stderr, "warning: failed to write bench JSON report\n");
  } else {
    std::printf("results: %s\n", path.c_str());
  }
}

/// Header block every bench prints.
inline void print_header(const char* experiment, const char* paper_summary) {
  std::printf("=====================================================================\n");
  std::printf("%s\n", experiment);
  std::printf("  paper (40GbE DPDK cluster): %s\n", paper_summary);
  std::printf("  this run: simulated multi-server chain on one host; compare\n");
  std::printf("  shapes/ratios, not absolute Mpps.\n");
  std::printf("=====================================================================\n");
}

}  // namespace sfc::bench
