// Figure 13: recovery time of each middlebox of Ch-Rec
// (Firewall -> Monitor -> SimpleNAT) deployed across cloud regions, split
// into initialization delay and state recovery delay.
//
// Paper shape (SAVI multi-region cloud): initialization 1.2 / 49.8 /
// 5.3 ms for Firewall / Monitor / SimpleNAT — growing with the
// orchestrator-to-replica distance; state recovery 114-271 ms, dominated
// by WAN RTT; rerouting negligible; replication factor has little effect
// because fetches run in parallel.
#include "common.hpp"
#include "obs/span.hpp"

using namespace sfc;
using namespace sfc::bench;

namespace {

// Region plan mirroring the paper: the orchestrator shares a region with
// the Firewall; SimpleNAT is one "hop" away, Monitor is remote.
struct Site {
  const char* name;
  std::uint32_t position;
  std::uint64_t orch_one_way_ns;  // Orchestrator <-> site WAN delay.
};

constexpr Site kSites[] = {
    {"Firewall", 0, 500'000},       // Same region: ~0.5 ms.
    {"Monitor", 1, 25'000'000},     // Remote region: 25 ms one way.
    {"SimpleNAT", 2, 3'000'000},    // Neighbor region: 3 ms one way.
};

// --- Reliable-transport WAN sweep (fig13 companion). ---
//
// The paper's recovery experiment runs over WAN links; this sweep checks
// the substrate those numbers depend on: with the windowed reliable
// transport on every segment, the chain must lose NOTHING end to end at
// wire loss up to 5%, and the adaptive RTO must track the configured
// link delay (within 4x of the RTT) instead of sitting at a fixed value.
constexpr double kSweepLoss[] = {0.0, 0.01, 0.05};
constexpr std::uint64_t kSweepDelayNs[] = {200'000, 1'000'000, 5'000'000};

bool run_reliable_sweep(obs::Report& report) {
  bool all_ok = true;
  std::printf("\n--- reliable transport: loss x delay sweep ---\n");
  std::printf("%8s %10s %10s %10s %10s %10s  %s\n", "loss", "delay_us",
              "sent", "delivered", "srtt_us", "rto_us", "status");
  for (const double loss : kSweepLoss) {
    for (const std::uint64_t delay_ns : kSweepDelayNs) {
      auto spec = base_spec(ChainMode::kFtc, ch_n(2));
      spec.cfg.transport = ftc::TransportMode::kReliable;
      spec.cfg.reliable.rto_min_ns = 100'000;
      spec.cfg.link.loss = loss;
      spec.cfg.link.delay_ns = delay_ns;
      ChainRuntime chain(spec);
      chain.start();

      tgen::Workload w;
      w.burst = 32;
      tgen::TrafficSource source(chain.pool(), chain.ingress(), w, 20'000.0);
      tgen::TrafficSink sink(chain.pool(), chain.egress());
      sink.start();
      source.start();
      std::this_thread::sleep_for(std::chrono::duration<double>(
          point_seconds()));
      source.stop();

      // Retransmission hides wire loss but takes RTOs to finish: wait for
      // full quiescence, then let the sink drain the egress queue.
      const std::uint64_t quiesce_deadline = rt::now_ns() + 30'000'000'000ull;
      while (!chain.quiescent() && rt::now_ns() < quiesce_deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      const std::uint64_t sent = source.packets_sent();
      const std::uint64_t drain_deadline = rt::now_ns() + 5'000'000'000ull;
      while (sink.packets_received() < sent &&
             rt::now_ns() < drain_deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      const std::uint64_t delivered = sink.packets_received();

      // The live adaptive estimate, read off the segment channels.
      std::uint64_t rto_ns = 0;
      std::uint64_t srtt_ns = 0;
      for (std::size_t i = 0; i < chain.num_segments(); ++i) {
        rto_ns = std::max(rto_ns, chain.segment(i).rto_ns());
        if (auto* ch =
                dynamic_cast<net::ReliableChannel*>(&chain.segment(i))) {
          srtt_ns = std::max(srtt_ns, ch->srtt_ns());
        }
      }
      sink.stop();
      chain.stop();

      const bool lossless = sent > 0 && delivered == sent;
      // RTO must cover the RTT but track it: within 4x, plus an absolute
      // noise floor — RTT samples include node drain latency, and on an
      // oversubscribed host that scheduling noise is ~ms, which dominates
      // the wire at the smallest delays. The failure mode this guards
      // against (estimator feedback runaway) parks the RTO at rto_max,
      // hundreds of ms past this bound.
      const std::uint64_t rtt_ns = 2 * delay_ns;
      const bool rto_tracks =
          rto_ns >= rtt_ns / 2 && rto_ns <= 4 * rtt_ns + 10'000'000;
      const bool ok = lossless && rto_tracks;
      all_ok = all_ok && ok;

      const obs::Labels labels{
          {"loss", std::to_string(loss)},
          {"delay_us", std::to_string(delay_ns / 1000)}};
      report.metric("sweep_sent", static_cast<double>(sent), labels);
      report.metric("sweep_delivered", static_cast<double>(delivered),
                    labels);
      report.metric("sweep_lossless", lossless ? 1.0 : 0.0, labels);
      report.metric("sweep_srtt_ns", static_cast<double>(srtt_ns), labels);
      report.metric("sweep_rto_ns", static_cast<double>(rto_ns), labels);
      report.metric("sweep_rto_tracks_delay", rto_tracks ? 1.0 : 0.0,
                    labels);
      // Sweep op = one delivered round trip; keeps ns_per_op present in
      // sweep-only (CI) runs of this bench.
      report.metric("ns_per_op", static_cast<double>(srtt_ns), labels);
      std::printf("%8.2f %10llu %10llu %10llu %10.1f %10.1f  %s\n", loss,
                  static_cast<unsigned long long>(delay_ns / 1000),
                  static_cast<unsigned long long>(sent),
                  static_cast<unsigned long long>(delivered), srtt_ns / 1e3,
                  rto_ns / 1e3,
                  ok ? "ok" : (lossless ? "RTO OFF-TRACK" : "LOST PACKETS"));
    }
  }
  return all_ok;
}

}  // namespace

int main() {
  print_header("Figure 13 — recovery time per middlebox of Ch-Rec",
               "init 1.2/49.8/5.3 ms ~ distance to orchestrator; state "
               "recovery 114-271 ms ~ WAN; rerouting negligible");

  std::printf("%-12s %16s %18s %14s %12s\n", "middlebox", "init (ms)",
              "state rec (ms)", "reroute (ms)", "total (ms)");

  auto report = make_report("fig13_recovery");
  report.meta("chain", "ch-rec").meta("bandwidth_gbps", 1.0);

  // CI smoke: FTC_FIG13_SWEEP_ONLY=1 runs just the reliable-transport
  // loss x delay sweep (fast, deterministic pass/fail) and skips the
  // WAN recovery measurement.
  if (std::getenv("FTC_FIG13_SWEEP_ONLY") != nullptr) {
    report.meta("sweep_only", 1.0);
    const bool sweep_ok = run_reliable_sweep(report);
    std::printf("\nsweep check (lossless + RTO tracks delay): %s\n",
                sweep_ok ? "yes" : "NO");
    report.shape_check(sweep_ok);
    finish_report(report);
    return sweep_ok ? 0 : 1;
  }

  bool ordering_ok = true;
  double init_ms[3] = {};
  for (const auto& site : kSites) {
    auto spec = base_spec(ChainMode::kFtc, ch_rec());
    ChainRuntime chain(spec);
    auto& ctrl = chain.control();
    // Region plan: orchestrator in region 100, each site in its own
    // region; ~10 ms between sites (inter-region fetches dominate state
    // recovery) and a site-specific orchestrator distance. Replacement
    // replicas inherit their site's region (paper: the new replica is
    // placed in the failed middlebox's region).
    ctrl.set_region(net::kOrchestratorNode, 100);
    ctrl.set_inter_region_delay(10'000'000);
    for (const auto& s : kSites) {
      chain.set_position_region(s.position, s.position);
      ctrl.set_region_delay(100, s.position, s.orch_one_way_ns);
    }
    // State transfers are bandwidth-limited too (1 Gbps control links).
    ctrl.set_bandwidth_gbps(1.0);
    chain.start();

    // Span collector: the recovery phases (fail -> detect -> spawn ->
    // fetch -> reroute) land here and become the timeline columns.
    obs::SpanCollector spans(&chain.registry());

    // The failure timeout must cover the 50 ms WAN heartbeat RTT to the
    // remote region plus scheduling noise on an oversubscribed host
    // while traffic runs, or a healthy node gets "detected". Detection
    // delay is reported separately (time_to_detect_ms) and does not
    // contaminate the init/state-recovery/rerouting split.
    orch::OrchestratorConfig ocfg;
    ocfg.failure_timeout_ns = 1'000'000'000;
    ocfg.spawn_delay_ns = 200'000;  // Container spawn.
    orch::Orchestrator orchestrator(chain, ocfg);
    orchestrator.start();  // Monitor-driven detection, as deployed.

    // Build some state, then fail the middlebox under test.
    tgen::Workload w;
    w.num_flows = 128;
    tgen::TrafficSource source(chain.pool(), chain.ingress(), w, 30'000.0);
    tgen::TrafficSink sink(chain.pool(), chain.egress());
    sink.start();
    source.start();
    const auto deadline = rt::now_ns() + 10'000'000'000ull;
    while (sink.packets_received() < 500 && rt::now_ns() < deadline) {
      std::this_thread::yield();
    }
    source.stop();

    chain.fail_position(site.position);
    // The monitor notices the missed heartbeats and runs recovery; wait
    // for the report covering the failed position (cap well above
    // timeout + WAN fetch time).
    const orch::RecoveryReport* site_report = nullptr;
    std::vector<orch::RecoveryReport> reports;
    const auto recover_deadline = rt::now_ns() + 30'000'000'000ull;
    while (!site_report && rt::now_ns() < recover_deadline) {
      reports = orchestrator.reports();
      for (const auto& rep : reports) {
        if (rep.position == site.position) site_report = &rep;
      }
      if (!site_report) std::this_thread::yield();
    }
    orchestrator.stop();
    sink.stop();
    chain.stop();
    const auto timelines = obs::recovery_timelines(spans.snapshot());

    if (!site_report || !site_report->success) {
      std::printf("%-12s RECOVERY FAILED\n", site.name);
      report.shape_check(false);
      finish_report(report);
      return 1;
    }
    const auto& r = *site_report;
    init_ms[site.position] = r.initialization_ns / 1e6;
    const obs::Labels site_labels{{"middlebox", site.name}};
    report.metric("initialization_ms", r.initialization_ns / 1e6, site_labels);
    report.metric("state_recovery_ms", r.state_recovery_ns / 1e6, site_labels);
    report.metric("rerouting_ms", r.rerouting_ns / 1e6, site_labels);
    report.metric("total_ms", r.total_ns / 1e6, site_labels);
    // One recovery is the "op" of this bench: ns_per_op keys the schema-v2
    // cost comparison the other benches express per packet.
    report.metric("ns_per_op", static_cast<double>(r.total_ns), site_labels);
    std::printf("%-12s %16.1f %18.1f %14.3f %12.1f\n", site.name,
                r.initialization_ns / 1e6, r.state_recovery_ns / 1e6,
                r.rerouting_ns / 1e6, r.total_ns / 1e6);

    // Recovery timeline from spans: how long each phase of fail ->
    // detect -> spawn -> init-ack -> fetch -> reroute took.
    for (const auto& tl : timelines) {
      if (tl.position != site.position || !tl.complete()) continue;
      report.metric("time_to_detect_ms", tl.time_to_detect_ns() / 1e6,
                    site_labels);
      report.metric("time_to_fetch_ms", tl.time_to_fetch_ns() / 1e6,
                    site_labels);
      report.metric("time_to_reroute_ms", tl.time_to_reroute_ns() / 1e6,
                    site_labels);
      report.metric("timeline_total_ms", tl.total_ns() / 1e6, site_labels);
      std::printf("  timeline: detect %.1f ms, fetch done %.1f ms, "
                  "rerouted %.1f ms after failure\n",
                  tl.time_to_detect_ns() / 1e6, tl.time_to_fetch_ns() / 1e6,
                  tl.time_to_reroute_ns() / 1e6);
    }
  }

  // Shape: initialization ordering follows orchestrator distance
  // (Firewall < SimpleNAT < Monitor), as in the paper.
  ordering_ok = init_ms[0] < init_ms[2] && init_ms[2] < init_ms[1];
  std::printf("\nshape check (init delay ordering Firewall < SimpleNAT < "
              "Monitor): %s\n",
              ordering_ok ? "yes" : "NO");

  const bool sweep_ok = run_reliable_sweep(report);
  std::printf("\nsweep check (lossless + RTO tracks delay): %s\n",
              sweep_ok ? "yes" : "NO");

  report.shape_check(ordering_ok && sweep_ok);
  finish_report(report);
  return ordering_ok && sweep_ok ? 0 : 1;
}
