// Figure 9: maximum chain throughput vs chain length (Ch-2 .. Ch-5,
// Monitors with sharing level 1, 8 threads) for NF / FTC / FTMB /
// FTMB+Snapshot.
//
// Paper shape: FTC throughput is largely independent of chain length
// (2-7% drop from Ch-2 to Ch-5, within 6-13% of NF); FTMB is roughly
// half of FTC; FTMB+Snapshot degrades sharply with chain length
// (13-39% drop, 3.94 -> 2.42 Mpps) because per-middlebox snapshot stalls
// pipeline the whole chain.
#include "common.hpp"

using namespace sfc;
using namespace sfc::bench;

int main() {
  print_header("Figure 9 — throughput vs chain length (Ch-2..Ch-5)",
               "FTC flat (8.28-8.92), FTMB ~half (4.80-4.83), "
               "FTMB+Snapshot 3.94->2.42 Mpps");

  // CI budget-gate hook: skip the mode/length grid and burst sweep, run
  // only the profiled Ch-3 FTC budget probe below.
  const bool budget_only = std::getenv("FTC_FIG9_BUDGET_ONLY") != nullptr;

  const std::size_t lengths[] = {2, 3, 4, 5};
  const ChainMode modes[] = {ChainMode::kNf, ChainMode::kFtc, ChainMode::kFtmb,
                             ChainMode::kFtmbSnapshot};
  // Threads per node: the paper uses 8 (on 8 real cores per server). This
  // harness timeshares every simulated server on one host, where extra
  // threads only add scheduler noise to the per-stage cost samples, so the
  // chain-length axis is measured single-threaded (the thread axis is
  // Figure 7's).
  const std::size_t threads = 1;

  double results[4][4] = {};
  auto report = make_report("fig9_chain_tput");
  report.meta("middlebox", "monitor").meta("threads",
                                           static_cast<std::uint64_t>(threads));
  std::printf("pipeline throughput = 1/(slowest server stage); see DESIGN.md\n");
  std::printf("%-16s", "system");
  for (auto n : lengths) std::printf("   Ch-%zu ", n);
  std::printf("  (pipeline Mpps)\n");

  bool ok = true;
  if (!budget_only) {
  for (std::size_t mi = 0; mi < 4; ++mi) {
    std::printf("%-16s", mode_name(modes[mi]));
    for (std::size_t li = 0; li < 4; ++li) {
      auto spec = base_spec(modes[mi], ch_n(lengths[li], 1), threads);
      ChainRuntime chain(spec);
      tgen::Workload w;
      w.num_flows = 256;
      const auto r = measure_pipeline_tput(chain, w, 60'000.0);
      results[mi][li] = r.pipeline_mpps;
      const obs::Labels point{{"system", mode_name(modes[mi])},
                              {"chain_len", std::to_string(lengths[li])}};
      report.metric("pipeline_mpps", r.pipeline_mpps, point);
      report.metric("ns_per_packet", mpps_to_ns(r.pipeline_mpps), point);
      std::printf("  %6.3f", r.pipeline_mpps);
      std::fflush(stdout);
    }
    std::printf("\n");
  }

  // Burst-size sweep on the no-loss Ch-3 FTC chain at data-path burst
  // sizes 1/8/32/128 (burst 1 is the pre-batching per-packet path; 32 is
  // the default everywhere else). Unlike the grid above, this probes near
  // the timeshared saturation rate: a lightly paced probe releases one
  // packet per credit, so queues stay empty and every poll returns a
  // single packet regardless of burst_size — batching only engages under
  // backlog. Far above saturation is wrong too: on a host timesharing all
  // simulated servers, overload grows the egress buffer's held list and
  // pollutes the cycle samples with scan work that a provisioned
  // deployment would not pay.
  const std::size_t bursts[] = {1, 8, 32, 128};
  double burst_mpps[4] = {};
  std::printf("\n%-16s", "FTC Ch-3 burst");
  for (auto b : bursts) std::printf("   b=%-3zu", b);
  std::printf("\n%-16s", "");
  for (std::size_t bi = 0; bi < 4; ++bi) {
    auto spec = base_spec(ChainMode::kFtc, ch_n(3, 1), threads);
    spec.cfg.burst_size = bursts[bi];
    ChainRuntime chain(spec);
    tgen::Workload w;
    w.num_flows = 256;
    w.burst = bursts[bi];
    const auto r = measure_pipeline_tput(chain, w, 200'000.0);
    burst_mpps[bi] = r.pipeline_mpps;
    const obs::Labels point{{"system", "FTC"},
                            {"chain_len", "3"},
                            {"burst", std::to_string(bursts[bi])}};
    report.metric("timeshared_mpps", r.timeshared_mpps, point);
    report.metric("pipeline_mpps", r.pipeline_mpps, point);
    report.metric("ns_per_packet", mpps_to_ns(r.pipeline_mpps), point);
    std::printf("  %6.3f", r.pipeline_mpps);
    std::fflush(stdout);
  }
  const double burst_speedup =
      burst_mpps[0] > 0 ? burst_mpps[2] / burst_mpps[0] : 0.0;
  std::printf("\nburst-32 / burst-1 speedup: %.2fx\n", burst_speedup);
  report.metric("burst32_over_burst1_speedup", burst_speedup);

  const double ftc_drop = 1.0 - results[1][3] / results[1][0];
  const double snap_drop = 1.0 - results[3][3] / results[3][0];
  std::printf("\nFTC drop Ch-2 -> Ch-5: %.0f%% (paper: 2-7%%)\n", ftc_drop * 100);
  std::printf("FTMB+Snapshot drop Ch-2 -> Ch-5: %.0f%% (paper: 13-39%%)\n",
              snap_drop * 100);
  std::printf("FTC/FTMB at Ch-5: %.2fx (paper: ~1.7-1.9x here, 2-3.5x "
              "across the eval)\n",
              results[2][3] > 0 ? results[1][3] / results[2][3] : 0);

  report.metric("ftc_drop_ch2_to_ch5", ftc_drop);
  report.metric("snapshot_drop_ch2_to_ch5", snap_drop);
  ok = results[1][3] > results[3][3] &&  // FTC beats +Snapshot.
       snap_drop > ftc_drop + 0.10;      // Snapshot scales far worse.
  std::printf("shape check (FTC nearly flat with chain length while "
              "FTMB+Snapshot collapses; FTC > FTMB+Snapshot at Ch-5): %s\n",
              ok ? "yes" : "NO");
  std::printf("known gap: FTC > plain FTMB does NOT reproduce on this "
              "substrate — our in-memory links\n"
              "underprice FTMB's per-packet PAL messages (the paper's FTMB "
              "was NIC-capped at 5.26 Mpps),\n"
              "and even with zero-copy piggyback processing the per-hop "
              "apply+replicate work exceeds the paper's 58+100 cycles "
              "(Table 2).\n"
              "See EXPERIMENTS.md for the full analysis.\n");
  }  // !budget_only

  // --- Live budget attribution probe (obs/prof). ------------------------
  // Ch-3 FTC at the default burst (32), profiled over a paced steady
  // window with quiet mode armed after warmup: the per-stage ns/packet
  // table lands in this report (budget.* registry rows + headline
  // metrics), and any steady-state slow path (allocation, contended lock,
  // blocking-send retry) fails the probe. CI's budget-gate job runs this
  // with FTC_FIG9_BUDGET_ONLY=1 and diffs budget_total_ns_per_packet
  // against the committed baseline.
  {
    auto spec = base_spec(ChainMode::kFtc, ch_n(3, 1), threads);
    spec.cfg.profile = true;
    spec.cfg.quiet_assert = true;
    ChainRuntime chain(spec);
    tgen::Workload w;
    w.num_flows = 256;
    const auto r = measure_budget(chain, w, 100'000.0);
    obs::HotProfiler* prof = chain.profiler();
    const auto budget = prof->report();
    std::printf("\n%s", obs::budget_to_text(budget).c_str());

    double total_ns = 0.0;
    for (const auto& row : budget.total.stages) {
      if (obs::prof_stage_primary(row.stage)) total_ns += row.ns_per_packet;
    }
    const bool quiet_ok = prof->quiet_ok();
    const obs::Labels point{{"system", "FTC"}, {"chain_len", "3"},
                            {"probe", "budget"}};
    report.metric("budget_total_ns_per_packet", total_ns, point);
    report.metric("budget_reconciliation", budget.total.reconciliation,
                  point);
    report.metric("budget_quiet_ok", quiet_ok ? 1.0 : 0.0, point);
    report.metric("ns_per_packet", mpps_to_ns(r.delivered_mpps), point);
    report.add_snapshot(chain.registry(),
                        obs::Labels{{"source", "registry"},
                                    {"probe", "budget"}});
    std::printf("budget probe: total=%.1f ns/pkt reconciliation=%.1f%% "
                "quiet=%s\n",
                total_ns, budget.total.reconciliation * 100.0,
                quiet_ok ? "ok" : "VIOLATED");
    if (budget_only) {
      ok = quiet_ok && budget.total.reconciliation >= 0.9 && total_ns > 0;
    }
  }

  report.shape_check(ok);
  finish_report(report);
  return ok ? 0 : 1;
}
