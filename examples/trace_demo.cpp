// trace_demo — per-packet tracing end to end on a lossy 5-middlebox FTC
// chain with one induced failure.
//
// Runs Monitor x5 with packet loss and reordering on every inter-server
// link, samples 1 in 16 packets, crashes the middle server mid-run, lets
// the orchestrator detect and recover it, and writes everything the spans
// saw — per-hop slices, link transits, buffer holds, the recovery
// timeline — as Chrome trace-event JSON. Load the output in
// ui.perfetto.dev (or chrome://tracing) to scrub through individual
// packets crossing the chain.
//
//   ./example_trace_demo [out.json]     (default: trace_demo.json)
#include <cstdio>
#include <memory>
#include <thread>

#include "core/chain.hpp"
#include "mbox/monitor.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/span.hpp"
#include "orch/orchestrator.hpp"
#include "tgen/traffic.hpp"

using namespace sfc;

int main(int argc, char** argv) {
  const std::string out = argc > 1 ? argv[1] : "trace_demo.json";

  ftc::ChainRuntime::Spec spec;
  spec.mode = ftc::ChainMode::kFtc;
  spec.cfg.f = 1;
  spec.cfg.link.loss = 0.02;
  spec.cfg.link.reorder = 0.05;
  spec.cfg.link.delay_ns = 20'000;  // 20 us per hop: visible slices.
  for (int i = 0; i < 5; ++i) {
    spec.mbox_factories.push_back(
        [] { return std::unique_ptr<mbox::Middlebox>(new mbox::Monitor(1)); });
  }

  ftc::ChainRuntime chain(spec);
  chain.start();
  obs::SpanCollector spans(&chain.registry());

  // Timeout sized for oversubscribed hosts: short enough to watch, long
  // enough that a starved-but-healthy control worker is not "detected".
  orch::OrchestratorConfig ocfg;
  ocfg.heartbeat_interval_ns = 10'000'000;
  ocfg.failure_timeout_ns = 300'000'000;
  orch::Orchestrator orchestrator(chain, ocfg);
  orchestrator.start();

  // Modest rate: the 5 simulated servers timeshare the host, and an
  // overloaded box starves control workers into spurious detections.
  tgen::Workload w;
  w.num_flows = 32;
  w.trace_sample = 16;
  tgen::TrafficSource source(chain.pool(), chain.ingress(), w, 8'000.0,
                             &spans);
  tgen::TrafficSink sink(chain.pool(), chain.egress(), &spans);
  sink.start();
  source.start();

  std::printf("driving 5-middlebox FTC chain (2%% loss, 5%% reorder)...\n");
  std::this_thread::sleep_for(std::chrono::milliseconds(400));

  std::printf("crashing the server at position 2...\n");
  chain.fail_position(2);
  const auto deadline = rt::now_ns() + 10'000'000'000ull;
  const auto recovered = [&orchestrator] {
    for (const auto& r : orchestrator.reports()) {
      if (r.position == 2 && r.success) return true;
    }
    return false;
  };
  while (!recovered() && rt::now_ns() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(300));

  source.stop();
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  sink.stop();
  orchestrator.stop();
  chain.stop();

  const auto records = spans.snapshot();
  for (const auto& tl : obs::recovery_timelines(records)) {
    std::printf(
        "recovery timeline pos %u: detect %.1f ms, fetch %.2f ms, "
        "rerouted %.1f ms after the crash%s\n",
        tl.position, tl.time_to_detect_ns() / 1e6, tl.time_to_fetch_ns() / 1e6,
        tl.time_to_reroute_ns() / 1e6, tl.complete() ? "" : " (incomplete)");
  }
  if (!obs::write_chrome_trace(out, records,
                               chain.registry().span_site_names())) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 1;
  }
  std::printf("%zu spans (%llu dropped) -> %s\n", records.size(),
              static_cast<unsigned long long>(spans.dropped()), out.c_str());
  std::printf("open https://ui.perfetto.dev and drag the file in.\n");
  return 0;
}
