// Enterprise service function chain (the paper's motivating deployment,
// §1): data-center traffic passes an intrusion-detection-style Monitor, a
// Firewall, and a NAT before reaching the Internet.
//
// Demonstrates: mixed stateful/stateless middleboxes under FTC, a
// filtering middlebox (the firewall denies one subnet) whose drops still
// propagate replication state, per-middlebox statistics, and the chain's
// fault-tolerance bookkeeping (piggyback logs applied, commit flow).
//
//   $ ./example_enterprise_chain
#include <cstdio>
#include <set>
#include <thread>

#include "core/chain.hpp"
#include "mbox/firewall.hpp"
#include "mbox/monitor.hpp"
#include "mbox/nat.hpp"
#include "tgen/traffic.hpp"

using namespace sfc;

int main() {
  // Firewall policy: block everything from 10.9.0.0/16 (a quarantined
  // subnet), allow the rest.
  auto firewall_factory = [] {
    std::vector<mbox::FirewallRule> rules;
    rules.push_back(mbox::FirewallRule{
        /*src_prefix=*/0x0a090000, /*src_mask=*/0xffff0000,
        /*dst_prefix=*/0, /*dst_mask=*/0,
        /*dst_port=*/0, /*protocol=*/0, /*allow=*/false});
    return std::unique_ptr<mbox::Middlebox>(
        new mbox::Firewall(std::move(rules), /*default_allow=*/true));
  };

  ftc::ChainRuntime::Spec spec;
  spec.mode = ftc::ChainMode::kFtc;
  spec.cfg.f = 1;
  spec.cfg.threads_per_node = 2;
  spec.mbox_factories = {
      [] { return std::unique_ptr<mbox::Middlebox>(new mbox::Monitor(2)); },
      firewall_factory,
      [] { return std::unique_ptr<mbox::Middlebox>(new mbox::MazuNat()); },
  };
  ftc::ChainRuntime chain(spec);
  chain.start();

  // Two traffic classes: normal clients and the quarantined subnet.
  tgen::Workload normal;
  normal.num_flows = 64;
  normal.src_base = 0x0a000001;  // 10.0.0.x
  tgen::Workload quarantined;
  quarantined.num_flows = 16;
  quarantined.src_base = 0x0a090001;  // 10.9.0.x -> firewall-denied.

  tgen::TrafficSink sink(chain.pool(), chain.egress());
  sink.start();
  tgen::TrafficSource src_ok(chain.pool(), chain.ingress(), normal, 40'000);
  tgen::TrafficSource src_bad(chain.pool(), chain.ingress(), quarantined,
                              10'000);
  src_ok.start();
  src_bad.start();
  std::this_thread::sleep_for(std::chrono::seconds(1));
  src_ok.stop();
  src_bad.stop();
  std::this_thread::sleep_for(std::chrono::milliseconds(200));

  std::printf("--- chain: Monitor -> Firewall -> MazuNAT (FTC, f=1) ---\n");
  std::printf("offered:   %llu normal + %llu quarantined packets\n",
              static_cast<unsigned long long>(src_ok.packets_sent()),
              static_cast<unsigned long long>(src_bad.packets_sent()));
  std::printf("delivered: %llu packets (quarantined traffic dropped by the "
              "firewall)\n",
              static_cast<unsigned long long>(sink.packets_received()));

  const char* names[] = {"Monitor", "Firewall", "MazuNAT"};
  for (std::uint32_t pos = 0; pos < 3; ++pos) {
    auto* node = chain.ftc_node(pos);
    const auto stats = node->stats();
    std::printf("%-9s processed=%-8llu filtered=%-7llu state entries=%zu, "
                "logs applied for predecessors=%llu\n",
                names[pos],
                static_cast<unsigned long long>(stats.packets_processed),
                static_cast<unsigned long long>(stats.drops_filtered),
                node->has_mbox() ? node->head()->store().total_entries() : 0,
                static_cast<unsigned long long>(stats.logs_applied));
  }

  // Fault-tolerance invariant: the Monitor's counters (middlebox 0) are
  // fully replicated at the Firewall server, even though the firewall
  // filtered part of the traffic.
  auto* monitor_node = chain.ftc_node(0);
  auto* monitor = dynamic_cast<mbox::Monitor*>(monitor_node->middlebox());
  auto* replica = chain.ftc_node(1)->applier(0);
  std::uint64_t head_total = 0, replica_total = 0;
  std::set<state::Key> keys;  // Threads in one sharing group share a key.
  for (std::uint32_t t = 0; t < 2; ++t) keys.insert(monitor->counter_key(t));
  for (const auto key : keys) {
    if (auto v = monitor_node->head()->store().get(key)) {
      head_total += v->as<std::uint64_t>();
    }
    if (auto v = replica->store().get(key)) {
      replica_total += v->as<std::uint64_t>();
    }
  }
  std::printf("Monitor counted %llu packets; its in-chain replica holds "
              "%llu (%s)\n",
              static_cast<unsigned long long>(head_total),
              static_cast<unsigned long long>(replica_total),
              head_total == replica_total ? "replicated exactly"
                                          : "still converging");

  sink.stop();
  chain.stop();
  return 0;
}
