// Quickstart: a fault-tolerant NAT in ~40 lines.
//
// Builds a 2-middlebox FTC chain (Monitor -> MazuNAT, f=1), pushes a few
// thousand packets through it, and shows that every middlebox's state is
// replicated on its successor server — no dedicated replica machines.
//
//   $ ./example_quickstart
#include <cstdio>
#include <thread>

#include "core/chain.hpp"
#include "mbox/monitor.hpp"
#include "mbox/nat.hpp"
#include "tgen/traffic.hpp"

using namespace sfc;

int main() {
  // 1. Describe the chain: mode, fault tolerance level, middleboxes.
  ftc::ChainRuntime::Spec spec;
  spec.mode = ftc::ChainMode::kFtc;
  spec.cfg.f = 1;  // Tolerate one server failure.
  spec.mbox_factories = {
      [] { return std::unique_ptr<mbox::Middlebox>(new mbox::Monitor(1)); },
      [] { return std::unique_ptr<mbox::Middlebox>(new mbox::MazuNat()); },
  };

  // 2. Deploy and start it.
  ftc::ChainRuntime chain(spec);
  chain.start();

  // 3. Send traffic: 16 flows from the 10.0.0.0/8 "inside".
  tgen::Workload workload;
  workload.num_flows = 16;
  tgen::TrafficSource source(chain.pool(), chain.ingress(), workload, 50'000);
  tgen::TrafficSink sink(chain.pool(), chain.egress());
  sink.start();
  source.start();
  while (sink.packets_received() < 5'000) std::this_thread::yield();
  source.stop();
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  // 4. Inspect: the NAT's flow table lives on its own server AND on its
  //    successor in the chain (ring position 0 here).
  auto* nat_node = chain.ftc_node(1);
  auto* replica = chain.ftc_node(0)->applier(1);
  std::printf("NAT flow table:   %zu entries at the NAT server\n",
              nat_node->head()->store().total_entries());
  std::printf("                  %zu entries at its in-chain replica\n",
              replica->store().total_entries());
  std::printf("delivered:        %llu packets end-to-end\n",
              static_cast<unsigned long long>(sink.packets_received()));
  std::printf("mean latency:     %.1f us\n", sink.latency().mean() / 1000.0);

  sink.stop();
  chain.stop();
  return 0;
}
