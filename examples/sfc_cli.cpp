// sfc_cli — assemble and drive an arbitrary fault-tolerant chain from the
// command line. The "operator" entry point of the library: pick a mode,
// list middleboxes, choose f/threads/rate, optionally inject a failure
// mid-run or capture traffic to a pcap.
//
//   ./example_sfc_cli --mode ftc --chain monitor,nat,firewall --f 1 \
//       --threads 2 --rate 50000 --duration 2 --fail 1 --fail-after 0.8 \
//       --pcap out.pcap
//
// Middlebox names: monitor[:sharing] nat simplenat gen[:statesize]
//                  firewall lb
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/chain.hpp"
#include "mbox/firewall.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/export.hpp"
#include "obs/prof.hpp"
#include "obs/span.hpp"
#include "mbox/gen.hpp"
#include "mbox/load_balancer.hpp"
#include "mbox/monitor.hpp"
#include "mbox/nat.hpp"
#include "orch/orchestrator.hpp"
#include "packet/pcap.hpp"
#include "tgen/traffic.hpp"

using namespace sfc;

namespace {

struct Options {
  ftc::ChainMode mode{ftc::ChainMode::kFtc};
  std::vector<std::string> chain{"monitor", "nat"};
  std::uint32_t f{1};
  std::size_t threads{1};
  double rate_pps{50'000};
  double duration_s{2.0};
  std::size_t flows{64};
  std::size_t frame_len{256};
  std::size_t burst{32};
  double loss{0.0};
  double reorder{0.0};
  double link_delay_us{0.0};
  ftc::TransportMode transport{ftc::TransportMode::kRaw};
  std::uint32_t rel_window{0};        ///< 0 = library default.
  double rel_rto_min_us{0.0};         ///< 0 = library default.
  double rel_rto_max_us{0.0};         ///< 0 = library default.
  bool rel_congestion{false};
  int fail_position{-1};
  double fail_after_s{0.5};
  std::string pcap_path;
  bool stats{false};
  double stats_interval_s{1.0};
  std::string stats_json_path;
  bool trace{false};
  std::uint64_t trace_sample{64};
  std::string trace_out{"trace.json"};
  bool budget{false};
  bool quiet_assert{false};
  double warmup_s{0.25};
};

void usage() {
  std::puts(
      "usage: sfc_cli [options]\n"
      "  --mode nf|ftc|ftmb|ftmb-snapshot   runtime mode (default ftc)\n"
      "  --chain a,b,c       middleboxes: monitor[:sharing] nat simplenat\n"
      "                      gen[:statesize] firewall lb (default monitor,nat)\n"
      "  --f N               failures tolerated (default 1)\n"
      "  --threads N         threads per server (default 1)\n"
      "  --rate PPS          offered load, 0 = max (default 50000)\n"
      "  --duration SEC      run time (default 2)\n"
      "  --flows N           concurrent flows (default 64)\n"
      "  --frame BYTES       frame size (default 256)\n"
      "  --burst N           data-path burst size, 1 = per-packet (default 32)\n"
      "  --loss P            per-link packet drop probability (default 0)\n"
      "  --reorder P         per-link reorder probability (default 0)\n"
      "  --link-delay US     per-link one-way delay in microseconds\n"
      "  --transport raw|reliable   segment transport: raw links drop on\n"
      "                      wire loss; reliable runs the windowed adaptive-\n"
      "                      RTO channel on every segment (default raw)\n"
      "  --rel-window N      reliable: sliding-window size in packets\n"
      "                      (rounded down to a power of two, default 128)\n"
      "  --rel-rto-min US    reliable: RTO clamp floor in microseconds\n"
      "  --rel-rto-max US    reliable: RTO clamp ceiling in microseconds\n"
      "  --rel-cc            reliable: enable AIMD congestion avoidance\n"
      "  --fail POS          crash the server at chain position POS mid-run\n"
      "  --fail-after SEC    when to crash it (default 0.5)\n"
      "  --pcap FILE         capture chain egress to a pcap file\n"
      "  stats | --stats     print live metric snapshots during the run and\n"
      "                      a full registry dump at the end\n"
      "  --stats-interval S  seconds between live snapshots (default 1)\n"
      "  --stats-json FILE   periodically dump the registry to FILE as JSON\n"
      "  trace | --trace     sample packets through the chain and write a\n"
      "                      Chrome trace-event JSON (load in Perfetto)\n"
      "  --trace-sample N    trace every ~Nth packet (default 64, 1 = all)\n"
      "  --trace-out FILE    trace output path (default trace.json)\n"
      "  budget | --budget   enable the hot-path budget profiler and print\n"
      "                      the per-stage ns/packet table after the run\n"
      "  --quiet-assert      arm steady-state quiet mode after warmup: any\n"
      "                      data-path allocation failure, contended lock, or\n"
      "                      send/free retry fails the run with a budget +\n"
      "                      span flight-recorder dump (implies budget)\n"
      "  --warmup SEC        warmup before the budget window starts and\n"
      "                      quiet mode arms (default 0.25)");
}

ftc::FtcNode::MboxFactory parse_mbox(const std::string& spec, bool& ok) {
  const auto colon = spec.find(':');
  const std::string name = spec.substr(0, colon);
  const std::uint32_t arg =
      colon == std::string::npos
          ? 0
          : static_cast<std::uint32_t>(std::atoi(spec.c_str() + colon + 1));
  ok = true;
  if (name == "monitor") {
    return [arg] {
      return std::unique_ptr<mbox::Middlebox>(
          new mbox::Monitor(arg == 0 ? 1 : arg));
    };
  }
  if (name == "nat") {
    return [] { return std::unique_ptr<mbox::Middlebox>(new mbox::MazuNat()); };
  }
  if (name == "simplenat") {
    return [] {
      return std::unique_ptr<mbox::Middlebox>(new mbox::SimpleNat());
    };
  }
  if (name == "gen") {
    return [arg] {
      return std::unique_ptr<mbox::Middlebox>(
          new mbox::Gen(arg == 0 ? 32 : arg));
    };
  }
  if (name == "firewall") {
    return [] { return std::unique_ptr<mbox::Middlebox>(new mbox::Firewall()); };
  }
  if (name == "lb") {
    return [] {
      return std::unique_ptr<mbox::Middlebox>(
          new mbox::LoadBalancer({0xC0A80001, 0xC0A80002}));
    };
  }
  ok = false;
  return {};
}

bool parse_args(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", what);
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      usage();
      return false;
    } else if (arg == "--mode") {
      const char* v = next("--mode");
      if (v == nullptr) return false;
      if (std::strcmp(v, "nf") == 0) opt.mode = ftc::ChainMode::kNf;
      else if (std::strcmp(v, "ftc") == 0) opt.mode = ftc::ChainMode::kFtc;
      else if (std::strcmp(v, "ftmb") == 0) opt.mode = ftc::ChainMode::kFtmb;
      else if (std::strcmp(v, "ftmb-snapshot") == 0)
        opt.mode = ftc::ChainMode::kFtmbSnapshot;
      else {
        std::fprintf(stderr, "unknown mode %s\n", v);
        return false;
      }
    } else if (arg == "--chain") {
      const char* v = next("--chain");
      if (v == nullptr) return false;
      opt.chain.clear();
      std::stringstream ss(v);
      std::string item;
      while (std::getline(ss, item, ',')) opt.chain.push_back(item);
    } else if (arg == "--f") {
      const char* v = next("--f");
      if (v == nullptr) return false;
      opt.f = static_cast<std::uint32_t>(std::atoi(v));
    } else if (arg == "--threads") {
      const char* v = next("--threads");
      if (v == nullptr) return false;
      opt.threads = static_cast<std::size_t>(std::atoi(v));
    } else if (arg == "--rate") {
      const char* v = next("--rate");
      if (v == nullptr) return false;
      opt.rate_pps = std::atof(v);
    } else if (arg == "--duration") {
      const char* v = next("--duration");
      if (v == nullptr) return false;
      opt.duration_s = std::atof(v);
    } else if (arg == "--flows") {
      const char* v = next("--flows");
      if (v == nullptr) return false;
      opt.flows = static_cast<std::size_t>(std::atoi(v));
    } else if (arg == "--frame") {
      const char* v = next("--frame");
      if (v == nullptr) return false;
      opt.frame_len = static_cast<std::size_t>(std::atoi(v));
    } else if (arg == "--burst") {
      const char* v = next("--burst");
      if (v == nullptr) return false;
      opt.burst = static_cast<std::size_t>(std::atoi(v));
      if (opt.burst == 0) opt.burst = 1;
    } else if (arg == "--loss") {
      const char* v = next("--loss");
      if (v == nullptr) return false;
      opt.loss = std::atof(v);
    } else if (arg == "--reorder") {
      const char* v = next("--reorder");
      if (v == nullptr) return false;
      opt.reorder = std::atof(v);
    } else if (arg == "--link-delay") {
      const char* v = next("--link-delay");
      if (v == nullptr) return false;
      opt.link_delay_us = std::atof(v);
    } else if (arg == "--transport") {
      const char* v = next("--transport");
      if (v == nullptr) return false;
      if (std::strcmp(v, "raw") == 0) {
        opt.transport = ftc::TransportMode::kRaw;
      } else if (std::strcmp(v, "reliable") == 0) {
        opt.transport = ftc::TransportMode::kReliable;
      } else {
        std::fprintf(stderr, "unknown transport %s\n", v);
        return false;
      }
    } else if (arg == "--rel-window") {
      const char* v = next("--rel-window");
      if (v == nullptr) return false;
      opt.rel_window = static_cast<std::uint32_t>(std::atoi(v));
    } else if (arg == "--rel-rto-min") {
      const char* v = next("--rel-rto-min");
      if (v == nullptr) return false;
      opt.rel_rto_min_us = std::atof(v);
    } else if (arg == "--rel-rto-max") {
      const char* v = next("--rel-rto-max");
      if (v == nullptr) return false;
      opt.rel_rto_max_us = std::atof(v);
    } else if (arg == "--rel-cc") {
      opt.rel_congestion = true;
    } else if (arg == "--fail") {
      const char* v = next("--fail");
      if (v == nullptr) return false;
      opt.fail_position = std::atoi(v);
    } else if (arg == "--fail-after") {
      const char* v = next("--fail-after");
      if (v == nullptr) return false;
      opt.fail_after_s = std::atof(v);
    } else if (arg == "--pcap") {
      const char* v = next("--pcap");
      if (v == nullptr) return false;
      opt.pcap_path = v;
    } else if (arg == "stats" || arg == "--stats") {
      opt.stats = true;
    } else if (arg == "--stats-interval") {
      const char* v = next("--stats-interval");
      if (v == nullptr) return false;
      opt.stats_interval_s = std::atof(v);
      if (opt.stats_interval_s <= 0) opt.stats_interval_s = 1.0;
      opt.stats = true;
    } else if (arg == "--stats-json") {
      const char* v = next("--stats-json");
      if (v == nullptr) return false;
      opt.stats_json_path = v;
    } else if (arg == "trace" || arg == "--trace") {
      opt.trace = true;
    } else if (arg == "--trace-sample") {
      const char* v = next("--trace-sample");
      if (v == nullptr) return false;
      opt.trace_sample = static_cast<std::uint64_t>(std::atoll(v));
      if (opt.trace_sample == 0) opt.trace_sample = 1;
      opt.trace = true;
    } else if (arg == "--trace-out") {
      const char* v = next("--trace-out");
      if (v == nullptr) return false;
      opt.trace_out = v;
      opt.trace = true;
    } else if (arg == "budget" || arg == "--budget") {
      opt.budget = true;
    } else if (arg == "--quiet-assert") {
      opt.quiet_assert = true;
      opt.budget = true;
    } else if (arg == "--warmup") {
      const char* v = next("--warmup");
      if (v == nullptr) return false;
      opt.warmup_s = std::atof(v);
      if (opt.warmup_s < 0) opt.warmup_s = 0;
    } else {
      std::fprintf(stderr, "unknown option %s\n", arg.c_str());
      usage();
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_args(argc, argv, opt)) return 1;

  ftc::ChainRuntime::Spec spec;
  spec.mode = opt.mode;
  spec.cfg.f = opt.f;
  spec.cfg.threads_per_node = opt.threads;
  spec.cfg.burst_size = opt.burst;
  spec.cfg.link.loss = opt.loss;
  spec.cfg.link.reorder = opt.reorder;
  spec.cfg.link.delay_ns = static_cast<std::uint64_t>(opt.link_delay_us * 1e3);
  spec.cfg.transport = opt.transport;
  if (opt.rel_window != 0) spec.cfg.reliable.window = opt.rel_window;
  if (opt.rel_rto_min_us > 0) {
    spec.cfg.reliable.rto_min_ns =
        static_cast<std::uint64_t>(opt.rel_rto_min_us * 1e3);
  }
  if (opt.rel_rto_max_us > 0) {
    spec.cfg.reliable.rto_max_ns =
        static_cast<std::uint64_t>(opt.rel_rto_max_us * 1e3);
  }
  spec.cfg.reliable.congestion_avoidance = opt.rel_congestion;
  spec.cfg.profile = opt.budget;
  spec.cfg.quiet_assert = opt.quiet_assert;
  for (const auto& name : opt.chain) {
    bool ok = false;
    auto factory = parse_mbox(name, ok);
    if (!ok) {
      std::fprintf(stderr, "unknown middlebox '%s'\n", name.c_str());
      return 1;
    }
    spec.mbox_factories.push_back(std::move(factory));
  }
  if (opt.fail_position >= 0 && opt.mode != ftc::ChainMode::kFtc) {
    std::fprintf(stderr, "--fail requires --mode ftc\n");
    return 1;
  }

  ftc::ChainRuntime chain(spec);
  chain.start();
  orch::Orchestrator orchestrator(chain);
  if (opt.mode == ftc::ChainMode::kFtc) orchestrator.start();

  // Span tracing: sampled packets leave one record per chain event, and
  // the stats output derives its per-hop quantiles from the same records.
  // Quiet mode keeps the collector running as a flight recorder so a
  // violation can dump the events leading up to it.
  const bool spans_on = opt.trace || opt.stats || opt.quiet_assert;
  std::unique_ptr<obs::SpanCollector> spans;
  if (spans_on) spans = std::make_unique<obs::SpanCollector>(&chain.registry());

  std::printf(
      "chain: mode=%s transport=%s servers=%u f=%u threads=%zu rate=%.0f pps\n",
      ftc::to_string(opt.mode), ftc::to_string(opt.transport),
      chain.ring_size(), opt.f, opt.threads, opt.rate_pps);
  if (spans_on) {
    std::printf("trace: sampling 1 in %llu packets\n",
                static_cast<unsigned long long>(opt.trace_sample));
  }

  tgen::Workload workload;
  workload.num_flows = opt.flows;
  workload.frame_len = opt.frame_len;
  workload.burst = opt.burst;
  if (spans_on) workload.trace_sample = opt.trace_sample;
  tgen::TrafficSource source(chain.pool(), chain.ingress(), workload,
                             opt.rate_pps, spans.get());
  tgen::TrafficSink sink(chain.pool(), chain.egress(), spans.get());
  pkt::PcapWriter pcap;
  std::unique_ptr<rt::Worker> tap;
  if (!opt.pcap_path.empty()) {
    if (!pcap.open(opt.pcap_path)) {
      std::fprintf(stderr, "cannot open %s\n", opt.pcap_path.c_str());
      return 1;
    }
    // Tap between chain egress and the sink: forward + record.
    tap = std::make_unique<rt::Worker>();
    static pkt::PacketPool tap_pool(16);  // Unused; sink frees via routing.
    tap->start("pcap-tap", [&] {
      if (pkt::Packet* p = chain.egress().poll()) {
        pcap.write(*p);
        chain.pool().free_raw(p);
        return true;
      }
      return false;
    });
  } else {
    sink.start();
  }
  source.start();

  std::unique_ptr<obs::Exporter> exporter;
  if (!opt.stats_json_path.empty()) {
    exporter = std::make_unique<obs::Exporter>(
        chain.registry(), opt.stats_json_path,
        static_cast<std::uint64_t>(opt.stats_interval_s * 1e9));
  }

  const auto t0 = rt::now_ns();
  bool failed_yet = false;
  bool measuring = false;
  obs::HotProfiler* prof = chain.profiler();
  std::uint64_t next_stats_ns =
      rt::now_ns() + static_cast<std::uint64_t>(opt.stats_interval_s * 1e9);
  while (rt::now_ns() - t0 < static_cast<std::uint64_t>(opt.duration_s * 1e9)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    if (!measuring &&
        rt::now_ns() - t0 >= static_cast<std::uint64_t>(opt.warmup_s * 1e9)) {
      // Warmup/measure boundary: the budget window starts clean, and the
      // steady-state invariants become hard assertions from here on.
      measuring = true;
      if (prof != nullptr) {
        prof->reset();
        if (opt.quiet_assert) {
          prof->arm_quiet();
          std::printf("[%.2fs] quiet mode armed\n", (rt::now_ns() - t0) / 1e9);
        }
      }
    }
    if (opt.stats && rt::now_ns() >= next_stats_ns) {
      next_stats_ns += static_cast<std::uint64_t>(opt.stats_interval_s * 1e9);
      std::printf("--- stats @ %.2fs ---\n%s", (rt::now_ns() - t0) / 1e9,
                  obs::to_text(chain.registry()).c_str());
    }
    if (opt.fail_position >= 0 && !failed_yet &&
        rt::now_ns() - t0 >
            static_cast<std::uint64_t>(opt.fail_after_s * 1e9)) {
      std::printf("[%.2fs] crashing server at position %d\n",
                  (rt::now_ns() - t0) / 1e9, opt.fail_position);
      chain.fail_position(static_cast<std::uint32_t>(opt.fail_position));
      failed_yet = true;
    }
  }
  source.stop();
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  // The quiet window ends with the offered load: teardown churn (worker
  // joins, pool drain) is not steady-state behaviour.
  if (prof != nullptr) prof->disarm_quiet();

  std::printf("sent:      %llu packets\n",
              static_cast<unsigned long long>(source.packets_sent()));
  if (opt.pcap_path.empty()) {
    const auto lat = sink.latency();
    std::printf("delivered: %llu packets (%.3f Mpps offered)\n",
                static_cast<unsigned long long>(sink.packets_received()),
                static_cast<double>(source.packets_sent()) / opt.duration_s *
                    1e-6);
    if (lat.count() > 0) {
      std::printf("latency:   p50 %.1f us, p99 %.1f us, max %.1f us\n",
                  lat.p50() / 1000.0, lat.p99() / 1000.0, lat.max() / 1000.0);
    }
  } else {
    std::printf("captured:  %llu packets -> %s\n",
                static_cast<unsigned long long>(pcap.packets_written()),
                opt.pcap_path.c_str());
  }
  if (failed_yet) {
    const auto reports = orchestrator.reports();
    if (!reports.empty() && reports.back().success) {
      std::printf("recovery:  position %u restored in %.1f ms (init %.1f + "
                  "fetch %.1f)\n",
                  reports.back().position, reports.back().total_ns / 1e6,
                  reports.back().initialization_ns / 1e6,
                  reports.back().state_recovery_ns / 1e6);
    } else {
      std::printf("recovery:  NOT COMPLETED\n");
    }
  }

  tap.reset();
  sink.stop();
  orchestrator.stop();
  chain.stop();
  std::vector<obs::SpanRecord> records;
  if (spans) records = spans->snapshot();
  if (spans) {
    const auto hops = obs::per_hop_breakdown(records);
    if (!hops.empty()) {
      std::printf("--- per-hop latency (sampled spans) ---\n");
      std::printf("%-6s %10s %10s %10s %10s\n", "pos", "hop p50", "hop p99",
                  "proc p50", "transit p50");
      for (const auto& hop : hops) {
        std::printf("%-6u %8.1fus %8.1fus %8.1fus %9.1fus\n", hop.position,
                    hop.hop_ns.p50() / 1000.0, hop.hop_ns.p99() / 1000.0,
                    hop.process_ns.p50() / 1000.0,
                    hop.transit_ns.p50() / 1000.0);
      }
    }
    if (opt.trace) {
      if (obs::write_chrome_trace(opt.trace_out, records,
                                  chain.registry().span_site_names())) {
        std::printf("trace:     %zu spans -> %s (open in ui.perfetto.dev)\n",
                    records.size(), opt.trace_out.c_str());
      } else {
        std::fprintf(stderr, "trace:     cannot write %s\n",
                     opt.trace_out.c_str());
      }
      for (const auto& tl : obs::recovery_timelines(records)) {
        std::printf("timeline:  pos %u: detect %+.1f ms, fetch %.1f ms, "
                    "reroute %+.1f ms after failure%s\n",
                    tl.position, tl.time_to_detect_ns() / 1e6,
                    tl.time_to_fetch_ns() / 1e6, tl.time_to_reroute_ns() / 1e6,
                    tl.complete() ? "" : " (incomplete)");
      }
    }
  }
  if (exporter) {
    exporter->stop();
    std::printf("stats json: %s (%llu dumps)\n", opt.stats_json_path.c_str(),
                static_cast<unsigned long long>(exporter->dumps()));
  }
  if (opt.stats) {
    std::printf("--- final registry snapshot ---\n%s",
                obs::to_text(chain.registry()).c_str());
  }
  if (prof != nullptr && opt.budget) {
    std::printf("--- hot-path budget (post-warmup window) ---\n%s",
                obs::budget_to_text(prof->report()).c_str());
  }
  if (opt.quiet_assert) {
    if (prof == nullptr || !prof->quiet_ok()) {
      std::printf("quiet-assert: FAILED (%llu violations)\n",
                  static_cast<unsigned long long>(
                      prof == nullptr ? 0 : prof->quiet_violation_count()));
      // Flight-recorder dump: the sampled span stream leading up to the
      // violation, newest last, so the offending window is inspectable
      // without a rerun.
      const auto sites = chain.registry().span_site_names();
      const std::size_t keep = 48;
      const std::size_t first =
          records.size() > keep ? records.size() - keep : 0;
      std::printf("--- span flight recorder (last %zu of %zu records) ---\n",
                  records.size() - first, records.size());
      for (std::size_t i = first; i < records.size(); ++i) {
        const auto& r = records[i];
        const auto site = sites.find(r.site);
        std::printf("  %14llu ns  trace=%016llx  %-16s %s a=%llu\n",
                    static_cast<unsigned long long>(r.ts_ns),
                    static_cast<unsigned long long>(r.trace_id),
                    site != sites.end() ? site->second.c_str() : "?",
                    obs::to_string(r.kind),
                    static_cast<unsigned long long>(r.a));
      }
      return 2;
    }
    std::printf("quiet-assert: ok (steady state held after %.2fs warmup)\n",
                opt.warmup_s);
  }
  return 0;
}
