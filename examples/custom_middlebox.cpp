// Writing your own fault-tolerant middlebox.
//
// Implements a connection rate limiter against the Middlebox API: it
// tracks per-source-IP packet budgets in the transactional state store, so
// FTC replicates the budgets automatically and a failover preserves them.
// Demonstrates the full API surface: reads, writes, erases, fetch_add,
// deferred packet rewrites, and the re-execution contract.
//
//   $ ./example_custom_middlebox
#include <cstdio>
#include <thread>

#include "core/chain.hpp"
#include "mbox/middlebox.hpp"
#include "orch/orchestrator.hpp"
#include "tgen/traffic.hpp"

using namespace sfc;

namespace {

/// Token-bucket-ish limiter: each source IP may send kBudget packets per
/// epoch; the epoch counter itself is shared state.
class RateLimiter final : public mbox::Middlebox {
 public:
  static constexpr std::uint64_t kBudget = 100;
  static constexpr std::uint64_t kEpochPackets = 4096;

  std::string_view name() const noexcept override { return "RateLimiter"; }

  mbox::Verdict process(state::Txn& txn, pkt::Packet& packet,
                        pkt::ParsedPacket& parsed,
                        mbox::ProcessContext& ctx) override {
    (void)packet;
    (void)ctx;
    // Shared epoch counter: every kEpochPackets packets, budgets reset.
    // NOTE: everything here may re-execute if the transaction is wounded,
    // so all effects go through the Txn (exactly-once on commit).
    const std::uint64_t epoch_ticks = txn.fetch_add(epoch_key(), 1);
    const std::uint64_t epoch = epoch_ticks / kEpochPackets;

    const state::Key key = source_key(parsed.flow.src_ip);
    struct BudgetEntry {
      std::uint64_t epoch;
      std::uint64_t used;
    };
    BudgetEntry entry{epoch, 0};
    if (const auto existing = txn.read(key)) {
      entry = existing->as<BudgetEntry>();
      if (entry.epoch != epoch) entry = BudgetEntry{epoch, 0};  // Reset.
    }
    if (entry.used >= kBudget) {
      txn.fetch_add(dropped_key(), 1);
      return mbox::Verdict::kDrop;
    }
    ++entry.used;
    txn.write(key, state::Bytes::of(entry));
    return mbox::Verdict::kForward;
  }

  static state::Key epoch_key() { return state::key_of_name("rl-epoch"); }
  static state::Key dropped_key() { return state::key_of_name("rl-dropped"); }
  static state::Key source_key(std::uint32_t ip) {
    return state::key_of_name("rl-src") ^ (static_cast<state::Key>(ip) << 16);
  }
};

}  // namespace

int main() {
  ftc::ChainRuntime::Spec spec;
  spec.mode = ftc::ChainMode::kFtc;
  spec.cfg.f = 1;
  spec.mbox_factories = {
      [] { return std::unique_ptr<mbox::Middlebox>(new RateLimiter()); },
      // A second middlebox so the chain has somewhere to replicate to
      // without a pure-replica extension.
      [] { return std::unique_ptr<mbox::Middlebox>(new RateLimiter()); },
  };
  ftc::ChainRuntime chain(spec);
  chain.start();
  orch::Orchestrator orchestrator(chain);

  // One aggressive source (few flows, high rate) and many polite ones.
  tgen::Workload aggressive;
  aggressive.num_flows = 4;
  aggressive.src_base = 0x0a000001;
  tgen::Workload polite;
  polite.num_flows = 200;
  polite.src_base = 0x0a010001;

  tgen::TrafficSink sink(chain.pool(), chain.egress());
  sink.start();
  tgen::TrafficSource src_aggr(chain.pool(), chain.ingress(), aggressive,
                               40'000);
  tgen::TrafficSource src_polite(chain.pool(), chain.ingress(), polite,
                                 10'000);
  src_aggr.start();
  src_polite.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(600));
  src_aggr.stop();
  src_polite.stop();
  std::this_thread::sleep_for(std::chrono::milliseconds(200));

  auto* node = chain.ftc_node(0);
  const auto dropped =
      node->head()->store().get(RateLimiter::dropped_key());
  std::printf("--- custom RateLimiter middlebox under FTC ---\n");
  std::printf("offered:  %llu aggressive + %llu polite packets\n",
              static_cast<unsigned long long>(src_aggr.packets_sent()),
              static_cast<unsigned long long>(src_polite.packets_sent()));
  std::printf("dropped:  %llu over-budget packets\n",
              static_cast<unsigned long long>(
                  dropped ? dropped->as<std::uint64_t>() : 0));
  std::printf("budgets tracked: %zu state entries\n",
              node->head()->store().total_entries());

  // Failover: budgets survive, so the aggressive source cannot launder its
  // quota by crashing the limiter.
  const auto before = node->head()->store().total_entries();
  chain.fail_position(0);
  auto reports = orchestrator.recover({0});
  auto* restored = chain.ftc_node(0);
  std::printf("failover: %s — %zu/%zu budget entries restored in %.1f ms\n",
              reports[0].success ? "ok" : "FAILED",
              restored->head()->store().total_entries(), before,
              reports[0].total_ns / 1e6);

  sink.stop();
  chain.stop();
  return reports[0].success ? 0 : 1;
}
