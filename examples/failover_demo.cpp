// Failover demo: kill a middlebox server under live traffic and watch the
// orchestrator rebuild it from its in-chain replicas (paper §5.2, §7.5).
//
// Timeline printed:
//   1. traffic flowing, NAT flow table building up
//   2. server crash (fail-stop)
//   3. heartbeat detection -> spawn -> parallel state fetch -> reroute
//   4. traffic flowing again, with the SAME flow table (connections keep
//      their translations) and counters continuing where they left off
//
//   $ ./example_failover_demo
#include <cstdio>
#include <thread>

#include "core/chain.hpp"
#include "mbox/monitor.hpp"
#include "mbox/nat.hpp"
#include "orch/orchestrator.hpp"
#include "tgen/traffic.hpp"

using namespace sfc;

int main() {
  ftc::ChainRuntime::Spec spec;
  spec.mode = ftc::ChainMode::kFtc;
  spec.cfg.f = 1;
  spec.mbox_factories = {
      [] { return std::unique_ptr<mbox::Middlebox>(new mbox::Monitor(1)); },
      [] { return std::unique_ptr<mbox::Middlebox>(new mbox::MazuNat()); },
      [] { return std::unique_ptr<mbox::Middlebox>(new mbox::Monitor(1)); },
  };
  ftc::ChainRuntime chain(spec);
  chain.start();

  orch::OrchestratorConfig ocfg;
  ocfg.heartbeat_interval_ns = 10'000'000;
  ocfg.failure_timeout_ns = 100'000'000;
  orch::Orchestrator orchestrator(chain, ocfg);
  orchestrator.start();  // Autonomous detection + recovery.

  tgen::Workload workload;
  workload.num_flows = 32;
  tgen::TrafficSource source(chain.pool(), chain.ingress(), workload, 30'000);
  tgen::TrafficSink sink(chain.pool(), chain.egress());
  sink.start();
  source.start();

  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  auto* nat_node = chain.ftc_node(1);
  const auto table_before = nat_node->head()->store().total_entries();
  const auto delivered_before = sink.packets_received();
  std::printf("[t=0.4s] chain healthy: %llu packets delivered, NAT table "
              "%zu entries (server id %u)\n",
              static_cast<unsigned long long>(delivered_before), table_before,
              nat_node->id());

  std::printf("[t=0.4s] *** killing the NAT server (fail-stop) ***\n");
  chain.fail_position(1);
  const auto fail_ns = rt::now_ns();

  // Wait for the heartbeat monitor to detect and recover autonomously.
  while (chain.ftc_node(1)->id() == nat_node->id() ||
         chain.ftc_node(1)->has_failed()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  const double recovery_ms = (rt::now_ns() - fail_ns) / 1e6;

  auto* new_node = chain.ftc_node(1);
  const auto report = orchestrator.reports().back();
  std::printf("[+%.0f ms] recovered on server id %u\n", recovery_ms,
              new_node->id());
  std::printf("          detection+spawn+init: %.1f ms, state fetch: %.1f "
              "ms, reroute: %.2f ms\n",
              report.initialization_ns / 1e6, report.state_recovery_ns / 1e6,
              report.rerouting_ns / 1e6);
  std::printf("          NAT table restored: %zu entries (was %zu)\n",
              new_node->head()->store().total_entries(), table_before);

  // Verify the chain still forwards and mappings survived: the flow table
  // entry for flow 0 must be identical.
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  const auto delivered_after = sink.packets_received();
  std::printf("[t=%.1fs] traffic resumed: +%llu packets since failure\n",
              1.0 + recovery_ms / 1000,
              static_cast<unsigned long long>(delivered_after -
                                              delivered_before));

  source.stop();
  sink.stop();
  orchestrator.stop();
  chain.stop();
  return delivered_after > delivered_before ? 0 : 1;
}
