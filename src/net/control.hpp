// Control-plane messaging.
//
// Stands in for the paper's management network: orchestrator <-> replica
// daemons (heartbeats, deployment, routing updates) and replica <-> replica
// state-fetch during recovery (their "reliable TCP connection"). Delivery
// is reliable and ordered per sender; per-pair one-way delays model the
// multi-region SAVI cloud of the paper's Figure 13.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "base/mutex.hpp"
#include "obs/registry.hpp"
#include "runtime/common.hpp"

namespace sfc::net {

using NodeId = std::uint32_t;

inline constexpr NodeId kOrchestratorNode = 0xffffffff;

struct Message {
  std::uint32_t type{0};
  NodeId from{0};
  NodeId to{0};
  std::uint64_t tag{0};  ///< Request/response correlation id.
  std::vector<std::uint8_t> payload;
};

class ControlPlane : rt::NonCopyable {
 public:
  /// Metrics go to @p registry when given, else to a private one.
  explicit ControlPlane(obs::Registry* registry = nullptr);

  /// Ensures @p node has an inbox (idempotent).
  void register_node(NodeId node);

  /// Sets the one-way delay between two nodes (symmetric). Models WAN
  /// latency between cloud regions; defaults to zero.
  void set_delay(NodeId a, NodeId b, std::uint64_t one_way_ns);

  /// Places every node in a named region and applies @p one_way_ns between
  /// any two nodes of different regions (convenience for Figure 13 style
  /// topologies).
  void set_region(NodeId node, std::uint32_t region);
  void set_inter_region_delay(std::uint64_t one_way_ns);

  /// One-way delay between two specific regions (overrides the default
  /// inter-region delay for that pair).
  void set_region_delay(std::uint32_t region_a, std::uint32_t region_b,
                        std::uint64_t one_way_ns);

  /// Sends @p msg (reliable; delivered after the configured delay).
  void send(Message msg);

  /// Receives the next deliverable message for @p node, or nullopt.
  std::optional<Message> poll(NodeId node);

  /// Blocks (yielding) until a message of @p type (and @p tag, unless tag
  /// is 0) arrives for @p node or the timeout expires. Non-matching
  /// messages are left in the inbox untouched — their delivery times and
  /// ordering are preserved for concurrent consumers.
  std::optional<Message> wait_for(NodeId node, std::uint32_t type,
                                  std::uint64_t timeout_ns,
                                  std::uint64_t tag = 0);

  std::uint64_t delay_between(NodeId a, NodeId b) const;

  /// Control-plane bandwidth model: state-fetch payloads take size/bw extra
  /// time to deliver. 0 = infinite bandwidth (default).
  void set_bandwidth_gbps(double gbps);

 private:
  struct Timed {
    Message msg;
    std::uint64_t deliver_at_ns;
  };

  struct Inbox {
    std::deque<Timed> queue;
  };

  static std::uint64_t pair_key(NodeId a, NodeId b) noexcept {
    if (a > b) std::swap(a, b);
    return (static_cast<std::uint64_t>(a) << 32) | b;
  }

  /// delay_between() body; caller holds mutex_.
  std::uint64_t delay_between_locked(NodeId a, NodeId b) const
      SFC_REQUIRES(mutex_);

  mutable Mutex mutex_{ranks::kControl, "net.control"};
  std::unordered_map<NodeId, Inbox> inboxes_ SFC_GUARDED_BY(mutex_);
  std::unordered_map<std::uint64_t, std::uint64_t> pair_delay_ns_
      SFC_GUARDED_BY(mutex_);
  std::unordered_map<NodeId, std::uint32_t> regions_ SFC_GUARDED_BY(mutex_);
  std::unordered_map<std::uint64_t, std::uint64_t> region_pair_delay_ns_
      SFC_GUARDED_BY(mutex_);
  std::uint64_t inter_region_delay_ns_ SFC_GUARDED_BY(mutex_){0};
  double ns_per_byte_ SFC_GUARDED_BY(mutex_){0.0};

  std::unique_ptr<obs::Registry> own_registry_;
  obs::Counter* msgs_sent_;
  obs::Counter* msgs_delivered_;
  obs::Counter* msgs_dropped_;  ///< Unknown destination.
  obs::Counter* wait_timeouts_;
};

}  // namespace sfc::net
