// Simulated unidirectional link between two servers.
//
// Substitutes for the paper's 10/40 GbE switch fabric. The default
// configuration (no delay, no loss) is a lock-free queue — the fast path
// used by throughput benchmarks. Configuring propagation delay, loss,
// reordering, or bandwidth switches to a mutex-protected timed queue —
// the path used by protocol tests (loss -> retransmission, reorder ->
// dependency-vector holds) and by the WAN recovery experiments.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <span>
#include <string>

#include "base/mutex.hpp"
#include "obs/registry.hpp"
#include "packet/packet_pool.hpp"
#include "runtime/mpmc_queue.hpp"
#include "runtime/rng.hpp"

namespace sfc::net {

struct LinkConfig {
  std::uint64_t delay_ns{0};         ///< One-way propagation delay.
  double loss{0.0};                  ///< Per-packet drop probability.
  double reorder{0.0};               ///< Probability of delaying one packet
                                     ///< past its successors.
  std::uint64_t reorder_extra_ns{20'000};
  std::size_t capacity{8192};        ///< Queue depth before tail drop.
  std::uint64_t seed{1};
};

struct LinkStats {
  std::uint64_t sent{0};       ///< Packets accepted by the port (including
                               ///< ones the loss model consumed on the wire).
  std::uint64_t delivered{0};
  std::uint64_t dropped_loss{0};
  std::uint64_t dropped_full{0};
};

/// Abstract unidirectional packet port: the interface every data-plane
/// producer/consumer (nodes, traffic generator, egress buffer) codes
/// against. Two implementations exist: the raw simulated Link below and
/// net::ReliableChannel, which layers a sliding-window reliable transport
/// over a Link. Accounting invariant every implementation upholds once the
/// port is drained: sent == delivered + dropped_loss.
class Port : rt::NonCopyable {
 public:
  virtual ~Port() = default;

  /// Sends a packet. Returns false when the port cannot accept it (queue
  /// or window full; the packet is NOT consumed, the caller owns it and
  /// may retry or drop). A packet consumed by a loss model still returns
  /// true: senders cannot observe wire loss.
  virtual bool send(pkt::Packet* p) = 0;

  /// Sends with bounded retry/backoff; false (caller keeps ownership)
  /// only if the port stayed full for @p timeout_ns.
  virtual bool send_blocking(pkt::Packet* p,
                             std::uint64_t timeout_ns = 1'000'000'000) = 0;

  /// Sends a prefix of @p ps; returns the accepted prefix length (the
  /// caller keeps ownership of the rest).
  virtual std::size_t send_burst(std::span<pkt::Packet*> ps) = 0;

  /// Receives the next deliverable packet, or nullptr.
  virtual pkt::Packet* poll() = 0;

  /// Receives up to @p max deliverable packets into @p out.
  virtual std::size_t poll_burst(pkt::Packet** out, std::size_t max) = 0;

  virtual LinkStats stats() const noexcept = 0;

  /// True when nothing is queued or in flight inside the port.
  virtual bool drained() const noexcept = 0;

  /// Current adaptive retransmission timeout estimate, or 0 for ports
  /// without an estimator (raw links). FtcNode scales its parked-work
  /// retransmit timeout from this instead of the fixed config value.
  virtual std::uint64_t rto_ns() const noexcept { return 0; }
};

class Link : public Port {
 public:
  /// @param pool Pool that owns packets traversing this link (lost packets
  ///             are returned to it).
  /// @param registry Destination for this link's counters (labelled with
  ///                 @p name); a private registry is used when null.
  /// @param span_site Span site id for sampled-packet tracing
  ///                  (obs::span_site_link); 0 disables span events.
  Link(pkt::PacketPool& pool, LinkConfig cfg = {},
       obs::Registry* registry = nullptr, std::string name = "link",
       std::uint32_t span_site = 0);

  /// Sends a packet. Returns false when the queue is full (the packet is
  /// NOT consumed; the caller owns it and may retry or drop). A packet
  /// consumed by the loss model still returns true (and counts as sent):
  /// senders cannot observe wire loss.
  bool send(pkt::Packet* p) override;

  /// Sends with bounded retry and exponential backoff (cpu_relax rounds
  /// first, then yields). Returns false (caller keeps ownership) only if
  /// the link stayed full throughout. Retry rounds are counted in the
  /// `link.send_retries` registry counter.
  bool send_blocking(pkt::Packet* p,
                     std::uint64_t timeout_ns = 1'000'000'000) override;

  /// Receives the next deliverable packet, or nullptr.
  pkt::Packet* poll() override;

  /// Sends a prefix of @p ps, amortizing the queue reservation and the
  /// counter updates over the burst (fast path: one CAS + one add(n)).
  /// Returns the accepted prefix length; the caller keeps ownership of the
  /// rest. On the timed path each packet keeps today's per-packet
  /// semantics (loss/reorder draws happen per packet, in order).
  std::size_t send_burst(std::span<pkt::Packet*> ps) override;

  /// Receives up to @p max deliverable packets into @p out, in delivery
  /// order, coalescing counter updates to one add(n). The timed
  /// loss/reorder path drains every currently deliverable packet (up to
  /// @p max) under a single lock acquisition.
  std::size_t poll_burst(pkt::Packet** out, std::size_t max) override;

  LinkStats stats() const noexcept override;
  const LinkConfig& config() const noexcept { return cfg_; }

  /// Changes the one-way propagation delay at runtime (tests step-change
  /// link conditions mid-run to exercise RTO adaptation). Only effective
  /// on the timed path: a link built with zero delay/loss/reorder stays on
  /// the fast path regardless.
  void set_delay_ns(std::uint64_t delay_ns) noexcept {
    delay_ns_.store(delay_ns, std::memory_order_relaxed);
  }
  std::uint64_t delay_ns() const noexcept {
    return delay_ns_.load(std::memory_order_relaxed);
  }

  /// True when every queued packet has been delivered.
  bool drained() const noexcept override;

 private:
  bool lossy_drop() noexcept;

  struct Timed {
    pkt::Packet* packet;
    std::uint64_t deliver_at_ns;
  };

  pkt::PacketPool& pool_;
  const LinkConfig cfg_;
  const bool fast_path_;
  obs::Registry* registry_{nullptr};  ///< Span sink lookup (never null).
  const std::uint32_t span_site_;

  rt::MpmcQueue<pkt::Packet*> fast_queue_;

  mutable Mutex mutex_{ranks::kLink, "net.link"};
  std::deque<Timed> timed_queue_ SFC_GUARDED_BY(mutex_);

  // Loss and reorder decisions hash SEPARATE counters so the two streams
  // are statistically independent: with a shared counter, every loss draw
  // advanced the reorder stream (and vice versa), correlating the j-th
  // surviving packet's reorder fate with the loss rate.
  std::atomic<std::uint64_t> loss_counter_{0};
  std::atomic<std::uint64_t> reorder_counter_{0};
  std::atomic<std::uint64_t> delay_ns_;

  // Counters live in the registry (single bookkeeping; the snapshot and
  // stats() read the same cells the hot path increments).
  std::unique_ptr<obs::Registry> own_registry_;
  obs::Counter* sent_;
  obs::Counter* delivered_;
  obs::Counter* dropped_loss_;
  obs::Counter* dropped_full_;
  obs::Counter* send_retries_;
};

}  // namespace sfc::net
