#include "net/link.hpp"

#include <algorithm>
#include <thread>

#include "obs/prof.hpp"
#include "obs/span.hpp"
#include "runtime/clock.hpp"

namespace sfc::net {
namespace {

/// Cold path of the tracing branch: call only after trace_id != 0.
inline void span_event(obs::Registry* reg, std::uint32_t site,
                       std::uint64_t trace_id, obs::SpanKind kind,
                       std::uint64_t a = 0) noexcept {
  if (auto* sink = reg->span_sink()) {
    sink->record(obs::SpanRecord{trace_id, rt::now_ns(), a, site, kind});
  }
}

}  // namespace

Link::Link(pkt::PacketPool& pool, LinkConfig cfg, obs::Registry* registry,
           std::string name, std::uint32_t span_site)
    : pool_(pool),
      cfg_(cfg),
      fast_path_(cfg.delay_ns == 0 && cfg.loss == 0.0 && cfg.reorder == 0.0),
      span_site_(span_site),
      fast_queue_(cfg.capacity),
      delay_ns_(cfg.delay_ns) {
  if (registry == nullptr) {
    own_registry_ = std::make_unique<obs::Registry>();
    registry = own_registry_.get();
  }
  registry_ = registry;
  if (span_site_ != 0) registry->name_span_site(span_site_, "link:" + name);
  const obs::Labels labels{{"link", std::move(name)}};
  sent_ = &registry->counter("link.sent", labels);
  delivered_ = &registry->counter("link.delivered", labels);
  dropped_loss_ = &registry->counter("link.dropped_loss", labels);
  dropped_full_ = &registry->counter("link.dropped_full", labels);
  send_retries_ = &registry->counter("link.send_retries", labels);
}

bool Link::lossy_drop() noexcept {
  if (cfg_.loss <= 0.0) return false;
  // Deterministic pseudo-random draw: hash a shared counter so concurrent
  // senders need no locked RNG and runs are reproducible.
  const std::uint64_t draw = rt::splitmix64(
      loss_counter_.fetch_add(1, std::memory_order_relaxed) ^ cfg_.seed);
  return static_cast<double>(draw >> 11) * 0x1.0p-53 < cfg_.loss;
}

bool Link::send(pkt::Packet* p) {
  // Cache before the push: ownership transfers with the pointer.
  const std::uint64_t trace_id = p->anno().trace_id;

  if (fast_path_) {
    if (!fast_queue_.try_push(std::move(p))) {
      dropped_full_->inc();
      return false;
    }
    sent_->inc();
    if (trace_id != 0) {
      span_event(registry_, span_site_, trace_id, obs::SpanKind::kLinkEnter);
    }
    return true;
  }

  if (lossy_drop()) {
    // Wire drop: the link accepted the packet, so it counts as sent —
    // after a drain, sent == delivered + dropped_loss holds on every path.
    sent_->inc();
    dropped_loss_->inc();
    pool_.free_raw(p);
    if (trace_id != 0) {
      span_event(registry_, span_site_, trace_id, obs::SpanKind::kLinkDrop);
    }
    return true;  // The sender cannot observe wire loss.
  }

  std::uint64_t deliver_at =
      rt::now_ns() + delay_ns_.load(std::memory_order_relaxed);
  if (cfg_.reorder > 0.0) {
    const std::uint64_t draw = rt::splitmix64(
        reorder_counter_.fetch_add(1, std::memory_order_relaxed) ^ ~cfg_.seed);
    if (static_cast<double>(draw >> 11) * 0x1.0p-53 < cfg_.reorder) {
      deliver_at += cfg_.reorder_extra_ns;
      if (trace_id != 0) {
        span_event(registry_, span_site_, trace_id, obs::SpanKind::kLinkHold,
                   cfg_.reorder_extra_ns);
      }
    }
  }

  LockGuard lock(mutex_);
  if (timed_queue_.size() >= cfg_.capacity) {
    dropped_full_->inc();
    return false;
  }
  timed_queue_.push_back(Timed{p, deliver_at});
  sent_->inc();
  if (trace_id != 0) {
    span_event(registry_, span_site_, trace_id, obs::SpanKind::kLinkEnter);
  }
  return true;
}

bool Link::send_blocking(pkt::Packet* p, std::uint64_t timeout_ns) {
  const std::uint64_t deadline = rt::now_ns() + timeout_ns;
  std::uint64_t retries = 0;
  for (unsigned backoff = 1; !send(p); backoff = std::min(backoff * 2, 1024u)) {
    if (rt::now_ns() > deadline) {
      send_retries_->add(retries);
      obs::prof_count(obs::ProfCounter::kSendRetry, retries);
      return false;
    }
    ++retries;
    // Bounded exponential backoff: short cpu_relax bursts keep latency low
    // when the consumer is about to free a slot; past ~64 spins the queue
    // is genuinely backed up and yielding hands the core to the drainer.
    if (backoff <= 64) {
      for (unsigned i = 0; i < backoff; ++i) rt::cpu_relax();
    } else {
      std::this_thread::yield();
    }
  }
  if (retries != 0) {
    send_retries_->add(retries);
    obs::prof_count(obs::ProfCounter::kSendRetry, retries);
  }
  return true;
}

std::size_t Link::send_burst(std::span<pkt::Packet*> ps) {
  if (ps.empty()) return 0;
  obs::ProfStageTimer pt{obs::prof_slot(), obs::ProfStage::kLinkSend,
                         ps.size()};
  if (fast_path_) {
    // Ownership transfers at the push: the consumer may pop, free and
    // recycle a packet before this function returns, so trace ids must be
    // snapshotted BEFORE try_push_n (same ordering as send()).
    constexpr std::size_t kChunk = 256;
    std::uint64_t traced[kChunk];
    std::size_t total = 0;
    while (total < ps.size()) {
      const auto chunk =
          ps.subspan(total, std::min(kChunk, ps.size() - total));
      for (std::size_t i = 0; i < chunk.size(); ++i) {
        traced[i] = chunk[i]->anno().trace_id;
      }
      const std::size_t n = fast_queue_.try_push_n(chunk);
      if (n == 0) {
        // The head packet found the queue full.
        if (total == 0) dropped_full_->inc();
        return total;
      }
      sent_->add(n);
      for (std::size_t i = 0; i < n; ++i) {
        if (SFC_UNLIKELY(traced[i] != 0)) {
          span_event(registry_, span_site_, traced[i],
                     obs::SpanKind::kLinkEnter);
        }
      }
      total += n;
      if (n < chunk.size()) break;
    }
    return total;
  }
  // Timed path: per-packet semantics (each packet takes its own loss and
  // reorder draw, in send order).
  std::size_t n = 0;
  while (n < ps.size() && send(ps[n])) ++n;
  return n;
}

std::size_t Link::poll_burst(pkt::Packet** out, std::size_t max) {
  if (max == 0) return 0;
  // Attribute only productive polls (n > 0): empty polls are idle spinning,
  // not per-packet cost, and would swamp the link_poll budget row.
  const std::uint64_t prof_t0 =
      SFC_UNLIKELY(obs::hot_profiler() != nullptr) ? rt::rdtsc() : 0;
  if (fast_path_) {
    const std::size_t n = fast_queue_.try_pop_n(out, max);
    if (n == 0) return 0;
    if (SFC_UNLIKELY(prof_t0 != 0)) {
      if (auto* slot = obs::prof_slot()) {
        slot->add(obs::ProfStage::kLinkPoll, rt::rdtsc() - prof_t0, n);
      }
    }
    delivered_->add(n);
    for (std::size_t i = 0; i < n; ++i) {
      if (SFC_UNLIKELY(out[i]->anno().trace_id != 0)) {
        span_event(registry_, span_site_, out[i]->anno().trace_id,
                   obs::SpanKind::kLinkExit);
      }
    }
    return n;
  }

  LockGuard lock(mutex_);
  const std::uint64_t now = rt::now_ns();
  std::size_t n = 0;
  // Drain every currently deliverable packet (delivery semantics identical
  // to N poll() calls: ready head packets in order, with reordered ones
  // skipped over until their extra delay elapses).
  for (auto it = timed_queue_.begin(); n < max && it != timed_queue_.end();) {
    if (it->deliver_at_ns <= now) {
      out[n++] = it->packet;
      it = timed_queue_.erase(it);
      continue;
    }
    if (cfg_.reorder <= 0.0) break;  // FIFO queue: head not ready, none are.
    ++it;
  }
  if (n == 0) return 0;
  if (SFC_UNLIKELY(prof_t0 != 0)) {
    if (auto* slot = obs::prof_slot()) {
      slot->add(obs::ProfStage::kLinkPoll, rt::rdtsc() - prof_t0, n);
    }
  }
  delivered_->add(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (out[i]->anno().trace_id != 0) {
      span_event(registry_, span_site_, out[i]->anno().trace_id,
                 obs::SpanKind::kLinkExit);
    }
  }
  return n;
}

pkt::Packet* Link::poll() {
  if (fast_path_) {
    auto p = fast_queue_.try_pop();
    if (!p) return nullptr;
    delivered_->inc();
    if ((*p)->anno().trace_id != 0) {
      span_event(registry_, span_site_, (*p)->anno().trace_id,
                 obs::SpanKind::kLinkExit);
    }
    return *p;
  }

  LockGuard lock(mutex_);
  const std::uint64_t now = rt::now_ns();
  // Deliver the first ready packet; reordered packets (larger deliver_at)
  // are skipped over, which is exactly the reordering a multi-path fabric
  // produces.
  for (auto it = timed_queue_.begin(); it != timed_queue_.end(); ++it) {
    if (it->deliver_at_ns <= now) {
      pkt::Packet* p = it->packet;
      timed_queue_.erase(it);
      delivered_->inc();
      if (p->anno().trace_id != 0) {
        span_event(registry_, span_site_, p->anno().trace_id,
                   obs::SpanKind::kLinkExit);
      }
      return p;
    }
    // Packets are queued in send order; if the head is not ready, a later
    // packet can only be ready when reordering shortened... it cannot.
    // Only reordered (lengthened) head packets let successors pass.
    if (cfg_.reorder <= 0.0) break;
  }
  return nullptr;
}

LinkStats Link::stats() const noexcept {
  return LinkStats{sent_->value(), delivered_->value(), dropped_loss_->value(),
                   dropped_full_->value()};
}

bool Link::drained() const noexcept {
  if (fast_path_) return fast_queue_.size_approx() == 0;
  LockGuard lock(mutex_);
  return timed_queue_.empty();
}

}  // namespace sfc::net
