#include "net/reliable.hpp"

#include <algorithm>
#include <thread>

#include "obs/prof.hpp"
#include "runtime/clock.hpp"

namespace sfc::net {
namespace {

constexpr std::size_t kChunk = 256;  ///< Wire drain batch (stack array).

std::size_t clamp_window(std::size_t w) {
  w = std::clamp<std::size_t>(w, 2, 1024);
  return rt::is_pow2(w) ? w : rt::next_pow2(w);
}

}  // namespace

ReliableChannel::ReliableChannel(pkt::PacketPool& pool, LinkConfig link_cfg,
                                 ReliableConfig cfg, obs::Registry* registry,
                                 std::string name, std::uint32_t span_site)
    : pool_(pool),
      cfg_(cfg),
      window_(clamp_window(cfg.window)),
      name_(name),
      ssthresh_(static_cast<double>(window_)),
      ack_delay_ns_(link_cfg.delay_ns) {
  if (registry == nullptr) {
    own_registry_ = std::make_unique<obs::Registry>();
    registry = own_registry_.get();
  }
  registry_ = registry;
  // Stash holds exactly one live copy per window slot; retransmit clones
  // come from the app pool (they escape the channel's lifetime).
  stash_pool_ = std::make_unique<pkt::PacketPool>(window_);
  wire_ = std::make_unique<Link>(pool, link_cfg, registry, name + ".wire",
                                 span_site);
  tx_slots_.resize(window_);
  rx_slots_.assign(window_, nullptr);
  cwnd_ = cfg_.congestion_avoidance ? 2.0 : static_cast<double>(window_);

  hot_.snd_nxt.store(cfg_.initial_seq, std::memory_order_relaxed);
  hot_.snd_una.store(cfg_.initial_seq, std::memory_order_relaxed);
  hot_.rcv_nxt.store(cfg_.initial_seq, std::memory_order_relaxed);
  hot_.rto_ns.store(
      std::clamp(cfg_.rto_initial_ns, cfg_.rto_min_ns, cfg_.rto_max_ns),
      std::memory_order_relaxed);
  hot_.cwnd_pkts.store(static_cast<std::uint32_t>(cwnd_),
                       std::memory_order_relaxed);

  const obs::Labels labels{{"link", name_}};
  sent_ = &registry->counter("rel.sent", labels);
  delivered_ = &registry->counter("rel.delivered", labels);
  rejected_ = &registry->counter("rel.rejected", labels);
  retransmits_ = &registry->counter("rel.retransmits", labels);
  timeouts_ = &registry->counter("rel.timeouts", labels);
  fast_retransmits_ = &registry->counter("rel.fast_retransmits", labels);
  dup_acks_ = &registry->counter("rel.dup_acks", labels);
  acks_sent_ = &registry->counter("rel.acks_sent", labels);
  acks_dropped_ = &registry->counter("rel.acks_dropped", labels);
  rtt_samples_ = &registry->counter("rel.rtt_samples", labels);
  rx_duplicates_ = &registry->counter("rel.rx_duplicates", labels);

  registry->gauge_fn("rel.srtt_ns", labels, [this] {
    return static_cast<double>(hot_.srtt_ns.load(std::memory_order_relaxed));
  });
  registry->gauge_fn("rel.rttvar_ns", labels, [this] {
    return static_cast<double>(hot_.rttvar_ns.load(std::memory_order_relaxed));
  });
  registry->gauge_fn("rel.rto_ns", labels, [this] {
    return static_cast<double>(hot_.rto_ns.load(std::memory_order_relaxed));
  });
  registry->gauge_fn("rel.cwnd", labels, [this] {
    return static_cast<double>(hot_.cwnd_pkts.load(std::memory_order_relaxed));
  });
  registry->gauge_fn("rel.in_flight", labels, [this] {
    return static_cast<double>(hot_.in_flight.load(std::memory_order_relaxed));
  });
  registry->histogram_fn("rel.tx_occupancy", labels, [this] {
    LockGuard lock(mutex_);
    return occupancy_hist_;
  });
  registry->histogram_fn("rel.rtt_sample_ns", labels, [this] {
    LockGuard lock(mutex_);
    return rtt_hist_;
  });
}

ReliableChannel::~ReliableChannel() {
  // Drop snapshot callbacks before members die (counters are plain value
  // cells and may outlive us in the registry).
  registry_->remove_matching("link", name_);
  {
    LockGuard lock(mutex_);
    for (TxSlot& slot : tx_slots_) {
      if (slot.copy != nullptr) stash_pool_->free_raw(slot.copy);
      slot.copy = nullptr;
    }
    for (pkt::Packet*& p : rx_slots_) {
      if (p != nullptr) pool_.free_raw(p);
      p = nullptr;
    }
    while (!rx_ready_.empty()) {
      pool_.free_raw(rx_ready_.front());
      rx_ready_.pop_front();
    }
  }
  // Undelivered wire packets drain back to their owning pools.
  pkt::Packet* rx[kChunk];
  while (true) {
    const std::size_t n = wire_->poll_burst(rx, kChunk);
    if (n == 0) break;
    for (std::size_t i = 0; i < n; ++i) pool_.free_raw(rx[i]);
  }
}

void ReliableChannel::set_delay_ns(std::uint64_t delay_ns) noexcept {
  wire_->set_delay_ns(delay_ns);
  LockGuard lock(mutex_);
  ack_delay_ns_ = delay_ns;
}

std::uint64_t ReliableChannel::rto_ns() const noexcept {
  return hot_.rto_ns.load(std::memory_order_relaxed);
}
std::uint64_t ReliableChannel::srtt_ns() const noexcept {
  return hot_.srtt_ns.load(std::memory_order_relaxed);
}
std::uint64_t ReliableChannel::rttvar_ns() const noexcept {
  return hot_.rttvar_ns.load(std::memory_order_relaxed);
}
std::uint64_t ReliableChannel::retransmits() const noexcept {
  return retransmits_->value();
}
std::uint64_t ReliableChannel::timeouts() const noexcept {
  return timeouts_->value();
}
std::uint64_t ReliableChannel::fast_retransmits() const noexcept {
  return fast_retransmits_->value();
}
std::uint64_t ReliableChannel::dup_acks() const noexcept {
  return dup_acks_->value();
}

LinkStats ReliableChannel::stats() const noexcept {
  return LinkStats{sent_->value(), delivered_->value(), 0,
                   rejected_->value()};
}

bool ReliableChannel::drained() const noexcept {
  if (!wire_->drained()) return false;
  LockGuard lock(mutex_);
  return ack_wire_.empty() && rx_ready_.empty() &&
         hot_.rx_buffered.load(std::memory_order_relaxed) == 0 &&
         hot_.snd_una.load(std::memory_order_relaxed) ==
             hot_.snd_nxt.load(std::memory_order_relaxed);
}

std::size_t ReliableChannel::effective_window_locked() const noexcept {
  if (!cfg_.congestion_avoidance) return window_;
  const auto cw = static_cast<std::size_t>(cwnd_);
  return std::clamp<std::size_t>(cw, 1, window_);
}

void ReliableChannel::rtt_sample_locked(std::uint64_t sample_ns) {
  rtt_samples_->inc();
  rtt_hist_.record(sample_ns);
  // Jacobson/Karels in integer nanoseconds: srtt += err/8,
  // rttvar += (|err| - rttvar)/4, RTO = srtt + 4*rttvar, clamped.
  std::uint64_t srtt = hot_.srtt_ns.load(std::memory_order_relaxed);
  std::uint64_t rttvar = hot_.rttvar_ns.load(std::memory_order_relaxed);
  if (srtt == 0) {
    srtt = sample_ns;
    rttvar = sample_ns / 2;
  } else {
    const auto err = static_cast<std::int64_t>(sample_ns) -
                     static_cast<std::int64_t>(srtt);
    srtt = static_cast<std::uint64_t>(static_cast<std::int64_t>(srtt) +
                                      err / 8);
    const std::int64_t abs_err = err < 0 ? -err : err;
    rttvar = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(rttvar) +
        (abs_err - static_cast<std::int64_t>(rttvar)) / 4);
  }
  const std::uint64_t rto =
      std::clamp(srtt + 4 * rttvar, cfg_.rto_min_ns, cfg_.rto_max_ns);
  hot_.srtt_ns.store(srtt, std::memory_order_relaxed);
  hot_.rttvar_ns.store(rttvar, std::memory_order_relaxed);
  hot_.rto_ns.store(rto, std::memory_order_relaxed);
}

void ReliableChannel::process_ack_locked(const AckRec& ack,
                                         std::uint64_t now) {
  std::uint32_t una = hot_.snd_una.load(std::memory_order_relaxed);
  const std::uint32_t nxt = hot_.snd_nxt.load(std::memory_order_relaxed);
  // Timestamp-echo RTT sample: send -> arrival -> this ack reaching us.
  // Checked against the live slot so Karn's rule still holds if the
  // segment was retransmitted between the echo and now.
  if (ack.echo_tx_ns != 0) {
    const TxSlot& es = tx_slots_[slot_of(ack.echo_seq)];
    if (es.copy != nullptr && es.seq == ack.echo_seq && es.retx == 0 &&
        now > ack.echo_tx_ns) {
      rtt_sample_locked(now - ack.echo_tx_ns);
    }
  }
  if (seq_lt(una, ack.cum_nxt) && seq_leq(ack.cum_nxt, nxt)) {
    // Cumulative advance: release stash copies. RTT sampling happens via
    // the timestamp echo below, never from the cumulative ack itself — an
    // advance after a hole repair measures the recovery time, not the
    // path RTT, and feeding it back would run SRTT away to rto_max.
    std::uint32_t acked = 0;
    for (std::uint32_t s = una; seq_lt(s, ack.cum_nxt); ++s, ++acked) {
      TxSlot& slot = tx_slots_[slot_of(s)];
      if (slot.copy != nullptr) {
        stash_pool_->free_raw(slot.copy);
        slot.copy = nullptr;
      }
      slot.sacked = false;
    }
    una = ack.cum_nxt;
    hot_.snd_una.store(una, std::memory_order_relaxed);
    hot_.in_flight.store(nxt - una, std::memory_order_relaxed);
    hot_.backoff.store(0, std::memory_order_relaxed);
    dupack_run_ = 0;
    if (cfg_.congestion_avoidance) {
      // Slow start below ssthresh, then additive increase per acked
      // segment; growth capped at the flow-control window.
      for (std::uint32_t i = 0; i < acked; ++i) {
        cwnd_ += cwnd_ < ssthresh_ ? 1.0 : 1.0 / std::max(cwnd_, 1.0);
      }
      cwnd_ = std::min(cwnd_, static_cast<double>(window_));
      hot_.cwnd_pkts.store(static_cast<std::uint32_t>(cwnd_),
                           std::memory_order_relaxed);
    }
  } else if (ack.cum_nxt == una && una != nxt) {
    // Duplicate cumulative ack while data is outstanding.
    dup_acks_->inc();
    ++dupack_run_;
    if (dupack_run_ == cfg_.dupack_threshold) {
      retransmit_head_locked(now);
      fast_retransmits_->inc();
      if (cfg_.congestion_avoidance) {
        cwnd_ = std::max(cwnd_ / 2.0, 2.0);
        ssthresh_ = cwnd_;
        hot_.cwnd_pkts.store(static_cast<std::uint32_t>(cwnd_),
                             std::memory_order_relaxed);
      }
    }
  }
  // Selective acks: mark received-out-of-order segments. Enough SACKed
  // segments above the hole prove the hole is a loss, not reordering —
  // retransmit it immediately instead of waiting out the RTO (with
  // batched acks, one ack can carry all the evidence three classic dup
  // acks would).
  std::uint32_t sacked_above_hole = 0;
  for (std::uint32_t i = 0; i < 64 && ack.sack != 0; ++i) {
    if ((ack.sack & (1ULL << i)) == 0) continue;
    const std::uint32_t s = ack.cum_nxt + 1 + i;
    if (seq_leq(una, s) && seq_lt(s, nxt)) {
      tx_slots_[slot_of(s)].sacked = true;
      ++sacked_above_hole;
    }
  }
  if (sacked_above_hole >= cfg_.dupack_threshold && una != nxt) {
    TxSlot& head = tx_slots_[slot_of(una)];
    if (head.copy != nullptr && head.retx == 0) {
      retransmit_head_locked(now);
      fast_retransmits_->inc();
      if (cfg_.congestion_avoidance) {
        cwnd_ = std::max(cwnd_ / 2.0, 2.0);
        ssthresh_ = cwnd_;
        hot_.cwnd_pkts.store(static_cast<std::uint32_t>(cwnd_),
                             std::memory_order_relaxed);
      }
    }
  }
}

void ReliableChannel::retransmit_head_locked(std::uint64_t now) {
  const std::uint32_t una = hot_.snd_una.load(std::memory_order_relaxed);
  if (una == hot_.snd_nxt.load(std::memory_order_relaxed)) return;
  TxSlot& slot = tx_slots_[slot_of(una)];
  if (slot.copy == nullptr) return;
  // The clone comes from the APP pool, not the stash: once delivered it
  // is indistinguishable from an original and travels arbitrarily far
  // down the chain — it must not be owned by a pool whose lifetime is
  // tied to this channel. The stash owns only the window copies, which
  // never leave the channel.
  pkt::Packet* clone = pool_.alloc_raw();
  if (clone == nullptr) return;  // Pool exhausted; retry on next pump.
  slot.copy->clone_into(*clone);
  if (!wire_->send(clone)) {
    pool_.free_raw(clone);  // Wire full; retry on next pump.
    return;
  }
  slot.sent_ns = now;  // Restart the timer from this transmission.
  ++slot.retx;         // Karn: this segment no longer yields RTT samples.
  retransmits_->inc();
}

void ReliableChannel::check_rto_locked(std::uint64_t now) {
  const std::uint32_t una = hot_.snd_una.load(std::memory_order_relaxed);
  if (una == hot_.snd_nxt.load(std::memory_order_relaxed)) return;
  const TxSlot& head = tx_slots_[slot_of(una)];
  if (head.copy == nullptr) return;
  const std::uint32_t backoff = hot_.backoff.load(std::memory_order_relaxed);
  const std::uint64_t rto_eff =
      std::min(hot_.rto_ns.load(std::memory_order_relaxed) << backoff,
               cfg_.rto_max_ns);
  if (now - head.sent_ns < rto_eff) return;
  timeouts_->inc();
  retransmit_head_locked(now);
  hot_.backoff.store(std::min(backoff + 1, cfg_.max_backoff),
                     std::memory_order_relaxed);
  if (cfg_.congestion_avoidance) {
    const std::uint32_t flight =
        hot_.in_flight.load(std::memory_order_relaxed);
    ssthresh_ = std::max(static_cast<double>(flight) / 2.0, 2.0);
    cwnd_ = 1.0;
    hot_.cwnd_pkts.store(1, std::memory_order_relaxed);
  }
}

void ReliableChannel::emit_ack_locked(std::uint64_t now,
                                      std::uint32_t echo_seq,
                                      std::uint64_t echo_tx_ns) {
  // Reverse-wire loss: acks take the same per-packet loss probability as
  // the forward wire, from a dedicated deterministic stream (cumulative
  // acks make individual losses harmless).
  const LinkConfig& wc = wire_->config();
  if (wc.loss > 0.0) {
    const std::uint64_t draw =
        rt::splitmix64(ack_loss_counter_++ ^ (wc.seed + 0x9e3779b97f4a7c15ULL));
    if (static_cast<double>(draw >> 11) * 0x1.0p-53 < wc.loss) {
      acks_dropped_->inc();
      return;
    }
  }
  const std::uint32_t rcv_nxt = hot_.rcv_nxt.load(std::memory_order_relaxed);
  std::uint64_t sack = 0;
  for (std::uint32_t i = 0; i < 64 && i + 1 < window_; ++i) {
    const std::uint32_t s = rcv_nxt + 1 + i;
    pkt::Packet* p = rx_slots_[slot_of(s)];
    if (p != nullptr && p->anno().tseq == s) sack |= 1ULL << i;
  }
  ack_wire_.push_back(
      AckRec{now + ack_delay_ns_, rcv_nxt, sack, echo_seq, echo_tx_ns});
  acks_sent_->inc();
}

void ReliableChannel::drain_wire_locked(std::uint64_t now) {
  pkt::Packet* rx[kChunk];
  bool any = false;
  // Timestamp echo for this batch's ack: the sender's own tx slot for a
  // fresh arrival still holds its original send time (same object, same
  // lock), so the echo needs no extra bytes on the wire packets.
  std::uint32_t echo_seq = 0;
  std::uint64_t echo_tx_ns = 0;
  while (true) {
    const std::size_t n = wire_->poll_burst(rx, kChunk);
    if (n == 0) break;
    any = true;
    std::uint32_t rcv_nxt = hot_.rcv_nxt.load(std::memory_order_relaxed);
    std::uint32_t buffered = hot_.rx_buffered.load(std::memory_order_relaxed);
    for (std::size_t i = 0; i < n; ++i) {
      pkt::Packet* p = rx[i];
      const std::uint32_t seq = p->anno().tseq;
      if (seq_lt(seq, rcv_nxt) ||
          !seq_lt(seq, rcv_nxt + static_cast<std::uint32_t>(window_))) {
        // Already delivered (retransmit raced the ack) or outside the rx
        // window (stale beyond-window retransmit): duplicate either way.
        rx_duplicates_->inc();
        pool_.free_raw(p);
        continue;
      }
      pkt::Packet*& slot = rx_slots_[slot_of(seq)];
      if (slot != nullptr) {
        rx_duplicates_->inc();
        pool_.free_raw(p);
        continue;
      }
      slot = p;
      ++buffered;
      const TxSlot& ts = tx_slots_[slot_of(seq)];
      if (ts.copy != nullptr && ts.seq == seq && ts.retx == 0) {
        echo_seq = seq;
        echo_tx_ns = ts.sent_ns;
      }
      // Promote the contiguous run into the in-order delivery queue.
      while (true) {
        pkt::Packet*& head = rx_slots_[slot_of(rcv_nxt)];
        if (head == nullptr || head->anno().tseq != rcv_nxt) break;
        rx_ready_.push_back(head);
        head = nullptr;
        --buffered;
        ++rcv_nxt;
      }
    }
    hot_.rcv_nxt.store(rcv_nxt, std::memory_order_relaxed);
    hot_.rx_buffered.store(buffered, std::memory_order_relaxed);
    if (n < kChunk) break;
  }
  // One cumulative+selective ack per drained batch (also for pure
  // duplicates: the dup ack is what arms fast retransmit).
  if (any) emit_ack_locked(now, echo_seq, echo_tx_ns);
}

void ReliableChannel::pump_locked(std::uint64_t now) {
  while (!ack_wire_.empty() && ack_wire_.front().deliver_at_ns <= now) {
    const AckRec ack = ack_wire_.front();
    ack_wire_.pop_front();
    process_ack_locked(ack, now);
  }
  check_rto_locked(now);
}

std::size_t ReliableChannel::send_burst_locked(std::span<pkt::Packet*> ps,
                                               std::uint64_t now) {
  const std::uint32_t una = hot_.snd_una.load(std::memory_order_relaxed);
  std::uint32_t nxt = hot_.snd_nxt.load(std::memory_order_relaxed);
  const std::size_t eff = effective_window_locked();
  const std::size_t in_flight = nxt - una;
  if (in_flight >= eff) return 0;
  std::size_t accept = std::min(ps.size(), eff - in_flight);

  // Stage: stamp sequence numbers and stash retransmission copies. The
  // copy happens BEFORE the wire push — ownership of the original
  // transfers at the push, and the wire's loss model may free it there.
  std::size_t staged = 0;
  for (; staged < accept; ++staged) {
    pkt::Packet* copy = stash_pool_->alloc_raw();
    if (copy == nullptr) break;
    pkt::Packet* p = ps[staged];
    p->anno().tseq = nxt + static_cast<std::uint32_t>(staged);
    p->clone_into(*copy);
    TxSlot& slot = tx_slots_[slot_of(p->anno().tseq)];
    slot.copy = copy;
    slot.sent_ns = now;
    slot.seq = p->anno().tseq;
    slot.retx = 0;
    slot.sacked = false;
  }

  const std::size_t wired = wire_->send_burst(ps.first(staged));
  // Roll back the contiguous rejected tail (wire queue full): the caller
  // keeps ownership of those packets and no window slot refers to them.
  for (std::size_t i = wired; i < staged; ++i) {
    TxSlot& slot = tx_slots_[slot_of(nxt + static_cast<std::uint32_t>(i))];
    stash_pool_->free_raw(slot.copy);
    slot.copy = nullptr;
  }
  nxt += static_cast<std::uint32_t>(wired);
  hot_.snd_nxt.store(nxt, std::memory_order_relaxed);
  hot_.in_flight.store(nxt - una, std::memory_order_relaxed);
  occupancy_hist_.record(nxt - una);
  return wired;
}

std::size_t ReliableChannel::send_burst(std::span<pkt::Packet*> ps) {
  if (ps.empty()) return 0;
  // Budget attribution: only accepted packets count as link_send ops
  // (window-rejected attempts are backpressure, retried by the caller).
  const std::uint64_t prof_t0 =
      SFC_UNLIKELY(obs::hot_profiler() != nullptr) ? rt::rdtsc() : 0;
  const std::uint64_t now = rt::now_ns();
  std::size_t n = 0;
  {
    LockGuard lock(mutex_);
    pump_locked(now);
    n = send_burst_locked(ps, now);
  }
  if (n != 0) {
    sent_->add(n);
    if (SFC_UNLIKELY(prof_t0 != 0)) {
      if (auto* slot = obs::prof_slot()) {
        slot->add(obs::ProfStage::kLinkSend, rt::rdtsc() - prof_t0, n);
      }
    }
  } else {
    rejected_->inc();
  }
  return n;
}

bool ReliableChannel::send(pkt::Packet* p) {
  pkt::Packet* one[1] = {p};
  return send_burst({one, 1}) == 1;
}

bool ReliableChannel::send_blocking(pkt::Packet* p, std::uint64_t timeout_ns) {
  const std::uint64_t deadline = rt::now_ns() + timeout_ns;
  std::uint64_t retries = 0;
  for (unsigned backoff = 1; !send(p);
       backoff = std::min(backoff * 2, 1024u)) {
    ++retries;
    if (rt::now_ns() > deadline) {
      obs::prof_count(obs::ProfCounter::kSendRetry, retries);
      return false;
    }
    // send() pumps acks/RTO under the hood, so spinning here makes
    // progress: the window reopens as soon as acks arrive.
    if (backoff <= 64) {
      for (unsigned i = 0; i < backoff; ++i) rt::cpu_relax();
    } else {
      std::this_thread::yield();
    }
  }
  if (retries != 0) obs::prof_count(obs::ProfCounter::kSendRetry, retries);
  return true;
}

std::size_t ReliableChannel::poll_burst(pkt::Packet** out, std::size_t max) {
  if (max == 0) return 0;
  // Attribute only productive polls, same policy as Link::poll_burst.
  const std::uint64_t prof_t0 =
      SFC_UNLIKELY(obs::hot_profiler() != nullptr) ? rt::rdtsc() : 0;
  const std::uint64_t now = rt::now_ns();
  std::size_t n = 0;
  {
    LockGuard lock(mutex_);
    pump_locked(now);
    drain_wire_locked(now);
    while (n < max && !rx_ready_.empty()) {
      out[n++] = rx_ready_.front();
      rx_ready_.pop_front();
    }
  }
  if (n != 0) {
    delivered_->add(n);
    if (SFC_UNLIKELY(prof_t0 != 0)) {
      if (auto* slot = obs::prof_slot()) {
        slot->add(obs::ProfStage::kLinkPoll, rt::rdtsc() - prof_t0, n);
      }
    }
  }
  return n;
}

pkt::Packet* ReliableChannel::poll() {
  pkt::Packet* out[1];
  return poll_burst(out, 1) == 1 ? out[0] : nullptr;
}

}  // namespace sfc::net
