#include "net/control.hpp"

#include <algorithm>
#include <thread>

#include "runtime/clock.hpp"

namespace sfc::net {

ControlPlane::ControlPlane(obs::Registry* registry) {
  if (registry == nullptr) {
    own_registry_ = std::make_unique<obs::Registry>();
    registry = own_registry_.get();
  }
  msgs_sent_ = &registry->counter("ctrl.msgs_sent");
  msgs_delivered_ = &registry->counter("ctrl.msgs_delivered");
  msgs_dropped_ = &registry->counter("ctrl.msgs_dropped_unknown_dest");
  wait_timeouts_ = &registry->counter("ctrl.wait_for_timeouts");
}

void ControlPlane::register_node(NodeId node) {
  LockGuard lock(mutex_);
  inboxes_.try_emplace(node);
}

void ControlPlane::set_delay(NodeId a, NodeId b, std::uint64_t one_way_ns) {
  LockGuard lock(mutex_);
  pair_delay_ns_[pair_key(a, b)] = one_way_ns;
}

void ControlPlane::set_region(NodeId node, std::uint32_t region) {
  LockGuard lock(mutex_);
  regions_[node] = region;
}

void ControlPlane::set_inter_region_delay(std::uint64_t one_way_ns) {
  LockGuard lock(mutex_);
  inter_region_delay_ns_ = one_way_ns;
}

void ControlPlane::set_region_delay(std::uint32_t region_a,
                                    std::uint32_t region_b,
                                    std::uint64_t one_way_ns) {
  LockGuard lock(mutex_);
  region_pair_delay_ns_[pair_key(region_a, region_b)] = one_way_ns;
}

std::uint64_t ControlPlane::delay_between(NodeId a, NodeId b) const {
  LockGuard lock(mutex_);
  return delay_between_locked(a, b);
}

std::uint64_t ControlPlane::delay_between_locked(NodeId a, NodeId b) const {
  if (const auto it = pair_delay_ns_.find(pair_key(a, b));
      it != pair_delay_ns_.end()) {
    return it->second;
  }
  const auto ra = regions_.find(a);
  const auto rb = regions_.find(b);
  if (ra != regions_.end() && rb != regions_.end() &&
      ra->second != rb->second) {
    if (const auto it = region_pair_delay_ns_.find(
            pair_key(ra->second, rb->second));
        it != region_pair_delay_ns_.end()) {
      return it->second;
    }
    return inter_region_delay_ns_;
  }
  return 0;
}

void ControlPlane::set_bandwidth_gbps(double gbps) {
  LockGuard lock(mutex_);
  ns_per_byte_ = gbps > 0.0 ? 8.0 / gbps : 0.0;
}

void ControlPlane::send(Message msg) {
  // One critical section: delay lookup, bandwidth charge, and the sorted
  // insert must agree on a single view of the config, and two back-to-back
  // locks would let another sender interleave between them.
  LockGuard lock(mutex_);
  const std::uint64_t deliver_at =
      rt::now_ns() + delay_between_locked(msg.from, msg.to) +
      static_cast<std::uint64_t>(ns_per_byte_ *
                                 static_cast<double>(msg.payload.size()));
  msgs_sent_->inc();
  auto it = inboxes_.find(msg.to);
  if (it == inboxes_.end()) {  // Unknown destination: silently dropped.
    msgs_dropped_->inc();
    return;
  }
  // Keep the inbox ordered by delivery time so heterogeneous delays do not
  // block short-delay messages behind long-delay ones.
  auto& q = it->second.queue;
  auto pos = std::upper_bound(
      q.begin(), q.end(), deliver_at,
      [](std::uint64_t t, const Timed& m) { return t < m.deliver_at_ns; });
  q.insert(pos, Timed{std::move(msg), deliver_at});
}

std::optional<Message> ControlPlane::poll(NodeId node) {
  LockGuard lock(mutex_);
  auto it = inboxes_.find(node);
  if (it == inboxes_.end() || it->second.queue.empty()) return std::nullopt;
  auto& head = it->second.queue.front();
  if (head.deliver_at_ns > rt::now_ns()) return std::nullopt;
  Message out = std::move(head.msg);
  it->second.queue.pop_front();
  msgs_delivered_->inc();
  return out;
}

std::optional<Message> ControlPlane::wait_for(NodeId node, std::uint32_t type,
                                              std::uint64_t timeout_ns,
                                              std::uint64_t tag) {
  const std::uint64_t deadline = rt::now_ns() + timeout_ns;
  while (true) {
    {
      // Scan the deliverable prefix in place and extract only a match.
      // Non-matching messages keep their slot and original deliver_at_ns,
      // so the sorted-inbox invariant holds and concurrent poll/wait_for
      // callers still see them (the old implementation pulled them into a
      // private stash and re-queued them stamped "now", reordering them
      // against later sends and hiding them from other consumers).
      LockGuard lock(mutex_);
      auto it = inboxes_.find(node);
      if (it != inboxes_.end()) {
        auto& q = it->second.queue;
        const std::uint64_t now = rt::now_ns();
        for (auto mit = q.begin();
             mit != q.end() && mit->deliver_at_ns <= now; ++mit) {
          if (mit->msg.type == type && (tag == 0 || mit->msg.tag == tag)) {
            Message out = std::move(mit->msg);
            q.erase(mit);
            msgs_delivered_->inc();
            return out;
          }
        }
      }
    }
    if (rt::now_ns() > deadline) break;
    std::this_thread::yield();
  }
  wait_timeouts_->inc();
  return std::nullopt;
}

}  // namespace sfc::net
