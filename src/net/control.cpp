#include "net/control.hpp"

#include <algorithm>
#include <thread>

#include "runtime/clock.hpp"

namespace sfc::net {

void ControlPlane::register_node(NodeId node) {
  std::lock_guard lock(mutex_);
  inboxes_.try_emplace(node);
}

void ControlPlane::set_delay(NodeId a, NodeId b, std::uint64_t one_way_ns) {
  std::lock_guard lock(mutex_);
  pair_delay_ns_[pair_key(a, b)] = one_way_ns;
}

void ControlPlane::set_region(NodeId node, std::uint32_t region) {
  std::lock_guard lock(mutex_);
  regions_[node] = region;
}

void ControlPlane::set_inter_region_delay(std::uint64_t one_way_ns) {
  std::lock_guard lock(mutex_);
  inter_region_delay_ns_ = one_way_ns;
}

void ControlPlane::set_region_delay(std::uint32_t region_a,
                                    std::uint32_t region_b,
                                    std::uint64_t one_way_ns) {
  std::lock_guard lock(mutex_);
  region_pair_delay_ns_[pair_key(region_a, region_b)] = one_way_ns;
}

std::uint64_t ControlPlane::delay_between(NodeId a, NodeId b) const {
  std::lock_guard lock(mutex_);
  if (const auto it = pair_delay_ns_.find(pair_key(a, b));
      it != pair_delay_ns_.end()) {
    return it->second;
  }
  const auto ra = regions_.find(a);
  const auto rb = regions_.find(b);
  if (ra != regions_.end() && rb != regions_.end() &&
      ra->second != rb->second) {
    if (const auto it = region_pair_delay_ns_.find(
            pair_key(ra->second, rb->second));
        it != region_pair_delay_ns_.end()) {
      return it->second;
    }
    return inter_region_delay_ns_;
  }
  return 0;
}

void ControlPlane::set_bandwidth_gbps(double gbps) {
  std::lock_guard lock(mutex_);
  ns_per_byte_ = gbps > 0.0 ? 8.0 / gbps : 0.0;
}

void ControlPlane::send(Message msg) {
  std::uint64_t deliver_at = rt::now_ns() + delay_between(msg.from, msg.to);
  {
    std::lock_guard lock(mutex_);
    deliver_at += static_cast<std::uint64_t>(
        ns_per_byte_ * static_cast<double>(msg.payload.size()));
  }
  std::lock_guard lock(mutex_);
  auto it = inboxes_.find(msg.to);
  if (it == inboxes_.end()) return;  // Unknown destination: silently dropped.
  // Keep the inbox ordered by delivery time so heterogeneous delays do not
  // block short-delay messages behind long-delay ones.
  auto& q = it->second.queue;
  auto pos = std::upper_bound(
      q.begin(), q.end(), deliver_at,
      [](std::uint64_t t, const Timed& m) { return t < m.deliver_at_ns; });
  q.insert(pos, Timed{std::move(msg), deliver_at});
}

std::optional<Message> ControlPlane::poll(NodeId node) {
  std::lock_guard lock(mutex_);
  auto it = inboxes_.find(node);
  if (it == inboxes_.end() || it->second.queue.empty()) return std::nullopt;
  auto& head = it->second.queue.front();
  if (head.deliver_at_ns > rt::now_ns()) return std::nullopt;
  Message out = std::move(head.msg);
  it->second.queue.pop_front();
  return out;
}

std::optional<Message> ControlPlane::wait_for(NodeId node, std::uint32_t type,
                                              std::uint64_t timeout_ns,
                                              std::uint64_t tag) {
  const std::uint64_t deadline = rt::now_ns() + timeout_ns;
  std::vector<Message> requeue;
  std::optional<Message> found;
  while (rt::now_ns() <= deadline) {
    if (auto msg = poll(node)) {
      if (msg->type == type && (tag == 0 || msg->tag == tag)) {
        found = std::move(msg);
        break;
      }
      requeue.push_back(std::move(*msg));
      continue;
    }
    std::this_thread::yield();
  }
  if (!requeue.empty()) {
    std::lock_guard lock(mutex_);
    auto it = inboxes_.find(node);
    if (it != inboxes_.end()) {
      const std::uint64_t now = rt::now_ns();
      for (auto rit = requeue.rbegin(); rit != requeue.rend(); ++rit) {
        it->second.queue.push_front(Timed{std::move(*rit), now});
      }
    }
  }
  return found;
}

}  // namespace sfc::net
