// Sliding-window reliable transport layered over a simulated Link.
//
// Structure follows sctrltp's sctp_core: a tx window of retransmission
// slots and an rx reassembly window, cumulative + selective acks, a
// Jacobson/Karels SRTT/RTTVAR estimator driving the adaptive RTO
// (exponential backoff on timeout, Karn's rule on retransmitted samples),
// and an optional AIMD congestion window (WITH_CONGAV). There is no timer
// thread: retransmission and ack processing are pumped from the existing
// data-path calls (send/poll at burst granularity), the same
// pump-on-touch model the rest of the runtime uses.
//
// The forward wire is a real Link (all loss/delay/reorder modeling, span
// tracing and per-wire counters apply to it unchanged, under the name
// "<name>.wire"). The reverse ack wire is modeled in-object: acks are
// plain records delayed by the same one-way latency and subjected to the
// same loss probability, drawn from their own deterministic stream.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "base/mutex.hpp"
#include "net/link.hpp"
#include "runtime/common.hpp"
#include "runtime/histogram.hpp"

namespace sfc::net {

struct ReliableConfig {
  /// Tx/rx window in packets (rounded up to a power of two, capped 1024).
  /// Also sizes the private retransmission stash pool.
  std::size_t window{128};
  /// RTO clamp. The floor absorbs scheduler jitter at LAN-scale delays;
  /// the ceiling bounds how long a lost head segment can stall the window.
  std::uint64_t rto_min_ns{200'000};
  std::uint64_t rto_max_ns{500'000'000};
  /// RTO before the first RTT sample lands (RFC 6298's 1s scaled to the
  /// simulation's microsecond links).
  std::uint64_t rto_initial_ns{3'000'000};
  /// Duplicate cumulative acks that trigger a fast retransmit.
  std::uint32_t dupack_threshold{3};
  /// Cap on exponential RTO backoff (effective RTO = rto << backoff).
  std::uint32_t max_backoff{6};
  /// AIMD congestion window (slow start / congestion avoidance, halve on
  /// fast retransmit, collapse to 1 on timeout). Off = flow control only.
  bool congestion_avoidance{false};
  /// First sequence number stamped (tests set this near 2^32 to cross the
  /// wraparound within a short run).
  std::uint32_t initial_seq{0};
};

/// RFC 1982-style serial arithmetic over uint32 sequence numbers.
constexpr bool seq_lt(std::uint32_t a, std::uint32_t b) noexcept {
  return static_cast<std::int32_t>(a - b) < 0;
}
constexpr bool seq_leq(std::uint32_t a, std::uint32_t b) noexcept {
  return static_cast<std::int32_t>(a - b) <= 0;
}

class ReliableChannel : public Port {
 public:
  /// @param pool Pool that owns the data packets traversing the channel
  ///             (duplicates are returned to their owning pool through it).
  /// @param link_cfg Forward-wire configuration; the modeled reverse ack
  ///             wire reuses its delay and loss probability.
  /// @param registry Metrics destination (rel.* gauges/counters labelled
  ///             with @p name); a private registry is used when null.
  /// @param span_site Span site id handed to the forward wire.
  ReliableChannel(pkt::PacketPool& pool, LinkConfig link_cfg,
                  ReliableConfig cfg = {}, obs::Registry* registry = nullptr,
                  std::string name = "rel", std::uint32_t span_site = 0);
  ~ReliableChannel() override;

  bool send(pkt::Packet* p) override;
  bool send_blocking(pkt::Packet* p,
                     std::uint64_t timeout_ns = 1'000'000'000) override;
  std::size_t send_burst(std::span<pkt::Packet*> ps) override;
  pkt::Packet* poll() override;
  std::size_t poll_burst(pkt::Packet** out, std::size_t max) override;

  /// sent = packets accepted from the app, delivered = packets handed to
  /// the app in order. dropped_loss stays 0: wire loss is repaired by
  /// retransmission, so the end-to-end invariant tightens to
  /// sent == delivered once drained. The wire's own loss shows up on the
  /// "<name>.wire" link counters.
  LinkStats stats() const noexcept override;
  bool drained() const noexcept override;

  /// Current base RTO (without backoff). Nonzero once constructed, so
  /// FtcNode can key its parked-work timeout off it.
  std::uint64_t rto_ns() const noexcept override;

  std::uint64_t srtt_ns() const noexcept;
  std::uint64_t rttvar_ns() const noexcept;
  std::uint64_t retransmits() const noexcept;
  std::uint64_t timeouts() const noexcept;
  std::uint64_t fast_retransmits() const noexcept;
  std::uint64_t dup_acks() const noexcept;

  /// The underlying forward wire (tests inspect its loss counters and
  /// step its delay mid-run).
  Link& wire() noexcept { return *wire_; }
  const ReliableConfig& reliable_config() const noexcept { return cfg_; }

  /// Steps the one-way delay of both the forward wire and the modeled ack
  /// wire (RTO-adaptation tests).
  void set_delay_ns(std::uint64_t delay_ns) noexcept;

  /// Hot window state, cache-line padded in the sctrltp sctp_core layout:
  /// sender line / estimator line / receiver line, so the sender's seq
  /// advance never bounces the line the estimator or receiver spins on.
  /// All fields are relaxed mirrors maintained under the channel mutex;
  /// lock-free readers (gauges, rto_ns(), FtcNode) see consistent-enough
  /// point-in-time values.
  struct WindowHot {
    // --- Sender line. ---
    alignas(rt::kCacheLineSize) std::atomic<std::uint32_t> snd_nxt{0};
    std::atomic<std::uint32_t> snd_una{0};
    std::atomic<std::uint32_t> in_flight{0};
    std::atomic<std::uint32_t> cwnd_pkts{0};
    // --- Estimator line. ---
    alignas(rt::kCacheLineSize) std::atomic<std::uint64_t> srtt_ns{0};
    std::atomic<std::uint64_t> rttvar_ns{0};
    std::atomic<std::uint64_t> rto_ns{0};
    std::atomic<std::uint32_t> backoff{0};
    // --- Receiver line. ---
    alignas(rt::kCacheLineSize) std::atomic<std::uint32_t> rcv_nxt{0};
    std::atomic<std::uint32_t> rx_buffered{0};
  };
  static_assert(offsetof(WindowHot, snd_nxt) == 0);
  static_assert(offsetof(WindowHot, srtt_ns) == rt::kCacheLineSize);
  static_assert(offsetof(WindowHot, rcv_nxt) == 2 * rt::kCacheLineSize);
  static_assert(sizeof(WindowHot) == 3 * rt::kCacheLineSize);

 private:
  /// One tx window slot: the private stash copy kept for retransmission
  /// until cumulatively acked.
  struct TxSlot {
    pkt::Packet* copy{nullptr};  ///< null = slot free.
    std::uint64_t sent_ns{0};    ///< Last (re)transmission time.
    std::uint32_t seq{0};
    std::uint32_t retx{0};       ///< Karn's rule: >0 disables RTT sampling.
    bool sacked{false};
  };

  /// Modeled reverse-wire ack in flight.
  struct AckRec {
    std::uint64_t deliver_at_ns{0};
    std::uint32_t cum_nxt{0};  ///< Receiver's rcv_nxt (next expected seq).
    std::uint64_t sack{0};     ///< Bit i = seq cum_nxt+1+i buffered.
    /// Timestamp echo (RFC 7323 idea): original send time of the freshest
    /// never-retransmitted segment that arrived in the batch this ack
    /// covers, so the sender samples RTT per actual arrival — immune to
    /// the cumulative ack being held back by an earlier hole. 0 = none.
    std::uint32_t echo_seq{0};
    std::uint64_t echo_tx_ns{0};
  };

  std::size_t slot_of(std::uint32_t seq) const noexcept {
    return seq & (window_ - 1);
  }

  // All of the below run under mutex_.
  void pump_locked(std::uint64_t now) SFC_REQUIRES(mutex_);
  void process_ack_locked(const AckRec& ack, std::uint64_t now)
      SFC_REQUIRES(mutex_);
  void rtt_sample_locked(std::uint64_t sample_ns) SFC_REQUIRES(mutex_);
  void check_rto_locked(std::uint64_t now) SFC_REQUIRES(mutex_);
  void retransmit_head_locked(std::uint64_t now) SFC_REQUIRES(mutex_);
  void drain_wire_locked(std::uint64_t now) SFC_REQUIRES(mutex_);
  void emit_ack_locked(std::uint64_t now, std::uint32_t echo_seq,
                       std::uint64_t echo_tx_ns) SFC_REQUIRES(mutex_);
  std::size_t effective_window_locked() const noexcept
      SFC_REQUIRES(mutex_);
  std::size_t send_burst_locked(std::span<pkt::Packet*> ps,
                                std::uint64_t now) SFC_REQUIRES(mutex_);

  pkt::PacketPool& pool_;           ///< Free-path handle for duplicates.
  const ReliableConfig cfg_;
  const std::size_t window_;        ///< Power of two.
  const std::string name_;

  std::unique_ptr<obs::Registry> own_registry_;
  obs::Registry* registry_{nullptr};

  /// Retransmission stash: private so a saturating app pool cannot starve
  /// recovery (same reasoning as the chain's internal pool).
  std::unique_ptr<pkt::PacketPool> stash_pool_;
  std::unique_ptr<Link> wire_;      ///< Forward wire ("<name>.wire").

  WindowHot hot_;

  /// Transport rank: the channel drives its underlying wire Link
  /// (rank kLink) while holding this mutex.
  mutable Mutex mutex_{ranks::kTransport, "net.reliable"};
  // Tx state.
  std::vector<TxSlot> tx_slots_ SFC_GUARDED_BY(mutex_);
  /// Packets (fractional growth in CA).
  double cwnd_ SFC_GUARDED_BY(mutex_){1.0};
  double ssthresh_ SFC_GUARDED_BY(mutex_);
  std::uint32_t dupack_run_ SFC_GUARDED_BY(mutex_){0};
  // Rx state.
  std::vector<pkt::Packet*> rx_slots_ SFC_GUARDED_BY(mutex_);
  std::deque<pkt::Packet*> rx_ready_ SFC_GUARDED_BY(mutex_);
  // Modeled reverse wire.
  std::deque<AckRec> ack_wire_ SFC_GUARDED_BY(mutex_);
  std::uint64_t ack_delay_ns_ SFC_GUARDED_BY(mutex_);
  std::uint64_t ack_loss_counter_ SFC_GUARDED_BY(mutex_){0};
  rt::Histogram occupancy_hist_ SFC_GUARDED_BY(mutex_);
  rt::Histogram rtt_hist_ SFC_GUARDED_BY(mutex_);

  // Registry-backed counters (hot path increments these directly).
  obs::Counter* sent_;
  obs::Counter* delivered_;
  obs::Counter* rejected_;
  obs::Counter* retransmits_;
  obs::Counter* timeouts_;
  obs::Counter* fast_retransmits_;
  obs::Counter* dup_acks_;
  obs::Counter* acks_sent_;
  obs::Counter* acks_dropped_;
  obs::Counter* rtt_samples_;
  obs::Counter* rx_duplicates_;
};

}  // namespace sfc::net
