// FTMB baseline (paper §7.1's re-implementation of Sherry et al. [51]).
//
// Per middlebox, FTMB dedicates a second server running the input logger
// (IL) and output logger (OL); packets flow IL -> Master -> OL. The master
// tracks accesses to shared state with packet access logs (PALs) and
// transmits each PAL to the OL in a separate message; the OL releases a
// data packet only once its PALs have arrived. Following the paper's
// prototype simplifications: PALs are assumed delivered on the first
// attempt, the OL retains only the last PAL, and no snapshots are taken —
// making this an upper bound on the original system. The optional
// snapshot mode adds the paper's Figure-9 stall simulation (a 6 ms pause
// every 50 ms) on the master.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <vector>

#include "base/mutex.hpp"
#include "core/config.hpp"
#include "mbox/middlebox.hpp"
#include "net/link.hpp"
#include "packet/packet_pool.hpp"
#include "runtime/histogram.hpp"
#include "runtime/meter.hpp"
#include "runtime/worker.hpp"

namespace sfc::ftmb {

/// Master server: runs the middlebox, emits PALs to the OL.
class FtmbMaster : rt::NonCopyable {
 public:
  FtmbMaster(std::uint32_t position, const ftc::ChainConfig& cfg,
             pkt::PacketPool& pool,
             std::function<std::unique_ptr<mbox::Middlebox>()> factory,
             bool snapshots)
      : position_(position),
        cfg_(cfg),
        pool_(pool),
        mbox_(factory ? factory() : nullptr),
        store_(cfg.num_partitions),
        txn_ctx_(store_),
        snapshots_(snapshots) {}

  ~FtmbMaster() { stop(); }

  /// @param in   Link from the IL.
  /// @param out  Link to the OL (carries data packets AND PAL packets).
  void attach_data_path(net::Port* in, net::Port* out) {
    in_link_.store(in);
    out_link_.store(out);
  }

  void start();
  void stop() { workers_.clear(); }

  const rt::Meter& meter() const noexcept { return meter_; }
  std::uint64_t pals_sent() const noexcept { return pals_sent_.load(); }
  std::uint64_t snapshot_stalls() const noexcept { return stalls_.load(); }

  void enable_cycle_accounting(bool on) noexcept { account_cycles_ = on; }
  /// Productive cycles per packet, median (includes PAL generation,
  /// excludes backpressure; snapshot stalls are reported separately as a
  /// duty-cycle loss via stall_ns_total()).
  double busy_cycles_per_packet() const {
    LockGuard lock(busy_mutex_);
    return busy_hist_.count() ? static_cast<double>(busy_hist_.p50()) : 0.0;
  }

  void record_busy(std::uint64_t cycles) {
    LockGuard lock(busy_mutex_);
    busy_hist_.record(cycles);
  }

  /// Cumulative wall time spent in snapshot stalls. While a master
  /// checkpoints, the whole chain pipeline halts (paper §7.4).
  std::uint64_t stall_ns_total() const noexcept {
    return stall_ns_total_.load(std::memory_order_relaxed);
  }

 private:
  bool worker_body(std::uint32_t thread_id);
  void maybe_snapshot_stall();

  const std::uint32_t position_;
  const ftc::ChainConfig& cfg_;
  pkt::PacketPool& pool_;
  std::unique_ptr<mbox::Middlebox> mbox_;
  state::StateStore store_;
  state::TxnContext txn_ctx_;
  const bool snapshots_;

  std::atomic<net::Port*> in_link_{nullptr};
  std::atomic<net::Port*> out_link_{nullptr};
  std::vector<std::unique_ptr<rt::Worker>> workers_;
  rt::Meter meter_;
  std::atomic<std::uint64_t> pals_sent_{0};
  std::atomic<std::uint64_t> drops_{0};
  bool account_cycles_{false};
  mutable Mutex busy_mutex_{ranks::kLeaf, "ftmb.master_busy"};
  rt::Histogram busy_hist_ SFC_GUARDED_BY(busy_mutex_);

  // Snapshot stall machinery: when due, one thread stalls everyone by
  // setting pause_until; all threads spin it out (a stop-the-world
  // checkpoint, as the paper simulates for Figure 9).
  std::atomic<std::uint64_t> pause_until_ns_{0};
  std::atomic<std::uint64_t> next_snapshot_ns_{0};
  std::atomic<std::uint64_t> stalls_{0};
  std::atomic<std::uint64_t> stall_ns_total_{0};
};

/// Logger server: IL on the upstream side, OL on the downstream side.
class FtmbLogger : rt::NonCopyable {
 public:
  FtmbLogger(std::uint32_t position, const ftc::ChainConfig& cfg,
             pkt::PacketPool& pool)
      : position_(position), cfg_(cfg), pool_(pool) {}

  ~FtmbLogger() { stop(); }

  /// @param from_chain  Upstream traffic into the IL.
  /// @param to_master   IL -> master.
  /// @param from_master Master -> OL (data + PALs).
  /// @param to_chain    OL -> downstream.
  void attach(net::Port* from_chain, net::Port* to_master,
              net::Port* from_master, net::Port* to_chain) {
    from_chain_.store(from_chain);
    to_master_.store(to_master);
    from_master_.store(from_master);
    to_chain_.store(to_chain);
  }

  void start();
  void stop() { workers_.clear(); }

  std::uint64_t pals_received() const noexcept { return pals_received_.load(); }
  std::uint64_t inputs_logged() const noexcept { return inputs_logged_.load(); }

  void enable_cycle_accounting(bool on) noexcept { account_cycles_ = on; }
  /// Productive cycles per DATA packet over both logger roles: IL and OL
  /// run on the same server, so the per-packet server cost is the IL
  /// median plus the OL median scaled by OL events (data + PALs) per data
  /// packet.
  double busy_cycles_per_packet() const {
    LockGuard lock(busy_mutex_);
    const double il = il_hist_.count() ? static_cast<double>(il_hist_.p50()) : 0.0;
    const double ol = ol_hist_.count() ? static_cast<double>(ol_hist_.p50()) : 0.0;
    const double ol_per_data =
        il_hist_.count()
            ? static_cast<double>(ol_hist_.count()) /
                  static_cast<double>(il_hist_.count())
            : 1.0;
    return il + ol * ol_per_data;
  }

  void record_il(std::uint64_t cycles) {
    LockGuard lock(busy_mutex_);
    il_hist_.record(cycles);
  }
  void record_ol(std::uint64_t cycles) {
    LockGuard lock(busy_mutex_);
    ol_hist_.record(cycles);
  }

 private:
  bool worker_body();

  const std::uint32_t position_;
  const ftc::ChainConfig& cfg_;
  pkt::PacketPool& pool_;

  std::atomic<net::Port*> from_chain_{nullptr};
  std::atomic<net::Port*> to_master_{nullptr};
  std::atomic<net::Port*> from_master_{nullptr};
  std::atomic<net::Port*> to_chain_{nullptr};

  std::vector<std::unique_ptr<rt::Worker>> workers_;
  std::atomic<std::uint64_t> pals_received_{0};
  std::atomic<std::uint64_t> inputs_logged_{0};
  bool account_cycles_{false};
  mutable Mutex busy_mutex_{ranks::kLeaf, "ftmb.logger_busy"};
  rt::Histogram il_hist_ SFC_GUARDED_BY(busy_mutex_);
  rt::Histogram ol_hist_ SFC_GUARDED_BY(busy_mutex_);

  // IL input log: bounded ring of packet copies (replay storage). The
  // memcpy is the modeled cost; the paper's IL similarly retains inputs
  // since the last checkpoint.
  static constexpr std::size_t kInputLogSlots = 64;
  pkt::Packet input_log_[kInputLogSlots];
  std::atomic<std::size_t> input_log_pos_{0};
};

}  // namespace sfc::ftmb
