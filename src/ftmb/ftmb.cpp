#include "ftmb/ftmb.hpp"

#include "packet/packet_io.hpp"
#include "runtime/clock.hpp"

namespace sfc::ftmb {

namespace {

constexpr std::uint32_t kPalMarker = 0x50414C00;  // "PAL\0"

pkt::Packet* make_pal_packet(pkt::PacketPool& pool, std::uint64_t packet_id) {
  pkt::Packet* pal = pool.alloc_raw();
  if (pal == nullptr) return nullptr;
  pkt::FlowKey ctrl{0x7f000001, 0x7f000003, 9998, 9998,
                    pkt::Ipv4Header::kProtoUdp};
  pkt::PacketBuilder(*pal).udp(ctrl, 64);
  pal->anno().is_control = true;
  pal->anno().aux = kPalMarker;
  pal->anno().packet_id = packet_id;
  return pal;
}

}  // namespace

void FtmbMaster::start() {
  next_snapshot_ns_.store(rt::now_ns() + cfg_.snapshot_interval_ns);
  for (std::size_t t = 0; t < cfg_.threads_per_node; ++t) {
    auto worker = std::make_unique<rt::Worker>();
    worker->start(
        "ftmb-m-" + std::to_string(position_) + "-t" + std::to_string(t),
        [this, t] { return worker_body(static_cast<std::uint32_t>(t)); });
    workers_.push_back(std::move(worker));
  }
}

void FtmbMaster::maybe_snapshot_stall() {
  if (!snapshots_) return;
  const std::uint64_t now = rt::now_ns();
  // Stop-the-world pause: one thread arms it; every thread honors it.
  std::uint64_t due = next_snapshot_ns_.load(std::memory_order_acquire);
  if (now >= due &&
      next_snapshot_ns_.compare_exchange_strong(due, now + cfg_.snapshot_interval_ns)) {
    pause_until_ns_.store(now + cfg_.snapshot_stall_ns, std::memory_order_release);
    stalls_.fetch_add(1, std::memory_order_relaxed);
  }
  const std::uint64_t pause_until = pause_until_ns_.load(std::memory_order_acquire);
  if (pause_until > now) {
    rt::spin_until_ns(pause_until);
    stall_ns_total_.fetch_add(rt::now_ns() - now, std::memory_order_relaxed);
  }
}

bool FtmbMaster::worker_body(std::uint32_t thread_id) {
  maybe_snapshot_stall();

  net::Port* in = in_link_.load(std::memory_order_acquire);
  net::Port* out = out_link_.load(std::memory_order_acquire);
  if (in == nullptr || out == nullptr) return false;
  pkt::Packet* p = in->poll();
  if (p == nullptr) return false;
  const std::uint64_t b0 = account_cycles_ ? rt::rdtsc() : 0;

  mbox::Verdict verdict = mbox::Verdict::kForward;
  std::uint32_t pal_count = 0;
  if (mbox_ != nullptr && !p->anno().is_control) {
    auto parsed = pkt::parse_packet(*p);
    if (!parsed) {
      verdict = mbox::Verdict::kDrop;
    } else {
      mbox::ProcessContext pctx;
      pctx.thread_id = thread_id;
      pctx.num_threads = static_cast<std::uint32_t>(cfg_.threads_per_node);
      if (mbox_->stateless()) {
        verdict = mbox_->process_stateless(*p, *parsed, pctx);
      } else {
        auto record = state::run_transaction(txn_ctx_, [&](state::Txn& txn) {
          pctx.deferred_rewrite.reset();
          verdict = mbox_->process(txn, *p, *parsed, pctx);
        });
        // One PAL per shared-state access (paper §7.1: "for every data
        // packet, a PAL is transmitted in a separate message").
        pal_count = record.accesses;
      }
      if (pctx.deferred_rewrite) pkt::rewrite_flow(*parsed, *pctx.deferred_rewrite);
    }
  }

  // Ship PALs ahead of the data packet on the same FIFO link so the OL has
  // them by the time the packet arrives.
  for (std::uint32_t i = 0; i < pal_count; ++i) {
    if (pkt::Packet* pal = make_pal_packet(pool_, p->anno().packet_id)) {
      if (!out->send_blocking(pal)) pool_.free_raw(pal);
      pals_sent_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  if (verdict == mbox::Verdict::kDrop) {
    drops_.fetch_add(1, std::memory_order_relaxed);
    pool_.free_raw(p);
    return true;
  }
  p->anno().aux = pal_count;
  meter_.add(1, p->size());
  if (account_cycles_) record_busy(rt::rdtsc() - b0);
  if (!out->send_blocking(p)) pool_.free_raw(p);
  return true;
}

void FtmbLogger::start() {
  for (std::size_t t = 0; t < cfg_.threads_per_node; ++t) {
    auto worker = std::make_unique<rt::Worker>();
    worker->start("ftmb-log-" + std::to_string(position_) + "-t" +
                      std::to_string(t),
                  [this] { return worker_body(); });
    workers_.push_back(std::move(worker));
  }
}

bool FtmbLogger::worker_body() {
  bool did_work = false;

  // IL side: log the input (memcpy into the bounded replay ring), forward
  // to the master.
  if (net::Port* in = from_chain_.load(std::memory_order_acquire)) {
    if (pkt::Packet* p = in->poll()) {
      const std::uint64_t b0 = account_cycles_ ? rt::rdtsc() : 0;
      const std::size_t slot =
          input_log_pos_.fetch_add(1, std::memory_order_relaxed) %
          kInputLogSlots;
      p->clone_into(input_log_[slot]);
      inputs_logged_.fetch_add(1, std::memory_order_relaxed);
      if (account_cycles_) record_il(rt::rdtsc() - b0);
      net::Port* to_m = to_master_.load(std::memory_order_acquire);
      if (to_m == nullptr || !to_m->send_blocking(p)) pool_.free_raw(p);
      did_work = true;
    }
  }

  // OL side: absorb PALs; release data packets downstream. PALs arrive
  // before their data packet on the FIFO master link (first-attempt
  // delivery, per the paper's prototype assumption), so no hold is needed;
  // the per-PAL receive work is the modeled cost.
  if (net::Port* from_m = from_master_.load(std::memory_order_acquire)) {
    if (pkt::Packet* p = from_m->poll()) {
      const std::uint64_t b0 = account_cycles_ ? rt::rdtsc() : 0;
      if (p->anno().is_control && p->anno().aux == kPalMarker) {
        pals_received_.fetch_add(1, std::memory_order_relaxed);
        pool_.free_raw(p);  // OL keeps only the last PAL (paper §7.1).
        if (account_cycles_) record_ol(rt::rdtsc() - b0);
      } else {
        if (account_cycles_) record_ol(rt::rdtsc() - b0);
        net::Port* out = to_chain_.load(std::memory_order_acquire);
        if (out == nullptr || !out->send_blocking(p)) pool_.free_raw(p);
      }
      did_work = true;
    }
  }
  return did_work;
}

}  // namespace sfc::ftmb
