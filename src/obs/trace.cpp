#include "obs/trace.hpp"

#include <algorithm>

#include "runtime/clock.hpp"

namespace sfc::obs {

const char* to_string(Event e) noexcept {
  switch (e) {
    case Event::kPacketParked: return "park";
    case Event::kPacketUnparked: return "unpark";
    case Event::kNackSent: return "nack_sent";
    case Event::kNackServed: return "nack_served";
    case Event::kNackApplied: return "nack_applied";
    case Event::kCommitAttach: return "commit_attach";
    case Event::kFailure: return "failure";
    case Event::kFailureDetected: return "failure_detected";
    case Event::kRecoverySpawn: return "recovery_spawn";
    case Event::kRecoveryInit: return "recovery_init";
    case Event::kRecoveryInitAck: return "recovery_init_ack";
    case Event::kRecoveryFetchStart: return "recovery_fetch_start";
    case Event::kRecoveryFetchDone: return "recovery_fetch_done";
    case Event::kRecoveryDone: return "recovery_done";
    case Event::kRecoveryRerouted: return "recovery_rerouted";
  }
  return "?";
}

EventTrace::EventTrace(std::size_t capacity)
    : capacity_(std::max<std::size_t>(1, capacity)) {
  ring_.reserve(capacity_);
}

void EventTrace::emit(Event type, std::uint64_t a, std::uint64_t b) noexcept {
  const std::uint64_t now = rt::now_ns();
  LockGuard lock(mutex_);
  if (ring_.size() < capacity_) {
    ring_.push_back(TraceEvent{now, type, a, b});
  } else {
    ring_[next_ % capacity_] = TraceEvent{now, type, a, b};
  }
  ++next_;
}

std::vector<TraceEvent> EventTrace::snapshot() const {
  LockGuard lock(mutex_);
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;
  } else {
    // Oldest-first: the next write slot holds the oldest retained event.
    const std::size_t start = next_ % capacity_;
    for (std::size_t i = 0; i < capacity_; ++i) {
      out.push_back(ring_[(start + i) % capacity_]);
    }
  }
  return out;
}

std::uint64_t EventTrace::total_emitted() const {
  LockGuard lock(mutex_);
  return next_;
}

std::uint64_t EventTrace::dropped() const {
  LockGuard lock(mutex_);
  return next_ > capacity_ ? next_ - capacity_ : 0;
}

bool EventTrace::contains_sequence(std::initializer_list<Event> types) const {
  const auto events = snapshot();
  auto want = types.begin();
  for (const auto& e : events) {
    if (want == types.end()) break;
    if (e.type == *want) ++want;
  }
  return want == types.end();
}

std::vector<TraceEvent> EventTrace::events_of(Event type) const {
  auto events = snapshot();
  std::erase_if(events, [type](const TraceEvent& e) { return e.type != type; });
  return events;
}

void EventTrace::clear() {
  LockGuard lock(mutex_);
  ring_.clear();
  next_ = 0;
}

}  // namespace sfc::obs
