// Observability: chain-wide metrics registry (tentpole of the obs layer).
//
// Components (nodes, links, control plane, buffer, orchestrator) register
// named counters/gauges/timers with identity labels instead of growing
// bespoke stats structs. The hot path touches only the returned metric
// object — a relaxed atomic increment for counters — while registration,
// lookup, and snapshotting take the registry mutex (cold path). Snapshots
// feed the JSON/CSV exporter (obs/export.hpp) and the `sfc_cli stats`
// command; protocol event traces (obs/trace.hpp) register here too so one
// snapshot captures the whole chain.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "base/mutex.hpp"
#include "obs/trace.hpp"
#include "runtime/common.hpp"
#include "runtime/histogram.hpp"

namespace sfc::obs {

class SpanCollector;  // obs/span.hpp

/// Metric identity labels, e.g. {{"node","3"},{"pos","1"}}. Order does not
/// matter for identity; the registry canonicalizes by sorting.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotonic event count. Relaxed atomic: safe for concurrent writers and
/// cheap enough for the per-packet path.
class Counter : rt::NonCopyable {
 public:
  void add(std::uint64_t n) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  void inc() noexcept { add(1); }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  alignas(rt::kCacheLineSize) std::atomic<std::uint64_t> value_{0};
};

/// Point-in-time level (queue depth, held packets, ...).
class Gauge : rt::NonCopyable {
 public:
  void set(std::int64_t v) noexcept {
    value_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t d) noexcept {
    value_.fetch_add(d, std::memory_order_relaxed);
  }
  std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  alignas(rt::kCacheLineSize) std::atomic<std::int64_t> value_{0};
};

/// Duration/value distribution backed by rt::Histogram. Recording takes a
/// mutex — meant for protocol-rate events (recoveries, NACK round trips),
/// not the per-packet fast path (components keep per-thread histograms for
/// that and expose them via Registry::histogram_fn).
class Timer : rt::NonCopyable {
 public:
  void record(std::uint64_t value) noexcept {
    LockGuard lock(mutex_);
    hist_.record(value);
  }

  rt::Histogram snapshot() const {
    LockGuard lock(mutex_);
    return hist_;
  }

  void reset() noexcept {
    LockGuard lock(mutex_);
    hist_.reset();
  }

 private:
  mutable Mutex mutex_{ranks::kLeaf, "obs.timer"};
  rt::Histogram hist_ SFC_GUARDED_BY(mutex_);
};

/// One exported metric value (see Registry::snapshot).
struct Sample {
  enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };
  std::string name;
  Labels labels;
  Kind kind{Kind::kCounter};
  double value{0};        ///< Counter/gauge value.
  rt::Histogram hist;     ///< Kind::kHistogram only.
};

/// A trace with its identity, as captured by Registry::trace_snapshot.
struct TraceDump {
  std::string name;
  Labels labels;
  std::uint64_t dropped{0};  ///< Events evicted by the bounded ring.
  std::vector<TraceEvent> events;
};

class Registry : rt::NonCopyable {
 public:
  /// Returns the counter registered under (name, labels), creating it on
  /// first use. The reference stays valid for the registry's lifetime.
  Counter& counter(std::string_view name, Labels labels = {});
  Gauge& gauge(std::string_view name, Labels labels = {});
  Timer& timer(std::string_view name, Labels labels = {});

  /// Bounded protocol event trace (obs/trace.hpp) with identity labels.
  EventTrace& trace(std::string_view name, Labels labels = {},
                    std::size_t capacity = EventTrace::kDefaultCapacity);

  /// Registers a gauge computed on demand at snapshot time (e.g. a queue
  /// depth owned by another struct). The callback must stay valid until
  /// the registry is destroyed or the owner is unregistered via
  /// remove_matching().
  void gauge_fn(std::string_view name, Labels labels,
                std::function<double()> fn);

  /// Registers a histogram captured on demand at snapshot time (adapter
  /// for components that keep their own rt::Histogram).
  void histogram_fn(std::string_view name, Labels labels,
                    std::function<rt::Histogram()> fn);

  /// Drops every callback metric whose labels contain (key, value) —
  /// components deregister their snapshot callbacks before dying.
  void remove_matching(std::string_view label_key, std::string_view value);

  /// Point-in-time values of every registered metric (callbacks invoked).
  std::vector<Sample> snapshot() const;

  /// Every registered event trace, oldest event first.
  std::vector<TraceDump> trace_snapshot() const;

  std::size_t metric_count() const;

  /// Zeroes every registered counter and timer (gauges and callback
  /// metrics keep their owners' state). Benches call this between warmup
  /// and the measured window so reported totals cover only the window.
  void reset_counters();

  // --- Span pipeline hooks (obs/span.hpp). -------------------------------
  // The SpanCollector registers itself here so per-packet instrumentation
  // points can reach it through the registry pointer they already hold.
  // span_sink() is a raw acquire load — the single cheap step after the
  // trace-id branch on the hot path. Install/uninstall only while the
  // chain is quiescent or before traffic starts.

  void set_span_sink(SpanCollector* sink) noexcept {
    span_sink_.store(sink, std::memory_order_release);
  }
  SpanCollector* span_sink() const noexcept {
    return span_sink_.load(std::memory_order_acquire);
  }

  /// Associates a human-readable name with a span site id (one track in
  /// the Chrome trace export).
  void name_span_site(std::uint32_t site, std::string name);
  std::map<std::uint32_t, std::string> span_site_names() const;

 private:
  template <typename T>
  struct Entry {
    std::string name;
    Labels labels;
    T value;
  };
  // EventTrace is neither copyable nor movable (mutex member), so its
  // entries are constructed in place via this dedicated type.
  struct TraceEntry {
    TraceEntry(std::string n, Labels l, std::size_t capacity)
        : name(std::move(n)), labels(std::move(l)), value(capacity) {}
    std::string name;
    Labels labels;
    EventTrace value;
  };
  struct GaugeFnEntry {
    std::string name;
    Labels labels;
    std::function<double()> fn;
  };
  struct HistFnEntry {
    std::string name;
    Labels labels;
    std::function<rt::Histogram()> fn;
  };

  static std::string key_of(char kind, std::string_view name,
                            const Labels& labels);
  static Labels canonical(Labels labels);

  /// Outermost observability rank: snapshot() invokes gauge/histogram
  /// callbacks under this mutex, and those callbacks take component locks
  /// (node park state, buffer occupancy) — so no component may call back
  /// into the registry while holding its own locks.
  mutable Mutex mutex_{ranks::kObs, "obs.registry"};
  // Deques: stable addresses across growth (references escape the lock).
  std::deque<Entry<Counter>> counters_ SFC_GUARDED_BY(mutex_);
  std::deque<Entry<Gauge>> gauges_ SFC_GUARDED_BY(mutex_);
  std::deque<Entry<Timer>> timers_ SFC_GUARDED_BY(mutex_);
  std::deque<TraceEntry> traces_ SFC_GUARDED_BY(mutex_);
  std::deque<GaugeFnEntry> gauge_fns_ SFC_GUARDED_BY(mutex_);
  std::deque<HistFnEntry> hist_fns_ SFC_GUARDED_BY(mutex_);
  std::unordered_map<std::string, void*> index_ SFC_GUARDED_BY(mutex_);
  std::map<std::uint32_t, std::string> site_names_ SFC_GUARDED_BY(mutex_);
  std::atomic<SpanCollector*> span_sink_{nullptr};
};

}  // namespace sfc::obs
