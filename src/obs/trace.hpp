// Observability: bounded per-node protocol event trace.
//
// A fixed-capacity ring of typed events (park/unpark, NACK sent/served,
// commit-vector attach, failure, recovery phases) with timestamps, so
// protocol tests and post-mortems can assert event *sequences* rather
// than only counts. Events are protocol-rate (loss, recovery, idle
// propagation), not per-packet, so a mutex-protected ring is cheap enough
// and keeps snapshots consistent.
#pragma once

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <vector>

#include "base/mutex.hpp"
#include "runtime/common.hpp"

namespace sfc::obs {

enum class Event : std::uint8_t {
  kPacketParked,       ///< a = mbox blocked on, b = parked count after.
  kPacketUnparked,     ///< a = mbox that unblocked, b = parked count after.
  kNackSent,           ///< a = mbox, b = target node.
  kNackServed,         ///< a = mbox, b = logs shipped.
  kNackApplied,        ///< a = mbox, b = logs applied from the response.
  kCommitAttach,       ///< a = mbox, b = applied count at attach.
  kFailure,            ///< Node crash-stopped (fail-stop). a = node id.
  kFailureDetected,    ///< Orchestrator: a = node id, b = position.
  kRecoverySpawn,      ///< Orchestrator: a = new node id, b = position.
  kRecoveryInit,       ///< Replica got its fetch plan. a = #sources.
  kRecoveryInitAck,    ///< Orchestrator saw the ack. a = node id.
  kRecoveryFetchStart, ///< Replica: a = mbox, b = source node.
  kRecoveryFetchDone,  ///< Replica: a = mbox, b = ok flag.
  kRecoveryDone,       ///< Replica finished. a = ok flag.
  kRecoveryRerouted,   ///< Orchestrator steered traffic. a = node id,
                       ///< b = position.
};

const char* to_string(Event e) noexcept;

struct TraceEvent {
  std::uint64_t ts_ns{0};
  Event type{Event::kPacketParked};
  std::uint64_t a{0};
  std::uint64_t b{0};
};

class EventTrace : rt::NonCopyable {
 public:
  static constexpr std::size_t kDefaultCapacity = 512;

  explicit EventTrace(std::size_t capacity = kDefaultCapacity);

  /// Records one event (timestamped now). Oldest events are evicted once
  /// the ring is full.
  void emit(Event type, std::uint64_t a = 0, std::uint64_t b = 0) noexcept;

  /// Events still in the ring, oldest first.
  std::vector<TraceEvent> snapshot() const;

  /// Total events ever emitted (including evicted ones).
  std::uint64_t total_emitted() const;

  /// Events evicted by the bounded ring.
  std::uint64_t dropped() const;

  /// True when the retained events contain @p types as a subsequence (in
  /// order, gaps allowed) — the protocol-test assertion primitive.
  bool contains_sequence(std::initializer_list<Event> types) const;

  /// Retained events of @p type, oldest first.
  std::vector<TraceEvent> events_of(Event type) const;

  void clear();

 private:
  mutable Mutex mutex_{ranks::kLeaf, "obs.trace"};
  std::vector<TraceEvent> ring_ SFC_GUARDED_BY(mutex_);
  std::size_t capacity_;
  /// Total emitted; ring_[next_ % capacity_] is the next write slot once
  /// the ring is full.
  std::uint64_t next_ SFC_GUARDED_BY(mutex_){0};
};

}  // namespace sfc::obs
