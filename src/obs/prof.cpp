#include "obs/prof.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "obs/registry.hpp"
#include "runtime/worker.hpp"

namespace sfc::obs {

namespace detail {
std::atomic<HotProfiler*> g_hot_profiler{nullptr};
}  // namespace detail

namespace {

// Generation counter so thread-local slot caches never hit a stale (freed
// and reallocated) profiler — the same idiom as the span collector's ring
// registration.
std::atomic<std::uint64_t> g_prof_gen{0};

struct TlsSlotCache {
  std::uint64_t gen{0};
  ProfSlot* slot{nullptr};
};
thread_local TlsSlotCache t_slot_cache;

constexpr const char* kStageNames[kProfStageCount] = {
    "poll",         "view_walk", "log_apply",   "tail_commit", "process",
    "append",       "egress_flush", "park_drain", "handoff_drain",
    "link_send",    "link_poll", "store_apply", "pool_alloc",  "pool_free",
};

constexpr const char* kCounterNames[kProfCounterCount] = {
    "partition_lock_acquire", "partition_lock_contended",
    "applier_mutex_acquire",  "applier_mutex_contended",
    "pool_alloc_failure",     "pool_free_retry",
    "send_retry",             "owner_miss",
    "handoff_push",
};

double safe_div(double num, double den) { return den > 0 ? num / den : 0.0; }

}  // namespace

const char* prof_stage_name(ProfStage stage) noexcept {
  return kStageNames[static_cast<std::size_t>(stage)];
}

const char* prof_counter_name(ProfCounter c) noexcept {
  return kCounterNames[static_cast<std::size_t>(c)];
}

bool install_hot_profiler(HotProfiler* p) noexcept {
  HotProfiler* expected = nullptr;
  return detail::g_hot_profiler.compare_exchange_strong(
      expected, p, std::memory_order_acq_rel, std::memory_order_acquire);
}

void uninstall_hot_profiler(HotProfiler* p) noexcept {
  HotProfiler* expected = p;
  detail::g_hot_profiler.compare_exchange_strong(
      expected, nullptr, std::memory_order_acq_rel, std::memory_order_acquire);
}

HotProfiler::HotProfiler()
    : gen_(g_prof_gen.fetch_add(1, std::memory_order_relaxed) + 1) {}

HotProfiler::~HotProfiler() { uninstall_hot_profiler(this); }

ProfSlot* HotProfiler::maybe_slot() noexcept {
  return t_slot_cache.gen == gen_ ? t_slot_cache.slot : nullptr;
}

ProfSlot* HotProfiler::register_thread(std::string_view name) {
  LockGuard lock(register_mutex_);
  // Re-check under the lock: another call on this thread cannot race us,
  // but thread_slot() after auto_slot() renames in place instead.
  ProfSlot* slot = maybe_slot();
  if (slot == nullptr) {
    const std::uint32_t raw = next_slot_.fetch_add(1, std::memory_order_relaxed);
    // Overflow threads share the last slot; 64 slots covers every chain
    // configuration the repo builds (workers + control + tgen threads).
    const std::uint32_t idx =
        std::min<std::uint32_t>(raw, kMaxSlots - 1);
    slot = &slots_[idx];
    slot->used.store(true, std::memory_order_release);
    t_slot_cache = {gen_, slot};
  }
  if (!name.empty()) {
    const std::size_t n = std::min(name.size(), sizeof(slot->name) - 1);
    std::memcpy(slot->name, name.data(), n);
    slot->name[n] = '\0';
  }
  return slot;
}

ProfSlot* HotProfiler::thread_slot(std::string_view name) {
  ProfSlot* slot = maybe_slot();
  if (slot != nullptr && slot->name[0] != '\0') return slot;
  return register_thread(name);
}

ProfSlot* HotProfiler::auto_slot() {
  ProfSlot* slot = maybe_slot();
  if (SFC_UNLIKELY(slot == nullptr)) {
    // Prefer the Worker's name; fall back to a slot ordinal for non-Worker
    // threads (tests, the driver's main thread).
    const std::string_view worker_name = rt::current_worker_name();
    if (!worker_name.empty()) return register_thread(worker_name);
    char buf[16];
    std::snprintf(buf, sizeof(buf), "t%u",
                  next_slot_.load(std::memory_order_relaxed));
    slot = register_thread(buf);
  }
  return slot;
}

void HotProfiler::count(ProfCounter c, std::uint64_t n) noexcept {
  ProfSlot* slot = auto_slot();
  slot->counters[static_cast<std::size_t>(c)].fetch_add(
      n, std::memory_order_relaxed);
  if (SFC_UNLIKELY(quiet_armed_.load(std::memory_order_acquire)) &&
      prof_counter_is_violation(c)) {
    quiet_violations_.fetch_add(n, std::memory_order_acq_rel);
    LockGuard lock(violation_mutex_);
    if (violation_records_.size() < kMaxViolationRecords) {
      violation_records_.push_back(
          ProfViolation{c, rt::now_ns(), std::string(slot->name)});
    }
  }
}

void HotProfiler::arm_quiet() noexcept {
  {
    LockGuard lock(violation_mutex_);
    violation_records_.clear();
  }
  quiet_violations_.store(0, std::memory_order_release);
  quiet_was_armed_.store(true, std::memory_order_release);
  quiet_armed_.store(true, std::memory_order_release);
}

void HotProfiler::disarm_quiet() noexcept {
  quiet_armed_.store(false, std::memory_order_release);
}

std::vector<ProfViolation> HotProfiler::violations() const {
  LockGuard lock(violation_mutex_);
  return violation_records_;
}

void HotProfiler::reset() noexcept {
  for (auto& slot : slots_) {
    if (!slot.used.load(std::memory_order_acquire)) continue;
    for (auto& c : slot.cycles) c.store(0, std::memory_order_relaxed);
    for (auto& o : slot.ops) o.store(0, std::memory_order_relaxed);
    slot.packets.store(0, std::memory_order_relaxed);
    slot.bursts.store(0, std::memory_order_relaxed);
    slot.wall_cycles.store(0, std::memory_order_relaxed);
    for (auto& c : slot.counters) c.store(0, std::memory_order_relaxed);
  }
  {
    LockGuard lock(violation_mutex_);
    violation_records_.clear();
  }
  quiet_violations_.store(0, std::memory_order_release);
  // The new window starts unarmed: callers arm_quiet() explicitly after
  // reset, so a pre-warmup violation cannot leak a stale armed latch.
  quiet_armed_.store(false, std::memory_order_release);
  quiet_was_armed_.store(false, std::memory_order_release);
}

namespace {

void finalize_worker(BudgetWorker& w, double tsc_hz) {
  std::uint64_t primary_cycles = 0;
  for (auto& row : w.stages) {
    if (prof_stage_primary(row.stage)) primary_cycles += row.cycles;
    // Primary stages normalize by the worker's packet count (table2
    // semantics: cost per packet handled by this worker); auxiliary
    // drill-down stages normalize by their own op count.
    const double denom = prof_stage_primary(row.stage)
                             ? static_cast<double>(w.packets)
                             : static_cast<double>(row.ops);
    row.cycles_per_packet = safe_div(static_cast<double>(row.cycles), denom);
    row.ns_per_packet =
        tsc_hz > 0 ? row.cycles_per_packet * 1e9 / tsc_hz : 0.0;
  }
  w.reconciliation = safe_div(static_cast<double>(primary_cycles),
                              static_cast<double>(w.wall_cycles));
}

}  // namespace

BudgetReport HotProfiler::report() const {
  BudgetReport out;
  out.tsc_hz = static_cast<double>(rt::tsc_hz());
  out.total.worker = "all";
  out.total.stages.resize(kProfStageCount);
  for (std::size_t s = 0; s < kProfStageCount; ++s) {
    out.total.stages[s].stage = static_cast<ProfStage>(s);
  }

  for (const auto& slot : slots_) {
    if (!slot.used.load(std::memory_order_acquire)) continue;
    BudgetWorker w;
    w.worker = slot.name[0] != '\0' ? slot.name : "?";
    w.packets = slot.packets.load(std::memory_order_relaxed);
    w.bursts = slot.bursts.load(std::memory_order_relaxed);
    w.wall_cycles = slot.wall_cycles.load(std::memory_order_relaxed);
    w.stages.resize(kProfStageCount);
    for (std::size_t s = 0; s < kProfStageCount; ++s) {
      auto& row = w.stages[s];
      row.stage = static_cast<ProfStage>(s);
      row.cycles = slot.cycles[s].load(std::memory_order_relaxed);
      row.ops = slot.ops[s].load(std::memory_order_relaxed);
      out.total.stages[s].cycles += row.cycles;
      out.total.stages[s].ops += row.ops;
    }
    for (std::size_t c = 0; c < kProfCounterCount; ++c) {
      w.counters[c] = slot.counters[c].load(std::memory_order_relaxed);
      out.total.counters[c] += w.counters[c];
    }
    out.total.packets += w.packets;
    out.total.bursts += w.bursts;
    out.total.wall_cycles += w.wall_cycles;
    finalize_worker(w, out.tsc_hz);
    out.workers.push_back(std::move(w));
  }
  // Aggregate semantics: each worker's handling of a packet counts once,
  // so aggregate ns/packet is cost per packet-hop — the number comparable
  // to the paper's per-middlebox Table 2.
  finalize_worker(out.total, out.tsc_hz);

  out.quiet_armed = quiet_armed();
  out.quiet_violations = quiet_violation_count();
  out.violations = violations();
  return out;
}

std::string budget_to_text(const BudgetReport& report) {
  std::string out;
  char line[256];

  auto table = [&](const BudgetWorker& w) {
    std::snprintf(line, sizeof(line),
                  "worker %-20s packets=%" PRIu64 " bursts=%" PRIu64
                  " wall=%.1f ns/pkt reconciliation=%.1f%%\n",
                  w.worker.c_str(), w.packets, w.bursts,
                  report.tsc_hz > 0
                      ? static_cast<double>(w.wall_cycles) * 1e9 /
                            report.tsc_hz /
                            (w.packets > 0 ? static_cast<double>(w.packets)
                                           : 1.0)
                      : 0.0,
                  w.reconciliation * 100.0);
    out += line;
    std::snprintf(line, sizeof(line), "  %-14s %14s %14s %12s\n", "stage",
                  "cycles/pkt", "ns/pkt", "ops");
    out += line;
    double primary_ns = 0.0;
    for (const auto& row : w.stages) {
      if (row.ops == 0 && row.cycles == 0) continue;
      const bool primary = prof_stage_primary(row.stage);
      if (primary) primary_ns += row.ns_per_packet;
      std::snprintf(line, sizeof(line), "  %-14s %14.1f %14.1f %12" PRIu64
                    "%s\n",
                    prof_stage_name(row.stage), row.cycles_per_packet,
                    row.ns_per_packet, row.ops, primary ? "" : "  (aux)");
      out += line;
    }
    std::snprintf(line, sizeof(line), "  %-14s %14s %14.1f\n", "sum(primary)",
                  "", primary_ns);
    out += line;
    bool have_counter = false;
    for (std::size_t c = 0; c < kProfCounterCount; ++c) {
      if (w.counters[c] == 0) continue;
      if (!have_counter) {
        out += "  counters:";
        have_counter = true;
      }
      std::snprintf(line, sizeof(line), " %s=%" PRIu64,
                    prof_counter_name(static_cast<ProfCounter>(c)),
                    w.counters[c]);
      out += line;
    }
    if (have_counter) out += "\n";
  };

  std::snprintf(line, sizeof(line),
                "live budget (tsc %.2f GHz, %zu workers)\n",
                report.tsc_hz / 1e9, report.workers.size());
  out += line;
  for (const auto& w : report.workers) table(w);
  out += "---- aggregate (per packet-hop) ----\n";
  table(report.total);
  if (report.quiet_armed || report.quiet_violations != 0) {
    std::snprintf(line, sizeof(line),
                  "quiet: armed=%d violations=%" PRIu64 "\n",
                  report.quiet_armed ? 1 : 0, report.quiet_violations);
    out += line;
    for (const auto& v : report.violations) {
      std::snprintf(line, sizeof(line), "  violation %s on %s at %" PRIu64
                    " ns\n",
                    prof_counter_name(v.kind), v.worker.c_str(), v.ts_ns);
      out += line;
    }
  }
  return out;
}

void HotProfiler::export_metrics(Registry& registry) const {
  // Live gauge_fn callbacks: values are computed at snapshot time, so a
  // bench that snapshots after the measured window sees final numbers.
  // gauge_fn dedups by (name, labels); calling this repeatedly (e.g. once
  // at chain start with no slots, once at stop with all workers) only adds
  // rows for newly-registered workers. All rows carry {"budget","prof"}
  // for remove_matching cleanup.
  auto add_rows = [&](const char* worker, const ProfSlot* slot) {
    // slot == nullptr selects the aggregate (recomputed per snapshot).
    for (std::size_t s = 0; s < kProfStageCount; ++s) {
      const auto stage = static_cast<ProfStage>(s);
      Labels labels{{"budget", "prof"},
                    {"worker", worker},
                    {"stage", prof_stage_name(stage)}};
      registry.gauge_fn("budget.ns_per_packet", labels,
                        [this, slot, s]() {
                          const BudgetWorker w = row_for(slot);
                          return w.stages[s].ns_per_packet;
                        });
      registry.gauge_fn("budget.cycles_per_packet", labels,
                        [this, slot, s]() {
                          const BudgetWorker w = row_for(slot);
                          return w.stages[s].cycles_per_packet;
                        });
    }
    Labels wl{{"budget", "prof"}, {"worker", worker}};
    registry.gauge_fn("budget.packets", wl, [this, slot]() {
      return static_cast<double>(row_for(slot).packets);
    });
    registry.gauge_fn("budget.reconciliation", wl, [this, slot]() {
      return row_for(slot).reconciliation;
    });
    registry.gauge_fn("budget.wall_ns_per_packet", wl, [this, slot]() {
      const BudgetWorker w = row_for(slot);
      const double hz = static_cast<double>(rt::tsc_hz());
      if (w.packets == 0 || hz <= 0) return 0.0;
      return static_cast<double>(w.wall_cycles) * 1e9 / hz /
             static_cast<double>(w.packets);
    });
  };

  add_rows("all", nullptr);
  for (const auto& slot : slots_) {
    if (!slot.used.load(std::memory_order_acquire)) continue;
    if (slot.name[0] == '\0') continue;
    add_rows(slot.name, &slot);
  }
  for (std::size_t c = 0; c < kProfCounterCount; ++c) {
    const auto counter = static_cast<ProfCounter>(c);
    registry.gauge_fn(
        "budget.counter",
        Labels{{"budget", "prof"}, {"kind", prof_counter_name(counter)}},
        [this, c]() {
          double total = 0;
          for (const auto& slot : slots_) {
            if (!slot.used.load(std::memory_order_acquire)) continue;
            total += static_cast<double>(
                slot.counters[c].load(std::memory_order_relaxed));
          }
          return total;
        });
  }
  Labels ql{{"budget", "prof"}};
  registry.gauge_fn("budget.quiet_armed", ql, [this]() {
    return quiet_was_armed_.load(std::memory_order_acquire) ? 1.0 : 0.0;
  });
  registry.gauge_fn("budget.quiet_violations", ql, [this]() {
    return static_cast<double>(quiet_violation_count());
  });
  registry.gauge_fn("budget.tsc_hz", ql, []() {
    return static_cast<double>(rt::tsc_hz());
  });
}

BudgetWorker HotProfiler::row_for(const ProfSlot* slot) const {
  const double tsc = static_cast<double>(rt::tsc_hz());
  BudgetWorker w;
  w.stages.resize(kProfStageCount);
  for (std::size_t s = 0; s < kProfStageCount; ++s) {
    w.stages[s].stage = static_cast<ProfStage>(s);
  }
  auto accumulate = [&](const ProfSlot& src) {
    for (std::size_t s = 0; s < kProfStageCount; ++s) {
      w.stages[s].cycles += src.cycles[s].load(std::memory_order_relaxed);
      w.stages[s].ops += src.ops[s].load(std::memory_order_relaxed);
    }
    w.packets += src.packets.load(std::memory_order_relaxed);
    w.bursts += src.bursts.load(std::memory_order_relaxed);
    w.wall_cycles += src.wall_cycles.load(std::memory_order_relaxed);
    for (std::size_t c = 0; c < kProfCounterCount; ++c) {
      w.counters[c] += src.counters[c].load(std::memory_order_relaxed);
    }
  };
  if (slot != nullptr) {
    accumulate(*slot);
  } else {
    for (const auto& s : slots_) {
      if (s.used.load(std::memory_order_acquire)) accumulate(s);
    }
  }
  finalize_worker(w, tsc);
  return w;
}

}  // namespace sfc::obs
