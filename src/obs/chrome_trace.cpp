#include "obs/chrome_trace.hpp"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <set>

#include "obs/export.hpp"

namespace sfc::obs {
namespace {

constexpr int kPid = 1;  ///< One simulated chain = one trace "process".

void append_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

std::string default_site_name(std::uint32_t site) {
  const std::uint32_t domain = site >> 24;
  const std::uint32_t id = site & 0x00FF'FFFFu;
  char buf[48];
  switch (domain) {
    case 0:
      return site == kSpanSiteGen ? "traffic-gen" : "traffic-sink";
    case 1:
      std::snprintf(buf, sizeof(buf), "node %u", id);
      return buf;
    case 2:
      std::snprintf(buf, sizeof(buf), "link %u", id);
      return buf;
    case 3:
      return "egress-buffer";
    case 4:
      return "orchestrator";
    default:
      std::snprintf(buf, sizeof(buf), "site %u:%u", domain, id);
      return buf;
  }
}

/// Microseconds with sub-µs precision, normalized to the trace start.
std::string ts_us(std::uint64_t ts_ns, std::uint64_t base_ns) {
  const std::uint64_t rel = ts_ns >= base_ns ? ts_ns - base_ns : 0;
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%llu.%03llu",
                static_cast<unsigned long long>(rel / 1000),
                static_cast<unsigned long long>(rel % 1000));
  return buf;
}

class EventWriter {
 public:
  EventWriter(std::string& out, std::uint64_t base_ns)
      : out_(out), base_ns_(base_ns) {}

  void metadata(const char* what, std::uint32_t tid, std::string_view value) {
    begin();
    out_ += "{\"name\":\"";
    out_ += what;
    out_ += "\",\"ph\":\"M\",\"pid\":" + std::to_string(kPid);
    out_ += ",\"tid\":" + std::to_string(tid);
    out_ += ",\"args\":{\"name\":\"";
    append_escaped(out_, value);
    out_ += "\"}}";
  }

  void sort_index(std::uint32_t tid, std::uint32_t index) {
    begin();
    out_ += "{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":" +
            std::to_string(kPid);
    out_ += ",\"tid\":" + std::to_string(tid);
    out_ += ",\"args\":{\"sort_index\":" + std::to_string(index) + "}}";
  }

  /// Complete ("X") slice from @p start_ns to @p end_ns.
  void slice(std::string_view name, std::uint32_t tid, std::uint64_t start_ns,
             std::uint64_t end_ns, const SpanRecord& r) {
    const std::uint64_t dur = end_ns >= start_ns ? end_ns - start_ns : 0;
    begin();
    out_ += "{\"name\":\"";
    append_escaped(out_, name);
    out_ += "\",\"ph\":\"X\",\"ts\":" + ts_us(start_ns, base_ns_);
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%llu.%03llu",
                  static_cast<unsigned long long>(dur / 1000),
                  static_cast<unsigned long long>(dur % 1000));
    out_ += ",\"dur\":";
    out_ += buf;
    common_tail(tid, r);
  }

  void instant(std::string_view name, std::uint32_t tid, const SpanRecord& r) {
    begin();
    out_ += "{\"name\":\"";
    append_escaped(out_, name);
    out_ += "\",\"ph\":\"i\",\"s\":\"t\",\"ts\":" + ts_us(r.ts_ns, base_ns_);
    common_tail(tid, r);
  }

 private:
  void begin() {
    if (!first_) out_ += ',';
    first_ = false;
  }

  void common_tail(std::uint32_t tid, const SpanRecord& r) {
    out_ += ",\"pid\":" + std::to_string(kPid);
    out_ += ",\"tid\":" + std::to_string(tid);
    out_ += ",\"args\":{\"trace\":" + std::to_string(r.trace_id);
    out_ += ",\"a\":" + std::to_string(r.a) + "}}";
  }

  std::string& out_;
  const std::uint64_t base_ns_;
  bool first_{true};
};

}  // namespace

std::string to_chrome_trace(
    const std::vector<SpanRecord>& records,
    const std::map<std::uint32_t, std::string>& site_names) {
  std::vector<SpanRecord> rs = records;
  std::stable_sort(rs.begin(), rs.end(),
                   [](const SpanRecord& a, const SpanRecord& b) {
                     if (a.trace_id != b.trace_id) return a.trace_id < b.trace_id;
                     return a.ts_ns < b.ts_ns;
                   });

  std::uint64_t base_ns = std::numeric_limits<std::uint64_t>::max();
  std::set<std::uint32_t> sites;
  for (const SpanRecord& r : rs) {
    base_ns = std::min(base_ns, r.ts_ns);
    sites.insert(r.site);
  }
  if (rs.empty()) base_ns = 0;

  std::string out = "{\"traceEvents\":[";
  EventWriter w(out, base_ns);
  w.metadata("process_name", 0, "sfc-chain");
  std::uint32_t order = 0;
  for (const std::uint32_t site : sites) {
    const auto it = site_names.find(site);
    w.metadata("thread_name", site,
               it != site_names.end() ? it->second : default_site_name(site));
    w.sort_index(site, ++order);
  }

  // Open paired spans, keyed by site (and mbox for fetches) within the
  // current trace. Cleared at each trace boundary so a missing close
  // (dropped packet) cannot leak into another trace.
  std::map<std::uint32_t, SpanRecord> open_hop;
  std::map<std::uint32_t, SpanRecord> open_link;
  std::map<std::uint32_t, SpanRecord> open_buffer;
  std::map<std::pair<std::uint32_t, std::uint64_t>, SpanRecord> open_fetch;
  SpanRecord open_recovery{};  // kDetect, pending kReroute.
  std::uint64_t current_trace = 0;
  bool in_trace = false;

  const auto flush_trace = [&] {
    open_hop.clear();
    open_link.clear();
    open_buffer.clear();
    open_fetch.clear();
    open_recovery = SpanRecord{};
  };

  for (const SpanRecord& r : rs) {
    if (!in_trace || r.trace_id != current_trace) {
      flush_trace();
      current_trace = r.trace_id;
      in_trace = true;
    }
    switch (r.kind) {
      case SpanKind::kNodeIngress:
        open_hop[r.site] = r;
        break;
      case SpanKind::kNodeEgress: {
        const auto it = open_hop.find(r.site);
        if (it != open_hop.end()) {
          w.slice("hop", r.site, it->second.ts_ns, r.ts_ns, it->second);
          open_hop.erase(it);
        }
        break;
      }
      case SpanKind::kLinkEnter:
        open_link[r.site] = r;
        break;
      case SpanKind::kLinkExit: {
        const auto it = open_link.find(r.site);
        if (it != open_link.end()) {
          w.slice("transit", r.site, it->second.ts_ns, r.ts_ns, it->second);
          open_link.erase(it);
        }
        break;
      }
      case SpanKind::kBufferHold:
        open_buffer[r.site] = r;
        break;
      case SpanKind::kBufferRelease: {
        const auto it = open_buffer.find(r.site);
        if (it != open_buffer.end()) {
          w.slice("buffered", r.site, it->second.ts_ns, r.ts_ns, it->second);
          open_buffer.erase(it);
        }
        break;
      }
      case SpanKind::kFetchStart:
        open_fetch[{r.site, r.a}] = r;
        break;
      case SpanKind::kFetchDone: {
        const auto it = open_fetch.find({r.site, r.a});
        if (it != open_fetch.end()) {
          char name[32];
          std::snprintf(name, sizeof(name), "fetch mbox%llu",
                        static_cast<unsigned long long>(r.a));
          w.slice(name, r.site, it->second.ts_ns, r.ts_ns, it->second);
          open_fetch.erase(it);
        }
        break;
      }
      case SpanKind::kDetect:
        open_recovery = r;
        w.instant("detect", r.site, r);
        break;
      case SpanKind::kReroute:
        if (open_recovery.ts_ns != 0) {
          w.slice("recovery", r.site, open_recovery.ts_ns, r.ts_ns,
                  open_recovery);
          open_recovery = SpanRecord{};
        }
        w.instant("reroute", r.site, r);
        break;
      // Durations carried in the record: slice ends at the timestamp.
      case SpanKind::kProcess:
        w.slice("process", r.site, r.ts_ns >= r.a ? r.ts_ns - r.a : 0, r.ts_ns,
                r);
        break;
      case SpanKind::kApply:
        w.slice("apply", r.site, r.ts_ns >= r.a ? r.ts_ns - r.a : 0, r.ts_ns,
                r);
        break;
      case SpanKind::kUnpark:
        w.slice("parked", r.site, r.ts_ns >= r.a ? r.ts_ns - r.a : 0, r.ts_ns,
                r);
        break;
      case SpanKind::kSinkRecv:
        w.slice("end-to-end", r.site, r.ts_ns >= r.a ? r.ts_ns - r.a : 0,
                r.ts_ns, r);
        break;
      default:
        w.instant(to_string(r.kind), r.site, r);
        break;
    }
  }

  out += "]}";
  return out;
}

bool write_chrome_trace(const std::string& path,
                        const std::vector<SpanRecord>& records,
                        const std::map<std::uint32_t, std::string>& site_names) {
  return write_file(path, to_chrome_trace(records, site_names) + "\n");
}

}  // namespace sfc::obs
