#include "obs/export.hpp"

#include <cstdio>
#include <cstdlib>
#include <string>

#include "runtime/clock.hpp"

namespace sfc::obs {
namespace {

void append_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void append_quoted(std::string& out, std::string_view s) {
  out += '"';
  append_escaped(out, s);
  out += '"';
}

void append_number(std::string& out, double v) {
  // Integral values print without a fraction so counters stay exact.
  if (v == static_cast<double>(static_cast<long long>(v)) && v > -1e15 &&
      v < 1e15) {
    out += std::to_string(static_cast<long long>(v));
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out += buf;
}

void append_labels(std::string& out, const Labels& labels) {
  out += '{';
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    append_quoted(out, k);
    out += ':';
    append_quoted(out, v);
  }
  out += '}';
}

void append_hist_fields(std::string& out, const rt::Histogram& h) {
  out += "\"count\":" + std::to_string(h.count());
  out += ",\"mean\":";
  append_number(out, h.mean());
  out += ",\"min\":" + std::to_string(h.min());
  out += ",\"max\":" + std::to_string(h.max());
  out += ",\"p50\":" + std::to_string(h.p50());
  out += ",\"p90\":" + std::to_string(h.p90());
  out += ",\"p99\":" + std::to_string(h.p99());
  out += ",\"p999\":" + std::to_string(h.p999());
}

const char* kind_name(Sample::Kind k) {
  switch (k) {
    case Sample::Kind::kCounter: return "counter";
    case Sample::Kind::kGauge: return "gauge";
    case Sample::Kind::kHistogram: return "histogram";
  }
  return "?";
}

void append_sample(std::string& out, const Sample& s) {
  out += "{\"name\":";
  append_quoted(out, s.name);
  out += ",\"labels\":";
  append_labels(out, s.labels);
  out += ",\"kind\":\"";
  out += kind_name(s.kind);
  out += '"';
  if (s.kind == Sample::Kind::kHistogram) {
    out += ',';
    append_hist_fields(out, s.hist);
  } else {
    out += ",\"value\":";
    append_number(out, s.value);
  }
  out += '}';
}

void append_traces(std::string& out, const std::vector<TraceDump>& traces) {
  out += "\"traces\":[";
  bool first = true;
  for (const auto& t : traces) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":";
    append_quoted(out, t.name);
    out += ",\"labels\":";
    append_labels(out, t.labels);
    out += ",\"dropped\":" + std::to_string(t.dropped);
    out += ",\"events\":[";
    bool efirst = true;
    for (const auto& e : t.events) {
      if (!efirst) out += ',';
      efirst = false;
      out += "{\"ts_ns\":" + std::to_string(e.ts_ns);
      out += ",\"type\":\"";
      out += to_string(e.type);
      out += "\",\"a\":" + std::to_string(e.a);
      out += ",\"b\":" + std::to_string(e.b);
      out += '}';
    }
    out += "]}";
  }
  out += ']';
}

std::string labels_text(const Labels& labels) {
  std::string out;
  for (const auto& [k, v] : labels) {
    if (!out.empty()) out += ',';
    out += k;
    out += '=';
    out += v;
  }
  return out;
}

}  // namespace

std::string to_json(const Registry& registry, bool include_traces) {
  std::string out = "{\"metrics\":[";
  bool first = true;
  for (const auto& s : registry.snapshot()) {
    if (!first) out += ',';
    first = false;
    append_sample(out, s);
  }
  out += ']';
  if (include_traces) {
    out += ',';
    append_traces(out, registry.trace_snapshot());
  }
  out += '}';
  return out;
}

std::string to_csv(const Registry& registry) {
  std::string out =
      "name,labels,kind,value,count,mean,min,max,p50,p90,p99,p999\n";
  for (const auto& s : registry.snapshot()) {
    out += s.name;
    out += ",\"";
    out += labels_text(s.labels);
    out += "\",";
    out += kind_name(s.kind);
    if (s.kind == Sample::Kind::kHistogram) {
      const auto& h = s.hist;
      char buf[64];
      std::snprintf(buf, sizeof(buf), ",,%llu,%.6g,%llu,%llu",
                    static_cast<unsigned long long>(h.count()), h.mean(),
                    static_cast<unsigned long long>(h.min()),
                    static_cast<unsigned long long>(h.max()));
      out += buf;
      std::snprintf(buf, sizeof(buf), ",%llu,%llu,%llu,%llu",
                    static_cast<unsigned long long>(h.p50()),
                    static_cast<unsigned long long>(h.p90()),
                    static_cast<unsigned long long>(h.p99()),
                    static_cast<unsigned long long>(h.p999()));
      out += buf;
    } else {
      out += ',';
      append_number(out, s.value);
      out += ",,,,,,,,";
    }
    out += '\n';
  }
  return out;
}

std::string to_text(const Registry& registry) {
  std::string out;
  for (const auto& s : registry.snapshot()) {
    out += s.name;
    const std::string lt = labels_text(s.labels);
    if (!lt.empty()) {
      out += '{';
      out += lt;
      out += '}';
    }
    out += " = ";
    if (s.kind == Sample::Kind::kHistogram) {
      char buf[200];
      std::snprintf(
          buf, sizeof(buf),
          "count=%llu mean=%.1f p50=%llu p90=%llu p99=%llu p999=%llu max=%llu",
          static_cast<unsigned long long>(s.hist.count()), s.hist.mean(),
          static_cast<unsigned long long>(s.hist.p50()),
          static_cast<unsigned long long>(s.hist.p90()),
          static_cast<unsigned long long>(s.hist.p99()),
          static_cast<unsigned long long>(s.hist.p999()),
          static_cast<unsigned long long>(s.hist.max()));
      out += buf;
    } else {
      append_number(out, s.value);
    }
    out += '\n';
  }
  return out;
}

bool write_file(const std::string& path, std::string_view content) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (!f) return false;
  const bool wrote =
      std::fwrite(content.data(), 1, content.size(), f) == content.size();
  const bool closed = std::fclose(f) == 0;
  if (!wrote || !closed) {
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

Exporter::Exporter(const Registry& registry, std::string path,
                   std::uint64_t interval_ns, bool include_traces)
    : registry_(registry),
      path_(std::move(path)),
      interval_ns_(interval_ns),
      include_traces_(include_traces),
      next_dump_ns_(rt::now_ns() + interval_ns) {
  worker_.start("obs-exporter", [this] { return tick(); });
}

Exporter::~Exporter() { stop(); }

void Exporter::stop() {
  if (!worker_.running()) return;
  worker_.stop();
  // Final dump so the file reflects end-of-run state.
  if (write_file(path_, to_json(registry_, include_traces_))) {
    dumps_.fetch_add(1, std::memory_order_relaxed);
  }
}

std::uint64_t Exporter::dumps() const noexcept {
  return dumps_.load(std::memory_order_relaxed);
}

bool Exporter::tick() {
  if (rt::now_ns() < next_dump_ns_) return false;
  next_dump_ns_ += interval_ns_;
  if (write_file(path_, to_json(registry_, include_traces_))) {
    dumps_.fetch_add(1, std::memory_order_relaxed);
  }
  return true;
}

Report::Report(std::string name) : name_(std::move(name)) {}

Report& Report::meta(std::string_view key, std::string_view value) {
  std::string rendered;
  append_quoted(rendered, value);
  meta_.push_back(MetaEntry{std::string(key), std::move(rendered)});
  return *this;
}

Report& Report::meta(std::string_view key, double value) {
  std::string rendered;
  append_number(rendered, value);
  meta_.push_back(MetaEntry{std::string(key), std::move(rendered)});
  return *this;
}

Report& Report::meta(std::string_view key, std::uint64_t value) {
  meta_.push_back(MetaEntry{std::string(key), std::to_string(value)});
  return *this;
}

Report& Report::meta(std::string_view key, bool value) {
  meta_.push_back(MetaEntry{std::string(key), value ? "true" : "false"});
  return *this;
}

Report& Report::metric(std::string_view name, double value, Labels labels) {
  Metric m;
  m.name = std::string(name);
  m.labels = std::move(labels);
  m.value = value;
  metrics_.push_back(std::move(m));
  return *this;
}

Report& Report::metric_hist(std::string_view name, const rt::Histogram& hist,
                            Labels labels) {
  Metric m;
  m.name = std::string(name);
  m.labels = std::move(labels);
  m.is_hist = true;
  m.hist = hist;
  metrics_.push_back(std::move(m));
  return *this;
}

Report& Report::add_snapshot(const Registry& registry, const Labels& extra) {
  for (const auto& s : registry.snapshot()) {
    Labels labels = s.labels;
    labels.insert(labels.end(), extra.begin(), extra.end());
    if (s.kind == Sample::Kind::kHistogram) {
      metric_hist(s.name, s.hist, std::move(labels));
    } else {
      metric(s.name, s.value, std::move(labels));
    }
  }
  return *this;
}

Report& Report::shape_check(bool ok) {
  shape_ok_ = ok;
  return *this;
}

std::string Report::to_json() const {
  std::string out = "{\"bench\":";
  append_quoted(out, name_);
  out += ",\"generated_ns\":" + std::to_string(rt::now_ns());
  if (shape_ok_.has_value()) {
    out += ",\"shape_check\":";
    out += *shape_ok_ ? "true" : "false";
  }
  out += ",\"meta\":{";
  bool first = true;
  for (const auto& m : meta_) {
    if (!first) out += ',';
    first = false;
    append_quoted(out, m.key);
    out += ':';
    out += m.value;
  }
  out += "},\"metrics\":[";
  first = true;
  for (const auto& m : metrics_) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":";
    append_quoted(out, m.name);
    out += ",\"labels\":";
    append_labels(out, m.labels);
    if (m.is_hist) {
      out += ",\"kind\":\"histogram\",";
      append_hist_fields(out, m.hist);
    } else {
      out += ",\"kind\":\"value\",\"value\":";
      append_number(out, m.value);
    }
    out += '}';
  }
  out += "]}";
  return out;
}

std::string Report::write() const {
  std::string path = "BENCH_" + name_ + ".json";
  if (const char* dir = std::getenv("FTC_BENCH_JSON_DIR");
      dir != nullptr && dir[0] != '\0') {
    path = std::string(dir) + "/" + path;
  }
  if (!write_file(path, to_json() + "\n")) return {};
  return path;
}

}  // namespace sfc::obs
