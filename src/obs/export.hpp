// Observability: JSON/CSV exporter for registry snapshots.
//
// Three consumers:
//  * benches build a Report (run metadata + named metrics, optionally fed
//    from a Registry snapshot) and write machine-readable BENCH_<name>.json;
//  * sfc_cli's `stats` command pretty-prints a live snapshot;
//  * the periodic Exporter worker dumps the registry to a file on an
//    interval for long-running chains.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/registry.hpp"
#include "runtime/worker.hpp"

namespace sfc::obs {

/// Serializes a registry snapshot as a JSON object:
///   {"metrics":[{"name":..,"labels":{..},"kind":..,"value":..} |
///               {"name":..,"labels":{..},"kind":"histogram",
///                "count":..,"mean":..,"min":..,"max":..,
///                "p50":..,"p90":..,"p99":..,"p999":..}, ...],
///    "traces":[{"name":..,"labels":{..},"dropped":..,
///               "events":[{"ts_ns":..,"type":..,"a":..,"b":..},..]},..]}
/// Traces are included only when @p include_traces is set.
std::string to_json(const Registry& registry, bool include_traces = false);

/// Flat CSV: name,labels,kind,value,count,mean,min,max,p50,p90,p99,p999
/// (histogram columns empty for counters/gauges and vice versa).
std::string to_csv(const Registry& registry);

/// Human-readable one-metric-per-line snapshot for terminals.
std::string to_text(const Registry& registry);

/// Writes @p content atomically (tmp file + rename). Returns false and
/// leaves the target untouched on I/O failure.
bool write_file(const std::string& path, std::string_view content);

/// Periodic snapshot worker: serializes @p registry to JSON every
/// @p interval_ns and rewrites @p path. One final dump happens on stop().
class Exporter : rt::NonCopyable {
 public:
  Exporter(const Registry& registry, std::string path,
           std::uint64_t interval_ns, bool include_traces = false);
  ~Exporter();

  void stop();

  std::uint64_t dumps() const noexcept;

 private:
  bool tick();

  const Registry& registry_;
  std::string path_;
  std::uint64_t interval_ns_;
  bool include_traces_;
  std::uint64_t next_dump_ns_{0};
  std::atomic<std::uint64_t> dumps_{0};
  rt::Worker worker_;
};

/// One bench result file. Usage:
///   obs::Report report("fig9_chain_tput");
///   report.meta("mode", "ftc").meta("chain_len", 4);
///   report.metric("throughput_pps", tput);
///   report.metric_hist("latency_ns", hist);
///   report.add_snapshot(runtime.registry());   // optional: whole registry
///   report.write();   // -> BENCH_fig9_chain_tput.json (or
///                     //    $FTC_BENCH_JSON_DIR/BENCH_....json)
class Report {
 public:
  explicit Report(std::string name);

  Report& meta(std::string_view key, std::string_view value);
  /// Without this overload a string literal would convert to bool (a
  /// standard conversion, preferred over string_view's user-defined one).
  Report& meta(std::string_view key, const char* value) {
    return meta(key, std::string_view(value));
  }
  Report& meta(std::string_view key, double value);
  Report& meta(std::string_view key, std::uint64_t value);
  Report& meta(std::string_view key, int value) {
    return meta(key, static_cast<std::uint64_t>(value));
  }
  Report& meta(std::string_view key, bool value);

  Report& metric(std::string_view name, double value, Labels labels = {});
  Report& metric_hist(std::string_view name, const rt::Histogram& hist,
                      Labels labels = {});

  /// Appends every metric in @p registry's current snapshot, with
  /// @p extra labels appended to each (e.g. the bench point identity).
  Report& add_snapshot(const Registry& registry, const Labels& extra = {});

  /// Records the bench's pass/fail shape check in the file.
  Report& shape_check(bool ok);

  std::string to_json() const;

  /// Writes BENCH_<name>.json into $FTC_BENCH_JSON_DIR (or the working
  /// directory). Returns the path written, or empty on failure.
  std::string write() const;

 private:
  struct Metric {
    std::string name;
    Labels labels;
    bool is_hist{false};
    double value{0};
    rt::Histogram hist;
  };
  struct MetaEntry {
    std::string key;
    std::string value;   ///< Pre-rendered JSON value (quoted or raw).
  };

  std::string name_;
  std::vector<MetaEntry> meta_;
  std::vector<Metric> metrics_;
  std::optional<bool> shape_ok_;
};

}  // namespace sfc::obs
