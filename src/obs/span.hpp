// Observability: sampled per-packet span pipeline (Dapper-style).
//
// The traffic generator stamps a deterministic 1-in-N sample of packets
// with a trace id in the packet annotations. Instrumentation points along
// the chain (node ingress/egress, middlebox process, piggyback
// apply/attach/strip, park/unpark, link transit/drop/reorder-hold, egress
// buffer hold/release, recovery phases) record timestamped SpanRecords
// into per-thread lock-free SPSC buffers owned by a chain-wide
// SpanCollector. The collector drains them on a background worker and
// derives:
//   * per-hop latency-breakdown histograms (hop transit, mbox process,
//     piggyback apply) — per_hop_breakdown(),
//   * recovery timelines (fail -> detect -> spawn -> init-ack -> fetch ->
//     reroute) — recovery_timelines(),
//   * Chrome trace-event JSON (obs/chrome_trace.hpp), Perfetto-loadable.
//
// Off-path cost when sampling is disabled is a single branch on the
// packet annotation: every per-packet instrumentation point first checks
// anno().trace_id != 0, which the generator only sets for sampled
// packets. Protocol-rate recovery spans check only for an installed
// collector. Destroy the collector after the traffic and chain threads
// have stopped (the hot path reads the registry's sink pointer raw).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "obs/registry.hpp"
#include "runtime/common.hpp"
#include "runtime/rng.hpp"
#include "runtime/spsc_queue.hpp"
#include "runtime/worker.hpp"

namespace sfc::rt {
class Histogram;
}

namespace sfc::obs {

enum class SpanKind : std::uint8_t {
  kGenEmit,        ///< Generator stamped + injected. a = flow hash.
  kNodeIngress,    ///< Node pulled the packet off its in-link. a = position.
  kApply,          ///< Piggyback logs applied. a = duration ns.
  kProcess,        ///< Middlebox packet transaction. a = duration ns.
  kCommitAttach,   ///< Tail attached a commit vector. a = tail mbox.
  kStrip,          ///< Tail stripped its mbox's logs. a = tail mbox.
  kPark,           ///< Parked on a missing log. a = blocking mbox.
  kUnpark,         ///< Unparked. a = parked duration ns.
  kNodeEgress,     ///< Node handed the packet downstream.
  kLinkEnter,      ///< Packet entered a link.
  kLinkExit,       ///< Packet delivered by a link.
  kLinkDrop,       ///< Loss model consumed the packet.
  kLinkHold,       ///< Reorder model delayed the packet. a = extra ns.
  kBufferHold,     ///< Egress buffer held the packet.
  kBufferRelease,  ///< Egress buffer released the packet.
  kSinkRecv,       ///< Measurement sink drained it. a = end-to-end ns.
  // Recovery timeline (trace id = recovery_trace_id(position)).
  kFail,           ///< Node crash-stopped. a = position.
  kDetect,         ///< Orchestrator declared the node failed. a = node id.
  kSpawn,          ///< Replacement spawned. a = new node id.
  kInitAck,        ///< Replacement acknowledged its fetch plan.
  kFetchStart,     ///< Replica began fetching one store. a = mbox.
  kFetchDone,      ///< One store fetch finished. a = mbox.
  kReroute,        ///< Traffic steered through the replacement. a = position.
};

const char* to_string(SpanKind k) noexcept;

/// One timestamped event on a trace. 32 bytes; pushed by value through
/// SPSC rings.
struct SpanRecord {
  std::uint64_t trace_id{0};
  std::uint64_t ts_ns{0};
  std::uint64_t a{0};      ///< Kind-specific argument (see SpanKind).
  std::uint32_t site{0};   ///< Where it happened (span_site_* helpers).
  SpanKind kind{SpanKind::kGenEmit};
};

// --- Span sites. ---------------------------------------------------------
// A site is a 32-bit id with a domain tag in the top byte so node ids and
// link ids cannot collide. Components register a human-readable name via
// Registry::name_span_site; the Chrome exporter turns sites into tracks.

constexpr std::uint32_t span_site(std::uint32_t domain, std::uint32_t id) noexcept {
  return (domain << 24) | (id & 0x00FF'FFFFu);
}
constexpr std::uint32_t span_site_node(std::uint32_t node_id) noexcept {
  return span_site(1, node_id);
}
constexpr std::uint32_t span_site_link(std::uint32_t link_id) noexcept {
  return span_site(2, link_id);
}
constexpr std::uint32_t kSpanSiteGen = span_site(0, 1);
constexpr std::uint32_t kSpanSiteSink = span_site(0, 2);
constexpr std::uint32_t kSpanSiteBuffer = span_site(3, 1);
constexpr std::uint32_t kSpanSiteOrch = span_site(4, 1);

/// Trace id carrying one ring position's recovery timeline. High bits keep
/// these disjoint from generator packet ids.
constexpr std::uint64_t kRecoveryTraceBase = 0xFEC0'0000'0000'0000ull;
constexpr std::uint64_t recovery_trace_id(std::uint32_t position) noexcept {
  return kRecoveryTraceBase | position;
}
constexpr bool is_recovery_trace(std::uint64_t trace_id) noexcept {
  return (trace_id & kRecoveryTraceBase) == kRecoveryTraceBase;
}

/// Deterministic 1-in-N packet sampler: the decision depends only on
/// (packet id, seed), so the same seed reproduces the same sampled ids on
/// every run — and on both ends of a comparison run.
class SpanSampler {
 public:
  SpanSampler() = default;
  SpanSampler(std::uint64_t every_n, std::uint64_t seed) noexcept
      : every_n_(every_n), seed_(seed) {}

  bool enabled() const noexcept { return every_n_ != 0; }

  bool sampled(std::uint64_t packet_id) const noexcept {
    if (every_n_ == 0) return false;
    if (every_n_ == 1) return true;
    return rt::splitmix64(packet_id ^ seed_) % every_n_ == 0;
  }

 private:
  std::uint64_t every_n_{0};  ///< 0 = sampling off.
  std::uint64_t seed_{0};
};

/// Chain-wide span sink. Producers (any chain thread) push into a
/// per-thread SPSC ring created on first use; a background worker drains
/// the rings into a bounded central store. Registered as the registry's
/// span sink so instrumentation points reach it through the registry they
/// already hold.
/// Sizing knobs for SpanCollector (namespace scope: the defaults must be
/// usable in the constructor's default argument, which nested-class NSDMIs
/// cannot be while the enclosing class is incomplete).
struct SpanCollectorConfig {
  std::size_t thread_buffer_capacity{8192};
  std::size_t max_records{1u << 20};  ///< Central store bound.
};

class SpanCollector : rt::NonCopyable {
 public:
  using Config = SpanCollectorConfig;

  explicit SpanCollector(Registry* registry = nullptr, Config cfg = Config());
  ~SpanCollector();

  /// Records one span event. Thread-safe; lock-free after the calling
  /// thread's first record. Drops (and counts, globally and per ring)
  /// when the thread ring is full or the central store hit max_records.
  void record(const SpanRecord& r) noexcept;

  /// Pulls every thread ring into the central store. Returns the number
  /// of records moved. Called periodically by the background worker and
  /// by snapshot().
  std::size_t drain();

  /// Drains, then returns a copy of the central store sorted by
  /// timestamp.
  std::vector<SpanRecord> snapshot();

  /// Drains, then discards everything collected so far (counters too).
  void clear();

  std::uint64_t collected() const noexcept {
    return collected_.load(std::memory_order_relaxed);
  }
  std::uint64_t dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// One producer thread's SPSC ring plus its health counters. Rings are
  /// labeled by the owning worker's name (span.ring_dropped /
  /// span.ring_high_water gauges) so a lossy ring points straight at the
  /// thread that overran it.
  struct Ring {
    Ring(std::size_t capacity, std::string owner_name)
        : queue(capacity), owner(std::move(owner_name)) {}
    rt::SpscQueue<SpanRecord> queue;
    std::string owner;
    std::atomic<std::uint64_t> drops{0};
    std::atomic<std::uint64_t> high_water{0};  ///< Max occupancy observed.
  };

 private:
  Ring* local_ring();
  bool tick();

  const std::uint64_t gen_;  ///< Unique per collector; keys thread caches.
  const Config cfg_;
  Registry* registry_{nullptr};

  /// Guards queues_ growth. Low rank: a thread's FIRST record() creates
  /// its ring, and record() runs under node-level locks (egress flush),
  /// so nothing heavier than leaf work may happen under this lock — ring
  /// gauge registration into the registry is deferred to the drain side
  /// (pending_gauges_) for exactly that reason.
  Mutex register_mutex_{ranks::kSpanRegister, "span.register"};
  std::deque<Ring> queues_ SFC_GUARDED_BY(register_mutex_);
  /// Rings created but not yet gauge-registered (drained lazily).
  std::vector<Ring*> pending_gauges_ SFC_GUARDED_BY(register_mutex_);

  /// Serializes the SPSC consumer side. Above the registry rank: the
  /// drainer registers deferred ring gauges while holding it.
  Mutex drain_mutex_{ranks::kSpanDrain, "span.drain"};
  std::vector<SpanRecord> records_ SFC_GUARDED_BY(drain_mutex_);

  std::atomic<std::uint64_t> collected_{0};
  std::atomic<std::uint64_t> dropped_{0};

  std::unique_ptr<rt::Worker> drainer_;
};

// --- Derived views. ------------------------------------------------------

/// Latency breakdown of one chain hop, aggregated over all sampled
/// packets that crossed it.
struct HopBreakdown {
  std::uint32_t site{0};      ///< Node span site.
  std::uint32_t position{0};  ///< Ring position.
  rt::Histogram hop_ns;       ///< Node ingress -> egress.
  rt::Histogram process_ns;   ///< Middlebox packet transaction.
  rt::Histogram apply_ns;     ///< Piggyback log application.
  rt::Histogram transit_ns;   ///< Preceding link enter -> exit.
};

/// Per-hop latency-breakdown histograms derived from span records,
/// ordered by ring position.
std::vector<HopBreakdown> per_hop_breakdown(const std::vector<SpanRecord>& records);

/// One position's recovery timeline (paper Fig. 13 decomposition, but
/// phase-accurate: every timestamp comes from the component that lived
/// the phase). Timestamps are absolute ns; 0 = phase not observed.
struct RecoveryTimeline {
  std::uint32_t position{0};
  std::uint64_t fail_ns{0};
  std::uint64_t detect_ns{0};
  std::uint64_t spawn_ns{0};
  std::uint64_t init_ack_ns{0};
  std::uint64_t fetch_start_ns{0};
  std::uint64_t fetch_done_ns{0};
  std::uint64_t reroute_ns{0};

  /// Every phase observed, in non-decreasing order.
  bool complete() const noexcept;

  std::uint64_t time_to_detect_ns() const noexcept {
    return detect_ns >= fail_ns ? detect_ns - fail_ns : 0;
  }
  std::uint64_t time_to_fetch_ns() const noexcept {
    return fetch_done_ns >= fetch_start_ns ? fetch_done_ns - fetch_start_ns : 0;
  }
  std::uint64_t time_to_reroute_ns() const noexcept {
    return reroute_ns >= detect_ns ? reroute_ns - detect_ns : 0;
  }
  std::uint64_t total_ns() const noexcept {
    return reroute_ns >= fail_ns ? reroute_ns - fail_ns : 0;
  }
};

/// Recovery timelines derived from span records, one per recovery trace,
/// ordered by position. For each phase the first event after the previous
/// phase is taken.
std::vector<RecoveryTimeline> recovery_timelines(
    const std::vector<SpanRecord>& records);

}  // namespace sfc::obs
