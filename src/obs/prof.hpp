// Hot-path budget profiler and steady-state "quiet mode" assertions.
//
// The paper's Table 2 attributes FTC's per-packet cost to a handful of
// stages; this module does the same attribution *live*: every worker
// thread owns a cache-line-padded slot of per-stage TSC accumulators, and
// the data-path code brackets its burst-loop stages with rdtsc deltas when
// a profiler is installed. Installation is process-global and run-time
// gated — every instrumentation point costs one relaxed/acquire load plus
// one predictable branch when no profiler is installed (the same idiom as
// the SpanSampler's off-path check), and the profiler itself is always
// compiled in.
//
// Quiet mode turns steady-state invariants into hard assertions: once
// armed (after warmup), any pool-allocation failure, pool free-retry,
// contended partition-lock acquisition, contended applier MAX-mutex
// acquisition, or blocking-send retry is recorded as a violation. Callers
// (sfc_cli --quiet-assert, the budget-gate bench) dump the span flight
// recorder and fail the run when violations exist.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "base/mutex.hpp"
#include "runtime/clock.hpp"
#include "runtime/common.hpp"

namespace sfc::obs {

class Registry;  // registry export lives in prof.cpp; keep this header light

// ---------------------------------------------------------------------------
// Stages and counters

/// Stages of per-packet cost. The first kProfPrimaryStageCount stages are
/// the non-overlapping top-level pipeline phases of a worker's burst loop;
/// their cycle sums reconcile against the worker's busy wall-clock time.
/// The remaining stages are nested drill-downs (timed *inside* a primary
/// stage, possibly on another thread) and are reported separately.
enum class ProfStage : std::uint8_t {
  // Primary (non-overlapping; sum ~= busy wall time of the worker):
  kPoll = 0,     // ingress poll_burst on the in port
  kViewWalk,     // piggyback view open / frame classification
  kLogApply,     // per-burst replica log apply (grouped per applier)
  kTailCommit,   // tail duty: strip logs, attach commits, prune history
  kProcess,      // middlebox packet transaction
  kAppend,       // log append + egress staging / emit
  kEgressFlush,  // burst egress flush (send_burst + blocking stragglers)
  kParkDrain,    // parked-work drain + park bookkeeping
  kHandoffDrain, // cross-shard handoff ring drain (shard-affine mode)
  // Auxiliary (nested inside primary stages or on non-worker threads):
  kLinkSend,   // Port::send / send_burst internals (Link, ReliableChannel)
  kLinkPoll,   // Port::poll / poll_burst internals
  kStoreApply, // StateStore::apply_wire (inside kLogApply)
  kPoolAlloc,  // PacketPool::alloc_raw
  kPoolFree,   // PacketPool::free_raw
};
inline constexpr std::size_t kProfStageCount = 14;
inline constexpr std::size_t kProfPrimaryStageCount = 9;

const char* prof_stage_name(ProfStage stage) noexcept;

inline constexpr bool prof_stage_primary(ProfStage stage) noexcept {
  return static_cast<std::size_t>(stage) < kProfPrimaryStageCount;
}

/// Event counters: lock acquisition vs contention, allocation slow paths,
/// blocking-send retries. The *violation* subset trips quiet mode.
enum class ProfCounter : std::uint8_t {
  kPartitionLockAcquire = 0,
  kPartitionLockContended,  // violation: first CAS lost to another owner
  kApplierMutexAcquire,
  kApplierMutexContended,  // violation: MAX-mutex try_lock failed
  kPoolAllocFailure,       // violation: pool exhausted, alloc returned null
  kPoolFreeRetry,          // violation: free raced a concurrent alloc
  kSendRetry,              // violation: send_blocking spun on a full ring
  kOwnerMiss,              // violation: shard-affine txn on a non-owner thread
  kHandoffPush,            // cross-shard write handed to the owning worker
};
inline constexpr std::size_t kProfCounterCount = 9;

const char* prof_counter_name(ProfCounter c) noexcept;

inline constexpr bool prof_counter_is_violation(ProfCounter c) noexcept {
  return c != ProfCounter::kPartitionLockAcquire &&
         c != ProfCounter::kApplierMutexAcquire &&
         c != ProfCounter::kHandoffPush;
}

// ---------------------------------------------------------------------------
// Per-worker accumulator slot

/// One worker thread's accumulators. Cache-line aligned and written only by
/// the owning thread (relaxed atomics so concurrent report snapshots are
/// race-free under TSan).
struct alignas(rt::kCacheLineSize) ProfSlot {
  std::atomic<std::uint64_t> cycles[kProfStageCount];
  std::atomic<std::uint64_t> ops[kProfStageCount];
  std::atomic<std::uint64_t> packets{0};      // data packets this worker handled
  std::atomic<std::uint64_t> bursts{0};       // non-empty burst iterations
  std::atomic<std::uint64_t> wall_cycles{0};  // busy wall: cycles spent in
                                              // non-empty burst iterations
  std::atomic<std::uint64_t> counters[kProfCounterCount];
  char name[48]{};
  std::atomic<bool> used{false};

  void add(ProfStage stage, std::uint64_t delta_cycles,
           std::uint64_t op_count = 1) noexcept {
    const auto i = static_cast<std::size_t>(stage);
    cycles[i].fetch_add(delta_cycles, std::memory_order_relaxed);
    ops[i].fetch_add(op_count, std::memory_order_relaxed);
  }
};

/// RAII stage timer: accumulates the enclosed rdtsc delta (and an op count)
/// into @p slot, or does nothing when @p slot is null.
class ProfStageTimer {
 public:
  ProfStageTimer(ProfSlot* slot, ProfStage stage,
                 std::uint64_t op_count = 1) noexcept
      : slot_(slot) {
    if (SFC_UNLIKELY(slot_ != nullptr)) {
      stage_ = stage;
      ops_ = op_count;
      start_ = rt::rdtsc();
    }
  }
  ~ProfStageTimer() {
    if (SFC_UNLIKELY(slot_ != nullptr)) {
      slot_->add(stage_, rt::rdtsc() - start_, ops_);
    }
  }
  ProfStageTimer(const ProfStageTimer&) = delete;
  ProfStageTimer& operator=(const ProfStageTimer&) = delete;

 private:
  ProfSlot* slot_;
  ProfStage stage_{ProfStage::kPoll};
  std::uint64_t ops_{0};
  std::uint64_t start_{0};
};

// ---------------------------------------------------------------------------
// Reports

struct ProfViolation {
  ProfCounter kind;
  std::uint64_t ts_ns;  // wall-clock (steady) time the violation fired
  std::string worker;
};

struct BudgetStageRow {
  ProfStage stage;
  std::uint64_t cycles{0};
  std::uint64_t ops{0};
  double cycles_per_packet{0.0};  // cycles / denominator (see BudgetWorker)
  double ns_per_packet{0.0};
};

struct BudgetWorker {
  std::string worker;
  std::uint64_t packets{0};
  std::uint64_t bursts{0};
  std::uint64_t wall_cycles{0};
  /// sum(primary stage cycles) / wall_cycles; 0 when wall_cycles == 0.
  double reconciliation{0.0};
  std::vector<BudgetStageRow> stages;  // all kProfStageCount rows, in order
  std::uint64_t counters[kProfCounterCount]{};
};

struct BudgetReport {
  double tsc_hz{0.0};
  std::vector<BudgetWorker> workers;  // per-worker rows (used slots only)
  BudgetWorker total;                 // aggregate across workers
  bool quiet_armed{false};
  std::uint64_t quiet_violations{0};
  std::vector<ProfViolation> violations;  // first kMaxViolationRecords only
};

/// Renders a table2-style text table (ns/packet and cycles/packet per
/// stage, per worker plus the aggregate).
std::string budget_to_text(const BudgetReport& report);

// ---------------------------------------------------------------------------
// HotProfiler

class HotProfiler : rt::NonCopyable {
 public:
  static constexpr std::size_t kMaxSlots = 64;
  static constexpr std::size_t kMaxViolationRecords = 64;

  HotProfiler();
  ~HotProfiler();

  /// Fast path: the calling thread's slot, or nullptr if the thread has not
  /// registered with this profiler yet. Thread-local cached; no locking.
  ProfSlot* maybe_slot() noexcept;

  /// Registers (idempotently) the calling thread under @p name. Cheap after
  /// the first call per thread. Worker threads call this with their worker
  /// label; deep layers use auto_slot() instead.
  ProfSlot* thread_slot(std::string_view name);

  /// Like thread_slot() but auto-names unregistered threads "t<N>". Used by
  /// instrumentation points that do not know their worker's label.
  ProfSlot* auto_slot();

  /// Bumps @p c on the calling thread's slot. When quiet mode is armed and
  /// @p c is a violation counter, records a violation.
  void count(ProfCounter c, std::uint64_t n = 1) noexcept;

  // Quiet mode -------------------------------------------------------------
  void arm_quiet() noexcept;
  void disarm_quiet() noexcept;
  bool quiet_armed() const noexcept {
    return quiet_armed_.load(std::memory_order_acquire);
  }
  std::uint64_t quiet_violation_count() const noexcept {
    return quiet_violations_.load(std::memory_order_acquire);
  }
  /// True when quiet mode has been armed and nothing violated it.
  bool quiet_ok() const noexcept {
    return quiet_was_armed_.load(std::memory_order_acquire) &&
           quiet_violation_count() == 0;
  }
  std::vector<ProfViolation> violations() const;

  /// Zeroes every slot's accumulators and the whole quiet state — armed
  /// latch included, so callers re-arm explicitly (slots stay registered).
  /// Used at the warmup/measure boundary.
  void reset() noexcept;

  // Reporting --------------------------------------------------------------
  BudgetReport report() const;

  /// Publishes the budget as registry gauges (budget.ns_per_packet{stage,
  /// worker}, budget.cycles_per_packet{...}, budget.counter{kind},
  /// budget.reconciliation{worker}, budget.quiet_*) so it lands in every
  /// BENCH_*.json snapshot. Idempotent; call at report time.
  void export_metrics(Registry& registry) const;

  std::uint64_t generation() const noexcept { return gen_; }

 private:
  ProfSlot* register_thread(std::string_view name);
  BudgetWorker row_for(const ProfSlot* slot) const;

  const std::uint64_t gen_;
  ProfSlot slots_[kMaxSlots];
  std::atomic<std::uint32_t> next_slot_{0};
  /// A thread's first prof_count can fire inside PartitionLock::lock, so
  /// slot registration must rank below the partition locks.
  Mutex register_mutex_{ranks::kProfRegister, "prof.register"};

  std::atomic<bool> quiet_armed_{false};
  std::atomic<bool> quiet_was_armed_{false};
  std::atomic<std::uint64_t> quiet_violations_{0};
  /// Violations are recorded from arbitrary hot-path lock contexts
  /// (contended partition lock, applier MAX mutex), so this is nearly the
  /// innermost rank in the tree.
  mutable Mutex violation_mutex_{ranks::kProfViolation, "prof.violation"};
  std::vector<ProfViolation> violation_records_
      SFC_GUARDED_BY(violation_mutex_);
};

// ---------------------------------------------------------------------------
// Process-global installation (run-time gate)

namespace detail {
extern std::atomic<HotProfiler*> g_hot_profiler;
}

/// The installed profiler, or nullptr. This load + null check is the entire
/// disabled-path cost of every instrumentation point.
inline HotProfiler* hot_profiler() noexcept {
  return detail::g_hot_profiler.load(std::memory_order_acquire);
}

/// Installs @p p as the process-global profiler. Returns false (and leaves
/// the current profiler in place) if another profiler is already installed.
bool install_hot_profiler(HotProfiler* p) noexcept;

/// Uninstalls @p p if it is the installed profiler (no-op otherwise).
void uninstall_hot_profiler(HotProfiler* p) noexcept;

/// Calling thread's slot of the installed profiler (auto-registered), or
/// nullptr when no profiler is installed. Single branch when disabled.
inline ProfSlot* prof_slot() noexcept {
  HotProfiler* p = hot_profiler();
  if (SFC_UNLIKELY(p != nullptr)) return p->auto_slot();
  return nullptr;
}

/// Bumps @p c on the installed profiler, if any. Single branch when
/// disabled.
inline void prof_count(ProfCounter c, std::uint64_t n = 1) noexcept {
  HotProfiler* p = hot_profiler();
  if (SFC_UNLIKELY(p != nullptr)) p->count(c, n);
}

}  // namespace sfc::obs
