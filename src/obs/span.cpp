#include "obs/span.hpp"

#include <algorithm>
#include <map>

#include "runtime/histogram.hpp"

namespace sfc::obs {
namespace {

/// Collector generations are globally unique and never reused, so a stale
/// thread-local cache entry from a destroyed collector can never match a
/// live one (and its dangling queue pointer is never dereferenced).
std::atomic<std::uint64_t> g_collector_gen{1};

struct LocalRef {
  std::uint64_t gen{0};
  SpanCollector::Ring* ring{nullptr};
};
thread_local std::vector<LocalRef> t_queues;

}  // namespace

const char* to_string(SpanKind k) noexcept {
  switch (k) {
    case SpanKind::kGenEmit: return "gen_emit";
    case SpanKind::kNodeIngress: return "ingress";
    case SpanKind::kApply: return "apply_logs";
    case SpanKind::kProcess: return "process";
    case SpanKind::kCommitAttach: return "commit_attach";
    case SpanKind::kStrip: return "strip_logs";
    case SpanKind::kPark: return "park";
    case SpanKind::kUnpark: return "unpark";
    case SpanKind::kNodeEgress: return "egress";
    case SpanKind::kLinkEnter: return "link_enter";
    case SpanKind::kLinkExit: return "link_exit";
    case SpanKind::kLinkDrop: return "link_drop";
    case SpanKind::kLinkHold: return "link_hold";
    case SpanKind::kBufferHold: return "buffer_hold";
    case SpanKind::kBufferRelease: return "buffer_release";
    case SpanKind::kSinkRecv: return "sink_recv";
    case SpanKind::kFail: return "fail";
    case SpanKind::kDetect: return "detect";
    case SpanKind::kSpawn: return "spawn";
    case SpanKind::kInitAck: return "init_ack";
    case SpanKind::kFetchStart: return "fetch_start";
    case SpanKind::kFetchDone: return "fetch_done";
    case SpanKind::kReroute: return "reroute";
  }
  return "?";
}

SpanCollector::SpanCollector(Registry* registry, Config cfg)
    : gen_(g_collector_gen.fetch_add(1, std::memory_order_relaxed)),
      cfg_(cfg),
      registry_(registry) {
  records_.reserve(std::min<std::size_t>(cfg_.max_records, 1u << 16));
  if (registry_ != nullptr) {
    registry_->set_span_sink(this);
    registry_->gauge_fn("span.collected", {{"span", "collector"}},
                        [this] { return static_cast<double>(collected()); });
    registry_->gauge_fn("span.dropped", {{"span", "collector"}},
                        [this] { return static_cast<double>(dropped()); });
  }
  drainer_ = std::make_unique<rt::Worker>("span-drain",
                                          [this] { return tick(); });
}

SpanCollector::~SpanCollector() {
  if (registry_ != nullptr) {
    if (registry_->span_sink() == this) registry_->set_span_sink(nullptr);
    registry_->remove_matching("span", "collector");
  }
  drainer_.reset();  // Joins the drainer before queues_ dies.
}

SpanCollector::Ring* SpanCollector::local_ring() {
  for (const auto& ref : t_queues) {
    if (ref.gen == gen_) return ref.ring;
  }
  Ring* ring = nullptr;
  {
    LockGuard lock(register_mutex_);
    // Label the ring by the owning worker so per-ring drop/occupancy
    // gauges name the thread that produced them ("main" covers
    // test/driver threads).
    std::string owner{rt::current_worker_name()};
    if (owner.empty()) owner = "main";
    ring = &queues_.emplace_back(cfg_.thread_buffer_capacity,
                                 std::move(owner));
    // Ring gauges cannot be registered here: a thread's first record()
    // runs under whatever component lock the caller holds (e.g. the
    // egress buffer flushing into a link), and Registry::gauge_fn takes
    // the registry mutex, which outranks all of them — registering
    // inline inverts the lock order against Registry::snapshot driving
    // component callbacks. Park the ring for the drain side, which runs
    // with nothing held above it.
    if (registry_ != nullptr) pending_gauges_.push_back(ring);
  }
  t_queues.push_back({gen_, ring});
  return ring;
}

void SpanCollector::record(const SpanRecord& r) noexcept {
  Ring* ring = local_ring();
  if (!ring->queue.try_push(SpanRecord{r})) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    ring->drops.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  // Occupancy high-water: the producer is the only pusher, so reading
  // size right after the push is an accurate producer-side occupancy.
  const auto occ =
      static_cast<std::uint64_t>(ring->queue.size_approx());
  if (occ > ring->high_water.load(std::memory_order_relaxed)) {
    ring->high_water.store(occ, std::memory_order_relaxed);
  }
}

std::size_t SpanCollector::drain() {
  LockGuard drain_lock(drain_mutex_);
  std::vector<Ring*> queues;
  std::vector<Ring*> pending;
  {
    LockGuard lock(register_mutex_);
    queues.reserve(queues_.size());
    for (auto& q : queues_) queues.push_back(&q);
    pending.swap(pending_gauges_);
  }
  // Deferred ring-gauge registration (see local_ring): drain_mutex_
  // outranks the registry mutex, so this is the safe side to touch it.
  for (Ring* ring : pending) {
    const Labels labels{{"span", "collector"}, {"worker", ring->owner}};
    registry_->gauge_fn("span.ring_dropped", labels, [ring] {
      return static_cast<double>(ring->drops.load(std::memory_order_relaxed));
    });
    registry_->gauge_fn("span.ring_high_water", labels, [ring] {
      return static_cast<double>(
          ring->high_water.load(std::memory_order_relaxed));
    });
  }
  std::size_t moved = 0;
  for (auto* ring : queues) {
    while (auto r = ring->queue.try_pop()) {
      ++moved;
      if (records_.size() < cfg_.max_records) {
        records_.push_back(*r);
        collected_.fetch_add(1, std::memory_order_relaxed);
      } else {
        dropped_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  return moved;
}

bool SpanCollector::tick() { return drain() > 0; }

std::vector<SpanRecord> SpanCollector::snapshot() {
  drain();
  std::vector<SpanRecord> out;
  {
    LockGuard lock(drain_mutex_);
    out = records_;
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const SpanRecord& a, const SpanRecord& b) {
                     return a.ts_ns < b.ts_ns;
                   });
  return out;
}

void SpanCollector::clear() {
  drain();
  LockGuard lock(drain_mutex_);
  records_.clear();
  collected_.store(0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
  LockGuard reg_lock(register_mutex_);
  for (auto& ring : queues_) {
    ring.drops.store(0, std::memory_order_relaxed);
    ring.high_water.store(0, std::memory_order_relaxed);
  }
}

// --- Derived views. ------------------------------------------------------

std::vector<HopBreakdown> per_hop_breakdown(
    const std::vector<SpanRecord>& records) {
  // Group by trace, walk each trace in time order, and pair ingress/egress
  // per node site. A link transit completed just before a node ingress is
  // attributed to that hop, which works for any wiring without the
  // analysis knowing the chain topology.
  std::vector<SpanRecord> rs = records;
  std::stable_sort(rs.begin(), rs.end(),
                   [](const SpanRecord& a, const SpanRecord& b) {
                     if (a.trace_id != b.trace_id) return a.trace_id < b.trace_id;
                     return a.ts_ns < b.ts_ns;
                   });

  std::map<std::uint32_t, HopBreakdown> hops;
  const auto hop_of = [&hops](std::uint32_t site) -> HopBreakdown& {
    auto& h = hops[site];
    h.site = site;
    return h;
  };

  std::size_t i = 0;
  while (i < rs.size()) {
    const std::uint64_t trace = rs[i].trace_id;
    std::size_t end = i;
    while (end < rs.size() && rs[end].trace_id == trace) ++end;
    if (is_recovery_trace(trace)) {
      i = end;
      continue;
    }

    std::map<std::uint32_t, std::uint64_t> ingress_ts;
    std::map<std::uint32_t, std::uint64_t> link_enter_ts;
    std::uint64_t pending_transit = 0;
    for (; i < end; ++i) {
      const SpanRecord& r = rs[i];
      switch (r.kind) {
        case SpanKind::kLinkEnter:
          link_enter_ts[r.site] = r.ts_ns;
          break;
        case SpanKind::kLinkExit: {
          const auto it = link_enter_ts.find(r.site);
          if (it != link_enter_ts.end() && r.ts_ns >= it->second) {
            pending_transit = r.ts_ns - it->second;
            link_enter_ts.erase(it);
          }
          break;
        }
        case SpanKind::kNodeIngress: {
          auto& h = hop_of(r.site);
          h.position = static_cast<std::uint32_t>(r.a);
          ingress_ts[r.site] = r.ts_ns;
          if (pending_transit != 0) {
            h.transit_ns.record(pending_transit);
            pending_transit = 0;
          }
          break;
        }
        case SpanKind::kProcess:
          hop_of(r.site).process_ns.record(r.a);
          break;
        case SpanKind::kApply:
          hop_of(r.site).apply_ns.record(r.a);
          break;
        case SpanKind::kNodeEgress: {
          const auto it = ingress_ts.find(r.site);
          if (it != ingress_ts.end() && r.ts_ns >= it->second) {
            hop_of(r.site).hop_ns.record(r.ts_ns - it->second);
            ingress_ts.erase(it);
          }
          break;
        }
        default:
          break;
      }
    }
  }

  std::vector<HopBreakdown> out;
  out.reserve(hops.size());
  for (auto& [site, h] : hops) out.push_back(std::move(h));
  std::stable_sort(out.begin(), out.end(),
                   [](const HopBreakdown& a, const HopBreakdown& b) {
                     if (a.position != b.position) return a.position < b.position;
                     return a.site < b.site;
                   });
  return out;
}

bool RecoveryTimeline::complete() const noexcept {
  // The replacement starts fetching as soon as it has *sent* its init
  // ack, while init_ack_ns is stamped when the ack *reaches* the
  // orchestrator — over a WAN that arrival can postdate fetch_done, so
  // the ack is only ordered against spawn and reroute, not the fetches.
  return fail_ns != 0 && detect_ns != 0 && spawn_ns != 0 && init_ack_ns != 0 &&
         fetch_start_ns != 0 && fetch_done_ns != 0 && reroute_ns != 0 &&
         fail_ns <= detect_ns && detect_ns <= spawn_ns &&
         spawn_ns <= init_ack_ns && init_ack_ns <= reroute_ns &&
         spawn_ns <= fetch_start_ns && fetch_start_ns <= fetch_done_ns &&
         fetch_done_ns <= reroute_ns;
}

std::vector<RecoveryTimeline> recovery_timelines(
    const std::vector<SpanRecord>& records) {
  std::vector<SpanRecord> rs;
  for (const SpanRecord& r : records) {
    if (is_recovery_trace(r.trace_id)) rs.push_back(r);
  }
  std::stable_sort(rs.begin(), rs.end(),
                   [](const SpanRecord& a, const SpanRecord& b) {
                     return a.ts_ns < b.ts_ns;
                   });

  std::map<std::uint64_t, RecoveryTimeline> timelines;
  for (const SpanRecord& r : rs) {
    auto& t = timelines[r.trace_id];
    t.position = static_cast<std::uint32_t>(r.trace_id & 0xFF'FFFFu);
    const auto first = [&r](std::uint64_t& field) {
      if (field == 0) field = r.ts_ns;
    };
    switch (r.kind) {
      case SpanKind::kFail: first(t.fail_ns); break;
      case SpanKind::kDetect: first(t.detect_ns); break;
      case SpanKind::kSpawn: first(t.spawn_ns); break;
      case SpanKind::kInitAck: first(t.init_ack_ns); break;
      case SpanKind::kFetchStart: first(t.fetch_start_ns); break;
      case SpanKind::kFetchDone:
        // Last fetch completion: the fetch window closes when every
        // store has been pulled.
        t.fetch_done_ns = std::max(t.fetch_done_ns, r.ts_ns);
        break;
      case SpanKind::kReroute: first(t.reroute_ns); break;
      default: break;
    }
  }

  std::vector<RecoveryTimeline> out;
  out.reserve(timelines.size());
  for (auto& [id, t] : timelines) out.push_back(t);
  std::stable_sort(out.begin(), out.end(),
                   [](const RecoveryTimeline& a, const RecoveryTimeline& b) {
                     return a.position < b.position;
                   });
  return out;
}

}  // namespace sfc::obs
