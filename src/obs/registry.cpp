#include "obs/registry.hpp"

#include <algorithm>

namespace sfc::obs {

Labels Registry::canonical(Labels labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

std::string Registry::key_of(char kind, std::string_view name,
                             const Labels& labels) {
  std::string key;
  key.reserve(name.size() + 2 + labels.size() * 16);
  key.push_back(kind);
  key.append(name);
  for (const auto& [k, v] : labels) {
    key.push_back('\x1f');
    key.append(k);
    key.push_back('=');
    key.append(v);
  }
  return key;
}

Counter& Registry::counter(std::string_view name, Labels labels) {
  labels = canonical(std::move(labels));
  const std::string key = key_of('c', name, labels);
  LockGuard lock(mutex_);
  if (const auto it = index_.find(key); it != index_.end()) {
    return *static_cast<Counter*>(it->second);
  }
  auto& entry = counters_.emplace_back();
  entry.name = std::string(name);
  entry.labels = std::move(labels);
  index_.emplace(key, &entry.value);
  return entry.value;
}

Gauge& Registry::gauge(std::string_view name, Labels labels) {
  labels = canonical(std::move(labels));
  const std::string key = key_of('g', name, labels);
  LockGuard lock(mutex_);
  if (const auto it = index_.find(key); it != index_.end()) {
    return *static_cast<Gauge*>(it->second);
  }
  auto& entry = gauges_.emplace_back();
  entry.name = std::string(name);
  entry.labels = std::move(labels);
  index_.emplace(key, &entry.value);
  return entry.value;
}

Timer& Registry::timer(std::string_view name, Labels labels) {
  labels = canonical(std::move(labels));
  const std::string key = key_of('t', name, labels);
  LockGuard lock(mutex_);
  if (const auto it = index_.find(key); it != index_.end()) {
    return *static_cast<Timer*>(it->second);
  }
  auto& entry = timers_.emplace_back();
  entry.name = std::string(name);
  entry.labels = std::move(labels);
  index_.emplace(key, &entry.value);
  return entry.value;
}

EventTrace& Registry::trace(std::string_view name, Labels labels,
                            std::size_t capacity) {
  labels = canonical(std::move(labels));
  const std::string key = key_of('e', name, labels);
  LockGuard lock(mutex_);
  if (const auto it = index_.find(key); it != index_.end()) {
    return *static_cast<EventTrace*>(it->second);
  }
  auto& entry =
      traces_.emplace_back(std::string(name), std::move(labels), capacity);
  index_.emplace(key, &entry.value);
  return entry.value;
}

void Registry::gauge_fn(std::string_view name, Labels labels,
                        std::function<double()> fn) {
  labels = canonical(std::move(labels));
  const std::string key = key_of('f', name, labels);
  LockGuard lock(mutex_);
  if (const auto it = index_.find(key); it != index_.end()) {
    static_cast<GaugeFnEntry*>(it->second)->fn = std::move(fn);
    return;
  }
  auto& entry = gauge_fns_.emplace_back();
  entry.name = std::string(name);
  entry.labels = std::move(labels);
  entry.fn = std::move(fn);
  index_.emplace(key, &entry);
}

void Registry::histogram_fn(std::string_view name, Labels labels,
                            std::function<rt::Histogram()> fn) {
  labels = canonical(std::move(labels));
  const std::string key = key_of('h', name, labels);
  LockGuard lock(mutex_);
  if (const auto it = index_.find(key); it != index_.end()) {
    static_cast<HistFnEntry*>(it->second)->fn = std::move(fn);
    return;
  }
  auto& entry = hist_fns_.emplace_back();
  entry.name = std::string(name);
  entry.labels = std::move(labels);
  entry.fn = std::move(fn);
  index_.emplace(key, &entry);
}

void Registry::remove_matching(std::string_view label_key,
                               std::string_view value) {
  const auto matches = [&](const Labels& labels) {
    return std::any_of(labels.begin(), labels.end(), [&](const auto& kv) {
      return kv.first == label_key && kv.second == value;
    });
  };
  LockGuard lock(mutex_);
  // Callback entries only: value metrics keep their (dead but readable)
  // final counts; callbacks into destroyed owners must go. The deque slots
  // stay allocated (stable addresses) with the callback emptied.
  for (auto& entry : gauge_fns_) {
    if (entry.fn && matches(entry.labels)) entry.fn = nullptr;
  }
  for (auto& entry : hist_fns_) {
    if (entry.fn && matches(entry.labels)) entry.fn = nullptr;
  }
}

std::vector<Sample> Registry::snapshot() const {
  LockGuard lock(mutex_);
  std::vector<Sample> out;
  out.reserve(counters_.size() + gauges_.size() + timers_.size() +
              gauge_fns_.size() + hist_fns_.size());
  for (const auto& e : counters_) {
    Sample s;
    s.name = e.name;
    s.labels = e.labels;
    s.kind = Sample::Kind::kCounter;
    s.value = static_cast<double>(e.value.value());
    out.push_back(std::move(s));
  }
  for (const auto& e : gauges_) {
    Sample s;
    s.name = e.name;
    s.labels = e.labels;
    s.kind = Sample::Kind::kGauge;
    s.value = static_cast<double>(e.value.value());
    out.push_back(std::move(s));
  }
  for (const auto& e : gauge_fns_) {
    if (!e.fn) continue;
    Sample s;
    s.name = e.name;
    s.labels = e.labels;
    s.kind = Sample::Kind::kGauge;
    s.value = e.fn();
    out.push_back(std::move(s));
  }
  for (const auto& e : timers_) {
    Sample s;
    s.name = e.name;
    s.labels = e.labels;
    s.kind = Sample::Kind::kHistogram;
    s.hist = e.value.snapshot();
    out.push_back(std::move(s));
  }
  for (const auto& e : hist_fns_) {
    if (!e.fn) continue;
    Sample s;
    s.name = e.name;
    s.labels = e.labels;
    s.kind = Sample::Kind::kHistogram;
    s.hist = e.fn();
    out.push_back(std::move(s));
  }
  return out;
}

std::vector<TraceDump> Registry::trace_snapshot() const {
  LockGuard lock(mutex_);
  std::vector<TraceDump> out;
  out.reserve(traces_.size());
  for (const auto& e : traces_) {
    TraceDump d;
    d.name = e.name;
    d.labels = e.labels;
    d.dropped = e.value.dropped();
    d.events = e.value.snapshot();
    out.push_back(std::move(d));
  }
  return out;
}

std::size_t Registry::metric_count() const {
  LockGuard lock(mutex_);
  return counters_.size() + gauges_.size() + timers_.size() +
         gauge_fns_.size() + hist_fns_.size();
}

void Registry::reset_counters() {
  LockGuard lock(mutex_);
  for (auto& e : counters_) e.value.reset();
  for (auto& e : timers_) e.value.reset();
}

void Registry::name_span_site(std::uint32_t site, std::string name) {
  LockGuard lock(mutex_);
  site_names_[site] = std::move(name);
}

std::map<std::uint32_t, std::string> Registry::span_site_names() const {
  LockGuard lock(mutex_);
  return site_names_;
}

}  // namespace sfc::obs
