// Observability: Chrome trace-event JSON exporter for collected spans.
//
// Serializes SpanRecords into the Chrome trace-event format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU)
// so a capture loads directly in Perfetto (ui.perfetto.dev) or
// chrome://tracing. Every span site (node, link, buffer, orchestrator,
// generator, sink) becomes one track: paired events (node ingress/egress,
// link enter/exit, buffer hold/release, fetch start/done, detect/reroute)
// render as complete ("X") slices, durations carried in the record
// (process, apply, unpark, end-to-end) as slices ending at the record's
// timestamp, and everything else (drops, parks, failure/recovery
// milestones) as instants. Timestamps are normalized to the earliest
// record so traces start at t=0.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/span.hpp"

namespace sfc::obs {

/// Renders records as a Chrome trace-event JSON document
/// ({"traceEvents":[...]}). @p site_names maps span sites to track names
/// (Registry::span_site_names); unnamed sites get a generated name.
std::string to_chrome_trace(
    const std::vector<SpanRecord>& records,
    const std::map<std::uint32_t, std::string>& site_names = {});

/// to_chrome_trace + atomic file write. Returns false on I/O failure.
bool write_chrome_trace(
    const std::string& path, const std::vector<SpanRecord>& records,
    const std::map<std::uint32_t, std::string>& site_names = {});

}  // namespace sfc::obs
