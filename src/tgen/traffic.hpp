// Traffic generation and measurement (MoonGen / pktgen stand-ins).
//
// TrafficSource fabricates UDP/TCP flows and injects them at a configured
// rate (or as fast as the chain back-pressures via the shared packet
// pool). TrafficSink drains the chain egress, recording per-packet latency
// (from the generator timestamp annotation) and throughput. Both run on
// their own worker threads so measurement proceeds while the chain runs.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "base/mutex.hpp"
#include "core/config.hpp"
#include "net/link.hpp"
#include "obs/span.hpp"
#include "packet/packet_io.hpp"
#include "packet/packet_pool.hpp"
#include "runtime/histogram.hpp"
#include "runtime/meter.hpp"
#include "runtime/rate_limiter.hpp"
#include "runtime/rng.hpp"
#include "runtime/worker.hpp"

namespace sfc::tgen {

struct Workload {
  std::size_t num_flows{64};
  std::size_t frame_len{256};     ///< Paper default: 256 B packets.
  bool tcp{false};
  std::uint32_t src_base{0x0a000001};  ///< 10.0.0.1+ (internal for NAT).
  std::uint32_t dst_base{0x08080808};  ///< 8.8.8.8+ (external).
  std::uint16_t src_port_base{20000};
  std::uint16_t dst_port{443};
  std::uint64_t seed{42};
  /// Span tracing: stamp every Nth packet (deterministically, by hashed
  /// packet id) with a trace id. 0 = tracing off, 1 = every packet.
  std::uint64_t trace_sample{0};
  /// Source/sink burst size (clamped to [1, ftc::kMaxBurst]): the source
  /// builds up to this many packets per iteration and injects them with
  /// one bulk send; the sink drains in bursts. At a limited rate the fill
  /// stops at the pacing deadline, so bursting never distorts latency.
  std::size_t burst{32};
  /// Flow churn: mean flow lifetime in packets (0 = flows live forever,
  /// the historical behavior). When set, the source keeps a table of
  /// num_flows concurrently-active flows whose lifetimes are drawn from a
  /// bounded Pareto (heavy-tailed, like real flow-size distributions);
  /// an expired flow is replaced by a brand-new 5-tuple, so long runs keep
  /// inserting fresh keys into per-flow middlebox state — the fig5
  /// large-state sweeps use this to exercise insert/evict churn instead of
  /// a static working set.
  std::uint64_t churn_mean_packets{0};
  /// Pareto shape for churn lifetimes. Must be > 1 (finite mean); smaller
  /// = heavier tail (a few elephant flows, many mice).
  double churn_alpha{1.5};

  pkt::FlowKey flow(std::size_t i) const noexcept {
    pkt::FlowKey f;
    f.src_ip = src_base + static_cast<std::uint32_t>(i % 251);
    f.dst_ip = dst_base + static_cast<std::uint32_t>(i / 251);
    f.src_port = static_cast<std::uint16_t>(src_port_base + i);
    f.dst_port = dst_port;
    f.protocol = tcp ? pkt::Ipv4Header::kProtoTcp : pkt::Ipv4Header::kProtoUdp;
    return f;
  }
};

class TrafficSource : rt::NonCopyable {
 public:
  /// @param rate_pps 0 = unlimited (pool back-pressure sets the pace).
  /// @param spans Span collector for sampled-packet tracing; pass null (or
  ///              leave workload.trace_sample at 0) to disable.
  TrafficSource(pkt::PacketPool& pool, net::Port& out, Workload workload,
                double rate_pps = 0.0, obs::SpanCollector* spans = nullptr);
  ~TrafficSource() { stop(); }

  void start();
  void stop();

  std::uint64_t packets_sent() const noexcept { return sent_.load(); }
  std::uint64_t pool_stalls() const noexcept { return pool_stalls_.load(); }
  const rt::Meter& meter() const noexcept { return meter_; }

 private:
  bool body();

  pkt::PacketPool& pool_;
  net::Port& out_;
  const Workload workload_;
  rt::RateLimiter limiter_;
  const obs::SpanSampler sampler_;
  obs::SpanCollector* spans_{nullptr};
  std::unique_ptr<rt::Worker> worker_;

  /// One concurrently-active flow under churn: the workload flow index it
  /// currently impersonates and how many more packets it emits before a
  /// fresh flow replaces it.
  struct ActiveFlow {
    std::size_t index{0};
    std::uint64_t remaining{0};
  };

  /// Bounded-Pareto lifetime draw (packets) with mean churn_mean_packets.
  std::uint64_t sample_lifetime() noexcept;

  std::size_t next_flow_{0};
  std::size_t burst_{1};  ///< workload.burst clamped to [1, kMaxBurst].
  /// Churn state (empty when churn_mean_packets == 0).
  std::vector<ActiveFlow> active_;
  std::size_t fresh_index_{0};  ///< Next never-used flow index.
  rt::Pcg32 rng_;
  std::atomic<std::uint64_t> sent_{0};
  std::atomic<std::uint64_t> pool_stalls_{0};
  rt::Meter meter_;
};

class TrafficSink : rt::NonCopyable {
 public:
  TrafficSink(pkt::PacketPool& pool, net::Port& in,
              obs::SpanCollector* spans = nullptr);
  ~TrafficSink() { stop(); }

  void start();
  void stop();

  std::uint64_t packets_received() const noexcept { return received_.load(); }
  const rt::Meter& meter() const noexcept { return meter_; }

  /// Snapshot of the latency histogram (nanoseconds).
  rt::Histogram latency() const {
    LockGuard lock(latency_mutex_);
    return latency_;
  }

  void reset_latency() {
    LockGuard lock(latency_mutex_);
    latency_.reset();
  }

 private:
  bool body();

  pkt::PacketPool& pool_;
  net::Port& in_;
  obs::SpanCollector* spans_{nullptr};
  std::unique_ptr<rt::Worker> worker_;
  std::atomic<std::uint64_t> received_{0};
  rt::Meter meter_;
  mutable Mutex latency_mutex_{ranks::kLeaf, "tgen.latency"};
  rt::Histogram latency_ SFC_GUARDED_BY(latency_mutex_);
};

/// Result of a timed load run.
struct RunResult {
  double duration_s{0};
  double offered_mpps{0};
  double delivered_mpps{0};
  double gbps{0};
  std::uint64_t sent{0};
  std::uint64_t received{0};
  rt::Histogram latency;  ///< Nanoseconds.

  double mean_latency_us() const { return latency.mean() / 1000.0; }
  double p50_latency_us() const {
    return static_cast<double>(latency.p50()) / 1000.0;
  }
  double p99_latency_us() const {
    return static_cast<double>(latency.p99()) / 1000.0;
  }
};

/// Drives @p workload through ingress/egress links for @p duration_s
/// seconds at @p rate_pps (0 = max) after @p warmup_s of warmup, and
/// reports delivered throughput and latency.
/// @param spans Collector for sampled-packet spans (needs
///              workload.trace_sample > 0 to have any effect).
/// @param on_measure_start Called once at the warmup/measurement boundary
///              (benches use it to reset registry counters and spans so the
///              report covers the measured window only).
RunResult run_load(pkt::PacketPool& pool, net::Port& ingress, net::Port& egress,
                   const Workload& workload, double rate_pps,
                   double duration_s, double warmup_s = 0.2,
                   obs::SpanCollector* spans = nullptr,
                   const std::function<void()>& on_measure_start = {});

}  // namespace sfc::tgen
