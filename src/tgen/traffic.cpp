#include "tgen/traffic.hpp"

#include <algorithm>
#include <cmath>
#include <thread>

#include "runtime/clock.hpp"

namespace sfc::tgen {

TrafficSource::TrafficSource(pkt::PacketPool& pool, net::Port& out,
                             Workload workload, double rate_pps,
                             obs::SpanCollector* spans)
    : pool_(pool),
      out_(out),
      workload_(workload),
      limiter_(rate_pps),
      sampler_(workload.trace_sample, workload.seed),
      spans_(spans),
      burst_(std::clamp<std::size_t>(workload.burst, 1, ftc::kMaxBurst)),
      rng_(workload.seed, 0x7467656e) {
  if (workload_.churn_mean_packets != 0) {
    active_.resize(workload_.num_flows);
    for (auto& f : active_) {
      f.index = fresh_index_++;
      f.remaining = sample_lifetime();
    }
  }
}

std::uint64_t TrafficSource::sample_lifetime() noexcept {
  // Pareto with shape alpha and scale xm chosen so the mean
  // xm * alpha / (alpha - 1) equals churn_mean_packets. Inverse-CDF
  // sampling: xm * (1 - u)^(-1/alpha); clamped so a single elephant flow
  // cannot pin its table slot for an entire long run.
  const double alpha = std::max(1.01, workload_.churn_alpha);
  const double mean = static_cast<double>(workload_.churn_mean_packets);
  const double xm = mean * (alpha - 1.0) / alpha;
  const double u =
      (static_cast<double>(rng_.next()) + 0.5) / 4294967296.0;  // (0, 1)
  const double draw = xm * std::pow(1.0 - u, -1.0 / alpha);
  return static_cast<std::uint64_t>(
      std::clamp(draw, 1.0, 10'000'000.0));
}

void TrafficSource::start() {
  if (worker_) return;
  worker_ = std::make_unique<rt::Worker>();
  worker_->start("tgen-source", [this] { return body(); });
}

void TrafficSource::stop() { worker_.reset(); }

bool TrafficSource::body() {
  limiter_.wait();

  // Build up to a burst of packets, then inject them with one bulk send.
  // At a limited rate the fill stops as soon as the pacing deadline is in
  // the future, so earlier packets of the burst are never held back.
  pkt::Packet* tx[ftc::kMaxBurst];
  std::uint64_t trace_ids[ftc::kMaxBurst];
  std::uint64_t emit_ns[ftc::kMaxBurst];
  std::uint64_t flow_hashes[ftc::kMaxBurst];
  std::size_t n = 0;
  while (n < burst_) {
    if (n != 0 && !limiter_.try_send()) break;
    pkt::Packet* p = pool_.alloc_raw();
    if (p == nullptr) {
      // Pool exhausted: the chain is saturated; natural back-pressure.
      pool_stalls_.fetch_add(1, std::memory_order_relaxed);
      break;
    }
    std::size_t flow_index;
    if (active_.empty()) {
      flow_index = next_flow_;
      next_flow_ = (next_flow_ + 1) % workload_.num_flows;
    } else {
      // Churn: round-robin over the active table; an exhausted slot is
      // reborn as a never-seen flow with a fresh Pareto lifetime.
      ActiveFlow& slot = active_[next_flow_];
      next_flow_ = (next_flow_ + 1) % active_.size();
      if (slot.remaining == 0) {
        slot.index = fresh_index_++;
        slot.remaining = sample_lifetime();
      }
      --slot.remaining;
      flow_index = slot.index;
    }
    const pkt::FlowKey flow = workload_.flow(flow_index);

    if (workload_.tcp) {
      pkt::PacketBuilder(*p).tcp(flow, workload_.frame_len);
    } else {
      pkt::PacketBuilder(*p).udp(flow, workload_.frame_len);
    }
    const std::uint64_t id = sent_.fetch_add(1, std::memory_order_relaxed) + 1;
    p->anno().packet_id = id;
    p->anno().ingress_ns = rt::now_ns();
    p->anno().flow_hash = flow.rss_hash();
    // Trace id = packet id (nonzero by construction), so spans across the
    // chain key directly back to the generator's sequence number.
    const std::uint64_t trace_id =
        (spans_ != nullptr && sampler_.sampled(id)) ? id : 0;
    p->anno().trace_id = trace_id;
    // Cache annotation values: ownership transfers with the bulk send.
    trace_ids[n] = trace_id;
    emit_ns[n] = p->anno().ingress_ns;
    flow_hashes[n] = p->anno().flow_hash;
    tx[n++] = p;
  }
  if (n == 0) return false;

  const std::size_t accepted = out_.send_burst({tx, n});
  if (accepted < n) {
    // Ingress queue full: count the rejected tail as offered-but-not-
    // admitted.
    for (std::size_t i = accepted; i < n; ++i) pool_.free_raw(tx[i]);
    sent_.fetch_sub(n - accepted, std::memory_order_relaxed);
  }
  if (accepted == 0) return false;
  for (std::size_t i = 0; i < accepted; ++i) {
    if (trace_ids[i] != 0) {
      spans_->record(obs::SpanRecord{trace_ids[i], emit_ns[i], flow_hashes[i],
                                     obs::kSpanSiteGen,
                                     obs::SpanKind::kGenEmit});
    }
  }
  meter_.add(accepted, accepted * workload_.frame_len);
  return true;
}

TrafficSink::TrafficSink(pkt::PacketPool& pool, net::Port& in,
                         obs::SpanCollector* spans)
    : pool_(pool), in_(in), spans_(spans) {}

void TrafficSink::start() {
  if (worker_) return;
  worker_ = std::make_unique<rt::Worker>();
  worker_->start("tgen-sink", [this] { return body(); });
}

void TrafficSink::stop() { worker_.reset(); }

bool TrafficSink::body() {
  pkt::Packet* rx[ftc::kMaxBurst];
  const std::size_t got = in_.poll_burst(rx, ftc::kMaxBurst);
  if (got == 0) return false;
  const std::uint64_t now = rt::now_ns();
  std::uint64_t data_packets = 0;
  std::uint64_t data_bytes = 0;
  {
    // One timestamp, one lock acquisition, one meter/counter update per
    // drained burst.
    LockGuard lock(latency_mutex_);
    for (std::size_t i = 0; i < got; ++i) {
      pkt::Packet* p = rx[i];
      if (p->anno().is_control || p->anno().ingress_ns == 0) continue;
      const std::uint64_t lat = now - p->anno().ingress_ns;
      if (p->anno().trace_id != 0 && spans_ != nullptr) {
        spans_->record(obs::SpanRecord{p->anno().trace_id, now, lat,
                                       obs::kSpanSiteSink,
                                       obs::SpanKind::kSinkRecv});
      }
      ++data_packets;
      data_bytes += p->size();
      latency_.record(lat);
    }
  }
  if (data_packets != 0) {
    received_.fetch_add(data_packets, std::memory_order_relaxed);
    meter_.add(data_packets, data_bytes);
  }
  for (std::size_t i = 0; i < got; ++i) pool_.free_raw(rx[i]);
  return true;
}

RunResult run_load(pkt::PacketPool& pool, net::Port& ingress, net::Port& egress,
                   const Workload& workload, double rate_pps,
                   double duration_s, double warmup_s,
                   obs::SpanCollector* spans,
                   const std::function<void()>& on_measure_start) {
  TrafficSource source(pool, ingress, workload, rate_pps, spans);
  TrafficSink sink(pool, egress, spans);
  sink.start();
  source.start();

  const auto sleep_for = [](double seconds) {
    std::this_thread::sleep_for(
        std::chrono::microseconds(static_cast<std::int64_t>(seconds * 1e6)));
  };

  sleep_for(warmup_s);
  sink.reset_latency();
  if (on_measure_start) on_measure_start();
  const std::uint64_t sent0 = source.packets_sent();
  const std::uint64_t recv0 = sink.packets_received();
  const std::uint64_t bytes0 = sink.meter().bytes();
  const std::uint64_t t0 = rt::now_ns();

  sleep_for(duration_s);

  const std::uint64_t t1 = rt::now_ns();
  const std::uint64_t sent1 = source.packets_sent();
  const std::uint64_t recv1 = sink.packets_received();
  const std::uint64_t bytes1 = sink.meter().bytes();

  source.stop();
  // Give the chain a moment to drain so held packets do not skew the next
  // run, then stop the sink.
  sleep_for(0.05);
  sink.stop();

  RunResult result;
  result.duration_s = static_cast<double>(t1 - t0) * 1e-9;
  result.sent = sent1 - sent0;
  result.received = recv1 - recv0;
  result.offered_mpps =
      static_cast<double>(result.sent) / result.duration_s * 1e-6;
  result.delivered_mpps =
      static_cast<double>(result.received) / result.duration_s * 1e-6;
  result.gbps =
      static_cast<double>(bytes1 - bytes0) * 8.0 / result.duration_s * 1e-9;
  result.latency = sink.latency();
  return result;
}

}  // namespace sfc::tgen
