#include "tgen/traffic.hpp"

#include <thread>

#include "runtime/clock.hpp"

namespace sfc::tgen {

TrafficSource::TrafficSource(pkt::PacketPool& pool, net::Link& out,
                             Workload workload, double rate_pps,
                             obs::SpanCollector* spans)
    : pool_(pool),
      out_(out),
      workload_(workload),
      limiter_(rate_pps),
      sampler_(workload.trace_sample, workload.seed),
      spans_(spans) {}

void TrafficSource::start() {
  if (worker_) return;
  worker_ = std::make_unique<rt::Worker>();
  worker_->start("tgen-source", [this] { return body(); });
}

void TrafficSource::stop() { worker_.reset(); }

bool TrafficSource::body() {
  limiter_.wait();
  pkt::Packet* p = pool_.alloc_raw();
  if (p == nullptr) {
    // Pool exhausted: the chain is saturated; natural back-pressure.
    pool_stalls_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  const pkt::FlowKey flow = workload_.flow(next_flow_);
  next_flow_ = (next_flow_ + 1) % workload_.num_flows;

  if (workload_.tcp) {
    pkt::PacketBuilder(*p).tcp(flow, workload_.frame_len);
  } else {
    pkt::PacketBuilder(*p).udp(flow, workload_.frame_len);
  }
  const std::uint64_t id = sent_.fetch_add(1, std::memory_order_relaxed) + 1;
  p->anno().packet_id = id;
  p->anno().ingress_ns = rt::now_ns();
  p->anno().flow_hash = flow.rss_hash();
  // Trace id = packet id (nonzero by construction), so spans across the
  // chain key directly back to the generator's sequence number.
  const std::uint64_t trace_id =
      (spans_ != nullptr && sampler_.sampled(id)) ? id : 0;
  p->anno().trace_id = trace_id;
  const std::uint64_t flow_hash = p->anno().flow_hash;
  const std::uint64_t emit_ns = p->anno().ingress_ns;

  if (!out_.send(p)) {
    // Ingress queue full: count it as offered-but-not-admitted.
    pool_.free_raw(p);
    sent_.fetch_sub(1, std::memory_order_relaxed);
    return false;
  }
  // Past this point the packet belongs to the chain; use cached values.
  if (trace_id != 0) {
    spans_->record(obs::SpanRecord{trace_id, emit_ns, flow_hash,
                                   obs::kSpanSiteGen,
                                   obs::SpanKind::kGenEmit});
  }
  meter_.add(1, workload_.frame_len);
  return true;
}

TrafficSink::TrafficSink(pkt::PacketPool& pool, net::Link& in,
                         obs::SpanCollector* spans)
    : pool_(pool), in_(in), spans_(spans) {}

void TrafficSink::start() {
  if (worker_) return;
  worker_ = std::make_unique<rt::Worker>();
  worker_->start("tgen-sink", [this] { return body(); });
}

void TrafficSink::stop() { worker_.reset(); }

bool TrafficSink::body() {
  pkt::Packet* p = in_.poll();
  if (p == nullptr) return false;
  if (!p->anno().is_control && p->anno().ingress_ns != 0) {
    const std::uint64_t now = rt::now_ns();
    const std::uint64_t lat = now - p->anno().ingress_ns;
    if (p->anno().trace_id != 0 && spans_ != nullptr) {
      spans_->record(obs::SpanRecord{p->anno().trace_id, now, lat,
                                     obs::kSpanSiteSink,
                                     obs::SpanKind::kSinkRecv});
    }
    received_.fetch_add(1, std::memory_order_relaxed);
    meter_.add(1, p->size());
    std::lock_guard lock(latency_mutex_);
    latency_.record(lat);
  }
  pool_.free_raw(p);
  return true;
}

RunResult run_load(pkt::PacketPool& pool, net::Link& ingress, net::Link& egress,
                   const Workload& workload, double rate_pps,
                   double duration_s, double warmup_s,
                   obs::SpanCollector* spans,
                   const std::function<void()>& on_measure_start) {
  TrafficSource source(pool, ingress, workload, rate_pps, spans);
  TrafficSink sink(pool, egress, spans);
  sink.start();
  source.start();

  const auto sleep_for = [](double seconds) {
    std::this_thread::sleep_for(
        std::chrono::microseconds(static_cast<std::int64_t>(seconds * 1e6)));
  };

  sleep_for(warmup_s);
  sink.reset_latency();
  if (on_measure_start) on_measure_start();
  const std::uint64_t sent0 = source.packets_sent();
  const std::uint64_t recv0 = sink.packets_received();
  const std::uint64_t bytes0 = sink.meter().bytes();
  const std::uint64_t t0 = rt::now_ns();

  sleep_for(duration_s);

  const std::uint64_t t1 = rt::now_ns();
  const std::uint64_t sent1 = source.packets_sent();
  const std::uint64_t recv1 = sink.packets_received();
  const std::uint64_t bytes1 = sink.meter().bytes();

  source.stop();
  // Give the chain a moment to drain so held packets do not skew the next
  // run, then stop the sink.
  sleep_for(0.05);
  sink.stop();

  RunResult result;
  result.duration_s = static_cast<double>(t1 - t0) * 1e-9;
  result.sent = sent1 - sent0;
  result.received = recv1 - recv0;
  result.offered_mpps =
      static_cast<double>(result.sent) / result.duration_s * 1e-6;
  result.delivered_mpps =
      static_cast<double>(result.received) / result.duration_s * 1e-6;
  result.gbps =
      static_cast<double>(bytes1 - bytes0) * 8.0 / result.duration_s * 1e-9;
  result.latency = sink.latency();
  return result;
}

}  // namespace sfc::tgen
