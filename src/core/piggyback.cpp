#include "core/piggyback.hpp"

#include <algorithm>
#include <bit>
#include <cstring>

namespace sfc::ftc {

namespace {

// Wire layout constants (kFooterMagic etc.) live in the header, shared
// with the zero-copy PiggybackView.
constexpr std::uint16_t kEraseFlag = kWireEraseFlag;
constexpr std::uint16_t kLenMask = kWireLenMask;

class Writer {
 public:
  explicit Writer(std::uint8_t* out) : p_(out) {}

  template <typename T>
  void pod(T v) noexcept {
    std::memcpy(p_, &v, sizeof(T));
    p_ += sizeof(T);
  }

  void raw(const void* data, std::size_t len) noexcept {
    std::memcpy(p_, data, len);
    p_ += len;
  }

  std::uint8_t* pos() const noexcept { return p_; }

 private:
  std::uint8_t* p_;
};

class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t len)
      : p_(data), end_(data + len) {}

  template <typename T>
  bool pod(T& out) noexcept {
    if (remaining() < sizeof(T)) return false;
    std::memcpy(&out, p_, sizeof(T));
    p_ += sizeof(T);
    return true;
  }

  const std::uint8_t* raw(std::size_t len) noexcept {
    if (remaining() < len) return nullptr;
    const std::uint8_t* out = p_;
    p_ += len;
    return out;
  }

  std::size_t remaining() const noexcept {
    return static_cast<std::size_t>(end_ - p_);
  }

 private:
  const std::uint8_t* p_;
  const std::uint8_t* end_;
};

std::size_t log_size(const PiggybackLog& log) noexcept {
  std::size_t n = 4 + 8 +
                  8 * static_cast<std::size_t>(std::popcount(log.dep.mask)) + 2;
  for (const auto& w : log.writes) n += 8 + 2 + w.value.size();
  return n;
}

/// Serializes one log record (shared by append_message and
/// PiggybackView::append_log so both paths are byte-identical).
void write_log(Writer& w, const PiggybackLog& log) {
  w.pod<std::uint32_t>(log.mbox);
  w.pod<std::uint64_t>(log.dep.mask);
  for (std::size_t i = 0; i < state::kMaxPartitions; ++i) {
    if (log.dep.touches(i)) w.pod<std::uint64_t>(log.dep.seq[i]);
  }
  w.pod<std::uint16_t>(static_cast<std::uint16_t>(log.writes.size()));
  for (const auto& wr : log.writes) {
    w.pod<std::uint64_t>(wr.key);
    const auto len = static_cast<std::uint16_t>(wr.value.size());
    w.pod<std::uint16_t>(wr.erase ? static_cast<std::uint16_t>(len | kEraseFlag)
                                  : len);
    w.raw(wr.value.data(), wr.value.size());
  }
}

}  // namespace

void PiggybackMessage::set_commit(MboxId mbox, const MaxVector& max) {
  for (auto& c : commits) {
    if (c.mbox == mbox) {
      c.max = max;
      return;
    }
  }
  commits.push_back(CommitVector{mbox, max});
}

const MaxVector* PiggybackMessage::find_commit(MboxId mbox) const noexcept {
  for (const auto& c : commits) {
    if (c.mbox == mbox) return &c.max;
  }
  return nullptr;
}

void PiggybackMessage::strip_logs_of(MboxId mbox) {
  logs.remove_if([mbox](const PiggybackLog& l) { return l.mbox == mbox; });
}

void PiggybackMessage::strip_commit_of(MboxId mbox) {
  commits.remove_if([mbox](const CommitVector& c) { return c.mbox == mbox; });
}

void PiggybackMessage::merge(PiggybackMessage&& other) {
  logs.append_move(std::move(other.logs));
  for (auto& c : other.commits) {
    if (const MaxVector* mine = find_commit(c.mbox)) {
      MaxVector merged = *mine;
      merged.merge(c.max);
      set_commit(c.mbox, merged);
    } else {
      commits.push_back(std::move(c));
    }
  }
}

std::size_t serialized_size(const PiggybackMessage& msg,
                            std::size_t num_partitions) noexcept {
  std::size_t n = 8;  // Header.
  for (const auto& log : msg.logs) n += log_size(log);
  n += msg.commits.size() * (4 + 8 * num_partitions);
  return n + kFooterSize;
}

bool append_message(pkt::Packet& p, const PiggybackMessage& msg,
                    std::size_t num_partitions) {
  const std::size_t total = serialized_size(msg, num_partitions);
  if (p.tailroom() < total) return false;

  Writer w(p.push_back(total));
  w.pod<std::uint16_t>(static_cast<std::uint16_t>(msg.logs.size()));
  w.pod<std::uint16_t>(static_cast<std::uint16_t>(msg.commits.size()));
  w.pod<std::uint16_t>(static_cast<std::uint16_t>(num_partitions));
  w.pod<std::uint16_t>(0);

  for (const auto& log : msg.logs) write_log(w, log);
  for (const auto& c : msg.commits) {
    w.pod<std::uint32_t>(c.mbox);
    for (std::size_t i = 0; i < num_partitions; ++i) {
      w.pod<std::uint64_t>(c.max.seq[i]);
    }
  }
  w.pod<std::uint32_t>(static_cast<std::uint32_t>(total - kFooterSize));
  w.pod<std::uint32_t>(kFooterMagic);
  return true;
}

bool has_message(const pkt::Packet& p) noexcept {
  if (p.size() < kFooterSize) return false;
  std::uint32_t magic = 0;
  std::memcpy(&magic, p.data() + p.size() - 4, 4);
  return magic == kFooterMagic;
}

std::optional<PiggybackMessage> extract_message(pkt::Packet& p) {
  if (!has_message(p)) return std::nullopt;
  std::uint32_t body_len = 0;
  std::memcpy(&body_len, p.data() + p.size() - kFooterSize, 4);
  if (p.size() < kFooterSize + body_len) return std::nullopt;

  Reader r(p.data() + p.size() - kFooterSize - body_len, body_len);
  std::uint16_t log_count = 0, commit_count = 0, num_partitions = 0, reserved = 0;
  if (!r.pod(log_count) || !r.pod(commit_count) || !r.pod(num_partitions) ||
      !r.pod(reserved) || num_partitions > state::kMaxPartitions) {
    return std::nullopt;
  }

  PiggybackMessage msg;
  for (std::uint16_t i = 0; i < log_count; ++i) {
    PiggybackLog log;
    if (!r.pod(log.mbox) || !r.pod(log.dep.mask)) return std::nullopt;
    for (std::size_t pidx = 0; pidx < state::kMaxPartitions; ++pidx) {
      if (log.dep.touches(pidx) && !r.pod(log.dep.seq[pidx])) {
        return std::nullopt;
      }
    }
    std::uint16_t write_count = 0;
    if (!r.pod(write_count)) return std::nullopt;
    for (std::uint16_t wi = 0; wi < write_count; ++wi) {
      state::StateUpdate u;
      std::uint16_t len_flags = 0;
      if (!r.pod(u.key) || !r.pod(len_flags)) return std::nullopt;
      u.erase = (len_flags & kEraseFlag) != 0;
      const std::size_t len = len_flags & kLenMask;
      const std::uint8_t* bytes = r.raw(len);
      if (bytes == nullptr) return std::nullopt;
      u.value.assign({bytes, len});
      log.writes.push_back(std::move(u));
    }
    msg.logs.push_back(std::move(log));
  }
  for (std::uint16_t i = 0; i < commit_count; ++i) {
    CommitVector c;
    if (!r.pod(c.mbox)) return std::nullopt;
    for (std::size_t pidx = 0; pidx < num_partitions; ++pidx) {
      if (!r.pod(c.max.seq[pidx])) return std::nullopt;
    }
    msg.commits.push_back(std::move(c));
  }
  if (r.remaining() != 0) return std::nullopt;

  p.trim_back(kFooterSize + body_len);
  return msg;
}

namespace {

void append_pod_vec(std::vector<std::uint8_t>& out, const void* data,
                    std::size_t len) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  out.insert(out.end(), p, p + len);
}

template <typename T>
void put(std::vector<std::uint8_t>& out, T v) {
  append_pod_vec(out, &v, sizeof(v));
}

template <typename T>
bool take(std::span<const std::uint8_t>& in, T& out) {
  if (in.size() < sizeof(T)) return false;
  std::memcpy(&out, in.data(), sizeof(T));
  in = in.subspan(sizeof(T));
  return true;
}

}  // namespace

void serialize_logs(std::span<const PiggybackLog> logs,
                    std::vector<std::uint8_t>& out) {
  put<std::uint32_t>(out, static_cast<std::uint32_t>(logs.size()));
  for (const auto& log : logs) {
    put<std::uint32_t>(out, log.mbox);
    put<std::uint64_t>(out, log.dep.mask);
    for (std::size_t p = 0; p < state::kMaxPartitions; ++p) {
      if (log.dep.touches(p)) put<std::uint64_t>(out, log.dep.seq[p]);
    }
    put<std::uint32_t>(out, static_cast<std::uint32_t>(log.writes.size()));
    for (const auto& w : log.writes) {
      put<std::uint64_t>(out, w.key);
      put<std::uint8_t>(out, w.erase ? 1 : 0);
      put<std::uint32_t>(out, static_cast<std::uint32_t>(w.value.size()));
      append_pod_vec(out, w.value.data(), w.value.size());
    }
  }
}

bool deserialize_logs(std::span<const std::uint8_t>& in,
                      std::vector<PiggybackLog>& out) {
  std::uint32_t count = 0;
  if (!take(in, count)) return false;
  out.reserve(out.size() + count);
  for (std::uint32_t i = 0; i < count; ++i) {
    PiggybackLog log;
    if (!take(in, log.mbox) || !take(in, log.dep.mask)) return false;
    for (std::size_t p = 0; p < state::kMaxPartitions; ++p) {
      if (log.dep.touches(p) && !take(in, log.dep.seq[p])) return false;
    }
    std::uint32_t writes = 0;
    if (!take(in, writes)) return false;
    for (std::uint32_t wi = 0; wi < writes; ++wi) {
      state::StateUpdate u;
      std::uint8_t erase = 0;
      std::uint32_t len = 0;
      if (!take(in, u.key) || !take(in, erase) || !take(in, len) ||
          in.size() < len) {
        return false;
      }
      u.erase = erase != 0;
      u.value.assign({in.data(), len});
      in = in.subspan(len);
      log.writes.push_back(std::move(u));
    }
    out.push_back(std::move(log));
  }
  return true;
}

PiggybackLog materialize_log(const WireLog& wire) {
  PiggybackLog log;
  log.mbox = wire.mbox;
  log.dep = wire.dep;
  for_each_wire_write(wire, [&](const state::WireUpdate& u) {
    state::StateUpdate s;
    s.key = u.key;
    s.erase = u.erase;
    s.value.assign(u.value);
    log.writes.push_back(std::move(s));
  });
  return log;
}

PiggybackView PiggybackView::open(pkt::Packet& p) noexcept {
  PiggybackView v;
  if (!has_message(p)) return v;
  std::uint32_t body_len = 0;
  std::memcpy(&body_len, p.data() + p.size() - kFooterSize, 4);
  if (p.size() < kFooterSize + body_len || body_len < kWireHeaderSize) return v;

  const std::uint8_t* b = p.data() + p.size() - kFooterSize - body_len;
  std::uint16_t log_count = 0, commit_count = 0, num_partitions = 0;
  std::memcpy(&log_count, b, 2);
  std::memcpy(&commit_count, b + 2, 2);
  std::memcpy(&num_partitions, b + 4, 2);
  if (num_partitions > state::kMaxPartitions) return v;

  // One validation walk over the log region; iteration and mutation are
  // bounds-check-free afterwards.
  std::size_t off = kWireHeaderSize;
  for (std::uint16_t i = 0; i < log_count; ++i) {
    if (body_len - off < 12) return v;
    std::uint64_t mask = 0;
    std::memcpy(&mask, b + off + 4, 8);
    // Bits beyond the partition range would desynchronize the sequence
    // array length between writer and reader: reject as malformed.
    if ((mask >> state::kMaxPartitions) != 0) return v;
    std::size_t need = 12 + 8 * static_cast<std::size_t>(std::popcount(mask));
    if (body_len - off < need + 2) return v;
    std::uint16_t write_count = 0;
    std::memcpy(&write_count, b + off + need, 2);
    need += 2;
    for (std::uint16_t wi = 0; wi < write_count; ++wi) {
      if (body_len - off < need + 10) return v;
      std::uint16_t len_flags = 0;
      std::memcpy(&len_flags, b + off + need + 8, 2);
      need += 10 + (len_flags & kLenMask);
      if (body_len - off < need) return v;
    }
    v.log_off_.push_back(static_cast<std::uint32_t>(off));
    off += need;
  }
  const std::size_t commit_bytes =
      static_cast<std::size_t>(commit_count) * (4 + 8 * num_partitions);
  if (body_len - off != commit_bytes) {
    v.log_off_.clear();
    return v;
  }

  v.p_ = &p;
  v.body_off_ = static_cast<std::uint32_t>(p.size() - kFooterSize - body_len);
  v.body_len_ = body_len;
  v.logs_end_ = static_cast<std::uint32_t>(off);
  v.commit_count_ = commit_count;
  v.num_partitions_ = num_partitions;
  return v;
}

PiggybackView PiggybackView::create(pkt::Packet& p, std::size_t num_partitions) {
  if (!append_message(p, PiggybackMessage{}, num_partitions)) {
    return PiggybackView{};
  }
  return open(p);
}

WireLog PiggybackView::log(std::size_t i) const noexcept {
  const std::uint8_t* b = body() + log_off_[i];
  WireLog out;
  std::memcpy(&out.mbox, b, 4);
  std::memcpy(&out.dep.mask, b + 4, 8);
  const std::uint8_t* cursor = b + 12;
  for (std::uint64_t m = out.dep.mask; m != 0; m &= m - 1) {
    const auto pidx = static_cast<std::size_t>(std::countr_zero(m));
    std::memcpy(&out.dep.seq[pidx], cursor, 8);
    cursor += 8;
  }
  std::memcpy(&out.write_count, cursor, 2);
  out.writes = cursor + 2;
  const std::uint32_t end =
      i + 1 < log_off_.size() ? log_off_[i + 1] : logs_end_;
  out.wire_size = end - log_off_[i];
  return out;
}

bool PiggybackView::has_logs_of(MboxId mbox) const noexcept {
  for (const std::uint32_t off : log_off_) {
    MboxId m = 0;
    std::memcpy(&m, body() + off, 4);
    if (m == mbox) return true;
  }
  return false;
}

MboxId PiggybackView::commit(std::size_t i, MaxVector& out) const noexcept {
  const std::uint8_t* entry = body() + logs_end_ + i * commit_entry_size();
  MboxId mbox = 0;
  std::memcpy(&mbox, entry, 4);
  out = MaxVector{};
  std::memcpy(out.seq.data(), entry + 4, 8 * num_partitions_);
  return mbox;
}

bool PiggybackView::set_commit(MboxId mbox, const MaxVector& max) {
  std::uint8_t* entry = body() + logs_end_;
  for (std::uint16_t i = 0; i < commit_count_; ++i, entry += commit_entry_size()) {
    MboxId m = 0;
    std::memcpy(&m, entry, 4);
    if (m == mbox) {
      // Fixed-width overwrite: the dominant case once a tail has attached
      // its vector before (latest wins, exactly like the legacy
      // PiggybackMessage::set_commit).
      std::memcpy(entry + 4, max.seq.data(), 8 * num_partitions_);
      return true;
    }
  }
  const std::size_t need = commit_entry_size();
  if (p_->tailroom() < need) return false;
  p_->push_back(need);
  // Shift the footer up and write the new commit where it was. The two
  // regions cannot overlap (a commit entry is at least 12 bytes).
  std::uint8_t* b = body();
  std::memmove(b + body_len_ + need, b + body_len_, kFooterSize);
  std::memcpy(b + body_len_, &mbox, 4);
  std::memcpy(b + body_len_ + 4, max.seq.data(), 8 * num_partitions_);
  ++commit_count_;
  body_len_ += static_cast<std::uint32_t>(need);
  sync_header_footer();
  return true;
}

bool PiggybackView::append_log(const PiggybackLog& log) {
  const std::size_t need = log_size(log);
  if (p_->tailroom() < need) return false;
  p_->push_back(need);
  std::uint8_t* commits_begin = body() + logs_end_;
  std::memmove(commits_begin + need, commits_begin,
               (body_len_ - logs_end_) + kFooterSize);
  Writer w(commits_begin);
  write_log(w, log);
  log_off_.push_back(logs_end_);
  logs_end_ += static_cast<std::uint32_t>(need);
  body_len_ += static_cast<std::uint32_t>(need);
  sync_header_footer();
  return true;
}

std::size_t PiggybackView::strip_logs_of(MboxId mbox) {
  std::uint8_t* b = body();
  std::uint32_t w = kWireHeaderSize;  // Compaction write cursor.
  std::size_t removed = 0;
  rt::SmallVector<std::uint32_t, 8> kept;
  for (std::size_t i = 0; i < log_off_.size(); ++i) {
    const std::uint32_t off = log_off_[i];
    const std::uint32_t end = i + 1 < log_off_.size() ? log_off_[i + 1] : logs_end_;
    MboxId m = 0;
    std::memcpy(&m, b + off, 4);
    if (m == mbox) {
      ++removed;
      continue;
    }
    if (w != off) std::memmove(b + w, b + off, end - off);
    kept.push_back(w);
    w += end - off;
  }
  if (removed == 0) return 0;  // Forwarded-unchanged bytes never touched.
  std::memmove(b + w, b + logs_end_, (body_len_ - logs_end_) + kFooterSize);
  const std::uint32_t delta = logs_end_ - w;
  log_off_ = std::move(kept);
  logs_end_ = w;
  body_len_ -= delta;
  p_->trim_back(delta);
  sync_header_footer();
  return removed;
}

void PiggybackView::strip_tail() noexcept {
  p_->trim_back(tail_size());
  p_ = nullptr;
}

void PiggybackView::sync_header_footer() noexcept {
  std::uint8_t* b = body();
  const auto log_count = static_cast<std::uint16_t>(log_off_.size());
  std::memcpy(b, &log_count, 2);
  std::memcpy(b + 2, &commit_count_, 2);
  std::memcpy(b + body_len_, &body_len_, 4);
  std::memcpy(b + body_len_ + 4, &kFooterMagic, 4);
}

std::size_t wire_size_hint(const pkt::Packet& p) noexcept {
  if (!has_message(p)) return p.size();
  std::uint32_t body_len = 0;
  std::memcpy(&body_len, p.data() + p.size() - kFooterSize, 4);
  if (p.size() < kFooterSize + body_len) return p.size();
  return p.size() - kFooterSize - body_len;
}

}  // namespace sfc::ftc
