#include "core/piggyback.hpp"

#include <algorithm>
#include <bit>
#include <cstring>

namespace sfc::ftc {

namespace {

constexpr std::uint32_t kFooterMagic = 0x46544331;  // "FTC1"
constexpr std::size_t kFooterSize = 8;              // u32 body_len, u32 magic.

// Body layout:
//   u16 log_count, u16 commit_count, u16 num_partitions, u16 reserved
//   logs:    u32 mbox; u64 mask; u64 seq[popcount(mask)];
//            u16 write_count; writes: u64 key, u16 len|0x8000(erase), bytes
//   commits: u32 mbox; u64 seq[num_partitions]
constexpr std::uint16_t kEraseFlag = 0x8000;
constexpr std::uint16_t kLenMask = 0x7fff;

class Writer {
 public:
  explicit Writer(std::uint8_t* out) : p_(out) {}

  template <typename T>
  void pod(T v) noexcept {
    std::memcpy(p_, &v, sizeof(T));
    p_ += sizeof(T);
  }

  void raw(const void* data, std::size_t len) noexcept {
    std::memcpy(p_, data, len);
    p_ += len;
  }

  std::uint8_t* pos() const noexcept { return p_; }

 private:
  std::uint8_t* p_;
};

class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t len)
      : p_(data), end_(data + len) {}

  template <typename T>
  bool pod(T& out) noexcept {
    if (remaining() < sizeof(T)) return false;
    std::memcpy(&out, p_, sizeof(T));
    p_ += sizeof(T);
    return true;
  }

  const std::uint8_t* raw(std::size_t len) noexcept {
    if (remaining() < len) return nullptr;
    const std::uint8_t* out = p_;
    p_ += len;
    return out;
  }

  std::size_t remaining() const noexcept {
    return static_cast<std::size_t>(end_ - p_);
  }

 private:
  const std::uint8_t* p_;
  const std::uint8_t* end_;
};

std::size_t log_size(const PiggybackLog& log) noexcept {
  std::size_t n = 4 + 8 +
                  8 * static_cast<std::size_t>(std::popcount(log.dep.mask)) + 2;
  for (const auto& w : log.writes) n += 8 + 2 + w.value.size();
  return n;
}

}  // namespace

void PiggybackMessage::set_commit(MboxId mbox, const MaxVector& max) {
  for (auto& c : commits) {
    if (c.mbox == mbox) {
      c.max = max;
      return;
    }
  }
  commits.push_back(CommitVector{mbox, max});
}

const MaxVector* PiggybackMessage::find_commit(MboxId mbox) const noexcept {
  for (const auto& c : commits) {
    if (c.mbox == mbox) return &c.max;
  }
  return nullptr;
}

void PiggybackMessage::strip_logs_of(MboxId mbox) {
  logs.remove_if([mbox](const PiggybackLog& l) { return l.mbox == mbox; });
}

void PiggybackMessage::strip_commit_of(MboxId mbox) {
  commits.remove_if([mbox](const CommitVector& c) { return c.mbox == mbox; });
}

void PiggybackMessage::merge(PiggybackMessage&& other) {
  logs.append_move(std::move(other.logs));
  for (auto& c : other.commits) {
    if (const MaxVector* mine = find_commit(c.mbox)) {
      MaxVector merged = *mine;
      merged.merge(c.max);
      set_commit(c.mbox, merged);
    } else {
      commits.push_back(std::move(c));
    }
  }
}

std::size_t serialized_size(const PiggybackMessage& msg,
                            std::size_t num_partitions) noexcept {
  std::size_t n = 8;  // Header.
  for (const auto& log : msg.logs) n += log_size(log);
  n += msg.commits.size() * (4 + 8 * num_partitions);
  return n + kFooterSize;
}

bool append_message(pkt::Packet& p, const PiggybackMessage& msg,
                    std::size_t num_partitions) {
  const std::size_t total = serialized_size(msg, num_partitions);
  if (p.tailroom() < total) return false;

  Writer w(p.push_back(total));
  w.pod<std::uint16_t>(static_cast<std::uint16_t>(msg.logs.size()));
  w.pod<std::uint16_t>(static_cast<std::uint16_t>(msg.commits.size()));
  w.pod<std::uint16_t>(static_cast<std::uint16_t>(num_partitions));
  w.pod<std::uint16_t>(0);

  for (const auto& log : msg.logs) {
    w.pod<std::uint32_t>(log.mbox);
    w.pod<std::uint64_t>(log.dep.mask);
    for (std::size_t i = 0; i < state::kMaxPartitions; ++i) {
      if (log.dep.touches(i)) w.pod<std::uint64_t>(log.dep.seq[i]);
    }
    w.pod<std::uint16_t>(static_cast<std::uint16_t>(log.writes.size()));
    for (const auto& wr : log.writes) {
      w.pod<std::uint64_t>(wr.key);
      const auto len = static_cast<std::uint16_t>(wr.value.size());
      w.pod<std::uint16_t>(wr.erase ? static_cast<std::uint16_t>(len | kEraseFlag)
                                    : len);
      w.raw(wr.value.data(), wr.value.size());
    }
  }
  for (const auto& c : msg.commits) {
    w.pod<std::uint32_t>(c.mbox);
    for (std::size_t i = 0; i < num_partitions; ++i) {
      w.pod<std::uint64_t>(c.max.seq[i]);
    }
  }
  w.pod<std::uint32_t>(static_cast<std::uint32_t>(total - kFooterSize));
  w.pod<std::uint32_t>(kFooterMagic);
  return true;
}

bool has_message(const pkt::Packet& p) noexcept {
  if (p.size() < kFooterSize) return false;
  std::uint32_t magic = 0;
  std::memcpy(&magic, p.data() + p.size() - 4, 4);
  return magic == kFooterMagic;
}

std::optional<PiggybackMessage> extract_message(pkt::Packet& p) {
  if (!has_message(p)) return std::nullopt;
  std::uint32_t body_len = 0;
  std::memcpy(&body_len, p.data() + p.size() - kFooterSize, 4);
  if (p.size() < kFooterSize + body_len) return std::nullopt;

  Reader r(p.data() + p.size() - kFooterSize - body_len, body_len);
  std::uint16_t log_count = 0, commit_count = 0, num_partitions = 0, reserved = 0;
  if (!r.pod(log_count) || !r.pod(commit_count) || !r.pod(num_partitions) ||
      !r.pod(reserved) || num_partitions > state::kMaxPartitions) {
    return std::nullopt;
  }

  PiggybackMessage msg;
  for (std::uint16_t i = 0; i < log_count; ++i) {
    PiggybackLog log;
    if (!r.pod(log.mbox) || !r.pod(log.dep.mask)) return std::nullopt;
    for (std::size_t pidx = 0; pidx < state::kMaxPartitions; ++pidx) {
      if (log.dep.touches(pidx) && !r.pod(log.dep.seq[pidx])) {
        return std::nullopt;
      }
    }
    std::uint16_t write_count = 0;
    if (!r.pod(write_count)) return std::nullopt;
    for (std::uint16_t wi = 0; wi < write_count; ++wi) {
      state::StateUpdate u;
      std::uint16_t len_flags = 0;
      if (!r.pod(u.key) || !r.pod(len_flags)) return std::nullopt;
      u.erase = (len_flags & kEraseFlag) != 0;
      const std::size_t len = len_flags & kLenMask;
      const std::uint8_t* bytes = r.raw(len);
      if (bytes == nullptr) return std::nullopt;
      u.value.assign({bytes, len});
      log.writes.push_back(std::move(u));
    }
    msg.logs.push_back(std::move(log));
  }
  for (std::uint16_t i = 0; i < commit_count; ++i) {
    CommitVector c;
    if (!r.pod(c.mbox)) return std::nullopt;
    for (std::size_t pidx = 0; pidx < num_partitions; ++pidx) {
      if (!r.pod(c.max.seq[pidx])) return std::nullopt;
    }
    msg.commits.push_back(std::move(c));
  }
  if (r.remaining() != 0) return std::nullopt;

  p.trim_back(kFooterSize + body_len);
  return msg;
}

namespace {

void append_pod_vec(std::vector<std::uint8_t>& out, const void* data,
                    std::size_t len) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  out.insert(out.end(), p, p + len);
}

template <typename T>
void put(std::vector<std::uint8_t>& out, T v) {
  append_pod_vec(out, &v, sizeof(v));
}

template <typename T>
bool take(std::span<const std::uint8_t>& in, T& out) {
  if (in.size() < sizeof(T)) return false;
  std::memcpy(&out, in.data(), sizeof(T));
  in = in.subspan(sizeof(T));
  return true;
}

}  // namespace

void serialize_logs(std::span<const PiggybackLog> logs,
                    std::vector<std::uint8_t>& out) {
  put<std::uint32_t>(out, static_cast<std::uint32_t>(logs.size()));
  for (const auto& log : logs) {
    put<std::uint32_t>(out, log.mbox);
    put<std::uint64_t>(out, log.dep.mask);
    for (std::size_t p = 0; p < state::kMaxPartitions; ++p) {
      if (log.dep.touches(p)) put<std::uint64_t>(out, log.dep.seq[p]);
    }
    put<std::uint32_t>(out, static_cast<std::uint32_t>(log.writes.size()));
    for (const auto& w : log.writes) {
      put<std::uint64_t>(out, w.key);
      put<std::uint8_t>(out, w.erase ? 1 : 0);
      put<std::uint32_t>(out, static_cast<std::uint32_t>(w.value.size()));
      append_pod_vec(out, w.value.data(), w.value.size());
    }
  }
}

bool deserialize_logs(std::span<const std::uint8_t>& in,
                      std::vector<PiggybackLog>& out) {
  std::uint32_t count = 0;
  if (!take(in, count)) return false;
  out.reserve(out.size() + count);
  for (std::uint32_t i = 0; i < count; ++i) {
    PiggybackLog log;
    if (!take(in, log.mbox) || !take(in, log.dep.mask)) return false;
    for (std::size_t p = 0; p < state::kMaxPartitions; ++p) {
      if (log.dep.touches(p) && !take(in, log.dep.seq[p])) return false;
    }
    std::uint32_t writes = 0;
    if (!take(in, writes)) return false;
    for (std::uint32_t wi = 0; wi < writes; ++wi) {
      state::StateUpdate u;
      std::uint8_t erase = 0;
      std::uint32_t len = 0;
      if (!take(in, u.key) || !take(in, erase) || !take(in, len) ||
          in.size() < len) {
        return false;
      }
      u.erase = erase != 0;
      u.value.assign({in.data(), len});
      in = in.subspan(len);
      log.writes.push_back(std::move(u));
    }
    out.push_back(std::move(log));
  }
  return true;
}

}  // namespace sfc::ftc
