#include "core/chain.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>

#include "obs/span.hpp"

namespace sfc::ftc {

ChainRuntime::ChainRuntime(Spec spec) : spec_(std::move(spec)) {
  assert(!spec_.mbox_factories.empty());
  const auto n = static_cast<std::uint32_t>(spec_.mbox_factories.size());
  // Chains shorter than f+1 are extended with pure replica positions
  // before the buffer (paper §5.1).
  ring_size_ = spec_.mode == ChainMode::kFtc ? std::max(n, spec_.cfg.f + 1) : n;
  if (spec_.cfg.profile || spec_.cfg.quiet_assert) {
    profiler_ = std::make_unique<obs::HotProfiler>();
    // Process-global gate: if another chain already installed a profiler,
    // this one stays dormant (its report stays empty) rather than mixing
    // two chains' attributions.
    install_hot_profiler(profiler_.get());
    profiler_->export_metrics(registry_);
  }
  pool_ = std::make_unique<pkt::PacketPool>(spec_.cfg.pool_packets);
  internal_pool_ = std::make_unique<pkt::PacketPool>(
      std::max<std::size_t>(2048, spec_.cfg.pool_packets / 4));
  registry_.gauge_fn("pool.free_retries", {{"pool", "data"}}, [this] {
    return static_cast<double>(pool_->free_retries());
  });
  registry_.gauge_fn("pool.free_retries", {{"pool", "internal"}}, [this] {
    return static_cast<double>(internal_pool_->free_retries());
  });
  registry_.gauge_fn("pool.alloc_failures", {{"pool", "data"}}, [this] {
    return static_cast<double>(pool_->alloc_failures());
  });
  registry_.gauge_fn("pool.alloc_failures", {{"pool", "internal"}}, [this] {
    return static_cast<double>(internal_pool_->alloc_failures());
  });

  switch (spec_.mode) {
    case ChainMode::kFtc:
      build_ftc();
      break;
    case ChainMode::kNf:
      build_nf();
      break;
    case ChainMode::kFtmb:
      build_ftmb(false);
      break;
    case ChainMode::kFtmbSnapshot:
      build_ftmb(true);
      break;
  }
}

ChainRuntime::~ChainRuntime() { stop(); }

FtcNode::MboxFactory ChainRuntime::factory_for(std::uint32_t position) const {
  return position < spec_.mbox_factories.size() ? spec_.mbox_factories[position]
                                                : FtcNode::MboxFactory{};
}

std::unique_ptr<net::Port> ChainRuntime::make_segment(std::uint32_t i) {
  const std::string name = "seg" + std::to_string(i);
  if (spec_.cfg.transport == TransportMode::kReliable) {
    return std::make_unique<net::ReliableChannel>(
        *pool_, spec_.cfg.link, spec_.cfg.reliable, &registry_, name,
        obs::span_site_link(i));
  }
  return std::make_unique<net::Link>(*pool_, spec_.cfg.link, &registry_, name,
                                     obs::span_site_link(i));
}

void ChainRuntime::build_ftc() {
  for (std::uint32_t i = 0; i < ring_size_; ++i) {
    links_.push_back(make_segment(i));
  }
  egress_link_ = std::make_unique<net::Link>(*pool_, net::LinkConfig{},
                                             &registry_, "egress",
                                             obs::span_site_link(kEgressLinkSite));
  feedback_ = std::make_unique<FeedbackChannel>();
  forwarder_ = std::make_unique<Forwarder>(*feedback_, spec_.cfg);
  buffer_ = std::make_unique<EgressBuffer>(*internal_pool_, *egress_link_,
                                           *feedback_, &registry_);
  registry_.gauge_fn("forwarder.feedback_pending", {{"node", "fwd"}}, [this] {
    return static_cast<double>(feedback_->pending_approx());
  });

  ftc_at_ = std::vector<std::atomic<FtcNode*>>(ring_size_);
  for (std::uint32_t i = 0; i < ring_size_; ++i) {
    FtcNode::Params params;
    params.id = next_node_id_++;
    params.position = i;
    params.ring_size = ring_size_;
    params.num_mboxes = num_mboxes();
    params.cfg = &spec_.cfg;
    params.pool = internal_pool_.get();
    params.ctrl = &ctrl_;
    params.registry = &registry_;
    params.mbox_factory = factory_for(i);
    auto node = std::make_unique<FtcNode>(params);
    node->attach_data_path(links_[i].get(),
                           i + 1 < ring_size_ ? links_[i + 1].get() : nullptr);
    if (i == 0) node->set_forwarder(forwarder_.get());
    if (i == ring_size_ - 1) node->set_buffer(buffer_.get());
    ftc_at_[i].store(node.get(), std::memory_order_release);
    ftc_nodes_.push_back(std::move(node));
  }
  for (std::uint32_t i = 0; i < ring_size_; ++i) {
    FtcNode* pred =
        ftc_at_[(i + ring_size_ - 1) % ring_size_].load(std::memory_order_relaxed);
    ftc_at_[i].load(std::memory_order_relaxed)->set_ring_pred(pred->id());
  }
}

void ChainRuntime::build_nf() {
  for (std::uint32_t i = 0; i < ring_size_; ++i) {
    links_.push_back(make_segment(i));
  }
  egress_link_ = std::make_unique<net::Link>(*pool_, net::LinkConfig{},
                                             &registry_, "egress",
                                             obs::span_site_link(kEgressLinkSite));
  for (std::uint32_t i = 0; i < ring_size_; ++i) {
    auto node = std::make_unique<NfNode>(i, spec_.cfg, *internal_pool_,
                                         factory_for(i), &registry_);
    node->attach_data_path(links_[i].get(), i + 1 < ring_size_
                                                ? links_[i + 1].get()
                                                : egress_link_.get());
    nf_nodes_.push_back(std::move(node));
  }
}

void ChainRuntime::build_ftmb(bool snapshots) {
  // Segment links feed each middlebox's logger; two internal links connect
  // logger <-> master (the paper's dedicated logger server per middlebox).
  for (std::uint32_t i = 0; i < ring_size_; ++i) {
    links_.push_back(make_segment(i));
  }
  egress_link_ = std::make_unique<net::Link>(*pool_, net::LinkConfig{});

  for (std::uint32_t i = 0; i < ring_size_; ++i) {
    auto il_to_m = std::make_unique<net::Link>(*pool_, spec_.cfg.link);
    auto m_to_ol = std::make_unique<net::Link>(*pool_, spec_.cfg.link);

    auto logger = std::make_unique<ftmb::FtmbLogger>(i, spec_.cfg,
                                                     *internal_pool_);
    auto master = std::make_unique<ftmb::FtmbMaster>(
        i, spec_.cfg, *internal_pool_, factory_for(i), snapshots);
    logger->attach(links_[i].get(), il_to_m.get(), m_to_ol.get(),
                   i + 1 < ring_size_ ? links_[i + 1].get()
                                      : egress_link_.get());
    master->attach_data_path(il_to_m.get(), m_to_ol.get());

    ftmb_links_.push_back(std::move(il_to_m));
    ftmb_links_.push_back(std::move(m_to_ol));
    ftmb_loggers_.push_back(std::move(logger));
    ftmb_masters_.push_back(std::move(master));
  }
}

void ChainRuntime::start() {
  if (started_) return;
  started_ = true;
  for (auto& node : ftc_nodes_) node->start();
  for (auto& node : nf_nodes_) node->start();
  for (auto& node : ftmb_loggers_) node->start();
  for (auto& node : ftmb_masters_) node->start();
}

void ChainRuntime::stop() {
  for (auto& node : ftc_nodes_) node->stop();
  for (auto& node : nf_nodes_) node->stop();
  for (auto& node : ftmb_masters_) node->stop();
  for (auto& node : ftmb_loggers_) node->stop();
  if (profiler_) {
    // Re-export now that every worker thread has registered its slot, so
    // a registry snapshot taken after stop() carries per-worker rows.
    profiler_->export_metrics(registry_);
  }
  started_ = false;
}

std::uint64_t ChainRuntime::egress_packets() const noexcept {
  return egress_link_ ? egress_link_->stats().sent : 0;
}

bool ChainRuntime::quiescent() {
  static const bool dbg = std::getenv("FTC_QUIESCE_DEBUG") != nullptr;
  for (auto& link : links_) {
    if (!link->drained()) {
      if (dbg) std::fprintf(stderr, "[quiesce] link not drained\n");
      return false;
    }
  }
  for (auto& link : ftmb_links_) {
    if (!link->drained()) return false;
  }
  if (feedback_ && feedback_->pending_approx() != 0) {
    if (dbg)
      std::fprintf(stderr, "[quiesce] feedback pending=%zu\n",
                   feedback_->pending_approx());
    return false;
  }
  if (buffer_ && buffer_->held_count() != 0) {
    if (dbg)
      std::fprintf(stderr, "[quiesce] buffer held=%zu\n",
                   buffer_->held_count());
    return false;
  }
  for (auto& slot : ftc_at_) {
    FtcNode* node = slot.load(std::memory_order_acquire);
    if (node != nullptr && node->parked_count() != 0) {
      if (dbg)
        std::fprintf(stderr, "[quiesce] node pos=%u parked=%zu\n",
                     node->position(), node->parked_count());
      return false;
    }
    // A burst a worker has popped but not finished is in no link queue yet
    // still carries unapplied logs; checked after the links so a token
    // observed as zero means the packets are back somewhere visible.
    if (node != nullptr && node->bursts_in_flight() != 0) {
      if (dbg)
        std::fprintf(stderr, "[quiesce] node pos=%u bursts_in_flight=%zu\n",
                     node->position(),
                     static_cast<std::size_t>(node->bursts_in_flight()));
      return false;
    }
    // Shard mode: a cross-shard portion sitting in a handoff ring counted
    // as applied at classification, but its writes reach the store only at
    // the owner's drain.
    if (node != nullptr && node->handoff_pending()) {
      if (dbg)
        std::fprintf(stderr, "[quiesce] node pos=%u handoff pending\n",
                     node->position());
      return false;
    }
  }
  return true;
}

void ChainRuntime::fail_position(std::uint32_t position) {
  if (position < ftc_at_.size()) {
    if (FtcNode* node = ftc_at_[position].load(std::memory_order_acquire)) {
      node->fail();
    }
  }
}

FtcNode* ChainRuntime::spawn_replacement(std::uint32_t position) {
  FtcNode::Params params;
  params.id = next_node_id_++;
  params.position = position;
  params.ring_size = ring_size_;
  params.num_mboxes = num_mboxes();
  params.cfg = &spec_.cfg;
  params.pool = internal_pool_.get();
  params.ctrl = &ctrl_;
  params.registry = &registry_;
  params.mbox_factory = factory_for(position);
  auto node = std::make_unique<FtcNode>(params);
  FtcNode* raw = node.get();
  if (const auto it = position_region_.find(position);
      it != position_region_.end()) {
    ctrl_.set_region(raw->id(), it->second);
  }
  node->start_control();
  ftc_nodes_.push_back(std::move(node));
  return raw;
}

std::vector<std::pair<MboxId, net::NodeId>> ChainRuntime::recovery_sources(
    std::uint32_t position) const {
  // Paper §5.2: the failed head's state comes from the immediate successor
  // in its own group, every applier store from the immediate predecessor.
  // Under simultaneous failures the immediate neighbor may itself be dead;
  // the orchestrator then re-initializes with "the new set of alive
  // replicas" — modeled here by falling back to the nearest alive member
  // of the same replication group (safe: every member's state is a
  // prefix-or-equal of the head's by the log propagation invariant, and
  // stale in-flight logs are recognized as duplicates).
  const auto alive = [&](std::uint32_t pos) -> FtcNode* {
    FtcNode* node = ftc_at_[pos].load(std::memory_order_acquire);
    return node != nullptr && !node->has_failed() ? node : nullptr;
  };

  std::vector<std::pair<MboxId, net::NodeId>> sources;
  if (position < num_mboxes()) {
    // Own store: search the successors in the group, nearest first.
    for (std::uint32_t k = 1; k <= spec_.cfg.f && k < ring_size_; ++k) {
      if (FtcNode* node = alive((position + k) % ring_size_)) {
        sources.emplace_back(position, node->id());
        break;
      }
    }
  }
  for (std::uint32_t k = 1; k <= spec_.cfg.f && k < ring_size_; ++k) {
    const std::uint32_t m = (position + ring_size_ - k) % ring_size_;
    if (m >= num_mboxes()) continue;
    // Applier store for middlebox m: group members are positions
    // m .. m+f. Prefer the immediate ring predecessor, then walk the
    // group (the head m last resort — it always has the freshest state).
    FtcNode* source = nullptr;
    for (std::uint32_t back = 1; back <= spec_.cfg.f - k + 1 + spec_.cfg.f;
         ++back) {
      const std::uint32_t cand = (position + ring_size_ - back) % ring_size_;
      // Stop once we walk past the group's head.
      if (source == nullptr) source = alive(cand);
      if (cand == m) break;
    }
    if (source == nullptr) {
      // Walk forward through later group members (position+1 .. m+f).
      for (std::uint32_t fwd = (position + 1) % ring_size_;
           fwd != (m + spec_.cfg.f + 1) % ring_size_;
           fwd = (fwd + 1) % ring_size_) {
        if ((source = alive(fwd)) != nullptr) break;
      }
    }
    if (source != nullptr) sources.emplace_back(m, source->id());
  }
  return sources;
}

void ChainRuntime::wire_replacement(std::uint32_t position, FtcNode* node) {
  // The position's previous occupant must be fully out of the data path
  // before the replacement attaches: if the detection was a false
  // positive (a healthy node silenced by scheduling delay), two consumers
  // on one link would split the flow across divergent stores.
  if (FtcNode* old_node = ftc_at_[position].load(std::memory_order_acquire)) {
    if (!old_node->has_failed()) old_node->fail();
  }
  node->attach_data_path(links_[position].get(),
                         position + 1 < ring_size_ ? links_[position + 1].get()
                                                   : nullptr);
  if (position == 0) node->set_forwarder(forwarder_.get());
  if (position == ring_size_ - 1) node->set_buffer(buffer_.get());
  node->set_ring_pred(ftc_at_[(position + ring_size_ - 1) % ring_size_]
                          .load(std::memory_order_acquire)
                          ->id());
  ftc_at_[position].store(node, std::memory_order_release);
  // Refresh the successor's notion of its ring predecessor (NACK target).
  const std::uint32_t succ = (position + 1) % ring_size_;
  ftc_at_[succ].load(std::memory_order_acquire)->set_ring_pred(node->id());
  node->start();
}

void ChainRuntime::set_position_region(std::uint32_t position,
                                       std::uint32_t region) {
  position_region_[position] = region;
  if (position < ftc_at_.size()) {
    if (FtcNode* node = ftc_at_[position].load(std::memory_order_acquire)) {
      ctrl_.set_region(node->id(), region);
    }
  }
}

}  // namespace sfc::ftc
