#include "core/node.hpp"

#include <algorithm>
#include <cstring>
#include <thread>

#include "obs/prof.hpp"
#include "obs/span.hpp"
#include "runtime/clock.hpp"
#include "runtime/logging.hpp"

namespace sfc::ftc {

namespace {

/// Cold path of the tracing branch: call only after trace_id != 0 (or,
/// for protocol-rate recovery spans, unconditionally — the sink check is
/// the gate).
inline void span_event(obs::Registry* reg, std::uint32_t site,
                       std::uint64_t trace_id, obs::SpanKind kind,
                       std::uint64_t a = 0) noexcept {
  if (auto* sink = reg->span_sink()) {
    sink->record(obs::SpanRecord{trace_id, rt::now_ns(), a, site, kind});
  }
}

// Cycles the current thread spent blocked on full downstream queues while
// processing the current packet; subtracted from busy accounting.
thread_local std::uint64_t t_blocked_cycles = 0;

// Per-thread burst scope. While a data worker processes one rx burst, its
// egress packets are staged in `tx` (flushed with one send_burst) and the
// per-packet bookkeeping (meter, packets_processed, cycle breakdown)
// accumulates here, flushed once per burst. Callers outside the owning
// node's burst loop — the control worker draining parked packets, the
// propagation path — see `owner != this` and take the immediate path, so
// protocol semantics never depend on an open scope.
struct BurstScope {
  sfc::ftc::FtcNode* owner{nullptr};
  sfc::net::Port* out{nullptr};
  std::size_t n_tx{0};
  std::uint64_t data_packets{0};
  std::uint64_t data_bytes{0};
  std::uint64_t control_packets{0};
  std::uint64_t cyc_packets{0};
  std::uint64_t cyc_process{0};
  std::uint64_t cyc_piggyback{0};
  std::uint64_t cyc_forward{0};
  // Budget profiler (obs/prof): the worker's slot while a profiled burst
  // is open (null otherwise — one thread-local null check per stage when
  // profiling is disabled), and the burst's per-stage cycle accumulators,
  // flushed to the slot once per burst. `prof_mark` is the chained stage
  // boundary: every bracket covers [prof_mark, now] and advances it, so
  // the stages tile the burst window — glue between brackets lands in the
  // next stage instead of going unattributed, and a nested bracket that
  // advanced the mark automatically shrinks its enclosing one.
  obs::ProfSlot* prof{nullptr};
  std::uint64_t prof_mark{0};
  std::uint64_t prof_cycles[obs::kProfStageCount]{};
  pkt::Packet* tx[sfc::ftc::kMaxBurst];

  void prof_add(obs::ProfStage stage, std::uint64_t d) noexcept {
    prof_cycles[static_cast<std::size_t>(stage)] += d;
  }
};
thread_local BurstScope t_burst;

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
  out.insert(out.end(), p, p + 4);
}

bool take_u32(std::span<const std::uint8_t>& in, std::uint32_t& v) {
  if (in.size() < 4) return false;
  std::memcpy(&v, in.data(), 4);
  in = in.subspan(4);
  return true;
}

void put_max(std::vector<std::uint8_t>& out, const MaxVector& v) {
  const auto* p = reinterpret_cast<const std::uint8_t*>(v.seq.data());
  out.insert(out.end(), p, p + sizeof(v.seq));
}

bool take_max(std::span<const std::uint8_t>& in, MaxVector& v) {
  if (in.size() < sizeof(v.seq)) return false;
  std::memcpy(v.seq.data(), in.data(), sizeof(v.seq));
  in = in.subspan(sizeof(v.seq));
  return true;
}

}  // namespace

FtcNode::FtcNode(Params params)
    : id_(params.id),
      position_(params.position),
      ring_size_(params.ring_size),
      num_mboxes_(params.num_mboxes),
      cfg_(*params.cfg),
      pool_(*params.pool),
      ctrl_(*params.ctrl) {
  if (params.registry != nullptr) {
    registry_ = params.registry;
  } else {
    own_registry_ = std::make_unique<obs::Registry>();
    registry_ = own_registry_.get();
  }
  const obs::Labels labels{{"node", std::to_string(id_)},
                           {"pos", std::to_string(position_)}};
  stats_.packets_processed = &registry_->counter("node.packets_processed", labels);
  stats_.control_packets = &registry_->counter("node.control_packets", labels);
  stats_.logs_applied = &registry_->counter("node.logs_applied", labels);
  stats_.logs_duplicate = &registry_->counter("node.logs_duplicate", labels);
  stats_.packets_parked = &registry_->counter("node.packets_parked", labels);
  stats_.nacks_sent = &registry_->counter("node.nacks_sent", labels);
  stats_.nacks_served = &registry_->counter("node.nacks_served", labels);
  stats_.drops_filtered = &registry_->counter("node.drops_filtered", labels);
  stats_.drops_unparseable =
      &registry_->counter("node.drops_unparseable", labels);
  stats_.oversize_detours =
      &registry_->counter("node.oversize_detours", labels);
  trace_ = &registry_->trace("node.events", labels);
  registry_->name_span_site(obs::span_site_node(id_),
                            "node " + std::to_string(id_) + " pos" +
                                std::to_string(position_));
  registry_->gauge_fn("node.parked", labels, [this] {
    return static_cast<double>(parked_count());
  });
  registry_->gauge_fn("node.mbox_packets", labels, [this] {
    return static_cast<double>(meter_.packets());
  });
  registry_->histogram_fn("node.busy_cycles", labels, [this] {
    LockGuard lock(busy_mutex_);
    return busy_hist_;
  });
  ctrl_.register_node(id_);
  if (position_ < num_mboxes_ && params.mbox_factory) {
    mbox_ = params.mbox_factory();
    head_ = std::make_unique<HeadStore>(position_, cfg_);
  }
  // Appliers for the f preceding ring positions that carry middleboxes.
  for (std::uint32_t k = 1; k <= cfg_.f && k < ring_size_; ++k) {
    const std::uint32_t m = (position_ + ring_size_ - k) % ring_size_;
    if (m < num_mboxes_) {
      appliers_.emplace(m, std::make_unique<InOrderApplier>(m, cfg_));
    }
  }
  // Hot-path caches (appliers_ is immutable from here on).
  for (const auto& [m, a] : appliers_) applier_cache_.emplace_back(m, a.get());
  tail_mbox_ = tail_of();
  tail_applier_ = tail_mbox_ != ring_size_ ? applier(tail_mbox_) : nullptr;
  burst_size_ = std::clamp<std::size_t>(cfg_.burst_size, 1, kMaxBurst);

  // Shard-affine state (cfg.ownership): partition ownership + handoff
  // mesh, enabled before any worker exists. Appliers shard at any thread
  // count; the head's transaction fast path engages only when exactly one
  // thread transacts (multi-threaded heads keep wound-wait 2PL — that IS
  // their concurrency control).
  const auto workers = static_cast<std::uint32_t>(cfg_.threads_per_node);
  if (cfg_.ownership == Ownership::kShardAffine &&
      workers <= state::ShardMap::kMaxWorkers && !appliers_.empty()) {
    shard_map_ = std::make_unique<state::ShardMap>(cfg_.num_partitions, workers);
    // One producer row per data worker plus one for the control thread
    // (NACK replay offers from there and owns no shard).
    handoff_mesh_ = std::make_unique<StateHandoffMesh>(
        workers + 1, workers, cfg_.handoff_capacity);
    for (auto& [m, a] : appliers_) {
      a->enable_shard_affine(shard_map_.get(), handoff_mesh_.get());
    }
  }
  if (cfg_.ownership == Ownership::kShardAffine && head_ != nullptr &&
      cfg_.threads_per_node == 1) {
    head_->enable_shard_affine();
  }
  const obs::Labels slabels{{"node", std::to_string(id_)},
                            {"pos", std::to_string(position_)}};
  registry_->gauge_fn("state.partition_keys_hw", slabels, [this] {
    std::uint64_t hw = head_ != nullptr ? head_->store().keys_high_water() : 0;
    for (const auto& [m, a] : applier_cache_) {
      hw = std::max(hw, a->store().keys_high_water());
    }
    return static_cast<double>(hw);
  });
  registry_->gauge_fn("state.handoff_depth_hw", slabels, [this] {
    return handoff_mesh_ != nullptr
               ? static_cast<double>(handoff_mesh_->depth_high_water())
               : 0.0;
  });
  registry_->gauge_fn("state.owner_miss", slabels, [this] {
    return head_ != nullptr
               ? static_cast<double>(head_->txn_ctx().owner_misses())
               : 0.0;
  });
}

FtcNode::~FtcNode() {
  stop();
  // The shared registry outlives this node: drop snapshot callbacks that
  // capture `this` before the members they read are destroyed.
  registry_->remove_matching("node", std::to_string(id_));
}

void FtcNode::attach_data_path(net::Port* in, net::Port* out) {
  in_link_.store(in);
  out_link_.store(out);
}

void FtcNode::set_ring_pred(net::NodeId pred) {
  const net::NodeId old = ring_pred_id_.exchange(pred);
  if (old == pred || old == 0) return;
  // Rerouted to a different predecessor: the per-store NACK gap gate
  // tracked requests to the OLD node. A stale timestamp here would
  // silently swallow the first NACK the replacement needs to serve.
  LockGuard lock(park_mutex_);
  last_nack_ns_.clear();
}

void FtcNode::set_forwarder(Forwarder* fwd) {
  forwarder_ = fwd;
  if (fwd == nullptr || pb_hists_registered_) return;
  pb_hists_registered_ = true;
  const obs::Labels labels{{"node", std::to_string(id_)},
                           {"pos", std::to_string(position_)}};
  registry_->histogram_fn("piggyback.bytes_per_packet", labels, [this] {
    LockGuard lock(pb_mutex_);
    return pb_bytes_hist_;
  });
  registry_->histogram_fn("piggyback.logs_per_packet", labels, [this] {
    LockGuard lock(pb_mutex_);
    return pb_logs_hist_;
  });
}

InOrderApplier* FtcNode::applier(MboxId mbox) noexcept {
  if (applier_cache_.empty()) {
    // Construction-time call (the cache is built after appliers_).
    const auto it = appliers_.find(mbox);
    return it != appliers_.end() ? it->second.get() : nullptr;
  }
  // At most f entries (usually one): a linear scan of a flat array beats
  // the std::map walk on the per-packet path.
  for (const auto& [m, a] : applier_cache_) {
    if (m == mbox) return a;
  }
  return nullptr;
}

std::uint32_t FtcNode::tail_of() const noexcept {
  if (cfg_.f == 0 || cfg_.f >= ring_size_) return ring_size_;
  const std::uint32_t m = (position_ + ring_size_ - cfg_.f) % ring_size_;
  return m < num_mboxes_ && m != position_ ? m : ring_size_;
}

bool FtcNode::replicates(MboxId mbox) const noexcept {
  return appliers_.count(mbox) != 0;
}

void FtcNode::start() {
  start_control();
  // A restart binds the head's transaction fast path to the new worker
  // thread (the previous owner thread is gone).
  if (head_ != nullptr) head_->txn_ctx().reset_owner();
  for (std::size_t t = 0; t < cfg_.threads_per_node; ++t) {
    auto worker = std::make_unique<rt::Worker>();
    worker->start("ftc-node-" + std::to_string(position_) + "-t" +
                      std::to_string(t),
                  [this, t] {
                    rt::set_current_shard(static_cast<std::uint32_t>(t));
                    return worker_body(static_cast<std::uint32_t>(t));
                  });
    workers_.push_back(std::move(worker));
  }
}

void FtcNode::start_control() {
  if (control_worker_) return;
  control_worker_ = std::make_unique<rt::Worker>();
  control_worker_->start("ftc-ctrl-" + std::to_string(position_), [this] {
    if (failed_.load(std::memory_order_acquire)) return false;
    handle_control();
    check_parked_timeouts();
    // Control work is low-rate (heartbeats in ms, NACK timers in ms):
    // sleep rather than spin so data-plane threads keep the CPU.
    std::this_thread::sleep_for(std::chrono::microseconds(200));
    return true;  // The sleep above is the backoff.
  });
}

void FtcNode::stop() {
  workers_.clear();
  control_worker_.reset();
}

void FtcNode::fail() {
  failed_.store(true, std::memory_order_release);
  trace_->emit(obs::Event::kFailure, id_);
  span_event(registry_, obs::span_site_node(id_),
             obs::recovery_trace_id(position_), obs::SpanKind::kFail,
             position_);
  stop();
  // Crash-stop: parked packets are lost with the node.
  LockGuard lock(park_mutex_);
  for (auto& w : parked_) pool_.free_raw(w.packet);
  parked_.clear();
  parked_size_.store(0, std::memory_order_release);
}

bool FtcNode::worker_body(std::uint32_t thread_id) {
  if (failed_.load(std::memory_order_acquire)) return false;

  // Dekker with quiesce_and: announce activity FIRST, then check the
  // quiesce flag (both seq_cst). The old check-then-announce order let a
  // worker slip past a quiesce that had already seen active == 0 — benign
  // when quiesce only serialized stores, fatal now that the control thread
  // drains handoff rings (single-consumer) under quiesce.
  active_workers_.fetch_add(1, std::memory_order_seq_cst);
  if (quiesced_.load(std::memory_order_seq_cst)) {
    active_workers_.fetch_sub(1, std::memory_order_release);
    return false;
  }
  bool did_work = false;

  // Ingress duties: emit a propagating packet when the chain is idle but
  // state dissemination is pending (paper §5.1).
  if (thread_id == 0 && forwarder_ != nullptr && forwarder_->propagation_due()) {
    // The propagating packet runs through this node's full pipeline (its
    // appliers are group members of the wrap-around middleboxes too).
    if (pkt::Packet* prop = Forwarder::make_propagating_packet(pool_)) {
      Work work;
      work.packet = prop;
      work.thread_id = thread_id;
      work.msg = forwarder_->collect();
      process_work(std::move(work));
      did_work = true;
    }
  }

  net::Port* in = in_link_.load(std::memory_order_acquire);
  if (in != nullptr) {
    pkt::Packet* rx[kMaxBurst];
    // Budget profiler gate: one acquire load + branch when disabled. The
    // slot lookup past the branch is a thread-local cache hit; the label
    // string is built only on the first burst of each worker thread.
    obs::ProfSlot* slot = nullptr;
    if (obs::HotProfiler* hp = obs::hot_profiler(); SFC_UNLIKELY(hp != nullptr)) {
      slot = hp->maybe_slot();
      if (slot == nullptr) {
        // The label string is built once per thread, on its first
        // profiled burst only.
        slot = hp->thread_slot(
            // LINT_HOT_PATH_ALLOW(string-growth): once per thread
            "ftc-node-" + std::to_string(position_) + "-t" +
            // LINT_HOT_PATH_ALLOW(string-growth): once per thread
            std::to_string(thread_id));
      }
    }
    // Raise the in-flight token BEFORE popping: packets leave the link
    // queue here but are only applied/forwarded below, and quiescence
    // checks (ChainRuntime::quiescent) must never observe "links drained"
    // while a whole burst sits unapplied in this worker's hands.
    bursts_in_flight_.fetch_add(1);
    const std::uint64_t pp0 = slot != nullptr ? rt::rdtsc() : 0;
    const std::size_t got = in->poll_burst(rx, burst_size_);
    if (got != 0) {
      // Open the per-thread burst scope: emits from this burst stage into
      // t_burst.tx and per-packet bookkeeping accumulates, all flushed once
      // below.
      BurstScope& b = t_burst;
      b.owner = this;
      b.out = out_link_.load(std::memory_order_acquire);
      b.prof = slot;
      if (slot != nullptr) {
        const std::uint64_t t = rt::rdtsc();
        b.prof_add(obs::ProfStage::kPoll, t - pp0);
        b.prof_mark = t;
      }
      const std::uint64_t t0 = account_cycles_ ? rt::rdtsc() : 0;
      if (account_cycles_) t_blocked_cycles = 0;
      if (forwarder_ != nullptr) {
        // Chain ingress: packets arrive bare and the message to attach
        // comes from the feedback channel (materialized by necessity), so
        // the head keeps the legacy per-packet path.
        for (std::size_t i = 0; i < got; ++i) ingest_packet(rx[i], thread_id);
      } else {
        // Zero-copy path (paper §5.1's in-place processing): open every
        // tail once, apply the whole burst's logs grouped per applier and
        // store partition, then run phases B-D on the wire bytes in place.
        ViewWork vw[kMaxBurst];
        bool any_traced = false;
        for (std::size_t i = 0; i < got; ++i) {
          if (SFC_UNLIKELY(rx[i]->anno().trace_id != 0)) {
            any_traced = true;
            span_event(registry_, obs::span_site_node(id_),
                       rx[i]->anno().trace_id, obs::SpanKind::kNodeIngress,
                       position_);
          }
          vw[i].view = PiggybackView::open(*rx[i]);
        }
        if (slot != nullptr) {
          const std::uint64_t t = rt::rdtsc();
          b.prof_add(obs::ProfStage::kViewWalk, t - b.prof_mark);
          b.prof_mark = t;
        }
        const std::uint64_t span_t0 = any_traced ? rt::now_ns() : 0;
        const bool timed_apply = account_cycles_ || slot != nullptr;
        const std::uint64_t ta0 = account_cycles_ ? rt::rdtsc() : 0;
        apply_logs_burst(vw, got);
        if (timed_apply) {
          const std::uint64_t now = rt::rdtsc();
          if (account_cycles_) b.cyc_piggyback += now - ta0;
          if (slot != nullptr) {
            b.prof_add(obs::ProfStage::kLogApply, now - b.prof_mark);
            b.prof_mark = now;
          }
        }
        // Traced packets report the burst apply as a per-packet share.
        const std::uint64_t apply_share_ns =
            any_traced ? (rt::now_ns() - span_t0) / got : 0;
        for (std::size_t i = 0; i < got; ++i) {
          if (SFC_UNLIKELY(rx[i]->anno().trace_id != 0) &&
              vw[i].held_at == kNoHeldLog) {
            span_event(registry_, obs::span_site_node(id_),
                       rx[i]->anno().trace_id, obs::SpanKind::kApply,
                       apply_share_ns);
          }
          process_view(rx[i], vw[i], thread_id);
          if (slot != nullptr) {
            // Starts from the chained mark (process_view's exit), so the
            // per-packet return glue bills here; a nested drain that
            // advanced the mark has already claimed its own time.
            drain_parked();
            const std::uint64_t t = rt::rdtsc();
            b.prof_add(obs::ProfStage::kParkDrain, t - b.prof_mark);
            b.prof_mark = t;
          } else {
            drain_parked();
          }
        }
      }
      // Burst boundary: apply cross-shard portions other workers (or the
      // control thread) queued for this worker's partitions. Timed as its
      // own primary stage inside the burst window.
      if (handoff_mesh_ != nullptr) {
        drain_handoff(thread_id);
        if (slot != nullptr) {
          const std::uint64_t t = rt::rdtsc();
          b.prof_add(obs::ProfStage::kHandoffDrain, t - b.prof_mark);
          b.prof_mark = t;
        }
      }
      b.owner = nullptr;
      // The whole burst tail — egress flush, meter/counter flush, cycle
      // accounting — bills to kEgressFlush: it opens at the chained mark
      // (the last per-packet bracket's exit) and closes at the timestamp
      // that ends the busy-wall window, so no per-burst glue goes missing.
      // Flush staged egress with one bulk send; stragglers block with
      // backpressure accounting, exactly like a per-packet send would.
      if (b.n_tx != 0) {
        const std::size_t sent = b.out->send_burst({b.tx, b.n_tx});
        if (sent < b.n_tx) {
          const std::uint64_t w0 = account_cycles_ ? rt::rdtsc() : 0;
          for (std::size_t i = sent; i < b.n_tx; ++i) {
            if (!b.out->send_blocking(b.tx[i])) pool_.free_raw(b.tx[i]);
          }
          if (account_cycles_) t_blocked_cycles += rt::rdtsc() - w0;
        }
        b.n_tx = 0;
      }
      // One meter/counter update per burst instead of per packet.
      if (b.data_packets != 0) {
        meter_.add(b.data_packets, b.data_bytes);
        stats_.packets_processed->add(b.data_packets);
        b.data_packets = 0;
        b.data_bytes = 0;
      }
      if (b.control_packets != 0) {
        stats_.control_packets->add(b.control_packets);
        b.control_packets = 0;
      }
      if (account_cycles_) {
        cyc_packets_.fetch_add(b.cyc_packets, std::memory_order_relaxed);
        cyc_process_.fetch_add(b.cyc_process, std::memory_order_relaxed);
        cyc_piggyback_.fetch_add(b.cyc_piggyback, std::memory_order_relaxed);
        cyc_forward_.fetch_add(b.cyc_forward, std::memory_order_relaxed);
        b.cyc_packets = b.cyc_process = b.cyc_piggyback = b.cyc_forward = 0;
        // Busy accounting records the per-packet average so the pipeline
        // throughput metric stays burst-invariant.
        record_busy((rt::rdtsc() - t0 - t_blocked_cycles) / got, got);
      }
      if (slot != nullptr) {
        // Busy wall ends here: the per-stage sums above must reconcile
        // against it, so the flush itself stays outside the window.
        const std::uint64_t wall_ts = rt::rdtsc();
        b.prof_add(obs::ProfStage::kEgressFlush, wall_ts - b.prof_mark);
        const std::uint64_t wall = wall_ts - pp0;
        for (std::size_t s = 0; s < obs::kProfStageCount; ++s) {
          if (b.prof_cycles[s] == 0) continue;
          slot->cycles[s].fetch_add(b.prof_cycles[s],
                                    std::memory_order_relaxed);
          b.prof_cycles[s] = 0;
        }
        // Primary stages share the burst's packet count as their op count.
        for (std::size_t s = 0; s < obs::kProfPrimaryStageCount; ++s) {
          slot->ops[s].fetch_add(got, std::memory_order_relaxed);
        }
        slot->packets.fetch_add(got, std::memory_order_relaxed);
        slot->bursts.fetch_add(1, std::memory_order_relaxed);
        slot->wall_cycles.fetch_add(wall, std::memory_order_relaxed);
        b.prof = nullptr;
      }
      did_work = true;
    }
    bursts_in_flight_.fetch_sub(1);
  }

  // Idle duties in shard mode: portions queued for this shard by other
  // workers or the control thread (NACK replay) must not wait for the
  // next ingress burst, and parked packets the control replay unblocked
  // are drained here — the control thread never transacts in shard mode.
  if (!did_work && handoff_mesh_ != nullptr) {
    if (drain_handoff(thread_id) != 0) did_work = true;
    if (parked_size_.load(std::memory_order_acquire) != 0) {
      drain_parked();
    }
  }

  active_workers_.fetch_sub(1, std::memory_order_acq_rel);
  return did_work;
}

std::size_t FtcNode::drain_handoff(std::uint32_t thread_id) {
  auto& deferred = handoff_deferred_[thread_id];
  const std::size_t was_deferred = deferred.size();
  const std::size_t popped =
      handoff_mesh_->drain(thread_id, [&deferred](StateHandoff& h) {
        deferred.push_back(std::move(h));
      });
  if (deferred.empty()) return 0;
  // Resolve until a full pass makes no progress: an entry future in one
  // pass becomes applicable once a lower-seq entry from another producer's
  // ring applies. Entries still future after that are waiting on a portion
  // not yet in any of this owner's rings (producer mid-push, or a genuine
  // gap pending NACK recovery) — they stay deferred for the next drain.
  std::size_t resolved = 0;
  bool progress = true;
  while (progress && !deferred.empty()) {
    progress = false;
    std::size_t kept = 0;
    for (std::size_t i = 0; i < deferred.size(); ++i) {
      if (deferred[i].applier->apply_handoff(deferred[i])) {
        ++resolved;
        progress = true;
      } else {
        if (kept != i) deferred[kept] = std::move(deferred[i]);
        ++kept;
      }
    }
    deferred.resize(kept);
  }
  (void)popped;
  const std::size_t now_deferred = deferred.size();
  if (now_deferred != was_deferred) {
    if (now_deferred > was_deferred) {
      handoff_deferred_count_.fetch_add(now_deferred - was_deferred,
                                        std::memory_order_acq_rel);
    } else {
      handoff_deferred_count_.fetch_sub(was_deferred - now_deferred,
                                        std::memory_order_acq_rel);
    }
  }
  return resolved;
}

void FtcNode::ingest_packet(pkt::Packet* p, std::uint32_t thread_id) {
  if (SFC_UNLIKELY(p->anno().trace_id != 0)) {
    span_event(registry_, obs::span_site_node(id_), p->anno().trace_id,
               obs::SpanKind::kNodeIngress, position_);
  }
  Work work;
  work.packet = p;
  work.thread_id = thread_id;
  const bool prof_here = t_burst.prof != nullptr && t_burst.owner == this;
  const bool timed = account_cycles_ || prof_here;
  const std::uint64_t t0 = account_cycles_ ? rt::rdtsc() : 0;
  if (forwarder_ != nullptr) {
    // Chain ingress: outside packets carry no message; attach pending
    // feedback from the buffer.
    work.msg = forwarder_->collect();
    // Head-ingress distributions (the paper's state-size axis): what this
    // message will occupy on the wire, and how many logs ride along.
    {
      LockGuard lock(pb_mutex_);
      pb_bytes_hist_.record(serialized_size(work.msg, cfg_.num_partitions));
      pb_logs_hist_.record(work.msg.logs.size());
    }
  } else if (auto msg = extract_message(*p)) {
    work.msg = std::move(*msg);
  }
  if (timed) {
    const std::uint64_t now = rt::rdtsc();
    if (account_cycles_) t_burst.cyc_piggyback += now - t0;
    if (prof_here) {
      t_burst.prof_add(obs::ProfStage::kViewWalk, now - t_burst.prof_mark);
      t_burst.prof_mark = now;
    }
  }
  process_work(std::move(work));
}

void FtcNode::process_work(Work&& work) {
  if (apply_logs(work)) {
    finish_work(std::move(work));
  } else {
    park(std::move(work));
  }
  // Either path may have unblocked (or re-checked) parked continuations:
  // after a successful apply, a held log may now fit; after a park, this
  // drain closes the race where the missing log landed between our offer
  // and the park insertion.
  if (t_burst.prof != nullptr && t_burst.owner == this) {
    drain_parked();
    const std::uint64_t t = rt::rdtsc();
    t_burst.prof_add(obs::ProfStage::kParkDrain, t - t_burst.prof_mark);
    t_burst.prof_mark = t;
  } else {
    drain_parked();
  }
}

bool FtcNode::apply_logs(Work& work) {
  const bool traced =
      work.packet != nullptr && work.packet->anno().trace_id != 0;
  const std::uint64_t span_t0 = traced ? rt::now_ns() : 0;
  const bool prof_here = t_burst.prof != nullptr && t_burst.owner == this;
  const bool timed = account_cycles_ || prof_here;
  const std::uint64_t t0 = account_cycles_ ? rt::rdtsc() : 0;
  bool complete = true;
  for (; work.next_log < work.msg.logs.size(); ++work.next_log) {
    const PiggybackLog& log = work.msg.logs[work.next_log];
    InOrderApplier* applier = this->applier(log.mbox);
    if (applier == nullptr) continue;  // Relay-only for this store.

    auto offer = applier->offer(log);
    if (offer == InOrderApplier::Offer::kHeld && cfg_.threads_per_node > 1) {
      // With multiple threads the missing predecessor log is usually in
      // flight on a sibling thread right now; a couple of yields beat the
      // full park/drain round trip.
      for (int spin = 0; spin < 4 && offer == InOrderApplier::Offer::kHeld;
           ++spin) {
        std::this_thread::yield();
        offer = applier->offer(log);
      }
    }
    if (offer == InOrderApplier::Offer::kHeld) {
      // A predecessor log is missing (reordered or lost upstream); the
      // caller parks the continuation.
      complete = false;
      break;
    }
    if (offer == InOrderApplier::Offer::kApplied) {
      stats_.logs_applied->inc();
    } else {
      stats_.logs_duplicate->inc();
    }
  }
  if (timed) {
    const std::uint64_t now = rt::rdtsc();
    if (account_cycles_) {
      const std::uint64_t d = now - t0;
      if (t_burst.owner == this) {
        t_burst.cyc_piggyback += d;
      } else {
        cyc_piggyback_.fetch_add(d, std::memory_order_relaxed);
      }
    }
    if (prof_here) {
      t_burst.prof_add(obs::ProfStage::kLogApply, now - t_burst.prof_mark);
      t_burst.prof_mark = now;
    }
  }
  if (traced && complete) {
    span_event(registry_, obs::span_site_node(id_),
               work.packet->anno().trace_id, obs::SpanKind::kApply,
               rt::now_ns() - span_t0);
  }
  return complete;
}

void FtcNode::apply_logs_burst(ViewWork* vw, std::size_t n) {
  if (applier_cache_.empty()) return;
  struct Origin {
    std::uint32_t pkt;
    std::uint32_t idx;
  };
  rt::SmallVector<WireLog, 64> logs;
  rt::SmallVector<Origin, 64> origin;
  rt::SmallVector<InOrderApplier::Offer, 64> results;
  std::uint64_t applied = 0;
  std::uint64_t duplicate = 0;
  for (const auto& [mbox, a] : applier_cache_) {
    logs.clear();
    origin.clear();
    results.clear();
    // Gather this applier's logs across the whole burst in rx order, so
    // one offer_burst takes the MAX mutex (and each touched store
    // partition lock) once instead of once per log.
    for (std::uint32_t i = 0; i < n; ++i) {
      const PiggybackView& v = vw[i].view;
      if (!v.ok()) continue;
      const std::size_t count = v.log_count();
      for (std::uint32_t j = 0; j < count; ++j) {
        WireLog log = v.log(j);
        if (log.mbox != mbox) continue;
        logs.push_back(log);
        origin.push_back(Origin{i, j});
        results.push_back(InOrderApplier::Offer::kHeld);
      }
    }
    if (logs.empty()) continue;
    a->offer_burst({logs.data(), logs.size()}, results.data());
    for (std::size_t k = 0; k < logs.size(); ++k) {
      auto offer = results[k];
      if (offer == InOrderApplier::Offer::kHeld &&
          cfg_.threads_per_node > 1) {
        // Same retry as apply_logs: with sibling threads the missing
        // predecessor is usually in flight right now, and retrying k in
        // order lets a successful retry unblock k+1 below.
        for (int spin = 0; spin < 4 && offer == InOrderApplier::Offer::kHeld;
             ++spin) {
          std::this_thread::yield();
          offer = a->offer_wire(logs[k]);
        }
      }
      switch (offer) {
        case InOrderApplier::Offer::kApplied:
          ++applied;
          break;
        case InOrderApplier::Offer::kDuplicate:
          ++duplicate;
          break;
        case InOrderApplier::Offer::kHeld: {
          // Remember the earliest held log (in message order): the packet
          // re-enters the legacy path from there; logs already applied
          // above re-offer as duplicates.
          std::uint32_t& held = vw[origin[k].pkt].held_at;
          held = std::min(held, origin[k].idx);
          break;
        }
      }
    }
  }
  if (applied != 0) stats_.logs_applied->add(applied);
  if (duplicate != 0) stats_.logs_duplicate->add(duplicate);
}

void FtcNode::process_view(pkt::Packet* p, ViewWork& vw,
                           std::uint32_t thread_id) {
  BurstScope& b = t_burst;
  const std::uint64_t trace_id = p->anno().trace_id;
  // Budget stage marks chain through b.prof_mark: each boundary timestamp
  // closes one stage and opens the next — across function boundaries — so
  // dispatch glue (parse, span/meter bookkeeping, call/return overhead)
  // lands in an adjacent stage instead of silently eroding reconciliation.
  const bool prof_here = b.prof != nullptr && b.owner == this;
  if (SFC_UNLIKELY(vw.held_at != kNoHeldLog)) {
    // A predecessor log is missing: leave the zero-copy path and continue
    // on the materializing park/drain machinery from the held log.
    Work work;
    work.packet = p;
    work.thread_id = thread_id;
    if (auto msg = extract_message(*p)) work.msg = std::move(*msg);
    work.next_log = vw.held_at;
    process_work(std::move(work));
    return;
  }
  PiggybackView& v = vw.view;

  // --- Phase B: tail duty, pruning, commit stripping, in place. ---
  const bool timed_b = account_cycles_ || prof_here;
  const std::uint64_t tb0 = account_cycles_ ? rt::rdtsc() : 0;
  if (InOrderApplier* a = tail_applier_) {
    if (v.ok() && v.log_count() != 0) {
      v.strip_logs_of(tail_mbox_);
      if (trace_id != 0) {
        span_event(registry_, obs::span_site_node(id_), trace_id,
                   obs::SpanKind::kStrip, tail_mbox_);
      }
    }
    const std::uint64_t applied = a->applied_count();
    if (applied != last_commit_attach_.load(std::memory_order_relaxed)) {
      if (!v.ok()) v = PiggybackView::create(*p, cfg_.num_partitions);
      if (v.ok() && v.set_commit(tail_mbox_, a->max())) {
        last_commit_attach_.store(applied, std::memory_order_relaxed);
        trace_->emit(obs::Event::kCommitAttach, tail_mbox_, applied);
        if (trace_id != 0) {
          span_event(registry_, obs::span_site_node(id_), trace_id,
                     obs::SpanKind::kCommitAttach, tail_mbox_);
        }
      } else {
        // Tailroom exhausted mid-attach (nothing recorded yet): finish on
        // the materializing path, which re-evaluates the attach and can
        // detour the message onto a propagating packet.
        Work work;
        work.packet = p;
        work.thread_id = thread_id;
        if (auto msg = extract_message(*p)) work.msg = std::move(*msg);
        work.next_log = work.msg.logs.size();
        if (timed_b) {
          const std::uint64_t now = rt::rdtsc();
          if (account_cycles_) b.cyc_piggyback += now - tb0;
          if (prof_here) {
            b.prof_add(obs::ProfStage::kTailCommit, now - b.prof_mark);
            b.prof_mark = now;
          }
        }
        finish_work(std::move(work));
        return;
      }
    }
  }
  if (v.ok() && v.commit_count() != 0) {
    rt::SmallVector<CommitVector, 2> commits;
    for (std::size_t i = 0; i < v.commit_count(); ++i) {
      CommitVector c;
      c.mbox = v.commit(i, c.max);
      commits.push_back(std::move(c));
    }
    // The buffer is the last consumer of commit vectors before stripping.
    if (buffer_ != nullptr) {
      buffer_->absorb({commits.data(), commits.size()});
    }
    for (const auto& c : commits) {
      if (head_ != nullptr && c.mbox == position_) head_->prune(c.max);
      if (InOrderApplier* ca = applier(c.mbox)) ca->prune(c.max);
    }
  }
  if (timed_b) {
    const std::uint64_t now = rt::rdtsc();
    if (account_cycles_) b.cyc_piggyback += now - tb0;
    if (prof_here) {
      b.prof_add(obs::ProfStage::kTailCommit, now - b.prof_mark);
      b.prof_mark = now;
    }
  }

  // --- Phase C: the packet transaction (paper §4.2). The tail stays on
  // the packet; parse_packet is told where the wire bytes end. ---
  mbox::Verdict verdict = mbox::Verdict::kForward;
  PiggybackLog new_log;
  bool have_log = false;
  if (mbox_ != nullptr && !p->anno().is_control) {
    auto parsed = pkt::parse_packet(*p, v.ok() ? v.wire_size() : 0);
    if (!parsed) {
      stats_.drops_unparseable->inc();
      verdict = mbox::Verdict::kDrop;
    } else {
      const std::uint64_t span_t0 = trace_id != 0 ? rt::now_ns() : 0;
      const bool timed_c = account_cycles_ || prof_here;
      const std::uint64_t t0 = account_cycles_ ? rt::rdtsc() : 0;
      mbox::ProcessContext pctx;
      pctx.thread_id = thread_id;
      pctx.num_threads = static_cast<std::uint32_t>(cfg_.threads_per_node);
      if (mbox_->stateless()) {
        verdict = mbox_->process_stateless(*p, *parsed, pctx);
      } else {
        auto record = state::run_transaction(head_->txn_ctx(), [&](state::Txn& txn) {
          pctx.deferred_rewrite.reset();
          verdict = mbox_->process(txn, *p, *parsed, pctx);
        });
        if (!record.read_only()) {
          new_log = head_->make_log(std::move(record));
          have_log = true;
        }
      }
      if (pctx.deferred_rewrite) pkt::rewrite_flow(*parsed, *pctx.deferred_rewrite);
      if (timed_c) {
        const std::uint64_t now = rt::rdtsc();
        if (account_cycles_) {
          b.cyc_process += now - t0;
          ++b.cyc_packets;
        }
        if (prof_here) {
          // Chained from the Phase B boundary: parse + dispatch glue count
          // as processing cost, not unattributed time.
          b.prof_add(obs::ProfStage::kProcess, now - b.prof_mark);
          b.prof_mark = now;
        }
      }
      if (trace_id != 0) {
        span_event(registry_, obs::span_site_node(id_), trace_id,
                   obs::SpanKind::kProcess, rt::now_ns() - span_t0);
      }
    }
  }

  if (p->anno().is_control) {
    ++b.control_packets;
  } else {
    ++b.data_packets;
    // Meter wire bytes only, matching the legacy path where the tail was
    // stripped before the packet was measured.
    b.data_bytes += v.ok() ? v.wire_size() : p->size();
  }

  // --- Phase D: emit, appending our own log in place. ---
  if (verdict == mbox::Verdict::kDrop) {
    // A filtering middlebox must not swallow in-flight state: its head
    // emits a propagating packet carrying the message (paper §5.1).
    stats_.drops_filtered->inc();
    PiggybackMessage out;
    if (auto msg = extract_message(*p)) out = std::move(*msg);
    if (have_log) out.logs.push_back(std::move(new_log));
    pool_.free_raw(p);
    if (!out.empty()) emit_propagating(std::move(out));
    return;
  }
  const bool timed_d = account_cycles_ || prof_here;
  const std::uint64_t tf0 = account_cycles_ ? rt::rdtsc() : 0;
  const auto flush_forward = [&]() {
    if (!timed_d) return;
    const std::uint64_t now = rt::rdtsc();
    if (account_cycles_) b.cyc_forward += now - tf0;
    if (prof_here) {
      b.prof_add(obs::ProfStage::kAppend, now - b.prof_mark);
      b.prof_mark = now;
    }
  };
  if (have_log) {
    if (!v.ok()) v = PiggybackView::create(*p, cfg_.num_partitions);
    if (!v.ok() || !v.append_log(new_log)) {
      // The log outgrew this packet's tailroom. The materializing emit
      // handles it: it re-tries the append as a whole and detours the
      // message onto a propagating packet when it still cannot fit.
      PiggybackMessage out;
      if (auto msg = extract_message(*p)) out = std::move(*msg);
      out.logs.push_back(std::move(new_log));
      emit(p, std::move(out));
      flush_forward();
      return;
    }
  }
  if (trace_id != 0) {
    span_event(registry_, obs::span_site_node(id_), trace_id,
               obs::SpanKind::kNodeEgress);
  }
  if (buffer_ != nullptr) {
    buffer_->submit_wire(p, v);
    flush_forward();
    return;
  }
  net::Port* out = out_link_.load(std::memory_order_acquire);
  if (out == nullptr) {
    pool_.free_raw(p);
    return;
  }
  // The tail already rides the packet: no append, just stage or send.
  if (b.owner == this && b.out == out && b.n_tx < kMaxBurst) {
    b.tx[b.n_tx++] = p;
  } else {
    send_now(out, p);
  }
  flush_forward();
}

void FtcNode::park(Work&& work) {
  work.parked_at_ns = rt::now_ns();
  const MboxId blocked_on = work.next_log < work.msg.logs.size()
                                ? work.msg.logs[work.next_log].mbox
                                : 0;
  if (work.packet->anno().trace_id != 0) {
    span_event(registry_, obs::span_site_node(id_), work.packet->anno().trace_id,
               obs::SpanKind::kPark, blocked_on);
  }
  std::size_t depth = 0;
  {
    LockGuard lock(park_mutex_);
    parked_.push_back(std::move(work));
    depth = parked_.size();
    parked_size_.store(depth, std::memory_order_release);
  }
  stats_.packets_parked->inc();
  trace_->emit(obs::Event::kPacketParked, blocked_on, depth);
}

void FtcNode::finish_work(Work&& work) {
  pkt::Packet* p = work.packet;
  PiggybackMessage msg = std::move(work.msg);
  const std::uint64_t trace_id = p->anno().trace_id;

  // --- Phase B: tail duty, pruning, commit stripping (paper §5.1). ---
  const bool prof_here = t_burst.prof != nullptr && t_burst.owner == this;
  const bool timed = account_cycles_ || prof_here;
  // Chained budget marks through t_burst.prof_mark, same scheme as
  // process_view: boundaries close one stage and open the next so glue
  // between phases (and across the call) stays attributed.
  const std::uint64_t tb0 = account_cycles_ ? rt::rdtsc() : 0;
  if (InOrderApplier* a = tail_applier_) {
    const std::uint32_t tail_mbox = tail_mbox_;
    if (!msg.logs.empty()) {
      msg.strip_logs_of(tail_mbox);
      if (trace_id != 0) {
        span_event(registry_, obs::span_site_node(id_), trace_id,
                   obs::SpanKind::kStrip, tail_mbox);
      }
    }
    // Attach the commit vector only when it advanced: re-announcing an
    // unchanged MAX carries no information and costs 100+ bytes per
    // packet on read-heavy workloads.
    const std::uint64_t applied = a->applied_count();
    if (applied != last_commit_attach_.load(std::memory_order_relaxed)) {
      last_commit_attach_.store(applied, std::memory_order_relaxed);
      msg.set_commit(tail_mbox, a->max());
      trace_->emit(obs::Event::kCommitAttach, tail_mbox, applied);
      if (trace_id != 0) {
        span_event(registry_, obs::span_site_node(id_), trace_id,
                   obs::SpanKind::kCommitAttach, tail_mbox);
      }
    }
  }
  // The buffer is the last consumer of commit vectors before stripping.
  if (buffer_ != nullptr) buffer_->absorb({msg.commits.data(), msg.commits.size()});
  // Prune histories with every commit vector on board.
  for (const auto& c : msg.commits) {
    if (head_ != nullptr && c.mbox == position_) head_->prune(c.max);
    if (InOrderApplier* a = applier(c.mbox)) a->prune(c.max);
  }
  if (timed) {
    const std::uint64_t now = rt::rdtsc();
    if (account_cycles_) {
      const std::uint64_t d = now - tb0;
      if (t_burst.owner == this) {
        t_burst.cyc_piggyback += d;
      } else {
        cyc_piggyback_.fetch_add(d, std::memory_order_relaxed);
      }
    }
    if (prof_here) {
      t_burst.prof_add(obs::ProfStage::kTailCommit, now - t_burst.prof_mark);
      t_burst.prof_mark = now;
    }
  }

  // --- Phase C: the packet transaction (paper §4.2). ---
  mbox::Verdict verdict = mbox::Verdict::kForward;
  if (mbox_ != nullptr && !p->anno().is_control) {
    auto parsed = pkt::parse_packet(*p);
    if (!parsed) {
      stats_.drops_unparseable->inc();
      verdict = mbox::Verdict::kDrop;
    } else {
      const std::uint64_t span_t0 = trace_id != 0 ? rt::now_ns() : 0;
      const std::uint64_t t0 = account_cycles_ ? rt::rdtsc() : 0;
      mbox::ProcessContext pctx;
      pctx.thread_id = work.thread_id;
      pctx.num_threads = static_cast<std::uint32_t>(cfg_.threads_per_node);
      if (mbox_->stateless()) {
        verdict = mbox_->process_stateless(*p, *parsed, pctx);
      } else {
        auto record = state::run_transaction(head_->txn_ctx(), [&](state::Txn& txn) {
          pctx.deferred_rewrite.reset();
          verdict = mbox_->process(txn, *p, *parsed, pctx);
        });
        if (!record.read_only()) {
          msg.logs.push_back(head_->make_log(std::move(record)));
        }
      }
      if (pctx.deferred_rewrite) pkt::rewrite_flow(*parsed, *pctx.deferred_rewrite);
      if (timed) {
        const std::uint64_t now = rt::rdtsc();
        if (account_cycles_) {
          const std::uint64_t d = now - t0;
          if (t_burst.owner == this) {
            t_burst.cyc_process += d;
            ++t_burst.cyc_packets;
          } else {
            cyc_process_.fetch_add(d, std::memory_order_relaxed);
            cyc_packets_.fetch_add(1, std::memory_order_relaxed);
          }
        }
        if (prof_here) {
          t_burst.prof_add(obs::ProfStage::kProcess, now - t_burst.prof_mark);
          t_burst.prof_mark = now;
        }
      }
      if (trace_id != 0) {
        span_event(registry_, obs::span_site_node(id_), trace_id,
                   obs::SpanKind::kProcess, rt::now_ns() - span_t0);
      }
    }
  }

  if (p->anno().is_control) {
    if (t_burst.owner == this) {
      ++t_burst.control_packets;
    } else {
      stats_.control_packets->inc();
    }
  } else if (t_burst.owner == this) {
    // Accumulate; worker_body flushes one meter/counter add per burst.
    ++t_burst.data_packets;
    t_burst.data_bytes += p->size();
  } else {
    meter_.add(1, p->size());
    stats_.packets_processed->inc();
  }

  // --- Phase D: emit. ---
  if (verdict == mbox::Verdict::kDrop) {
    // A filtering middlebox must not swallow in-flight state: its head
    // emits a propagating packet carrying the message (paper §5.1).
    stats_.drops_filtered->inc();
    pool_.free_raw(p);
    if (!msg.empty()) emit_propagating(std::move(msg));
    return;
  }
  const std::uint64_t tf0 = account_cycles_ ? rt::rdtsc() : 0;
  emit(p, std::move(msg));
  if (timed) {
    const std::uint64_t now = rt::rdtsc();
    if (account_cycles_) {
      const std::uint64_t d = now - tf0;
      if (t_burst.owner == this) {
        t_burst.cyc_forward += d;
      } else {
        cyc_forward_.fetch_add(d, std::memory_order_relaxed);
      }
    }
    if (prof_here) {
      t_burst.prof_add(obs::ProfStage::kAppend, now - t_burst.prof_mark);
      t_burst.prof_mark = now;
    }
  }
}

void FtcNode::emit(pkt::Packet* p, PiggybackMessage&& msg) {
  if (p->anno().trace_id != 0) {
    span_event(registry_, obs::span_site_node(id_), p->anno().trace_id,
               obs::SpanKind::kNodeEgress);
  }
  if (buffer_ != nullptr) {
    buffer_->submit(p, std::move(msg));
    return;
  }
  net::Port* out = out_link_.load(std::memory_order_acquire);
  if (out == nullptr) {
    pool_.free_raw(p);
    return;
  }
  if (SFC_UNLIKELY(!append_message(*p, msg, cfg_.num_partitions))) {
    // The message outgrew this packet's tailroom (paper: use jumbo
    // frames). Detour: ship the message on a dedicated propagating packet
    // and send the data packet with an empty message (which always fits).
    stats_.oversize_detours->inc();
    emit_propagating(std::move(msg));
    append_message(*p, PiggybackMessage{}, cfg_.num_partitions);
  }
  BurstScope& b = t_burst;
  if (b.owner == this && b.out == out && b.n_tx < kMaxBurst) {
    // Data-path burst in flight: stage; worker_body flushes the whole
    // burst with one send_burst.
    b.tx[b.n_tx++] = p;
    return;
  }
  send_now(out, p);
}

void FtcNode::send_now(net::Port* out, pkt::Packet* p) {
  if (out->send(p)) return;
  // Exclude backpressure waits from busy accounting: a full downstream
  // queue is the next stage's problem, not this stage's work.
  const std::uint64_t w0 = account_cycles_ ? rt::rdtsc() : 0;
  if (!out->send_blocking(p)) pool_.free_raw(p);
  if (account_cycles_) t_blocked_cycles += rt::rdtsc() - w0;
}

void FtcNode::emit_propagating(PiggybackMessage&& msg) {
  if (msg.empty()) return;
  pkt::Packet* p = Forwarder::make_propagating_packet(pool_);
  if (p == nullptr) return;  // Pool exhausted; commits will ride later packets.
  if (buffer_ != nullptr) {
    buffer_->submit(p, std::move(msg));
    return;
  }
  net::Port* out = out_link_.load(std::memory_order_acquire);
  if (out == nullptr || !append_message(*p, msg, cfg_.num_partitions)) {
    pool_.free_raw(p);
    return;
  }
  if (!out->send_blocking(p)) pool_.free_raw(p);
}

void FtcNode::drain_parked() {
  // Iterative and non-reentrant: finish_work() can cascade into further
  // processing, so a recursive drain could overflow the stack under loss.
  thread_local bool draining = false;
  if (draining) return;
  draining = true;

  for (;;) {
    std::vector<Work> candidates;
    {
      LockGuard lock(park_mutex_);
      if (parked_.empty()) break;
      candidates.swap(parked_);
      parked_size_.store(0, std::memory_order_release);
    }
    bool progress = false;
    std::vector<Work> still_blocked;
    for (auto& work : candidates) {
      const std::size_t before = work.next_log;
      if (apply_logs(work)) {
        const bool was_parked = work.parked_at_ns != 0;
        const MboxId unblocked = before < work.msg.logs.size()
                                     ? work.msg.logs[before].mbox
                                     : 0;
        if (was_parked && work.packet->anno().trace_id != 0) {
          span_event(registry_, obs::span_site_node(id_),
                     work.packet->anno().trace_id, obs::SpanKind::kUnpark,
                     rt::now_ns() - work.parked_at_ns);
        }
        finish_work(std::move(work));
        if (was_parked) {
          trace_->emit(obs::Event::kPacketUnparked, unblocked,
                       still_blocked.size());
        }
        progress = true;
      } else {
        progress = progress || work.next_log != before;
        still_blocked.push_back(std::move(work));
      }
    }
    if (!still_blocked.empty()) {
      LockGuard lock(park_mutex_);
      for (auto& work : still_blocked) parked_.push_back(std::move(work));
      parked_size_.store(parked_.size(), std::memory_order_release);
    }
    if (!progress) break;
  }
  draining = false;
}

void FtcNode::check_parked_timeouts() {
  const std::uint64_t now = rt::now_ns();
  // Adaptive parked-work timeout: when the ingress transport measures an
  // RTO, track it (a NACK round trip rides the same path as the data), but
  // clamp between the configured floor and the fixed legacy timeout as
  // ceiling. Raw links expose no estimate and keep the fixed value.
  std::uint64_t park_timeout = cfg_.retransmit_timeout_ns;
  if (net::Port* in = in_link_.load(std::memory_order_acquire)) {
    if (const std::uint64_t rto = in->rto_ns(); rto != 0) {
      park_timeout = std::clamp(rto, cfg_.retransmit_timeout_floor_ns,
                                cfg_.retransmit_timeout_ns);
    }
  }
  std::vector<MboxId> to_nack;
  {
    LockGuard lock(park_mutex_);
    for (const auto& w : parked_) {
      if (now - w.parked_at_ns < park_timeout) continue;
      if (w.next_log >= w.msg.logs.size()) continue;
      const MboxId blocked_on = w.msg.logs[w.next_log].mbox;
      auto& last = last_nack_ns_[blocked_on];
      if (now - last < cfg_.nack_min_gap_ns) continue;
      last = now;
      to_nack.push_back(blocked_on);
    }
  }
  for (MboxId mbox : to_nack) {
    InOrderApplier* a = applier(mbox);
    if (a == nullptr) continue;
    net::Message req;
    req.type = kNack;
    req.from = id_;
    req.to = ring_pred_id_.load(std::memory_order_acquire);
    req.tag = (static_cast<std::uint64_t>(id_) << 32) | mbox;
    put_u32(req.payload, mbox);
    put_max(req.payload, a->max());
    const net::NodeId target = req.to;
    ctrl_.send(std::move(req));
    stats_.nacks_sent->inc();
    trace_->emit(obs::Event::kNackSent, mbox, target);
  }
}

void FtcNode::handle_control() {
  while (auto msg = ctrl_.poll(id_)) {
    switch (msg->type) {
      case kPing: {
        net::Message pong;
        pong.type = kPong;
        pong.from = id_;
        pong.to = msg->from;
        pong.tag = msg->tag;
        ctrl_.send(std::move(pong));
        break;
      }
      case kNack:
        handle_nack(*msg);
        break;
      case kNackResp:
        handle_nack_resp(*msg);
        break;
      case kFetchReq:
        handle_fetch(*msg);
        break;
      case kInit:
        handle_init(*msg);
        break;
      default:
        break;
    }
  }
}

void FtcNode::handle_init(const net::Message& req) {
  // Orchestrator-initiated recovery (paper §5.2). Payload: list of
  // (mbox id, source node id). The control worker is the only consumer of
  // this node's inbox, so recover_from() can poll for responses inline.
  std::span<const std::uint8_t> in(req.payload);
  std::uint32_t count = 0;
  if (!take_u32(in, count)) return;
  std::vector<std::pair<MboxId, net::NodeId>> sources;
  for (std::uint32_t i = 0; i < count; ++i) {
    std::uint32_t mbox = 0, node = 0;
    if (!take_u32(in, mbox) || !take_u32(in, node)) return;
    sources.emplace_back(mbox, node);
  }
  // Acknowledge initialization before fetching so the orchestrator can
  // separate initialization delay from state recovery delay (Figure 13).
  net::Message ack;
  ack.type = kInitAck;
  ack.from = id_;
  ack.to = req.from;
  ack.tag = req.tag;
  ctrl_.send(std::move(ack));
  trace_->emit(obs::Event::kRecoveryInit, sources.size());

  const std::uint64_t fetch_start = rt::now_ns();
  const bool ok = recover_from(sources);
  const std::uint64_t fetch_ns = rt::now_ns() - fetch_start;
  trace_->emit(obs::Event::kRecoveryDone, ok ? 1 : 0);
  registry_->timer("node.recovery_fetch_ns").record(fetch_ns);

  net::Message done;
  done.type = kRecovered;
  done.from = id_;
  done.to = req.from;
  done.tag = req.tag;
  done.payload.push_back(ok ? 1 : 0);
  const auto* p = reinterpret_cast<const std::uint8_t*>(&fetch_ns);
  done.payload.insert(done.payload.end(), p, p + 8);
  ctrl_.send(std::move(done));
}

void FtcNode::handle_nack(const net::Message& req) {
  std::span<const std::uint8_t> in(req.payload);
  std::uint32_t mbox = 0;
  MaxVector from;
  if (!take_u32(in, mbox) || !take_max(in, from)) return;

  std::vector<PiggybackLog> logs;
  if (head_ != nullptr && mbox == position_) {
    logs = head_->history().logs_after(from);
  } else if (InOrderApplier* a = applier(mbox)) {
    logs = a->history().logs_after(from);
  }

  net::Message resp;
  resp.type = kNackResp;
  resp.from = id_;
  resp.to = req.from;
  resp.tag = req.tag;
  put_u32(resp.payload, mbox);
  const std::uint64_t shipped = logs.size();
  serialize_logs(logs, resp.payload);
  ctrl_.send(std::move(resp));
  stats_.nacks_served->inc();
  trace_->emit(obs::Event::kNackServed, mbox, shipped);
}

void FtcNode::handle_nack_resp(const net::Message& resp) {
  std::span<const std::uint8_t> in(resp.payload);
  std::uint32_t mbox = 0;
  std::vector<PiggybackLog> logs;
  if (!take_u32(in, mbox) || !deserialize_logs(in, logs)) return;
  InOrderApplier* a = applier(mbox);
  if (a == nullptr) return;
  std::uint64_t applied = 0;
  for (const auto& log : logs) {
    if (a->offer(log) == InOrderApplier::Offer::kApplied) {
      stats_.logs_applied->inc();
      ++applied;
    }
  }
  trace_->emit(obs::Event::kNackApplied, mbox, applied);
  // Shard mode: the replayed logs were routed into the owners' handoff
  // rings above; the unblocked parked packets must also re-run on a data
  // worker (their transactions are shard-owned), so leave the drain to the
  // workers' idle path instead of transacting from the control thread.
  if (handoff_mesh_ == nullptr) drain_parked();
}

void FtcNode::quiesce_and(const std::function<void()>& fn) {
  // seq_cst store pairs with the worker's announce-then-check (Dekker):
  // after the spin below observes active == 0, every worker either saw the
  // flag before touching anything or has fully left its iteration.
  quiesced_.store(true, std::memory_order_seq_cst);
  while (active_workers_.load(std::memory_order_acquire) != 0) {
    std::this_thread::yield();
  }
  if (handoff_mesh_ != nullptr) {
    // Workers are parked: write exclusivity transfers to this thread.
    // Flush in-flight cross-shard portions so fn() (serialization) sees a
    // consistent cut.
    for (std::uint32_t w = 0; w < shard_map_->num_workers(); ++w) {
      drain_handoff(w);
    }
  }
  fn();
  quiesced_.store(false, std::memory_order_release);
}

void FtcNode::handle_fetch(const net::Message& req) {
  std::span<const std::uint8_t> in(req.payload);
  std::uint32_t mbox = 0;
  if (!take_u32(in, mbox)) return;

  net::Message resp;
  resp.type = kFetchResp;
  resp.from = id_;
  resp.to = req.from;
  resp.tag = req.tag;
  put_u32(resp.payload, mbox);

  bool ok = false;
  // Paper §5.2: the fetch source stops admitting packets so the transfer
  // is a consistent cut; we quiesce the data workers for the serialization.
  quiesce_and([&] {
    std::vector<std::uint8_t> blob;
    if (head_ != nullptr && mbox == position_) {
      head_->serialize(blob);
      ok = true;
    } else if (InOrderApplier* a = applier(mbox)) {
      a->serialize(blob);
      ok = true;
    }
    put_u32(resp.payload, ok ? 1 : 0);
    resp.payload.insert(resp.payload.end(), blob.begin(), blob.end());
  });
  ctrl_.send(std::move(resp));
}

bool FtcNode::recover_from(
    const std::vector<std::pair<MboxId, net::NodeId>>& sources,
    std::uint64_t timeout_ns) {
  // All fetch requests are issued up front and responses collected as they
  // arrive, so the per-group transfers overlap on the wire — the parallel
  // fetch the paper credits for the replication factor's negligible impact
  // on recovery time (§7.5).
  struct Fetch {
    MboxId mbox;
    net::NodeId source;
    bool done{false};
    bool ok{false};
  };
  std::vector<Fetch> fetches;
  for (const auto& [mbox, source] : sources) {
    fetches.push_back(Fetch{mbox, source, false, false});
    net::Message req;
    req.type = kFetchReq;
    req.from = id_;
    req.to = source;
    req.tag = (static_cast<std::uint64_t>(id_) << 32) | (mbox + 1);
    put_u32(req.payload, mbox);
    ctrl_.send(std::move(req));
    trace_->emit(obs::Event::kRecoveryFetchStart, mbox, source);
    span_event(registry_, obs::span_site_node(id_),
               obs::recovery_trace_id(position_), obs::SpanKind::kFetchStart,
               mbox);
  }

  const std::uint64_t deadline = rt::now_ns() + timeout_ns;
  std::size_t outstanding = fetches.size();
  while (outstanding > 0 && rt::now_ns() < deadline) {
    auto msg = ctrl_.poll(id_);
    if (!msg) {
      std::this_thread::yield();
      continue;
    }
    if (msg->type != kFetchResp) continue;
    std::span<const std::uint8_t> in(msg->payload);
    std::uint32_t mbox = 0, ok = 0;
    if (!take_u32(in, mbox) || !take_u32(in, ok)) continue;
    for (auto& f : fetches) {
      if (f.mbox != mbox || f.done) continue;
      f.done = true;
      --outstanding;
      if (ok == 0) break;
      if (head_ != nullptr && mbox == position_) {
        f.ok = head_->deserialize(in);
      } else if (InOrderApplier* a = applier(mbox)) {
        f.ok = a->deserialize(in);
      }
      trace_->emit(obs::Event::kRecoveryFetchDone, mbox, f.ok ? 1 : 0);
      span_event(registry_, obs::span_site_node(id_),
                 obs::recovery_trace_id(position_), obs::SpanKind::kFetchDone,
                 mbox);
      break;
    }
  }

  bool all_ok = outstanding == 0;
  for (const auto& f : fetches) all_ok = all_ok && f.ok;
  return all_ok;
}

NodeStats FtcNode::stats() const { return stats_.snapshot(); }


FtcNode::CycleBreakdown FtcNode::cycle_breakdown() const {
  CycleBreakdown b;
  b.packets = cyc_packets_.load();
  b.process_cycles = cyc_process_.load();
  b.piggyback_cycles = cyc_piggyback_.load();
  b.forward_cycles = cyc_forward_.load();
  return b;
}

}  // namespace sfc::ftc
