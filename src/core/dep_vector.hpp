// Data dependency vectors (paper §4.3).
//
// The head tracks one sequence number per state partition; a transaction's
// piggyback log carries the post-increment sequence numbers of exactly the
// partitions it touched (read or written) and "don't-care" elsewhere. A
// replica keeps a MAX vector per replicated store: the latest log applied
// in order. A log is applicable when, for every touched partition, it is
// the immediate successor of MAX; logs over disjoint partitions can
// therefore be applied concurrently and in either order (the paper's
// partial order).
#pragma once

#include <array>
#include <bit>
#include <cstdint>

#include "state/state_store.hpp"

namespace sfc::ftc {

/// A dependency vector restricted to the touched partitions ("x" = bit
/// unset in mask = don't-care).
struct DepVector {
  std::uint64_t mask{0};
  std::array<std::uint64_t, state::kMaxPartitions> seq{};

  bool touches(std::size_t p) const noexcept { return mask & (1ULL << p); }

  friend bool operator==(const DepVector& a, const DepVector& b) noexcept {
    if (a.mask != b.mask) return false;
    for (std::size_t p = 0; p < state::kMaxPartitions; ++p) {
      if (a.touches(p) && a.seq[p] != b.seq[p]) return false;
    }
    return true;
  }
};

/// A full (no don't-care) vector: replica MAX or a tail's commit vector.
struct MaxVector {
  std::array<std::uint64_t, state::kMaxPartitions> seq{};

  /// Adopts the log's sequence numbers for its touched partitions.
  /// Iterates only the set mask bits: these run per log per replica.
  void advance(const DepVector& log) noexcept {
    for (std::uint64_t m = log.mask; m != 0; m &= m - 1) {
      const auto p = static_cast<std::size_t>(std::countr_zero(m));
      seq[p] = log.seq[p];
    }
  }

  /// Componentwise maximum (commit-vector merge at the buffer).
  void merge(const MaxVector& other,
             std::size_t partitions = state::kMaxPartitions) noexcept {
    for (std::size_t p = 0; p < partitions; ++p) {
      if (other.seq[p] > seq[p]) seq[p] = other.seq[p];
    }
  }

  /// True when every touched sequence number of @p log is <= ours, i.e.
  /// the log's transaction is already covered by this vector (buffer
  /// release test; also the duplicate test on the apply path).
  bool covers(const DepVector& log) const noexcept {
    for (std::uint64_t m = log.mask; m != 0; m &= m - 1) {
      const auto p = static_cast<std::size_t>(std::countr_zero(m));
      if (log.seq[p] > seq[p]) return false;
    }
    return true;
  }

  friend bool operator==(const MaxVector&, const MaxVector&) = default;
};

/// Classification of a piggyback log against a replica's MAX vector.
enum class LogFit : std::uint8_t {
  kApplicable,  ///< Every touched partition is the immediate successor.
  kDuplicate,   ///< Already applied (retransmission or merged duplicate).
  kFuture,      ///< A predecessor log is missing; hold.
};

inline LogFit classify(const MaxVector& max, const DepVector& log) noexcept {
  if (max.covers(log)) return LogFit::kDuplicate;
  for (std::uint64_t m = log.mask; m != 0; m &= m - 1) {
    const auto p = static_cast<std::size_t>(std::countr_zero(m));
    if (log.seq[p] != max.seq[p] + 1) return LogFit::kFuture;
  }
  return LogFit::kApplicable;
}

}  // namespace sfc::ftc
