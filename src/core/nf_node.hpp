// NF baseline node (paper §7.1's "NF"): a middlebox server with no fault
// tolerance. Packets are parsed, run through the packet transaction (the
// middlebox's normal locking discipline), and forwarded — no piggyback
// messages, no replication, no logging.
#pragma once

#include <algorithm>
#include <atomic>
#include <functional>
#include <memory>
#include <vector>

#include "base/mutex.hpp"
#include "core/config.hpp"
#include "mbox/middlebox.hpp"
#include "net/link.hpp"
#include "obs/span.hpp"
#include "packet/packet_pool.hpp"
#include "runtime/histogram.hpp"
#include "runtime/meter.hpp"
#include "runtime/worker.hpp"

namespace sfc::ftc {

class NfNode : rt::NonCopyable {
 public:
  /// @param registry Span sink lookup for sampled-packet tracing; tracing
  ///                 is off for this node when null. NF nodes have no
  ///                 NodeId, so the span site is derived from the position
  ///                 (unambiguous: an NF chain has no FTC nodes).
  NfNode(std::uint32_t position, const ChainConfig& cfg, pkt::PacketPool& pool,
         std::function<std::unique_ptr<mbox::Middlebox>()> factory,
         obs::Registry* registry = nullptr)
      : position_(position),
        cfg_(cfg),
        pool_(pool),
        registry_(registry),
        mbox_(factory ? factory() : nullptr),
        store_(cfg.num_partitions),
        txn_ctx_(store_) {
    if (registry_ != nullptr) {
      registry_->name_span_site(obs::span_site_node(position_),
                                "nf pos" + std::to_string(position_));
    }
    burst_size_ = std::clamp<std::size_t>(cfg.burst_size, 1, kMaxBurst);
    // Single-threaded NF baseline gets the same lock-free commit path as
    // the FTC head, so fig5/fig9 comparisons isolate protocol cost rather
    // than locking discipline.
    if (cfg.ownership == Ownership::kShardAffine && cfg.threads_per_node == 1) {
      store_.enable_shard_affine();
      txn_ctx_.enable_shard_affine();
    }
  }

  ~NfNode() { stop(); }

  void attach_data_path(net::Port* in, net::Port* out) {
    in_link_.store(in);
    out_link_.store(out);
  }

  void start();
  void stop() { workers_.clear(); }

  const rt::Meter& meter() const noexcept { return meter_; }

  void enable_cycle_accounting(bool on) noexcept { account_cycles_ = on; }
  /// Productive cycles per packet (excludes downstream backpressure).
  double busy_cycles_per_packet() const {
    LockGuard lock(busy_mutex_);
    // Median: per-sample rdtsc spans include preemption by the other
    // simulated servers timesharing this host; outliers of milliseconds
    // would swamp a mean of sub-microsecond sections.
    return busy_hist_.count() ? static_cast<double>(busy_hist_.p50()) : 0.0;
  }

  /// @param weight Packets covered by the (per-packet averaged) sample,
  ///               keeping the median packet-weighted under bursting.
  void record_busy(std::uint64_t cycles, std::uint64_t weight = 1) {
    LockGuard lock(busy_mutex_);
    busy_hist_.record_n(cycles, weight);
  }

  state::StateStore& store() noexcept { return store_; }
  mbox::Middlebox* middlebox() noexcept { return mbox_.get(); }
  std::uint64_t drops() const noexcept { return drops_.load(); }

 private:
  bool worker_body(std::uint32_t thread_id);
  /// Parse + transaction for one packet. Returns false when dropped.
  bool process_packet(pkt::Packet* p, std::uint32_t thread_id);

  const std::uint32_t position_;
  const ChainConfig& cfg_;
  pkt::PacketPool& pool_;
  obs::Registry* registry_{nullptr};
  std::unique_ptr<mbox::Middlebox> mbox_;
  state::StateStore store_;
  state::TxnContext txn_ctx_;

  std::atomic<net::Port*> in_link_{nullptr};
  std::atomic<net::Port*> out_link_{nullptr};
  std::vector<std::unique_ptr<rt::Worker>> workers_;
  rt::Meter meter_;
  std::atomic<std::uint64_t> drops_{0};
  std::size_t burst_size_{1};  ///< cfg.burst_size clamped to [1, kMaxBurst].
  bool account_cycles_{false};
  mutable Mutex busy_mutex_{ranks::kLeaf, "nf.busy_hist"};
  rt::Histogram busy_hist_ SFC_GUARDED_BY(busy_mutex_);
};

}  // namespace sfc::ftc
