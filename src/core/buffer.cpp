#include "core/buffer.hpp"

#include <algorithm>

#include "obs/span.hpp"
#include "runtime/clock.hpp"

namespace sfc::ftc {
namespace {

inline void span_event(obs::Registry* reg, std::uint64_t trace_id,
                       obs::SpanKind kind) noexcept {
  if (auto* sink = reg->span_sink()) {
    sink->record(obs::SpanRecord{trace_id, rt::now_ns(), 0,
                                 obs::kSpanSiteBuffer, kind});
  }
}

}  // namespace

EgressBuffer::EgressBuffer(pkt::PacketPool& pool, net::Port& egress,
                           FeedbackChannel& feedback, obs::Registry* registry)
    : pool_(pool), egress_(egress), feedback_(feedback) {
  if (registry == nullptr) {
    own_registry_ = std::make_unique<obs::Registry>();
    registry = own_registry_.get();
  }
  registry_ = registry;
  registry->name_span_site(obs::kSpanSiteBuffer, "egress-buffer");
  submitted_ = &registry->counter("buffer.submitted");
  released_ = &registry->counter("buffer.released");
  released_immediately_ = &registry->counter("buffer.released_immediately");
  control_consumed_ = &registry->counter("buffer.control_consumed");
  held_gauge_ = &registry->gauge("buffer.held");
  high_water_ = &registry->gauge("buffer.high_water");
}

BufferStats EgressBuffer::stats() const {
  BufferStats s;
  s.submitted = submitted_->value();
  s.released = released_->value();
  s.released_immediately = released_immediately_->value();
  s.control_consumed = control_consumed_->value();
  s.high_water = static_cast<std::uint64_t>(high_water_->value());
  return s;
}

bool EgressBuffer::is_covered(const Held& held) const {
  for (const auto& pending : held.pending) {
    const auto it = known_commits_.find(pending.mbox);
    if (it == known_commits_.end() || !it->second.covers(pending.dep)) {
      return false;
    }
  }
  return true;
}

void EgressBuffer::release_locked(Held& held) {
  if (held.packet->anno().trace_id != 0) {
    span_event(registry_, held.packet->anno().trace_id,
               obs::SpanKind::kBufferRelease);
  }
  release_stage_[n_stage_++] = held.packet;
  held.packet = nullptr;
  if (n_stage_ == kMaxBurst) flush_releases_locked();
}

void EgressBuffer::flush_releases_locked() {
  if (n_stage_ == 0) return;
  // The egress link is drained by the measurement sink; block rather than
  // lose a released packet. One bulk send covers the common case; only
  // stragglers (egress momentarily full) fall back to blocking sends.
  const std::size_t sent = egress_.send_burst({release_stage_, n_stage_});
  for (std::size_t i = sent; i < n_stage_; ++i) {
    egress_.send_blocking(release_stage_[i]);
  }
  released_->add(n_stage_);
  n_stage_ = 0;
}

void EgressBuffer::absorb(std::span<const CommitVector> commits) {
  LockGuard lock(mutex_);
  for (const auto& c : commits) {
    auto [it, inserted] = known_commits_.try_emplace(c.mbox, c.max);
    if (!inserted) it->second.merge(c.max);
  }
}

void EgressBuffer::submit(pkt::Packet* p, PiggybackMessage&& msg) {
  // Cache: the packet leaves our hands inside submit_core (freed for
  // control packets, sent for released ones).
  const bool is_control = p->anno().is_control;
  const std::uint64_t trace_id = p->anno().trace_id;
  std::vector<PendingLog> pending;
  if (!is_control) {
    pending.reserve(msg.logs.size());
    for (const auto& log : msg.logs) {
      pending.push_back(PendingLog{log.mbox, log.dep});
    }
  }
  submit_core(p, is_control, trace_id, {msg.commits.data(), msg.commits.size()},
              std::move(pending));

  // Commit vectors end their journey here (tail -> ... -> buffer, paper
  // §5.1); only logs still traveling toward their wrap-around tails feed
  // back to the forwarder. Dropping commits also terminates the idle
  // propagation loop: once every log is stripped at its tail, feedback
  // messages become empty.
  msg.commits.clear();
  if (!msg.empty()) feedback_.push(std::move(msg));
}

void EgressBuffer::submit_wire(pkt::Packet* p, PiggybackView& v) {
  const bool is_control = p->anno().is_control;
  const std::uint64_t trace_id = p->anno().trace_id;
  rt::SmallVector<CommitVector, 2> commits;
  std::vector<PendingLog> pending;
  PiggybackMessage feedback;
  if (v.ok()) {
    for (std::size_t i = 0; i < v.commit_count(); ++i) {
      CommitVector c;
      c.mbox = v.commit(i, c.max);
      commits.push_back(std::move(c));
    }
    const std::size_t n = v.log_count();
    if (!is_control && n != 0) pending.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      const WireLog log = v.log(i);
      if (!is_control) pending.push_back(PendingLog{log.mbox, log.dep});
      // Only surviving (wrap-around) logs pay a materialization: they
      // outlive the packet on the feedback channel.
      feedback.logs.push_back(materialize_log(log));
    }
    v.strip_tail();  // The packet leaves the chain bare.
  }
  submit_core(p, is_control, trace_id, {commits.data(), commits.size()},
              std::move(pending));
  if (!feedback.logs.empty()) feedback_.push(std::move(feedback));
}

void EgressBuffer::submit_core(pkt::Packet* p, bool is_control,
                               std::uint64_t trace_id,
                               std::span<const CommitVector> commits,
                               std::vector<PendingLog>&& pending) {
  LockGuard lock(mutex_);
  submitted_->inc();

  // Absorb the commit knowledge this packet carries.
  for (const auto& c : commits) {
    auto [it, inserted] = known_commits_.try_emplace(c.mbox, c.max);
    if (!inserted) it->second.merge(c.max);
  }

  if (is_control) {
    control_consumed_->inc();
    pool_.free_raw(p);
  } else {
    Held held{p, std::move(pending)};
    if (held.pending.empty() || is_covered(held)) {
      // Nothing outstanding (e.g. read-only path all along the chain, or
      // commits already caught up): release without holding.
      release_locked(held);
      released_immediately_->inc();
    } else {
      if (trace_id != 0) {
        span_event(registry_, trace_id, obs::SpanKind::kBufferHold);
      }
      held_.push_back(std::move(held));
      high_water_->set(std::max<std::int64_t>(
          high_water_->value(), static_cast<std::int64_t>(held_.size())));
    }
  }

  // Release the covered prefix. Commit vectors advance cumulatively per
  // partition and packets arrive roughly in commit order, so prefix
  // scanning is O(1) amortized where a full scan per submit would be
  // quadratic at saturation. A non-prefix-eligible hold is released at the
  // latest by the next commit for its partitions (or the periodic full
  // scan on control packets below).
  while (!held_.empty() && is_covered(held_.front())) {
    release_locked(held_.front());
    held_.pop_front();
  }
  if (is_control && ++full_scans_ % 4 == 0) {
    for (auto it = held_.begin(); it != held_.end();) {
      if (is_covered(*it)) {
        release_locked(*it);
        it = held_.erase(it);
      } else {
        ++it;
      }
    }
  }
  flush_releases_locked();
  held_gauge_->set(static_cast<std::int64_t>(held_.size()));
}

void EgressBuffer::release_eligible() {
  LockGuard lock(mutex_);
  for (auto it = held_.begin(); it != held_.end();) {
    if (is_covered(*it)) {
      release_locked(*it);
      it = held_.erase(it);
    } else {
      ++it;
    }
  }
  flush_releases_locked();
  held_gauge_->set(static_cast<std::int64_t>(held_.size()));
}

}  // namespace sfc::ftc
