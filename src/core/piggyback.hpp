// Piggyback message wire format (paper §4.1, §5.1, §6).
//
// FTC appends state updates to the packets themselves. A piggyback message
// is a list of piggyback logs (one per transaction still traveling toward
// its tail) plus a list of commit vectors (one per middlebox whose tail
// announces what has been f+1-replicated). The message lives in the
// packet's tailroom, after the wire bytes, terminated by a fixed footer so
// a replica can find it without tracking offsets — mirroring the paper's
// in-place append ("there is no need to actually strip and reattach it").
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/dep_vector.hpp"
#include "runtime/small_vector.hpp"
#include "state/txn.hpp"
#include "packet/packet.hpp"
#include "state/state_store.hpp"

namespace sfc::ftc {

using MboxId = std::uint32_t;

/// State updates of one packet transaction at one middlebox, tagged with
/// the dependency vector that orders it (paper Fig. 3).
struct PiggybackLog {
  MboxId mbox{0};
  DepVector dep{};
  state::WriteSet writes;

  friend bool operator==(const PiggybackLog&, const PiggybackLog&) = default;
};

/// A tail's announcement: everything up to `max` has been replicated f+1
/// times for middlebox `mbox` (paper §5.1's commit vector).
struct CommitVector {
  MboxId mbox{0};
  MaxVector max{};

  friend bool operator==(const CommitVector&, const CommitVector&) = default;
};

struct PiggybackMessage {
  rt::SmallVector<PiggybackLog, 2> logs;
  rt::SmallVector<CommitVector, 2> commits;

  bool empty() const noexcept { return logs.empty() && commits.empty(); }

  /// Appends/overwrites the commit vector for a middlebox (latest wins).
  void set_commit(MboxId mbox, const MaxVector& max);

  /// Returns the commit vector for @p mbox, if present.
  const MaxVector* find_commit(MboxId mbox) const noexcept;

  /// Removes all logs belonging to @p mbox (what a tail does).
  void strip_logs_of(MboxId mbox);

  /// Removes the commit vector of @p mbox (what the head does once the
  /// vector has traveled the full ring).
  void strip_commit_of(MboxId mbox);

  /// Merges another message into this one: logs are concatenated in order,
  /// commit vectors merged componentwise (used by the forwarder when
  /// several buffer hand-offs ride one ingress packet).
  void merge(PiggybackMessage&& other);

  friend bool operator==(const PiggybackMessage&, const PiggybackMessage&) =
      default;
};

/// Serialized size of @p msg with @p num_partitions-wide commit vectors
/// (including the footer).
std::size_t serialized_size(const PiggybackMessage& msg,
                            std::size_t num_partitions) noexcept;

/// Appends @p msg to the packet's tail. Returns false (packet untouched)
/// if the tailroom cannot hold it — the caller treats this as the
/// "piggyback message too large for the frame" condition the paper
/// resolves with jumbo frames.
bool append_message(pkt::Packet& p, const PiggybackMessage& msg,
                    std::size_t num_partitions);

/// True if the packet carries a piggyback message footer.
bool has_message(const pkt::Packet& p) noexcept;

/// Parses and removes the piggyback message from the packet tail.
/// Returns std::nullopt if no valid message is attached.
std::optional<PiggybackMessage> extract_message(pkt::Packet& p);

/// --- Out-of-band log serialization (retransmissions, state fetch). ---
void serialize_logs(std::span<const PiggybackLog> logs,
                    std::vector<std::uint8_t>& out);
bool deserialize_logs(std::span<const std::uint8_t>& in,
                      std::vector<PiggybackLog>& out);

}  // namespace sfc::ftc
