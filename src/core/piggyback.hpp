// Piggyback message wire format (paper §4.1, §5.1, §6).
//
// FTC appends state updates to the packets themselves. A piggyback message
// is a list of piggyback logs (one per transaction still traveling toward
// its tail) plus a list of commit vectors (one per middlebox whose tail
// announces what has been f+1-replicated). The message lives in the
// packet's tailroom, after the wire bytes, terminated by a fixed footer so
// a replica can find it without tracking offsets — mirroring the paper's
// in-place append ("there is no need to actually strip and reattach it").
#pragma once

#include <cstdint>
#include <cstring>
#include <optional>
#include <vector>

#include "core/dep_vector.hpp"
#include "runtime/small_vector.hpp"
#include "state/txn.hpp"
#include "packet/packet.hpp"
#include "state/state_store.hpp"

namespace sfc::ftc {

using MboxId = std::uint32_t;

/// --- Wire constants (shared by the serializer and the zero-copy view). ---
///
/// Footer: u32 body_len, u32 magic — fixed-size and last, so a receiver
/// finds the message without tracking offsets.
/// Body:   u16 log_count, u16 commit_count, u16 num_partitions, u16 reserved
///   logs:    u32 mbox; u64 mask; u64 seq[popcount(mask)];
///            u16 write_count; writes: u64 key, u16 len|0x8000(erase), bytes
///   commits: u32 mbox; u64 seq[num_partitions]
inline constexpr std::uint32_t kFooterMagic = 0x46544331;  // "FTC1"
inline constexpr std::size_t kFooterSize = 8;
inline constexpr std::size_t kWireHeaderSize = 8;
inline constexpr std::uint16_t kWireEraseFlag = 0x8000;
inline constexpr std::uint16_t kWireLenMask = 0x7fff;

/// State updates of one packet transaction at one middlebox, tagged with
/// the dependency vector that orders it (paper Fig. 3).
struct PiggybackLog {
  MboxId mbox{0};
  DepVector dep{};
  state::WriteSet writes;

  friend bool operator==(const PiggybackLog&, const PiggybackLog&) = default;
};

/// A tail's announcement: everything up to `max` has been replicated f+1
/// times for middlebox `mbox` (paper §5.1's commit vector).
struct CommitVector {
  MboxId mbox{0};
  MaxVector max{};

  friend bool operator==(const CommitVector&, const CommitVector&) = default;
};

struct PiggybackMessage {
  rt::SmallVector<PiggybackLog, 2> logs;
  rt::SmallVector<CommitVector, 2> commits;

  bool empty() const noexcept { return logs.empty() && commits.empty(); }

  /// Appends/overwrites the commit vector for a middlebox (latest wins).
  void set_commit(MboxId mbox, const MaxVector& max);

  /// Returns the commit vector for @p mbox, if present.
  const MaxVector* find_commit(MboxId mbox) const noexcept;

  /// Removes all logs belonging to @p mbox (what a tail does).
  void strip_logs_of(MboxId mbox);

  /// Removes the commit vector of @p mbox (what the head does once the
  /// vector has traveled the full ring).
  void strip_commit_of(MboxId mbox);

  /// Merges another message into this one: logs are concatenated in order,
  /// commit vectors merged componentwise (used by the forwarder when
  /// several buffer hand-offs ride one ingress packet).
  void merge(PiggybackMessage&& other);

  friend bool operator==(const PiggybackMessage&, const PiggybackMessage&) =
      default;
};

/// Serialized size of @p msg with @p num_partitions-wide commit vectors
/// (including the footer).
std::size_t serialized_size(const PiggybackMessage& msg,
                            std::size_t num_partitions) noexcept;

/// Appends @p msg to the packet's tail. Returns false (packet untouched)
/// if the tailroom cannot hold it — the caller treats this as the
/// "piggyback message too large for the frame" condition the paper
/// resolves with jumbo frames.
bool append_message(pkt::Packet& p, const PiggybackMessage& msg,
                    std::size_t num_partitions);

/// True if the packet carries a piggyback message footer.
bool has_message(const pkt::Packet& p) noexcept;

/// Parses and removes the piggyback message from the packet tail.
/// Returns std::nullopt if no valid message is attached.
std::optional<PiggybackMessage> extract_message(pkt::Packet& p);

/// --- Out-of-band log serialization (retransmissions, state fetch). ---
void serialize_logs(std::span<const PiggybackLog> logs,
                    std::vector<std::uint8_t>& out);
bool deserialize_logs(std::span<const std::uint8_t>& in,
                      std::vector<PiggybackLog>& out);

/// --- Zero-copy in-place processing (paper §5.1: "there is no need to
/// actually strip and reattach it"). ---

/// One log's header decoded off the wire, with cursors into the packet
/// tail for its write set. Valid only while the packet bytes it points
/// into stay alive and unmoved.
struct WireLog {
  MboxId mbox{0};
  DepVector dep{};
  const std::uint8_t* writes{nullptr};  ///< First serialized write.
  std::uint16_t write_count{0};
  std::uint32_t wire_size{0};  ///< Full size of this log record on the wire.
};

/// Calls fn(const state::WireUpdate&) for each write of @p log, values as
/// spans over the wire bytes. Bounds were validated when the owning view
/// was opened.
template <typename Fn>
void for_each_wire_write(const WireLog& log, Fn&& fn) {
  const std::uint8_t* p = log.writes;
  for (std::uint16_t i = 0; i < log.write_count; ++i) {
    std::uint64_t key = 0;
    std::uint16_t len_flags = 0;
    std::memcpy(&key, p, 8);
    std::memcpy(&len_flags, p + 8, 2);
    p += 10;
    const std::size_t len = len_flags & kWireLenMask;
    fn(state::WireUpdate{key, {p, len}, (len_flags & kWireEraseFlag) != 0});
    p += len;
  }
}

/// Copies one wire log into an owning PiggybackLog (history recording and
/// fallback paths, where the log must outlive the packet).
PiggybackLog materialize_log(const WireLog& log);

/// Zero-copy cursor over the piggyback message serialized in a packet's
/// tail. open() validates the whole message once — footer, header, every
/// log and write bound, the commit-region width — and records per-log
/// offsets, so iteration and mutation afterwards are bounds-check-free.
/// Mutators keep the packet bytes, the header/footer fields and the
/// internal offsets consistent; bytes of logs that are merely forwarded
/// are never touched. The view holds a pointer into the packet: it must
/// not outlive it, and any other tail mutation invalidates it.
class PiggybackView {
 public:
  PiggybackView() = default;

  /// Opens the message at the packet tail. The view is invalid (!ok())
  /// when no message is attached or the tail is malformed; open() never
  /// modifies the packet.
  static PiggybackView open(pkt::Packet& p) noexcept;

  /// Appends an empty message (header + footer) to a packet without one
  /// and opens it. Invalid view when the tailroom is short.
  static PiggybackView create(pkt::Packet& p, std::size_t num_partitions);

  bool ok() const noexcept { return p_ != nullptr; }
  std::size_t log_count() const noexcept { return log_off_.size(); }
  std::size_t commit_count() const noexcept { return commit_count_; }
  std::size_t num_partitions() const noexcept { return num_partitions_; }
  /// Bytes the message occupies at the packet tail (body + footer).
  std::size_t tail_size() const noexcept { return body_len_ + kFooterSize; }
  /// Packet bytes preceding the message (the wire frame a parser sees).
  std::size_t wire_size() const noexcept { return p_->size() - tail_size(); }

  /// Decodes log @p i's header; its writes stay on the wire.
  WireLog log(std::size_t i) const noexcept;
  bool has_logs_of(MboxId mbox) const noexcept;

  /// Decodes commit vector @p i into @p out (partitions beyond
  /// num_partitions() zero-filled, as extract_message does) and returns
  /// its mbox.
  MboxId commit(std::size_t i, MaxVector& out) const noexcept;

  /// Overwrites in place (fixed width per num_partitions) or appends the
  /// commit vector for @p mbox. Returns false — packet unmodified — when
  /// an append would not fit the tailroom.
  bool set_commit(MboxId mbox, const MaxVector& max);

  /// Serializes @p log at the end of the log region, shifting the commit
  /// region and footer up. Returns false (packet unmodified) when the
  /// tailroom cannot hold it.
  bool append_log(const PiggybackLog& log);

  /// Removes every log of @p mbox with one compacting pass over the log
  /// region; logs that stay are moved at most once and a message without
  /// logs of @p mbox is untouched. Returns the number removed.
  std::size_t strip_logs_of(MboxId mbox);

  /// Removes the whole message from the packet (buffer hand-off: packets
  /// leave the chain bare). The view is invalid afterwards.
  void strip_tail() noexcept;

 private:
  std::uint8_t* body() const noexcept { return p_->data() + body_off_; }
  std::size_t commit_entry_size() const noexcept {
    return 4 + 8 * static_cast<std::size_t>(num_partitions_);
  }
  /// Rewrites the header counts and the (possibly moved) footer.
  void sync_header_footer() noexcept;

  pkt::Packet* p_{nullptr};
  std::uint32_t body_off_{0};   ///< Offset of the body from packet data().
  std::uint32_t body_len_{0};
  std::uint32_t logs_end_{0};   ///< Body offset where the commit region starts.
  std::uint16_t commit_count_{0};
  std::uint16_t num_partitions_{0};
  rt::SmallVector<std::uint32_t, 8> log_off_;  ///< Per-log body offsets.
};

/// Frame length a parser should see for @p p: packet size minus a
/// syntactically plausible piggyback tail (footer peek only, no full
/// validation — parse_packet() stays inside the returned length either
/// way). Returns p.size() when no tail is attached.
std::size_t wire_size_hint(const pkt::Packet& p) noexcept;

}  // namespace sfc::ftc
