// Chain-level configuration shared by all runtime modes.
#pragma once

#include <cstddef>
#include <cstdint>

#include "net/link.hpp"
#include "net/reliable.hpp"

namespace sfc::ftc {

/// Which fault-tolerance machinery a chain runs with (paper §7.1).
enum class ChainMode : std::uint8_t {
  kNf,            ///< No fault tolerance (baseline "NF").
  kFtc,           ///< This paper's system.
  kFtmb,          ///< FTMB upper bound: PAL logging, no snapshots.
  kFtmbSnapshot,  ///< FTMB with simulated periodic snapshot stalls (Fig. 9).
};

constexpr const char* to_string(ChainMode m) noexcept {
  switch (m) {
    case ChainMode::kNf: return "NF";
    case ChainMode::kFtc: return "FTC";
    case ChainMode::kFtmb: return "FTMB";
    case ChainMode::kFtmbSnapshot: return "FTMB+Snapshot";
  }
  return "?";
}

/// Upper bound on the data-path burst size (rx/tx arrays live on worker
/// stacks; DPDK caps its burst the same way).
inline constexpr std::size_t kMaxBurst = 256;

/// What carries packets between chain segments.
enum class TransportMode : std::uint8_t {
  kRaw,       ///< Bare simulated links: wire loss is end-to-end loss.
  kReliable,  ///< net::ReliableChannel per segment: windowed, adaptive-RTO
              ///< retransmission hides wire loss from the chain.
};

constexpr const char* to_string(TransportMode t) noexcept {
  switch (t) {
    case TransportMode::kRaw: return "raw";
    case TransportMode::kReliable: return "reliable";
  }
  return "?";
}

/// State-store concurrency discipline.
enum class Ownership : std::uint8_t {
  kLocked,       ///< Wound-wait partition locks + applier MAX mutex
                 ///< everywhere (the PR-7 behavior; differential oracle).
  kShardAffine,  ///< Partition→worker ownership: owner-hit applies are
                 ///< lock-free single-writer, cross-shard writes go through
                 ///< SPSC handoff rings drained at burst boundaries.
};

constexpr const char* to_string(Ownership o) noexcept {
  switch (o) {
    case Ownership::kLocked: return "locked";
    case Ownership::kShardAffine: return "shard";
  }
  return "?";
}

struct ChainConfig {
  /// Failures tolerated: each middlebox's state is replicated on f+1
  /// servers along the chain.
  std::uint32_t f{1};

  /// Rx/tx burst size on the data path (Click/DPDK-style batching, the
  /// amortization the paper's 10 GbE line-rate numbers rely on): workers
  /// poll up to this many packets per iteration, hoist per-packet
  /// bookkeeping into per-burst accumulators, and stage egress into one
  /// bulk send. 1 = per-packet (pre-batching) behavior. Clamped to
  /// [1, kMaxBurst]. Protocol semantics are burst-invariant: parks, NACKs,
  /// and commit attach all operate per packet.
  std::size_t burst_size{32};

  /// State partitions per store (the paper picks this above the maximum
  /// core count to reduce lock contention). Power of two, <= 64.
  std::size_t num_partitions{16};

  /// Packet-processing threads per server.
  std::size_t threads_per_node{1};

  /// State concurrency model. Shard-affine is the default; appliers shard
  /// at any thread count, while the head store's transaction fast path
  /// engages only at threads_per_node == 1 (multi-threaded heads keep
  /// wound-wait 2PL, which IS the concurrency control there).
  Ownership ownership{Ownership::kShardAffine};

  /// Per-ring entry capacity of the cross-shard handoff mesh (shard-affine
  /// mode). A full target ring holds the whole log (all-or-nothing), so
  /// undersizing converts cross-shard bursts into parks, not corruption.
  std::size_t handoff_capacity{512};

  /// Shared packet pool size.
  std::size_t pool_packets{8192};

  /// Template for the inter-server data-plane links.
  net::LinkConfig link{};

  /// Segment transport: raw links or windowed reliable channels.
  TransportMode transport{TransportMode::kRaw};

  /// Window/RTO parameters when transport == kReliable.
  net::ReliableConfig reliable{};

  /// Forwarder emits a propagating packet when the chain has been idle
  /// this long and state dissemination is pending (paper §5.1).
  std::uint64_t propagate_interval_ns{200'000};

  /// A replica holding an out-of-order piggyback log this long requests a
  /// retransmission from its predecessor (paper §4.1). With a reliable
  /// transport underneath, the parked-work timeout instead tracks the
  /// channel's adaptive RTO; this fixed value then acts as the CEILING of
  /// the clamp (and remains the exact timeout on raw links).
  std::uint64_t retransmit_timeout_ns{3'000'000};

  /// Floor of the adaptive parked-work timeout clamp (only used when the
  /// ingress transport exposes an RTO estimate).
  std::uint64_t retransmit_timeout_floor_ns{200'000};

  /// Minimum spacing between retransmit requests for the same store.
  std::uint64_t nack_min_gap_ns{1'000'000};

  /// Maximum feedback messages the forwarder merges onto one packet.
  std::size_t forwarder_merge_limit{8};

  /// Retained piggyback logs per store for retransmission; pruned by
  /// commit vectors, bounded by this capacity.
  std::size_t history_capacity{65536};

  /// FTMB snapshot simulation (paper §7.4: 6 ms stall every 50 ms).
  std::uint64_t snapshot_interval_ns{50'000'000};
  std::uint64_t snapshot_stall_ns{6'000'000};

  /// Install the hot-path budget profiler (obs/prof) for this chain: every
  /// worker attributes per-packet cycles to pipeline stages and the chain
  /// exports a table2-style live budget through the registry. Off by
  /// default; the disabled data path pays one load + branch per
  /// instrumentation point.
  bool profile{false};

  /// Quiet mode: the profiler is installed and, once armed (after warmup,
  /// via HotProfiler::arm_quiet), any data-path allocation failure, pool
  /// free-retry, contended partition-lock or applier-mutex acquisition, or
  /// blocking-send retry is recorded as a steady-state violation. Implies
  /// `profile`.
  bool quiet_assert{false};
};

}  // namespace sfc::ftc
