// Egress buffer (paper §5).
//
// Holds packets leaving the chain until the state updates they carried for
// wrap-around middleboxes (those whose tail sits at the chain start) are
// known to be f+1-replicated, i.e. covered by commit vectors observed on
// later packets. Strips the piggyback message and forwards it to the
// forwarder via the feedback channel.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "base/mutex.hpp"
#include "core/config.hpp"
#include "core/forwarder.hpp"
#include "core/piggyback.hpp"
#include "net/link.hpp"
#include "obs/registry.hpp"

namespace sfc::ftc {

struct BufferStats {
  std::uint64_t submitted{0};
  std::uint64_t released{0};
  std::uint64_t released_immediately{0};
  std::uint64_t control_consumed{0};
  std::uint64_t high_water{0};
};

class EgressBuffer : rt::NonCopyable {
 public:
  /// @param egress  Link carrying released packets out of the chain.
  /// @param registry Metrics sink; a private registry is used when null.
  EgressBuffer(pkt::PacketPool& pool, net::Port& egress,
               FeedbackChannel& feedback, obs::Registry* registry = nullptr);

  /// Accepts a packet at the end of the chain with its final piggyback
  /// message. Consumes both. Control (propagating) packets deliver their
  /// commits and are freed.
  void submit(pkt::Packet* p, PiggybackMessage&& msg);

  /// submit() for the zero-copy path: commits and pending-log headers are
  /// read straight off the packet tail via @p v; only logs that must
  /// outlive the packet (the feedback hand-off to the forwarder) are
  /// materialized. The tail is stripped before the packet is held or
  /// released, so packets leave the chain bare exactly as on the legacy
  /// path. @p v may be invalid (packet without a message) and is consumed.
  void submit_wire(pkt::Packet* p, PiggybackView& v);

  /// Absorbs commit vectors into the buffer's release knowledge (also
  /// called by the egress node before message stripping).
  void absorb(std::span<const CommitVector> commits);

  /// Re-checks held packets against current commit knowledge (called on
  /// submit; exposed for drain paths).
  void release_eligible();

  BufferStats stats() const;

  std::size_t held_count() const {
    LockGuard lock(mutex_);
    return held_.size();
  }

 private:
  struct PendingLog {
    MboxId mbox;
    DepVector dep;
  };

  struct Held {
    pkt::Packet* packet;
    std::vector<PendingLog> pending;
  };

  bool is_covered(const Held& held) const SFC_REQUIRES(mutex_);
  /// Shared tail of submit()/submit_wire(): absorbs @p commits, holds or
  /// releases the (already bare) packet, runs the prefix/periodic release
  /// scans.
  void submit_core(pkt::Packet* p, bool is_control, std::uint64_t trace_id,
                   std::span<const CommitVector> commits,
                   std::vector<PendingLog>&& pending) SFC_EXCLUDES(mutex_);
  /// Stages @p held's packet for release; flush_releases_locked() ships the
  /// whole batch with one bulk send (releases within a submit/scan coalesce).
  void release_locked(Held& held) SFC_REQUIRES(mutex_);
  void flush_releases_locked() SFC_REQUIRES(mutex_);

  pkt::PacketPool& pool_;
  net::Port& egress_;
  FeedbackChannel& feedback_;
  obs::Registry* registry_{nullptr};  ///< Span sink lookup (never null).

  /// Node-level rank: flush_releases_locked() drives the egress Link /
  /// ReliableChannel (lower ranks) while this is held.
  mutable Mutex mutex_{ranks::kNode, "ftc.egress_buffer"};
  std::deque<Held> held_ SFC_GUARDED_BY(mutex_);
  std::unordered_map<MboxId, MaxVector> known_commits_ SFC_GUARDED_BY(mutex_);
  std::uint64_t full_scans_ SFC_GUARDED_BY(mutex_){0};

  // Release staging: packets released by the current submit/scan, shipped
  // in order with one send_burst.
  std::size_t n_stage_ SFC_GUARDED_BY(mutex_){0};
  pkt::Packet* release_stage_[kMaxBurst] SFC_GUARDED_BY(mutex_);

  std::unique_ptr<obs::Registry> own_registry_;
  obs::Counter* submitted_;
  obs::Counter* released_;
  obs::Counter* released_immediately_;
  obs::Counter* control_consumed_;
  obs::Gauge* held_gauge_;
  obs::Gauge* high_water_;
};

}  // namespace sfc::ftc
