// FTC server node (paper §5): one ring position of a fault-tolerant chain.
//
// Each node hosts
//   * the head store of its own middlebox (if this ring position carries a
//     middlebox — chains shorter than f+1 are extended with pure replica
//     positions, paper §5.1),
//   * in-order appliers for the f preceding middleboxes (this node is a
//     member of their replication groups and the *tail* of exactly one),
//   * the data-plane workers that per packet: apply piggybacked logs, do
//     tail duty (strip + commit vector), run the packet transaction,
//     append the new log, and forward,
//   * a control endpoint (heartbeats, retransmissions, state fetch).
//
// Ring position 0 additionally runs the Forwarder, the last position the
// EgressBuffer.
#pragma once

#include <array>
#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "base/mutex.hpp"
#include "core/buffer.hpp"
#include "core/config.hpp"
#include "core/forwarder.hpp"
#include "core/stores.hpp"
#include "mbox/middlebox.hpp"
#include "net/control.hpp"
#include "net/link.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "runtime/histogram.hpp"
#include "runtime/meter.hpp"
#include "runtime/worker.hpp"

namespace sfc::ftc {

/// Control-plane message types used by FTC nodes and the orchestrator.
enum CtrlMsg : std::uint32_t {
  kPing = 1,
  kPong,
  kNack,        ///< Retransmit request: payload = mbox id + MAX vector.
  kNackResp,    ///< Payload = mbox id + serialized logs.
  kFetchReq,    ///< State fetch: payload = mbox id.
  kFetchResp,   ///< Payload = mbox id + ok flag + store/MAX/history blob.
  kInit,        ///< Orchestrator -> new replica: begin recovery.
  kInitAck,
  kRecovered,   ///< New replica -> orchestrator: state recovery finished.
};

struct NodeStats {
  std::uint64_t packets_processed{0};
  std::uint64_t control_packets{0};
  std::uint64_t logs_applied{0};
  std::uint64_t logs_duplicate{0};
  std::uint64_t packets_parked{0};
  std::uint64_t nacks_sent{0};
  std::uint64_t nacks_served{0};
  std::uint64_t drops_filtered{0};
  std::uint64_t drops_unparseable{0};
  std::uint64_t oversize_detours{0};
};

/// The node's registry-backed counters. The hot path increments these
/// directly (relaxed atomics in the registry); stats() reads the same
/// cells, so there is no second bookkeeping copy.
struct NodeCounters {
  obs::Counter* packets_processed{nullptr};
  obs::Counter* control_packets{nullptr};
  obs::Counter* logs_applied{nullptr};
  obs::Counter* logs_duplicate{nullptr};
  obs::Counter* packets_parked{nullptr};
  obs::Counter* nacks_sent{nullptr};
  obs::Counter* nacks_served{nullptr};
  obs::Counter* drops_filtered{nullptr};
  obs::Counter* drops_unparseable{nullptr};
  obs::Counter* oversize_detours{nullptr};

  NodeStats snapshot() const {
    NodeStats s;
    s.packets_processed = packets_processed->value();
    s.control_packets = control_packets->value();
    s.logs_applied = logs_applied->value();
    s.logs_duplicate = logs_duplicate->value();
    s.packets_parked = packets_parked->value();
    s.nacks_sent = nacks_sent->value();
    s.nacks_served = nacks_served->value();
    s.drops_filtered = drops_filtered->value();
    s.drops_unparseable = drops_unparseable->value();
    s.oversize_detours = oversize_detours->value();
    return s;
  }
};

class FtcNode : rt::NonCopyable {
 public:
  using MboxFactory = std::function<std::unique_ptr<mbox::Middlebox>()>;

  struct Params {
    net::NodeId id{0};
    std::uint32_t position{0};    ///< Ring position.
    std::uint32_t ring_size{0};   ///< max(chain length, f+1).
    std::uint32_t num_mboxes{0};  ///< Real middleboxes (ring prefix).
    const ChainConfig* cfg{nullptr};
    pkt::PacketPool* pool{nullptr};
    net::ControlPlane* ctrl{nullptr};
    obs::Registry* registry{nullptr};  ///< Metrics/trace sink; a private
                                       ///< registry is used when null.
    MboxFactory mbox_factory;     ///< Empty for pure replica positions.
  };

  explicit FtcNode(Params params);
  ~FtcNode();

  // --- Wiring (done by the chain runtime / orchestrator). ---
  void attach_data_path(net::Port* in, net::Port* out);
  /// Makes this node the chain ingress. Also registers the head-ingress
  /// piggyback size histograms (the paper's Fig. 5 state-size axis).
  void set_forwarder(Forwarder* fwd);
  void set_buffer(EgressBuffer* buf) { buffer_ = buf; }
  /// Updates the ring predecessor (NACK target). A change clears the
  /// per-store NACK throttle state: the gap gate must not carry over to a
  /// freshly rerouted predecessor, or it would suppress the first
  /// legitimate NACK to a replacement node.
  void set_ring_pred(net::NodeId pred);

  /// Starts data workers and the control endpoint.
  void start();
  /// Starts only the control endpoint (a new replica before recovery).
  void start_control();
  /// Graceful stop (drains nothing; used at experiment teardown).
  void stop();
  /// Crash-stop failure (paper's fail-stop model): threads halt, state is
  /// lost, the control endpoint goes silent.
  void fail();
  bool has_failed() const noexcept { return failed_.load(); }

  // --- Recovery (paper §5.2), run on a fresh node. ---
  /// Fetches each store from @p sources (mbox id -> node currently holding
  /// that state): the head store from the ring successor, applier stores
  /// from the ring predecessor. Fetches run in parallel, one thread per
  /// replication group, mirroring the paper's control module.
  bool recover_from(const std::vector<std::pair<MboxId, net::NodeId>>& sources,
                    std::uint64_t timeout_ns = 5'000'000'000);

  // --- Introspection. ---
  net::NodeId id() const noexcept { return id_; }
  std::uint32_t position() const noexcept { return position_; }
  bool has_mbox() const noexcept { return head_ != nullptr; }
  HeadStore* head() noexcept { return head_.get(); }
  InOrderApplier* applier(MboxId mbox) noexcept;
  NodeStats stats() const;
  std::size_t parked_count() const {
    LockGuard lock(park_mutex_);
    return parked_.size();
  }
  /// Per-store NACK throttle entries currently held (tests assert a ring
  /// predecessor change clears them; see set_ring_pred).
  std::size_t nack_throttle_entries() const {
    LockGuard lock(park_mutex_);
    return last_nack_ns_.size();
  }
  /// Workers currently holding a polled burst (packets popped from the
  /// ingress link but not yet applied/forwarded). Those packets are in no
  /// link queue, so quiescence checks must consult this too: a burst in a
  /// worker's hands can carry logs its successors have not applied yet.
  std::uint32_t bursts_in_flight() const noexcept {
    return bursts_in_flight_.load(std::memory_order_acquire);
  }
  /// True while any cross-shard handoff ring holds an un-drained portion
  /// (shard-affine mode). Quiescence checks must consult this: an enqueued
  /// portion's log counted as applied at classification but its writes
  /// reach the store only at the owner's drain.
  bool handoff_pending() const noexcept {
    return handoff_mesh_ != nullptr &&
           (!handoff_mesh_->empty() ||
            handoff_deferred_count_.load(std::memory_order_acquire) != 0);
  }
  /// This node's protocol event trace (park/NACK/recovery transitions).
  const obs::EventTrace& trace() const noexcept { return *trace_; }
  const rt::Meter& meter() const noexcept { return meter_; }
  mbox::Middlebox* middlebox() noexcept { return mbox_.get(); }

  /// Ring position this node is the tail for (or ring_size if none).
  std::uint32_t tail_of() const noexcept;

  /// Per-packet cycle accounting for the Table-2 breakdown benchmark.
  struct CycleBreakdown {
    std::uint64_t packets{0};
    std::uint64_t process_cycles{0};   ///< Packet transaction execution.
    std::uint64_t piggyback_cycles{0}; ///< Extract/apply/append messages.
    std::uint64_t forward_cycles{0};
  };
  CycleBreakdown cycle_breakdown() const;
  void enable_cycle_accounting(bool on) noexcept { account_cycles_ = on; }

  /// Productive CPU time per packet (cycles), excluding time blocked on a
  /// full downstream queue. Used by the pipeline-throughput metric: on a
  /// timeshared host, the throughput a real one-server-per-stage
  /// deployment would reach is 1 / max over stages of this cost.
  double busy_cycles_per_packet() const {
    LockGuard lock(busy_mutex_);
    // Median: per-sample rdtsc spans include preemption by the other
    // simulated servers timesharing this host; outliers of milliseconds
    // would swamp a mean of sub-microsecond sections.
    return busy_hist_.count() ? static_cast<double>(busy_hist_.p50()) : 0.0;
  }

  /// @param weight Number of packets the (per-packet averaged) sample
  ///               covers: a full burst contributes one sample per packet,
  ///               so the median is packet-weighted, not burst-weighted.
  void record_busy(std::uint64_t cycles, std::uint64_t weight = 1) {
    LockGuard lock(busy_mutex_);
    busy_hist_.record_n(cycles, weight);
  }

 private:
  struct Work {
    pkt::Packet* packet{nullptr};
    PiggybackMessage msg;
    std::size_t next_log{0};
    std::uint64_t parked_at_ns{0};
    std::uint32_t thread_id{0};
  };

  /// Sentinel for ViewWork::held_at: no log of this packet is held.
  static constexpr std::uint32_t kNoHeldLog = ~0U;

  /// Per-packet state of the zero-copy burst path: the opened tail view
  /// plus the message-order index of the first log that stayed held after
  /// the burst apply (such packets fall back to the materializing
  /// park/drain machinery).
  struct ViewWork {
    PiggybackView view;
    std::uint32_t held_at{kNoHeldLog};
  };

  bool worker_body(std::uint32_t thread_id);
  /// Runs one received packet through the pipeline (head / legacy burst
  /// loop body; non-head bursts take apply_logs_burst + process_view).
  void ingest_packet(pkt::Packet* p, std::uint32_t thread_id);
  /// Phase A over a whole rx burst of tail views: logs are grouped per
  /// applier so each MAX mutex and each touched store partition is taken
  /// once per burst, and applicable writes are copied straight from the
  /// wire. Marks packets with still-held logs in @p vw.
  void apply_logs_burst(ViewWork* vw, std::size_t n);
  /// Phases B-D on the packet tail in place. Falls back to the
  /// materializing path when a log is held or the tailroom runs out.
  void process_view(pkt::Packet* p, ViewWork& vw, std::uint32_t thread_id);
  void process_work(Work&& work);
  /// Phase A: applies piggyback logs in order. Returns false when blocked
  /// on a missing predecessor log (the caller parks the work).
  bool apply_logs(Work& work);
  void park(Work&& work);
  /// Phases B-D.
  void finish_work(Work&& work);
  void emit(pkt::Packet* p, PiggybackMessage&& msg);
  /// Immediate (non-staged) send with blocked-cycle accounting.
  void send_now(net::Port* out, pkt::Packet* p);
  void emit_propagating(PiggybackMessage&& msg);
  void drain_parked();
  /// Applies every handoff entry queued for worker @p thread_id's shard.
  /// Returns entries consumed. Owner-only (or control under quiesce).
  std::size_t drain_handoff(std::uint32_t thread_id);
  void check_parked_timeouts();
  void handle_control();
  void handle_init(const net::Message& req);
  void handle_fetch(const net::Message& req);
  void handle_nack(const net::Message& req);
  void handle_nack_resp(const net::Message& resp);
  bool replicates(MboxId mbox) const noexcept;
  void quiesce_and(const std::function<void()>& fn);

  // Identity / topology.
  const net::NodeId id_;
  const std::uint32_t position_;
  const std::uint32_t ring_size_;
  const std::uint32_t num_mboxes_;
  const ChainConfig& cfg_;
  pkt::PacketPool& pool_;
  net::ControlPlane& ctrl_;
  std::atomic<net::NodeId> ring_pred_id_{0};

  // Data path.
  std::atomic<net::Port*> in_link_{nullptr};
  std::atomic<net::Port*> out_link_{nullptr};
  Forwarder* forwarder_{nullptr};
  EgressBuffer* buffer_{nullptr};

  // State.
  std::unique_ptr<mbox::Middlebox> mbox_;
  std::unique_ptr<HeadStore> head_;
  std::map<MboxId, std::unique_ptr<InOrderApplier>> appliers_;

  // Shard-affine mode (cfg.ownership): partition→worker ownership map and
  // the SPSC handoff mesh carrying cross-shard portions to their owner.
  // Null in locked mode (and when threads_per_node exceeds the shard cap).
  std::unique_ptr<state::ShardMap> shard_map_;
  std::unique_ptr<StateHandoffMesh> handoff_mesh_;
  /// Per-owner parking lot for drained handoff entries whose predecessor
  /// seq sits in another producer's ring (rings are FIFO per producer, not
  /// across producers). Each element is touched only by its owning worker
  /// (or by control under quiesce); the atomic count feeds quiescence.
  std::array<std::vector<StateHandoff>, state::ShardMap::kMaxWorkers>
      handoff_deferred_;
  std::atomic<std::size_t> handoff_deferred_count_{0};

  // Hot-path caches, resolved once in the constructor (appliers_ is
  // immutable after construction): applier() walks this flat array (at
  // most f entries, usually one) instead of the std::map, and tail duty
  // skips the per-packet tail_of() + lookup.
  std::vector<std::pair<MboxId, InOrderApplier*>> applier_cache_;
  std::uint32_t tail_mbox_{0};               ///< == ring_size_ if none.
  InOrderApplier* tail_applier_{nullptr};
  std::size_t burst_size_{1};                ///< cfg clamp to [1, kMaxBurst].

  // Tail duty: applied-count at the last commit-vector attach.
  std::atomic<std::uint64_t> last_commit_attach_{~0ULL};

  // Parked packets awaiting missing piggyback logs. Node rank: held only
  // for container manipulation, but the registry's snapshot callbacks take
  // it (parked_count), so it must rank below obs.registry.
  mutable Mutex park_mutex_{ranks::kNode, "node.park"};
  std::vector<Work> parked_ SFC_GUARDED_BY(park_mutex_);
  std::map<MboxId, std::uint64_t> last_nack_ns_ SFC_GUARDED_BY(park_mutex_);
  /// Mirror of parked_.size(), updated under park_mutex_, read lock-free
  /// by idle data workers: in shard mode the control thread must not run
  /// drain_parked (its transactions would dodge shard ownership), so
  /// workers poll this to pick up control-replayed unblocks.
  std::atomic<std::size_t> parked_size_{0};

  // Threads.
  std::vector<std::unique_ptr<rt::Worker>> workers_;
  std::unique_ptr<rt::Worker> control_worker_;
  std::atomic<bool> failed_{false};
  std::atomic<bool> quiesced_{false};
  std::atomic<int> active_workers_{0};
  std::atomic<std::uint32_t> bursts_in_flight_{0};

  // Stats / observability.
  rt::Meter meter_;
  std::unique_ptr<obs::Registry> own_registry_;
  obs::Registry* registry_{nullptr};
  NodeCounters stats_;
  obs::EventTrace* trace_{nullptr};
  bool account_cycles_{false};
  mutable Mutex busy_mutex_{ranks::kLeaf, "node.busy_hist"};
  rt::Histogram busy_hist_ SFC_GUARDED_BY(busy_mutex_);
  // Head-ingress piggyback size distributions (registered lazily by
  // set_forwarder; only the chain ingress records them).
  bool pb_hists_registered_{false};
  mutable Mutex pb_mutex_{ranks::kLeaf, "node.pb_hist"};
  rt::Histogram pb_bytes_hist_ SFC_GUARDED_BY(pb_mutex_);
  rt::Histogram pb_logs_hist_ SFC_GUARDED_BY(pb_mutex_);
  std::atomic<std::uint64_t> cyc_packets_{0};
  std::atomic<std::uint64_t> cyc_process_{0};
  std::atomic<std::uint64_t> cyc_piggyback_{0};
  std::atomic<std::uint64_t> cyc_forward_{0};
};

}  // namespace sfc::ftc
