#include "core/nf_node.hpp"

#include "packet/packet_io.hpp"
#include "runtime/clock.hpp"

namespace sfc::ftc {
namespace {

inline void span_event(obs::Registry* reg, std::uint32_t site,
                       std::uint64_t trace_id, obs::SpanKind kind,
                       std::uint64_t a = 0) noexcept {
  if (auto* sink = reg->span_sink()) {
    sink->record(obs::SpanRecord{trace_id, rt::now_ns(), a, site, kind});
  }
}

}  // namespace

void NfNode::start() {
  for (std::size_t t = 0; t < cfg_.threads_per_node; ++t) {
    auto worker = std::make_unique<rt::Worker>();
    worker->start(
        "nf-node-" + std::to_string(position_) + "-t" + std::to_string(t),
        [this, t] { return worker_body(static_cast<std::uint32_t>(t)); });
    workers_.push_back(std::move(worker));
  }
}

bool NfNode::worker_body(std::uint32_t thread_id) {
  net::Link* in = in_link_.load(std::memory_order_acquire);
  if (in == nullptr) return false;
  pkt::Packet* p = in->poll();
  if (p == nullptr) return false;
  const bool traced = p->anno().trace_id != 0 && registry_ != nullptr;
  if (traced) {
    span_event(registry_, obs::span_site_node(position_), p->anno().trace_id,
               obs::SpanKind::kNodeIngress, position_);
  }
  const std::uint64_t b0 = account_cycles_ ? rt::rdtsc() : 0;

  mbox::Verdict verdict = mbox::Verdict::kForward;
  if (mbox_ != nullptr && !p->anno().is_control) {
    auto parsed = pkt::parse_packet(*p);
    if (!parsed) {
      verdict = mbox::Verdict::kDrop;
    } else {
      const std::uint64_t span_t0 = traced ? rt::now_ns() : 0;
      mbox::ProcessContext pctx;
      pctx.thread_id = thread_id;
      pctx.num_threads = static_cast<std::uint32_t>(cfg_.threads_per_node);
      if (mbox_->stateless()) {
        verdict = mbox_->process_stateless(*p, *parsed, pctx);
      } else {
        state::run_transaction(txn_ctx_, [&](state::Txn& txn) {
          pctx.deferred_rewrite.reset();
          verdict = mbox_->process(txn, *p, *parsed, pctx);
        });
      }
      if (pctx.deferred_rewrite) pkt::rewrite_flow(*parsed, *pctx.deferred_rewrite);
      if (traced) {
        span_event(registry_, obs::span_site_node(position_),
                   p->anno().trace_id, obs::SpanKind::kProcess,
                   rt::now_ns() - span_t0);
      }
    }
  }

  if (verdict == mbox::Verdict::kDrop) {
    drops_.fetch_add(1, std::memory_order_relaxed);
    pool_.free_raw(p);
    return true;
  }
  meter_.add(1, p->size());
  if (traced) {
    span_event(registry_, obs::span_site_node(position_), p->anno().trace_id,
               obs::SpanKind::kNodeEgress);
  }
  net::Link* out = out_link_.load(std::memory_order_acquire);
  if (account_cycles_) {
    // Account productive work only; downstream backpressure is excluded.
    record_busy(rt::rdtsc() - b0);
  }
  if (out == nullptr || !out->send_blocking(p)) pool_.free_raw(p);
  return true;
}

}  // namespace sfc::ftc
