#include "core/nf_node.hpp"

#include "core/piggyback.hpp"
#include "obs/prof.hpp"
#include "packet/packet_io.hpp"
#include "runtime/clock.hpp"

namespace sfc::ftc {
namespace {

inline void span_event(obs::Registry* reg, std::uint32_t site,
                       std::uint64_t trace_id, obs::SpanKind kind,
                       std::uint64_t a = 0) noexcept {
  if (auto* sink = reg->span_sink()) {
    sink->record(obs::SpanRecord{trace_id, rt::now_ns(), a, site, kind});
  }
}

}  // namespace

void NfNode::start() {
  // Rebind the shard-affine transaction fast path to the new worker thread.
  txn_ctx_.reset_owner();
  for (std::size_t t = 0; t < cfg_.threads_per_node; ++t) {
    auto worker = std::make_unique<rt::Worker>();
    worker->start(
        "nf-node-" + std::to_string(position_) + "-t" + std::to_string(t),
        [this, t] { return worker_body(static_cast<std::uint32_t>(t)); });
    workers_.push_back(std::move(worker));
  }
}

bool NfNode::worker_body(std::uint32_t thread_id) {
  net::Port* in = in_link_.load(std::memory_order_acquire);
  if (in == nullptr) return false;
  pkt::Packet* rx[kMaxBurst];
  // Budget profiler gate (obs/prof): one load + branch when disabled.
  obs::ProfSlot* slot = nullptr;
  if (obs::HotProfiler* hp = obs::hot_profiler(); SFC_UNLIKELY(hp != nullptr)) {
    slot = hp->maybe_slot();
    if (slot == nullptr) {
      slot = hp->thread_slot("nf-node-" + std::to_string(position_) + "-t" +
                             std::to_string(thread_id));
    }
  }
  const std::uint64_t pp0 = slot != nullptr ? rt::rdtsc() : 0;
  const std::size_t got = in->poll_burst(rx, burst_size_);
  if (got == 0) return false;
  const std::uint64_t poll_end = slot != nullptr ? rt::rdtsc() : 0;
  if (slot != nullptr) slot->add(obs::ProfStage::kPoll, poll_end - pp0, got);
  const std::uint64_t b0 = account_cycles_ ? rt::rdtsc() : 0;

  // Forwarded packets are staged and flushed with one send_burst; meter
  // updates coalesce to one add per burst.
  pkt::Packet* tx[kMaxBurst];
  std::size_t n_tx = 0;
  std::uint64_t fwd_bytes = 0;
  std::uint64_t dropped = 0;
  for (std::size_t i = 0; i < got; ++i) {
    if (process_packet(rx[i], thread_id)) {
      fwd_bytes += rx[i]->size();
      tx[n_tx++] = rx[i];
    } else {
      ++dropped;
    }
  }
  if (dropped != 0) drops_.fetch_add(dropped, std::memory_order_relaxed);
  if (n_tx != 0) meter_.add(n_tx, fwd_bytes);
  if (account_cycles_) {
    // Account productive work only (per-packet average; downstream
    // backpressure in the flush below is excluded).
    record_busy((rt::rdtsc() - b0) / got, got);
  }
  const std::uint64_t proc_end = slot != nullptr ? rt::rdtsc() : 0;
  if (slot != nullptr) {
    slot->add(obs::ProfStage::kProcess, proc_end - poll_end, got);
  }
  net::Port* out = out_link_.load(std::memory_order_acquire);
  if (out != nullptr) {
    const std::size_t sent = out->send_burst({tx, n_tx});
    for (std::size_t i = sent; i < n_tx; ++i) {
      if (!out->send_blocking(tx[i])) pool_.free_raw(tx[i]);
    }
  } else {
    for (std::size_t i = 0; i < n_tx; ++i) pool_.free_raw(tx[i]);
  }
  if (slot != nullptr) {
    const std::uint64_t end = rt::rdtsc();
    slot->add(obs::ProfStage::kEgressFlush, end - proc_end, got);
    slot->packets.fetch_add(got, std::memory_order_relaxed);
    slot->bursts.fetch_add(1, std::memory_order_relaxed);
    slot->wall_cycles.fetch_add(end - pp0, std::memory_order_relaxed);
  }
  return true;
}

bool NfNode::process_packet(pkt::Packet* p, std::uint32_t thread_id) {
  const bool traced = p->anno().trace_id != 0 && registry_ != nullptr;
  if (traced) {
    span_event(registry_, obs::span_site_node(position_), p->anno().trace_id,
               obs::SpanKind::kNodeIngress, position_);
  }

  mbox::Verdict verdict = mbox::Verdict::kForward;
  if (mbox_ != nullptr && !p->anno().is_control) {
    // Packets replayed from FTC captures may still carry a piggyback tail;
    // hide it from the middlebox exactly as the FTC data path does.
    auto parsed = pkt::parse_packet(*p, wire_size_hint(*p));
    if (!parsed) {
      verdict = mbox::Verdict::kDrop;
    } else {
      const std::uint64_t span_t0 = traced ? rt::now_ns() : 0;
      mbox::ProcessContext pctx;
      pctx.thread_id = thread_id;
      pctx.num_threads = static_cast<std::uint32_t>(cfg_.threads_per_node);
      if (mbox_->stateless()) {
        verdict = mbox_->process_stateless(*p, *parsed, pctx);
      } else {
        state::run_transaction(txn_ctx_, [&](state::Txn& txn) {
          pctx.deferred_rewrite.reset();
          verdict = mbox_->process(txn, *p, *parsed, pctx);
        });
      }
      if (pctx.deferred_rewrite) pkt::rewrite_flow(*parsed, *pctx.deferred_rewrite);
      if (traced) {
        span_event(registry_, obs::span_site_node(position_),
                   p->anno().trace_id, obs::SpanKind::kProcess,
                   rt::now_ns() - span_t0);
      }
    }
  }

  if (verdict == mbox::Verdict::kDrop) {
    pool_.free_raw(p);
    return false;
  }
  if (traced) {
    span_event(registry_, obs::span_site_node(position_), p->anno().trace_id,
               obs::SpanKind::kNodeEgress);
  }
  return true;
}

}  // namespace sfc::ftc
