// Per-server replication state: the head store (the middlebox's own state
// plus transaction machinery and the log history used to serve
// retransmissions) and in-order appliers (one per predecessor middlebox
// this server replicates).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <span>
#include <vector>

#include "base/mutex.hpp"
#include "core/config.hpp"
#include "core/dep_vector.hpp"
#include "core/piggyback.hpp"
#include "state/txn.hpp"

namespace sfc::ftc {

/// Bounded per-store history of piggyback logs, kept for retransmission to
/// successors; pruned by commit vectors (paper §4.1/§5.1) and bounded by
/// capacity as a backstop for group members that never see the commit.
class LogHistory {
 public:
  explicit LogHistory(std::size_t capacity) : capacity_(capacity) {}

  void record(const PiggybackLog& log) {
    LockGuard lock(mutex_);
    logs_.push_back(log);
    if (logs_.size() > capacity_) logs_.pop_front();
  }

  void record(PiggybackLog&& log) {
    LockGuard lock(mutex_);
    logs_.push_back(std::move(log));
    if (logs_.size() > capacity_) logs_.pop_front();
  }

  /// Drops every log covered by @p commit.
  void prune(const MaxVector& commit) {
    LockGuard lock(mutex_);
    while (!logs_.empty() && commit.covers(logs_.front().dep)) {
      logs_.pop_front();
    }
  }

  /// Logs not yet covered by @p from, in order (the retransmission body).
  std::vector<PiggybackLog> logs_after(const MaxVector& from) const {
    LockGuard lock(mutex_);
    std::vector<PiggybackLog> out;
    for (const auto& log : logs_) {
      if (!from.covers(log.dep)) out.push_back(log);
    }
    return out;
  }

  std::size_t size() const {
    LockGuard lock(mutex_);
    return logs_.size();
  }

 private:
  const std::size_t capacity_;
  mutable Mutex mutex_{ranks::kLeaf, "ftc.log_history"};
  std::deque<PiggybackLog> logs_ SFC_GUARDED_BY(mutex_);
};

/// The head side of one middlebox's replication group (paper §4.1): the
/// authoritative store, the transactional runtime, and the history of logs
/// this head has emitted.
class HeadStore : rt::NonCopyable {
 public:
  HeadStore(MboxId mbox, const ChainConfig& cfg)
      : mbox_(mbox),
        store_(cfg.num_partitions),
        txn_ctx_(store_),
        history_(cfg.history_capacity) {}

  MboxId mbox() const noexcept { return mbox_; }
  state::StateStore& store() noexcept { return store_; }
  state::TxnContext& txn_ctx() noexcept { return txn_ctx_; }

  /// Converts a committed transaction into this middlebox's piggyback log
  /// and records it for retransmission.
  PiggybackLog make_log(state::TxnRecord&& record) {
    PiggybackLog log;
    log.mbox = mbox_;
    log.dep.mask = record.touched_mask;
    log.dep.seq = record.seqs;
    log.writes = std::move(record.writes);
    history_.record(log);
    return log;
  }

  void prune(const MaxVector& commit) { history_.prune(commit); }

  LogHistory& history() noexcept { return history_; }

  /// Serializes store + dependency vector for failover transfer. Only
  /// called on a quiesced store (the source has stopped admitting
  /// packets).
  void serialize(std::vector<std::uint8_t>& out);
  bool deserialize(std::span<const std::uint8_t> in);

 private:
  MboxId mbox_;
  state::StateStore store_;
  state::TxnContext txn_ctx_;
  LogHistory history_;
};

/// The replica side: applies piggyback logs to a local store in the
/// partial order defined by dependency vectors (paper §4.3, Fig. 3).
class InOrderApplier : rt::NonCopyable {
 public:
  InOrderApplier(MboxId mbox, const ChainConfig& cfg)
      : mbox_(mbox),
        store_(cfg.num_partitions),
        history_(cfg.history_capacity) {}

  MboxId mbox() const noexcept { return mbox_; }
  state::StateStore& store() noexcept { return store_; }

  enum class Offer : std::uint8_t { kApplied, kDuplicate, kHeld };

  /// Attempts to apply @p log. kHeld means a predecessor log is missing
  /// (the caller parks the packet). Applied logs are recorded in the
  /// history for retransmission to this replica's own successor.
  Offer offer(const PiggybackLog& log);

  /// Wire-path offer(): classifies a whole burst's logs (cursors into
  /// packet bytes, in arrival order) under one MAX-mutex acquisition and
  /// copies every applicable write straight from the wire into the store
  /// with one partition-lock round — each touched partition is locked
  /// once per burst instead of once per log. Writes one Offer per log
  /// into @p results. Logs of held packets stay unapplied (kHeld) and are
  /// re-offered by the caller's park/drain machinery.
  void offer_burst(std::span<const WireLog> logs, Offer* results);

  /// Single-log wire offer (held-log retry path).
  Offer offer_wire(const WireLog& log) {
    Offer r = Offer::kHeld;
    offer_burst({&log, 1}, &r);
    return r;
  }

  /// Current MAX vector (the tail's commit vector when this replica is the
  /// tail of its group).
  MaxVector max() const {
    LockGuard lock(mutex_);
    return max_;
  }

  void prune(const MaxVector& commit) { history_.prune(commit); }

  LogHistory& history() noexcept { return history_; }

  /// Count of successfully applied logs (version counter used by parked-
  /// packet wakeup).
  std::uint64_t applied_count() const noexcept {
    return applied_.load(std::memory_order_acquire);
  }

  /// Serializes store + MAX for failover transfer (quiesced source only).
  void serialize(std::vector<std::uint8_t>& out);
  bool deserialize(std::span<const std::uint8_t> in);

 private:
  MboxId mbox_;
  state::StateStore store_;
  /// The MAX mutex (paper Fig. 3): held across classify/advance AND the
  /// store partition apply, so it outranks the partition locks.
  mutable Mutex mutex_{ranks::kApplier, "ftc.applier_max"};
  MaxVector max_ SFC_GUARDED_BY(mutex_){};
  LogHistory history_;
  std::atomic<std::uint64_t> applied_{0};
};

}  // namespace sfc::ftc
