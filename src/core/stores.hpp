// Per-server replication state: the head store (the middlebox's own state
// plus transaction machinery and the log history used to serve
// retransmissions) and in-order appliers (one per predecessor middlebox
// this server replicates).
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <deque>
#include <span>
#include <vector>

#include "base/mutex.hpp"
#include "core/config.hpp"
#include "core/dep_vector.hpp"
#include "core/piggyback.hpp"
#include "state/handoff_ring.hpp"
#include "state/shard_map.hpp"
#include "state/txn.hpp"

namespace sfc::ftc {

class InOrderApplier;

/// One cross-shard portion of a log in flight to its owning worker: the
/// full dep vector (drain re-classifies against it so racing duplicate
/// enqueues stale-skip), the sub-mask of partitions destined for this
/// owner, and the writes materialized and filtered to those partitions.
struct StateHandoff {
  InOrderApplier* applier{nullptr};
  DepVector dep{};
  std::uint64_t portion{0};
  state::WriteSet writes;
};

using StateHandoffMesh = state::HandoffMesh<StateHandoff>;

/// Bounded per-store history of piggyback logs, kept for retransmission to
/// successors; pruned by commit vectors (paper §4.1/§5.1) and bounded by
/// capacity as a backstop for group members that never see the commit.
class LogHistory {
 public:
  explicit LogHistory(std::size_t capacity) : capacity_(capacity) {}

  void record(const PiggybackLog& log) {
    LockGuard lock(mutex_);
    logs_.push_back(log);
    if (logs_.size() > capacity_) logs_.pop_front();
  }

  void record(PiggybackLog&& log) {
    LockGuard lock(mutex_);
    logs_.push_back(std::move(log));
    if (logs_.size() > capacity_) logs_.pop_front();
  }

  /// Drops every log covered by @p commit.
  void prune(const MaxVector& commit) {
    LockGuard lock(mutex_);
    while (!logs_.empty() && commit.covers(logs_.front().dep)) {
      logs_.pop_front();
    }
  }

  /// Logs not yet covered by @p from, in order (the retransmission body).
  std::vector<PiggybackLog> logs_after(const MaxVector& from) const {
    LockGuard lock(mutex_);
    std::vector<PiggybackLog> out;
    for (const auto& log : logs_) {
      if (!from.covers(log.dep)) out.push_back(log);
    }
    return out;
  }

  std::size_t size() const {
    LockGuard lock(mutex_);
    return logs_.size();
  }

 private:
  const std::size_t capacity_;
  mutable Mutex mutex_{ranks::kLeaf, "ftc.log_history"};
  std::deque<PiggybackLog> logs_ SFC_GUARDED_BY(mutex_);
};

/// The head side of one middlebox's replication group (paper §4.1): the
/// authoritative store, the transactional runtime, and the history of logs
/// this head has emitted.
class HeadStore : rt::NonCopyable {
 public:
  HeadStore(MboxId mbox, const ChainConfig& cfg)
      : mbox_(mbox),
        store_(cfg.num_partitions),
        txn_ctx_(store_),
        history_(cfg.history_capacity) {}

  MboxId mbox() const noexcept { return mbox_; }
  state::StateStore& store() noexcept { return store_; }
  state::TxnContext& txn_ctx() noexcept { return txn_ctx_; }

  /// Shard-affine head: the single data worker commits transactions
  /// lock-free (store owner path + txn fast path). Only valid when exactly
  /// one thread transacts; the node enables this at threads_per_node == 1.
  void enable_shard_affine() noexcept {
    store_.enable_shard_affine();
    txn_ctx_.enable_shard_affine();
  }

  /// Converts a committed transaction into this middlebox's piggyback log
  /// and records it for retransmission.
  PiggybackLog make_log(state::TxnRecord&& record) {
    PiggybackLog log;
    log.mbox = mbox_;
    log.dep.mask = record.touched_mask;
    log.dep.seq = record.seqs;
    log.writes = std::move(record.writes);
    history_.record(log);
    return log;
  }

  void prune(const MaxVector& commit) { history_.prune(commit); }

  LogHistory& history() noexcept { return history_; }

  /// Serializes store + dependency vector for failover transfer. Only
  /// called on a quiesced store (the source has stopped admitting
  /// packets).
  void serialize(std::vector<std::uint8_t>& out);
  bool deserialize(std::span<const std::uint8_t> in);

 private:
  MboxId mbox_;
  state::StateStore store_;
  state::TxnContext txn_ctx_;
  LogHistory history_;
};

/// The replica side: applies piggyback logs to a local store in the
/// partial order defined by dependency vectors (paper §4.3, Fig. 3).
class InOrderApplier : rt::NonCopyable {
 public:
  InOrderApplier(MboxId mbox, const ChainConfig& cfg)
      : mbox_(mbox),
        store_(cfg.num_partitions),
        history_(cfg.history_capacity) {}

  MboxId mbox() const noexcept { return mbox_; }
  state::StateStore& store() noexcept { return store_; }

  /// Switches this applier to shard-affine apply: the MAX mutex retires in
  /// favor of per-partition atomic sequence tracking (pseq), owner-hit
  /// portions apply lock-free through the store's owner path, and portions
  /// owned by other workers — or everything, when offered from the control
  /// thread (NACK replay) — travel through @p mesh to their owner, drained
  /// at burst boundaries. Call before the node's workers start.
  void enable_shard_affine(const state::ShardMap* map, StateHandoffMesh* mesh);
  bool shard_affine() const noexcept { return shard_map_ != nullptr; }

  enum class Offer : std::uint8_t { kApplied, kDuplicate, kHeld };

  /// Attempts to apply @p log. kHeld means a predecessor log is missing
  /// (the caller parks the packet). Applied logs are recorded in the
  /// history for retransmission to this replica's own successor.
  Offer offer(const PiggybackLog& log);

  /// Wire-path offer(): classifies a whole burst's logs (cursors into
  /// packet bytes, in arrival order) under one MAX-mutex acquisition and
  /// copies every applicable write straight from the wire into the store
  /// with one partition-lock round — each touched partition is locked
  /// once per burst instead of once per log. Writes one Offer per log
  /// into @p results. Logs of held packets stay unapplied (kHeld) and are
  /// re-offered by the caller's park/drain machinery.
  void offer_burst(std::span<const WireLog> logs, Offer* results);

  /// Single-log wire offer (held-log retry path).
  Offer offer_wire(const WireLog& log) {
    Offer r = Offer::kHeld;
    offer_burst({&log, 1}, &r);
    return r;
  }

  /// Applies the ready portion of a drained handoff entry and clears the
  /// applied/stale bits from h.portion. Returns true when the entry is
  /// fully resolved; false leaves the future bits in h.portion — the
  /// predecessor seq is in another ring of the same owner, so the caller
  /// defers the entry and retries after draining the rest. Called only by
  /// the owning worker's drain loop (or under quiesce, when the control
  /// thread temporarily inherits write exclusivity).
  bool apply_handoff(StateHandoff& h);

  /// Current MAX vector (the tail's commit vector when this replica is the
  /// tail of its group). Shard mode assembles it lock-free from the
  /// per-partition sequences, INCLUDING the enqueued frontier: a portion
  /// admitted into a handoff ring is durably in this node and guaranteed
  /// to apply at the owner's drain, so announcing it keeps the commit a
  /// packet carries covering the logs that very packet delivered — the
  /// invariant the egress buffer's release depends on. (NACKs built from
  /// this vector correctly skip in-flight logs: they are already here.)
  MaxVector max() const {
    if (shard_map_ != nullptr) {
      MaxVector out;
      for (std::size_t p = 0; p < state::kMaxPartitions; ++p) {
        out.seq[p] = std::max(pseq_[p].load(std::memory_order_acquire),
                              enq_seq_[p].load(std::memory_order_acquire));
      }
      return out;
    }
    LockGuard lock(mutex_);
    return max_;
  }

  void prune(const MaxVector& commit) { history_.prune(commit); }

  LogHistory& history() noexcept { return history_; }

  /// Count of successfully applied logs (version counter used by parked-
  /// packet wakeup).
  std::uint64_t applied_count() const noexcept {
    return applied_.load(std::memory_order_acquire);
  }

  /// Serializes store + MAX for failover transfer (quiesced source only).
  void serialize(std::vector<std::uint8_t>& out);
  bool deserialize(std::span<const std::uint8_t> in);

 private:
  /// Per-partition classification against pseq: kDuplicate when every
  /// touched portion is covered, kFuture when any portion skips a
  /// sequence, else applicable with @p pending = the not-yet-applied
  /// sub-mask (handles half-applied cross-shard logs).
  LogFit classify_pending(const DepVector& dep,
                          std::uint64_t& pending) const noexcept;

  /// Shard-mode offer core: routes @p pending by owner, pre-checks ring
  /// capacity (all-or-nothing), enqueues foreign portions and returns the
  /// caller-owned sub-mask to apply directly (in @p mine). Returns false
  /// when a target ring is full (caller reports kHeld, nothing advanced).
  bool route_portions(const DepVector& dep, std::uint64_t pending,
                      std::uint64_t& mine, const WireLog* wire,
                      const state::WriteSet* writes);

  Offer offer_shard(const PiggybackLog& log);
  Offer offer_shard_wire(const WireLog& log);

  /// Advances pseq for @p mask to the log's sequence numbers (release:
  /// published only after the store apply).
  void advance_pseq(const DepVector& dep, std::uint64_t mask) noexcept {
    for (std::uint64_t m = mask; m != 0; m &= m - 1) {
      const auto p = static_cast<std::size_t>(std::countr_zero(m));
      pseq_[p].store(dep.seq[p], std::memory_order_release);
    }
  }

  MboxId mbox_;
  state::StateStore store_;
  /// The MAX mutex (paper Fig. 3): held across classify/advance AND the
  /// store partition apply, so it outranks the partition locks. Unused on
  /// the data path in shard-affine mode.
  mutable Mutex mutex_{ranks::kApplier, "ftc.applier_max"};
  MaxVector max_ SFC_GUARDED_BY(mutex_){};
  LogHistory history_;
  std::atomic<std::uint64_t> applied_{0};
  /// Shard-affine state: per-partition applied sequence numbers (the MAX,
  /// exploded into atomics so classification never blocks).
  const state::ShardMap* shard_map_{nullptr};
  StateHandoffMesh* mesh_{nullptr};
  std::array<std::atomic<std::uint64_t>, state::kMaxPartitions> pseq_{};
  /// Enqueued frontier: highest seq per partition admitted into a handoff
  /// ring (>= pseq while portions are in flight). Classification treats
  /// seqs <= the frontier as covered — without it, a NACK replay batch
  /// would enqueue s+1 and then misclassify s+2 as future (pseq only
  /// advances at the owner's drain) and drop the rest of the batch.
  /// CAS-max maintained on the cross-shard path only; owner-hit applies
  /// never touch it.
  std::array<std::atomic<std::uint64_t>, state::kMaxPartitions> enq_seq_{};
};

}  // namespace sfc::ftc
