// Forwarder and the buffer->forwarder feedback channel (paper §5).
//
// The egress buffer strips each packet's piggyback message and hands it to
// the forwarder at the chain ingress; the forwarder attaches pending
// messages to incoming packets (merging several if the ingress is slower
// than the egress) so the state of chain-end middleboxes replicates at the
// chain-start servers. When the chain is idle, the forwarder emits
// propagating packets instead.
#pragma once

#include <atomic>
#include <cstdint>

#include "core/config.hpp"
#include "core/piggyback.hpp"
#include "packet/packet_io.hpp"
#include "packet/packet_pool.hpp"
#include "runtime/clock.hpp"
#include "runtime/mpmc_queue.hpp"

namespace sfc::ftc {

/// The paper's dedicated state-dissemination link from the buffer back to
/// the forwarder (their testbed used a separate 10 GbE link).
class FeedbackChannel : rt::NonCopyable {
 public:
  explicit FeedbackChannel(std::size_t capacity = 1024) : queue_(capacity) {}

  void push(PiggybackMessage&& msg) {
    // The channel must not lose state: if the consumer lags, spin-yield.
    while (!queue_.try_push(std::move(msg))) std::this_thread::yield();
  }

  std::optional<PiggybackMessage> pop() { return queue_.try_pop(); }

  std::size_t pending_approx() const noexcept { return queue_.size_approx(); }

 private:
  rt::MpmcQueue<PiggybackMessage> queue_;
};

class Forwarder : rt::NonCopyable {
 public:
  Forwarder(FeedbackChannel& feedback, const ChainConfig& cfg)
      : feedback_(feedback), cfg_(cfg) {
    last_activity_ns_.store(rt::now_ns());
  }

  /// Collects pending feedback (up to the merge limit) into one message to
  /// ride on an incoming packet.
  PiggybackMessage collect() {
    // Common case first: zero or one pending message needs no merge pass
    // (the merge walks commit vectors per log; skipping it matters at the
    // per-packet rate this runs at).
    auto first = feedback_.pop();
    if (!first) {
      note_activity();
      return {};
    }
    PiggybackMessage merged = std::move(*first);
    for (std::size_t i = 1; i < cfg_.forwarder_merge_limit; ++i) {
      auto msg = feedback_.pop();
      if (!msg) break;
      merged.merge(std::move(*msg));
    }
    note_activity();
    return merged;
  }

  /// True when the chain has been idle long enough that pending state must
  /// be pushed with a propagating packet.
  bool propagation_due() const noexcept {
    return feedback_.pending_approx() > 0 &&
           rt::now_ns() - last_activity_ns_.load(std::memory_order_relaxed) >
               cfg_.propagate_interval_ns;
  }

  void note_activity() noexcept {
    last_activity_ns_.store(rt::now_ns(), std::memory_order_relaxed);
  }

  /// Builds a propagating packet (no user payload; skips middleboxes).
  static pkt::Packet* make_propagating_packet(pkt::PacketPool& pool) {
    pkt::Packet* p = pool.alloc_raw();
    if (p == nullptr) return nullptr;
    pkt::FlowKey ctrl{0x7f000001, 0x7f000002, 9999, 9999,
                      pkt::Ipv4Header::kProtoUdp};
    pkt::PacketBuilder(*p).udp(ctrl, 64);
    p->anno().is_control = true;
    return p;
  }

 private:
  FeedbackChannel& feedback_;
  const ChainConfig& cfg_;
  std::atomic<std::uint64_t> last_activity_ns_{0};
};

}  // namespace sfc::ftc
