#include "core/stores.hpp"

#include <cstring>

#include "obs/prof.hpp"

namespace sfc::ftc {

namespace {

// Locks @p m, attributing contention to the applier MAX mutex when the
// hot-path profiler is installed (a failed try_lock means another worker
// held the mutex). One load + branch when disabled.
// TSA sees the returned scoped lock through the ACQUIRE annotation; the
// body is excluded because the defer/try/lock dance is not expressible.
UniqueLock lock_max_mutex(Mutex& m)
    SFC_ACQUIRE(m) SFC_NO_THREAD_SAFETY_ANALYSIS {
  UniqueLock lock(m, std::defer_lock);
  if (SFC_UNLIKELY(obs::hot_profiler() != nullptr)) {
    const bool uncontended = lock.try_lock();
    if (!uncontended) {
      obs::prof_count(obs::ProfCounter::kApplierMutexContended);
      lock.lock();
    }
    obs::prof_count(obs::ProfCounter::kApplierMutexAcquire);
  } else {
    lock.lock();
  }
  return lock;
}

// Failover transfer blob: store contents, then the MAX / dependency
// vector, then the retained log history. The format is shared by HeadStore
// and InOrderApplier because a failed head is restored FROM its
// successor's applier and vice versa (paper §5.2).
void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
  out.insert(out.end(), p, p + 4);
}

bool take_u32(std::span<const std::uint8_t>& in, std::uint32_t& v) {
  if (in.size() < 4) return false;
  std::memcpy(&v, in.data(), 4);
  in = in.subspan(4);
  return true;
}

void put_vector(std::vector<std::uint8_t>& out, const MaxVector& v) {
  const auto* p = reinterpret_cast<const std::uint8_t*>(v.seq.data());
  out.insert(out.end(), p, p + sizeof(v.seq));
}

bool take_vector(std::span<const std::uint8_t>& in, MaxVector& v) {
  if (in.size() < sizeof(v.seq)) return false;
  std::memcpy(v.seq.data(), in.data(), sizeof(v.seq));
  in = in.subspan(sizeof(v.seq));
  return true;
}

}  // namespace

void HeadStore::serialize(std::vector<std::uint8_t>& out) {
  std::vector<std::uint8_t> store_blob;
  store_.serialize(store_blob);
  put_u32(out, static_cast<std::uint32_t>(store_blob.size()));
  out.insert(out.end(), store_blob.begin(), store_blob.end());
  MaxVector deps;
  deps.seq = txn_ctx_.sequence_snapshot();
  put_vector(out, deps);
  serialize_logs(history_.logs_after(MaxVector{}), out);
}

bool HeadStore::deserialize(std::span<const std::uint8_t> in) {
  std::uint32_t store_len = 0;
  if (!take_u32(in, store_len) || in.size() < store_len) return false;
  if (!store_.deserialize(in.subspan(0, store_len))) return false;
  in = in.subspan(store_len);
  MaxVector deps;
  if (!take_vector(in, deps)) return false;
  // Paper §5.2: the new head adopts the fetched MAX as its dependency
  // vector, so the next transactions continue the sequence numbers.
  txn_ctx_.restore_sequences(deps.seq);
  std::vector<PiggybackLog> logs;
  if (!deserialize_logs(in, logs)) return false;
  for (const auto& log : logs) history_.record(log);
  return in.empty();
}

InOrderApplier::Offer InOrderApplier::offer(const PiggybackLog& log) {
  {
    auto lock = lock_max_mutex(mutex_);
    switch (classify(max_, log.dep)) {
      case LogFit::kDuplicate:
        return Offer::kDuplicate;
      case LogFit::kFuture:
        return Offer::kHeld;
      case LogFit::kApplicable:
        break;
    }
    max_.advance(log.dep);
    // Apply inside the MAX mutex: the touched partitions' next logs only
    // become applicable after max_ advanced, and advancing before the
    // store write would let a dependent log overtake this one's writes.
    store_.apply(log.writes);
  }
  history_.record(log);
  applied_.fetch_add(1, std::memory_order_release);
  return Offer::kApplied;
}

void InOrderApplier::offer_burst(std::span<const WireLog> logs,
                                 Offer* results) {
  // Applicable writes across the burst, collected in log order so
  // same-key writes land newest-last, exactly as per-log applies would.
  rt::SmallVector<state::WireUpdate, 16> updates;
  std::uint64_t n_applied = 0;
  {
    auto lock = lock_max_mutex(mutex_);
    for (std::size_t i = 0; i < logs.size(); ++i) {
      switch (classify(max_, logs[i].dep)) {
        case LogFit::kDuplicate:
          results[i] = Offer::kDuplicate;
          continue;
        case LogFit::kFuture:
          results[i] = Offer::kHeld;
          continue;
        case LogFit::kApplicable:
          break;
      }
      max_.advance(logs[i].dep);
      for_each_wire_write(logs[i], [&](const state::WireUpdate& u) {
        updates.push_back(u);
      });
      results[i] = Offer::kApplied;
      ++n_applied;
    }
    // Apply inside the MAX mutex, same as offer(): the writes must be in
    // the store before the mutex releases, or a dependent log offered by
    // a sibling thread could overtake them.
    if (!updates.empty()) store_.apply_wire({updates.data(), updates.size()});
  }
  if (n_applied != 0) {
    // History needs owning copies (logs must outlive the packet); only
    // applied logs pay the materialization, relayed ones never do.
    for (std::size_t i = 0; i < logs.size(); ++i) {
      if (results[i] == Offer::kApplied) {
        history_.record(materialize_log(logs[i]));
      }
    }
    applied_.fetch_add(n_applied, std::memory_order_release);
  }
}

void InOrderApplier::serialize(std::vector<std::uint8_t>& out) {
  std::vector<std::uint8_t> store_blob;
  store_.serialize(store_blob);
  put_u32(out, static_cast<std::uint32_t>(store_blob.size()));
  out.insert(out.end(), store_blob.begin(), store_blob.end());
  put_vector(out, max());
  serialize_logs(history_.logs_after(MaxVector{}), out);
}

bool InOrderApplier::deserialize(std::span<const std::uint8_t> in) {
  std::uint32_t store_len = 0;
  if (!take_u32(in, store_len) || in.size() < store_len) return false;
  if (!store_.deserialize(in.subspan(0, store_len))) return false;
  in = in.subspan(store_len);
  MaxVector restored;
  if (!take_vector(in, restored)) return false;
  std::vector<PiggybackLog> logs;
  if (!deserialize_logs(in, logs)) return false;
  {
    LockGuard lock(mutex_);
    max_ = restored;
  }
  for (const auto& log : logs) history_.record(log);
  applied_.fetch_add(1, std::memory_order_release);
  return in.empty();
}

}  // namespace sfc::ftc
