#include "core/stores.hpp"

#include <algorithm>
#include <bit>
#include <cstring>

#include "obs/prof.hpp"
#include "runtime/worker.hpp"

namespace sfc::ftc {

namespace {

// Locks @p m, attributing contention to the applier MAX mutex when the
// hot-path profiler is installed (a failed try_lock means another worker
// held the mutex). One load + branch when disabled.
// TSA sees the returned scoped lock through the ACQUIRE annotation; the
// body is excluded because the defer/try/lock dance is not expressible.
UniqueLock lock_max_mutex(Mutex& m)
    SFC_ACQUIRE(m) SFC_NO_THREAD_SAFETY_ANALYSIS {
  UniqueLock lock(m, std::defer_lock);
  if (SFC_UNLIKELY(obs::hot_profiler() != nullptr)) {
    const bool uncontended = lock.try_lock();
    if (!uncontended) {
      obs::prof_count(obs::ProfCounter::kApplierMutexContended);
      lock.lock();
    }
    obs::prof_count(obs::ProfCounter::kApplierMutexAcquire);
  } else {
    lock.lock();
  }
  return lock;
}

// Failover transfer blob: store contents, then the MAX / dependency
// vector, then the retained log history. The format is shared by HeadStore
// and InOrderApplier because a failed head is restored FROM its
// successor's applier and vice versa (paper §5.2).
void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
  out.insert(out.end(), p, p + 4);
}

bool take_u32(std::span<const std::uint8_t>& in, std::uint32_t& v) {
  if (in.size() < 4) return false;
  std::memcpy(&v, in.data(), 4);
  in = in.subspan(4);
  return true;
}

void put_vector(std::vector<std::uint8_t>& out, const MaxVector& v) {
  const auto* p = reinterpret_cast<const std::uint8_t*>(v.seq.data());
  out.insert(out.end(), p, p + sizeof(v.seq));
}

bool take_vector(std::span<const std::uint8_t>& in, MaxVector& v) {
  if (in.size() < sizeof(v.seq)) return false;
  std::memcpy(v.seq.data(), in.data(), sizeof(v.seq));
  in = in.subspan(sizeof(v.seq));
  return true;
}

}  // namespace

void HeadStore::serialize(std::vector<std::uint8_t>& out) {
  std::vector<std::uint8_t> store_blob;
  store_.serialize(store_blob);
  put_u32(out, static_cast<std::uint32_t>(store_blob.size()));
  out.insert(out.end(), store_blob.begin(), store_blob.end());
  MaxVector deps;
  deps.seq = txn_ctx_.sequence_snapshot();
  put_vector(out, deps);
  serialize_logs(history_.logs_after(MaxVector{}), out);
}

bool HeadStore::deserialize(std::span<const std::uint8_t> in) {
  std::uint32_t store_len = 0;
  if (!take_u32(in, store_len) || in.size() < store_len) return false;
  if (!store_.deserialize(in.subspan(0, store_len))) return false;
  in = in.subspan(store_len);
  MaxVector deps;
  if (!take_vector(in, deps)) return false;
  // Paper §5.2: the new head adopts the fetched MAX as its dependency
  // vector, so the next transactions continue the sequence numbers.
  txn_ctx_.restore_sequences(deps.seq);
  std::vector<PiggybackLog> logs;
  if (!deserialize_logs(in, logs)) return false;
  for (const auto& log : logs) history_.record(log);
  return in.empty();
}

void InOrderApplier::enable_shard_affine(const state::ShardMap* map,
                                         StateHandoffMesh* mesh) {
  shard_map_ = map;
  mesh_ = mesh;
  store_.enable_shard_affine();
  // Carry any pre-enable MAX into the per-partition sequences. Enable runs
  // before the node's workers start, so there is no concurrent offer.
  LockGuard lock(mutex_);
  for (std::size_t p = 0; p < state::kMaxPartitions; ++p) {
    pseq_[p].store(max_.seq[p], std::memory_order_relaxed);
    enq_seq_[p].store(max_.seq[p], std::memory_order_relaxed);
  }
}

LogFit InOrderApplier::classify_pending(const DepVector& dep,
                                        std::uint64_t& pending) const noexcept {
  pending = 0;
  for (std::uint64_t m = dep.mask; m != 0; m &= m - 1) {
    const auto p = static_cast<std::size_t>(std::countr_zero(m));
    // The frontier is the applied seq OR the highest seq already admitted
    // into a handoff ring: an in-flight portion counts as covered (its
    // owner is guaranteed to drain it), so a batch of consecutive logs
    // offered from one thread classifies applicable log after log instead
    // of stalling on the first enqueue.
    const auto s = pseq_[p].load(std::memory_order_acquire);
    const auto f = std::max(s, enq_seq_[p].load(std::memory_order_acquire));
    if (dep.seq[p] <= f) continue;  // applied, or in flight to its owner
    if (dep.seq[p] != f + 1) return LogFit::kFuture;
    pending |= 1ULL << p;
  }
  return pending == 0 ? LogFit::kDuplicate : LogFit::kApplicable;
}

bool InOrderApplier::route_portions(const DepVector& dep, std::uint64_t pending,
                                    std::uint64_t& mine, const WireLog* wire,
                                    const state::WriteSet* writes) {
  const std::uint32_t self = rt::current_shard();
  const std::size_t producer =
      self == rt::kNoShard ? mesh_->producers() - 1 : self;

  // Split the pending portion by owning worker. One handoff entry per
  // foreign owner aggregates all of that owner's partitions. An owned
  // partition applies directly ONLY when nothing is in flight for it
  // (enq <= pseq): applying over an undrained ring entry would reorder
  // seqs, so the owner routes through its own ring (SPSC with itself on
  // both ends) and the drain restores order.
  mine = 0;
  std::uint64_t theirs[state::ShardMap::kMaxWorkers] = {};
  for (std::uint64_t m = pending; m != 0; m &= m - 1) {
    const auto p = static_cast<std::size_t>(std::countr_zero(m));
    const auto owner = shard_map_->owner_of(p);
    if (owner == self &&
        enq_seq_[p].load(std::memory_order_relaxed) <=
            pseq_[p].load(std::memory_order_relaxed)) {
      mine |= 1ULL << p;
    } else {
      theirs[owner] |= 1ULL << p;
    }
  }
  if (mine == pending) return true;  // fully owned: nothing to enqueue

  // All-or-nothing admission: as this thread is each target ring's only
  // producer, a positive free-slot pre-check cannot be invalidated before
  // our push, so either every portion is admitted or the whole log holds.
  for (std::uint32_t o = 0; o < shard_map_->num_workers(); ++o) {
    if (theirs[o] != 0 && !mesh_->can_push(producer, o)) return false;
  }
  for (std::uint32_t o = 0; o < shard_map_->num_workers(); ++o) {
    if (theirs[o] == 0) continue;
    StateHandoff h;
    h.applier = this;
    h.dep = dep;
    h.portion = theirs[o];
    if (wire != nullptr) {
      for_each_wire_write(*wire, [&](const state::WireUpdate& u) {
        const auto p = store_.partition_of(u.key);
        if ((theirs[o] >> p) & 1u) {
          h.writes.push_back(state::StateUpdate{
              u.key, state::Bytes(u.value.data(), u.value.size()), u.erase});
        }
      });
    } else {
      for (const auto& w : *writes) {
        const auto p = store_.partition_of(w.key);
        if ((theirs[o] >> p) & 1u) h.writes.push_back(w);
      }
    }
    mesh_->push(producer, o, std::move(h));
    obs::prof_count(obs::ProfCounter::kHandoffPush);
    // Advance the enqueued frontier AFTER the push: a thread that observes
    // the new frontier and enqueues seq+1 is guaranteed the seq entry is
    // already poppable, so an owner that drains its rings to exhaustion
    // can always resolve in-flight chains.
    for (std::uint64_t m = theirs[o]; m != 0; m &= m - 1) {
      const auto p = static_cast<std::size_t>(std::countr_zero(m));
      std::uint64_t cur = enq_seq_[p].load(std::memory_order_relaxed);
      while (cur < dep.seq[p] &&
             !enq_seq_[p].compare_exchange_weak(cur, dep.seq[p],
                                                std::memory_order_release,
                                                std::memory_order_relaxed)) {
      }
    }
  }
  return true;
}

InOrderApplier::Offer InOrderApplier::offer_shard(const PiggybackLog& log) {
  std::uint64_t pending = 0;
  switch (classify_pending(log.dep, pending)) {
    case LogFit::kDuplicate:
      return Offer::kDuplicate;
    case LogFit::kFuture:
      return Offer::kHeld;
    case LogFit::kApplicable:
      break;
  }
  std::uint64_t mine = 0;
  if (!route_portions(log.dep, pending, mine, nullptr, &log.writes)) {
    return Offer::kHeld;
  }
  if (mine != 0) {
    store_.apply_owner({log.writes.data(), log.writes.size()}, mine);
    advance_pseq(log.dep, mine);
  }
  history_.record(log);
  applied_.fetch_add(1, std::memory_order_release);
  return Offer::kApplied;
}

InOrderApplier::Offer InOrderApplier::offer_shard_wire(const WireLog& log) {
  std::uint64_t pending = 0;
  switch (classify_pending(log.dep, pending)) {
    case LogFit::kDuplicate:
      return Offer::kDuplicate;
    case LogFit::kFuture:
      return Offer::kHeld;
    case LogFit::kApplicable:
      break;
  }
  std::uint64_t mine = 0;
  if (!route_portions(log.dep, pending, mine, &log, nullptr)) {
    return Offer::kHeld;
  }
  if (mine != 0) {
    // Owner-hit fast path: copy applicable writes straight from the wire
    // into the store — no lock, no atomic RMW, one seqlock version bump
    // per touched partition.
    rt::SmallVector<state::WireUpdate, 16> updates;
    for_each_wire_write(log, [&](const state::WireUpdate& u) {
      updates.push_back(u);
    });
    store_.apply_wire_owner({updates.data(), updates.size()}, mine);
    advance_pseq(log.dep, mine);
  }
  history_.record(materialize_log(log));
  applied_.fetch_add(1, std::memory_order_release);
  return Offer::kApplied;
}

bool InOrderApplier::apply_handoff(StateHandoff& h) {
  // Re-classify each portion against pseq. Stale bits (racing producers
  // can enqueue duplicates of the same (partition, seq) portion; first
  // drain wins) and applied bits clear; future bits (predecessor seq in a
  // different ring of the same owner — rings are FIFO per producer, not
  // across producers) stay set for the caller to defer and retry.
  std::uint64_t fresh = 0;
  std::uint64_t future = 0;
  for (std::uint64_t m = h.portion; m != 0; m &= m - 1) {
    const auto p = static_cast<std::size_t>(std::countr_zero(m));
    const auto s = pseq_[p].load(std::memory_order_relaxed);
    if (h.dep.seq[p] == s + 1) {
      fresh |= 1ULL << p;
    } else if (h.dep.seq[p] > s + 1) {
      future |= 1ULL << p;
    }
  }
  if (fresh != 0) {
    store_.apply_owner({h.writes.data(), h.writes.size()}, fresh);
    advance_pseq(h.dep, fresh);
  }
  h.portion = future;
  return future == 0;
}

InOrderApplier::Offer InOrderApplier::offer(const PiggybackLog& log) {
  if (shard_map_ != nullptr) return offer_shard(log);
  {
    auto lock = lock_max_mutex(mutex_);
    switch (classify(max_, log.dep)) {
      case LogFit::kDuplicate:
        return Offer::kDuplicate;
      case LogFit::kFuture:
        return Offer::kHeld;
      case LogFit::kApplicable:
        break;
    }
    max_.advance(log.dep);
    // Apply inside the MAX mutex: the touched partitions' next logs only
    // become applicable after max_ advanced, and advancing before the
    // store write would let a dependent log overtake this one's writes.
    store_.apply(log.writes);
  }
  history_.record(log);
  applied_.fetch_add(1, std::memory_order_release);
  return Offer::kApplied;
}

void InOrderApplier::offer_burst(std::span<const WireLog> logs,
                                 Offer* results) {
  if (shard_map_ != nullptr) {
    // Shard mode has no burst-wide mutex to amortize: each log classifies
    // against pseq and applies through the owner path (or routes through
    // the mesh) independently.
    for (std::size_t i = 0; i < logs.size(); ++i) {
      results[i] = offer_shard_wire(logs[i]);
    }
    return;
  }
  // Applicable writes across the burst, collected in log order so
  // same-key writes land newest-last, exactly as per-log applies would.
  rt::SmallVector<state::WireUpdate, 16> updates;
  std::uint64_t n_applied = 0;
  {
    auto lock = lock_max_mutex(mutex_);
    for (std::size_t i = 0; i < logs.size(); ++i) {
      switch (classify(max_, logs[i].dep)) {
        case LogFit::kDuplicate:
          results[i] = Offer::kDuplicate;
          continue;
        case LogFit::kFuture:
          results[i] = Offer::kHeld;
          continue;
        case LogFit::kApplicable:
          break;
      }
      max_.advance(logs[i].dep);
      for_each_wire_write(logs[i], [&](const state::WireUpdate& u) {
        updates.push_back(u);
      });
      results[i] = Offer::kApplied;
      ++n_applied;
    }
    // Apply inside the MAX mutex, same as offer(): the writes must be in
    // the store before the mutex releases, or a dependent log offered by
    // a sibling thread could overtake them.
    if (!updates.empty()) store_.apply_wire({updates.data(), updates.size()});
  }
  if (n_applied != 0) {
    // History needs owning copies (logs must outlive the packet); only
    // applied logs pay the materialization, relayed ones never do.
    for (std::size_t i = 0; i < logs.size(); ++i) {
      if (results[i] == Offer::kApplied) {
        history_.record(materialize_log(logs[i]));
      }
    }
    applied_.fetch_add(n_applied, std::memory_order_release);
  }
}

void InOrderApplier::serialize(std::vector<std::uint8_t>& out) {
  std::vector<std::uint8_t> store_blob;
  store_.serialize(store_blob);
  put_u32(out, static_cast<std::uint32_t>(store_blob.size()));
  out.insert(out.end(), store_blob.begin(), store_blob.end());
  put_vector(out, max());
  serialize_logs(history_.logs_after(MaxVector{}), out);
}

bool InOrderApplier::deserialize(std::span<const std::uint8_t> in) {
  std::uint32_t store_len = 0;
  if (!take_u32(in, store_len) || in.size() < store_len) return false;
  if (!store_.deserialize(in.subspan(0, store_len))) return false;
  in = in.subspan(store_len);
  MaxVector restored;
  if (!take_vector(in, restored)) return false;
  std::vector<PiggybackLog> logs;
  if (!deserialize_logs(in, logs)) return false;
  {
    LockGuard lock(mutex_);
    max_ = restored;
  }
  if (shard_map_ != nullptr) {
    // Recovery runs quiesced (workers drained, control has exclusivity);
    // the restored vector seeds the per-partition sequences directly.
    for (std::size_t p = 0; p < state::kMaxPartitions; ++p) {
      pseq_[p].store(restored.seq[p], std::memory_order_release);
      enq_seq_[p].store(restored.seq[p], std::memory_order_release);
    }
  }
  for (const auto& log : logs) history_.record(log);
  applied_.fetch_add(1, std::memory_order_release);
  return in.empty();
}

}  // namespace sfc::ftc
