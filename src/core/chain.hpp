// Chain runtime: builds and runs a service function chain in one of the
// four evaluation modes (NF / FTC / FTMB / FTMB+Snapshot), owning the
// simulated servers, the links between them, the packet pool, and the
// control plane. The traffic generator injects into ingress() and the
// measurement sink drains egress().
//
// Topologies (paper §7.1):
//   NF:    gen -> M1 -> M2 -> ... -> Mn -> sink            (n servers)
//   FTC:   gen -> R0(fwd) -> R1 -> ... -> R(last, buffer) -> sink
//          with the buffer->forwarder feedback channel     (n servers,
//          extended with pure replicas when n < f+1)
//   FTMB:  gen -> [IL/OL]1 <-> M1 -> [IL/OL]2 <-> M2 ... -> sink
//          (2n servers: one logger server per middlebox)
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "core/buffer.hpp"
#include "core/config.hpp"
#include "core/forwarder.hpp"
#include "core/nf_node.hpp"
#include "core/node.hpp"
#include "ftmb/ftmb.hpp"
#include "net/control.hpp"
#include "obs/prof.hpp"
#include "obs/registry.hpp"

namespace sfc::ftc {

/// Span-site link id of the chain's egress link (segments use their ring
/// position). High enough to clear any realistic chain length.
constexpr std::uint32_t kEgressLinkSite = 1000;

class ChainRuntime : rt::NonCopyable {
 public:
  struct Spec {
    ChainMode mode{ChainMode::kFtc};
    ChainConfig cfg{};
    /// One factory per middlebox, in chain order.
    std::vector<FtcNode::MboxFactory> mbox_factories;
  };

  explicit ChainRuntime(Spec spec);
  ~ChainRuntime();

  void start();
  void stop();

  net::Port& ingress() noexcept { return *links_.front(); }
  net::Port& egress() noexcept { return *egress_link_; }
  /// Inter-server segment ports (links_[i] feeds ring position i). With
  /// transport == kReliable these are ReliableChannels; benches read their
  /// adaptive RTO through Port::rto_ns().
  std::size_t num_segments() const noexcept { return links_.size(); }
  net::Port& segment(std::size_t i) noexcept { return *links_[i]; }
  /// Pool for generator traffic. Protocol-internal packets (propagating
  /// packets, FTMB PALs) come from a separate reserve so a saturating
  /// generator cannot starve the replication machinery into deadlock.
  pkt::PacketPool& pool() noexcept { return *pool_; }
  pkt::PacketPool& internal_pool() noexcept { return *internal_pool_; }
  net::ControlPlane& control() noexcept { return ctrl_; }
  /// Chain-wide metrics/trace registry: every node, link, the control
  /// plane, the buffer, and the orchestrator register into this one.
  obs::Registry& registry() noexcept { return registry_; }
  const obs::Registry& registry() const noexcept { return registry_; }
  /// The chain's hot-path budget profiler, or nullptr when neither
  /// cfg.profile nor cfg.quiet_assert is set. Callers arm quiet mode after
  /// warmup via profiler()->arm_quiet() and read budgets via report().
  obs::HotProfiler* profiler() noexcept { return profiler_.get(); }
  const Spec& spec() const noexcept { return spec_; }

  std::uint32_t num_mboxes() const noexcept {
    return static_cast<std::uint32_t>(spec_.mbox_factories.size());
  }
  std::uint32_t ring_size() const noexcept { return ring_size_; }

  /// Node currently serving a ring position (FTC mode). The slot is
  /// atomic: the orchestrator's monitor thread swaps it on recovery
  /// (wire_replacement) while tests and stats readers poll it.
  FtcNode* ftc_node(std::uint32_t position) noexcept {
    return position < ftc_at_.size()
               ? ftc_at_[position].load(std::memory_order_acquire)
               : nullptr;
  }
  NfNode* nf_node(std::uint32_t position) noexcept {
    return position < nf_nodes_.size() ? nf_nodes_[position].get() : nullptr;
  }
  ftmb::FtmbMaster* ftmb_master(std::uint32_t position) noexcept {
    return position < ftmb_masters_.size() ? ftmb_masters_[position].get()
                                           : nullptr;
  }
  ftmb::FtmbLogger* ftmb_logger(std::uint32_t position) noexcept {
    return position < ftmb_loggers_.size() ? ftmb_loggers_[position].get()
                                           : nullptr;
  }
  EgressBuffer* buffer() noexcept { return buffer_.get(); }
  Forwarder* forwarder() noexcept { return forwarder_.get(); }

  /// Sum of per-middlebox packet counters at the last hop (throughput of
  /// the chain as the paper measures it: packets leaving the chain).
  std::uint64_t egress_packets() const noexcept;

  /// True when no replication work is pending anywhere: all data links
  /// drained, no buffered holds, no feedback awaiting dissemination, no
  /// parked packets. Used by tests to know state has fully converged.
  bool quiescent();

  // --- Failure injection & recovery plumbing (FTC mode). ---
  /// Crash-stops the node at @p position (fail-stop, paper §2).
  void fail_position(std::uint32_t position);

  /// Creates a fresh replica for @p position (control endpoint running,
  /// data path detached) — the orchestrator's "spawn" step.
  FtcNode* spawn_replacement(std::uint32_t position);

  /// The per-replication-group fetch sources for a new replica at
  /// @p position (paper §5.2): its own store from the ring successor, each
  /// applier store from the ring predecessor.
  std::vector<std::pair<MboxId, net::NodeId>> recovery_sources(
      std::uint32_t position) const;

  /// Attaches the recovered replica to the chain links and starts its data
  /// path — the orchestrator's "steer traffic" step.
  void wire_replacement(std::uint32_t position, FtcNode* node);

  /// Places a ring position in a named cloud region: the current node and
  /// any future replacement at this position inherit it (paper §7.5: the
  /// new replica is placed in the failed middlebox's region).
  void set_position_region(std::uint32_t position, std::uint32_t region);

 private:
  void build_ftc();
  void build_nf();
  void build_ftmb(bool snapshots);
  FtcNode::MboxFactory factory_for(std::uint32_t position) const;

  Spec spec_;
  std::uint32_t ring_size_{0};
  // Declared before the registry: export_metrics installs gauge_fn
  // callbacks that dereference the profiler at snapshot time, so the
  // registry (destroyed first, reverse declaration order) must die before
  // the profiler does.
  std::unique_ptr<obs::HotProfiler> profiler_;
  std::unique_ptr<pkt::PacketPool> pool_;
  std::unique_ptr<pkt::PacketPool> internal_pool_;
  // Declared before every component that registers into it (and therefore
  // destroyed after all of them).
  obs::Registry registry_;
  net::ControlPlane ctrl_{&registry_};
  net::NodeId next_node_id_{1};

  /// Builds segment i's port per spec_.cfg.transport (raw Link or
  /// ReliableChannel over the same LinkConfig).
  std::unique_ptr<net::Port> make_segment(std::uint32_t i);

  // links_[i] feeds ring position i; links_[i+1] carries its output.
  std::vector<std::unique_ptr<net::Port>> links_;
  std::unique_ptr<net::Link> egress_link_;

  // FTC mode.
  std::vector<std::unique_ptr<FtcNode>> ftc_nodes_;  // All ever created.
  std::vector<std::atomic<FtcNode*>> ftc_at_;        // Current per position.
  std::unique_ptr<FeedbackChannel> feedback_;
  std::unique_ptr<Forwarder> forwarder_;
  std::unique_ptr<EgressBuffer> buffer_;

  // NF mode.
  std::vector<std::unique_ptr<NfNode>> nf_nodes_;

  std::map<std::uint32_t, std::uint32_t> position_region_;

  // FTMB mode (per middlebox: logger + master + two internal links).
  std::vector<std::unique_ptr<ftmb::FtmbLogger>> ftmb_loggers_;
  std::vector<std::unique_ptr<ftmb::FtmbMaster>> ftmb_masters_;
  std::vector<std::unique_ptr<net::Link>> ftmb_links_;

  bool started_{false};
};

}  // namespace sfc::ftc
