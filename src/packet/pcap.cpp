#include "packet/pcap.hpp"

#include "runtime/clock.hpp"

namespace sfc::pkt {

namespace {

#pragma pack(push, 1)
struct PcapGlobalHeader {
  std::uint32_t magic{0xa1b2c3d4};  // Microsecond timestamps.
  std::uint16_t version_major{2};
  std::uint16_t version_minor{4};
  std::int32_t thiszone{0};
  std::uint32_t sigfigs{0};
  std::uint32_t snaplen{65535};
  std::uint32_t network{1};  // LINKTYPE_ETHERNET.
};

struct PcapRecordHeader {
  std::uint32_t ts_sec;
  std::uint32_t ts_usec;
  std::uint32_t incl_len;
  std::uint32_t orig_len;
};
#pragma pack(pop)

}  // namespace

bool PcapWriter::open(const std::string& path) {
  LockGuard lock(mutex_);
  if (file_ != nullptr) return false;
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) return false;
  const PcapGlobalHeader header{};
  if (std::fwrite(&header, sizeof(header), 1, file_) != 1) {
    std::fclose(file_);
    file_ = nullptr;
    return false;
  }
  open_.store(true, std::memory_order_relaxed);
  return true;
}

bool PcapWriter::write(const Packet& packet, std::uint64_t timestamp_ns) {
  LockGuard lock(mutex_);
  if (file_ == nullptr) return false;
  if (timestamp_ns == 0) {
    timestamp_ns =
        packet.anno().ingress_ns != 0 ? packet.anno().ingress_ns : rt::now_ns();
  }
  PcapRecordHeader rec;
  rec.ts_sec = static_cast<std::uint32_t>(timestamp_ns / 1'000'000'000ull);
  rec.ts_usec =
      static_cast<std::uint32_t>(timestamp_ns % 1'000'000'000ull / 1000);
  rec.incl_len = static_cast<std::uint32_t>(packet.size());
  rec.orig_len = rec.incl_len;
  if (std::fwrite(&rec, sizeof(rec), 1, file_) != 1) return false;
  if (packet.size() != 0 &&
      std::fwrite(packet.data(), packet.size(), 1, file_) != 1) {
    return false;
  }
  written_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void PcapWriter::close() {
  LockGuard lock(mutex_);
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
    open_.store(false, std::memory_order_relaxed);
  }
}

}  // namespace sfc::pkt
