// Flow identification: the classic 5-tuple plus hashing for RSS and for
// state-store keys. Addresses/ports are host order inside FlowKey.
#pragma once

#include <cstdint>
#include <functional>

#include "runtime/rng.hpp"

namespace sfc::pkt {

struct FlowKey {
  std::uint32_t src_ip{0};
  std::uint32_t dst_ip{0};
  std::uint16_t src_port{0};
  std::uint16_t dst_port{0};
  std::uint8_t protocol{0};

  friend bool operator==(const FlowKey&, const FlowKey&) = default;

  /// Direction-sensitive hash (a->b != b->a), as used by NAT tables.
  std::uint64_t hash() const noexcept {
    std::uint64_t h = rt::splitmix64(
        (static_cast<std::uint64_t>(src_ip) << 32) | dst_ip);
    h ^= rt::splitmix64((static_cast<std::uint64_t>(src_port) << 24) |
                        (static_cast<std::uint64_t>(dst_port) << 8) | protocol);
    return rt::splitmix64(h);
  }

  /// Reversed flow (the return direction of a connection).
  FlowKey reversed() const noexcept {
    return FlowKey{dst_ip, src_ip, dst_port, src_port, protocol};
  }

  /// RSS hash: 32-bit, direction-sensitive; used to pick a NIC RX queue.
  std::uint32_t rss_hash() const noexcept {
    return static_cast<std::uint32_t>(hash() >> 16);
  }
};

}  // namespace sfc::pkt

template <>
struct std::hash<sfc::pkt::FlowKey> {
  std::size_t operator()(const sfc::pkt::FlowKey& k) const noexcept {
    return static_cast<std::size_t>(k.hash());
  }
};
