#include "packet/packet_io.hpp"

#include <cstring>

namespace sfc::pkt {

std::optional<ParsedPacket> parse_packet(Packet& p, std::size_t wire_len) {
  const std::size_t len = wire_len != 0 ? wire_len : p.size();
  if (len > p.size()) return std::nullopt;
  if (len < EthernetHeader::kSize + Ipv4Header::kSize) return std::nullopt;

  ParsedPacket out;
  out.eth = reinterpret_cast<EthernetHeader*>(p.data());
  if (out.eth->ether_type() != EthernetHeader::kTypeIpv4) return std::nullopt;

  const std::size_t l3_off = EthernetHeader::kSize;
  out.ip = reinterpret_cast<Ipv4Header*>(p.data() + l3_off);
  if ((out.ip->version_ihl >> 4) != 4) return std::nullopt;
  const std::size_t ihl = out.ip->header_length();
  if (ihl < Ipv4Header::kSize || l3_off + ihl > len) return std::nullopt;
  if (l3_off + out.ip->total_length() > len) return std::nullopt;

  const std::size_t l4_off = l3_off + ihl;
  out.flow.src_ip = out.ip->src();
  out.flow.dst_ip = out.ip->dst();
  out.flow.protocol = out.ip->protocol;

  std::size_t payload_off = l4_off;
  if (out.ip->protocol == Ipv4Header::kProtoUdp) {
    if (l4_off + UdpHeader::kSize > len) return std::nullopt;
    out.udp = reinterpret_cast<UdpHeader*>(p.data() + l4_off);
    out.flow.src_port = out.udp->src_port();
    out.flow.dst_port = out.udp->dst_port();
    payload_off = l4_off + UdpHeader::kSize;
  } else if (out.ip->protocol == Ipv4Header::kProtoTcp) {
    if (l4_off + TcpHeader::kSize > len) return std::nullopt;
    out.tcp = reinterpret_cast<TcpHeader*>(p.data() + l4_off);
    const std::size_t tcp_len = out.tcp->header_length();
    if (tcp_len < TcpHeader::kSize || l4_off + tcp_len > len) {
      return std::nullopt;
    }
    out.flow.src_port = out.tcp->src_port();
    out.flow.dst_port = out.tcp->dst_port();
    payload_off = l4_off + tcp_len;
  } else {
    return std::nullopt;
  }

  const std::size_t ip_end = l3_off + out.ip->total_length();
  out.payload = p.data() + payload_off;
  out.payload_len = ip_end > payload_off ? ip_end - payload_off : 0;

  auto& anno = p.anno();
  anno.l3_offset = static_cast<std::uint16_t>(l3_off);
  anno.l4_offset = static_cast<std::uint16_t>(l4_off);
  anno.payload_offset = static_cast<std::uint16_t>(payload_off);
  anno.flow_hash = out.flow.rss_hash();
  return out;
}

void PacketBuilder::build_l2_l3(const FlowKey& flow, std::size_t frame_len,
                                std::uint8_t protocol, std::size_t l4_size) {
  packet_.reset();
  auto* base = packet_.push_back(frame_len);
  std::memset(base, 0, frame_len);

  auto* eth = reinterpret_cast<EthernetHeader*>(base);
  // Deterministic locally-administered MACs derived from the addresses.
  eth->src[0] = eth->dst[0] = 0x02;
  std::memcpy(eth->src + 2, &flow.src_ip, 4);
  std::memcpy(eth->dst + 2, &flow.dst_ip, 4);
  eth->set_ether_type(EthernetHeader::kTypeIpv4);

  auto* ip = reinterpret_cast<Ipv4Header*>(base + EthernetHeader::kSize);
  ip->version_ihl = 0x45;
  ip->set_total_length(
      static_cast<std::uint16_t>(frame_len - EthernetHeader::kSize));
  ip->ttl = 64;
  ip->protocol = protocol;
  ip->set_src(flow.src_ip);
  ip->set_dst(flow.dst_ip);
  update_ipv4_checksum(*ip);
  (void)l4_size;
}

PacketBuilder& PacketBuilder::udp(const FlowKey& flow, std::size_t frame_len) {
  build_l2_l3(flow, frame_len, Ipv4Header::kProtoUdp, UdpHeader::kSize);
  auto* u = reinterpret_cast<UdpHeader*>(packet_.data() + EthernetHeader::kSize +
                                         Ipv4Header::kSize);
  u->set_src_port(flow.src_port);
  u->set_dst_port(flow.dst_port);
  u->set_length(static_cast<std::uint16_t>(
      frame_len - EthernetHeader::kSize - Ipv4Header::kSize));
  return *this;
}

PacketBuilder& PacketBuilder::tcp(const FlowKey& flow, std::size_t frame_len,
                                  std::uint8_t tcp_flags) {
  build_l2_l3(flow, frame_len, Ipv4Header::kProtoTcp, TcpHeader::kSize);
  auto* t = reinterpret_cast<TcpHeader*>(packet_.data() + EthernetHeader::kSize +
                                         Ipv4Header::kSize);
  t->set_src_port(flow.src_port);
  t->set_dst_port(flow.dst_port);
  t->data_offset = 5 << 4;
  t->flags = tcp_flags;
  return *this;
}

void rewrite_flow(ParsedPacket& pp, const FlowKey& new_flow) {
  pp.ip->set_src(new_flow.src_ip);
  pp.ip->set_dst(new_flow.dst_ip);
  if (pp.udp != nullptr) {
    pp.udp->set_src_port(new_flow.src_port);
    pp.udp->set_dst_port(new_flow.dst_port);
  } else if (pp.tcp != nullptr) {
    pp.tcp->set_src_port(new_flow.src_port);
    pp.tcp->set_dst_port(new_flow.dst_port);
  }
  update_ipv4_checksum(*pp.ip);
  pp.flow = new_flow;
}

}  // namespace sfc::pkt
