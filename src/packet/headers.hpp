// Wire-format protocol headers (Ethernet, IPv4, UDP, TCP).
//
// Multi-byte fields are kept in network byte order in the structs, with
// accessor helpers doing the conversion, so a struct overlaid on packet
// bytes is exactly the wire format.
#pragma once

#include <cstdint>
#include <cstring>

namespace sfc::pkt {

inline std::uint16_t hton16(std::uint16_t v) noexcept {
  return static_cast<std::uint16_t>((v << 8) | (v >> 8));
}
inline std::uint16_t ntoh16(std::uint16_t v) noexcept { return hton16(v); }

inline std::uint32_t hton32(std::uint32_t v) noexcept {
  return __builtin_bswap32(v);
}
inline std::uint32_t ntoh32(std::uint32_t v) noexcept { return hton32(v); }

#pragma pack(push, 1)

struct EthernetHeader {
  static constexpr std::size_t kSize = 14;
  static constexpr std::uint16_t kTypeIpv4 = 0x0800;

  std::uint8_t dst[6];
  std::uint8_t src[6];
  std::uint16_t ether_type_be;

  std::uint16_t ether_type() const noexcept { return ntoh16(ether_type_be); }
  void set_ether_type(std::uint16_t t) noexcept { ether_type_be = hton16(t); }
};

struct Ipv4Header {
  static constexpr std::size_t kSize = 20;
  static constexpr std::uint8_t kProtoTcp = 6;
  static constexpr std::uint8_t kProtoUdp = 17;

  std::uint8_t version_ihl;    // 0x45 for a 20-byte header.
  std::uint8_t dscp_ecn;
  std::uint16_t total_length_be;
  std::uint16_t identification_be;
  std::uint16_t flags_fragment_be;
  std::uint8_t ttl;
  std::uint8_t protocol;
  std::uint16_t checksum_be;
  std::uint32_t src_be;
  std::uint32_t dst_be;

  std::size_t header_length() const noexcept {
    return static_cast<std::size_t>(version_ihl & 0x0f) * 4;
  }
  std::uint16_t total_length() const noexcept { return ntoh16(total_length_be); }
  void set_total_length(std::uint16_t len) noexcept {
    total_length_be = hton16(len);
  }
  std::uint32_t src() const noexcept { return ntoh32(src_be); }
  std::uint32_t dst() const noexcept { return ntoh32(dst_be); }
  void set_src(std::uint32_t a) noexcept { src_be = hton32(a); }
  void set_dst(std::uint32_t a) noexcept { dst_be = hton32(a); }
};

struct UdpHeader {
  static constexpr std::size_t kSize = 8;

  std::uint16_t src_port_be;
  std::uint16_t dst_port_be;
  std::uint16_t length_be;
  std::uint16_t checksum_be;

  std::uint16_t src_port() const noexcept { return ntoh16(src_port_be); }
  std::uint16_t dst_port() const noexcept { return ntoh16(dst_port_be); }
  void set_src_port(std::uint16_t p) noexcept { src_port_be = hton16(p); }
  void set_dst_port(std::uint16_t p) noexcept { dst_port_be = hton16(p); }
  void set_length(std::uint16_t l) noexcept { length_be = hton16(l); }
};

struct TcpHeader {
  static constexpr std::size_t kSize = 20;
  static constexpr std::uint8_t kFlagFin = 0x01;
  static constexpr std::uint8_t kFlagSyn = 0x02;
  static constexpr std::uint8_t kFlagRst = 0x04;
  static constexpr std::uint8_t kFlagAck = 0x10;

  std::uint16_t src_port_be;
  std::uint16_t dst_port_be;
  std::uint32_t seq_be;
  std::uint32_t ack_be;
  std::uint8_t data_offset;  // Upper 4 bits: header length in 32-bit words.
  std::uint8_t flags;
  std::uint16_t window_be;
  std::uint16_t checksum_be;
  std::uint16_t urgent_be;

  std::uint16_t src_port() const noexcept { return ntoh16(src_port_be); }
  std::uint16_t dst_port() const noexcept { return ntoh16(dst_port_be); }
  void set_src_port(std::uint16_t p) noexcept { src_port_be = hton16(p); }
  void set_dst_port(std::uint16_t p) noexcept { dst_port_be = hton16(p); }
  std::size_t header_length() const noexcept {
    return static_cast<std::size_t>(data_offset >> 4) * 4;
  }
};

#pragma pack(pop)

static_assert(sizeof(EthernetHeader) == EthernetHeader::kSize);
static_assert(sizeof(Ipv4Header) == Ipv4Header::kSize);
static_assert(sizeof(UdpHeader) == UdpHeader::kSize);
static_assert(sizeof(TcpHeader) == TcpHeader::kSize);

/// RFC 1071 Internet checksum over @p len bytes.
std::uint16_t internet_checksum(const void* data, std::size_t len) noexcept;

/// Recomputes and stores the IPv4 header checksum.
void update_ipv4_checksum(Ipv4Header& ip) noexcept;

/// Validates the stored IPv4 header checksum.
bool verify_ipv4_checksum(const Ipv4Header& ip) noexcept;

/// Formats a.b.c.d from a host-order IPv4 address (debug/logging).
void format_ipv4(std::uint32_t addr, char out[16]) noexcept;

}  // namespace sfc::pkt
