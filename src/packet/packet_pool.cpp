#include "packet/packet_pool.hpp"

#include <algorithm>
#include <functional>
#include <thread>

#include "obs/prof.hpp"
#include "runtime/common.hpp"

namespace sfc::pkt {

void PacketDeleter::operator()(Packet* p) const noexcept {
  if (p != nullptr && pool != nullptr) pool->free_raw(p);
}

PacketPool::PacketPool(std::size_t capacity)
    : capacity_(capacity),
      slab_(std::make_unique<Packet[]>(capacity)),
      free_list_(capacity) {
  for (std::size_t i = 0; i < capacity_; ++i) {
    slab_[i].owner_ = this;
    free_list_.try_push(&slab_[i]);
  }
}

PacketPool::~PacketPool() = default;

PacketPool::Magazine& PacketPool::my_magazine() noexcept {
  static thread_local const std::size_t slot =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) &
      (kMagazines - 1);
  return magazines_[slot];
}

Packet* PacketPool::alloc_raw() noexcept {
  obs::ProfStageTimer pt{obs::prof_slot(), obs::ProfStage::kPoolAlloc};
  // Hot path: recycle from the caller's own magazine — the packet this
  // thread freed a moment ago, still warm in its cache, no shared CAS.
  if (auto p = my_magazine().q.try_pop()) {
    magazine_hits_.fetch_add(1, std::memory_order_relaxed);
    (*p)->reset();
    return *p;
  }
  if (auto p = free_list_.try_pop()) {
    (*p)->reset();
    return *p;
  }
  // Cold path: the global list is dry but other threads' magazines may
  // still hold packets (e.g. the sink frees, the source allocates). Sweep
  // them before reporting exhaustion.
  for (auto& m : magazines_) {
    if (auto p = m.q.try_pop()) {
      (*p)->reset();
      return *p;
    }
  }
  alloc_failures_.fetch_add(1, std::memory_order_relaxed);
  obs::prof_count(obs::ProfCounter::kPoolAllocFailure);
  return nullptr;
}

void PacketPool::push_global(Packet* p) noexcept {
  // The lock-free queue can transiently report "full" while a concurrent
  // alloc is mid-pop (its slot sequence not yet republished). The pool can
  // never be truly over capacity, so retry until the push lands — dropping
  // would leak the packet forever. Bounded exponential backoff (same shape
  // as Link::send_blocking): short cpu_relax bursts cover the common
  // one-republish race; past ~64 spins the core is better handed to the
  // thread holding up the slot.
  std::uint64_t retries = 0;
  for (unsigned backoff = 1; !free_list_.try_push(std::move(p));
       backoff = std::min(backoff * 2, 1024u)) {
    ++retries;
    if (backoff <= 64) {
      for (unsigned i = 0; i < backoff; ++i) rt::cpu_relax();
    } else {
      std::this_thread::yield();
    }
  }
  if (retries != 0) {
    free_retries_.fetch_add(retries, std::memory_order_relaxed);
    obs::prof_count(obs::ProfCounter::kPoolFreeRetry, retries);
  }
}

void PacketPool::free_raw(Packet* p) noexcept {
  if (p == nullptr) return;
  if (p->owner_ != this && p->owner_ != nullptr) {
    p->owner_->free_raw(p);
    return;
  }
  obs::ProfStageTimer pt{obs::prof_slot(), obs::ProfStage::kPoolFree};
  Magazine& mag = my_magazine();
  if (SFC_LIKELY(mag.q.try_push(p))) return;
  // Magazine full: spill half of it to the global list in one batch so the
  // next few frees stay on the magazine path, then retry. If the retry
  // still loses a race, the packet goes straight to the global list —
  // never dropped.
  Packet* spill[kMagazineCapacity / 2];
  const std::size_t n = mag.q.try_pop_n(spill, kMagazineCapacity / 2);
  for (std::size_t i = 0; i < n; ++i) push_global(spill[i]);
  if (mag.q.try_push(p)) return;
  push_global(p);
}

bool PacketPool::owns(const Packet* p) const noexcept {
  return p >= slab_.get() && p < slab_.get() + capacity_;
}

}  // namespace sfc::pkt
