#include "packet/packet_pool.hpp"

#include <algorithm>
#include <thread>

#include "obs/prof.hpp"
#include "runtime/common.hpp"

namespace sfc::pkt {

void PacketDeleter::operator()(Packet* p) const noexcept {
  if (p != nullptr && pool != nullptr) pool->free_raw(p);
}

PacketPool::PacketPool(std::size_t capacity)
    : capacity_(capacity),
      slab_(std::make_unique<Packet[]>(capacity)),
      free_list_(capacity) {
  for (std::size_t i = 0; i < capacity_; ++i) {
    slab_[i].owner_ = this;
    free_list_.try_push(&slab_[i]);
  }
}

PacketPool::~PacketPool() = default;

Packet* PacketPool::alloc_raw() noexcept {
  obs::ProfStageTimer pt{obs::prof_slot(), obs::ProfStage::kPoolAlloc};
  auto p = free_list_.try_pop();
  if (SFC_UNLIKELY(!p)) {
    alloc_failures_.fetch_add(1, std::memory_order_relaxed);
    obs::prof_count(obs::ProfCounter::kPoolAllocFailure);
    return nullptr;
  }
  (*p)->reset();
  return *p;
}

void PacketPool::free_raw(Packet* p) noexcept {
  if (p == nullptr) return;
  if (p->owner_ != this && p->owner_ != nullptr) {
    p->owner_->free_raw(p);
    return;
  }
  // The lock-free queue can transiently report "full" while a concurrent
  // alloc is mid-pop (its slot sequence not yet republished). The pool can
  // never be truly over capacity, so retry until the push lands — dropping
  // would leak the packet forever. Bounded exponential backoff (same shape
  // as Link::send_blocking): short cpu_relax bursts cover the common
  // one-republish race; past ~64 spins the core is better handed to the
  // thread holding up the slot.
  obs::ProfStageTimer pt{obs::prof_slot(), obs::ProfStage::kPoolFree};
  std::uint64_t retries = 0;
  for (unsigned backoff = 1; !free_list_.try_push(std::move(p));
       backoff = std::min(backoff * 2, 1024u)) {
    ++retries;
    if (backoff <= 64) {
      for (unsigned i = 0; i < backoff; ++i) rt::cpu_relax();
    } else {
      std::this_thread::yield();
    }
  }
  if (retries != 0) {
    free_retries_.fetch_add(retries, std::memory_order_relaxed);
    obs::prof_count(obs::ProfCounter::kPoolFreeRetry, retries);
  }
}

bool PacketPool::owns(const Packet* p) const noexcept {
  return p >= slab_.get() && p < slab_.get() + capacity_;
}

}  // namespace sfc::pkt
