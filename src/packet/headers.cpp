#include "packet/headers.hpp"

#include <cstdio>

namespace sfc::pkt {

std::uint16_t internet_checksum(const void* data, std::size_t len) noexcept {
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint64_t sum = 0;
  while (len >= 2) {
    std::uint16_t word;
    std::memcpy(&word, p, 2);
    sum += word;
    p += 2;
    len -= 2;
  }
  if (len == 1) {
    // Final odd byte is padded with zero on the right (network order).
    std::uint16_t word = 0;
    std::memcpy(&word, p, 1);
    sum += word;
  }
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum);
}

void update_ipv4_checksum(Ipv4Header& ip) noexcept {
  ip.checksum_be = 0;
  ip.checksum_be = internet_checksum(&ip, ip.header_length());
}

bool verify_ipv4_checksum(const Ipv4Header& ip) noexcept {
  return internet_checksum(&ip, ip.header_length()) == 0;
}

void format_ipv4(std::uint32_t addr, char out[16]) noexcept {
  std::snprintf(out, 16, "%u.%u.%u.%u", (addr >> 24) & 0xff, (addr >> 16) & 0xff,
                (addr >> 8) & 0xff, addr & 0xff);
}

}  // namespace sfc::pkt
