// Packet buffer abstraction (Click Packet / DPDK mbuf stand-in).
//
// A Packet is a fixed-capacity buffer with
//   * headroom  — so encapsulation can prepend headers without copying,
//   * a data region — the wire bytes,
//   * tailroom  — where FTC appends the piggyback message in place,
//   * annotations — metadata that travels with the packet inside one
//     simulated server (timestamps, flow hash, parsed header offsets).
//
// Packets are pool-allocated and move between threads by raw ownership
// transfer through lock-free queues; PacketPtr restores RAII at the edges.
#pragma once

#include <cstdint>
#include <cstring>
#include <memory>
#include <span>

#include "runtime/common.hpp"

namespace sfc::pkt {

class PacketPool;

/// Per-packet metadata. Never serialized; local to one simulated server —
/// but we do preserve it across simulated links (it models NIC-to-NIC
/// metadata like timestamps that the evaluation harness needs end-to-end).
struct Annotations {
  std::uint64_t ingress_ns{0};   ///< Generator timestamp for latency.
  std::uint64_t packet_id{0};    ///< Unique id assigned by the generator.
  std::uint64_t trace_id{0};     ///< Nonzero = sampled for span tracing.
  std::uint32_t flow_hash{0};    ///< RSS hash over the 5-tuple.
  std::uint16_t l3_offset{0};    ///< Offset of the IPv4 header.
  std::uint16_t l4_offset{0};    ///< Offset of the TCP/UDP header.
  std::uint16_t payload_offset{0};
  std::uint32_t aux{0};          ///< Runtime scratch (e.g. FTMB PAL count).
  std::uint32_t tseq{0};         ///< Reliable-transport sequence number,
                                 ///< stamped per hop by net::ReliableChannel.
  bool is_control{false};        ///< Propagating/recovery packet, not user data.
};

class Packet {
 public:
  static constexpr std::size_t kCapacity = 4096;
  static constexpr std::size_t kDefaultHeadroom = 128;

  Packet() noexcept { reset(); }

  /// Restores a pristine packet (pool reuse path).
  void reset() noexcept {
    data_off_ = kDefaultHeadroom;
    data_len_ = 0;
    anno_ = Annotations{};
  }

  std::uint8_t* data() noexcept { return buf_ + data_off_; }
  const std::uint8_t* data() const noexcept { return buf_ + data_off_; }
  std::size_t size() const noexcept { return data_len_; }
  bool empty() const noexcept { return data_len_ == 0; }

  std::span<std::uint8_t> bytes() noexcept { return {data(), data_len_}; }
  std::span<const std::uint8_t> bytes() const noexcept {
    return {data(), data_len_};
  }

  std::size_t headroom() const noexcept { return data_off_; }
  std::size_t tailroom() const noexcept {
    return kCapacity - data_off_ - data_len_;
  }

  /// Prepends @p n bytes (returns pointer to the new front). Caller must
  /// check headroom() first; this is the encap fast path.
  std::uint8_t* push_front(std::size_t n) noexcept {
    data_off_ -= static_cast<std::uint32_t>(n);
    data_len_ += static_cast<std::uint32_t>(n);
    return data();
  }

  /// Drops @p n bytes from the front (decap).
  void pull_front(std::size_t n) noexcept {
    data_off_ += static_cast<std::uint32_t>(n);
    data_len_ -= static_cast<std::uint32_t>(n);
  }

  /// Extends the data region by @p n bytes at the tail and returns a
  /// pointer to the first appended byte. Caller must check tailroom().
  std::uint8_t* push_back(std::size_t n) noexcept {
    std::uint8_t* p = buf_ + data_off_ + data_len_;
    data_len_ += static_cast<std::uint32_t>(n);
    return p;
  }

  /// Truncates @p n bytes from the tail.
  void trim_back(std::size_t n) noexcept {
    data_len_ -= static_cast<std::uint32_t>(n);
  }

  /// Sets the payload to a copy of @p bytes (resets offsets first).
  void assign(std::span<const std::uint8_t> bytes) noexcept {
    data_off_ = kDefaultHeadroom;
    data_len_ = static_cast<std::uint32_t>(bytes.size());
    std::memcpy(data(), bytes.data(), bytes.size());
  }

  Annotations& anno() noexcept { return anno_; }
  const Annotations& anno() const noexcept { return anno_; }

  /// Deep copy into @p dst (used by FTMB's output logger and by link
  /// models that duplicate packets).
  void clone_into(Packet& dst) const noexcept {
    dst.data_off_ = data_off_;
    dst.data_len_ = data_len_;
    std::memcpy(dst.buf_ + data_off_, buf_ + data_off_, data_len_);
    dst.anno_ = anno_;
  }

 private:
  friend class PacketPool;

  std::uint32_t data_off_{kDefaultHeadroom};
  std::uint32_t data_len_{0};
  PacketPool* owner_{nullptr};  ///< Pool this packet belongs to.
  Annotations anno_{};
  alignas(8) std::uint8_t buf_[kCapacity];
};

/// Deleter that returns the packet to its pool.
struct PacketDeleter {
  PacketPool* pool{nullptr};
  void operator()(Packet* p) const noexcept;
};

using PacketPtr = std::unique_ptr<Packet, PacketDeleter>;

}  // namespace sfc::pkt
