// Minimal pcap writer (classic libpcap format, LINKTYPE_ETHERNET).
//
// Debugging aid: tap any simulated link or chain boundary and inspect the
// traffic — including FTC's piggyback trailers — in Wireshark/tcpdump.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <string>

#include "base/mutex.hpp"
#include "packet/packet.hpp"
#include "runtime/common.hpp"

namespace sfc::pkt {

class PcapWriter : rt::NonCopyable {
 public:
  PcapWriter() = default;
  ~PcapWriter() { close(); }

  /// Opens @p path and writes the global header. Returns false on I/O
  /// error (the writer stays closed; write() becomes a no-op).
  bool open(const std::string& path);

  /// Appends one packet record (thread-safe). @p timestamp_ns defaults to
  /// the packet's ingress annotation.
  bool write(const Packet& packet, std::uint64_t timestamp_ns = 0);

  void close();

  /// Lock-free observers: callers poll these concurrently with writers
  /// (e.g. a test watching a tap fill), so both are relaxed atomics
  /// mirroring state mutated under mutex_.
  bool is_open() const noexcept {
    return open_.load(std::memory_order_relaxed);
  }
  std::uint64_t packets_written() const noexcept {
    return written_.load(std::memory_order_relaxed);
  }

 private:
  Mutex mutex_{ranks::kLeaf, "pcap.writer"};
  std::FILE* file_ SFC_GUARDED_BY(mutex_){nullptr};
  std::atomic<bool> open_{false};
  std::atomic<std::uint64_t> written_{0};
};

}  // namespace sfc::pkt
