// Minimal pcap writer (classic libpcap format, LINKTYPE_ETHERNET).
//
// Debugging aid: tap any simulated link or chain boundary and inspect the
// traffic — including FTC's piggyback trailers — in Wireshark/tcpdump.
#pragma once

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>

#include "packet/packet.hpp"
#include "runtime/common.hpp"

namespace sfc::pkt {

class PcapWriter : rt::NonCopyable {
 public:
  PcapWriter() = default;
  ~PcapWriter() { close(); }

  /// Opens @p path and writes the global header. Returns false on I/O
  /// error (the writer stays closed; write() becomes a no-op).
  bool open(const std::string& path);

  /// Appends one packet record (thread-safe). @p timestamp_ns defaults to
  /// the packet's ingress annotation.
  bool write(const Packet& packet, std::uint64_t timestamp_ns = 0);

  void close();

  bool is_open() const noexcept { return file_ != nullptr; }
  std::uint64_t packets_written() const noexcept { return written_; }

 private:
  std::mutex mutex_;
  std::FILE* file_{nullptr};
  std::uint64_t written_{0};
};

}  // namespace sfc::pkt
