// Building and parsing packets.
//
// PacketBuilder fabricates well-formed Ethernet/IPv4/{UDP,TCP} frames for
// the traffic generator; parse_packet() recovers header offsets and the
// flow key — what a real middlebox would do after NIC RX.
#pragma once

#include <cstdint>
#include <optional>

#include "packet/flow.hpp"
#include "packet/headers.hpp"
#include "packet/packet.hpp"

namespace sfc::pkt {

/// Result of parsing a packet's protocol stack.
struct ParsedPacket {
  EthernetHeader* eth{nullptr};
  Ipv4Header* ip{nullptr};
  UdpHeader* udp{nullptr};  // Exactly one of udp/tcp set for L4 packets.
  TcpHeader* tcp{nullptr};
  FlowKey flow{};
  std::uint8_t* payload{nullptr};
  std::size_t payload_len{0};
};

/// Parses Ethernet/IPv4/{UDP,TCP}. Fills the packet's annotations
/// (l3/l4/payload offsets, flow hash) on success. Returns std::nullopt on
/// malformed, truncated, or non-IPv4 input.
///
/// @param wire_len If nonzero, parse only the first @p wire_len bytes of
///        the packet (FTC uses this to hide the appended piggyback
///        message from the middlebox).
std::optional<ParsedPacket> parse_packet(Packet& p, std::size_t wire_len = 0);

/// Fabricates frames for the generator and for protocol-internal packets.
class PacketBuilder {
 public:
  explicit PacketBuilder(Packet& p) : packet_(p) {}

  /// Builds a UDP packet of exactly @p frame_len bytes (Ethernet frame
  /// length, >= 42). Payload bytes are zeroed. Computes IPv4 checksum.
  PacketBuilder& udp(const FlowKey& flow, std::size_t frame_len);

  /// Builds a TCP packet of exactly @p frame_len bytes (>= 54).
  PacketBuilder& tcp(const FlowKey& flow, std::size_t frame_len,
                     std::uint8_t tcp_flags = TcpHeader::kFlagAck);

  Packet& done() { return packet_; }

 private:
  void build_l2_l3(const FlowKey& flow, std::size_t frame_len,
                   std::uint8_t protocol, std::size_t l4_size);

  Packet& packet_;
};

/// Rewrites the flow key fields of an already-parsed packet in place and
/// refreshes the IPv4 checksum (the NAT fast path).
void rewrite_flow(ParsedPacket& pp, const FlowKey& new_flow);

}  // namespace sfc::pkt
