// Slab packet pool with a lock-free free list and per-thread free
// magazines.
//
// All packets for one experiment come from a single pool so allocation is
// a queue pop on the fast path and exhaustion is back-pressure (the
// generator simply cannot inject faster than the chain drains), mirroring
// how a DPDK mempool behaves.
//
// Frees land in a small per-thread magazine (hashed slot) instead of the
// shared MPMC free list: the common free→alloc cycle on one worker then
// recycles a cache-warm packet with zero shared-CAS traffic, and the CAS
// storm of W workers all freeing into one queue head disappears. Magazines
// overflow to the global list in bulk, and allocation falls back
// magazine → global → cold sweep of every magazine, so no packet is ever
// stranded.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "packet/packet.hpp"
#include "runtime/common.hpp"
#include "runtime/mpmc_queue.hpp"

namespace sfc::pkt {

class PacketPool : rt::NonCopyable {
 public:
  explicit PacketPool(std::size_t capacity);
  ~PacketPool();

  /// Pops a packet; returns nullptr when the pool is exhausted.
  Packet* alloc_raw() noexcept;

  /// RAII variant of alloc_raw().
  PacketPtr alloc() noexcept {
    return PacketPtr{alloc_raw(), PacketDeleter{this}};
  }

  /// Returns @p p to its owning pool (packet is reset for reuse). Safe to
  /// call on any pool object: packets are routed to the pool that
  /// allocated them, so components handling packets from several pools
  /// (e.g. data + protocol-internal) free through whichever handle they
  /// hold.
  void free_raw(Packet* p) noexcept;

  std::size_t capacity() const noexcept { return capacity_; }

  /// Approximate number of packets currently available (global free list
  /// plus every thread magazine).
  std::size_t available_approx() const noexcept {
    std::size_t n = free_list_.size_approx();
    for (const auto& m : magazines_) n += m.q.size_approx();
    return n;
  }

  /// True if @p p was allocated from this pool (debug aid).
  bool owns(const Packet* p) const noexcept;

  /// Total free_raw() retries against a transiently-full free list. A
  /// nonzero value is normal under contention; a growing one means frees
  /// keep racing concurrent allocs (exported as `pool.free_retries`).
  std::uint64_t free_retries() const noexcept {
    return free_retries_.load(std::memory_order_relaxed);
  }

  /// Total alloc_raw() calls that found the pool exhausted. Under a
  /// saturating generator this is ordinary back-pressure; in a paced
  /// steady-state window it means the data path allocated (exported as
  /// `pool.alloc_failures`, a quiet-mode violation).
  std::uint64_t alloc_failures() const noexcept {
    return alloc_failures_.load(std::memory_order_relaxed);
  }

  /// Allocs served from the caller's magazine (cache-warm recycle, no
  /// shared-queue CAS). Exported as `pool.magazine_hits`.
  std::uint64_t magazine_hits() const noexcept {
    return magazine_hits_.load(std::memory_order_relaxed);
  }

  /// Number of per-thread magazine slots (threads hash onto these).
  static constexpr std::size_t kMagazines = 64;
  /// Packets a magazine holds before overflowing to the global list.
  static constexpr std::size_t kMagazineCapacity = 32;

 private:
  /// One free magazine. Still an MPMC queue — several threads can hash to
  /// one slot — but in the steady state a slot has one owner, so its CAS
  /// slots stay core-local. Padded so neighboring magazines never share a
  /// line.
  struct alignas(rt::kCacheLineSize) Magazine {
    rt::MpmcQueue<Packet*> q{kMagazineCapacity};
  };

  /// Magazine slot for the calling thread.
  Magazine& my_magazine() noexcept;

  /// Pushes @p p to the global free list, retrying transient "full"
  /// reports (the pool can never truly exceed capacity).
  void push_global(Packet* p) noexcept;

  const std::size_t capacity_;
  std::unique_ptr<Packet[]> slab_;
  rt::MpmcQueue<Packet*> free_list_;
  std::vector<Magazine> magazines_{kMagazines};
  std::atomic<std::uint64_t> free_retries_{0};
  std::atomic<std::uint64_t> alloc_failures_{0};
  std::atomic<std::uint64_t> magazine_hits_{0};
};

}  // namespace sfc::pkt
