// Slab packet pool with a lock-free free list.
//
// All packets for one experiment come from a single pool so allocation is
// a queue pop on the fast path and exhaustion is back-pressure (the
// generator simply cannot inject faster than the chain drains), mirroring
// how a DPDK mempool behaves.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "packet/packet.hpp"
#include "runtime/mpmc_queue.hpp"

namespace sfc::pkt {

class PacketPool : rt::NonCopyable {
 public:
  explicit PacketPool(std::size_t capacity);
  ~PacketPool();

  /// Pops a packet; returns nullptr when the pool is exhausted.
  Packet* alloc_raw() noexcept;

  /// RAII variant of alloc_raw().
  PacketPtr alloc() noexcept {
    return PacketPtr{alloc_raw(), PacketDeleter{this}};
  }

  /// Returns @p p to its owning pool (packet is reset for reuse). Safe to
  /// call on any pool object: packets are routed to the pool that
  /// allocated them, so components handling packets from several pools
  /// (e.g. data + protocol-internal) free through whichever handle they
  /// hold.
  void free_raw(Packet* p) noexcept;

  std::size_t capacity() const noexcept { return capacity_; }

  /// Approximate number of packets currently available.
  std::size_t available_approx() const noexcept {
    return free_list_.size_approx();
  }

  /// True if @p p was allocated from this pool (debug aid).
  bool owns(const Packet* p) const noexcept;

  /// Total free_raw() retries against a transiently-full free list. A
  /// nonzero value is normal under contention; a growing one means frees
  /// keep racing concurrent allocs (exported as `pool.free_retries`).
  std::uint64_t free_retries() const noexcept {
    return free_retries_.load(std::memory_order_relaxed);
  }

  /// Total alloc_raw() calls that found the pool exhausted. Under a
  /// saturating generator this is ordinary back-pressure; in a paced
  /// steady-state window it means the data path allocated (exported as
  /// `pool.alloc_failures`, a quiet-mode violation).
  std::uint64_t alloc_failures() const noexcept {
    return alloc_failures_.load(std::memory_order_relaxed);
  }

 private:
  const std::size_t capacity_;
  std::unique_ptr<Packet[]> slab_;
  rt::MpmcQueue<Packet*> free_list_;
  std::atomic<std::uint64_t> free_retries_{0};
  std::atomic<std::uint64_t> alloc_failures_{0};
};

}  // namespace sfc::pkt
