#include "state/partition_lock.hpp"

namespace sfc::state {

TxnSlot& this_thread_slot() noexcept {
  thread_local TxnSlot slot;
  return slot;
}

}  // namespace sfc::state
