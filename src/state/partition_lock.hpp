// Per-partition lock with wound-wait deadlock avoidance.
//
// Two kinds of critical sections take this lock:
//  * head-side packet transactions (strict 2PL: held until commit), and
//  * replica-side log application (short, ordered acquisition).
//
// Each thread of control owns a persistent TxnSlot carrying its current
// transaction timestamp and a wound flag. The lock stores a pointer to the
// owner's slot. A contender that is *older* (smaller timestamp) wounds the
// owner by setting the owner's flag; the owner observes it at its next
// state access and aborts, releasing its locks. A younger contender waits.
// Replica appliers use timestamp 0 (older than every transaction) so they
// are never wounded and never stall behind a long transaction for long.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>

#include "base/lock_rank.hpp"
#include "base/thread_annotations.hpp"
#include "obs/prof.hpp"
#include "runtime/common.hpp"

namespace sfc::state {

/// Identity of a thread of control for wound-wait purposes. Must outlive
/// any lock acquisition it is used for (we use thread_local instances, so
/// slots live for the thread's lifetime and dereferencing a stale owner
/// pointer is safe; the worst case is a spurious wound of a reused slot,
/// which only costs one extra abort).
struct TxnSlot {
  std::atomic<std::uint64_t> ts{0};
  std::atomic<bool> wounded{false};
};

/// The calling thread's slot (one per thread, reused across transactions).
TxnSlot& this_thread_slot() noexcept;

class SFC_CAPABILITY("mutex") alignas(rt::kCacheLineSize) PartitionLock {
 public:
  /// Wound-wait acquisition for the transaction identified by @p self.
  /// Returns false if @p self was wounded while waiting (the caller must
  /// abort; the lock was NOT acquired).
  bool lock(TxnSlot* self) noexcept SFC_TRY_ACQUIRE(true) {
    // Rank discipline: partition locks sit at ranks::kPartition; same-rank
    // nesting is sanctioned (wound-wait makes arbitrary-order multi-lock
    // deadlock-free), any other rank must already be higher.
    lockrank::check_acquire(this, ranks::kPartition, "state.partition",
                            SameRank::kWoundWait);
    bool saw_owner = false;
    for (unsigned spins = 0;; ++spins) {
      TxnSlot* expected = nullptr;
      // Success is acq_rel: acquire pairs with unlock()'s release (lock
      // semantics), release publishes `self` — a TLS-resident slot — so a
      // contender that loses the CAS and dereferences the owner pointer on
      // the wound path is ordered after the owner thread's initialization.
      // Failure is acquire for exactly that dereference.
      if (owner_.compare_exchange_weak(expected, self,
                                       std::memory_order_acq_rel,
                                       std::memory_order_acquire)) {
        lockrank::note_held(this, ranks::kPartition, "state.partition",
                            SameRank::kWoundWait);
        // Contention accounting (obs/prof): an acquisition is "contended"
        // when a CAS attempt lost to a live owner (spurious weak-CAS
        // failures do not count). One load + branch when no profiler is
        // installed.
        if (SFC_UNLIKELY(obs::hot_profiler() != nullptr)) {
          obs::prof_count(obs::ProfCounter::kPartitionLockAcquire);
          if (saw_owner) {
            obs::prof_count(obs::ProfCounter::kPartitionLockContended);
          }
        }
        return true;
      }
      if (expected != nullptr) saw_owner = true;
      if (expected != nullptr &&
          self->ts.load(std::memory_order_relaxed) <
              expected->ts.load(std::memory_order_relaxed)) {
        expected->wounded.store(true, std::memory_order_release);
      }
      if (self->wounded.load(std::memory_order_acquire)) return false;
      // Spin briefly, then yield: on an oversubscribed (or single-core)
      // host a pure spin starves the descheduled owner and livelocks.
      if (spins < 64) {
        rt::cpu_relax();
      } else {
        std::this_thread::yield();
      }
    }
  }

  /// Non-wound acquisition for replica appliers: the slot's timestamp is 0,
  /// so the caller can never be wounded and this always succeeds.
  void lock_apply(TxnSlot* self) noexcept SFC_ACQUIRE() {
    self->ts.store(0, std::memory_order_relaxed);
    self->wounded.store(false, std::memory_order_relaxed);
    (void)lock(self);
  }

  void unlock() noexcept SFC_RELEASE() {
    lockrank::note_release(this);
    owner_.store(nullptr, std::memory_order_release);
  }

  bool held() const noexcept {
    return owner_.load(std::memory_order_acquire) != nullptr;
  }

 private:
  std::atomic<TxnSlot*> owner_{nullptr};
};

}  // namespace sfc::state
