// Partitioned key-value state store.
//
// One store holds the state of one middlebox. Keys are 64-bit (middleboxes
// hash flow tuples or variable names into them); values are small byte
// strings. The key space is hash-partitioned into at most 64 partitions,
// each with its own lock — the unit of concurrency control for packet
// transactions (head side) and of dependency tracking for replication
// (replica side). Partitioning is deterministic, so every replica of a
// middlebox assigns each key to the same partition.
// Shard-affine mode (enable_shard_affine) inverts the concurrency model:
// each partition has a single writer (its owning worker, see ShardMap),
// the partition lock is bypassed on the owner path, and monitoring/stats
// readers snapshot per-partition occupancy through a seqlock instead of
// blocking the writer. Cross-shard writes reach the owner through
// HandoffMesh rings (handoff_ring.hpp); readers of the map itself must be
// the owner or run quiesced (recovery serialize, post-convergence tests) —
// the seqlock acquire in get() supplies the happens-before edge.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "base/lock_rank.hpp"
#include "base/thread_annotations.hpp"
#include "runtime/common.hpp"
#include "runtime/rng.hpp"
#include "state/bytes.hpp"
#include "state/partition_lock.hpp"

namespace sfc::state {

using Key = std::uint64_t;

/// Maximum partitions per store; keeps "the set of touched partitions" a
/// few mask bits in piggyback logs and dependency vectors compact. The
/// paper sizes partitions to exceed the core count; 16 comfortably covers
/// the 8-thread middleboxes of the evaluation.
inline constexpr std::size_t kMaxPartitions = 16;

/// One element of a transaction's write set / a piggyback log.
struct StateUpdate {
  Key key{0};
  Bytes value{};
  bool erase{false};

  friend bool operator==(const StateUpdate& a, const StateUpdate& b) noexcept {
    return a.key == b.key && a.erase == b.erase && a.value == b.value;
  }
};

/// A state update whose value references bytes in place (the zero-copy
/// wire apply path): the span must stay valid for the duration of the
/// call it is passed to.
struct WireUpdate {
  Key key{0};
  std::span<const std::uint8_t> value{};
  bool erase{false};
};

class StateStore : rt::NonCopyable {
 public:
  /// @param num_partitions Power of two in [1, 64]. The paper recommends
  ///        exceeding the core count to reduce contention; 64 is the
  ///        default.
  explicit StateStore(std::size_t num_partitions = kMaxPartitions);

  std::size_t num_partitions() const noexcept { return num_partitions_; }

  std::size_t partition_of(Key key) const noexcept {
    return rt::splitmix64(key) & partition_mask_;
  }

  /// Bitmask with one bit set per existing partition.
  std::uint64_t partition_bits() const noexcept {
    return (partition_mask_ << 1) | 1;
  }

  PartitionLock& partition_lock(std::size_t pidx) noexcept {
    return partitions_[pidx].lock;
  }

  /// --- Primitive accessors. Caller must hold the partition's lock. ---
  /// Which partition lock guards a key is data-dependent (partition_of),
  /// so the requirement is not expressible as a static TSA capability;
  /// the lock-rank detector covers the dynamic discipline instead.
  const Bytes* get_locked(Key key) const noexcept;
  void put_locked(Key key, Bytes value);
  bool erase_locked(Key key) noexcept;

  /// Applies a batch of updates (replica path): takes the touched
  /// partitions' locks in index order, applies, releases.
  void apply(std::span<const StateUpdate> updates);

  /// apply() for updates referencing wire bytes in place: values are
  /// copied straight from the packet into the store under the partition
  /// lock, with no intermediate StateUpdate materialization. Callers
  /// batch a whole burst's writes so each touched partition is locked
  /// once per burst.
  void apply_wire(std::span<const WireUpdate> updates);

  /// Convenience point read. Locked mode takes the partition lock;
  /// shard-affine mode is a seqlock reader: version-stable retry loop,
  /// then a reader-clock release bump that the owner's next write section
  /// acquires, so a converged-store read is ordered on both sides (exact
  /// for quiesced/converged stores, the only supported use).
  std::optional<Bytes> get(Key key);

  /// Total entries across partitions. Lock-free: sums the per-partition
  /// occupancy counters, which are maintained under the same exclusivity
  /// as the map itself (exact whenever the store is quiesced).
  std::size_t total_entries();

  // --- Shard-affine (single-writer) mode. -------------------------------
  /// Switches the store to shard-affine apply: *_owner mutators skip the
  /// partition lock entirely. The caller guarantees the single-writer
  /// discipline — each partition mutated only by its owning worker thread,
  /// or by any thread while the node is quiesced.
  void enable_shard_affine() noexcept { shard_affine_ = true; }
  bool shard_affine() const noexcept { return shard_affine_; }

  /// Opens/closes a seqlock write section over the partitions in @p pmask:
  /// version goes odd, mutations land, version goes even with release so
  /// stats readers retry instead of blocking and get() readers inherit the
  /// happens-before. Sections must be tiny — the kSeqlockWrite lock rank
  /// aborts the run if the owner blocks on ANY lock inside one.
  void owner_write_begin(std::uint64_t pmask) noexcept;
  void owner_write_end(std::uint64_t pmask) noexcept;

  /// Owner-path mutators: no lock, no atomic RMW. Call inside an
  /// owner_write_begin/end section covering the key's partition.
  void put_owner(Key key, Bytes value);
  bool erase_owner(Key key) noexcept;

  /// Owner-path batch applies. @p pmask filters: updates whose partition
  /// is outside the mask are skipped (the cross-shard portion a handoff
  /// ring delivers to another owner). Pass ~0ull to apply everything.
  void apply_owner(std::span<const StateUpdate> updates, std::uint64_t pmask);
  void apply_wire_owner(std::span<const WireUpdate> updates,
                        std::uint64_t pmask);

  /// Seqlock-consistent occupancy snapshot of one partition. Never blocks
  /// the writer; retries while a write section is open.
  struct OccupancySnapshot {
    std::uint64_t keys{0};
    std::uint64_t keys_hw{0};
  };
  OccupancySnapshot occupancy(std::size_t pidx) const noexcept;

  /// Highest per-partition occupancy high-water mark (registry gauge).
  std::uint64_t keys_high_water() const noexcept;

  /// Drops all entries (takes all locks).
  void clear();

  /// --- Recovery serialization. ---
  /// Serializes every entry. Takes partition locks one at a time, so call
  /// only while the store is quiesced (recovery guarantees this).
  void serialize(std::vector<std::uint8_t>& out);

  /// Replaces the store contents from serialize() output. Returns false on
  /// malformed input (store left cleared).
  bool deserialize(std::span<const std::uint8_t> in);

 private:
  struct Partition {
    PartitionLock lock;
    std::unordered_map<Key, Bytes> map;
  };

  /// Per-partition occupancy stats, written only under the partition's
  /// write exclusivity (lock or shard ownership) and read through the
  /// seqlock. Cache-line padded: the owner's version bump must not false-
  /// share with a neighboring partition's owner.
  struct alignas(rt::kCacheLineSize) Occupancy {
    std::atomic<std::uint64_t> version{0};  ///< seqlock; odd = write open
    std::atomic<std::uint64_t> keys{0};
    std::atomic<std::uint64_t> keys_hw{0};
    /// Bumped (release) by a foreign get() after its map read completes;
    /// acquire-loaded by owner_write_begin. Orders converged-store reads
    /// before the owner's NEXT write section — the direction the seqlock
    /// version alone cannot give (version end-release only orders past
    /// writes before later reads).
    std::atomic<std::uint64_t> reader_clock{0};
  };

  /// Single-writer counter maintenance (no RMW: exclusivity comes from the
  /// partition lock or shard ownership).
  void note_insert(std::size_t pidx) noexcept {
    auto& occ = occupancy_[pidx];
    const auto keys = occ.keys.load(std::memory_order_relaxed) + 1;
    occ.keys.store(keys, std::memory_order_relaxed);
    if (keys > occ.keys_hw.load(std::memory_order_relaxed)) {
      occ.keys_hw.store(keys, std::memory_order_relaxed);
    }
  }
  void note_erase(std::size_t pidx) noexcept {
    auto& occ = occupancy_[pidx];
    occ.keys.store(occ.keys.load(std::memory_order_relaxed) - 1,
                   std::memory_order_relaxed);
  }

  std::size_t num_partitions_;
  std::size_t partition_mask_;
  bool shard_affine_{false};
  std::array<Partition, kMaxPartitions> partitions_;
  std::array<Occupancy, kMaxPartitions> occupancy_;
};

/// Derives a state key from a name string (for named shared variables like
/// Monitor's counters). FNV-1a, stable across runs and replicas.
constexpr Key key_of_name(std::string_view name) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : name) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace sfc::state
