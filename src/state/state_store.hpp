// Partitioned key-value state store.
//
// One store holds the state of one middlebox. Keys are 64-bit (middleboxes
// hash flow tuples or variable names into them); values are small byte
// strings. The key space is hash-partitioned into at most 64 partitions,
// each with its own lock — the unit of concurrency control for packet
// transactions (head side) and of dependency tracking for replication
// (replica side). Partitioning is deterministic, so every replica of a
// middlebox assigns each key to the same partition.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "base/thread_annotations.hpp"
#include "runtime/common.hpp"
#include "runtime/rng.hpp"
#include "state/bytes.hpp"
#include "state/partition_lock.hpp"

namespace sfc::state {

using Key = std::uint64_t;

/// Maximum partitions per store; keeps "the set of touched partitions" a
/// few mask bits in piggyback logs and dependency vectors compact. The
/// paper sizes partitions to exceed the core count; 16 comfortably covers
/// the 8-thread middleboxes of the evaluation.
inline constexpr std::size_t kMaxPartitions = 16;

/// One element of a transaction's write set / a piggyback log.
struct StateUpdate {
  Key key{0};
  Bytes value{};
  bool erase{false};

  friend bool operator==(const StateUpdate& a, const StateUpdate& b) noexcept {
    return a.key == b.key && a.erase == b.erase && a.value == b.value;
  }
};

/// A state update whose value references bytes in place (the zero-copy
/// wire apply path): the span must stay valid for the duration of the
/// call it is passed to.
struct WireUpdate {
  Key key{0};
  std::span<const std::uint8_t> value{};
  bool erase{false};
};

class StateStore : rt::NonCopyable {
 public:
  /// @param num_partitions Power of two in [1, 64]. The paper recommends
  ///        exceeding the core count to reduce contention; 64 is the
  ///        default.
  explicit StateStore(std::size_t num_partitions = kMaxPartitions);

  std::size_t num_partitions() const noexcept { return num_partitions_; }

  std::size_t partition_of(Key key) const noexcept {
    return rt::splitmix64(key) & partition_mask_;
  }

  PartitionLock& partition_lock(std::size_t pidx) noexcept {
    return partitions_[pidx].lock;
  }

  /// --- Primitive accessors. Caller must hold the partition's lock. ---
  /// Which partition lock guards a key is data-dependent (partition_of),
  /// so the requirement is not expressible as a static TSA capability;
  /// the lock-rank detector covers the dynamic discipline instead.
  const Bytes* get_locked(Key key) const noexcept;
  void put_locked(Key key, Bytes value);
  bool erase_locked(Key key) noexcept;

  /// Applies a batch of updates (replica path): takes the touched
  /// partitions' locks in index order, applies, releases.
  void apply(std::span<const StateUpdate> updates);

  /// apply() for updates referencing wire bytes in place: values are
  /// copied straight from the packet into the store under the partition
  /// lock, with no intermediate StateUpdate materialization. Callers
  /// batch a whole burst's writes so each touched partition is locked
  /// once per burst.
  void apply_wire(std::span<const WireUpdate> updates);

  /// Convenience point read that takes the partition lock itself.
  std::optional<Bytes> get(Key key);

  /// Total entries across partitions (takes all locks; diagnostic only).
  std::size_t total_entries();

  /// Drops all entries (takes all locks).
  void clear();

  /// --- Recovery serialization. ---
  /// Serializes every entry. Takes partition locks one at a time, so call
  /// only while the store is quiesced (recovery guarantees this).
  void serialize(std::vector<std::uint8_t>& out);

  /// Replaces the store contents from serialize() output. Returns false on
  /// malformed input (store left cleared).
  bool deserialize(std::span<const std::uint8_t> in);

 private:
  struct Partition {
    PartitionLock lock;
    std::unordered_map<Key, Bytes> map;
  };

  std::size_t num_partitions_;
  std::size_t partition_mask_;
  std::array<Partition, kMaxPartitions> partitions_;
};

/// Derives a state key from a name string (for named shared variables like
/// Monitor's counters). FNV-1a, stable across runs and replicas.
constexpr Key key_of_name(std::string_view name) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : name) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace sfc::state
