// Partition → worker ownership map (the shard-affine state discipline).
//
// Mirrors a multi-queue NIC's RSS indirection table: the FlowKey hash
// already selects a partition (StateStore::partition_of), and this map
// assigns each partition to exactly one owning worker thread. The owner is
// the ONLY thread that mutates the partition's map in shard-affine mode —
// every other thread hands writes to the owner through a HandoffRing — so
// the common-case apply runs with no lock and no atomic RMW, the same
// single-writer shard-per-core idiom as ccbench's TxExecutor.
//
// The table is immutable after construction (reconfiguration rebuilds the
// node), so lookups are plain loads and safe from any thread.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace sfc::state {

class ShardMap {
 public:
  static constexpr std::uint32_t kMaxWorkers = 16;

  ShardMap() = default;

  /// @param num_partitions Power of two in [1, kMaxPartitions].
  /// @param num_workers    Data-path worker threads on the owning node.
  ShardMap(std::size_t num_partitions, std::size_t num_workers) noexcept
      : partitions_(static_cast<std::uint32_t>(num_partitions)),
        workers_(num_workers == 0 ? 1u
                                  : static_cast<std::uint32_t>(num_workers)) {
    // Round-robin indirection, the RSS default: contiguous partitions land
    // on distinct workers, so a uniform key hash spreads load evenly.
    for (std::uint32_t p = 0; p < partitions_; ++p) {
      owner_[p] = static_cast<std::uint8_t>(p % workers_);
    }
  }

  std::uint32_t num_partitions() const noexcept { return partitions_; }
  std::uint32_t num_workers() const noexcept { return workers_; }

  /// The worker thread index that owns partition @p p.
  std::uint32_t owner_of(std::size_t p) const noexcept { return owner_[p]; }

  /// Bitmask of the partitions worker @p w owns.
  std::uint64_t owned_mask(std::uint32_t w) const noexcept {
    std::uint64_t mask = 0;
    for (std::uint32_t p = 0; p < partitions_; ++p) {
      if (owner_[p] == w) mask |= 1ULL << p;
    }
    return mask;
  }

 private:
  std::array<std::uint8_t, 64> owner_{};
  std::uint32_t partitions_{1};
  std::uint32_t workers_{1};
};

}  // namespace sfc::state
