// Small-buffer byte string for state values.
//
// Middlebox state values are small (a NAT record is ~32 B, a counter 8 B;
// the paper's Gen middlebox tests up to 256 B), so values up to 64 bytes
// live inline and never touch the allocator on the per-packet path.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <utility>

namespace sfc::state {

class Bytes {
 public:
  static constexpr std::size_t kInlineCapacity = 64;

  Bytes() noexcept = default;

  Bytes(std::span<const std::uint8_t> data) { assign(data); }
  Bytes(const void* data, std::size_t len) {
    assign({static_cast<const std::uint8_t*>(data), len});
  }

  Bytes(const Bytes& other) { assign(other.span()); }
  Bytes& operator=(const Bytes& other) {
    if (this != &other) assign(other.span());
    return *this;
  }

  Bytes(Bytes&& other) noexcept { move_from(std::move(other)); }
  Bytes& operator=(Bytes&& other) noexcept {
    if (this != &other) {
      release();
      move_from(std::move(other));
    }
    return *this;
  }

  ~Bytes() { release(); }

  void assign(std::span<const std::uint8_t> data) {
    reserve(data.size());
    // An empty span may carry a null data(); memcpy's arguments are
    // declared nonnull even for n == 0 (UBSan flags it).
    if (!data.empty()) {
      std::memcpy(mutable_data(), data.data(), data.size());
    }
    size_ = static_cast<std::uint32_t>(data.size());
  }

  /// Typed store of a trivially-copyable value.
  template <typename T>
  static Bytes of(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    return Bytes(&value, sizeof(T));
  }

  /// Typed load; returns default-constructed T when sizes mismatch.
  template <typename T>
  T as() const noexcept {
    static_assert(std::is_trivially_copyable_v<T>);
    T out{};
    if (size_ == sizeof(T)) std::memcpy(&out, data(), sizeof(T));
    return out;
  }

  const std::uint8_t* data() const noexcept {
    return heap_ != nullptr ? heap_ : inline_;
  }
  std::uint8_t* mutable_data() noexcept {
    return heap_ != nullptr ? heap_ : inline_;
  }
  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  std::span<const std::uint8_t> span() const noexcept { return {data(), size_}; }

  friend bool operator==(const Bytes& a, const Bytes& b) noexcept {
    return a.size_ == b.size_ && std::memcmp(a.data(), b.data(), a.size_) == 0;
  }

 private:
  void reserve(std::size_t n) {
    if (n <= kInlineCapacity) {
      release();
      return;
    }
    if (heap_ != nullptr && capacity_ >= n) return;
    release();
    heap_ = new std::uint8_t[n];
    capacity_ = static_cast<std::uint32_t>(n);
  }

  void release() noexcept {
    delete[] heap_;
    heap_ = nullptr;
    capacity_ = 0;
  }

  void move_from(Bytes&& other) noexcept {
    heap_ = std::exchange(other.heap_, nullptr);
    capacity_ = std::exchange(other.capacity_, 0);
    size_ = std::exchange(other.size_, 0);
    if (heap_ == nullptr && size_ > 0) {
      std::memcpy(inline_, other.inline_, size_);
    }
  }

  std::uint8_t inline_[kInlineCapacity];
  std::uint8_t* heap_{nullptr};
  std::uint32_t capacity_{0};
  std::uint32_t size_{0};
};

}  // namespace sfc::state
