// Transactional packet processing (paper §3.2, §4.2).
//
// Every packet is processed inside a packet transaction: state reads and
// writes go through a Txn, which acquires per-partition locks under strict
// two-phase locking. Lock order is not known in advance, so wound-wait
// (keyed by a per-middlebox monotonically increasing transaction
// timestamp) prevents deadlocks: an older transaction wounds a younger
// lock holder, which aborts at its next state access and is immediately
// re-executed with its original timestamp.
//
// Writes are buffered in the transaction's write set and only applied to
// the store at commit, so aborting is just "release locks and forget".
// Commit — still holding every touched partition's lock — bumps the
// per-partition sequence numbers (the head's data dependency vector,
// paper §4.3) and returns a TxnRecord: exactly the content of a piggyback
// log (touched partitions, their new sequence numbers, the write set).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <exception>
#include <optional>
#include <thread>
#include <vector>

#include "runtime/small_vector.hpp"
#include "state/state_store.hpp"

namespace sfc::state {

/// Thrown from Txn state accessors when the transaction has been wounded.
/// Callers never catch this themselves: run_transaction() does, rolls the
/// transaction back and re-executes the body.
class TxnAborted : public std::exception {
 public:
  const char* what() const noexcept override {
    return "packet transaction wounded";
  }
};

/// A transaction's write set. Middleboxes write 1-2 keys per packet, so
/// two inline slots cover the common case without allocation.
using WriteSet = rt::SmallVector<StateUpdate, 2>;

/// Result of a committed transaction: the piggyback-log payload.
struct TxnRecord {
  /// Bit i set => partition i was read or written.
  std::uint64_t touched_mask{0};
  /// Post-increment sequence number per touched partition (valid where the
  /// mask bit is set). Read-only transactions leave these untouched.
  std::array<std::uint64_t, kMaxPartitions> seqs{};
  /// The committed write set, in program order.
  WriteSet writes;
  /// Total state accesses (reads + buffered writes) the transaction made —
  /// what the FTMB baseline generates one PAL per.
  std::uint32_t accesses{0};

  bool read_only() const noexcept { return writes.empty(); }
};

/// Per-middlebox-instance transaction context: the store, the timestamp
/// source, and the head's dependency vector (per-partition sequence
/// numbers, each guarded by its partition lock).
class TxnContext : rt::NonCopyable {
 public:
  explicit TxnContext(StateStore& store) : store_(store) { seq_.fill(0); }

  StateStore& store() noexcept { return store_; }

  std::uint64_t next_timestamp() noexcept {
    return next_ts_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Reads the current dependency vector (diagnostic / recovery path; for
  /// an exact snapshot the store must be quiesced).
  std::array<std::uint64_t, kMaxPartitions> sequence_snapshot() const noexcept;

  /// Restores the dependency vector after failover (paper §5.2: the new
  /// head adopts the fetched MAX as every partition's sequence number).
  void restore_sequences(const std::array<std::uint64_t, kMaxPartitions>& seqs);

  /// Aborts observed since construction (wounded + re-executed).
  std::uint64_t aborts() const noexcept {
    return aborts_.load(std::memory_order_relaxed);
  }

  // --- Shard-affine fast path. ------------------------------------------
  /// Enables the lock-free single-writer commit: transactions from the
  /// owning thread skip the partition locks and wound-wait entirely, and
  /// commit through the store's seqlock write section. The store must be
  /// shard-affine. Ownership is claimed lazily by the first transacting
  /// thread (one CAS, then a plain load+compare per transaction) and reset
  /// by the node at (re)start; a transaction from any OTHER thread falls
  /// back to the locked path and counts an owner miss — unreachable in
  /// shipped wiring, where only the single data worker transacts.
  void enable_shard_affine() noexcept { shard_affine_ = true; }
  bool shard_affine() const noexcept { return shard_affine_; }

  /// Clears the lazy ownership claim (call while quiesced, e.g. before
  /// worker threads start, so the new data thread can claim).
  void reset_owner() noexcept {
    owner_.store(nullptr, std::memory_order_release);
  }

  /// Transactions that ran on a non-owner thread in shard-affine mode.
  std::uint64_t owner_misses() const noexcept {
    return owner_misses_.load(std::memory_order_relaxed);
  }

 private:
  friend class Txn;

  /// True when the calling thread (identified by its TxnSlot) is — or just
  /// became — the claimed owner.
  bool claim_owner(const void* self) noexcept {
    const void* cur = owner_.load(std::memory_order_relaxed);
    if (cur == self) return true;
    return cur == nullptr && owner_.compare_exchange_strong(
                                 cur, self, std::memory_order_acq_rel);
  }

  StateStore& store_;
  std::atomic<std::uint64_t> next_ts_{1};
  std::array<std::uint64_t, kMaxPartitions> seq_{};
  std::atomic<std::uint64_t> aborts_{0};
  bool shard_affine_{false};
  std::atomic<const void*> owner_{nullptr};
  std::atomic<std::uint64_t> owner_misses_{0};
};

class Txn : rt::NonCopyable {
 public:
  /// Starts a transaction with timestamp @p ts (from ctx.next_timestamp();
  /// re-executions reuse the original timestamp so the transaction
  /// eventually becomes the oldest and cannot be wounded again).
  Txn(TxnContext& ctx, std::uint64_t ts);

  /// Releases locks; discards the write set if not committed.
  ~Txn();

  /// Reads a key (copies the value). Acquires the partition lock.
  std::optional<Bytes> read(Key key);

  /// True if the key exists (same locking as read).
  bool contains(Key key);

  /// Buffers a write.
  void write(Key key, Bytes value);

  /// Buffers an erase.
  void erase(Key key);

  /// Read-modify-write of a uint64 counter; returns the new value.
  /// Missing keys count from 0.
  std::uint64_t fetch_add(Key key, std::uint64_t delta);

  /// Commits: applies buffered writes to the store, bumps the dependency
  /// vector for every touched partition (unless read-only), releases
  /// locks. The Txn must not be used afterwards.
  TxnRecord commit();

  /// Releases locks and discards buffered writes (used after TxnAborted).
  void rollback() noexcept;

  std::uint64_t timestamp() const noexcept { return ts_; }
  bool committed() const noexcept { return committed_; }

 private:
  /// Ensures the partition lock for @p key is held; throws TxnAborted if
  /// wounded.
  std::size_t acquire(Key key);

  void check_wounded();
  void release_locks() noexcept;
  const StateUpdate* find_buffered(Key key) const noexcept;

  TxnContext& ctx_;
  TxnSlot& slot_;
  std::uint64_t ts_;
  /// Owner-hit shard-affine transaction: no partition locks, no wound-
  /// wait; locked_mask_ tracks *touched* partitions only.
  const bool fast_;
  std::uint32_t accesses_{0};
  std::uint64_t locked_mask_{0};
  WriteSet writes_;
  bool committed_{false};
  bool finished_{false};
};

/// Runs @p body inside a transaction with the given timestamp, retrying on
/// wound-abort, and returns the committed TxnRecord.
template <typename Body>
TxnRecord run_transaction(TxnContext& ctx, Body&& body, std::uint64_t ts) {
  for (unsigned attempt = 0;; ++attempt) {
    Txn txn(ctx, ts);
    try {
      body(txn);
      return txn.commit();
    } catch (const TxnAborted&) {
      txn.rollback();
      // Re-execute with the original timestamp, but back off first: an
      // immediate retry can re-grab the contested locks before the older
      // (wounding) transaction's CAS lands, livelocking both. Past the
      // first few attempts, yield so the wounding transaction gets CPU
      // time even on an oversubscribed host.
      if (attempt < 4) {
        const unsigned spins = 16u << attempt;
        for (unsigned i = 0; i < spins; ++i) rt::cpu_relax();
      } else {
        std::this_thread::yield();
      }
    }
  }
}

/// Runs @p body inside a transaction, retrying on wound-abort, and returns
/// the committed TxnRecord. This is the middlebox-facing entry point.
template <typename Body>
TxnRecord run_transaction(TxnContext& ctx, Body&& body) {
  return run_transaction(ctx, std::forward<Body>(body), ctx.next_timestamp());
}

}  // namespace sfc::state
