// Cross-shard handoff rings for the shard-affine state store.
//
// In shard-affine mode a partition's map is mutated only by its owning
// worker (see ShardMap). Writes that land on someone else's shard — a
// dep-mask spanning partitions of two owners, or control-plane mutations
// (NACK replay, recovery) that must never touch the store from the control
// thread — are handed to the owner through these rings and drained at
// burst boundaries in the owner's worker loop.
//
// Layout: a full (producers × owners) mesh of SPSC rings, so every cell
// has exactly one producer and one consumer and stays lock-free with plain
// acquire/release. Producer index = the worker's thread index; the last
// producer row is reserved for the control thread. Each SpscQueue already
// cache-line-pads its head/tail indices; the deque keeps cell addresses
// stable.
//
// Occupancy telemetry (pushes, full-ring rejects, depth high-water) is
// tracked with relaxed atomics and exported as registry gauges so bench
// JSON shows shard skew.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <utility>

#include "runtime/common.hpp"
#include "runtime/spsc_queue.hpp"

namespace sfc::state {

template <typename T>
class HandoffMesh : rt::NonCopyable {
 public:
  /// @param producers Number of producer rows (workers + 1 control row).
  /// @param owners    Number of consumer columns (data-path workers).
  /// @param capacity  Per-ring entry capacity.
  HandoffMesh(std::size_t producers, std::size_t owners, std::size_t capacity)
      : producers_(producers), owners_(owners) {
    for (std::size_t i = 0; i < producers_ * owners_; ++i) {
      rings_.emplace_back(capacity);
    }
  }

  std::size_t producers() const noexcept { return producers_; }
  std::size_t owners() const noexcept { return owners_; }

  /// Producer-side free-slot check. Exact from the producing thread (the
  /// ring's only filler): a true result cannot be invalidated before that
  /// thread's own push, because the consumer only makes room. A false
  /// result may be stale-conservative (spurious hold; caller retries).
  bool can_push(std::size_t producer, std::size_t owner) const noexcept {
    const auto& ring = cell(producer, owner);
    return ring.size_approx() < ring.capacity();
  }

  /// Enqueues @p v from @p producer to @p owner's ring. Returns false when
  /// the ring is full (caller holds the work and retries; packet parks).
  bool push(std::size_t producer, std::size_t owner, T&& v) noexcept {
    auto& ring = cell(producer, owner);
    if (!ring.try_push(std::move(v))) {
      full_rejects_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    pushes_.fetch_add(1, std::memory_order_relaxed);
    const std::uint64_t depth = ring.size_approx();
    std::uint64_t hw = depth_hw_.load(std::memory_order_relaxed);
    while (depth > hw && !depth_hw_.compare_exchange_weak(
                             hw, depth, std::memory_order_relaxed)) {
    }
    return true;
  }

  /// Drains every producer's ring into @p owner, invoking @p fn per entry.
  /// Must be called only by the owning worker (or under quiesce). Returns
  /// the number of entries consumed.
  template <typename Fn>
  std::size_t drain(std::size_t owner, Fn&& fn) {
    std::size_t n = 0;
    for (std::size_t prod = 0; prod < producers_; ++prod) {
      auto& ring = cell(prod, owner);
      while (auto entry = ring.try_pop()) {
        fn(*entry);
        ++n;
      }
    }
    return n;
  }

  /// True when any producer has work queued for @p owner.
  bool pending(std::size_t owner) const noexcept {
    for (std::size_t prod = 0; prod < producers_; ++prod) {
      if (!cell(prod, owner).empty_approx()) return true;
    }
    return false;
  }

  /// True when every ring in the mesh is empty (quiescence check).
  bool empty() const noexcept {
    for (const auto& ring : rings_) {
      if (!ring.empty_approx()) return false;
    }
    return true;
  }

  std::uint64_t pushes() const noexcept {
    return pushes_.load(std::memory_order_relaxed);
  }
  std::uint64_t full_rejects() const noexcept {
    return full_rejects_.load(std::memory_order_relaxed);
  }
  std::uint64_t depth_high_water() const noexcept {
    return depth_hw_.load(std::memory_order_relaxed);
  }

 private:
  rt::SpscQueue<T>& cell(std::size_t producer, std::size_t owner) noexcept {
    return rings_[owner * producers_ + producer];
  }
  const rt::SpscQueue<T>& cell(std::size_t producer,
                               std::size_t owner) const noexcept {
    return rings_[owner * producers_ + producer];
  }

  const std::size_t producers_;
  const std::size_t owners_;
  /// Row-major by owner so a drain walks contiguous cells.
  std::deque<rt::SpscQueue<T>> rings_;

  std::atomic<std::uint64_t> pushes_{0};
  std::atomic<std::uint64_t> full_rejects_{0};
  std::atomic<std::uint64_t> depth_hw_{0};
};

}  // namespace sfc::state
