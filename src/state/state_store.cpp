#include "state/state_store.hpp"

#include <bit>
#include <cassert>
#include <cstring>

#include "obs/prof.hpp"

namespace sfc::state {

namespace {

void append_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
  out.insert(out.end(), p, p + sizeof(v));
}

void append_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
  out.insert(out.end(), p, p + sizeof(v));
}

template <typename T>
bool read_pod(std::span<const std::uint8_t>& in, T& out) {
  if (in.size() < sizeof(T)) return false;
  std::memcpy(&out, in.data(), sizeof(T));
  in = in.subspan(sizeof(T));
  return true;
}

}  // namespace

StateStore::StateStore(std::size_t num_partitions)
    : num_partitions_(num_partitions), partition_mask_(num_partitions - 1) {
  assert(num_partitions >= 1 && num_partitions <= kMaxPartitions);
  assert(rt::is_pow2(num_partitions));
}

const Bytes* StateStore::get_locked(Key key) const noexcept {
  const auto& part = partitions_[partition_of(key)];
  const auto it = part.map.find(key);
  return it != part.map.end() ? &it->second : nullptr;
}

void StateStore::put_locked(Key key, Bytes value) {
  const auto pidx = partition_of(key);
  const auto [it, inserted] =
      partitions_[pidx].map.insert_or_assign(key, std::move(value));
  (void)it;
  if (inserted) note_insert(pidx);
}

bool StateStore::erase_locked(Key key) noexcept {
  const auto pidx = partition_of(key);
  if (partitions_[pidx].map.erase(key) == 0) return false;
  note_erase(pidx);
  return true;
}

void StateStore::apply(std::span<const StateUpdate> updates) {
  // Collect the touched partition set, lock in index order (deadlock-free
  // against other appliers), apply, release.
  obs::ProfStageTimer pt{obs::prof_slot(), obs::ProfStage::kStoreApply};
  std::uint64_t mask = 0;
  for (const auto& u : updates) mask |= 1ULL << partition_of(u.key);

  TxnSlot& slot = this_thread_slot();
  for (std::size_t p = 0; p < num_partitions_; ++p) {
    if (mask & (1ULL << p)) partitions_[p].lock.lock_apply(&slot);
  }
  for (const auto& u : updates) {
    if (u.erase) {
      erase_locked(u.key);
    } else {
      put_locked(u.key, u.value);
    }
  }
  for (std::size_t p = 0; p < num_partitions_; ++p) {
    if (mask & (1ULL << p)) partitions_[p].lock.unlock();
  }
}

void StateStore::apply_wire(std::span<const WireUpdate> updates) {
  obs::ProfStageTimer pt{obs::prof_slot(), obs::ProfStage::kStoreApply};
  std::uint64_t mask = 0;
  for (const auto& u : updates) mask |= 1ULL << partition_of(u.key);

  TxnSlot& slot = this_thread_slot();
  for (std::size_t p = 0; p < num_partitions_; ++p) {
    if (mask & (1ULL << p)) partitions_[p].lock.lock_apply(&slot);
  }
  for (const auto& u : updates) {
    if (u.erase) {
      erase_locked(u.key);
    } else {
      put_locked(u.key, Bytes(u.value.data(), u.value.size()));
    }
  }
  for (std::size_t p = 0; p < num_partitions_; ++p) {
    if (mask & (1ULL << p)) partitions_[p].lock.unlock();
  }
}

std::optional<Bytes> StateStore::get(Key key) {
  const auto pidx = partition_of(key);
  auto& part = partitions_[pidx];
  if (shard_affine_) {
    // The owner never takes the partition lock in shard mode, so taking
    // it here would not exclude the writer anyway. Seqlock read protocol:
    // the version acquire synchronizes with the owner's last completed
    // write section (past writes ordered before this read), the stability
    // re-check catches a section that opened mid-read, and the trailing
    // reader-clock release bump is acquired by the owner's next
    // owner_write_begin (this read ordered before future writes). Exact
    // for quiesced/converged stores, which is the supported use.
    auto& occ = occupancy_[pidx];
    std::optional<Bytes> out;
    for (;;) {
      const auto v1 = occ.version.load(std::memory_order_acquire);
      if ((v1 & 1) != 0) {
        rt::cpu_relax();
        continue;
      }
      out.reset();
      if (const auto it = part.map.find(key); it != part.map.end()) {
        out = it->second;
      }
      std::atomic_thread_fence(std::memory_order_acquire);
      if (occ.version.load(std::memory_order_relaxed) == v1) break;
    }
    occ.reader_clock.fetch_add(1, std::memory_order_release);
    return out;
  }
  TxnSlot& slot = this_thread_slot();
  part.lock.lock_apply(&slot);
  std::optional<Bytes> out;
  if (const auto it = part.map.find(key); it != part.map.end()) {
    out = it->second;
  }
  part.lock.unlock();
  return out;
}

std::size_t StateStore::total_entries() {
  std::size_t total = 0;
  for (std::size_t p = 0; p < num_partitions_; ++p) {
    total += occupancy_[p].keys.load(std::memory_order_acquire);
  }
  return total;
}

void StateStore::owner_write_begin(std::uint64_t pmask) noexcept {
  for (std::uint64_t m = pmask & partition_bits(); m != 0; m &= m - 1) {
    auto& occ = occupancy_[static_cast<std::size_t>(std::countr_zero(m))];
    // Acquire the foreign readers' clock: any converged-store get() that
    // bumped it happens-before this section's map writes. One load, no
    // RMW — the hot path stays single-writer pure.
    (void)occ.reader_clock.load(std::memory_order_acquire);
    auto& v = occ.version;
    v.store(v.load(std::memory_order_relaxed) + 1, std::memory_order_relaxed);
  }
  std::atomic_thread_fence(std::memory_order_release);
  // Record the open write section as a held pseudo-lock at the very lowest
  // rank: blocking on ANYTHING (even the logging mutex) inside a seqlock
  // write aborts, which keeps readers' retry windows bounded.
  lockrank::note_held(this, ranks::kSeqlockWrite, "state.seqlock_write");
}

void StateStore::owner_write_end(std::uint64_t pmask) noexcept {
  lockrank::note_release(this);
  for (std::uint64_t m = pmask & partition_bits(); m != 0; m &= m - 1) {
    auto& v = occupancy_[static_cast<std::size_t>(std::countr_zero(m))].version;
    v.store(v.load(std::memory_order_relaxed) + 1, std::memory_order_release);
  }
}

void StateStore::put_owner(Key key, Bytes value) {
  const auto pidx = partition_of(key);
  const auto [it, inserted] =
      partitions_[pidx].map.insert_or_assign(key, std::move(value));
  (void)it;
  if (inserted) note_insert(pidx);
}

bool StateStore::erase_owner(Key key) noexcept {
  const auto pidx = partition_of(key);
  if (partitions_[pidx].map.erase(key) == 0) return false;
  note_erase(pidx);
  return true;
}

void StateStore::apply_owner(std::span<const StateUpdate> updates,
                             std::uint64_t pmask) {
  obs::ProfStageTimer pt{obs::prof_slot(), obs::ProfStage::kStoreApply};
  owner_write_begin(pmask);
  for (const auto& u : updates) {
    if (((pmask >> partition_of(u.key)) & 1u) == 0) continue;
    if (u.erase) {
      erase_owner(u.key);
    } else {
      put_owner(u.key, u.value);
    }
  }
  owner_write_end(pmask);
}

void StateStore::apply_wire_owner(std::span<const WireUpdate> updates,
                                  std::uint64_t pmask) {
  obs::ProfStageTimer pt{obs::prof_slot(), obs::ProfStage::kStoreApply};
  owner_write_begin(pmask);
  for (const auto& u : updates) {
    if (((pmask >> partition_of(u.key)) & 1u) == 0) continue;
    if (u.erase) {
      erase_owner(u.key);
    } else {
      put_owner(u.key, Bytes(u.value.data(), u.value.size()));
    }
  }
  owner_write_end(pmask);
}

StateStore::OccupancySnapshot StateStore::occupancy(
    std::size_t pidx) const noexcept {
  const auto& occ = occupancy_[pidx];
  for (;;) {
    const auto v1 = occ.version.load(std::memory_order_acquire);
    if ((v1 & 1) != 0) {
      rt::cpu_relax();
      continue;
    }
    OccupancySnapshot snap;
    snap.keys = occ.keys.load(std::memory_order_relaxed);
    snap.keys_hw = occ.keys_hw.load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (occ.version.load(std::memory_order_relaxed) == v1) return snap;
  }
}

std::uint64_t StateStore::keys_high_water() const noexcept {
  std::uint64_t hw = 0;
  for (std::size_t p = 0; p < num_partitions_; ++p) {
    const auto v = occupancy_[p].keys_hw.load(std::memory_order_acquire);
    if (v > hw) hw = v;
  }
  return hw;
}

void StateStore::clear() {
  TxnSlot& slot = this_thread_slot();
  for (std::size_t p = 0; p < num_partitions_; ++p) {
    partitions_[p].lock.lock_apply(&slot);
    partitions_[p].map.clear();
    occupancy_[p].keys.store(0, std::memory_order_relaxed);
    partitions_[p].lock.unlock();
  }
}

void StateStore::serialize(std::vector<std::uint8_t>& out) {
  TxnSlot& slot = this_thread_slot();
  append_u32(out, static_cast<std::uint32_t>(num_partitions_));
  for (std::size_t p = 0; p < num_partitions_; ++p) {
    partitions_[p].lock.lock_apply(&slot);
    append_u32(out, static_cast<std::uint32_t>(partitions_[p].map.size()));
    for (const auto& [key, value] : partitions_[p].map) {
      append_u64(out, key);
      append_u32(out, static_cast<std::uint32_t>(value.size()));
      out.insert(out.end(), value.data(), value.data() + value.size());
    }
    partitions_[p].lock.unlock();
  }
}

bool StateStore::deserialize(std::span<const std::uint8_t> in) {
  clear();
  std::uint32_t parts = 0;
  if (!read_pod(in, parts) || parts != num_partitions_) return false;
  TxnSlot& slot = this_thread_slot();
  for (std::size_t p = 0; p < num_partitions_; ++p) {
    std::uint32_t entries = 0;
    if (!read_pod(in, entries)) return false;
    partitions_[p].lock.lock_apply(&slot);
    for (std::uint32_t i = 0; i < entries; ++i) {
      std::uint64_t key = 0;
      std::uint32_t len = 0;
      if (!read_pod(in, key) || !read_pod(in, len) || in.size() < len) {
        partitions_[p].lock.unlock();
        clear();
        return false;
      }
      if (partitions_[p].map.emplace(key, Bytes(in.data(), len)).second) {
        note_insert(p);
      }
      in = in.subspan(len);
    }
    partitions_[p].lock.unlock();
  }
  return in.empty();
}

}  // namespace sfc::state
