#include "state/state_store.hpp"

#include <cassert>
#include <cstring>

#include "obs/prof.hpp"

namespace sfc::state {

namespace {

void append_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
  out.insert(out.end(), p, p + sizeof(v));
}

void append_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
  out.insert(out.end(), p, p + sizeof(v));
}

template <typename T>
bool read_pod(std::span<const std::uint8_t>& in, T& out) {
  if (in.size() < sizeof(T)) return false;
  std::memcpy(&out, in.data(), sizeof(T));
  in = in.subspan(sizeof(T));
  return true;
}

}  // namespace

StateStore::StateStore(std::size_t num_partitions)
    : num_partitions_(num_partitions), partition_mask_(num_partitions - 1) {
  assert(num_partitions >= 1 && num_partitions <= kMaxPartitions);
  assert(rt::is_pow2(num_partitions));
}

const Bytes* StateStore::get_locked(Key key) const noexcept {
  const auto& part = partitions_[partition_of(key)];
  const auto it = part.map.find(key);
  return it != part.map.end() ? &it->second : nullptr;
}

void StateStore::put_locked(Key key, Bytes value) {
  partitions_[partition_of(key)].map.insert_or_assign(key, std::move(value));
}

bool StateStore::erase_locked(Key key) noexcept {
  return partitions_[partition_of(key)].map.erase(key) > 0;
}

void StateStore::apply(std::span<const StateUpdate> updates) {
  // Collect the touched partition set, lock in index order (deadlock-free
  // against other appliers), apply, release.
  obs::ProfStageTimer pt{obs::prof_slot(), obs::ProfStage::kStoreApply};
  std::uint64_t mask = 0;
  for (const auto& u : updates) mask |= 1ULL << partition_of(u.key);

  TxnSlot& slot = this_thread_slot();
  for (std::size_t p = 0; p < num_partitions_; ++p) {
    if (mask & (1ULL << p)) partitions_[p].lock.lock_apply(&slot);
  }
  for (const auto& u : updates) {
    if (u.erase) {
      erase_locked(u.key);
    } else {
      put_locked(u.key, u.value);
    }
  }
  for (std::size_t p = 0; p < num_partitions_; ++p) {
    if (mask & (1ULL << p)) partitions_[p].lock.unlock();
  }
}

void StateStore::apply_wire(std::span<const WireUpdate> updates) {
  obs::ProfStageTimer pt{obs::prof_slot(), obs::ProfStage::kStoreApply};
  std::uint64_t mask = 0;
  for (const auto& u : updates) mask |= 1ULL << partition_of(u.key);

  TxnSlot& slot = this_thread_slot();
  for (std::size_t p = 0; p < num_partitions_; ++p) {
    if (mask & (1ULL << p)) partitions_[p].lock.lock_apply(&slot);
  }
  for (const auto& u : updates) {
    if (u.erase) {
      erase_locked(u.key);
    } else {
      put_locked(u.key, Bytes(u.value.data(), u.value.size()));
    }
  }
  for (std::size_t p = 0; p < num_partitions_; ++p) {
    if (mask & (1ULL << p)) partitions_[p].lock.unlock();
  }
}

std::optional<Bytes> StateStore::get(Key key) {
  auto& part = partitions_[partition_of(key)];
  TxnSlot& slot = this_thread_slot();
  part.lock.lock_apply(&slot);
  std::optional<Bytes> out;
  if (const auto it = part.map.find(key); it != part.map.end()) {
    out = it->second;
  }
  part.lock.unlock();
  return out;
}

std::size_t StateStore::total_entries() {
  std::size_t total = 0;
  TxnSlot& slot = this_thread_slot();
  for (std::size_t p = 0; p < num_partitions_; ++p) {
    partitions_[p].lock.lock_apply(&slot);
    total += partitions_[p].map.size();
    partitions_[p].lock.unlock();
  }
  return total;
}

void StateStore::clear() {
  TxnSlot& slot = this_thread_slot();
  for (std::size_t p = 0; p < num_partitions_; ++p) {
    partitions_[p].lock.lock_apply(&slot);
    partitions_[p].map.clear();
    partitions_[p].lock.unlock();
  }
}

void StateStore::serialize(std::vector<std::uint8_t>& out) {
  TxnSlot& slot = this_thread_slot();
  append_u32(out, static_cast<std::uint32_t>(num_partitions_));
  for (std::size_t p = 0; p < num_partitions_; ++p) {
    partitions_[p].lock.lock_apply(&slot);
    append_u32(out, static_cast<std::uint32_t>(partitions_[p].map.size()));
    for (const auto& [key, value] : partitions_[p].map) {
      append_u64(out, key);
      append_u32(out, static_cast<std::uint32_t>(value.size()));
      out.insert(out.end(), value.data(), value.data() + value.size());
    }
    partitions_[p].lock.unlock();
  }
}

bool StateStore::deserialize(std::span<const std::uint8_t> in) {
  clear();
  std::uint32_t parts = 0;
  if (!read_pod(in, parts) || parts != num_partitions_) return false;
  TxnSlot& slot = this_thread_slot();
  for (std::size_t p = 0; p < num_partitions_; ++p) {
    std::uint32_t entries = 0;
    if (!read_pod(in, entries)) return false;
    partitions_[p].lock.lock_apply(&slot);
    for (std::uint32_t i = 0; i < entries; ++i) {
      std::uint64_t key = 0;
      std::uint32_t len = 0;
      if (!read_pod(in, key) || !read_pod(in, len) || in.size() < len) {
        partitions_[p].lock.unlock();
        clear();
        return false;
      }
      partitions_[p].map.emplace(key, Bytes(in.data(), len));
      in = in.subspan(len);
    }
    partitions_[p].lock.unlock();
  }
  return in.empty();
}

}  // namespace sfc::state
