#include "state/txn.hpp"

#include <algorithm>

#include "obs/prof.hpp"

namespace sfc::state {

std::array<std::uint64_t, kMaxPartitions> TxnContext::sequence_snapshot()
    const noexcept {
  return seq_;
}

void TxnContext::restore_sequences(
    const std::array<std::uint64_t, kMaxPartitions>& seqs) {
  seq_ = seqs;
}

Txn::Txn(TxnContext& ctx, std::uint64_t ts)
    : ctx_(ctx),
      slot_(this_thread_slot()),
      ts_(ts),
      fast_(ctx.shard_affine_ && ctx.claim_owner(&slot_)) {
  slot_.ts.store(ts_, std::memory_order_relaxed);
  slot_.wounded.store(false, std::memory_order_relaxed);
  if (ctx.shard_affine_ && !fast_) {
    // Non-owner thread transacting on a shard-affine context: take the
    // locked path and flag it — in shipped wiring only the single data
    // worker transacts, so this is a quiet-mode violation.
    ctx.owner_misses_.fetch_add(1, std::memory_order_relaxed);
    obs::prof_count(obs::ProfCounter::kOwnerMiss);
  }
}

Txn::~Txn() {
  if (!finished_) rollback();
}

void Txn::check_wounded() {
  // Only meaningful while we hold at least one lock: a transaction that
  // holds nothing cannot be blocking anyone. Owner-hit shard transactions
  // hold no locks and cannot be wounded.
  if (!fast_ && locked_mask_ != 0 &&
      slot_.wounded.load(std::memory_order_acquire)) {
    ctx_.aborts_.fetch_add(1, std::memory_order_relaxed);
    throw TxnAborted{};
  }
}

std::size_t Txn::acquire(Key key) {
  ++accesses_;
  const std::size_t p = ctx_.store_.partition_of(key);
  const std::uint64_t bit = 1ULL << p;
  if (fast_) {
    // Owner hit: the single-writer discipline makes the partition ours by
    // construction — just track the touched set for the dependency vector.
    locked_mask_ |= bit;
    return p;
  }
  if ((locked_mask_ & bit) == 0) {
    if (!ctx_.store_.partition_lock(p).lock(&slot_)) {
      ctx_.aborts_.fetch_add(1, std::memory_order_relaxed);
      throw TxnAborted{};
    }
    locked_mask_ |= bit;
  }
  check_wounded();
  return p;
}

const StateUpdate* Txn::find_buffered(Key key) const noexcept {
  // The write set is tiny (middleboxes write 1-2 keys per packet), so a
  // backwards linear scan finds the latest buffered value fastest.
  for (std::size_t i = writes_.size(); i > 0; --i) {
    if (writes_[i - 1].key == key) return &writes_[i - 1];
  }
  return nullptr;
}

std::optional<Bytes> Txn::read(Key key) {
  acquire(key);
  if (const StateUpdate* buffered = find_buffered(key)) {
    if (buffered->erase) return std::nullopt;
    return buffered->value;
  }
  if (const Bytes* v = ctx_.store_.get_locked(key)) return *v;
  return std::nullopt;
}

bool Txn::contains(Key key) {
  acquire(key);
  if (const StateUpdate* buffered = find_buffered(key)) return !buffered->erase;
  return ctx_.store_.get_locked(key) != nullptr;
}

void Txn::write(Key key, Bytes value) {
  acquire(key);
  writes_.push_back(StateUpdate{key, std::move(value), false});
}

void Txn::erase(Key key) {
  acquire(key);
  writes_.push_back(StateUpdate{key, Bytes{}, true});
}

std::uint64_t Txn::fetch_add(Key key, std::uint64_t delta) {
  const auto current = read(key);
  const std::uint64_t next =
      (current ? current->as<std::uint64_t>() : 0) + delta;
  write(key, Bytes::of(next));
  return next;
}

TxnRecord Txn::commit() {
  check_wounded();
  TxnRecord record;
  record.touched_mask = locked_mask_;
  record.accesses = accesses_;

  if (!writes_.empty()) {
    // Deduplicate the write set in place: only the final value per key is
    // replicated (program order preserved for distinct keys).
    WriteSet final_writes;
    for (auto& w : writes_) {
      if (auto it = std::find_if(
              final_writes.begin(), final_writes.end(),
              [&](const StateUpdate& f) { return f.key == w.key; });
          it != final_writes.end()) {
        *it = std::move(w);
      } else {
        final_writes.push_back(std::move(w));
      }
    }

    if (fast_) {
      // Owner-hit commit: no locks, no atomic RMW — apply inside the
      // seqlock write section so stats readers snapshot consistently and
      // get() readers inherit the happens-before from the version bump.
      ctx_.store_.owner_write_begin(record.touched_mask);
      for (const auto& w : final_writes) {
        if (w.erase) {
          ctx_.store_.erase_owner(w.key);
        } else {
          ctx_.store_.put_owner(w.key, w.value);
        }
      }
      for (std::size_t p = 0; p < kMaxPartitions; ++p) {
        if (record.touched_mask & (1ULL << p)) {
          record.seqs[p] = ++ctx_.seq_[p];
        }
      }
      ctx_.store_.owner_write_end(record.touched_mask);
    } else {
      for (const auto& w : final_writes) {
        if (w.erase) {
          ctx_.store_.erase_locked(w.key);
        } else {
          ctx_.store_.put_locked(w.key, w.value);
        }
      }
      // Bump the dependency vector for every touched partition — read or
      // written (paper §4.3) — while still holding the locks, so the
      // sequence numbers map this transaction to a valid serial order.
      for (std::size_t p = 0; p < kMaxPartitions; ++p) {
        if (record.touched_mask & (1ULL << p)) {
          record.seqs[p] = ++ctx_.seq_[p];
        }
      }
    }
    record.writes = std::move(final_writes);
  }

  committed_ = true;
  finished_ = true;
  release_locks();
  return record;
}

void Txn::rollback() noexcept {
  finished_ = true;
  writes_.clear();
  release_locks();
}

void Txn::release_locks() noexcept {
  if (fast_) {
    // Nothing was locked; the mask only tracked the touched set.
    locked_mask_ = 0;
    return;
  }
  for (std::size_t p = 0; p < kMaxPartitions; ++p) {
    if (locked_mask_ & (1ULL << p)) ctx_.store_.partition_lock(p).unlock();
  }
  locked_mask_ = 0;
  slot_.wounded.store(false, std::memory_order_relaxed);
}

}  // namespace sfc::state
