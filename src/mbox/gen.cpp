#include "mbox/gen.hpp"

#include <vector>

namespace sfc::mbox {

Verdict Gen::process(state::Txn& txn, pkt::Packet& packet,
                     pkt::ParsedPacket& parsed, ProcessContext& ctx) {
  (void)parsed;
  // Per-thread key by default (Gen models write volume, not contention);
  // per-flow mode keys on the generator's flow hash so large workloads
  // populate one store entry per flow.
  const state::Key key =
      per_flow_ ? state::key_of_name("gen-state") ^ packet.anno().flow_hash
                : state::key_of_name("gen-state") + ctx.thread_id;
  // Stack buffer patterned from the packet id, so the replicated value is
  // verifiable downstream.
  std::uint8_t value[4096];
  const std::uint32_t n = state_size_ <= sizeof(value)
                              ? state_size_
                              : static_cast<std::uint32_t>(sizeof(value));
  const auto tag = static_cast<std::uint8_t>(packet.anno().packet_id);
  for (std::uint32_t i = 0; i < n; ++i) {
    value[i] = static_cast<std::uint8_t>(tag + i);
  }
  txn.write(key, state::Bytes(value, n));
  return Verdict::kForward;
}

}  // namespace sfc::mbox
