// Gen: write-heavy synthetic middlebox (paper Table 1, Figure 5).
//
// Writes a fresh state value of a configurable size on every packet, with
// no reads — the worst case for replication volume. The state-size
// parameter drives the paper's piggyback-size sweep.
#pragma once

#include <cstdint>

#include "mbox/middlebox.hpp"

namespace sfc::mbox {

class Gen final : public Middlebox {
 public:
  explicit Gen(std::uint32_t state_size_bytes = 32)
      : state_size_(state_size_bytes) {}

  std::string_view name() const noexcept override { return "Gen"; }

  Verdict process(state::Txn& txn, pkt::Packet& packet,
                  pkt::ParsedPacket& parsed, ProcessContext& ctx) override;

  std::uint32_t state_size() const noexcept { return state_size_; }

 private:
  std::uint32_t state_size_;
};

}  // namespace sfc::mbox
