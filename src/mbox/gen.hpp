// Gen: write-heavy synthetic middlebox (paper Table 1, Figure 5).
//
// Writes a fresh state value of a configurable size on every packet, with
// no reads — the worst case for replication volume. The state-size
// parameter drives the paper's piggyback-size sweep.
#pragma once

#include <cstdint>

#include "mbox/middlebox.hpp"

namespace sfc::mbox {

class Gen final : public Middlebox {
 public:
  /// @param per_flow When true the key is derived from the packet's flow
  ///        hash instead of the thread id, so an N-flow workload populates
  ///        N distinct keys — the fig5 million-flow state-size sweep uses
  ///        this to grow the store to realistic occupancy. Default keeps
  ///        the historical per-thread key (write volume, not key count).
  explicit Gen(std::uint32_t state_size_bytes = 32, bool per_flow = false)
      : state_size_(state_size_bytes), per_flow_(per_flow) {}

  std::string_view name() const noexcept override { return "Gen"; }

  Verdict process(state::Txn& txn, pkt::Packet& packet,
                  pkt::ParsedPacket& parsed, ProcessContext& ctx) override;

  std::uint32_t state_size() const noexcept { return state_size_; }
  bool per_flow() const noexcept { return per_flow_; }

 private:
  std::uint32_t state_size_;
  bool per_flow_;
};

}  // namespace sfc::mbox
