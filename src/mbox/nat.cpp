#include "mbox/nat.hpp"

#include "runtime/clock.hpp"

namespace sfc::mbox {

Verdict MazuNat::process(state::Txn& txn, pkt::Packet& packet,
                         pkt::ParsedPacket& parsed, ProcessContext& ctx) {
  (void)packet;
  const pkt::FlowKey& flow = parsed.flow;
  const state::Key key = flow.hash();

  // Fast path: existing mapping (read-only transaction).
  if (const auto entry = txn.read(key)) {
    ctx.deferred_rewrite = entry->as<NatEntry>().rewritten;
    return Verdict::kForward;
  }

  if (is_internal(flow.src_ip)) {
    // New outbound flow: allocate an external port from the shared
    // counter and install both directions.
    const std::uint64_t seq = txn.fetch_add(port_counter_key(), 1);
    const auto port = static_cast<std::uint16_t>(
        cfg_.port_base + seq % cfg_.port_count);

    pkt::FlowKey outbound = flow;
    outbound.src_ip = cfg_.external_ip;
    outbound.src_port = port;

    // Return traffic arrives addressed to (external_ip, port); map it back
    // to the internal endpoint.
    pkt::FlowKey inbound_match = outbound.reversed();
    pkt::FlowKey inbound_rewrite = flow.reversed();

    const std::uint64_t now = rt::now_ns();
    txn.write(key, state::Bytes::of(NatEntry{outbound, now}));
    txn.write(inbound_match.hash(),
              state::Bytes::of(NatEntry{inbound_rewrite, now}));
    ctx.deferred_rewrite = outbound;
    return Verdict::kForward;
  }

  // Inbound packet with no mapping: the NAT has no translation — drop
  // (same as mazu-nat's default deny for unsolicited inbound).
  return Verdict::kDrop;
}

Verdict SimpleNat::process(state::Txn& txn, pkt::Packet& packet,
                           pkt::ParsedPacket& parsed, ProcessContext& ctx) {
  (void)packet;
  const state::Key key = parsed.flow.hash();
  if (const auto entry = txn.read(key)) {
    ctx.deferred_rewrite = entry->as<NatEntry>().rewritten;
    return Verdict::kForward;
  }
  // First packet of the flow: derive a stable external port from the flow
  // hash (no shared allocator — that's MazuNAT's job).
  pkt::FlowKey rewritten = parsed.flow;
  rewritten.src_ip = external_ip_;
  rewritten.src_port =
      static_cast<std::uint16_t>(1024 + (parsed.flow.hash() % 60000));
  txn.write(key, state::Bytes::of(NatEntry{rewritten, rt::now_ns()}));
  ctx.deferred_rewrite = rewritten;
  return Verdict::kForward;
}

}  // namespace sfc::mbox
