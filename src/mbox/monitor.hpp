// Monitor: read/write-heavy middlebox (paper Table 1).
//
// Counts packets per flow or across flows. The "sharing level" parameter
// reproduces the paper's Figure 6 contention knob: with T threads and
// sharing level s, threads are grouped into T/s groups of s; every thread
// in a group increments the same shared counter (s=1: thread-private
// counters, no contention; s=T: one global counter, maximal contention).
#pragma once

#include <cstdint>

#include "mbox/middlebox.hpp"

namespace sfc::mbox {

class Monitor final : public Middlebox {
 public:
  enum class Mode : std::uint8_t {
    kSharedCounter,  ///< Counter selected by thread group (sharing level).
    kPerFlow,        ///< Counter per 5-tuple flow.
  };

  explicit Monitor(std::uint32_t sharing_level = 1,
                   Mode mode = Mode::kSharedCounter)
      : sharing_level_(sharing_level == 0 ? 1 : sharing_level), mode_(mode) {}

  std::string_view name() const noexcept override { return "Monitor"; }

  Verdict process(state::Txn& txn, pkt::Packet& packet,
                  pkt::ParsedPacket& parsed, ProcessContext& ctx) override;

  std::uint32_t sharing_level() const noexcept { return sharing_level_; }

  /// The state key the given thread's group increments.
  state::Key counter_key(std::uint32_t thread_id) const noexcept {
    return state::key_of_name("monitor-count") + thread_id / sharing_level_;
  }

 private:
  std::uint32_t sharing_level_;
  Mode mode_;
};

}  // namespace sfc::mbox
