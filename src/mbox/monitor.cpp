#include "mbox/monitor.hpp"

namespace sfc::mbox {

Verdict Monitor::process(state::Txn& txn, pkt::Packet& packet,
                         pkt::ParsedPacket& parsed, ProcessContext& ctx) {
  (void)packet;
  const state::Key key = mode_ == Mode::kSharedCounter
                             ? counter_key(ctx.thread_id)
                             : parsed.flow.hash();
  txn.fetch_add(key, 1);
  return Verdict::kForward;
}

}  // namespace sfc::mbox
