// Middlebox interface (Click-style virtual network function).
//
// A middlebox processes one packet inside a packet transaction (paper
// §3.2): all state reads/writes go through the supplied Txn, which the
// hosting runtime (FTC head, NF baseline, or FTMB master) wraps with its
// own replication machinery. Implementations must be re-executable: a
// wounded transaction is rolled back and the packet re-processed, so all
// packet mutations must be idempotent given the same transaction reads
// (rewriting headers from looked-up state is; appending to the packet is
// not unless guarded).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "packet/packet_io.hpp"
#include "state/txn.hpp"

namespace sfc::mbox {

enum class Verdict : std::uint8_t {
  kForward,  ///< Pass the packet to the next hop.
  kDrop,     ///< Filter the packet (its state updates still replicate).
};

/// Per-invocation context handed to the middlebox.
struct ProcessContext {
  std::uint32_t thread_id{0};   ///< Index of the processing thread.
  std::uint32_t num_threads{1};

  /// Packet mutations requested by the middlebox. A wounded transaction is
  /// re-executed, so middleboxes must not touch packet bytes directly:
  /// they record the intended rewrite here and the hosting runtime applies
  /// it exactly once, after the transaction commits.
  std::optional<pkt::FlowKey> deferred_rewrite;
};

class Middlebox {
 public:
  virtual ~Middlebox() = default;

  virtual std::string_view name() const noexcept = 0;

  /// True if the middlebox keeps no state (the runtime then skips the
  /// transaction machinery entirely, like the paper's Firewall).
  virtual bool stateless() const noexcept { return false; }

  /// Processes one packet. @p parsed covers only the wire bytes (any
  /// piggyback message is already hidden by the runtime, paper §6).
  virtual Verdict process(state::Txn& txn, pkt::Packet& packet,
                          pkt::ParsedPacket& parsed,
                          ProcessContext& ctx) = 0;

  /// Stateless-path variant (only called when stateless() is true).
  virtual Verdict process_stateless(pkt::Packet& packet,
                                    pkt::ParsedPacket& parsed,
                                    ProcessContext& ctx) {
    (void)packet;
    (void)parsed;
    (void)ctx;
    return Verdict::kForward;
  }
};

using MiddleboxFactory = std::unique_ptr<Middlebox> (*)();

}  // namespace sfc::mbox
