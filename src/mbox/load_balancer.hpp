// LoadBalancer: connection-persistent L4 load balancer (extension).
//
// The paper cites load balancers as the canonical middlebox needing
// connection persistence through shared state (§3.2): once a flow is
// assigned a backend, every later packet — processed by any thread — must
// reach the same backend. The flow table entry is the replicated state;
// backend selection uses a shared round-robin counter.
#pragma once

#include <cstdint>
#include <vector>

#include "mbox/middlebox.hpp"

namespace sfc::mbox {

class LoadBalancer final : public Middlebox {
 public:
  explicit LoadBalancer(std::vector<std::uint32_t> backend_ips)
      : backends_(std::move(backend_ips)) {}

  std::string_view name() const noexcept override { return "LoadBalancer"; }

  Verdict process(state::Txn& txn, pkt::Packet& packet,
                  pkt::ParsedPacket& parsed, ProcessContext& ctx) override {
    (void)packet;
    (void)ctx;
    if (backends_.empty()) return Verdict::kDrop;
    const state::Key key = parsed.flow.hash();

    std::uint32_t backend;
    if (const auto existing = txn.read(key)) {
      backend = existing->as<std::uint32_t>();  // Connection persistence.
    } else {
      const std::uint64_t turn = txn.fetch_add(rr_key(), 1);
      backend = backends_[turn % backends_.size()];
      txn.write(key, state::Bytes::of(backend));
    }
    pkt::FlowKey rewritten = parsed.flow;
    rewritten.dst_ip = backend;
    ctx.deferred_rewrite = rewritten;
    return Verdict::kForward;
  }

  static state::Key rr_key() noexcept {
    return state::key_of_name("lb-round-robin");
  }

 private:
  std::vector<std::uint32_t> backends_;
};

}  // namespace sfc::mbox
