// Firewall: stateless rule-based filter (paper Table 1).
//
// Matches packets against an ordered rule list (prefix + port + protocol,
// first match wins) with a configurable default action. Stateless: the
// runtime skips the transaction machinery, so under FTC the head emits a
// propagating packet when the firewall drops a packet that carries a
// piggyback message (paper §5.1).
#pragma once

#include <cstdint>
#include <vector>

#include "mbox/middlebox.hpp"

namespace sfc::mbox {

struct FirewallRule {
  std::uint32_t src_prefix{0};
  std::uint32_t src_mask{0};      ///< 0 = wildcard.
  std::uint32_t dst_prefix{0};
  std::uint32_t dst_mask{0};
  std::uint16_t dst_port{0};      ///< 0 = wildcard.
  std::uint8_t protocol{0};       ///< 0 = wildcard.
  bool allow{true};

  bool matches(const pkt::FlowKey& flow) const noexcept {
    if ((flow.src_ip & src_mask) != (src_prefix & src_mask)) return false;
    if ((flow.dst_ip & dst_mask) != (dst_prefix & dst_mask)) return false;
    if (dst_port != 0 && flow.dst_port != dst_port) return false;
    if (protocol != 0 && flow.protocol != protocol) return false;
    return true;
  }
};

class Firewall final : public Middlebox {
 public:
  explicit Firewall(std::vector<FirewallRule> rules = {},
                    bool default_allow = true)
      : rules_(std::move(rules)), default_allow_(default_allow) {}

  std::string_view name() const noexcept override { return "Firewall"; }
  bool stateless() const noexcept override { return true; }

  Verdict process(state::Txn& txn, pkt::Packet& packet,
                  pkt::ParsedPacket& parsed, ProcessContext& ctx) override {
    (void)txn;
    return process_stateless(packet, parsed, ctx);
  }

  Verdict process_stateless(pkt::Packet& packet, pkt::ParsedPacket& parsed,
                            ProcessContext& ctx) override {
    (void)packet;
    (void)ctx;
    for (const auto& rule : rules_) {
      if (rule.matches(parsed.flow)) {
        return rule.allow ? Verdict::kForward : Verdict::kDrop;
      }
    }
    return default_allow_ ? Verdict::kForward : Verdict::kDrop;
  }

  std::size_t rule_count() const noexcept { return rules_.size(); }

 private:
  std::vector<FirewallRule> rules_;
  bool default_allow_;
};

}  // namespace sfc::mbox
