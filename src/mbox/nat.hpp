// Network address translators (paper Table 1).
//
// MazuNAT models the core of the commercial Click mazu-nat configuration
// the paper uses: a bidirectional flow table with shared port allocation —
// read-heavy (one lookup per packet) with a write per new flow.
// SimpleNAT provides the basic outbound-rewrite path only.
//
// State layout (per flow-table entry):
//   key   = FlowKey::hash() of the original (or externalized) 5-tuple
//   value = NatEntry { translated flow, creation time }
// Port allocation uses a single shared counter key, which is the shared
// write the paper attributes to NAT connection persistence (§3.2).
#pragma once

#include <cstdint>

#include "mbox/middlebox.hpp"
#include "packet/flow.hpp"

namespace sfc::mbox {

/// Flow-table entry value stored in the state store.
struct NatEntry {
  pkt::FlowKey rewritten{};  ///< What the packet's flow becomes.
  std::uint64_t created_ns{0};
};

class MazuNat final : public Middlebox {
 public:
  struct Config {
    std::uint32_t external_ip{0xc0a80a01};     // 192.168.10.1
    std::uint32_t internal_prefix{0x0a000000}; // 10.0.0.0/8 is "inside".
    std::uint32_t internal_mask{0xff000000};
    std::uint16_t port_base{10000};
    std::uint16_t port_count{50000};
  };

  MazuNat() : MazuNat(Config{}) {}
  explicit MazuNat(Config cfg) : cfg_(cfg) {}

  std::string_view name() const noexcept override { return "MazuNAT"; }

  Verdict process(state::Txn& txn, pkt::Packet& packet,
                  pkt::ParsedPacket& parsed, ProcessContext& ctx) override;

  const Config& config() const noexcept { return cfg_; }

  static state::Key port_counter_key() noexcept {
    return state::key_of_name("mazunat-next-port");
  }

 private:
  bool is_internal(std::uint32_t ip) const noexcept {
    return (ip & cfg_.internal_mask) == cfg_.internal_prefix;
  }

  Config cfg_;
};

class SimpleNat final : public Middlebox {
 public:
  explicit SimpleNat(std::uint32_t external_ip = 0xc0a81401)  // 192.168.20.1
      : external_ip_(external_ip) {}

  std::string_view name() const noexcept override { return "SimpleNAT"; }

  Verdict process(state::Txn& txn, pkt::Packet& packet,
                  pkt::ParsedPacket& parsed, ProcessContext& ctx) override;

 private:
  std::uint32_t external_ip_;
};

}  // namespace sfc::mbox
