#include "orch/orchestrator.hpp"

#include <cstring>
#include <thread>

#include "obs/span.hpp"
#include "runtime/clock.hpp"
#include "runtime/logging.hpp"

namespace sfc::orch {

using ftc::CtrlMsg;

namespace {

/// Recovery-phase span on the orchestrator track. Protocol-rate: the sink
/// check is the gate (no per-packet cost involved).
inline void span_event(obs::Registry& reg, std::uint32_t position,
                       obs::SpanKind kind, std::uint64_t a = 0) noexcept {
  if (auto* sink = reg.span_sink()) {
    sink->record(obs::SpanRecord{obs::recovery_trace_id(position),
                                 rt::now_ns(), a, obs::kSpanSiteOrch, kind});
  }
}

}  // namespace

Orchestrator::Orchestrator(ftc::ChainRuntime& chain, OrchestratorConfig cfg)
    : chain_(chain), cfg_(cfg), ctrl_(chain.control()) {
  ctrl_.register_node(net::kOrchestratorNode);
  auto& registry = chain_.registry();
  const obs::Labels labels{{"node", "orch"}};
  pings_sent_ = &registry.counter("orch.pings_sent", labels);
  failures_counter_ = &registry.counter("orch.failures_detected", labels);
  recoveries_ = &registry.counter("orch.recoveries", labels);
  trace_ = &registry.trace("orch.events", labels);
  registry.name_span_site(obs::kSpanSiteOrch, "orchestrator");
}

Orchestrator::~Orchestrator() { stop(); }

void Orchestrator::start() {
  if (monitor_) return;
  monitor_ = std::make_unique<rt::Worker>();
  monitor_->start("orchestrator", [this] { return monitor_body(); });
}

void Orchestrator::stop() { monitor_.reset(); }

bool Orchestrator::monitor_body() {
  const std::uint64_t now = rt::now_ns();

  // Absorb pongs.
  while (auto msg = ctrl_.poll(net::kOrchestratorNode)) {
    if (msg->type == CtrlMsg::kPong) last_seen_ns_[msg->from] = rt::now_ns();
  }

  if (now < next_ping_ns_) return false;
  next_ping_ns_ = now + cfg_.heartbeat_interval_ns;

  std::vector<std::uint32_t> failed_positions;
  for (std::uint32_t pos = 0; pos < chain_.ring_size(); ++pos) {
    ftc::FtcNode* node = chain_.ftc_node(pos);
    if (node == nullptr) continue;
    const auto [it, first_sight] = last_seen_ns_.try_emplace(node->id(), now);
    if (!first_sight && now - it->second > cfg_.failure_timeout_ns) {
      failed_positions.push_back(pos);
      trace_->emit(obs::Event::kFailureDetected, node->id(), pos);
      span_event(chain_.registry(), pos, obs::SpanKind::kDetect, node->id());
      continue;
    }
    net::Message ping;
    ping.type = CtrlMsg::kPing;
    ping.from = net::kOrchestratorNode;
    ping.to = node->id();
    ping.tag = ++ping_seq_;
    ctrl_.send(std::move(ping));
    pings_sent_->inc();
  }

  if (!failed_positions.empty()) {
    failures_detected_.fetch_add(failed_positions.size());
    failures_counter_->add(failed_positions.size());
    SFC_LOG_INFO("orch") << failed_positions.size()
                         << " replica(s) failed; starting recovery";
    recover(failed_positions);
  }
  // Low-rate control work: sleep (in place of a spin backoff) so the data
  // plane keeps the CPU.
  std::this_thread::sleep_for(std::chrono::microseconds(500));
  return true;
}

std::vector<RecoveryReport> Orchestrator::recover(
    const std::vector<std::uint32_t>& positions) {
  // Serialized: the monitor and manual callers share this path. Outermost
  // rank in the tree: a recovery drives the control plane, node state
  // fetches, and registry timers while holding it.
  static Mutex recovery_mutex{ranks::kOrch, "orch.recovery"};
  LockGuard recovery_lock(recovery_mutex);

  struct Pending {
    RecoveryReport report;
    ftc::FtcNode* node{nullptr};
    std::uint64_t start_ns{0};
    std::uint64_t tag{0};
    bool acked{false};
    bool done{false};
  };
  std::vector<Pending> pending;

  // Manual recoveries (no monitor detection) get their "failure became
  // known" timestamp here; the monitor's earlier kDetect wins otherwise
  // (recovery_timelines keeps the first occurrence).
  for (std::uint32_t pos : positions) {
    span_event(chain_.registry(), pos, obs::SpanKind::kDetect);
  }

  // Step 1: spawn all replacements and hand each its fetch plan. Spawns
  // overlap; the simulated instantiation cost is paid once up front.
  std::this_thread::sleep_for(std::chrono::nanoseconds(cfg_.spawn_delay_ns));
  for (std::uint32_t pos : positions) {
    Pending p;
    p.start_ns = rt::now_ns();
    p.report.position = pos;
    if (ftc::FtcNode* old_node = chain_.ftc_node(pos)) {
      p.report.failed_node = old_node->id();
    }
    p.node = chain_.spawn_replacement(pos);
    p.report.new_node = p.node->id();
    trace_->emit(obs::Event::kRecoverySpawn, p.node->id(), pos);
    span_event(chain_.registry(), pos, obs::SpanKind::kSpawn, p.node->id());
    p.tag = 0xFEC0000000000000ull | p.node->id();
    pending.push_back(p);
  }

  // The fetch plan references the surviving replicas (paper §5.2).
  for (auto& p : pending) {
    const auto sources = chain_.recovery_sources(p.report.position);
    net::Message init;
    init.type = CtrlMsg::kInit;
    init.from = net::kOrchestratorNode;
    init.to = p.node->id();
    init.tag = p.tag;
    std::uint32_t count = static_cast<std::uint32_t>(sources.size());
    const auto* cp = reinterpret_cast<const std::uint8_t*>(&count);
    init.payload.insert(init.payload.end(), cp, cp + 4);
    for (const auto& [mbox, source] : sources) {
      const auto* mp = reinterpret_cast<const std::uint8_t*>(&mbox);
      init.payload.insert(init.payload.end(), mp, mp + 4);
      const auto* sp = reinterpret_cast<const std::uint8_t*>(&source);
      init.payload.insert(init.payload.end(), sp, sp + 4);
    }
    ctrl_.send(std::move(init));
  }

  // Step 2: collect init-acks and completions. The orchestrator updates no
  // routing until EVERY simultaneous failure has recovered (paper §5.2).
  const std::uint64_t deadline = rt::now_ns() + 30'000'000'000ull;
  std::size_t outstanding = pending.size();
  while (outstanding > 0 && rt::now_ns() < deadline) {
    auto msg = ctrl_.poll(net::kOrchestratorNode);
    if (!msg) {
      std::this_thread::yield();
      continue;
    }
    if (msg->type == CtrlMsg::kPong) {
      last_seen_ns_[msg->from] = rt::now_ns();
      continue;
    }
    for (auto& p : pending) {
      if (msg->tag != p.tag) continue;
      if (msg->type == CtrlMsg::kInitAck && !p.acked) {
        p.acked = true;
        p.report.initialization_ns = rt::now_ns() - p.start_ns;
        trace_->emit(obs::Event::kRecoveryInitAck, p.node->id());
        span_event(chain_.registry(), p.report.position,
                   obs::SpanKind::kInitAck, p.node->id());
      } else if (msg->type == CtrlMsg::kRecovered && !p.done) {
        p.done = true;
        --outstanding;
        p.report.success = !msg->payload.empty() && msg->payload[0] == 1;
        if (msg->payload.size() >= 9) {
          std::memcpy(&p.report.state_recovery_ns, msg->payload.data() + 1, 8);
        }
      }
      break;
    }
  }

  // Step 3: update routing rules, steering traffic through the new
  // replicas.
  for (auto& p : pending) {
    if (!p.done || !p.report.success) {
      SFC_LOG_ERROR("orch") << "recovery of position " << p.report.position
                            << " failed";
      continue;
    }
    const std::uint64_t reroute_start = rt::now_ns();
    chain_.wire_replacement(p.report.position, p.node);
    last_seen_ns_[p.node->id()] = rt::now_ns();
    p.report.rerouting_ns = rt::now_ns() - reroute_start;
    p.report.total_ns = rt::now_ns() - p.start_ns;
    recoveries_->inc();
    trace_->emit(obs::Event::kRecoveryRerouted, p.node->id(),
                 p.report.position);
    span_event(chain_.registry(), p.report.position, obs::SpanKind::kReroute,
               p.report.position);
    chain_.registry()
        .timer("orch.recovery_total_ns")
        .record(p.report.total_ns);
    SFC_LOG_INFO("orch") << "position " << p.report.position << " recovered in "
                         << p.report.total_ns / 1000000.0 << " ms";
  }

  std::vector<RecoveryReport> out;
  out.reserve(pending.size());
  {
    LockGuard lock(mutex_);
    for (auto& p : pending) {
      reports_.push_back(p.report);
      out.push_back(p.report);
    }
  }
  return out;
}

std::vector<RecoveryReport> Orchestrator::reports() const {
  LockGuard lock(mutex_);
  return reports_;
}

}  // namespace sfc::orch
