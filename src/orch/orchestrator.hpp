// Orchestrator (paper §3.2 "centralized orchestration", §5.2 failure
// recovery). Stands in for the paper's ONOS-based NFV orchestrator:
//   * deploys chains (done by ChainRuntime at construction),
//   * reliably monitors replicas via heartbeats and detects fail-stop
//     failures,
//   * drives recovery: spawn a new replica AT THE FAILURE POSITION,
//     instruct it which replicas to fetch state from, wait for every
//     simultaneous failure's replacement to finish, then update routing.
// The orchestrator is off the data path: after deployment it exchanges
// only control messages.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "base/mutex.hpp"
#include "core/chain.hpp"
#include "runtime/worker.hpp"

namespace sfc::orch {

struct OrchestratorConfig {
  std::uint64_t heartbeat_interval_ns{10'000'000};  ///< Ping cadence.
  /// Silence threshold before a replica is declared failed. Generous by
  /// default: on an oversubscribed host a healthy replica's control
  /// thread can easily be starved for tens of milliseconds, and a false
  /// positive costs a full (if safe) replacement.
  std::uint64_t failure_timeout_ns{250'000'000};
  /// Simulated replica instantiation cost (container/VM spawn) added on
  /// top of the orchestrator<->site control RTT.
  std::uint64_t spawn_delay_ns{1'000'000};
};

/// Timing breakdown of one recovery, mirroring the paper's Figure 13
/// decomposition (initialization delay, state recovery delay; rerouting is
/// measured but negligible, as in the paper).
struct RecoveryReport {
  std::uint32_t position{0};
  net::NodeId failed_node{0};
  net::NodeId new_node{0};
  bool success{false};
  std::uint64_t initialization_ns{0};  ///< Spawn + init handshake.
  std::uint64_t state_recovery_ns{0};  ///< Parallel state fetch.
  std::uint64_t rerouting_ns{0};       ///< Routing-rule update.
  std::uint64_t total_ns{0};
};

class Orchestrator : rt::NonCopyable {
 public:
  Orchestrator(ftc::ChainRuntime& chain, OrchestratorConfig cfg = {});
  ~Orchestrator();

  /// Starts heartbeat monitoring (FTC chains only).
  void start();
  void stop();

  /// Recovers a set of simultaneously failed positions: spawns all
  /// replacements, waits for every state recovery to complete, then
  /// updates routing (paper §5.2). Returns one report per position.
  /// Thread-safe against the monitor (which uses the same path).
  std::vector<RecoveryReport> recover(const std::vector<std::uint32_t>& positions);

  /// All recoveries performed so far (monitor-initiated and manual).
  std::vector<RecoveryReport> reports() const;

  /// Number of failures detected by the heartbeat monitor.
  std::uint64_t failures_detected() const noexcept {
    return failures_detected_.load();
  }

 private:
  bool monitor_body();
  RecoveryReport recover_one_spawn(std::uint32_t position,
                                   ftc::FtcNode*& out_node);

  ftc::ChainRuntime& chain_;
  const OrchestratorConfig cfg_;
  net::ControlPlane& ctrl_;

  std::unique_ptr<rt::Worker> monitor_;
  std::uint64_t next_ping_ns_{0};
  std::uint64_t ping_seq_{0};
  std::map<net::NodeId, std::uint64_t> last_seen_ns_;

  mutable Mutex mutex_{ranks::kLeaf, "orch.reports"};
  std::vector<RecoveryReport> reports_ SFC_GUARDED_BY(mutex_);
  std::atomic<std::uint64_t> failures_detected_{0};

  obs::Counter* pings_sent_;
  obs::Counter* failures_counter_;
  obs::Counter* recoveries_;
  obs::EventTrace* trace_;
};

}  // namespace sfc::orch
