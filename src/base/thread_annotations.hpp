// Clang Thread Safety Analysis macros.
//
// These expand to the clang `capability` attribute family when compiling
// with a clang that supports them (-Wthread-safety turns on the analysis)
// and to nothing everywhere else, so GCC builds are unaffected. The
// spelling follows the documented attribute names; see
// https://clang.llvm.org/docs/ThreadSafetyAnalysis.html for semantics.
//
// Conventions used across src/:
//  * every long-lived mutex is an sfc::Mutex (base/mutex.hpp) with a rank
//    and a name; fields it protects carry SFC_GUARDED_BY(mutex_),
//  * `*_locked()` helpers that assume the caller holds the lock carry
//    SFC_REQUIRES(mutex_),
//  * functions whose locking TSA cannot model (dynamic lock sets such as
//    StateStore's per-partition array, hand-rolled CAS locks) carry
//    SFC_NO_THREAD_SAFETY_ANALYSIS with a comment saying why.
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define SFC_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef SFC_THREAD_ANNOTATION
#define SFC_THREAD_ANNOTATION(x)  // no-op off clang
#endif

/// Marks a class as a lockable capability ("mutex" in diagnostics).
#define SFC_CAPABILITY(x) SFC_THREAD_ANNOTATION(capability(x))

/// Marks an RAII class whose constructor acquires and destructor releases.
#define SFC_SCOPED_CAPABILITY SFC_THREAD_ANNOTATION(scoped_lockable)

/// Field is protected by the given capability.
#define SFC_GUARDED_BY(x) SFC_THREAD_ANNOTATION(guarded_by(x))

/// Pointer field whose *pointee* is protected by the given capability.
#define SFC_PT_GUARDED_BY(x) SFC_THREAD_ANNOTATION(pt_guarded_by(x))

/// Documented acquisition order relative to other capabilities.
#define SFC_ACQUIRED_BEFORE(...) \
  SFC_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define SFC_ACQUIRED_AFTER(...) \
  SFC_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// Caller must hold the capability (exclusively / shared).
#define SFC_REQUIRES(...) \
  SFC_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define SFC_REQUIRES_SHARED(...) \
  SFC_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Function acquires / releases the capability.
#define SFC_ACQUIRE(...) SFC_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define SFC_ACQUIRE_SHARED(...) \
  SFC_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define SFC_RELEASE(...) SFC_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define SFC_RELEASE_SHARED(...) \
  SFC_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define SFC_RELEASE_GENERIC(...) \
  SFC_THREAD_ANNOTATION(release_generic_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns the given value.
#define SFC_TRY_ACQUIRE(...) \
  SFC_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Caller must NOT hold the capability (deadlock documentation).
#define SFC_EXCLUDES(...) SFC_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the capability is held (no static proof needed).
#define SFC_ASSERT_CAPABILITY(x) SFC_THREAD_ANNOTATION(assert_capability(x))

/// Function returns a reference to the given capability.
#define SFC_RETURN_CAPABILITY(x) SFC_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: turn the analysis off for one function. Every use must
/// carry a comment explaining why TSA cannot model the locking.
#define SFC_NO_THREAD_SAFETY_ANALYSIS \
  SFC_THREAD_ANNOTATION(no_thread_safety_analysis)
