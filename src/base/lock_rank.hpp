// Runtime lock-rank (lock-ordering) deadlock detector.
//
// Every sfc::Mutex (and the state-layer PartitionLock) carries a static
// rank. The discipline: a thread may only block on a lock whose rank is
// strictly LOWER than every lock it already holds — outer locks have
// higher ranks, leaves the lowest. Any acquisition that violates the
// order, and any recursive acquisition of the same lock, aborts
// immediately with both lock names and the full held stack, turning a
// would-be deadlock (which TSan only sees if both arms race in one run)
// into a deterministic test failure.
//
// The one sanctioned exception is the wound-wait partition lock: packet
// transactions acquire partition locks in arbitrary key order and rely on
// wounding for deadlock freedom (paper §4.2), so same-rank nesting is
// allowed when BOTH locks opt into SameRank::kWoundWait.
//
// Checks compile in only when SFC_LOCK_RANK_CHECKS is defined non-zero
// (CMake: on for every build type except Release, so tier-1 tests at
// RelWithDebInfo exercise the detector while the Release budget gate pays
// nothing).
//
// The rank table. Higher value = acquired earlier (outer). Derived from
// the actual nestings in the tree, e.g. Registry::snapshot runs gauge
// callbacks that take node-level locks, so the registry outranks them;
// the egress buffer flushes into a Link/ReliableChannel under its own
// lock, so node outranks transport outranks link; the applier's MAX
// mutex is held across StateStore partition application.
#pragma once

#include <cstddef>
#include <cstdint>

namespace sfc {

using LockRank = std::uint16_t;

namespace ranks {
// clang-format off
inline constexpr LockRank kSeqlockWrite = 2;    ///< shard-affine store seqlock write section: may block on NOTHING (even logging), so the window stays a handful of stores.
inline constexpr LockRank kLogging      = 5;    ///< runtime log write mutex: anything may log.
inline constexpr LockRank kProfViolation= 8;    ///< prof violation records (fires under partition locks).
inline constexpr LockRank kProfRegister = 12;   ///< prof slot registration (first touch under partition locks).
inline constexpr LockRank kSpanRegister = 15;   ///< span ring registration (first record under node locks).
inline constexpr LockRank kLeaf         = 20;   ///< self-contained leaves: histograms, traces, pcap, log history.
inline constexpr LockRank kPartition    = 30;   ///< state::PartitionLock (wound-wait).
inline constexpr LockRank kApplier      = 40;   ///< InOrderApplier MAX mutex (held across partition apply).
inline constexpr LockRank kLink         = 50;   ///< net::Link timed queue.
inline constexpr LockRank kTransport    = 60;   ///< net::ReliableChannel window (drives its Link under lock).
inline constexpr LockRank kControl      = 70;   ///< net::ControlPlane inboxes.
inline constexpr LockRank kNode         = 80;   ///< FtcNode park state, EgressBuffer (flushes into ports).
inline constexpr LockRank kObs          = 90;   ///< obs::Registry (snapshot runs node-lock-taking callbacks).
inline constexpr LockRank kSpanDrain    = 95;   ///< span drain side (registers ring gauges into the registry).
inline constexpr LockRank kOrch         = 100;  ///< orchestrator recovery serialization (outermost).
// clang-format on
}  // namespace ranks

/// Same-rank nesting policy. kForbid is the default for std-mutex-backed
/// locks; kWoundWait is reserved for the partition lock family, whose
/// deadlock freedom comes from wounding, not ordering.
enum class SameRank : std::uint8_t { kForbid, kWoundWait };

namespace lockrank {

namespace detail {
void check_acquire_impl(const void* lock, LockRank rank, const char* name,
                        SameRank policy) noexcept;
void note_held_impl(const void* lock, LockRank rank, const char* name,
                    SameRank policy) noexcept;
void note_release_impl(const void* lock) noexcept;
std::size_t held_depth_impl() noexcept;
}  // namespace detail

/// Validates that acquiring @p lock now respects the rank order given
/// what this thread already holds; aborts with a diagnostic naming both
/// locks otherwise. Call BEFORE blocking on the lock.
inline void check_acquire([[maybe_unused]] const void* lock,
                          [[maybe_unused]] LockRank rank,
                          [[maybe_unused]] const char* name,
                          [[maybe_unused]] SameRank policy =
                              SameRank::kForbid) noexcept {
#if SFC_LOCK_RANK_CHECKS
  detail::check_acquire_impl(lock, rank, name, policy);
#endif
}

/// Records @p lock on this thread's held stack. Call AFTER the lock is
/// actually acquired (so a failed try_lock or a wounded partition
/// acquisition records nothing).
inline void note_held([[maybe_unused]] const void* lock,
                      [[maybe_unused]] LockRank rank,
                      [[maybe_unused]] const char* name,
                      [[maybe_unused]] SameRank policy =
                          SameRank::kForbid) noexcept {
#if SFC_LOCK_RANK_CHECKS
  detail::note_held_impl(lock, rank, name, policy);
#endif
}

/// Removes @p lock from this thread's held stack (release order need not
/// be LIFO: StateStore releases partition locks in index order).
inline void note_release([[maybe_unused]] const void* lock) noexcept {
#if SFC_LOCK_RANK_CHECKS
  detail::note_release_impl(lock);
#endif
}

/// Number of ranked locks the calling thread currently holds (test hook).
inline std::size_t held_depth() noexcept {
#if SFC_LOCK_RANK_CHECKS
  return detail::held_depth_impl();
#else
  return 0;
#endif
}

/// Whether rank checking is compiled into this build (test hook).
inline constexpr bool enabled() noexcept {
#if SFC_LOCK_RANK_CHECKS
  return true;
#else
  return false;
#endif
}

}  // namespace lockrank
}  // namespace sfc
