// Annotated, rank-checked mutex and RAII lock wrappers.
//
// sfc::Mutex is a std::mutex plus (a) clang thread-safety capability
// annotations so -Wthread-safety can prove guarded accesses at compile
// time, and (b) a static lock rank + name feeding the runtime lock-rank
// deadlock detector (base/lock_rank.hpp) in checked builds. Release
// builds compile to exactly a std::mutex call plus two dead const
// members.
//
// sfc::LockGuard is the std::lock_guard shape; sfc::UniqueLock mirrors
// the subset of std::unique_lock the tree uses (defer_lock, try_lock,
// explicit lock/unlock) with the clang-documented scoped-capability
// annotation pattern.
#pragma once

#include <mutex>

#include "base/lock_rank.hpp"
#include "base/thread_annotations.hpp"

namespace sfc {

class SFC_CAPABILITY("mutex") Mutex {
 public:
  explicit Mutex(LockRank rank, const char* name,
                 SameRank policy = SameRank::kForbid) noexcept
      : rank_(rank), policy_(policy), name_(name) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() SFC_ACQUIRE() {
    lockrank::check_acquire(this, rank_, name_, policy_);
    m_.lock();
    lockrank::note_held(this, rank_, name_, policy_);
  }

  bool try_lock() SFC_TRY_ACQUIRE(true) {
    // A failed try_lock cannot deadlock, so only a successful acquisition
    // is recorded (and still rank-checked: a try_lock that only succeeds
    // out of order is a latent inversion the blocking path would hit).
    if (!m_.try_lock()) return false;
    lockrank::check_acquire(this, rank_, name_, policy_);
    lockrank::note_held(this, rank_, name_, policy_);
    return true;
  }

  void unlock() SFC_RELEASE() {
    lockrank::note_release(this);
    m_.unlock();
  }

  LockRank rank() const noexcept { return rank_; }
  const char* name() const noexcept { return name_; }

  /// TSA escape for runtime-verified holds (e.g. asserting a lock is held
  /// in a helper reached only from locked contexts).
  void assert_held() const SFC_ASSERT_CAPABILITY(this) {}

 private:
  std::mutex m_;
  const LockRank rank_;
  const SameRank policy_;
  const char* const name_;
};

class SFC_SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(Mutex& m) SFC_ACQUIRE(m) : m_(m) { m_.lock(); }
  ~LockGuard() SFC_RELEASE() { m_.unlock(); }
  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  Mutex& m_;
};

class SFC_SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& m) SFC_ACQUIRE(m) : m_(&m), owned_(true) {
    m_->lock();
  }
  UniqueLock(Mutex& m, std::defer_lock_t) SFC_EXCLUDES(m)
      : m_(&m), owned_(false) {}
  ~UniqueLock() SFC_RELEASE() {
    if (owned_) m_->unlock();
  }
  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;
  /// Move transfers ownership (factory-return pattern, e.g. the applier's
  /// lock_max_mutex helper). Excluded from analysis: TSA attributes
  /// capability state to the function that performed the acquire.
  UniqueLock(UniqueLock&& other) noexcept SFC_NO_THREAD_SAFETY_ANALYSIS
      : m_(other.m_), owned_(other.owned_) {
    other.owned_ = false;
  }
  UniqueLock& operator=(UniqueLock&&) = delete;

  void lock() SFC_ACQUIRE() {
    m_->lock();
    owned_ = true;
  }

  bool try_lock() SFC_TRY_ACQUIRE(true) {
    owned_ = m_->try_lock();
    return owned_;
  }

  void unlock() SFC_RELEASE() {
    m_->unlock();
    owned_ = false;
  }

  bool owns_lock() const noexcept { return owned_; }

 private:
  Mutex* m_;
  bool owned_;
};

}  // namespace sfc
