#include "base/lock_rank.hpp"

#include <cstdio>
#include <cstdlib>

namespace sfc::lockrank::detail {
namespace {

/// One held-lock record. POD so the thread_local needs no registration
/// with the C++ runtime's TLS destructor machinery (locks may be taken
/// during thread teardown, e.g. by logging in a detached worker's last
/// gasp).
struct Held {
  const void* lock;
  LockRank rank;
  SameRank policy;
  const char* name;
};

/// Deepest legal nesting in the tree today is ~5 (orch > registry >
/// node > link > leaf plus partition fan-out); 64 leaves a wide margin
/// for the 16-partition wound-wait fan-out.
constexpr std::size_t kMaxHeld = 64;

thread_local Held t_held[kMaxHeld];
thread_local std::size_t t_depth = 0;

[[noreturn]] void die(const char* fmt, const char* a, LockRank ra,
                      const char* b, LockRank rb) noexcept {
  std::fprintf(stderr, fmt, a, static_cast<unsigned>(ra), b,
               static_cast<unsigned>(rb));
  std::fprintf(stderr, "[lock-rank] held stack (outermost first):\n");
  for (std::size_t i = 0; i < t_depth; ++i) {
    std::fprintf(stderr, "[lock-rank]   #%zu \"%s\" (rank %u)\n", i,
                 t_held[i].name, static_cast<unsigned>(t_held[i].rank));
  }
  std::fflush(stderr);
  std::abort();
}

}  // namespace

void check_acquire_impl(const void* lock, LockRank rank, const char* name,
                        SameRank policy) noexcept {
  for (std::size_t i = 0; i < t_depth; ++i) {
    const Held& h = t_held[i];
    if (h.lock == lock) {
      die("[lock-rank] FATAL: recursive acquisition of \"%s\" (rank %u) "
          "already held as \"%s\" (rank %u)\n",
          name, rank, h.name, h.rank);
    }
    if (h.rank < rank ||
        (h.rank == rank && (policy != SameRank::kWoundWait ||
                            h.policy != SameRank::kWoundWait))) {
      die("[lock-rank] FATAL: rank inversion acquiring \"%s\" (rank %u) "
          "while holding \"%s\" (rank %u); locks must be taken in "
          "strictly decreasing rank order\n",
          name, rank, h.name, h.rank);
    }
  }
}

void note_held_impl(const void* lock, LockRank rank, const char* name,
                    SameRank policy) noexcept {
  if (t_depth < kMaxHeld) {
    t_held[t_depth] = Held{lock, rank, policy, name};
  }
  ++t_depth;
}

void note_release_impl(const void* lock) noexcept {
  // Search from the top: releases are almost always LIFO, but StateStore
  // releases its partition set in index order, so tolerate any position.
  const std::size_t tracked = t_depth < kMaxHeld ? t_depth : kMaxHeld;
  for (std::size_t i = tracked; i-- > 0;) {
    if (t_held[i].lock != lock) continue;
    for (std::size_t j = i + 1; j < tracked; ++j) t_held[j - 1] = t_held[j];
    --t_depth;
    return;
  }
  // Not found: acquired past the overflow watermark, or a lock taken
  // before checking was enabled. Drop the overflow count if any.
  if (t_depth > kMaxHeld) --t_depth;
}

std::size_t held_depth_impl() noexcept { return t_depth; }

}  // namespace sfc::lockrank::detail
