// Packet-rate limiter for the traffic generator.
//
// Deadline-based pacing: each send advances a virtual deadline by the
// inter-packet gap and spins until the wall clock catches up, which keeps
// long-run rate exact even when individual sends jitter.
#pragma once

#include <cstdint>

#include "runtime/clock.hpp"

namespace sfc::rt {

class RateLimiter {
 public:
  /// @param rate_pps Target packets per second. 0 means unlimited.
  explicit RateLimiter(double rate_pps = 0.0) { set_rate(rate_pps); }

  void set_rate(double rate_pps) noexcept {
    gap_ns_ = rate_pps > 0.0 ? 1e9 / rate_pps : 0.0;
    next_deadline_ns_ = 0.0;
  }

  double rate_pps() const noexcept { return gap_ns_ > 0 ? 1e9 / gap_ns_ : 0.0; }

  /// Blocks (spins) until the next packet may be sent.
  void wait() noexcept {
    if (gap_ns_ <= 0.0) return;
    const auto now = static_cast<double>(now_ns());
    if (next_deadline_ns_ == 0.0) next_deadline_ns_ = now;
    if (next_deadline_ns_ > now) {
      spin_until_ns(static_cast<std::uint64_t>(next_deadline_ns_));
    } else if (now - next_deadline_ns_ > 1e6) {
      // More than 1 ms behind: resynchronize instead of bursting to catch
      // up, otherwise a long stall would be followed by a huge burst.
      next_deadline_ns_ = now;
    }
    next_deadline_ns_ += gap_ns_;
  }

  /// Non-blocking variant: true (and the deadline advances) when a packet
  /// may be sent immediately, false when it would have to wait. Burst
  /// fills use this to flush what they have instead of holding built
  /// packets across inter-packet gaps (which would skew their latency).
  bool try_send() noexcept {
    if (gap_ns_ <= 0.0) return true;
    const auto now = static_cast<double>(now_ns());
    if (next_deadline_ns_ == 0.0) next_deadline_ns_ = now;
    if (next_deadline_ns_ > now) return false;
    if (now - next_deadline_ns_ > 1e6) next_deadline_ns_ = now;
    next_deadline_ns_ += gap_ns_;
    return true;
  }

 private:
  double gap_ns_{0.0};
  double next_deadline_ns_{0.0};
};

}  // namespace sfc::rt
