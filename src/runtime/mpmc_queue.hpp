// Bounded lock-free multi-producer/multi-consumer queue (Vyukov style).
//
// Used where multiple middlebox threads feed a single link endpoint or a
// control-plane mailbox: each slot carries a sequence number that encodes
// whether it is ready for a producer or a consumer.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <optional>
#include <span>
#include <utility>

#include "runtime/common.hpp"

namespace sfc::rt {

template <typename T>
class MpmcQueue : NonCopyable {
 public:
  explicit MpmcQueue(std::size_t capacity)
      : mask_(next_pow2(capacity) - 1),
        slots_(std::make_unique<Slot[]>(mask_ + 1)) {
    for (std::size_t i = 0; i <= mask_; ++i) {
      slots_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  bool try_push(T&& value) noexcept {
    Slot* slot;
    auto pos = head_.load(std::memory_order_relaxed);
    for (;;) {
      slot = &slots_[pos & mask_];
      const auto seq = slot->seq.load(std::memory_order_acquire);
      const auto diff = static_cast<std::intptr_t>(seq) -
                        static_cast<std::intptr_t>(pos);
      if (diff == 0) {
        if (head_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          break;
        }
      } else if (diff < 0) {
        return false;  // Full.
      } else {
        pos = head_.load(std::memory_order_relaxed);
      }
    }
    slot->value = std::move(value);
    slot->seq.store(pos + 1, std::memory_order_release);
    return true;
  }

  bool try_push(const T& value) noexcept {
    T copy = value;
    return try_push(std::move(copy));
  }

  std::optional<T> try_pop() noexcept {
    Slot* slot;
    auto pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      slot = &slots_[pos & mask_];
      const auto seq = slot->seq.load(std::memory_order_acquire);
      const auto diff = static_cast<std::intptr_t>(seq) -
                        static_cast<std::intptr_t>(pos + 1);
      if (diff == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          break;
        }
      } else if (diff < 0) {
        return std::nullopt;  // Empty.
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
    std::optional<T> out{std::move(slot->value)};
    slot->seq.store(pos + mask_ + 1, std::memory_order_release);
    return out;
  }

  /// Pushes a prefix of @p values, reserving the whole run of slots with a
  /// single CAS on the producer cursor (vs one CAS per element for N
  /// try_push calls). Moves from the consumed prefix and returns its
  /// length; 0 when the queue is full. FIFO order of the burst is
  /// preserved, and bursts interleave safely with singleton push/pop.
  std::size_t try_push_n(std::span<T> values) noexcept {
    if (values.empty()) return 0;
    auto pos = head_.load(std::memory_order_relaxed);
    std::size_t n;
    for (;;) {
      // Count the ready slots from pos forward. A slot counted ready
      // cannot regress before our CAS: only the producer that wins
      // position pos+i may touch it, and winning requires advancing
      // head_ through pos — which would fail our CAS and retry.
      n = 0;
      while (n < values.size()) {
        const auto seq =
            slots_[(pos + n) & mask_].seq.load(std::memory_order_acquire);
        if (seq != pos + n) break;
        ++n;
      }
      if (n == 0) {
        // Distinguish "full" from "lost the race to another producer".
        const auto seq = slots_[pos & mask_].seq.load(std::memory_order_acquire);
        if (static_cast<std::intptr_t>(seq) - static_cast<std::intptr_t>(pos) <
            0) {
          return 0;  // Full.
        }
        pos = head_.load(std::memory_order_relaxed);
        continue;
      }
      if (head_.compare_exchange_weak(pos, pos + n,
                                      std::memory_order_relaxed)) {
        break;
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      Slot& slot = slots_[(pos + i) & mask_];
      slot.value = std::move(values[i]);
      slot.seq.store(pos + i + 1, std::memory_order_release);
    }
    return n;
  }

  /// Pops up to @p max elements into @p out, reserving the contiguous run
  /// of ready slots with a single CAS on the consumer cursor. Returns the
  /// number popped (0 when empty). The run preserves queue order.
  std::size_t try_pop_n(T* out, std::size_t max) noexcept {
    if (max == 0) return 0;
    auto pos = tail_.load(std::memory_order_relaxed);
    std::size_t n;
    for (;;) {
      n = 0;
      while (n < max) {
        const auto seq =
            slots_[(pos + n) & mask_].seq.load(std::memory_order_acquire);
        if (seq != pos + n + 1) break;
        ++n;
      }
      if (n == 0) {
        const auto seq = slots_[pos & mask_].seq.load(std::memory_order_acquire);
        if (static_cast<std::intptr_t>(seq) -
                static_cast<std::intptr_t>(pos + 1) <
            0) {
          return 0;  // Empty.
        }
        pos = tail_.load(std::memory_order_relaxed);
        continue;
      }
      if (tail_.compare_exchange_weak(pos, pos + n,
                                      std::memory_order_relaxed)) {
        break;
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      Slot& slot = slots_[(pos + i) & mask_];
      out[i] = std::move(slot.value);
      slot.seq.store(pos + i + mask_ + 1, std::memory_order_release);
    }
    return n;
  }

  std::size_t size_approx() const noexcept {
    const auto head = head_.load(std::memory_order_acquire);
    const auto tail = tail_.load(std::memory_order_acquire);
    return head > tail ? head - tail : 0;
  }

  std::size_t capacity() const noexcept { return mask_ + 1; }

 private:
  struct Slot {
    std::atomic<std::size_t> seq{0};
    T value{};
  };

  const std::size_t mask_;
  std::unique_ptr<Slot[]> slots_;
  alignas(kCacheLineSize) std::atomic<std::size_t> head_{0};
  alignas(kCacheLineSize) std::atomic<std::size_t> tail_{0};
};

}  // namespace sfc::rt
