// Bounded lock-free multi-producer/multi-consumer queue (Vyukov style).
//
// Used where multiple middlebox threads feed a single link endpoint or a
// control-plane mailbox: each slot carries a sequence number that encodes
// whether it is ready for a producer or a consumer.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <optional>
#include <utility>

#include "runtime/common.hpp"

namespace sfc::rt {

template <typename T>
class MpmcQueue : NonCopyable {
 public:
  explicit MpmcQueue(std::size_t capacity)
      : mask_(next_pow2(capacity) - 1),
        slots_(std::make_unique<Slot[]>(mask_ + 1)) {
    for (std::size_t i = 0; i <= mask_; ++i) {
      slots_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  bool try_push(T&& value) noexcept {
    Slot* slot;
    auto pos = head_.load(std::memory_order_relaxed);
    for (;;) {
      slot = &slots_[pos & mask_];
      const auto seq = slot->seq.load(std::memory_order_acquire);
      const auto diff = static_cast<std::intptr_t>(seq) -
                        static_cast<std::intptr_t>(pos);
      if (diff == 0) {
        if (head_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          break;
        }
      } else if (diff < 0) {
        return false;  // Full.
      } else {
        pos = head_.load(std::memory_order_relaxed);
      }
    }
    slot->value = std::move(value);
    slot->seq.store(pos + 1, std::memory_order_release);
    return true;
  }

  bool try_push(const T& value) noexcept {
    T copy = value;
    return try_push(std::move(copy));
  }

  std::optional<T> try_pop() noexcept {
    Slot* slot;
    auto pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      slot = &slots_[pos & mask_];
      const auto seq = slot->seq.load(std::memory_order_acquire);
      const auto diff = static_cast<std::intptr_t>(seq) -
                        static_cast<std::intptr_t>(pos + 1);
      if (diff == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          break;
        }
      } else if (diff < 0) {
        return std::nullopt;  // Empty.
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
    std::optional<T> out{std::move(slot->value)};
    slot->seq.store(pos + mask_ + 1, std::memory_order_release);
    return out;
  }

  std::size_t size_approx() const noexcept {
    const auto head = head_.load(std::memory_order_acquire);
    const auto tail = tail_.load(std::memory_order_acquire);
    return head > tail ? head - tail : 0;
  }

  std::size_t capacity() const noexcept { return mask_ + 1; }

 private:
  struct Slot {
    std::atomic<std::size_t> seq{0};
    T value{};
  };

  const std::size_t mask_;
  std::unique_ptr<Slot[]> slots_;
  alignas(kCacheLineSize) std::atomic<std::size_t> head_{0};
  alignas(kCacheLineSize) std::atomic<std::size_t> tail_{0};
};

}  // namespace sfc::rt
