#include "runtime/histogram.hpp"

#include <algorithm>
#include <bit>

namespace sfc::rt {

Histogram::Histogram() : buckets_(kNumBuckets, 0) {}

std::size_t Histogram::bucket_index(std::uint64_t value) noexcept {
  if (value < kExactBuckets) return static_cast<std::size_t>(value);
  const int msb = 63 - std::countl_zero(value);  // >= kFirstOctave here.
  // The 5 bits below the leading one select the linear sub-bucket.
  const auto sub =
      static_cast<std::size_t>(value >> (msb - 5)) & (kSubBuckets - 1);
  return kExactBuckets +
         static_cast<std::size_t>(msb - kFirstOctave) * kSubBuckets + sub;
}

std::uint64_t Histogram::bucket_upper_bound(std::size_t index) noexcept {
  if (index < kExactBuckets) return index;
  const std::size_t rel = index - kExactBuckets;
  const int msb = kFirstOctave + static_cast<int>(rel / kSubBuckets);
  const std::uint64_t sub = rel % kSubBuckets;
  // Bucket covers [ (32+sub) << (msb-5), ((32+sub+1) << (msb-5)) - 1 ].
  return ((kSubBuckets + sub + 1) << (msb - 5)) - 1;
}

void Histogram::record(std::uint64_t value) noexcept { record_n(value, 1); }

void Histogram::record_n(std::uint64_t value, std::uint64_t count) noexcept {
  if (count == 0) return;
  buckets_[bucket_index(value)] += count;
  count_ += count;
  sum_ += value * count;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

void Histogram::merge(const Histogram& other) noexcept {
  for (std::size_t i = 0; i < kNumBuckets; ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

std::uint64_t Histogram::quantile(double q) const noexcept {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<std::uint64_t>(q * static_cast<double>(count_));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    cumulative += buckets_[i];
    if (cumulative > target || (q >= 1.0 && cumulative >= count_)) {
      return std::min<std::uint64_t>(bucket_upper_bound(i), max_);
    }
  }
  return max_;
}

void Histogram::reset() noexcept {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0;
  min_ = ~0ULL;
  max_ = 0;
}

std::vector<std::pair<std::uint64_t, double>> Histogram::cdf() const {
  std::vector<std::pair<std::uint64_t, double>> out;
  if (count_ == 0) return out;
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    cumulative += buckets_[i];
    out.emplace_back(std::min<std::uint64_t>(bucket_upper_bound(i), max_),
                     static_cast<double>(cumulative) / static_cast<double>(count_));
  }
  return out;
}

}  // namespace sfc::rt
