// Bounded lock-free single-producer/single-consumer ring buffer.
//
// This is the backbone of the simulated data plane: a virtual NIC RX queue,
// an inter-thread hand-off, and a link endpoint are all SpscQueues. The
// implementation caches the opposing index locally (à la Rigtorp) so the
// common case touches a single shared cache line per side.
#pragma once

#include <atomic>
#include <cstddef>
#include <optional>
#include <utility>
#include <vector>

#include "runtime/common.hpp"

namespace sfc::rt {

template <typename T>
class SpscQueue : NonCopyable {
 public:
  /// @param capacity Maximum number of elements the queue holds. Rounded up
  ///                 to a power of two internally; one slot is reserved to
  ///                 distinguish full from empty.
  explicit SpscQueue(std::size_t capacity)
      : mask_(next_pow2(capacity + 1) - 1), slots_(mask_ + 1) {}

  /// Attempts to enqueue by move. Returns false when full.
  bool try_push(T&& value) noexcept {
    const auto head = head_.load(std::memory_order_relaxed);
    const auto next = (head + 1) & mask_;
    if (next == tail_cache_) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (next == tail_cache_) return false;
    }
    slots_[head] = std::move(value);
    head_.store(next, std::memory_order_release);
    return true;
  }

  bool try_push(const T& value) noexcept {
    T copy = value;
    return try_push(std::move(copy));
  }

  /// Attempts to dequeue. Returns std::nullopt when empty.
  std::optional<T> try_pop() noexcept {
    const auto tail = tail_.load(std::memory_order_relaxed);
    if (tail == head_cache_) {
      head_cache_ = head_.load(std::memory_order_acquire);
      if (tail == head_cache_) return std::nullopt;
    }
    std::optional<T> out{std::move(slots_[tail])};
    tail_.store((tail + 1) & mask_, std::memory_order_release);
    return out;
  }

  /// Approximate number of queued elements (racy by design).
  std::size_t size_approx() const noexcept {
    const auto head = head_.load(std::memory_order_acquire);
    const auto tail = tail_.load(std::memory_order_acquire);
    return (head - tail) & mask_;
  }

  bool empty_approx() const noexcept { return size_approx() == 0; }

  std::size_t capacity() const noexcept { return mask_; }

 private:
  const std::size_t mask_;
  std::vector<T> slots_;

  alignas(kCacheLineSize) std::atomic<std::size_t> head_{0};
  alignas(kCacheLineSize) std::size_t tail_cache_{0};
  alignas(kCacheLineSize) std::atomic<std::size_t> tail_{0};
  alignas(kCacheLineSize) std::size_t head_cache_{0};
};

}  // namespace sfc::rt
