// Small fast deterministic RNGs for workload generation and link models.
//
// PCG32 (O'Neill) gives excellent statistical quality at a few cycles per
// draw; every simulated component owns its own stream so experiments are
// reproducible regardless of thread interleaving.
#pragma once

#include <cstdint>
#include <limits>

namespace sfc::rt {

class Pcg32 {
 public:
  using result_type = std::uint32_t;

  constexpr Pcg32() noexcept { seed(0x853c49e6748fea9bULL, 0xda3e39cb94b95bdbULL); }
  constexpr explicit Pcg32(std::uint64_t init_state,
                           std::uint64_t init_seq = 1) noexcept {
    seed(init_state, init_seq);
  }

  constexpr void seed(std::uint64_t init_state, std::uint64_t init_seq) noexcept {
    state_ = 0;
    inc_ = (init_seq << 1u) | 1u;
    next();
    state_ += init_state;
    next();
  }

  constexpr std::uint32_t next() noexcept {
    const std::uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    const auto xorshifted =
        static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
    const auto rot = static_cast<std::uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
  }

  constexpr std::uint32_t operator()() noexcept { return next(); }

  /// Unbiased draw in [0, bound) via Lemire's multiply-shift rejection.
  constexpr std::uint32_t bounded(std::uint32_t bound) noexcept {
    if (bound <= 1) return 0;
    std::uint64_t m = static_cast<std::uint64_t>(next()) * bound;
    auto lo = static_cast<std::uint32_t>(m);
    if (lo < bound) {
      const std::uint32_t threshold = (0u - bound) % bound;
      while (lo < threshold) {
        m = static_cast<std::uint64_t>(next()) * bound;
        lo = static_cast<std::uint32_t>(m);
      }
    }
    return static_cast<std::uint32_t>(m >> 32);
  }

  constexpr std::uint64_t next64() noexcept {
    return (static_cast<std::uint64_t>(next()) << 32) | next();
  }

  /// Uniform double in [0, 1) with 53 bits of randomness.
  constexpr double uniform() noexcept {
    return static_cast<double>(next64() >> 11) * 0x1.0p-53;
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

 private:
  std::uint64_t state_{0};
  std::uint64_t inc_{0};
};

/// SplitMix64: used to derive well-distributed seeds from small integers.
constexpr std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace sfc::rt
