// Worker thread wrapper.
//
// Every simulated server component (middlebox thread, link pump, failure
// detector) is a Worker: a named thread running a poll loop until asked to
// stop. The loop body returns whether it made progress so the worker can
// back off (cpu_relax -> yield) when idle instead of burning a core.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <thread>

#include "runtime/common.hpp"

namespace sfc::rt {

/// Name of the Worker driving the calling thread, or "" on non-Worker
/// threads (main, tests). Observability code uses it to label per-thread
/// resources (span rings, budget profiler slots) by worker.
std::string_view current_worker_name() noexcept;

/// Shard identity of the calling thread within its node: data-path workers
/// carry their worker index (set by the node's burst loop), every other
/// thread reads kNoShard. The shard-affine state layer uses it to pick the
/// handoff-ring producer row and to decide partition ownership.
inline constexpr std::uint32_t kNoShard = 0xffffffffu;
std::uint32_t current_shard() noexcept;
void set_current_shard(std::uint32_t shard) noexcept;

class Worker : NonCopyable {
 public:
  /// @param body Called repeatedly; returns true if it did useful work.
  ///             A false return lets the worker back off briefly.
  Worker() = default;
  Worker(std::string name, std::function<bool()> body) { start(std::move(name), std::move(body)); }
  ~Worker() { stop(); }

  Worker(Worker&&) = delete;
  Worker& operator=(Worker&&) = delete;

  void start(std::string name, std::function<bool()> body);

  /// Requests the loop to exit and joins the thread. Idempotent.
  void stop();

  bool running() const noexcept { return thread_.joinable(); }
  const std::string& name() const noexcept { return name_; }

 private:
  std::string name_;
  std::atomic<bool> stop_flag_{false};
  std::thread thread_;
};

/// Runs @p body in a loop with idle backoff until @p stop becomes true.
void poll_loop(const std::atomic<bool>& stop, const std::function<bool()>& body);

}  // namespace sfc::rt
