// Time sources.
//
// The data plane needs two clocks:
//  * a cheap cycle counter (rdtsc) for the Table-2 style CPU breakdowns,
//  * a steady nanosecond clock for latency samples and rate control.
//
// Both are wrapped so tests can reason about them and so non-x86 builds
// fall back to the steady clock.
#pragma once

#include <chrono>
#include <cstdint>

namespace sfc::rt {

/// Nanoseconds since an arbitrary steady epoch.
inline std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

inline double now_sec() noexcept { return static_cast<double>(now_ns()) * 1e-9; }

/// Raw CPU timestamp counter. Monotonic per-core on all modern x86; good
/// enough for short (< 1 ms) deltas measured on one thread.
inline std::uint64_t rdtsc() noexcept {
#if defined(__x86_64__)
  std::uint32_t lo, hi;
  asm volatile("rdtsc" : "=a"(lo), "=d"(hi));
  return (static_cast<std::uint64_t>(hi) << 32) | lo;
#else
  return now_ns();
#endif
}

/// Measures the TSC frequency against the steady clock. Cached after the
/// first call; costs ~10 ms once.
double tsc_hz();

/// Converts a TSC delta to nanoseconds using the calibrated frequency.
double tsc_to_ns(std::uint64_t cycles);

/// Busy-waits (with cpu_relax) until `now_ns() >= deadline_ns`. Used by the
/// traffic generator for precise inter-packet gaps; sleeping would quantize
/// to the scheduler tick.
void spin_until_ns(std::uint64_t deadline_ns) noexcept;

/// Scoped cycle counter: accumulates rdtsc deltas into a target.
class CycleTimer {
 public:
  explicit CycleTimer(std::uint64_t& sink) noexcept
      : sink_(sink), start_(rdtsc()) {}
  ~CycleTimer() { sink_ += rdtsc() - start_; }

  CycleTimer(const CycleTimer&) = delete;
  CycleTimer& operator=(const CycleTimer&) = delete;

 private:
  std::uint64_t& sink_;
  std::uint64_t start_;
};

}  // namespace sfc::rt
