#include "runtime/clock.hpp"

#include <thread>

#include "runtime/common.hpp"

namespace sfc::rt {

namespace {

double measure_tsc_hz() {
  const auto t0_ns = now_ns();
  const auto c0 = rdtsc();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  const auto t1_ns = now_ns();
  const auto c1 = rdtsc();
  const double dt = static_cast<double>(t1_ns - t0_ns);
  if (dt <= 0) return 1e9;  // Degenerate clock; pretend 1 cycle == 1 ns.
  return static_cast<double>(c1 - c0) / dt * 1e9;
}

}  // namespace

double tsc_hz() {
  static const double hz = measure_tsc_hz();
  return hz;
}

double tsc_to_ns(std::uint64_t cycles) {
  return static_cast<double>(cycles) / tsc_hz() * 1e9;
}

void spin_until_ns(std::uint64_t deadline_ns) noexcept {
  while (now_ns() < deadline_ns) cpu_relax();
}

}  // namespace sfc::rt
