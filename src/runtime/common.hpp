// Common small utilities shared by every module.
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>

namespace sfc::rt {

#if defined(__GNUC__) || defined(__clang__)
#define SFC_LIKELY(x) __builtin_expect(!!(x), 1)
#define SFC_UNLIKELY(x) __builtin_expect(!!(x), 0)
#else
#define SFC_LIKELY(x) (x)
#define SFC_UNLIKELY(x) (x)
#endif

// Size of a destructive-interference-free region. We hardcode 64 rather
// than use std::hardware_destructive_interference_size because the latter
// is an ABI hazard (varies with -mtune) and 64 is correct on x86-64/ARM64.
inline constexpr std::size_t kCacheLineSize = 64;

/// Rounds @p v up to the next power of two (returns 1 for 0).
constexpr std::uint64_t next_pow2(std::uint64_t v) noexcept {
  if (v <= 1) return 1;
  --v;
  v |= v >> 1;
  v |= v >> 2;
  v |= v >> 4;
  v |= v >> 8;
  v |= v >> 16;
  v |= v >> 32;
  return v + 1;
}

constexpr bool is_pow2(std::uint64_t v) noexcept {
  return v != 0 && (v & (v - 1)) == 0;
}

/// CPU relax hint for spin loops.
inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#endif
}

/// Non-copyable mixin.
class NonCopyable {
 public:
  NonCopyable(const NonCopyable&) = delete;
  NonCopyable& operator=(const NonCopyable&) = delete;

 protected:
  NonCopyable() = default;
  ~NonCopyable() = default;
};

}  // namespace sfc::rt
