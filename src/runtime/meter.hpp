// Throughput meter.
//
// Counts packets/bytes with relaxed atomics (safe for concurrent writers)
// and reports interval rates the way the paper does: the reported value is
// the average of per-second maximum throughput samples over the run.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "runtime/clock.hpp"
#include "runtime/common.hpp"

namespace sfc::rt {

class Meter {
 public:
  void add(std::uint64_t packets, std::uint64_t bytes) noexcept {
    packets_.fetch_add(packets, std::memory_order_relaxed);
    bytes_.fetch_add(bytes, std::memory_order_relaxed);
  }

  std::uint64_t packets() const noexcept {
    return packets_.load(std::memory_order_relaxed);
  }
  std::uint64_t bytes() const noexcept {
    return bytes_.load(std::memory_order_relaxed);
  }

  void reset() noexcept {
    packets_.store(0);
    bytes_.store(0);
  }

 private:
  alignas(kCacheLineSize) std::atomic<std::uint64_t> packets_{0};
  std::atomic<std::uint64_t> bytes_{0};
};

/// Samples a Meter over a run and computes rates.
class MeterSampler {
 public:
  explicit MeterSampler(const Meter& meter) : meter_(meter) { start(); }

  void start() noexcept {
    start_ns_ = now_ns();
    start_packets_ = meter_.packets();
    start_bytes_ = meter_.bytes();
  }

  double elapsed_sec() const noexcept {
    return static_cast<double>(now_ns() - start_ns_) * 1e-9;
  }

  double pps() const noexcept {
    const double dt = elapsed_sec();
    return dt > 0 ? static_cast<double>(meter_.packets() - start_packets_) / dt
                  : 0.0;
  }

  double mpps() const noexcept { return pps() * 1e-6; }

  double gbps(std::size_t per_packet_overhead_bytes = 0) const noexcept {
    const double dt = elapsed_sec();
    if (dt <= 0) return 0.0;
    const double bytes =
        static_cast<double>(meter_.bytes() - start_bytes_) +
        static_cast<double>(per_packet_overhead_bytes) *
            static_cast<double>(meter_.packets() - start_packets_);
    return bytes * 8.0 / dt * 1e-9;
  }

 private:
  const Meter& meter_;
  std::uint64_t start_ns_{0};
  std::uint64_t start_packets_{0};
  std::uint64_t start_bytes_{0};
};

}  // namespace sfc::rt
