// Log-linear latency histogram (HDR-histogram style).
//
// Values below 64 are bucketed exactly; above that, each power-of-two
// octave is split into 32 linear sub-buckets (~3% relative precision).
// That is plenty for microsecond-to-second latency distributions and lets
// the recorder run at line rate (one increment, no allocation).
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace sfc::rt {

class Histogram {
 public:
  Histogram();

  /// Records one value (e.g. nanoseconds).
  void record(std::uint64_t value) noexcept;

  /// Records @p count occurrences of @p value.
  void record_n(std::uint64_t value, std::uint64_t count) noexcept;

  /// Merges another histogram into this one (used to combine per-thread
  /// recorders after a run).
  void merge(const Histogram& other) noexcept;

  std::uint64_t count() const noexcept { return count_; }
  std::uint64_t min() const noexcept { return count_ ? min_ : 0; }
  std::uint64_t max() const noexcept { return max_; }
  double mean() const noexcept {
    return count_ ? static_cast<double>(sum_) / static_cast<double>(count_) : 0.0;
  }

  /// Value at quantile q in [0,1] (e.g. 0.5, 0.99). Returns an upper bound
  /// of the bucket containing the quantile, clamped to the observed max.
  std::uint64_t quantile(double q) const noexcept;

  std::uint64_t p50() const noexcept { return quantile(0.50); }
  std::uint64_t p90() const noexcept { return quantile(0.90); }
  std::uint64_t p99() const noexcept { return quantile(0.99); }
  std::uint64_t p999() const noexcept { return quantile(0.999); }

  void reset() noexcept;

  /// CDF sampling: returns (value, cumulative_fraction) pairs for all
  /// non-empty buckets — exactly what Figure 11 plots.
  std::vector<std::pair<std::uint64_t, double>> cdf() const;

 private:
  // 64 exact buckets, then 58 octaves x 32 sub-buckets.
  static constexpr std::size_t kExactBuckets = 64;
  static constexpr std::size_t kSubBuckets = 32;
  static constexpr int kFirstOctave = 6;  // values >= 2^6 use octave buckets.
  static constexpr std::size_t kNumBuckets =
      kExactBuckets + (64 - kFirstOctave) * kSubBuckets;

  static std::size_t bucket_index(std::uint64_t value) noexcept;
  static std::uint64_t bucket_upper_bound(std::size_t index) noexcept;

  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_{0};
  std::uint64_t sum_{0};
  std::uint64_t min_{~0ULL};
  std::uint64_t max_{0};
};

}  // namespace sfc::rt
