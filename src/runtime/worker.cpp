#include "runtime/worker.hpp"

#include <utility>

namespace sfc::rt {

namespace {
thread_local std::string t_worker_name;
thread_local std::uint32_t t_shard = kNoShard;
}

std::string_view current_worker_name() noexcept { return t_worker_name; }

std::uint32_t current_shard() noexcept { return t_shard; }

void set_current_shard(std::uint32_t shard) noexcept { t_shard = shard; }

void poll_loop(const std::atomic<bool>& stop, const std::function<bool()>& body) {
  unsigned idle_spins = 0;
  while (!stop.load(std::memory_order_acquire)) {
    if (body()) {
      idle_spins = 0;
      continue;
    }
    // Idle backoff: spin briefly to stay hot for bursty traffic, then
    // yield so an oversubscribed simulation still makes progress.
    if (++idle_spins < 64) {
      cpu_relax();
    } else {
      std::this_thread::yield();
      if (idle_spins > 4096) idle_spins = 64;  // Avoid counter overflow.
    }
  }
}

void Worker::start(std::string name, std::function<bool()> body) {
  stop();
  name_ = std::move(name);
  stop_flag_.store(false);
  thread_ = std::thread([this, name = name_, body = std::move(body)]() mutable {
    t_worker_name = std::move(name);
    poll_loop(stop_flag_, body);
  });
}

void Worker::stop() {
  if (!thread_.joinable()) return;
  stop_flag_.store(true, std::memory_order_release);
  thread_.join();
}

}  // namespace sfc::rt
