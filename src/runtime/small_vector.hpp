// Small vector with inline storage.
//
// The FTC data plane builds a handful of tiny collections per packet per
// server (piggyback logs, their write sets, commit vectors). With
// std::vector each costs a heap round trip; SmallVector keeps up to N
// elements inline and only touches the allocator beyond that — the same
// trick Click's packet annotations and LLVM's SmallVector use.
#pragma once

#include <algorithm>
#include <cstddef>
#include <initializer_list>
#include <memory>
#include <new>
#include <utility>

namespace sfc::rt {

template <typename T, std::size_t N>
class SmallVector {
 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;

  SmallVector() noexcept = default;

  SmallVector(std::initializer_list<T> init) {
    reserve(init.size());
    for (const T& v : init) push_back(v);
  }

  SmallVector(const SmallVector& other) {
    reserve(other.size_);
    for (const T& v : other) emplace_back(v);
  }

  SmallVector& operator=(const SmallVector& other) {
    if (this == &other) return *this;
    clear();
    reserve(other.size_);
    for (const T& v : other) emplace_back(v);
    return *this;
  }

  SmallVector(SmallVector&& other) noexcept { move_from(std::move(other)); }

  SmallVector& operator=(SmallVector&& other) noexcept {
    if (this == &other) return *this;
    destroy();
    move_from(std::move(other));
    return *this;
  }

  ~SmallVector() { destroy(); }

  T* data() noexcept { return ptr_; }
  const T* data() const noexcept { return ptr_; }
  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  std::size_t capacity() const noexcept { return capacity_; }

  iterator begin() noexcept { return ptr_; }
  iterator end() noexcept { return ptr_ + size_; }
  const_iterator begin() const noexcept { return ptr_; }
  const_iterator end() const noexcept { return ptr_ + size_; }

  T& operator[](std::size_t i) noexcept { return ptr_[i]; }
  const T& operator[](std::size_t i) const noexcept { return ptr_[i]; }
  T& front() noexcept { return ptr_[0]; }
  T& back() noexcept { return ptr_[size_ - 1]; }
  const T& front() const noexcept { return ptr_[0]; }
  const T& back() const noexcept { return ptr_[size_ - 1]; }

  void reserve(std::size_t want) {
    if (want <= capacity_) return;
    const std::size_t new_cap = std::max(want, capacity_ * 2);
    T* heap = static_cast<T*>(::operator new(new_cap * sizeof(T)));
    for (std::size_t i = 0; i < size_; ++i) {
      new (heap + i) T(std::move(ptr_[i]));
      ptr_[i].~T();
    }
    if (ptr_ != inline_data()) ::operator delete(ptr_);
    ptr_ = heap;
    capacity_ = new_cap;
  }

  template <typename... Args>
  T& emplace_back(Args&&... args) {
    if (size_ == capacity_) reserve(size_ + 1);
    T* slot = new (ptr_ + size_) T(std::forward<Args>(args)...);
    ++size_;
    return *slot;
  }

  void push_back(const T& v) { emplace_back(v); }
  void push_back(T&& v) { emplace_back(std::move(v)); }

  void pop_back() noexcept {
    ptr_[--size_].~T();
  }

  void clear() noexcept {
    for (std::size_t i = 0; i < size_; ++i) ptr_[i].~T();
    size_ = 0;
  }

  /// Removes all elements matching @p pred, preserving order.
  template <typename Pred>
  std::size_t remove_if(Pred pred) {
    std::size_t out = 0;
    for (std::size_t i = 0; i < size_; ++i) {
      if (!pred(ptr_[i])) {
        if (out != i) ptr_[out] = std::move(ptr_[i]);
        ++out;
      }
    }
    const std::size_t removed = size_ - out;
    while (size_ > out) pop_back();
    return removed;
  }

  /// Moves all elements of @p other onto the back of this.
  void append_move(SmallVector&& other) {
    reserve(size_ + other.size_);
    for (T& v : other) emplace_back(std::move(v));
    other.clear();
  }

  friend bool operator==(const SmallVector& a, const SmallVector& b) {
    return a.size_ == b.size_ && std::equal(a.begin(), a.end(), b.begin());
  }

 private:
  T* inline_data() noexcept { return reinterpret_cast<T*>(storage_); }

  void destroy() noexcept {
    clear();
    if (ptr_ != inline_data()) {
      ::operator delete(ptr_);
      ptr_ = inline_data();
      capacity_ = N;
    }
  }

  void move_from(SmallVector&& other) noexcept {
    if (other.ptr_ != other.inline_data()) {
      // Steal the heap buffer.
      ptr_ = other.ptr_;
      size_ = other.size_;
      capacity_ = other.capacity_;
      other.ptr_ = other.inline_data();
      other.size_ = 0;
      other.capacity_ = N;
    } else {
      ptr_ = inline_data();
      capacity_ = N;
      size_ = other.size_;
      for (std::size_t i = 0; i < size_; ++i) {
        new (ptr_ + i) T(std::move(other.ptr_[i]));
        other.ptr_[i].~T();
      }
      other.size_ = 0;
    }
  }

  alignas(T) unsigned char storage_[N * sizeof(T)];
  T* ptr_{inline_data()};
  std::size_t size_{0};
  std::size_t capacity_{N};
};

}  // namespace sfc::rt
