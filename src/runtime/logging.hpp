// Minimal leveled logger.
//
// The data plane never logs on the fast path; this is for control-plane
// events (deployments, failures, recovery steps) and test diagnostics.
// Thread-safe: each message is formatted into a local buffer and written
// with a single locked append.
#pragma once

#include <cstdio>
#include <sstream>
#include <string>
#include <string_view>

namespace sfc::rt {

enum class LogLevel : int { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Global log threshold; messages below it are discarded cheaply.
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// Sinks the formatted line. Exposed so tests can capture output.
using LogSink = void (*)(LogLevel, std::string_view line);
void set_log_sink(LogSink sink) noexcept;

namespace detail {
void emit(LogLevel level, std::string_view component, std::string_view msg);
}

/// Streaming log statement builder: LOG(kInfo, "orch") << "recovered";
class LogStatement {
 public:
  LogStatement(LogLevel level, std::string_view component)
      : level_(level), component_(component) {}
  ~LogStatement() { detail::emit(level_, component_, stream_.str()); }

  template <typename T>
  LogStatement& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string_view component_;
  std::ostringstream stream_;
};

#define SFC_LOG(level, component)                              \
  if (static_cast<int>(level) < static_cast<int>(::sfc::rt::log_level())) { \
  } else                                                       \
    ::sfc::rt::LogStatement(level, component)

#define SFC_LOG_INFO(component) SFC_LOG(::sfc::rt::LogLevel::kInfo, component)
#define SFC_LOG_WARN(component) SFC_LOG(::sfc::rt::LogLevel::kWarn, component)
#define SFC_LOG_ERROR(component) SFC_LOG(::sfc::rt::LogLevel::kError, component)
#define SFC_LOG_DEBUG(component) SFC_LOG(::sfc::rt::LogLevel::kDebug, component)

}  // namespace sfc::rt
