#include "runtime/logging.hpp"

#include <atomic>

#include "base/mutex.hpp"
#include "runtime/clock.hpp"

namespace sfc::rt {

namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::atomic<LogSink> g_sink{nullptr};
// Innermost rank: any component may log while holding its own locks.
Mutex g_write_mutex{ranks::kLogging, "log.write"};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    default: return "?????";
  }
}

}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level); }
LogLevel log_level() noexcept { return g_level.load(std::memory_order_relaxed); }
void set_log_sink(LogSink sink) noexcept { g_sink.store(sink); }

namespace detail {

void emit(LogLevel level, std::string_view component, std::string_view msg) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  if (auto* sink = g_sink.load()) {
    std::string line;
    line.reserve(component.size() + msg.size() + 2);
    line.append(component).append(": ").append(msg);
    sink(level, line);
    return;
  }
  LockGuard lock(g_write_mutex);
  std::fprintf(stderr, "[%12.6f] %s %.*s: %.*s\n", now_sec(), level_name(level),
               static_cast<int>(component.size()), component.data(),
               static_cast<int>(msg.size()), msg.data());
}

}  // namespace detail

}  // namespace sfc::rt
