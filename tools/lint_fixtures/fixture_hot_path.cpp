// Fixtures for tools/lint_hot_path.py --self-test.
//
// Not compiled into the build: the lint's textual engine parses this file
// and must (a) flag every violation in the hot_entry call graph and
// (b) stay quiet on the clean_entry call graph (with cold_spill marked as
// a cold boundary, mirroring how the real tree handles park/control
// fallbacks).

#include <cstdint>
#include <string>

namespace fixture {

class FixtureNode {
 public:
  // --- Dirty graph: hot_entry -> burst_helper / format_label. ---

  int hot_entry(int n) {
    LockGuard lock(mutex_);  // blocking-lock: guard on the hot path.
    int acc = 0;
    for (int i = 0; i < n; ++i) acc += burst_helper(i);
    return acc + static_cast<int>(format_label(n).size());
  }

  int burst_helper(int i) {
    auto* scratch = new std::uint8_t[64];  // alloc: per-burst heap churn.
    if (scratch == nullptr) throw i;       // throw: exceptional exit.
    int v = static_cast<int>(scratch[0]) + i;
    delete[] scratch;
    return v;
  }

  std::string format_label(int n) {
    std::string label("burst-");          // string-growth: construction…
    label.append(std::to_string(n));      // …and append + to_string.
    return label;
  }

  // --- Clean graph: clean_entry -> accumulate (+ cold_spill boundary). ---

  int clean_entry(int n) {
    int acc = 0;
    for (int i = 0; i < n; ++i) acc = accumulate(acc, i);
    if (acc < 0) cold_spill(acc);
    return acc;
  }

  int accumulate(int acc, int i) { return acc + i * 2; }

  // Cold boundary (allowlisted by the self-test): may allocate freely.
  void cold_spill(int acc) {
    auto* held = new int(acc);
    delete held;
  }

 private:
  int mutex_{0};  // Stand-in; only the LockGuard token matters to the lint.
};

}  // namespace fixture
