#!/usr/bin/env python3
"""Hot-path purity lint: no allocation, blocking locks, or throws on the
per-packet data path.

Walks the static call graph from the hot-path entry points (the profiler
stages of obs/prof.hpp: worker burst loop, zero-copy view walk, burst log
apply, link send/poll, packet-pool alloc/free) and fails when a reachable
function contains

  * heap allocation        (operator new, malloc/calloc/realloc),
  * std::string growth     (std::string construction, append, to_string,
                            stringstreams),
  * a blocking mutex       (LockGuard / UniqueLock / std::lock_guard /
                            std::unique_lock / bare .lock()),
  * a throw-site           (any `throw`).

Engine: uses libclang over build/compile_commands.json when the python
bindings are importable (exact call graph); otherwise falls back to a
pure-textual call-graph engine (regex + brace matching over src/). The
container this repo targets ships GCC only, so the fallback is the engine
that must stay trustworthy; CI runs whichever is available.

Exceptions live in tools/hot_path_allowlist.txt (one per line:
`<qualified-name> <rule|cold> <reason...>`). `cold` marks a function as a
cold-path boundary: its body is not checked and the walk does not descend
into it (parking, control handling, the materializing fallback). A source
line can also carry an inline marker:

    ... code ...  // LINT_HOT_PATH_ALLOW(<rule>): reason

which suppresses that rule on that line only.

Exit status: 0 clean, 1 violations, 2 usage/internal error.
"""

from __future__ import annotations

import argparse
import bisect
import os
import re
import sys
from collections import defaultdict, deque
from dataclasses import dataclass, field

# --- Configuration ---------------------------------------------------------

# Hot-path entry points == the profiler stages (obs/prof.hpp ProfStage).
DEFAULT_ROOTS = [
    "FtcNode::worker_body",       # kPoll/kViewWalk/.../kParkDrain owner
    "FtcNode::process_view",      # kProcess/kAppend (zero-copy path)
    "FtcNode::apply_logs_burst",  # kLogApply/kTailCommit
    "Link::send_burst",           # kLinkSend
    "Link::poll_burst",           # kLinkPoll
    "ReliableChannel::send_burst",
    "ReliableChannel::poll_burst",
    "PacketPool::alloc_raw",      # kPoolAlloc
    "PacketPool::free_raw",       # kPoolFree
    "FtcNode::drain_handoff",     # kHandoffDrain (shard-affine drain loop)
    "InOrderApplier::offer_shard_wire",  # shard-mode wire apply
    "InOrderApplier::apply_handoff",     # owner-side handoff resolve
    "StateStore::apply_wire_owner",      # lock-free owner apply
]

RULES = {
    "alloc": re.compile(
        r"\bnew\b|\bmalloc\s*\(|\bcalloc\s*\(|\brealloc\s*\("),
    "string-growth": re.compile(
        r"\bstd::to_string\s*\(|\.append\s*\(|\bstd::string\s*[({]"
        r"|\bstd::ostringstream\b|\bstd::stringstream\b"),
    "blocking-lock": re.compile(
        r"\bLockGuard\b|\bUniqueLock\b|\bstd::lock_guard\b"
        r"|\bstd::unique_lock\b|\bstd::mutex\b|\.lock\s*\(\s*\)"),
    "throw": re.compile(r"\bthrow\b"),
}

INLINE_MARKER = re.compile(r"LINT_HOT_PATH_ALLOW\((?P<rule>[\w*-]+)\)")

CPP_KEYWORDS = frozenset(
    """if else for while switch return case do new delete sizeof alignof
    static_cast dynamic_cast const_cast reinterpret_cast throw catch
    noexcept decltype typeid defined assert static_assert alignas
    constexpr requires co_await co_yield co_return""".split())


# --- Source model ----------------------------------------------------------

@dataclass
class Function:
    qual: str           # best-effort qualified name, e.g. FtcNode::emit
    file: str
    body_start: int     # offset into the stripped text
    body_end: int
    stripped: str = field(repr=False, default="")
    raw: str = field(repr=False, default="")
    line_offsets: list = field(repr=False, default_factory=list)

    @property
    def name(self) -> str:
        return self.qual.rsplit("::", 1)[-1]

    def line_of(self, offset: int) -> int:
        return bisect.bisect_right(self.line_offsets, offset) + 1


def strip_code(text: str) -> str:
    """Blanks comments, string/char literals, and preprocessor lines,
    preserving offsets and newlines so byte offsets map 1:1 onto the
    original file."""
    out = list(text)
    i, n = 0, len(text)
    at_line_start = True
    while i < n:
        c = text[i]
        if at_line_start and c == "#":
            j = i
            while j < n:
                k = text.find("\n", j)
                k = n if k < 0 else k
                if text[k - 1] == "\\":  # Line continuation.
                    j = k + 1
                    continue
                break
            for m in range(i, k):
                if out[m] != "\n":
                    out[m] = " "
            i = k
            continue
        if not c.isspace():
            at_line_start = False
        if c == "\n":
            at_line_start = True
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            for k in range(i, j):
                out[k] = " "
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j < 0 else j
            for k in range(i, j + 2):
                if out[k] != "\n":
                    out[k] = " "
            i = j + 2
        elif c in "\"'":
            q = c
            j = i + 1
            while j < n and text[j] != q:
                j += 2 if text[j] == "\\" else 1
            for k in range(i + 1, min(j, n)):
                if out[k] != "\n":
                    out[k] = " "
            i = j + 1
        else:
            i += 1
    return "".join(out)


# Candidate function header: optional qualifiers then `name(`. The name may
# itself be qualified (out-of-class definitions). Control-flow keywords are
# filtered afterwards.
HEADER_RE = re.compile(
    r"(?P<name>~?[A-Za-z_]\w*(?:\s*::\s*~?[A-Za-z_]\w*)*)\s*\(")

# Tokens legal between a definition's `)` and its `{`.
SPEC_RE = re.compile(
    r"\s*(?:const\b|noexcept(?:\s*\([^()]*\))?|override\b|final\b"
    r"|mutable\b|try\b|SFC_[A-Z_0-9]+(?:\s*\([^()]*\))?"
    r"|\[\[[^\]]*\]\]|->\s*[\w:<>,*&\s]+?(?=[{;]))")


def skip_ctor_inits(s: str, i: int):
    """s[i] == ':' starting a ctor-initializer list; returns the index of
    the body `{`, or None if this is not actually an initializer list."""
    i += 1
    n = len(s)
    while True:
        while i < n and s[i].isspace():
            i += 1
        m = re.match(r"[A-Za-z_]\w*(?:\s*<[^<>]*>)?(?:::[A-Za-z_]\w*)*",
                     s[i:])
        if not m:
            return None
        i += m.end()
        while i < n and s[i].isspace():
            i += 1
        if i >= n or s[i] not in "({":
            return None
        i = match_brace(s, i)
        while i < n and s[i].isspace():
            i += 1
        if i < n and s[i] == ",":
            i += 1
            continue
        if i < n and s[i] == "{":
            return i
        return None


def find_body_start(stripped: str, paren_end: int):
    """Index of the body `{` after a parameter list, or None when the
    header is a declaration or expression rather than a definition."""
    i = paren_end
    n = len(stripped)
    while i < n:
        while i < n and stripped[i].isspace():
            i += 1
        if i >= n:
            return None
        c = stripped[i]
        if c == "{":
            return i
        if c == ":" and not stripped.startswith("::", i):
            return skip_ctor_inits(stripped, i)
        m = SPEC_RE.match(stripped, i)
        if not m or m.end() == i:
            return None
        i = m.end()
    return None

SCOPE_RE = re.compile(
    r"\b(?:namespace|class|struct)\s+(?:SFC_\w+\s*(?:\([^)]*\)\s*)?)*"
    r"(?:alignas\s*\([^)]*\)\s*)?(?P<name>[A-Za-z_]\w*)\s*(?:final\s*)?"
    r"(?::[^;{]*)?\{")


def match_brace(text: str, open_idx: int) -> int:
    """Index just past the brace matching text[open_idx] ('{' or '(')."""
    opener = text[open_idx]
    closer = {"{": "}", "(": ")"}[opener]
    depth = 0
    for i in range(open_idx, len(text)):
        if text[i] == opener:
            depth += 1
        elif text[i] == closer:
            depth -= 1
            if depth == 0:
                return i + 1
    return len(text)


def parse_functions(path: str, raw: str) -> list:
    """Best-effort extraction of function definitions with bodies."""
    stripped = strip_code(raw)
    line_offsets = [i for i, ch in enumerate(stripped) if ch == "\n"]

    # Scope intervals from namespace/class/struct blocks, for qualifying
    # in-class definitions.
    scopes = []  # (start, end, name)
    for m in SCOPE_RE.finditer(stripped):
        open_idx = stripped.index("{", m.start())
        scopes.append((open_idx, match_brace(stripped, open_idx),
                       m.group("name")))

    def qualify(pos: int, name: str) -> str:
        if "::" in name:
            return re.sub(r"\s*::\s*", "::", name)
        enclosing = [s for s in scopes
                     if s[0] <= pos < s[1] and not s[2].startswith("detail")]
        if enclosing:
            innermost = max(enclosing, key=lambda s: s[0])
            return f"{innermost[2]}::{name}"
        return name

    funcs = []
    pos = 0
    n = len(stripped)
    while pos < n:
        m = HEADER_RE.search(stripped, pos)
        if not m:
            break
        name = re.sub(r"\s+", "", m.group("name"))
        last = name.rsplit("::", 1)[-1].lstrip("~")
        if last in CPP_KEYWORDS or name in CPP_KEYWORDS:
            pos = m.end()
            continue
        paren_end = match_brace(stripped, m.end() - 1)
        body_start = find_body_start(stripped, paren_end)
        if body_start is None:
            pos = m.end()
            continue
        body_end = match_brace(stripped, body_start)
        funcs.append(Function(
            qual=qualify(m.start(), name), file=path,
            body_start=body_start, body_end=body_end,
            stripped=stripped, raw=raw, line_offsets=line_offsets))
        pos = body_start + 1  # Allow nested scans (lambdas stay inside).
    return funcs


CALL_RE = re.compile(r"([A-Za-z_]\w*(?:::[A-Za-z_]\w*)*)\s*\(")


def body_calls(fn: Function) -> set:
    calls = set()
    body = fn.stripped[fn.body_start:fn.body_end]
    for m in CALL_RE.finditer(body):
        name = m.group(1)
        last = name.rsplit("::", 1)[-1]
        if last in CPP_KEYWORDS:
            continue
        calls.add(name)
    return calls


# --- Allowlist -------------------------------------------------------------

@dataclass
class Allowlist:
    cold: set = field(default_factory=set)           # qualified names
    allowed: set = field(default_factory=set)        # (qual, rule)
    reasons: dict = field(default_factory=dict)

    @classmethod
    def load(cls, path: str) -> "Allowlist":
        al = cls()
        if not os.path.exists(path):
            return al
        for lineno, line in enumerate(open(path), 1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split(None, 2)
            if len(parts) < 2:
                raise SystemExit(
                    f"{path}:{lineno}: expected '<name> <rule|cold> <reason>'")
            name, rule = parts[0], parts[1]
            reason = parts[2] if len(parts) > 2 else ""
            if rule == "cold":
                al.cold.add(name)
            elif rule in RULES or rule == "*":
                al.allowed.add((name, rule))
            else:
                raise SystemExit(f"{path}:{lineno}: unknown rule '{rule}'")
            al.reasons[(name, rule)] = reason
        return al


# --- Engine ----------------------------------------------------------------

@dataclass
class Violation:
    func: str
    rule: str
    file: str
    line: int
    excerpt: str


def inline_allowed(fn: Function, line: int, rule: str) -> bool:
    """A marker suppresses its own line and the line after it (so a
    comment-only marker line can cover one wrapped statement line)."""
    raw_lines = fn.raw.splitlines()
    for lineno in (line, line - 1):
        if not 1 <= lineno <= len(raw_lines):
            continue
        for m in INLINE_MARKER.finditer(raw_lines[lineno - 1]):
            if m.group("rule") in (rule, "*"):
                return True
    return False


def check_function(fn: Function, allow: Allowlist) -> list:
    out = []
    body = fn.stripped[fn.body_start:fn.body_end]
    for rule, rx in RULES.items():
        if (fn.qual, rule) in allow.allowed or (fn.qual, "*") in allow.allowed:
            continue
        for m in rx.finditer(body):
            off = fn.body_start + m.start()
            line = fn.line_of(off)
            if inline_allowed(fn, line, rule):
                continue
            raw_lines = fn.raw.splitlines()
            excerpt = raw_lines[line - 1].strip() if line - 1 < len(
                raw_lines) else ""
            out.append(Violation(fn.qual, rule, fn.file, line, excerpt))
    return out


def build_index(files: list) -> dict:
    """last-component name -> [Function]."""
    index = defaultdict(list)
    for path in files:
        raw = open(path, errors="replace").read()
        for fn in parse_functions(path, raw):
            index[fn.name].append(fn)
    return index


def resolve(index: dict, callee: str) -> list:
    last = callee.rsplit("::", 1)[-1]
    cands = index.get(last, [])
    if "::" in callee:
        exact = [f for f in cands if f.qual.endswith(callee)]
        if exact:
            return exact
    return cands


def walk(index: dict, roots: list, allow: Allowlist, verbose: bool):
    queue = deque()
    seen = set()
    missing_roots = []
    for root in roots:
        fns = resolve(index, root)
        fns = [f for f in fns if f.qual.endswith(root)]
        if not fns:
            missing_roots.append(root)
        for f in fns:
            key = (f.qual, f.file, f.body_start)
            if key not in seen:
                seen.add(key)
                queue.append(f)
    violations = []
    visited_names = set()
    while queue:
        fn = queue.popleft()
        if fn.qual in allow.cold:
            continue
        visited_names.add(fn.qual)
        violations.extend(check_function(fn, allow))
        for callee in body_calls(fn):
            for f in resolve(index, callee):
                if f.qual in allow.cold:
                    continue
                key = (f.qual, f.file, f.body_start)
                if key not in seen:
                    seen.add(key)
                    queue.append(f)
    if verbose:
        print(f"[lint-hot-path] reachable functions: {len(visited_names)}",
              file=sys.stderr)
        for name in sorted(visited_names):
            print(f"  {name}", file=sys.stderr)
    return violations, missing_roots


def try_libclang(args) -> bool:
    """Placeholder for the exact engine: returns False when the libclang
    python bindings are unavailable (this repo's container has GCC only),
    in which case the textual engine below runs."""
    try:
        import clang.cindex  # noqa: F401
    except ImportError:
        return False
    # The bindings exist but a compile_commands.json is still required.
    cc = os.path.join(args.build_dir, "compile_commands.json")
    if not os.path.exists(cc):
        return False
    # Exact-engine implementation intentionally deferred to a container
    # that ships libclang; the textual engine is the supported path.
    return False


def collect_sources(src_dir: str) -> list:
    out = []
    for base, _dirs, names in os.walk(src_dir):
        for name in sorted(names):
            if name.endswith((".hpp", ".cpp", ".h", ".cc")):
                out.append(os.path.join(base, name))
    return out


# --- Self test -------------------------------------------------------------

def self_test(repo_root: str) -> int:
    """Runs the engine over the bundled fixtures and asserts it (a) flags
    the allocating hot-path function and (b) stays quiet on the clean one."""
    fixture_dir = os.path.join(repo_root, "tools", "lint_fixtures")
    files = collect_sources(fixture_dir)
    if not files:
        print(f"self-test: no fixtures under {fixture_dir}", file=sys.stderr)
        return 2
    index = build_index(files)

    dirty, missing = walk(index, ["FixtureNode::hot_entry"], Allowlist(),
                          verbose=False)
    if missing:
        print(f"self-test: fixture root not found: {missing}",
              file=sys.stderr)
        return 2
    got = {(v.func, v.rule) for v in dirty}
    expect = {
        ("FixtureNode::hot_entry", "blocking-lock"),
        ("FixtureNode::burst_helper", "alloc"),
        ("FixtureNode::format_label", "string-growth"),
        ("FixtureNode::burst_helper", "throw"),
    }
    if not expect <= got:
        print(f"self-test: expected violations missing: {expect - got}; "
              f"got {sorted(got)}", file=sys.stderr)
        return 1

    clean, _ = walk(index, ["FixtureNode::clean_entry"], Allowlist(),
                    verbose=False)
    clean = [v for v in clean if v.func != "FixtureNode::cold_spill"]
    # cold_spill is reachable from clean_entry only through the allowlist
    # boundary; mark it cold the way the real tree does.
    allow = Allowlist()
    allow.cold.add("FixtureNode::cold_spill")
    clean, _ = walk(index, ["FixtureNode::clean_entry"], allow, verbose=False)
    if clean:
        print("self-test: clean fixture reported violations:",
              file=sys.stderr)
        for v in clean:
            print(f"  {v.func} {v.rule} {v.file}:{v.line}", file=sys.stderr)
        return 1
    print("self-test: ok (dirty fixture flagged, clean fixture quiet)")
    return 0


# --- Main ------------------------------------------------------------------

def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--repo-root", default=os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))
    ap.add_argument("--src", default=None, help="source dir (default: src/)")
    ap.add_argument("--build-dir", default="build")
    ap.add_argument("--allowlist", default=None)
    ap.add_argument("--roots", default=None,
                    help="comma-separated entry points")
    ap.add_argument("--self-test", action="store_true")
    ap.add_argument("-v", "--verbose", action="store_true")
    args = ap.parse_args()

    if args.self_test:
        return self_test(args.repo_root)

    src_dir = args.src or os.path.join(args.repo_root, "src")
    allow_path = args.allowlist or os.path.join(
        args.repo_root, "tools", "hot_path_allowlist.txt")
    roots = args.roots.split(",") if args.roots else DEFAULT_ROOTS

    if try_libclang(args):
        return 0  # Exact engine ran (not reachable today; see docstring).

    files = collect_sources(src_dir)
    if not files:
        print(f"no sources under {src_dir}", file=sys.stderr)
        return 2
    index = build_index(files)
    allow = Allowlist.load(allow_path)
    violations, missing = walk(index, roots, allow, args.verbose)

    if missing:
        print(f"lint-hot-path: entry points not found: {', '.join(missing)}",
              file=sys.stderr)
        return 2
    if violations:
        print(f"lint-hot-path: {len(violations)} hot-path purity "
              f"violation(s):")
        for v in sorted(violations, key=lambda v: (v.file, v.line)):
            rel = os.path.relpath(v.file, args.repo_root)
            print(f"  {rel}:{v.line}: [{v.rule}] in {v.func}: {v.excerpt}")
        print("\nFix the violation, move the code behind a cold boundary, "
              "or add an entry to tools/hot_path_allowlist.txt with a "
              "reason.")
        return 1
    print(f"lint-hot-path: clean ({len(files)} files, "
          f"{sum(len(v) for v in index.values())} functions indexed)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
