
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/buffer.cpp" "src/CMakeFiles/ftc.dir/core/buffer.cpp.o" "gcc" "src/CMakeFiles/ftc.dir/core/buffer.cpp.o.d"
  "/root/repo/src/core/chain.cpp" "src/CMakeFiles/ftc.dir/core/chain.cpp.o" "gcc" "src/CMakeFiles/ftc.dir/core/chain.cpp.o.d"
  "/root/repo/src/core/nf_node.cpp" "src/CMakeFiles/ftc.dir/core/nf_node.cpp.o" "gcc" "src/CMakeFiles/ftc.dir/core/nf_node.cpp.o.d"
  "/root/repo/src/core/node.cpp" "src/CMakeFiles/ftc.dir/core/node.cpp.o" "gcc" "src/CMakeFiles/ftc.dir/core/node.cpp.o.d"
  "/root/repo/src/core/piggyback.cpp" "src/CMakeFiles/ftc.dir/core/piggyback.cpp.o" "gcc" "src/CMakeFiles/ftc.dir/core/piggyback.cpp.o.d"
  "/root/repo/src/core/stores.cpp" "src/CMakeFiles/ftc.dir/core/stores.cpp.o" "gcc" "src/CMakeFiles/ftc.dir/core/stores.cpp.o.d"
  "/root/repo/src/ftmb/ftmb.cpp" "src/CMakeFiles/ftc.dir/ftmb/ftmb.cpp.o" "gcc" "src/CMakeFiles/ftc.dir/ftmb/ftmb.cpp.o.d"
  "/root/repo/src/mbox/gen.cpp" "src/CMakeFiles/ftc.dir/mbox/gen.cpp.o" "gcc" "src/CMakeFiles/ftc.dir/mbox/gen.cpp.o.d"
  "/root/repo/src/mbox/monitor.cpp" "src/CMakeFiles/ftc.dir/mbox/monitor.cpp.o" "gcc" "src/CMakeFiles/ftc.dir/mbox/monitor.cpp.o.d"
  "/root/repo/src/mbox/nat.cpp" "src/CMakeFiles/ftc.dir/mbox/nat.cpp.o" "gcc" "src/CMakeFiles/ftc.dir/mbox/nat.cpp.o.d"
  "/root/repo/src/net/control.cpp" "src/CMakeFiles/ftc.dir/net/control.cpp.o" "gcc" "src/CMakeFiles/ftc.dir/net/control.cpp.o.d"
  "/root/repo/src/net/link.cpp" "src/CMakeFiles/ftc.dir/net/link.cpp.o" "gcc" "src/CMakeFiles/ftc.dir/net/link.cpp.o.d"
  "/root/repo/src/orch/orchestrator.cpp" "src/CMakeFiles/ftc.dir/orch/orchestrator.cpp.o" "gcc" "src/CMakeFiles/ftc.dir/orch/orchestrator.cpp.o.d"
  "/root/repo/src/packet/headers.cpp" "src/CMakeFiles/ftc.dir/packet/headers.cpp.o" "gcc" "src/CMakeFiles/ftc.dir/packet/headers.cpp.o.d"
  "/root/repo/src/packet/packet_io.cpp" "src/CMakeFiles/ftc.dir/packet/packet_io.cpp.o" "gcc" "src/CMakeFiles/ftc.dir/packet/packet_io.cpp.o.d"
  "/root/repo/src/packet/packet_pool.cpp" "src/CMakeFiles/ftc.dir/packet/packet_pool.cpp.o" "gcc" "src/CMakeFiles/ftc.dir/packet/packet_pool.cpp.o.d"
  "/root/repo/src/packet/pcap.cpp" "src/CMakeFiles/ftc.dir/packet/pcap.cpp.o" "gcc" "src/CMakeFiles/ftc.dir/packet/pcap.cpp.o.d"
  "/root/repo/src/runtime/clock.cpp" "src/CMakeFiles/ftc.dir/runtime/clock.cpp.o" "gcc" "src/CMakeFiles/ftc.dir/runtime/clock.cpp.o.d"
  "/root/repo/src/runtime/histogram.cpp" "src/CMakeFiles/ftc.dir/runtime/histogram.cpp.o" "gcc" "src/CMakeFiles/ftc.dir/runtime/histogram.cpp.o.d"
  "/root/repo/src/runtime/logging.cpp" "src/CMakeFiles/ftc.dir/runtime/logging.cpp.o" "gcc" "src/CMakeFiles/ftc.dir/runtime/logging.cpp.o.d"
  "/root/repo/src/runtime/worker.cpp" "src/CMakeFiles/ftc.dir/runtime/worker.cpp.o" "gcc" "src/CMakeFiles/ftc.dir/runtime/worker.cpp.o.d"
  "/root/repo/src/state/partition_lock.cpp" "src/CMakeFiles/ftc.dir/state/partition_lock.cpp.o" "gcc" "src/CMakeFiles/ftc.dir/state/partition_lock.cpp.o.d"
  "/root/repo/src/state/state_store.cpp" "src/CMakeFiles/ftc.dir/state/state_store.cpp.o" "gcc" "src/CMakeFiles/ftc.dir/state/state_store.cpp.o.d"
  "/root/repo/src/state/txn.cpp" "src/CMakeFiles/ftc.dir/state/txn.cpp.o" "gcc" "src/CMakeFiles/ftc.dir/state/txn.cpp.o.d"
  "/root/repo/src/tgen/traffic.cpp" "src/CMakeFiles/ftc.dir/tgen/traffic.cpp.o" "gcc" "src/CMakeFiles/ftc.dir/tgen/traffic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
