file(REMOVE_RECURSE
  "libftc.a"
)
