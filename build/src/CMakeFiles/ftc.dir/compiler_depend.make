# Empty compiler generated dependencies file for ftc.
# This may be replaced when dependencies are built.
