file(REMOVE_RECURSE
  "CMakeFiles/example_enterprise_chain.dir/enterprise_chain.cpp.o"
  "CMakeFiles/example_enterprise_chain.dir/enterprise_chain.cpp.o.d"
  "example_enterprise_chain"
  "example_enterprise_chain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_enterprise_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
