# Empty compiler generated dependencies file for example_enterprise_chain.
# This may be replaced when dependencies are built.
