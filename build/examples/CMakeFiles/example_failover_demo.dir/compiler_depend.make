# Empty compiler generated dependencies file for example_failover_demo.
# This may be replaced when dependencies are built.
