file(REMOVE_RECURSE
  "CMakeFiles/example_failover_demo.dir/failover_demo.cpp.o"
  "CMakeFiles/example_failover_demo.dir/failover_demo.cpp.o.d"
  "example_failover_demo"
  "example_failover_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_failover_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
