# Empty compiler generated dependencies file for example_sfc_cli.
# This may be replaced when dependencies are built.
