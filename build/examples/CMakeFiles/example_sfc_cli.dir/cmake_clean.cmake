file(REMOVE_RECURSE
  "CMakeFiles/example_sfc_cli.dir/sfc_cli.cpp.o"
  "CMakeFiles/example_sfc_cli.dir/sfc_cli.cpp.o.d"
  "example_sfc_cli"
  "example_sfc_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_sfc_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
