file(REMOVE_RECURSE
  "CMakeFiles/example_custom_middlebox.dir/custom_middlebox.cpp.o"
  "CMakeFiles/example_custom_middlebox.dir/custom_middlebox.cpp.o.d"
  "example_custom_middlebox"
  "example_custom_middlebox.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_custom_middlebox.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
