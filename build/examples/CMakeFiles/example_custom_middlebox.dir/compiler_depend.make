# Empty compiler generated dependencies file for example_custom_middlebox.
# This may be replaced when dependencies are built.
