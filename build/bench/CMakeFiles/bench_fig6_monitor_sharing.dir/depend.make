# Empty dependencies file for bench_fig6_monitor_sharing.
# This may be replaced when dependencies are built.
