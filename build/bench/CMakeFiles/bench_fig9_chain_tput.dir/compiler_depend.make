# Empty compiler generated dependencies file for bench_fig9_chain_tput.
# This may be replaced when dependencies are built.
