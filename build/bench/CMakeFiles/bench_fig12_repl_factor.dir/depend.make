# Empty dependencies file for bench_fig12_repl_factor.
# This may be replaced when dependencies are built.
