# Empty compiler generated dependencies file for ftc_tests.
# This may be replaced when dependencies are built.
