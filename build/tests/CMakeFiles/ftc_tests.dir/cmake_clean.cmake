file(REMOVE_RECURSE
  "CMakeFiles/ftc_tests.dir/test_applier.cpp.o"
  "CMakeFiles/ftc_tests.dir/test_applier.cpp.o.d"
  "CMakeFiles/ftc_tests.dir/test_buffer_forwarder.cpp.o"
  "CMakeFiles/ftc_tests.dir/test_buffer_forwarder.cpp.o.d"
  "CMakeFiles/ftc_tests.dir/test_chain.cpp.o"
  "CMakeFiles/ftc_tests.dir/test_chain.cpp.o.d"
  "CMakeFiles/ftc_tests.dir/test_chain_sweep.cpp.o"
  "CMakeFiles/ftc_tests.dir/test_chain_sweep.cpp.o.d"
  "CMakeFiles/ftc_tests.dir/test_mbox.cpp.o"
  "CMakeFiles/ftc_tests.dir/test_mbox.cpp.o.d"
  "CMakeFiles/ftc_tests.dir/test_net.cpp.o"
  "CMakeFiles/ftc_tests.dir/test_net.cpp.o.d"
  "CMakeFiles/ftc_tests.dir/test_packet.cpp.o"
  "CMakeFiles/ftc_tests.dir/test_packet.cpp.o.d"
  "CMakeFiles/ftc_tests.dir/test_pcap.cpp.o"
  "CMakeFiles/ftc_tests.dir/test_pcap.cpp.o.d"
  "CMakeFiles/ftc_tests.dir/test_piggyback.cpp.o"
  "CMakeFiles/ftc_tests.dir/test_piggyback.cpp.o.d"
  "CMakeFiles/ftc_tests.dir/test_recovery.cpp.o"
  "CMakeFiles/ftc_tests.dir/test_recovery.cpp.o.d"
  "CMakeFiles/ftc_tests.dir/test_runtime.cpp.o"
  "CMakeFiles/ftc_tests.dir/test_runtime.cpp.o.d"
  "CMakeFiles/ftc_tests.dir/test_small_vector.cpp.o"
  "CMakeFiles/ftc_tests.dir/test_small_vector.cpp.o.d"
  "CMakeFiles/ftc_tests.dir/test_state_store.cpp.o"
  "CMakeFiles/ftc_tests.dir/test_state_store.cpp.o.d"
  "CMakeFiles/ftc_tests.dir/test_txn.cpp.o"
  "CMakeFiles/ftc_tests.dir/test_txn.cpp.o.d"
  "ftc_tests"
  "ftc_tests.pdb"
  "ftc_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftc_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
