
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_applier.cpp" "tests/CMakeFiles/ftc_tests.dir/test_applier.cpp.o" "gcc" "tests/CMakeFiles/ftc_tests.dir/test_applier.cpp.o.d"
  "/root/repo/tests/test_buffer_forwarder.cpp" "tests/CMakeFiles/ftc_tests.dir/test_buffer_forwarder.cpp.o" "gcc" "tests/CMakeFiles/ftc_tests.dir/test_buffer_forwarder.cpp.o.d"
  "/root/repo/tests/test_chain.cpp" "tests/CMakeFiles/ftc_tests.dir/test_chain.cpp.o" "gcc" "tests/CMakeFiles/ftc_tests.dir/test_chain.cpp.o.d"
  "/root/repo/tests/test_chain_sweep.cpp" "tests/CMakeFiles/ftc_tests.dir/test_chain_sweep.cpp.o" "gcc" "tests/CMakeFiles/ftc_tests.dir/test_chain_sweep.cpp.o.d"
  "/root/repo/tests/test_mbox.cpp" "tests/CMakeFiles/ftc_tests.dir/test_mbox.cpp.o" "gcc" "tests/CMakeFiles/ftc_tests.dir/test_mbox.cpp.o.d"
  "/root/repo/tests/test_net.cpp" "tests/CMakeFiles/ftc_tests.dir/test_net.cpp.o" "gcc" "tests/CMakeFiles/ftc_tests.dir/test_net.cpp.o.d"
  "/root/repo/tests/test_packet.cpp" "tests/CMakeFiles/ftc_tests.dir/test_packet.cpp.o" "gcc" "tests/CMakeFiles/ftc_tests.dir/test_packet.cpp.o.d"
  "/root/repo/tests/test_pcap.cpp" "tests/CMakeFiles/ftc_tests.dir/test_pcap.cpp.o" "gcc" "tests/CMakeFiles/ftc_tests.dir/test_pcap.cpp.o.d"
  "/root/repo/tests/test_piggyback.cpp" "tests/CMakeFiles/ftc_tests.dir/test_piggyback.cpp.o" "gcc" "tests/CMakeFiles/ftc_tests.dir/test_piggyback.cpp.o.d"
  "/root/repo/tests/test_recovery.cpp" "tests/CMakeFiles/ftc_tests.dir/test_recovery.cpp.o" "gcc" "tests/CMakeFiles/ftc_tests.dir/test_recovery.cpp.o.d"
  "/root/repo/tests/test_runtime.cpp" "tests/CMakeFiles/ftc_tests.dir/test_runtime.cpp.o" "gcc" "tests/CMakeFiles/ftc_tests.dir/test_runtime.cpp.o.d"
  "/root/repo/tests/test_small_vector.cpp" "tests/CMakeFiles/ftc_tests.dir/test_small_vector.cpp.o" "gcc" "tests/CMakeFiles/ftc_tests.dir/test_small_vector.cpp.o.d"
  "/root/repo/tests/test_state_store.cpp" "tests/CMakeFiles/ftc_tests.dir/test_state_store.cpp.o" "gcc" "tests/CMakeFiles/ftc_tests.dir/test_state_store.cpp.o.d"
  "/root/repo/tests/test_txn.cpp" "tests/CMakeFiles/ftc_tests.dir/test_txn.cpp.o" "gcc" "tests/CMakeFiles/ftc_tests.dir/test_txn.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ftc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
